// Datapath-level GCU tests: the block-streamed Eq. 18 execution must
// reproduce the library convolution exactly, and its operation counts must
// reconcile with the timing model's workload formula.
#include <cmath>

#include <gtest/gtest.h>

#include "core/gaussian_fit.hpp"
#include "core/grid_kernel.hpp"
#include "hw/gcu_functional.hpp"
#include "hw/gcu_model.hpp"
#include "util/rng.hpp"

namespace tme::hw {
namespace {

Grid3d random_grid(GridDims dims, std::uint64_t seed) {
  Grid3d g(dims);
  Rng rng(seed);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = rng.uniform(-1.0, 1.0);
  return g;
}

Kernel1d realistic_kernel(int gc) {
  const auto terms = fit_shell_gaussians(2.2008, 1);
  const auto kernels =
      build_level_kernels(terms, 6, {32, 32, 32}, {0.3116, 0.3116, 0.3116}, gc);
  return kernels[0].kx;
}

TEST(GcuBlocks, DecompositionCoversGridOnce) {
  const Grid3d g = random_grid({8, 8, 8}, 1);
  const auto blocks = blocks_of(g);
  ASSERT_EQ(blocks.size(), 8u);
  double sum = 0.0;
  for (const auto& b : blocks) {
    for (const double v : b.values) sum += v;
  }
  EXPECT_NEAR(sum, g.sum(), 1e-12);
}

TEST(GcuBlocks, RejectsNonMultipleOfFour) {
  const Grid3d g(6, 8, 8);
  EXPECT_THROW(blocks_of(g), std::invalid_argument);
}

class GcuFunctionalAxis : public ::testing::TestWithParam<int> {};

TEST_P(GcuFunctionalAxis, MatchesLibraryConvolution) {
  const int axis = GetParam();
  const Grid3d in = random_grid({32, 32, 32}, 7 + static_cast<std::uint64_t>(axis));
  const Kernel1d k = realistic_kernel(8);
  const Grid3d expected = [&] {
    Grid3d out(in.dims());
    convolve_axis(in, k,
                  axis == 0 ? ConvAxis::kX : (axis == 1 ? ConvAxis::kY : ConvAxis::kZ),
                  out);
    return out;
  }();
  const Grid3d streamed = gcu_functional_axis_pass(in, k, axis, {4, 4, 4});
  double worst = 0.0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    worst = std::max(worst, std::abs(streamed[i] - expected[i]));
  }
  EXPECT_LT(worst, 1e-12 * expected.max_abs());
}

INSTANTIATE_TEST_SUITE_P(Axes, GcuFunctionalAxis, ::testing::Values(0, 1, 2));

TEST(GcuFunctional, LargerLocalBlocksGiveSameResult) {
  const Grid3d in = random_grid({32, 32, 32}, 11);
  const Kernel1d k = realistic_kernel(8);
  const Grid3d a = gcu_functional_axis_pass(in, k, 0, {4, 4, 4});
  const Grid3d b = gcu_functional_axis_pass(in, k, 0, {8, 8, 8});
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(GcuFunctional, EvalAccountingMatchesRowReach) {
  // Every block row produces exactly 2 g_c + 4 grid-point evaluations,
  // distributed over the owning nodes (paper Eq. 18).
  const int gc = 8;
  const Grid3d in = random_grid({32, 32, 32}, 13);
  const Kernel1d k = realistic_kernel(gc);
  std::size_t evals = 0;
  (void)gcu_functional_axis_pass(in, k, 0, {4, 4, 4}, &evals);
  const std::size_t blocks = in.size() / 64;
  const std::size_t rows = blocks * 16;
  EXPECT_EQ(evals, rows * static_cast<std::size_t>(2 * gc + 4));
}

TEST(GcuFunctional, TimingModelCountsStreamedRowOpportunities) {
  // The timing model charges each node for every row it *receives* times
  // the full output reach — a streamed-data proxy.  The functional count
  // charges each output point once globally.  The two differ by exactly
  // span / local_extent (the number of nodes each row visits), which is the
  // paper's own observation that the apparent GCU time is data movement,
  // not arithmetic ("the actual GCU operation time was rather short").
  const int gc = 8;
  const Grid3d in = random_grid({32, 32, 32}, 17);
  const Kernel1d k = realistic_kernel(gc);
  std::size_t functional = 0;
  (void)gcu_functional_axis_pass(in, k, 0, {4, 4, 4}, &functional);
  const double functional_per_node = static_cast<double>(functional) / 512.0;

  // One axis of the timing model's workload at M = 1.
  const double lines = 16.0;                      // 4 x 4 per node
  const double span = std::min(4.0 + 2.0 * gc, 32.0);
  const double model_per_node = lines * span / 4.0 * (2.0 * gc + 4.0);

  const double visits_per_row = span / 4.0;
  EXPECT_NEAR(model_per_node, functional_per_node * visits_per_row,
              1e-9 * model_per_node);
}

TEST(GcuFunctional, RejectsKernelWiderThanPeriod) {
  const Grid3d in = random_grid({8, 8, 8}, 19);
  Kernel1d k;
  k.cutoff = 4;  // 2*4+4 = 12 > 8
  k.taps.assign(9, 0.1);
  GcuFunctionalUnit unit({0, 0, 0}, {4, 4, 4}, in.dims());
  const auto blocks = blocks_of(in);
  EXPECT_THROW(unit.process_block(blocks[0], k, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tme::hw
