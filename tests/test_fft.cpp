#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> naive_dft(const std::vector<Complex>& x, bool invert) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, {0.0, 0.0});
  const double sign = invert ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t m = 0; m < n; ++m) {
      const double ang = sign * 2.0 * M_PI * static_cast<double>(k * m) /
                         static_cast<double>(n);
      out[k] += x[m] * Complex{std::cos(ang), std::sin(ang)};
    }
    if (invert) out[k] /= static_cast<double>(n);
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

class FftSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeSweep, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  std::vector<Complex> x = random_signal(n, 11 + n);
  const std::vector<Complex> expected = naive_dft(x, false);
  Fft1d fft(n);
  fft.forward(x.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), expected[k].real(), 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(x[k].imag(), expected[k].imag(), 1e-9 * static_cast<double>(n));
  }
}

TEST_P(FftSizeSweep, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const std::vector<Complex> original = random_signal(n, 23 + n);
  std::vector<Complex> x = original;
  Fft1d fft(n);
  fft.forward(x.data());
  fft.inverse(x.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), original[k].real(), 1e-11);
    EXPECT_NEAR(x[k].imag(), original[k].imag(), 1e-11);
  }
}

TEST_P(FftSizeSweep, ParsevalHolds) {
  const std::size_t n = GetParam();
  std::vector<Complex> x = random_signal(n, 37 + n);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  Fft1d fft(n);
  fft.forward(x.data());
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128,
                                           3, 5, 6, 7, 12, 15, 17, 31, 100));

TEST(Fft1d, ImpulseGivesFlatSpectrum) {
  const std::size_t n = 16;
  std::vector<Complex> x(n, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  Fft1d(n).forward(x.data());
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, SingleToneLandsInOneBin) {
  const std::size_t n = 32;
  std::vector<Complex> x(n);
  const std::size_t tone = 5;
  for (std::size_t m = 0; m < n; ++m) {
    const double ang = 2.0 * M_PI * static_cast<double>(tone * m) / n;
    x[m] = {std::cos(ang), std::sin(ang)};
  }
  Fft1d(n).forward(x.data());
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = k == tone ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(x[k]), expected, 1e-9);
  }
}

TEST(Fft1d, RejectsZeroSize) { EXPECT_THROW(Fft1d(0), std::invalid_argument); }

TEST(Fft3d, RoundTripOnRandomCube) {
  Fft3d fft(8, 4, 16);
  Rng rng(5);
  std::vector<Complex> x(fft.size());
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const std::vector<Complex> original = x;
  fft.forward(x);
  fft.inverse(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-11);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-11);
  }
}

TEST(Fft3d, SeparableToneLandsInOneBin) {
  const std::size_t nx = 8, ny = 8, nz = 8;
  Fft3d fft(nx, ny, nz);
  std::vector<Complex> x(fft.size());
  const std::size_t tx = 2, ty = 3, tz = 1;
  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const double ang = 2.0 * M_PI *
                           (static_cast<double>(tx * ix) / nx +
                            static_cast<double>(ty * iy) / ny +
                            static_cast<double>(tz * iz) / nz);
        x[(iz * ny + iy) * nx + ix] = {std::cos(ang), std::sin(ang)};
      }
    }
  }
  fft.forward(x);
  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const double expected =
            (ix == tx && iy == ty && iz == tz) ? static_cast<double>(fft.size()) : 0.0;
        EXPECT_NEAR(std::abs(x[(iz * ny + iy) * nx + ix]), expected, 1e-8);
      }
    }
  }
}

TEST(Fft3d, RealTransformOfRealEvenDataIsReal) {
  // A symmetric (even) real field has a real spectrum.
  const std::size_t n = 16;
  Fft3d fft(n, n, n);
  std::vector<double> x(fft.size(), 0.0);
  for (std::size_t iz = 0; iz < n; ++iz) {
    for (std::size_t iy = 0; iy < n; ++iy) {
      for (std::size_t ix = 0; ix < n; ++ix) {
        auto even = [n](std::size_t i) {
          const double d = std::min<double>(static_cast<double>(i),
                                            static_cast<double>(n - i));
          return std::exp(-0.3 * d * d);
        };
        x[(iz * n + iy) * n + ix] = even(ix) * even(iy) * even(iz);
      }
    }
  }
  const auto spectrum = fft.forward_real(x);
  for (const auto& v : spectrum) EXPECT_NEAR(v.imag(), 0.0, 1e-9);
}

TEST(Fft3d, InverseToRealRecoversInput) {
  Fft3d fft(8, 8, 8);
  Rng rng(77);
  std::vector<double> x(fft.size());
  for (auto& v : x) v = rng.uniform(-2.0, 2.0);
  const auto spectrum = fft.forward_real(x);
  const auto back = fft.inverse_to_real(spectrum);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-11);
}

TEST(NextPow2, RoundsUp) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(64), 64u);
}

}  // namespace
}  // namespace tme
