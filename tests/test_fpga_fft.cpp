// Tests of the FPGA top-level convolution engine model against both naive
// DFT math and the production (double-precision) SPME path.
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "ewald/greens_function.hpp"
#include "ewald/spme.hpp"
#include "hw/fpga_fft.hpp"
#include "util/rng.hpp"

namespace tme::hw {
namespace {

using CF = std::complex<float>;

TEST(Cfft16, MatchesNaiveDft) {
  Rng rng(1);
  CF data[16];
  std::complex<double> reference[16];
  for (int n = 0; n < 16; ++n) {
    data[n] = {static_cast<float>(rng.uniform(-1.0, 1.0)),
               static_cast<float>(rng.uniform(-1.0, 1.0))};
    reference[n] = {data[n].real(), data[n].imag()};
  }
  cfft16(data, false);
  for (int k = 0; k < 16; ++k) {
    std::complex<double> expected{0.0, 0.0};
    for (int n = 0; n < 16; ++n) {
      const double ang = -2.0 * M_PI * k * n / 16.0;
      expected += reference[n] * std::complex<double>{std::cos(ang), std::sin(ang)};
    }
    EXPECT_NEAR(data[k].real(), expected.real(), 1e-5);
    EXPECT_NEAR(data[k].imag(), expected.imag(), 1e-5);
  }
}

TEST(Cfft16, RoundTripIsIdentity) {
  Rng rng(2);
  CF data[16], original[16];
  for (int n = 0; n < 16; ++n) {
    data[n] = {static_cast<float>(rng.uniform(-1.0, 1.0)),
               static_cast<float>(rng.uniform(-1.0, 1.0))};
    original[n] = data[n];
  }
  cfft16(data, false);
  cfft16(data, true);
  for (int n = 0; n < 16; ++n) {
    EXPECT_NEAR(data[n].real(), original[n].real(), 1e-5);
    EXPECT_NEAR(data[n].imag(), original[n].imag(), 1e-5);
  }
}

TEST(RealPair, ForwardMatchesSeparateTransforms) {
  Rng rng(3);
  float a[16], b[16];
  for (int n = 0; n < 16; ++n) {
    a[n] = static_cast<float>(rng.uniform(-1.0, 1.0));
    b[n] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const PackedSpectra s = real_pair_forward(a, b);
  for (int k = 0; k <= 8; ++k) {
    std::complex<double> ea{0.0, 0.0}, eb{0.0, 0.0};
    for (int n = 0; n < 16; ++n) {
      const double ang = -2.0 * M_PI * k * n / 16.0;
      const std::complex<double> w{std::cos(ang), std::sin(ang)};
      ea += static_cast<double>(a[n]) * w;
      eb += static_cast<double>(b[n]) * w;
    }
    EXPECT_NEAR(s.a[k].real(), ea.real(), 1e-4) << "k=" << k;
    EXPECT_NEAR(s.a[k].imag(), ea.imag(), 1e-4) << "k=" << k;
    EXPECT_NEAR(s.b[k].real(), eb.real(), 1e-4) << "k=" << k;
    EXPECT_NEAR(s.b[k].imag(), eb.imag(), 1e-4) << "k=" << k;
  }
  // The special 0 and 8 bins are exactly real for real input.
  EXPECT_EQ(s.a[0].imag(), 0.0f);
  EXPECT_EQ(s.a[8].imag(), 0.0f);
  EXPECT_EQ(s.b[0].imag(), 0.0f);
  EXPECT_EQ(s.b[8].imag(), 0.0f);
}

TEST(RealPair, RoundTripRecoversLines) {
  Rng rng(4);
  float a[16], b[16], a2[16], b2[16];
  for (int n = 0; n < 16; ++n) {
    a[n] = static_cast<float>(rng.uniform(-1.0, 1.0));
    b[n] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  PackedSpectra s = real_pair_forward(a, b);
  // Scale like the engine does (inverse carries 1/16).
  real_pair_inverse(s, a2, b2);
  for (int n = 0; n < 16; ++n) {
    EXPECT_NEAR(a2[n], a[n], 1e-5);
    EXPECT_NEAR(b2[n], b[n], 1e-5);
  }
}

TEST(FpgaEngine, MatchesDoublePrecisionSpmeSolve) {
  const Box box{{4.8, 4.8, 4.8}};
  const double alpha = 1.2;  // a typical top-level (alpha / 2^L) value
  const GridDims dims{16, 16, 16};

  // Random coarse charge grid.
  Rng rng(5);
  Grid3d q(dims);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);

  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = dims;
  const Spme spme(box, sp);
  const Grid3d expected = spme.solve_potential(q);

  const std::vector<double> green = spme_influence(box, dims, 6, alpha);
  std::vector<float> charges(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) charges[i] = static_cast<float>(q[i]);
  const std::vector<float> result = fpga_top_level_convolve(charges, green);

  double worst = 0.0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(result[i]) - expected[i]));
  }
  // Single precision against double: relative 1e-5 level.
  EXPECT_LT(worst, 1e-4 * expected.max_abs());
  EXPECT_GT(worst, 0.0);  // genuinely float
}

TEST(FpgaEngine, CycleEstimateNearPaper) {
  // Paper: all calculations finish in 330 cycles (2.112 us at 156.25 MHz).
  const std::size_t cycles = fpga_cycle_estimate();
  EXPECT_GT(cycles, 250u);
  EXPECT_LT(cycles, 400u);
  const double seconds = static_cast<double>(cycles) / 156.25e6;
  EXPECT_NEAR(seconds, 2.112e-6, 0.5e-6);
}

}  // namespace
}  // namespace tme::hw
