// Datapath-level LRU tests: the fixed-point CA/BI paths must track the
// double-precision ChargeAssigner within the quantisation budget the chip's
// word sizes were chosen for.
#include <cmath>

#include <gtest/gtest.h>

#include "ewald/charge_assignment.hpp"
#include "spline/bspline.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "hw/lru_functional.hpp"
#include "util/rng.hpp"

namespace tme::hw {
namespace {

struct TestSystem {
  Box box{{3.2, 3.2, 3.2}};
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem make_system(std::size_t n, std::uint64_t seed) {
  TestSystem sys;
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, 3.2), rng.uniform(0.0, 3.2),
                        rng.uniform(0.0, 3.2)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

TEST(LruFunctional, SplineWeightsQuantiseTo24Bits) {
  std::vector<double> w(6), d(6);
  const LruFixedFormats fmt;
  const long m0 = lru_spline_weights(7.3125, w, d, fmt);
  std::vector<double> w_ref(6), d_ref(6);
  const long m0_ref = tme::bspline_weights_central(6, 7.3125, w_ref, d_ref);
  EXPECT_EQ(m0, m0_ref);
  for (int k = 0; k < 6; ++k) {
    EXPECT_NEAR(w[static_cast<std::size_t>(k)], w_ref[static_cast<std::size_t>(k)],
                std::ldexp(1.0, -24));
    // Quantised: an exact multiple of 2^-24.
    const double scaled = std::ldexp(w[static_cast<std::size_t>(k)], 24);
    EXPECT_EQ(scaled, std::nearbyint(scaled));
  }
}

TEST(LruFunctional, ChargeAssignTracksDoublePath) {
  const TestSystem sys = make_system(500, 3);
  const GridDims dims{16, 16, 16};
  const ChargeAssigner reference(sys.box, dims, 6);
  const Grid3d exact = reference.assign(sys.positions, sys.charges);
  const Grid3d fixed = lru_charge_assign(sys.box, dims, sys.positions, sys.charges);

  double worst = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    worst = std::max(worst, std::abs(exact[i] - fixed[i]));
  }
  // Each grid point accumulates <= ~500 rounded contributions of 2^-23 each.
  EXPECT_LT(worst, 1e-4);
  EXPECT_GT(worst, 0.0);
  // Total charge is conserved to the same budget.
  EXPECT_NEAR(fixed.sum(), exact.sum(), 1e-3);
}

TEST(LruFunctional, BackInterpolationTracksDoublePath) {
  const TestSystem sys = make_system(300, 5);
  const GridDims dims{16, 16, 16};
  const double alpha = alpha_from_tolerance(0.8, 1e-4);
  // A realistic potential grid from the SPME pipeline.
  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = dims;
  const Spme spme(sys.box, sp);
  const ChargeAssigner reference(sys.box, dims, 6);
  const Grid3d q_grid = reference.assign(sys.positions, sys.charges);
  const Grid3d potential = spme.solve_potential(q_grid);

  std::vector<Vec3> f_exact(sys.positions.size());
  std::vector<double> phi;
  const double qphi_exact = reference.back_interpolate(potential, sys.positions,
                                                       sys.charges, &f_exact, &phi);
  std::vector<Vec3> f_fixed(sys.positions.size());
  const double qphi_fixed = lru_back_interpolate(sys.box, potential, sys.positions,
                                                 sys.charges, f_fixed);

  EXPECT_NEAR(qphi_fixed, qphi_exact, 1e-3 * std::abs(qphi_exact));
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < f_exact.size(); ++i) {
    worst = std::max(worst, norm(f_exact[i] - f_fixed[i]));
    scale = std::max(scale, norm(f_exact[i]));
  }
  // The 32-bit force path sits far below the ~1e-4 method error.
  EXPECT_LT(worst, 1e-4 * scale);
  EXPECT_GT(worst, 0.0);
}

TEST(LruFunctional, CoarserForceFormatDegradesGracefully) {
  const TestSystem sys = make_system(100, 7);
  const GridDims dims{16, 16, 16};
  const ChargeAssigner reference(sys.box, dims, 6);
  Grid3d potential(dims);
  Rng rng(9);
  for (std::size_t i = 0; i < potential.size(); ++i) {
    potential[i] = rng.uniform(-100.0, 100.0);
  }
  std::vector<Vec3> f_exact(sys.positions.size());
  reference.back_interpolate(potential, sys.positions, sys.charges, &f_exact);

  double prev = -1.0;
  for (const int frac : {14, 10, 6}) {
    LruFixedFormats fmt;
    fmt.force_frac_bits = frac;
    std::vector<Vec3> f(sys.positions.size());
    lru_back_interpolate(sys.box, potential, sys.positions, sys.charges, f, fmt);
    double err = 0.0;
    for (std::size_t i = 0; i < f.size(); ++i) err += norm2(f[i] - f_exact[i]);
    err = std::sqrt(err);
    EXPECT_GT(err, prev) << "frac=" << frac;
    prev = err;
  }
}

}  // namespace
}  // namespace tme::hw
