// Transport, worker protocol and WorkerFleet tests: frame codec integrity,
// strict env knobs, and — the heart of this tier — bitwise force parity
// between the inline SerialExecutor and real workers behind both transport
// backends, under packet loss, frame corruption, crashes, hangs and
// SIGKILL-mid-run drills.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ewald/splitting.hpp"
#include "par/fleet.hpp"
#include "par/health.hpp"
#include "par/par_tme.hpp"
#include "par/proc_transport.hpp"
#include "par/transport.hpp"
#include "par/wire.hpp"
#include "par/worker.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace tme::par {
namespace {

// --- shared fixtures ---------------------------------------------------------

struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem random_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

TmeParams small_params() {
  TmeParams tp;
  tp.alpha = alpha_from_tolerance(0.8, 1e-4);
  tp.grid = {16, 16, 16};
  tp.levels = 1;
  tp.grid_cutoff = 4;
  tp.num_gaussians = 3;
  return tp;
}

void expect_bitwise(const CoulombResult& want, const CoulombResult& got) {
  ASSERT_EQ(want.forces.size(), got.forces.size());
  EXPECT_EQ(want.energy, got.energy);
  for (std::size_t i = 0; i < want.forces.size(); ++i) {
    ASSERT_EQ(want.forces[i].x, got.forces[i].x) << "atom " << i;
    ASSERT_EQ(want.forces[i].y, got.forces[i].y) << "atom " << i;
    ASSERT_EQ(want.forces[i].z, got.forces[i].z) << "atom " << i;
  }
}

// Serial (fault-free, in-process) reference for a system/topology pair.
CoulombResult serial_reference(const TestSystem& sys,
                               const hw::TorusTopology& topo) {
  ParallelTme par(sys.box, small_params(), topo);
  TrafficLog log;
  return par.compute(sys.positions, sys.charges, &log);
}

// Runs the same pipeline with a WorkerFleet executor.
CoulombResult fleet_run(const TestSystem& sys, const hw::TorusTopology& topo,
                        FleetConfig cfg, FleetStats* stats_out = nullptr,
                        TransportStats* tstats_out = nullptr) {
  ParallelTme par(sys.box, small_params(), topo);
  WorkerFleet fleet(par.context(), par.topology(), std::move(cfg));
  par.set_executor(&fleet);
  TrafficLog log;
  CoulombResult res = par.compute(sys.positions, sys.charges, &log);
  if (stats_out != nullptr) *stats_out = fleet.stats();
  if (tstats_out != nullptr) *tstats_out = fleet.transport_stats();
  return res;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

// --- frame codec -------------------------------------------------------------

TEST(FrameCodec, RoundTripPreservesTypeSeqAndPayload) {
  Message m;
  m.type = MsgType::kTask;
  m.payload = {1, 2, 3, 250, 5};
  const std::vector<std::uint8_t> frame = encode_frame(m, 42);
  EXPECT_EQ(frame.size(),
            kFrameHeaderBytes + m.payload.size() + kFrameTrailerBytes);
  Message out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out, consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.type, MsgType::kTask);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.payload, m.payload);
}

TEST(FrameCodec, PartialFrameAsksForMoreBytes) {
  Message m;
  m.type = MsgType::kPing;
  m.payload.assign(100, 7);
  const std::vector<std::uint8_t> frame = encode_frame(m, 0);
  Message out;
  std::size_t consumed = 9;
  EXPECT_EQ(decode_frame(frame.data(), kFrameHeaderBytes - 1, out, consumed),
            DecodeStatus::kNeedMore);
  EXPECT_EQ(decode_frame(frame.data(), frame.size() - 1, out, consumed),
            DecodeStatus::kNeedMore);
  EXPECT_EQ(consumed, 0u);
}

TEST(FrameCodec, FlippedBitIsRejectedWholeFrame) {
  Message m;
  m.type = MsgType::kResult;
  m.payload.assign(64, 9);
  std::vector<std::uint8_t> frame = encode_frame(m, 3);
  frame[kFrameHeaderBytes + 10] ^= 0x20;
  Message out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out, consumed),
            DecodeStatus::kBadCrc);
  // The whole frame is consumed so the stream stays in sync.
  EXPECT_EQ(consumed, frame.size());
}

TEST(FrameCodec, BadMagicAndOversizedLengthThrow) {
  Message m;
  m.type = MsgType::kPong;
  std::vector<std::uint8_t> frame = encode_frame(m, 1);
  std::vector<std::uint8_t> mangled = frame;
  mangled[0] ^= 0xFF;
  Message out;
  std::size_t consumed = 0;
  EXPECT_THROW(decode_frame(mangled.data(), mangled.size(), out, consumed),
               TransportError);
  std::vector<std::uint8_t> oversized = frame;
  const std::uint64_t huge = kMaxPayloadBytes + 1;
  std::memcpy(oversized.data() + 16, &huge, 8);
  EXPECT_THROW(decode_frame(oversized.data(), oversized.size(), out, consumed),
               TransportError);
}

TEST(Wire, ReaderRejectsOverrunAndInsaneCounts) {
  wire::Writer w;
  w.u64(3);
  w.f64(1.0);
  const std::vector<std::uint8_t> bytes = w.bytes();
  wire::Reader r(bytes);
  EXPECT_EQ(r.u64(), 3u);
  EXPECT_EQ(r.f64(), 1.0);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.f64(), wire::Error);

  // A claimed element count far beyond the remaining bytes must fail before
  // any allocation is sized from it.
  wire::Writer w2;
  w2.u64(1ull << 60);
  wire::Reader r2(w2.bytes());
  EXPECT_THROW(r2.doubles(), wire::Error);
}

// --- worker context + sealed context file ------------------------------------

WorkerContext sample_context() {
  WorkerContext ctx;
  ctx.pipeline.box.lengths = {3.2, 3.2, 6.4};
  ctx.pipeline.h = {0.2, 0.2, 0.4};
  ctx.pipeline.p = 6;
  ctx.pipeline.fine_global = {16, 16, 16};
  ctx.pipeline.j_coeff = {0.25, 0.5, 1.0, 0.5, 0.25};
  Kernel1d k;
  k.cutoff = 2;
  k.taps = {0.1, 0.2, 0.4, 0.2, 0.1};
  ctx.pipeline.kernels = {{SeparableTerm{k, k, k}, SeparableTerm{k, k, k}}};
  ctx.rank = 3;
  ctx.workers = 5;
  ctx.fault.crash_after_tasks = 7;
  ctx.fault.delay_ms = 11;
  return ctx;
}

TEST(WorkerProtocol, ContextRoundTrips) {
  const WorkerContext ctx = sample_context();
  const WorkerContext back = decode_context(encode_context(ctx));
  EXPECT_EQ(back.rank, 3u);
  EXPECT_EQ(back.workers, 5u);
  EXPECT_EQ(back.fault.crash_after_tasks, 7);
  EXPECT_EQ(back.fault.hang_after_tasks, -1);
  EXPECT_EQ(back.fault.delay_ms, 11);
  EXPECT_EQ(back.pipeline.p, 6);
  EXPECT_EQ(back.pipeline.fine_global, (GridDims{16, 16, 16}));
  EXPECT_EQ(back.pipeline.j_coeff, ctx.pipeline.j_coeff);
  ASSERT_EQ(back.pipeline.kernels.size(), 1u);
  ASSERT_EQ(back.pipeline.kernels[0].size(), 2u);
  EXPECT_EQ(back.pipeline.kernels[0][1].ky.taps, ctx.pipeline.kernels[0][1].ky.taps);
  EXPECT_EQ(back.pipeline.box.lengths.z, 6.4);
}

TEST(WorkerProtocol, TruncatedContextIsRejected) {
  std::vector<std::uint8_t> bytes = encode_context(sample_context());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_context(bytes), std::runtime_error);
}

TEST(WorkerProtocol, ContextFileSealCatchesTornWrites) {
  const std::string path = temp_path("ctx.seal");
  const std::vector<std::uint8_t> payload = encode_context(sample_context());
  write_context_file(path, payload);
  EXPECT_EQ(read_context_file(path), payload);

  // Torn write: drop the tail.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - bytes.size() / 3));
  }
  EXPECT_THROW(read_context_file(path), TransportError);

  // Bit rot under an intact length: the seal must catch it.
  write_context_file(path, payload);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(20);
    byte = static_cast<char>(byte ^ 0x10);
    f.write(&byte, 1);
  }
  EXPECT_THROW(read_context_file(path), TransportError);
}

// --- env knobs (strict parser) -----------------------------------------------

TEST(TransportEnv, ValidValuesAreApplied) {
  EnvGuard t("TME_TRANSPORT", "proc");
  EnvGuard w("TME_WORKERS", "3");
  EnvGuard ms("TME_TRANSPORT_TIMEOUT_MS", "1234");
  const FleetConfig cfg = fleet_config_from_env();
  EXPECT_EQ(cfg.backend, FleetConfig::Backend::kProc);
  EXPECT_EQ(cfg.workers, 3u);
  EXPECT_EQ(cfg.timeout_ms, 1234);
}

TEST(TransportEnv, MalformedValuesWarnAndKeepFallbacks) {
  FleetConfig base;
  base.backend = FleetConfig::Backend::kInProc;
  base.workers = 4;
  base.timeout_ms = 500;
  {
    EnvGuard t("TME_TRANSPORT", "carrier-pigeon");
    EnvGuard w("TME_WORKERS", "not-a-number");
    EnvGuard ms("TME_TRANSPORT_TIMEOUT_MS", "12ms");
    const FleetConfig cfg = fleet_config_from_env(base);
    EXPECT_EQ(cfg.backend, FleetConfig::Backend::kInProc);
    EXPECT_EQ(cfg.workers, 4u);
    EXPECT_EQ(cfg.timeout_ms, 500);
  }
  {
    // Out-of-bounds values are malformed too.
    EnvGuard w("TME_WORKERS", "0");
    EnvGuard ms("TME_TRANSPORT_TIMEOUT_MS", "-5");
    const FleetConfig cfg = fleet_config_from_env(base);
    EXPECT_EQ(cfg.workers, 4u);
    EXPECT_EQ(cfg.timeout_ms, 500);
  }
}

TEST(TransportEnv, ProcessFaultModesFlowIntoFleetConfig) {
  EnvGuard r("TME_FAULT_PACKET_DROP_RATE", "0.25");
  EnvGuard c("TME_FAULT_PACKET_CORRUPT_RATE", "0.125");
  EnvGuard k("TME_FAULT_KILL_WORKER_RANK", "1");
  EnvGuard n("TME_FAULT_KILL_WORKER_TASK", "2");
  EnvGuard d("TME_FAULT_WORKER_DELAY_MS", "9");
  const FleetConfig cfg = fleet_config_from_env();
  EXPECT_EQ(cfg.net_fault.drop_rate, 0.25);
  EXPECT_EQ(cfg.net_fault.corrupt_rate, 0.125);
  ASSERT_GE(cfg.worker_faults.size(), 2u);
  EXPECT_EQ(cfg.worker_faults[1].crash_after_tasks, 2);
  EXPECT_EQ(cfg.worker_faults[1].delay_ms, 9);
}

// --- fleet parity ------------------------------------------------------------

TEST(FleetParity, InProcWorkersMatchSerialBitwise) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(150, 3.2, 11);
  const CoulombResult want = serial_reference(sys, topo);

  FleetConfig cfg;
  cfg.backend = FleetConfig::Backend::kInProc;
  cfg.workers = 2;
  FleetStats stats;
  TransportStats tstats;
  const CoulombResult got = fleet_run(sys, topo, cfg, &stats, &tstats);
  expect_bitwise(want, got);
  EXPECT_GT(stats.tasks_sent, 0u);
  EXPECT_EQ(stats.results_received, stats.tasks_sent);
  EXPECT_EQ(stats.worker_deaths, 0u);
  EXPECT_GT(tstats.messages_sent, 0u);
  EXPECT_GT(tstats.bytes_received, 0u);
}

TEST(FleetParity, UnevenWorkerCountStillBitwise) {
  const hw::TorusTopology topo(2, 2, 1);  // 4 nodes over 3 workers
  const TestSystem sys = random_system(120, 3.2, 13);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.workers = 3;
  expect_bitwise(want, fleet_run(sys, topo, cfg));
}

TEST(FleetParity, ForkedProcessWorkersMatchSerialBitwise) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(150, 3.2, 11);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.backend = FleetConfig::Backend::kProc;
  cfg.workers = 2;
  FleetStats stats;
  const CoulombResult got = fleet_run(sys, topo, cfg, &stats);
  expect_bitwise(want, got);
  EXPECT_EQ(stats.worker_deaths, 0u);
}

TEST(FleetParity, ExecModeWorkerBinaryMatchesSerialBitwise) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(100, 3.2, 17);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.backend = FleetConfig::Backend::kProc;
  cfg.workers = 2;
  cfg.worker_bin = TME_WORKER_BIN;
  expect_bitwise(want, fleet_run(sys, topo, cfg));
}

// --- network fault drills ----------------------------------------------------

TEST(FleetFaults, PacketLossIsRetransmittedAndStaysBitwise) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(120, 3.2, 19);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.timeout_ms = 80;
  cfg.backoff_base_ms = 5;
  cfg.max_retries = 10;
  cfg.net_fault.drop_rate = 0.20;
  cfg.net_fault.seed = 99;
  FleetStats stats;
  TransportStats tstats;
  const CoulombResult got = fleet_run(sys, topo, cfg, &stats, &tstats);
  expect_bitwise(want, got);
  EXPECT_GT(tstats.frames_dropped, 0u);
  EXPECT_GT(stats.retransmissions, 0u);
}

TEST(FleetFaults, CorruptedFramesAreCrcRejectedAndRecovered) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(120, 3.2, 23);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.timeout_ms = 80;
  cfg.backoff_base_ms = 5;
  cfg.max_retries = 10;
  cfg.net_fault.corrupt_rate = 0.15;
  cfg.net_fault.seed = 7;
  FleetStats stats;
  TransportStats tstats;
  const CoulombResult got = fleet_run(sys, topo, cfg, &stats, &tstats);
  expect_bitwise(want, got);
  EXPECT_GT(tstats.frames_corrupted, 0u);
  EXPECT_GT(stats.retransmissions, 0u);
}

// --- process fault drills ----------------------------------------------------

TEST(FleetFaults, CrashedWorkerRespawnsFromSealedContextBitwise) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(120, 3.2, 29);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.context_path = temp_path("crash_drill.ctx");
  cfg.worker_faults.resize(2);
  cfg.worker_faults[1].crash_after_tasks = 3;
  FleetStats stats;
  const CoulombResult got = fleet_run(sys, topo, cfg, &stats);
  expect_bitwise(want, got);
  EXPECT_GE(stats.worker_deaths, 1u);
  EXPECT_GE(stats.respawns, 1u);
  EXPECT_GE(stats.reinits, 3u);  // 2 boot inits + at least one re-init
}

TEST(FleetFaults, HungWorkerIsDeclaredDeadAndWorkRehomed) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(100, 3.2, 31);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.timeout_ms = 60;
  cfg.backoff_base_ms = 5;
  cfg.max_retries = 2;
  cfg.respawn = false;  // force the re-homing path to carry the whole run
  cfg.worker_faults.resize(2);
  cfg.worker_faults[1].hang_after_tasks = 2;
  FleetStats stats;
  const CoulombResult got = fleet_run(sys, topo, cfg, &stats);
  expect_bitwise(want, got);
  EXPECT_EQ(stats.worker_deaths, 1u);
  EXPECT_EQ(stats.respawns, 0u);
  EXPECT_GT(stats.rehomed_tasks, 0u);
  EXPECT_GT(stats.retransmissions, 0u);  // deadline fired before the verdict
}

TEST(FleetFaults, SlowWorkerOnlyStretchesWallClock) {
  const hw::TorusTopology topo(2, 1, 1);
  const TestSystem sys = random_system(80, 3.2, 37);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.timeout_ms = 2000;  // generous: the straggler must not be declared dead
  cfg.worker_faults.resize(2);
  cfg.worker_faults[1].delay_ms = 3;
  FleetStats stats;
  const CoulombResult got = fleet_run(sys, topo, cfg, &stats);
  expect_bitwise(want, got);
  EXPECT_EQ(stats.worker_deaths, 0u);
}

// The acceptance drill: a real process worker SIGKILLs itself mid-step; the
// coordinator detects the EOF, restarts the worker from the CRC-sealed
// context checkpoint, re-homes/retransmits the lost tasks, and the final
// forces are bitwise identical to the fault-free in-process run.
TEST(FleetFaults, ProcWorkerSigkillMidRunRecoversBitwise) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(120, 3.2, 41);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.backend = FleetConfig::Backend::kProc;
  cfg.workers = 2;
  cfg.context_path = temp_path("sigkill_drill.ctx");
  cfg.worker_faults.resize(2);
  cfg.worker_faults[1].crash_after_tasks = 2;  // raise(SIGKILL) in the child

  ParallelTme par(sys.box, small_params(), topo);
  WorkerFleet fleet(par.context(), par.topology(), cfg);
  const pid_t first_pid = fleet.worker_pid(1);
  ASSERT_GT(first_pid, 0);
  par.set_executor(&fleet);
  TrafficLog log;
  const CoulombResult got = par.compute(sys.positions, sys.charges, &log);
  expect_bitwise(want, got);
  EXPECT_GE(fleet.stats().worker_deaths, 1u);
  EXPECT_GE(fleet.stats().respawns, 1u);
  // The respawned worker is a different process.
  EXPECT_NE(fleet.worker_pid(1), first_pid);
  EXPECT_GT(fleet.worker_pid(1), 0);
}

TEST(FleetFaults, KillingEveryWorkerIsRefused) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(80, 3.2, 43);
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.respawn = false;
  cfg.worker_faults.resize(2);
  cfg.worker_faults[0].crash_after_tasks = 0;
  cfg.worker_faults[1].crash_after_tasks = 0;
  ParallelTme par(sys.box, small_params(), topo);
  WorkerFleet fleet(par.context(), par.topology(), cfg);
  par.set_executor(&fleet);
  TrafficLog log;
  // Both workers die on their first task: the RecoveryPlan refuses a machine
  // with no survivors.
  EXPECT_THROW(par.compute(sys.positions, sys.charges, &log),
               std::runtime_error);
}

// --- heartbeats + health wiring ---------------------------------------------

TEST(FleetHeartbeat, PongsCountAndDeathsFeedTheHealthMonitor) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(60, 3.2, 47);
  ParallelTme par(sys.box, small_params(), topo);
  FleetConfig cfg;
  cfg.workers = 2;
  cfg.respawn = false;
  cfg.timeout_ms = 300;
  WorkerFleet fleet(par.context(), par.topology(), cfg);

  hw::FaultInjector monitor_faults;
  HealthMonitor monitor(par.topology(), monitor_faults, HealthConfig{3});
  fleet.set_health_monitor(&monitor);

  EXPECT_EQ(fleet.heartbeat(std::chrono::milliseconds(500)), 2u);
  EXPECT_EQ(fleet.stats().heartbeats_sent, 2u);
  EXPECT_EQ(fleet.stats().heartbeats_missed, 0u);

  fleet.kill_worker(1);
  EXPECT_LE(fleet.heartbeat(std::chrono::milliseconds(300)), 1u);
  EXPECT_FALSE(fleet.worker_alive(1));
  EXPECT_GE(monitor.violations(1), 1u);
  EXPECT_GE(fleet.stats().worker_deaths, 1u);
}

TEST(FleetTelemetry, LinkTelemetrySeesRealSocketTraffic) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(80, 3.2, 53);
  ParallelTme par(sys.box, small_params(), topo);
  FleetConfig cfg;
  cfg.workers = 2;
  WorkerFleet fleet(par.context(), par.topology(), cfg);
  hw::LinkTelemetry links(par.topology());
  fleet.set_link_telemetry(&links);
  par.set_executor(&fleet);
  TrafficLog log;
  (void)par.compute(sys.positions, sys.charges, &log);
  EXPECT_GT(links.total_bytes(), 0u);
  EXPECT_GT(links.total_messages(), 0u);
}

// --- graceful shutdown -------------------------------------------------------

TEST(FleetShutdown, SigtermDrainsExecWorkerWhichExitsCleanly) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(100, 3.2, 59);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.backend = FleetConfig::Backend::kProc;
  cfg.workers = 2;
  cfg.worker_bin = TME_WORKER_BIN;  // exec mode: the SIGTERM handler is live
  cfg.term_grace_ms = 3000;
  cfg.context_path = temp_path("term_drill.ctx");

  ParallelTme par(sys.box, small_params(), topo);
  WorkerFleet fleet(par.context(), par.topology(), cfg);
  par.set_executor(&fleet);
  TrafficLog log;
  expect_bitwise(want, par.compute(sys.positions, sys.charges, &log));

  const pid_t first_pid = fleet.worker_pid(1);
  fleet.term_worker(1, cfg.term_grace_ms);
  // The worker drained voluntarily (exit 0), not via the SIGKILL fallback.
  // (The fleet itself only notices the death on its next dispatch.)
  EXPECT_TRUE(fleet.worker_exited_cleanly(1));

  // The respawned worker resumes from the sealed context, still bitwise.
  expect_bitwise(want, par.compute(sys.positions, sys.charges, &log));
  EXPECT_NE(fleet.worker_pid(1), first_pid);
  std::remove(cfg.context_path.c_str());
}

TEST(FleetShutdown, QuiesceHandshakesEveryWorkerAndIsIdempotent) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(100, 3.2, 61);
  const CoulombResult want = serial_reference(sys, topo);
  FleetConfig cfg;
  cfg.backend = FleetConfig::Backend::kProc;
  cfg.workers = 2;
  cfg.worker_bin = TME_WORKER_BIN;
  cfg.term_grace_ms = 3000;
  cfg.context_path = temp_path("quiesce_drill.ctx");

  ParallelTme par(sys.box, small_params(), topo);
  {
    WorkerFleet fleet(par.context(), par.topology(), cfg);
    par.set_executor(&fleet);
    TrafficLog log;
    expect_bitwise(want, par.compute(sys.positions, sys.charges, &log));
    EXPECT_FALSE(fleet.quiesced());
    EXPECT_TRUE(fleet.quiesce());  // every live worker acks the shutdown
    EXPECT_TRUE(fleet.quiesced());
    EXPECT_TRUE(fleet.quiesce());  // idempotent
    par.set_executor(nullptr);
  }  // the destructor only tears down the transport now

  // The quiesce re-sealed the context: a fresh fleet resumes from it bitwise.
  {
    WorkerFleet fleet(par.context(), par.topology(), cfg);
    par.set_executor(&fleet);
    TrafficLog log;
    expect_bitwise(want, par.compute(sys.positions, sys.charges, &log));
    par.set_executor(nullptr);
  }
  std::remove(cfg.context_path.c_str());
}

TEST(FleetShutdown, TermGraceZeroStillKillsForkModeWorkers) {
  const hw::TorusTopology topo(2, 2, 1);
  const TestSystem sys = random_system(80, 3.2, 67);
  FleetConfig cfg;
  cfg.backend = FleetConfig::Backend::kProc;
  cfg.workers = 2;  // fork mode: no exec, no SIGTERM handler installed
  cfg.respawn = false;
  ParallelTme par(sys.box, small_params(), topo);
  WorkerFleet fleet(par.context(), par.topology(), cfg);
  fleet.term_worker(1, 0);  // grace 0: straight to SIGKILL
  EXPECT_FALSE(fleet.worker_exited_cleanly(1));
  // The next heartbeat notices the kill.
  EXPECT_LE(fleet.heartbeat(std::chrono::milliseconds(300)), 1u);
  EXPECT_FALSE(fleet.worker_alive(1));
}

}  // namespace
}  // namespace tme::par
