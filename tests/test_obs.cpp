// Unit tests for the observability subsystem (src/obs): registry semantics,
// hierarchical phase nesting, thread-safety under parallel_for, JSON
// round-tripping, and the TME_METRICS compile-out guarantee.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace tme::obs {
namespace {

// Every test works on the global registry (that is what the instrumentation
// macros target), so each starts from a clean slate.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::global().reset(); }
};

const TimerStat* find_timer(const MetricsSnapshot& snap, const std::string& path) {
  for (const auto& [p, stat] : snap.timers) {
    if (p == path) return &stat;
  }
  return nullptr;
}

TEST_F(ObsTest, CounterAccumulatesAndSurvivesReset) {
  Counter& c = Registry::global().counter("test/events");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  // Reset zeroes but keeps the counter object (cached references stay valid).
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(7);
  EXPECT_EQ(Registry::global().counter("test/events").value(), 7u);
}

TEST_F(ObsTest, GaugeKeepsLastWrite) {
  Registry::global().gauge_set("test/grid_points", 32768.0);
  Registry::global().gauge_set("test/grid_points", 4096.0);
  const MetricsSnapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "test/grid_points");
  EXPECT_EQ(snap.gauges[0].second, 4096.0);
}

TEST_F(ObsTest, PhaseNestingBuildsHierarchicalPaths) {
  {
    ScopedPhase outer("compute");
    EXPECT_EQ(ScopedPhase::current_path(), "compute");
    {
      ScopedPhase inner("convolution");
      EXPECT_EQ(ScopedPhase::current_path(), "compute/convolution");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    {
      ScopedPhase inner("top_fft");
      EXPECT_EQ(ScopedPhase::current_path(), "compute/top_fft");
    }
  }
  EXPECT_EQ(ScopedPhase::current_path(), "");

  const MetricsSnapshot snap = Registry::global().snapshot();
  const TimerStat* outer = find_timer(snap, "compute");
  const TimerStat* conv = find_timer(snap, "compute/convolution");
  const TimerStat* fft = find_timer(snap, "compute/top_fft");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(conv, nullptr);
  ASSERT_NE(fft, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(conv->count, 1u);
  // A parent's elapsed time covers its children.
  EXPECT_GE(outer->seconds, conv->seconds + fft->seconds);
  EXPECT_GT(conv->seconds, 0.0);
}

TEST_F(ObsTest, RepeatedPhasesAccumulateCountAndTime) {
  for (int i = 0; i < 5; ++i) {
    ScopedPhase p("restriction");
  }
  const MetricsSnapshot snap = Registry::global().snapshot();
  const TimerStat* t = find_timer(snap, "restriction");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->count, 5u);
  EXPECT_GE(t->seconds, 0.0);
}

TEST_F(ObsTest, ConcurrentCounterIncrementsFromParallelFor) {
  Counter& c = Registry::global().counter("test/parallel_hits");
  parallel_for(0, 100000, [&](std::size_t) { c.add(); });
  EXPECT_EQ(c.value(), 100000u);

  // Lookup-by-name from inside worker threads must also be safe.
  parallel_for(0, 1000, [&](std::size_t i) {
    Registry::global().counter(i % 2 == 0 ? "test/even" : "test/odd").add();
  });
  EXPECT_EQ(Registry::global().counter("test/even").value(), 500u);
  EXPECT_EQ(Registry::global().counter("test/odd").value(), 500u);
}

TEST_F(ObsTest, JsonRoundTripPreservesEverything) {
  Registry& reg = Registry::global();
  reg.counter("alpha/events").add(123456789u);
  reg.counter("name with spaces \"quoted\"").add(7);
  reg.gauge_set("grid/points", 32768.0);
  reg.gauge_set("fraction", 0.30000000000000004);  // needs 17 digits
  reg.timer_add("tme/convolution", 0.012345);
  reg.timer_add("tme/convolution", 0.01);
  reg.timer_add("tme/top_fft", 3.5e-5);

  const MetricsSnapshot before = reg.snapshot();
  const std::string json = to_json(before);
  const MetricsSnapshot after = metrics_from_json(json);

  ASSERT_EQ(after.counters.size(), before.counters.size());
  for (std::size_t i = 0; i < before.counters.size(); ++i) {
    EXPECT_EQ(after.counters[i].first, before.counters[i].first);
    EXPECT_EQ(after.counters[i].second, before.counters[i].second);
  }
  ASSERT_EQ(after.gauges.size(), before.gauges.size());
  for (std::size_t i = 0; i < before.gauges.size(); ++i) {
    EXPECT_EQ(after.gauges[i].first, before.gauges[i].first);
    EXPECT_EQ(after.gauges[i].second, before.gauges[i].second);  // exact
  }
  ASSERT_EQ(after.timers.size(), before.timers.size());
  for (std::size_t i = 0; i < before.timers.size(); ++i) {
    EXPECT_EQ(after.timers[i].first, before.timers[i].first);
    EXPECT_EQ(after.timers[i].second.seconds, before.timers[i].second.seconds);
    EXPECT_EQ(after.timers[i].second.count, before.timers[i].second.count);
  }
}

TEST_F(ObsTest, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(json_parse("{"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(json_parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(metrics_from_json("{\"counters\": {}}"), std::runtime_error);
}

// The overhead guard: with -DTME_METRICS=OFF every macro must expand to a
// no-op (nothing reaches the registry); with the default ON build the same
// sites must record.  The test passes in both configurations.
TEST_F(ObsTest, MacrosCompileOutWhenDisabled) {
  {
    TME_PHASE("guard_phase");
    TME_COUNTER_ADD("guard_counter", 3);
    TME_GAUGE_SET("guard_gauge", 1.5);
  }
  const MetricsSnapshot snap = Registry::global().snapshot();
  if constexpr (kMetricsEnabled) {
    ASSERT_NE(find_timer(snap, "guard_phase"), nullptr);
    EXPECT_EQ(Registry::global().counter("guard_counter").value(), 3u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].second, 1.5);
  } else {
    EXPECT_EQ(snap.timers.size(), 0u);
    EXPECT_EQ(snap.gauges.size(), 0u);
    // No counter was ever created by the no-op macro.
    bool found = false;
    for (const auto& [name, value] : snap.counters) {
      if (name == "guard_counter") found = true;
    }
    EXPECT_FALSE(found);
  }
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  Registry& reg = Registry::global();
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(1);
  reg.counter("mid").add(1);
  const MetricsSnapshot snap = Registry::global().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

// --- histograms --------------------------------------------------------------

// Nearest-rank percentile of a sorted sample — the exact reference the
// bin-walk quantile approximates.
double exact_quantile(std::vector<double> sorted, double q) {
  const auto n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  return sorted[rank - 1];
}

TEST_F(ObsTest, HistogramPercentilesTrackSortedReference) {
  // Log-spaced values across four decades: the bin-walk estimate must land
  // within one bin's width (ratio 10^(1/8) ~ 1.334) of the exact percentile.
  Histogram& h = Registry::global().histogram("test/latency");
  std::vector<double> samples;
  double v = 1e-6;
  for (int i = 0; i < 400; ++i) {
    samples.push_back(v);
    h.record(v);
    v *= 1.0233;  // ~400 points spanning 1e-6 .. 1e-2
  }
  std::sort(samples.begin(), samples.end());
  const HistogramStat stat = HistogramStat::from(h);
  EXPECT_EQ(stat.count, samples.size());
  EXPECT_EQ(stat.min, samples.front());
  EXPECT_EQ(stat.max, samples.back());
  const double bin_ratio = std::pow(10.0, 1.0 / 8.0);
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = exact_quantile(samples, q);
    const double approx = stat.quantile(q);
    EXPECT_LE(approx / exact, bin_ratio) << "q=" << q;
    EXPECT_GE(approx / exact, 1.0 / bin_ratio) << "q=" << q;
  }
  // The precomputed fields match the quantile walk.
  EXPECT_EQ(stat.p50, stat.quantile(0.5));
  EXPECT_EQ(stat.p95, stat.quantile(0.95));
  EXPECT_EQ(stat.p99, stat.quantile(0.99));
}

TEST_F(ObsTest, HistogramSingleValueCollapsesToIt) {
  Histogram& h = Registry::global().histogram("test/constant");
  for (int i = 0; i < 10; ++i) h.record(2.5e-3);
  const HistogramStat stat = HistogramStat::from(h);
  EXPECT_EQ(stat.p50, 2.5e-3);  // quantiles clamp to [min, max]
  EXPECT_EQ(stat.p99, 2.5e-3);
  EXPECT_EQ(stat.min, 2.5e-3);
  EXPECT_EQ(stat.max, 2.5e-3);
}

TEST_F(ObsTest, HistogramHandlesUnderflowAndOverflow) {
  Histogram& h = Registry::global().histogram("test/extremes");
  h.record(0.0);      // below kMinValue -> underflow bin
  h.record(-1.0);     // negative -> underflow bin
  h.record(1e20);     // beyond the top decade -> overflow bin
  const HistogramStat stat = HistogramStat::from(h);
  EXPECT_EQ(stat.count, 3u);
  EXPECT_EQ(stat.min, -1.0);
  EXPECT_EQ(stat.max, 1e20);
  // Underflow quantiles report the tracked min, overflow the tracked max.
  EXPECT_EQ(stat.quantile(0.01), -1.0);
  EXPECT_EQ(stat.quantile(0.99), 1e20);
}

TEST_F(ObsTest, TimerSitesFeedHistograms) {
  Registry::global().timer_add("test/phase", 1e-3);
  Registry::global().timer_add("test/phase", 2e-3);
  const MetricsSnapshot snap = Registry::global().snapshot();
  bool found = false;
  for (const auto& [path, stat] : snap.histograms) {
    if (path == "test/phase") {
      found = true;
      EXPECT_EQ(stat.count, 2u);
      EXPECT_EQ(stat.min, 1e-3);
      EXPECT_EQ(stat.max, 2e-3);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, HistogramJsonRoundTrip) {
  Histogram& h = Registry::global().histogram("test/rt");
  h.record(1e-4);
  h.record(5e-4);
  h.record(2e-3);
  const MetricsSnapshot snap = Registry::global().snapshot();
  const MetricsSnapshot back = metrics_from_json(to_json(snap));
  ASSERT_EQ(back.histograms.size(), snap.histograms.size());
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    EXPECT_EQ(back.histograms[i].first, snap.histograms[i].first);
    const HistogramStat& a = snap.histograms[i].second;
    const HistogramStat& b = back.histograms[i].second;
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p95, b.p95);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.bins, b.bins);
  }
}

TEST_F(ObsTest, HistogramResetKeepsReference) {
  Histogram& h = Registry::global().histogram("test/reset");
  h.record(1.0);
  EXPECT_EQ(h.count(), 1u);
  Registry::global().reset();
  EXPECT_EQ(h.count(), 0u);
  h.record(2.0);
  EXPECT_EQ(HistogramStat::from(Registry::global().histogram("test/reset")).count, 1u);
}

}  // namespace
}  // namespace tme::obs
