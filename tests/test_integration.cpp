// Cross-module integration tests: the Table 1 protocol end to end on real
// TIP3P water, the fixed-point (hardware-datapath) TME, and consistency of
// the whole force-field stack across long-range solvers.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/tme.hpp"
#include "core/tme_fixed.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "md/forcefield.hpp"
#include "md/integrator.hpp"
#include "md/short_range.hpp"
#include "md/water_box.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

// Scaled Table 1 setup: water box, 16^3 grid, r_c / h = 4.011 (the paper's
// 1.25 nm column), single shared Ewald reference.
class Table1Protocol : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WaterBoxSpec spec;
    spec.molecules = 864;
    spec.seed = 11;
    water_ = new WaterBox(build_water_box(spec));
    const double box_l = water_->system.box.lengths.x;
    h_ = box_l / 16.0;
    r_cut_ = 4.0110 * h_;
    alpha_ = alpha_from_tolerance(r_cut_, 1e-4);

    EwaldParams ref;
    ref.alpha = alpha_from_tolerance(0.5 * box_l, 1e-15);
    reference_ = new CoulombResult(ewald_reference(
        water_->system.box, water_->system.positions, water_->system.charges, ref));
  }
  static void TearDownTestSuite() {
    delete water_;
    delete reference_;
    water_ = nullptr;
    reference_ = nullptr;
  }

  static double total_error(CoulombResult lr) {
    ParticleSystem sys;
    sys.box = water_->system.box;
    sys.resize(water_->system.size());
    sys.positions = water_->system.positions;
    sys.charges = water_->system.charges;
    Topology topo;
    topo.lj().assign(sys.size(), LjParams{});
    topo.finalize(sys.size());
    ShortRangeParams params;
    params.cutoff = r_cut_;
    params.alpha = alpha_;
    sys.forces.assign(sys.size(), Vec3{});
    compute_short_range(sys, topo, params);
    for (std::size_t i = 0; i < sys.size(); ++i) lr.forces[i] += sys.forces[i];
    return lr.relative_force_error_against(*reference_);
  }

  static TmeParams tme_params(int gc, std::size_t m) {
    TmeParams tp;
    tp.alpha = alpha_;
    tp.grid = {16, 16, 16};
    tp.levels = 1;
    tp.grid_cutoff = gc;
    tp.num_gaussians = m;
    return tp;
  }

  static WaterBox* water_;
  static CoulombResult* reference_;
  static double h_, r_cut_, alpha_;
};

WaterBox* Table1Protocol::water_ = nullptr;
CoulombResult* Table1Protocol::reference_ = nullptr;
double Table1Protocol::h_ = 0.0;
double Table1Protocol::r_cut_ = 0.0;
double Table1Protocol::alpha_ = 0.0;

TEST_F(Table1Protocol, ConvergedTmeMatchesSpmeWithinTenPercent) {
  SpmeParams sp;
  sp.alpha = alpha_;
  sp.grid = {16, 16, 16};
  const Spme spme(water_->system.box, sp);
  const double spme_err =
      total_error(spme.compute(water_->system.positions, water_->system.charges));

  const Tme tme(water_->system.box, tme_params(8, 3));
  const double tme_err =
      total_error(tme.compute(water_->system.positions, water_->system.charges));
  // Paper Table 1, r_c = 1.25 nm: 1.40e-4 vs 1.33e-4 (5% apart).
  EXPECT_LT(tme_err, 1.15 * spme_err);
}

TEST_F(Table1Protocol, SingleGaussianIsMarkedlyWorse) {
  const Tme m1(water_->system.box, tme_params(8, 1));
  const Tme m3(water_->system.box, tme_params(8, 3));
  const double err1 =
      total_error(m1.compute(water_->system.positions, water_->system.charges));
  const double err3 =
      total_error(m3.compute(water_->system.positions, water_->system.charges));
  // Paper: 7.20e-4 vs 1.40e-4 at r_c = 1.25 nm (5x).
  EXPECT_GT(err1, 3.0 * err3);
}

TEST_F(Table1Protocol, GridCutoffTwelveMatchesEight) {
  const Tme g8(water_->system.box, tme_params(8, 4));
  const Tme g12(water_->system.box, tme_params(12, 4));
  const double err8 =
      total_error(g8.compute(water_->system.positions, water_->system.charges));
  const double err12 =
      total_error(g12.compute(water_->system.positions, water_->system.charges));
  EXPECT_NEAR(err12, err8, 0.05 * err8);
}

TEST_F(Table1Protocol, ErrorsConvergeAtMEqualsThree) {
  const Tme m3(water_->system.box, tme_params(8, 3));
  const Tme m4(water_->system.box, tme_params(8, 4));
  const double err3 =
      total_error(m3.compute(water_->system.positions, water_->system.charges));
  const double err4 =
      total_error(m4.compute(water_->system.positions, water_->system.charges));
  EXPECT_NEAR(err4, err3, 0.05 * err3);
}

TEST_F(Table1Protocol, FixedPointPathTracksDoublePath) {
  const Tme tme(water_->system.box, tme_params(8, 4));
  const CoulombResult lr_double =
      tme.compute(water_->system.positions, water_->system.charges);
  const CoulombResult lr_fixed = tme_compute_fixed(
      tme, water_->system.positions, water_->system.charges);
  // The 32-bit grid / 24-bit coefficient datapath must not move the force
  // error: quantisation sits orders of magnitude below the method error.
  const double deviation = lr_fixed.relative_force_error_against(lr_double);
  EXPECT_LT(deviation, 1e-4);
  EXPECT_GT(deviation, 0.0);  // it genuinely quantises
  EXPECT_NEAR(lr_fixed.energy, lr_double.energy,
              1e-5 * std::abs(lr_double.energy));
}

TEST_F(Table1Protocol, FixedPointAccuracyVersusReferenceUnchanged) {
  const Tme tme(water_->system.box, tme_params(8, 4));
  const double err_double =
      total_error(tme.compute(water_->system.positions, water_->system.charges));
  const double err_fixed = total_error(tme_compute_fixed(
      tme, water_->system.positions, water_->system.charges));
  EXPECT_NEAR(err_fixed, err_double, 0.05 * err_double);
}

TEST_F(Table1Protocol, SinglePrecisionPathTracksDoublePath) {
  const Tme tme(water_->system.box, tme_params(8, 4));
  const CoulombResult lr_double =
      tme.compute(water_->system.positions, water_->system.charges);
  const CoulombResult lr_single = tme_compute_single(
      tme, water_->system.positions, water_->system.charges);
  const double deviation = lr_single.relative_force_error_against(lr_double);
  // fp32 rounding sits far below the 1e-4-level method error (the paper's
  // single-precision measurements are method-error dominated).
  EXPECT_LT(deviation, 1e-5);
  EXPECT_GT(deviation, 0.0);
}

TEST(Integration, AnisotropicFig9BoxWorks) {
  // The paper's production system lives in a 9.7 x 8.3 x 10.6 nm box; shrink
  // it by 3 while keeping the aspect ratio, with matching anisotropic grids.
  const Box box{{9.7 / 3.0, 8.3 / 3.0, 10.6 / 3.0}};
  Rng rng(55);
  const std::size_t n = 600;
  std::vector<Vec3> pos(n);
  std::vector<double> q(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = {rng.uniform(0.0, box.lengths.x), rng.uniform(0.0, box.lengths.y),
              rng.uniform(0.0, box.lengths.z)};
    q[i] = rng.uniform(-1.0, 1.0);
    total += q[i];
  }
  for (auto& v : q) v -= total / static_cast<double>(n);

  const double alpha = alpha_from_tolerance(0.8, 1e-4);
  TmeParams tp;
  tp.alpha = alpha;
  tp.grid = {16, 16, 16};  // anisotropic spacing h = (0.20, 0.17, 0.22)
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  const Tme tme(box, tp);
  const CoulombResult lr_tme = tme.compute(pos, q);

  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = tp.grid;
  const Spme spme(box, sp);
  const CoulombResult lr_spme = spme.compute(pos, q);
  EXPECT_LT(lr_tme.relative_force_error_against(lr_spme), 2e-2);
  double q2 = 0.0;
  for (const double v : q) q2 += v * v;
  const double gross = constants::kCoulomb * alpha / std::sqrt(M_PI) * q2;
  EXPECT_NEAR(lr_tme.energy, lr_spme.energy, 2e-3 * gross);
}

TEST(Integration, NveWithTmeConservesEnergy) {
  WaterBoxSpec spec;
  spec.molecules = 216;
  WaterBox wb = build_water_box(spec);
  const double r_cut = 4.0 * wb.system.box.lengths.x / 16.0;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;
  sr.shift_lj = true;
  TmeParams tp;
  tp.alpha = alpha;
  tp.grid = {16, 16, 16};
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  const ForceField ff(sr, make_tme_solver(wb.system.box, tp));
  const VelocityVerlet integrator(wb.topology, wb.system, IntegratorParams{});
  integrator.prime(wb.system, wb.topology, ff);
  StepReport report{};
  for (int s = 0; s < 20; ++s) report = integrator.step(wb.system, wb.topology, ff);
  const double e0 = report.total();
  double worst = 0.0;
  for (int s = 0; s < 100; ++s) {
    report = integrator.step(wb.system, wb.topology, ff);
    worst = std::max(worst, std::abs(report.total() - e0));
  }
  EXPECT_LT(worst, 0.01 * report.kinetic + 1.0);
}

TEST(Integration, EwaldSolverAgreesWithSpmeSolverInForceField) {
  WaterBoxSpec spec;
  spec.molecules = 125;
  WaterBox wb_a = build_water_box(spec);
  WaterBox wb_b = build_water_box(spec);
  const double r_cut = 0.7;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;

  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = {24, 24, 24};  // fine grid: SPME error well below the comparison
  const ForceField ff_spme(sr, make_spme_solver(wb_a.system.box, sp));
  EwaldSolverParams ep;
  ep.alpha = alpha;
  ep.n_cut = reciprocal_cutoff_from_tolerance(
      alpha, wb_b.system.box.lengths.x, 1e-10);
  const ForceField ff_ewald(sr, make_ewald_solver(wb_b.system.box, ep));

  const EnergyReport e_spme = ff_spme.evaluate(wb_a.system, wb_a.topology);
  const EnergyReport e_ewald = ff_ewald.evaluate(wb_b.system, wb_b.topology);
  EXPECT_NEAR(e_spme.potential(), e_ewald.potential(),
              1e-3 * std::abs(e_ewald.potential()));
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < wb_a.system.size(); ++i) {
    worst = std::max(worst, norm(wb_a.system.forces[i] - wb_b.system.forces[i]));
    scale = std::max(scale, norm(wb_b.system.forces[i]));
  }
  EXPECT_LT(worst, 5e-3 * scale);
}

}  // namespace
}  // namespace tme
