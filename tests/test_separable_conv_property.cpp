// Property test: the axis-wise (separable) convolution path must agree with
// a brute-force dense 3D convolution on random small grids — random kernels,
// periodic wrap, non-cubic shapes — in both the double-precision path
// (convolve_tensor) and the fixed-point GCU path (convolve_tensor_fixed,
// which quantises grid words and coefficients and must agree to within the
// formats' resolution).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "fixed/fixed_point.hpp"
#include "grid/grid3d.hpp"
#include "grid/separable_conv.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

Kernel1d random_kernel(Rng& rng, int cutoff, double amplitude = 1.0) {
  Kernel1d k;
  k.cutoff = cutoff;
  k.taps.resize(static_cast<std::size_t>(2 * cutoff + 1));
  for (double& t : k.taps) t = amplitude * (2.0 * rng.uniform() - 1.0);
  return k;
}

Grid3d random_grid(Rng& rng, GridDims dims, double amplitude = 1.0) {
  Grid3d g(dims);
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = amplitude * (2.0 * rng.uniform() - 1.0);
  }
  return g;
}

// The dense cube equivalent of one separable term: taps3d[m] = kx kz ky
// outer product, x-fastest like convolve_dense3d expects.
std::vector<double> outer_product_taps(const SeparableTerm& term) {
  const int c = term.kx.cutoff;
  const std::size_t width = static_cast<std::size_t>(2 * c + 1);
  std::vector<double> taps(width * width * width);
  for (int mz = -c; mz <= c; ++mz) {
    for (int my = -c; my <= c; ++my) {
      for (int mx = -c; mx <= c; ++mx) {
        taps[(static_cast<std::size_t>(mz + c) * width +
              static_cast<std::size_t>(my + c)) *
                 width +
             static_cast<std::size_t>(mx + c)] =
            term.kx.tap(mx) * term.ky.tap(my) * term.kz.tap(mz);
      }
    }
  }
  return taps;
}

double max_abs_diff(const Grid3d& a, const Grid3d& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(SeparableConvProperty, SingleTermMatchesDenseOnRandomGrids) {
  Rng rng(1234);
  // Shapes chosen to exercise periodic wrap hard: kernels reaching most of
  // the way around the (non-cubic) domain.
  const struct {
    GridDims dims;
    int cutoff;
  } cases[] = {
      {{4, 4, 4}, 1},  {{6, 4, 8}, 2},  {{5, 7, 3}, 1},
      {{8, 8, 8}, 3},  {{9, 4, 6}, 2},  {{4, 6, 4}, 1},
  };
  for (const auto& c : cases) {
    for (int trial = 0; trial < 4; ++trial) {
      SeparableTerm term{random_kernel(rng, c.cutoff),
                         random_kernel(rng, c.cutoff),
                         random_kernel(rng, c.cutoff)};
      const Grid3d in = random_grid(rng, c.dims);

      Grid3d separable(c.dims);
      convolve_tensor(in, {term}, 1.0, separable);

      Grid3d dense(c.dims);
      convolve_dense3d(in, outer_product_taps(term), c.cutoff, dense);

      EXPECT_LT(max_abs_diff(separable, dense), 1e-12)
          << "dims " << c.dims.nx << "x" << c.dims.ny << "x" << c.dims.nz
          << " cutoff " << c.cutoff << " trial " << trial;
    }
  }
}

TEST(SeparableConvProperty, MultiTermAccumulatesWithScale) {
  Rng rng(77);
  const GridDims dims{6, 5, 4};
  const int cutoff = 1;
  const double scale = -2.5;
  std::vector<SeparableTerm> terms;
  for (int t = 0; t < 3; ++t) {
    terms.push_back({random_kernel(rng, cutoff), random_kernel(rng, cutoff),
                     random_kernel(rng, cutoff)});
  }
  const Grid3d in = random_grid(rng, dims);

  // convolve_tensor accumulates: start both sides from the same base grid.
  Grid3d base = random_grid(rng, dims);
  Grid3d separable = base;
  convolve_tensor(in, terms, scale, separable);

  Grid3d expected = base;
  for (const SeparableTerm& term : terms) {
    Grid3d dense(dims);
    convolve_dense3d(in, outer_product_taps(term), cutoff, dense);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      expected[i] += scale * dense[i];
    }
  }
  EXPECT_LT(max_abs_diff(separable, expected), 1e-12);
}

TEST(SeparableConvProperty, AxisPassesCommute) {
  // The tensor structure means the three axis passes can run in any order;
  // x(y(z)) must equal the canonical z(y(x)).
  Rng rng(9);
  const GridDims dims{6, 6, 6};
  const SeparableTerm term{random_kernel(rng, 2), random_kernel(rng, 2),
                           random_kernel(rng, 2)};
  const Grid3d in = random_grid(rng, dims);

  const Grid3d xyz = convolve_separable(in, term.kx, term.ky, term.kz);

  Grid3d tmp1(dims), tmp2(dims);
  convolve_axis(in, term.kz, ConvAxis::kZ, tmp1);
  convolve_axis(tmp1, term.ky, ConvAxis::kY, tmp2);
  convolve_axis(tmp2, term.kx, ConvAxis::kX, tmp1);

  EXPECT_LT(max_abs_diff(xyz, tmp1), 1e-12);
}

TEST(SeparableConvProperty, FixedPointPathTracksDenseWithinResolution) {
  Rng rng(4321);
  const GridDims dims{6, 4, 6};
  const int cutoff = 2;
  const double amplitude = 0.9;
  // The hardware formats: 32-bit grid words (20 fractional bits) and 24-bit
  // coefficients with integer headroom for the omega-sharpened taps.
  const FixedFormat grid_fmt = mdgrape_grid_format();
  const FixedFormat coeff_fmt = mdgrape_coeff_format();

  // Worst-case quantisation bound per axis pass: (2c+1) products of a tap
  // error (coeff resolution) against a grid value plus a grid-word error
  // (grid resolution) against a tap, then one output rounding; errors from
  // earlier passes are amplified by at most the kernel L1 norm per later
  // pass.  Signal magnitude grows the same way, so the bound stays tight
  // relative to the values.
  const double width = 2.0 * cutoff + 1.0;
  const double l1 = width * amplitude;  // max kernel L1 norm
  double max_in = 1.0, err = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    err = l1 * err +
          width * (max_in * coeff_fmt.resolution() +
                   amplitude * grid_fmt.resolution()) +
          grid_fmt.resolution();
    max_in *= l1;
  }
  const double tol = 2.0 * err;

  for (int trial = 0; trial < 4; ++trial) {
    SeparableTerm term{random_kernel(rng, cutoff, amplitude),
                       random_kernel(rng, cutoff, amplitude),
                       random_kernel(rng, cutoff, amplitude)};
    const Grid3d in = random_grid(rng, dims, 1.0);

    Grid3d fixed(dims);
    convolve_tensor_fixed(in, {term}, 1.0, grid_fmt, coeff_fmt, fixed);

    Grid3d dense(dims);
    convolve_dense3d(in, outer_product_taps(term), cutoff, dense);

    EXPECT_LT(max_abs_diff(fixed, dense), tol) << "trial " << trial;
    // And the fixed path must actually be close, not trivially zero.
    double max_mag = 0.0;
    for (std::size_t i = 0; i < fixed.size(); ++i) {
      max_mag = std::max(max_mag, std::abs(fixed[i]));
    }
    EXPECT_GT(max_mag, 1e-3);
  }
}

TEST(SeparableConvProperty, CoefficientFormatSaturatesOutOfRangeTaps) {
  // The 24.24 format the paper quotes ("maximum 1 - 2^-24") cannot hold a
  // signed tap of magnitude >= 0.5 at total_bits = 24: quantize must
  // saturate rather than wrap.
  FixedFormat narrow;
  narrow.total_bits = 24;
  narrow.frac_bits = 24;
  EXPECT_EQ(quantize(0.9, narrow), narrow.max_raw());
  EXPECT_EQ(quantize(-0.9, narrow), narrow.min_raw());
  EXPECT_NEAR(quantize_value(0.9, narrow), 0.5, 1e-6);
  // The repo's hardware coefficient format keeps integer headroom instead.
  const FixedFormat coeff = mdgrape_coeff_format();
  EXPECT_NEAR(quantize_value(0.9, coeff), 0.9, coeff.resolution());
}

}  // namespace
}  // namespace tme
