// The LongRangeSolver interface: describe() manifests and their round-trip
// through the run manifest, analytic virials against the finite-difference
// reference, and the net-charge neutralising-background correction.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/solvers.hpp"
#include "ewald/splitting.hpp"
#include "md/scenarios.hpp"
#include "obs/manifest.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

// Neutral random charge system (the test_ewald fixture idiom).
struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem random_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

// --- registry and describe() manifests --------------------------------------

TEST(SolverRegistry, BuildsEveryRegisteredBackend) {
  const Box box{{2.0, 2.0, 2.0}};
  SolverTuning tuning;
  tuning.alpha = 3.0;
  ASSERT_GE(long_range_backends().size(), 4u);
  for (const std::string& backend : long_range_backends()) {
    const auto solver = make_long_range_solver(backend, box, tuning);
    ASSERT_NE(solver, nullptr) << backend;
    EXPECT_EQ(solver->name(), backend);
    EXPECT_DOUBLE_EQ(solver->alpha(), 3.0);
    EXPECT_DOUBLE_EQ(solver->box().lengths.x, 2.0);
  }
  EXPECT_THROW(make_long_range_solver("pppm", box, tuning),
               std::invalid_argument);
}

TEST(SolverRegistry, DescribeNamesTheBackendAndItsKnobs) {
  const Box box{{2.0, 2.0, 2.0}};
  SolverTuning tuning;
  tuning.alpha = 2.5;
  tuning.order = 4;
  for (const std::string& backend : long_range_backends()) {
    const auto solver = make_long_range_solver(backend, box, tuning);
    const obs::JsonValue d = solver->describe();
    ASSERT_TRUE(d.is_object()) << backend;
    EXPECT_EQ(d.at("backend").as_string(), backend);
    EXPECT_DOUBLE_EQ(d.at("alpha").as_number(), 2.5);
  }
  // Backend-specific knobs survive.
  const auto spme = make_long_range_solver("spme", box, tuning);
  EXPECT_DOUBLE_EQ(spme->describe().at("order").as_number(), 4.0);
  const auto tme_fixed = make_long_range_solver("tme_fixed", box, tuning);
  EXPECT_TRUE(tme_fixed->describe().contains("grid_frac_bits"));
}

TEST(SolverRegistry, DescribeRoundTripsThroughTheRunManifest) {
  const Box box{{2.0, 2.0, 2.0}};
  SolverTuning tuning;
  tuning.alpha = 3.5;
  const auto solver = make_long_range_solver("tme", box, tuning);
  obs::manifest_set("solver", solver->describe());

  // Serialise the assembled manifest and parse it back: the solver config
  // must survive the full JSON round trip the BENCH exports use.
  const obs::JsonValue parsed = obs::json_parse(obs::manifest_json().dump());
  const obs::JsonValue& entry = parsed.at("runtime").at("solver");
  EXPECT_EQ(entry.at("backend").as_string(), "tme");
  EXPECT_DOUBLE_EQ(entry.at("alpha").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(entry.at("levels").as_number(), 1.0);
}

// --- virials -----------------------------------------------------------------

TEST(SolverVirial, EwaldAnalyticVirialMatchesFiniteDifference) {
  const TestSystem sys = random_system(40, 2.2, 31);
  EwaldSolverParams params;
  params.alpha = 3.0;
  const LongRangeFactory make = [&](const Box& b) {
    return make_ewald_solver(b, params);
  };
  const auto solver = make(sys.box);
  ASSERT_TRUE(solver->computes_virial());
  const CoulombResult out = solver->compute(sys.positions, sys.charges);
  const double fd =
      finite_difference_virial(make, sys.box, sys.positions, sys.charges);
  EXPECT_NEAR(out.virial, fd, 1e-4 * std::max(1.0, std::abs(fd)));
}

TEST(SolverVirial, SpmeAnalyticVirialMatchesFiniteDifferenceAndEwald) {
  const TestSystem sys = random_system(40, 2.2, 32);
  SpmeParams sp;
  sp.alpha = 3.0;
  sp.grid = {24, 24, 24};
  sp.compute_virial = true;
  const LongRangeFactory make = [&](const Box& b) {
    return make_spme_solver(b, sp);
  };
  const auto solver = make(sys.box);
  ASSERT_TRUE(solver->computes_virial());
  const CoulombResult out = solver->compute(sys.positions, sys.charges);

  const double fd =
      finite_difference_virial(make, sys.box, sys.positions, sys.charges);
  EXPECT_NEAR(out.virial, fd, 1e-4 * std::max(1.0, std::abs(fd)));

  EwaldSolverParams ep;
  ep.alpha = 3.0;
  const CoulombResult exact =
      make_ewald_solver(sys.box, ep)->compute(sys.positions, sys.charges);
  EXPECT_NEAR(out.virial, exact.virial,
              1e-3 * std::max(1.0, std::abs(exact.virial)));
}

TEST(SolverVirial, ChargedCellVirialIncludesTheBackgroundTerm) {
  // Same FD identity, but with a net-charged cell: -dE/dln(lambda) only
  // matches when the analytic virial carries the background's 3 E_bg.
  TestSystem sys = random_system(30, 2.0, 33);
  sys.charges[0] += 2.0;  // net charge +2
  EwaldSolverParams params;
  params.alpha = 3.0;
  const LongRangeFactory make = [&](const Box& b) {
    return make_ewald_solver(b, params);
  };
  const CoulombResult out =
      make(sys.box)->compute(sys.positions, sys.charges);
  EXPECT_LT(out.energy_background, 0.0);
  const double fd =
      finite_difference_virial(make, sys.box, sys.positions, sys.charges);
  EXPECT_NEAR(out.virial, fd, 1e-4 * std::max(1.0, std::abs(fd)));
}

// --- net-charge background ---------------------------------------------------

TEST(NetChargeBackground, FormulaAndArgumentChecks) {
  EXPECT_DOUBLE_EQ(net_charge_background_energy(0.0, 3.0, 8.0), 0.0);
  const double expected =
      -constants::kCoulomb * M_PI * 4.0 / (2.0 * 9.0 * 8.0);
  EXPECT_DOUBLE_EQ(net_charge_background_energy(2.0, 3.0, 8.0), expected);
  EXPECT_DOUBLE_EQ(net_charge_background_energy(-2.0, 3.0, 8.0), expected);
  EXPECT_THROW(net_charge_background_energy(1.0, 0.0, 8.0),
               std::invalid_argument);
  EXPECT_THROW(net_charge_background_energy(1.0, 3.0, -1.0),
               std::invalid_argument);
}

TEST(NetChargeBackground, ChargedCellEnergyIsAlphaIndependent) {
  // The total energy of point charges + neutralising background is a
  // physical quantity; with the -pi/(2 alpha^2 V) (sum q)^2 correction the
  // split into real + reciprocal + self + background must not depend on the
  // splitting parameter.
  TestSystem sys = random_system(24, 1.8, 34);
  sys.charges[5] += 1.5;
  double e_prev = 0.0;
  bool first = true;
  // alpha r_cut >= 4.5 keeps the real-space truncation below the 1e-8 gate
  // (erfc(4.5) ~ 2e-10); the auto reciprocal cutoff converges at any alpha.
  for (const double alpha : {5.0, 6.0, 7.0}) {
    EwaldParams params;
    params.alpha = alpha;  // r_cut = L/2
    const CoulombResult out =
        ewald_reference(sys.box, sys.positions, sys.charges, params);
    if (!first) {
      EXPECT_NEAR(out.energy, e_prev, 1e-8 * std::abs(e_prev))
          << "alpha=" << alpha;
    }
    e_prev = out.energy;
    first = false;
  }
}

TEST(NetChargeBackground, SingleChargeReproducesTheWignerConstant) {
  // One unit point charge + uniform background in a cubic cell of edge L:
  // E = -kC * 2.837297 / (2 L) (the Madelung constant of the Wigner
  // lattice).  alpha L = 8 pushes the real-space image sum below 1e-15, so
  // the ewald backend's reciprocal + self + background alone must hit it.
  const double box_length = 1.0;
  const Box box{{box_length, box_length, box_length}};
  EwaldSolverParams params;
  params.alpha = 8.0 / box_length;
  const std::vector<Vec3> pos{{0.25, 0.5, 0.75}};
  const std::vector<double> q{1.0};
  const CoulombResult out = make_ewald_solver(box, params)->compute(pos, q);
  const double expected = -constants::kCoulomb * 2.837297 / (2.0 * box_length);
  EXPECT_NEAR(out.energy, expected, 1e-5 * std::abs(expected));
}

TEST(NetChargeBackground, MeshBackendsAgreeWithEwaldOnAChargedCell) {
  // Every mesh backend applies the correction at its own effective top-level
  // alpha; totals must still agree with the classical Ewald long-range part.
  const Scenario sc = scenario_charged_solute(32, 2.0, 91);
  SolverTuning tuning;
  const double r_cut = 0.45 * sc.box.lengths.x;
  tuning.alpha = alpha_from_tolerance(r_cut, 1e-4);
  tuning.grid = sc.grid;
  const CoulombResult ref =
      make_long_range_solver("ewald", sc.box, tuning)
          ->compute(sc.positions, sc.charges);
  for (const std::string backend : {"spme", "tme", "tme_fixed"}) {
    const CoulombResult out =
        make_long_range_solver(backend, sc.box, tuning)
            ->compute(sc.positions, sc.charges);
    EXPECT_NEAR(out.energy, ref.energy, 2e-3 * std::abs(ref.energy))
        << backend;
  }
}

}  // namespace
}  // namespace tme
