#include <cmath>

#include <gtest/gtest.h>

#include "core/tme.hpp"
#include "core/tuning.hpp"
#include "ewald/splitting.hpp"
#include "md/water_box.hpp"

namespace tme {
namespace {

TEST(Tuning, PaperLikeBoxRecoversPaperParameters) {
  // A 10 nm cube with r_c = 1.25 nm should come out close to the paper's
  // configuration: 32^3 grid, alpha h ~ 0.69, g_c = 8, M >= 3.
  const Box box{{9.9727, 9.9727, 9.9727}};
  TmeTuningRequest req;
  req.r_cut = 1.25;
  req.rtol = 1e-4;
  const TmeTuning t = tune_tme(box, req);
  EXPECT_EQ(t.params.grid.nx, 32u);
  EXPECT_EQ(t.params.grid_cutoff, 8);
  EXPECT_GE(t.params.num_gaussians, 3u);
  EXPECT_NEAR(t.alpha * t.grid_spacing, 0.69, 0.12);
  EXPECT_NEAR(t.rc_over_h, 4.0, 0.6);
  // The tuned parameters construct a working solver.
  const Tme solver(box, t.params);
  EXPECT_EQ(solver.params().levels, t.params.levels);
}

TEST(Tuning, DeepensHierarchyForLargeBoxes) {
  const Box box{{20.0, 20.0, 20.0}};
  TmeTuningRequest req;
  req.r_cut = 1.25;
  req.max_levels = 2;
  const TmeTuning t = tune_tme(box, req);
  EXPECT_EQ(t.params.levels, 2);
  EXPECT_GE(t.params.grid.nx, 64u);
  // Top grid stays SPME-healthy.
  EXPECT_GE(t.params.grid.nx >> t.params.levels, 12u);
}

TEST(Tuning, AnisotropicBoxGetsAnisotropicGrid) {
  const Box box{{9.7, 8.3, 10.6}};  // the Fig. 9 box
  TmeTuningRequest req;
  req.r_cut = 1.2;
  const TmeTuning t = tune_tme(box, req);
  EXPECT_LE(t.params.grid.ny, t.params.grid.nx);
  EXPECT_LE(t.params.grid.nx, t.params.grid.nz);
  const Tme solver(box, t.params);  // must construct
  (void)solver;
}

TEST(Tuning, TighterToleranceRaisesGaussianCount) {
  const Box box{{8.0, 8.0, 8.0}};
  TmeTuningRequest loose;
  loose.r_cut = 1.0;
  loose.rtol = 1e-3;
  TmeTuningRequest tight;
  tight.r_cut = 1.0;
  tight.rtol = 1e-6;
  EXPECT_LT(tune_tme(box, loose).params.num_gaussians,
            tune_tme(box, tight).params.num_gaussians);
}

TEST(Tuning, RejectsImpossibleRequests) {
  const Box small{{1.0, 1.0, 1.0}};
  TmeTuningRequest req;
  req.r_cut = 0.8;  // > L/2
  EXPECT_THROW(tune_tme(small, req), std::invalid_argument);

  const Box huge{{400.0, 400.0, 400.0}};
  TmeTuningRequest capped;
  capped.r_cut = 1.0;
  capped.max_grid = 128;  // would need ~1600 points per axis
  EXPECT_THROW(tune_tme(huge, capped), std::invalid_argument);
}

TEST(Ions, ReplacementKeepsNeutralityAndCounts) {
  WaterBoxSpec spec;
  spec.molecules = 125;
  WaterBox wb = build_water_box(spec);
  add_ion_pairs(wb, 4);
  EXPECT_EQ(wb.molecules, 125u - 8u);
  EXPECT_EQ(wb.system.size(), 3 * (125 - 8) + 8);
  double total = 0.0;
  for (const double q : wb.system.charges) total += q;
  EXPECT_NEAR(total, 0.0, 1e-12);
  // 4 sodiums (+1) and 4 chlorides (-1) at the tail.
  int na = 0, cl = 0;
  for (std::size_t i = wb.system.size() - 8; i < wb.system.size(); ++i) {
    if (wb.system.charges[i] > 0.5) ++na;
    if (wb.system.charges[i] < -0.5) ++cl;
    EXPECT_GT(wb.topology.lj()[i].epsilon, 0.0);
  }
  EXPECT_EQ(na, 4);
  EXPECT_EQ(cl, 4);
  EXPECT_EQ(wb.topology.rigid_waters().size(), 117u);
}

TEST(Ions, RejectsTooManyPairs) {
  WaterBoxSpec spec;
  spec.molecules = 8;
  WaterBox wb = build_water_box(spec);
  EXPECT_THROW(add_ion_pairs(wb, 5), std::invalid_argument);
}

TEST(Ions, ZeroPairsIsNoop) {
  WaterBoxSpec spec;
  spec.molecules = 27;
  WaterBox wb = build_water_box(spec);
  const std::size_t atoms = wb.system.size();
  add_ion_pairs(wb, 0);
  EXPECT_EQ(wb.system.size(), atoms);
}

}  // namespace
}  // namespace tme
