#include <cmath>

#include <gtest/gtest.h>

#include "hw/event_sim.hpp"
#include "hw/gcu_model.hpp"
#include "hw/lru_model.hpp"
#include "hw/machine.hpp"
#include "hw/network_model.hpp"
#include "hw/timechart.hpp"
#include "hw/tmenw_model.hpp"
#include "hw/torus.hpp"
#include "obs/metrics.hpp"

namespace tme::hw {
namespace {

// --- torus -------------------------------------------------------------------

TEST(Torus, IndexCoordRoundTrip) {
  const TorusTopology torus(8, 8, 8);
  EXPECT_EQ(torus.node_count(), 512u);
  for (const std::size_t idx : {0u, 1u, 63u, 511u, 100u}) {
    EXPECT_EQ(torus.index(torus.coord(idx)), idx);
  }
}

TEST(Torus, HopDistanceWrapsAround) {
  const TorusTopology torus(8, 8, 8);
  EXPECT_EQ(torus.hops({0, 0, 0}, {7, 0, 0}), 1u);  // wraparound
  EXPECT_EQ(torus.hops({0, 0, 0}, {4, 0, 0}), 4u);  // farthest on axis
  EXPECT_EQ(torus.hops({1, 2, 3}, {1, 2, 3}), 0u);
  EXPECT_EQ(torus.hops({0, 0, 0}, {4, 4, 4}), 12u);  // network diameter
}

TEST(Torus, SixNeighboursAreAtHopOne) {
  const TorusTopology torus(8, 8, 8);
  const NodeCoord c{3, 5, 7};
  for (const NodeCoord& n : torus.neighbours(c)) {
    EXPECT_EQ(torus.hops(c, n), 1u);
  }
}

// --- network -------------------------------------------------------------------

TEST(Network, NeighbourLatencyMatchesPaper) {
  const NetworkParams params;
  // Zero-payload neighbour message: the measured 200 ns latency.
  EXPECT_NEAR(transfer_time(params, 1, 1), 200e-9, 5e-9);
}

TEST(Network, BandwidthTermScalesWithBytes) {
  const NetworkParams params;
  const double t1 = transfer_time(params, 1000, 1);
  const double t2 = transfer_time(params, 2000, 1);
  EXPECT_NEAR(t2 - t1, 1000.0 / params.effective_bandwidth(), 1e-12);
}

TEST(Network, ZeroBytesOrHopsIsFree) {
  const NetworkParams params;
  EXPECT_EQ(transfer_time(params, 0, 3), 0.0);
  EXPECT_EQ(transfer_time(params, 100, 0), 0.0);
}

// --- component models -----------------------------------------------------------

TEST(LruModel, Figure9SystemLandsNearTenMicrosecondsPerPair) {
  // 80,540 atoms / 512 nodes: CA + BI together were measured at ~10 us.
  const LruParams params;
  const double pass = lru_pass_time(params, 157);
  EXPECT_GT(2.0 * pass, 8e-6);
  EXPECT_LT(2.0 * pass, 14e-6);
}

TEST(LruModel, ScalesWithAtoms) {
  const LruParams params;
  const double t1 = lru_pass_time(params, 157);
  const double t8 = lru_pass_time(params, 8 * 157);
  EXPECT_GT(t8, 6.0 * t1);  // near-linear (pipeline fill is constant)
  EXPECT_LT(t8, 8.5 * t1);
}

TEST(GcuModel, Level1ConvolutionNearSixMicroseconds) {
  // 32^3 grid on 8^3 nodes, g_c = 8, M = 4: measured ~6 us.
  const GcuParams params;
  const GcuLevelGeometry geom{4, 4, 4, 32, 32, 32};
  const double t = gcu_convolution_time(params, geom, 8, 4);
  EXPECT_GT(t, 4.5e-6);
  EXPECT_LT(t, 8e-6);
}

TEST(GcuModel, TransferNearOnePointFiveMicroseconds) {
  const GcuParams params;
  const GcuLevelGeometry geom{4, 4, 4, 32, 32, 32};
  const double t = gcu_transfer_time(params, geom, 6);
  EXPECT_GT(t, 1e-6);
  EXPECT_LT(t, 2e-6);
}

TEST(GcuModel, ConvolutionScalesWithStreamedData) {
  // Sec. VI.A: eight times the grid points cost close to eight times the
  // convolution time (streaming-bound).
  const GcuParams params;
  const GcuLevelGeometry small{4, 4, 4, 32, 32, 32};
  const GcuLevelGeometry large{8, 8, 8, 64, 64, 64};
  const double t_small = gcu_convolution_time(params, small, 8, 4);
  const double t_large = gcu_convolution_time(params, large, 8, 4);
  EXPECT_GT(t_large, 4.0 * t_small);
  EXPECT_LT(t_large, 8.0 * t_small);
}

TEST(GcuModel, CostGrowsLinearlyInM) {
  const GcuParams params;
  const GcuLevelGeometry geom{4, 4, 4, 32, 32, 32};
  const double t2 = gcu_convolution_time(params, geom, 8, 2);
  const double t4 = gcu_convolution_time(params, geom, 8, 4);
  // Streaming part doubles; overhead is constant.
  EXPECT_GT(t4, 1.5 * t2);
  EXPECT_LT(t4, 2.0 * t2);
}

TEST(TmenwModel, RoundTripUnderTwentyMicroseconds) {
  const TmenwParams params;
  const double t = tmenw_roundtrip_time(params, 16 * 16 * 16);
  EXPECT_GT(t, 10e-6);
  EXPECT_LT(t, 20e-6);  // paper: measured < 20 us
  // The FFT itself is a small fraction.
  EXPECT_LT(params.fft_time_s, 0.2 * t);
}

// --- event simulator -------------------------------------------------------------

TEST(EventSim, ChainsRespectDependencies) {
  EventSimulator sim;
  const TaskId a = sim.add_task({"a", "L", 1.0, {}, -1});
  const TaskId b = sim.add_task({"b", "L", 2.0, {a}, -1});
  sim.add_task({"c", "L", 0.5, {b}, -1});
  const auto schedule = sim.run();
  EXPECT_EQ(schedule[1].start, 1.0);
  EXPECT_EQ(schedule[2].start, 3.0);
  EXPECT_NEAR(sim.makespan(), 3.5, 1e-12);
}

TEST(EventSim, IndependentTasksOverlap) {
  EventSimulator sim;
  sim.add_task({"a", "L1", 2.0, {}, -1});
  sim.add_task({"b", "L2", 3.0, {}, -1});
  sim.run();
  EXPECT_NEAR(sim.makespan(), 3.0, 1e-12);
}

TEST(EventSim, ExclusiveResourceSerialises) {
  EventSimulator sim;
  sim.add_task({"a", "L1", 2.0, {}, 0});
  sim.add_task({"b", "L2", 3.0, {}, 0});
  sim.run();
  EXPECT_NEAR(sim.makespan(), 5.0, 1e-12);
}

TEST(EventSim, RejectsForwardDependency) {
  EventSimulator sim;
  EXPECT_THROW(sim.add_task({"a", "L", 1.0, {5}, -1}), std::invalid_argument);
}

// --- whole machine -----------------------------------------------------------

class MachineFig9 : public ::testing::Test {
 protected:
  MdgrapeMachine machine_;
  StepConfig config_;  // defaults = Fig. 9 system
};

TEST_F(MachineFig9, StepTimeMatchesPaper) {
  const StepTimings t = machine_.simulate_step(config_);
  // Paper: 206 us per step; the model must land within ~10%.
  EXPECT_NEAR(t.step_time, 206e-6, 21e-6);
}

TEST_F(MachineFig9, LongRangeRemovalSavesAboutTenMicroseconds) {
  const StepTimings with_lr = machine_.simulate_step(config_);
  StepConfig no_lr = config_;
  no_lr.long_range = false;
  const StepTimings without = machine_.simulate_step(no_lr);
  // Paper: 206 -> 196 us, a ~10 us (5%) cost.
  const double delta = with_lr.step_time - without.step_time;
  EXPECT_GT(delta, 5e-6);
  EXPECT_LT(delta, 15e-6);
  EXPECT_LT(delta / with_lr.step_time, 0.08);
}

TEST_F(MachineFig9, LongRangeBusyTimeNearFiftyMicroseconds) {
  const StepTimings t = machine_.simulate_step(config_);
  EXPECT_GT(t.long_range_total, 35e-6);
  EXPECT_LT(t.long_range_total, 60e-6);
  // And it mostly overlaps: busy time >> net cost.
  EXPECT_GT(t.long_range_span, t.gcu_window);
}

TEST_F(MachineFig9, SubTimingsMatchFigure10) {
  const StepTimings t = machine_.simulate_step(config_);
  EXPECT_NEAR(t.restriction, 1.5e-6, 0.7e-6);
  EXPECT_NEAR(t.convolution, 6e-6, 2e-6);
  EXPECT_NEAR(t.prolongation, 1.5e-6, 0.7e-6);
  EXPECT_LT(t.tmenw, 20e-6);
  EXPECT_NEAR(t.lru_ca + t.lru_bi, 10e-6, 4e-6);
}

TEST_F(MachineFig9, PerformanceNearOneMicrosecondPerDay) {
  EXPECT_NEAR(machine_.performance_us_per_day(config_), 1.0, 0.15);
}

TEST_F(MachineFig9, TimechartRendersAllLanes) {
  const StepTimings t = machine_.simulate_step(config_);
  const std::string chart = render_timechart(t.schedule);
  for (const char* lane : {"GP", "PP", "NW", "LRU", "GCU", "TMENW"}) {
    EXPECT_NE(chart.find(lane), std::string::npos) << lane;
  }
  const std::string table = render_task_table(t.schedule);
  EXPECT_NE(table.find("GCU convolution"), std::string::npos);
}

TEST(Machine, LargerGridEstimateMatchesSectionSixA) {
  // 64^3 grid, L = 2, 8x volume and atoms: the long-range term lands near
  // the paper's ~150 us estimate and the GCU becomes the dominant phase.
  MdgrapeMachine machine;
  StepConfig big;
  big.grid = {64, 64, 64};
  big.levels = 2;
  big.atoms = 80540 * 8;
  big.box_x = 2 * 9.7;
  big.box_y = 2 * 8.3;
  big.box_z = 2 * 10.6;
  const StepTimings t = machine.simulate_step(big);
  EXPECT_GT(t.long_range_total, 100e-6);
  EXPECT_LT(t.long_range_total, 200e-6);
  // GCU operations roughly an order of magnitude above the 32^3 case.
  MdgrapeMachine small;
  const StepTimings t32 = small.simulate_step(StepConfig{});
  EXPECT_GT(t.gcu_window, 4.0 * t32.gcu_window);
}

TEST(Machine, SoftwareFftEstimateReachesHundredsOfMicroseconds) {
  // Paper Sec. V.D: the software 3D FFT prototype on the torus "would be
  // hundreds of microseconds" at 512 nodes — the motivation for the TME.
  MachineParams mp;
  const double t = software_fft_estimate(mp, {32, 32, 32});
  EXPECT_GT(t, 50e-6);
  EXPECT_LT(t, 500e-6);
  // And it grows with the machine (latency/message bound), unlike the TME.
  MachineParams big;
  big.nodes_x = big.nodes_y = big.nodes_z = 16;
  EXPECT_GT(software_fft_estimate(big, {32, 32, 32}), t);
}

TEST(Machine, StrongScalingImprovesWithNodes) {
  // The same system on a 4^3 machine must be slower per step than on 8^3.
  MachineParams small_machine;
  small_machine.nodes_x = small_machine.nodes_y = small_machine.nodes_z = 4;
  const MdgrapeMachine m4(small_machine);
  const MdgrapeMachine m8;
  const StepConfig cfg;
  EXPECT_GT(m4.simulate_step(cfg).step_time, 2.0 * m8.simulate_step(cfg).step_time);
}

TEST(Machine, TimestepScalesPerformanceLinearly) {
  MdgrapeMachine machine;
  StepConfig cfg;
  cfg.timestep_fs = 5.0;
  EXPECT_NEAR(machine.performance_us_per_day(cfg),
              2.0 * machine.performance_us_per_day(StepConfig{}), 1e-9);
}

// --- golden trace ----------------------------------------------------------

// The event simulator is a deterministic list scheduler: the same config
// must produce bit-identical schedules and the same rendered time chart on
// every run.  A perf trajectory built on these traces is meaningless if the
// schedule wobbles between runs.
TEST(Machine, GoldenTraceIsDeterministic) {
  const MdgrapeMachine machine;
  const StepConfig config;
  const StepTimings a = machine.simulate_step(config);
  const StepTimings b = machine.simulate_step(config);

  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].spec.name, b.schedule[i].spec.name);
    EXPECT_EQ(a.schedule[i].spec.lane, b.schedule[i].spec.lane);
    EXPECT_EQ(a.schedule[i].spec.duration, b.schedule[i].spec.duration);
    EXPECT_EQ(a.schedule[i].spec.resource, b.schedule[i].spec.resource);
    EXPECT_EQ(a.schedule[i].spec.deps, b.schedule[i].spec.deps);
    EXPECT_EQ(a.schedule[i].start, b.schedule[i].start);  // bit-exact
    EXPECT_EQ(a.schedule[i].end, b.schedule[i].end);
  }
  EXPECT_EQ(a.step_time, b.step_time);
  EXPECT_EQ(a.long_range_total, b.long_range_total);
  EXPECT_EQ(a.long_range_span, b.long_range_span);
  EXPECT_EQ(a.gcu_window, b.gcu_window);

  EXPECT_EQ(render_timechart(a.schedule), render_timechart(b.schedule));
  EXPECT_EQ(render_task_table(a.schedule), render_task_table(b.schedule));
}

TEST(Machine, GoldenTraceStableAcrossSimulatorInstances) {
  // Same spec fed through two fresh EventSimulator objects: no hidden
  // state, no pointer-order dependence in tie-breaking.
  auto build = [] {
    EventSimulator sim;
    const TaskId a = sim.add_task({"a", "GP", 2.0e-6, {}, -1});
    const TaskId b = sim.add_task({"b", "PP", 3.0e-6, {}, 0});
    const TaskId c = sim.add_task({"c", "PP", 3.0e-6, {a}, 0});  // ties with b on resource
    sim.add_task({"d", "NW", 1.0e-6, {b, c}, -1});
    return sim.run();
  };
  const auto s1 = build();
  const auto s2 = build();
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].spec.name, s2[i].spec.name);
    EXPECT_EQ(s1[i].start, s2[i].start);
    EXPECT_EQ(s1[i].end, s2[i].end);
  }
  EXPECT_EQ(render_timechart(s1), render_timechart(s2));
}

TEST(Machine, RecordStepMetricsStageSumMatchesStepTimer) {
  // The acceptance contract for the bench JSON: the Table-2 stage timers
  // must sum to the "step" timer (within 5%; here it is exact by
  // construction — both sides sum the same schedule tasks).
  obs::Registry::global().reset();
  const MdgrapeMachine machine;
  const StepTimings t = machine.simulate_step(StepConfig{});
  record_step_metrics(t);

  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  double stage_sum = 0.0, step_total = -1.0;
  for (const auto& [path, stat] : snap.timers) {
    if (path == "step") {
      step_total = stat.seconds;
    } else if (path.rfind("step/", 0) == 0) {
      stage_sum += stat.seconds;
    }
  }
  ASSERT_GT(step_total, 0.0);
  EXPECT_NEAR(stage_sum, step_total, 0.05 * step_total);
  EXPECT_NEAR(stage_sum, t.long_range_total, 1e-12);
}

}  // namespace
}  // namespace tme::hw
