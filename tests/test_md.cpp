#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "ewald/splitting.hpp"
#include "md/bonded.hpp"
#include "md/cell_list.hpp"
#include "md/forcefield.hpp"
#include "md/integrator.hpp"
#include "md/settle.hpp"
#include "md/short_range.hpp"
#include "md/system.hpp"
#include "md/topology.hpp"
#include "md/water_box.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

using namespace constants;

// --- system / topology ------------------------------------------------------

TEST(ParticleSystem, KineticEnergyAndTemperature) {
  ParticleSystem sys;
  sys.resize(2);
  sys.masses = {2.0, 4.0};
  sys.velocities = {{1.0, 0.0, 0.0}, {0.0, 1.0, 1.0}};
  EXPECT_NEAR(sys.kinetic_energy(), 0.5 * 2.0 + 0.5 * 4.0 * 2.0, 1e-14);
  const double t = sys.temperature(3);
  EXPECT_NEAR(t, 2.0 * 5.0 / (3.0 * kBoltzmann), 1e-9);
}

TEST(ParticleSystem, RemoveComMotionZeroesMomentum) {
  ParticleSystem sys;
  sys.resize(10);
  Rng rng(3);
  for (std::size_t i = 0; i < 10; ++i) {
    sys.masses[i] = rng.uniform(1.0, 16.0);
    sys.velocities[i] = {rng.normal(), rng.normal(), rng.normal()};
  }
  sys.remove_com_motion();
  EXPECT_NEAR(norm(sys.momentum()), 0.0, 1e-12);
}

TEST(Topology, ExclusionLookupIsSymmetricAndDeduplicated) {
  Topology topo;
  topo.add_exclusion(3, 7);
  topo.add_exclusion(7, 3);
  topo.add_exclusion(0, 1);
  topo.finalize(10);
  EXPECT_EQ(topo.exclusions().size(), 2u);
  EXPECT_TRUE(topo.excluded(3, 7));
  EXPECT_TRUE(topo.excluded(7, 3));
  EXPECT_TRUE(topo.excluded(0, 1));
  EXPECT_FALSE(topo.excluded(1, 2));
}

TEST(Topology, RigidWaterAddsThreeExclusions) {
  Topology topo;
  topo.add_rigid_water({0, 1, 2});
  topo.finalize(3);
  EXPECT_EQ(topo.exclusions().size(), 3u);
  EXPECT_EQ(topo.constraint_count(), 3u);
}

TEST(Topology, BuildExclusionsFromBonded) {
  Topology topo;
  topo.add_bond({0, 1, 0.1, 1000.0});
  topo.add_bond({1, 2, 0.1, 1000.0});
  topo.add_angle({0, 1, 2, 1.9, 500.0});
  topo.build_exclusions_from_bonded();
  topo.finalize(3);
  EXPECT_TRUE(topo.excluded(0, 1));
  EXPECT_TRUE(topo.excluded(1, 2));
  EXPECT_TRUE(topo.excluded(0, 2));  // 1-3 via the angle
}

// --- water box ---------------------------------------------------------------

TEST(WaterBox, GeometryAndChargesAreTip3p) {
  WaterBoxSpec spec;
  spec.molecules = 27;
  const WaterBox wb = build_water_box(spec);
  ASSERT_EQ(wb.system.size(), 81u);
  double total_charge = 0.0;
  for (const double q : wb.system.charges) total_charge += q;
  EXPECT_NEAR(total_charge, 0.0, 1e-12);
  // Rigid geometry holds at construction.
  const WaterConstraints constraints(wb.topology, wb.system.masses, ConstraintParams{});
  EXPECT_LT(constraints.max_violation(wb.system.box, wb.system.positions), 1e-9);
  // O carries LJ, H does not.
  EXPECT_GT(wb.topology.lj()[0].epsilon, 0.0);
  EXPECT_EQ(wb.topology.lj()[1].epsilon, 0.0);
}

TEST(WaterBox, DensityDefaultsToLiquidWater) {
  WaterBoxSpec spec;
  spec.molecules = 512;
  const WaterBox wb = build_water_box(spec);
  const double density =
      static_cast<double>(spec.molecules) / wb.system.box.volume();
  EXPECT_NEAR(density, 33.0, 0.5);  // molecules / nm^3
}

TEST(WaterBox, VelocitiesMatchRequestedTemperature) {
  WaterBoxSpec spec;
  spec.molecules = 1000;
  spec.temperature = 300.0;
  const WaterBox wb = build_water_box(spec);
  // Unconstrained 3N - 3 dof at construction time.
  const double t = wb.system.temperature(3 * wb.system.size() - 3);
  EXPECT_NEAR(t, 300.0, 10.0);
}

TEST(WaterBox, PaperSpecMatchesTable1) {
  const WaterBoxSpec spec = paper_table1_spec();
  EXPECT_EQ(spec.molecules, 32773u);
  EXPECT_NEAR(spec.box_length, 9.97270, 1e-9);
  // 3 * 32773 = 98319 atoms, the N of the paper.
  EXPECT_EQ(3 * spec.molecules, 98319u);
}

// --- cell list ---------------------------------------------------------------

TEST(CellList, FindsExactlyTheBruteForcePairs) {
  const Box box{{3.0, 2.5, 4.0}};
  Rng rng(11);
  std::vector<Vec3> pos(200);
  for (auto& p : pos) {
    p = {rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.5), rng.uniform(0.0, 4.0)};
  }
  const double cutoff = 0.7;
  std::vector<std::pair<std::size_t, std::size_t>> brute;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (norm2(box.min_image_disp(pos[i], pos[j])) < cutoff * cutoff) {
        brute.emplace_back(i, j);
      }
    }
  }
  const CellList cells(box, pos, cutoff);
  std::vector<std::pair<std::size_t, std::size_t>> found;
  cells.for_each_pair(box, pos, cutoff, [&](std::size_t i, std::size_t j) {
    found.emplace_back(std::min(i, j), std::max(i, j));
  });
  std::sort(brute.begin(), brute.end());
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, brute);
}

TEST(CellList, DegenerateSmallBoxStillCorrect) {
  // Cutoff comparable to the box: 1-2 cells per axis exercises the
  // duplicate-free stencil logic.
  const Box box{{1.0, 1.0, 1.0}};
  Rng rng(13);
  std::vector<Vec3> pos(40);
  for (auto& p : pos) p = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
  const double cutoff = 0.45;
  std::size_t brute = 0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (norm2(box.min_image_disp(pos[i], pos[j])) < cutoff * cutoff) ++brute;
    }
  }
  const CellList cells(box, pos, cutoff);
  std::size_t found = 0;
  cells.for_each_pair(box, pos, cutoff, [&](std::size_t, std::size_t) { ++found; });
  EXPECT_EQ(found, brute);
}

// --- short range -------------------------------------------------------------

TEST(ShortRange, LjMinimumAtTwoToTheSixth) {
  ParticleSystem sys;
  sys.box.lengths = {10.0, 10.0, 10.0};
  sys.resize(2);
  Topology topo;
  topo.lj().assign(2, LjParams{0.3, 1.0});
  topo.finalize(2);
  const double r_min = 0.3 * std::pow(2.0, 1.0 / 6.0);
  sys.positions = {{5.0, 5.0, 5.0}, {5.0 + r_min, 5.0, 5.0}};
  ShortRangeParams params;
  params.cutoff = 1.2;
  params.alpha = 3.0;
  const ShortRangeResult r = compute_short_range(sys, topo, params);
  EXPECT_NEAR(r.energy_lj, -1.0, 1e-12);
  EXPECT_NEAR(norm(sys.forces[0]), 0.0, 1e-9);
}

TEST(ShortRange, CoulombMatchesAnalyticPair) {
  ParticleSystem sys;
  sys.box.lengths = {10.0, 10.0, 10.0};
  sys.resize(2);
  sys.charges = {1.0, -1.0};
  sys.positions = {{5.0, 5.0, 5.0}, {5.9, 5.0, 5.0}};
  Topology topo;
  topo.lj().assign(2, LjParams{});
  topo.finalize(2);
  ShortRangeParams params;
  params.cutoff = 1.2;
  params.alpha = 2.5;
  const ShortRangeResult r = compute_short_range(sys, topo, params);
  EXPECT_NEAR(r.energy_coulomb, -kCoulomb * g_short(0.9, 2.5), 1e-10);
  EXPECT_NEAR(sys.forces[0].x, -kCoulomb * g_short_derivative(0.9, 2.5), 1e-9);
  EXPECT_EQ(r.pair_count, 1u);
}

TEST(ShortRange, ExclusionsSkipPairs) {
  ParticleSystem sys;
  sys.box.lengths = {5.0, 5.0, 5.0};
  sys.resize(2);
  sys.charges = {1.0, -1.0};
  sys.positions = {{2.0, 2.0, 2.0}, {2.5, 2.0, 2.0}};
  Topology topo;
  topo.lj().assign(2, LjParams{});
  topo.add_exclusion(0, 1);
  topo.finalize(2);
  ShortRangeParams params;
  params.cutoff = 1.0;
  params.alpha = 3.0;
  const ShortRangeResult r = compute_short_range(sys, topo, params);
  EXPECT_EQ(r.pair_count, 0u);
  EXPECT_EQ(r.energy_coulomb, 0.0);
}

TEST(ShortRange, ExclusionCorrectionMatchesErfTerm) {
  ParticleSystem sys;
  sys.box.lengths = {5.0, 5.0, 5.0};
  sys.resize(2);
  sys.charges = {0.4, -0.8};
  sys.positions = {{1.0, 1.0, 1.0}, {1.0, 1.1, 1.0}};
  Topology topo;
  topo.add_exclusion(0, 1);
  topo.finalize(2);
  sys.forces.assign(2, Vec3{});
  const double e = apply_exclusion_corrections(sys, topo, 3.0);
  EXPECT_NEAR(e, kCoulomb * 0.32 * g_long(0.1, 3.0), 1e-10);
  // Force: the subtraction must exactly cancel the erf-pair force a mesh
  // solver would produce.
  EXPECT_NEAR(sys.forces[0].y, -kCoulomb * (-0.32) * g_long_derivative(0.1, 3.0),
              1e-9);
}

// --- bonded ------------------------------------------------------------------

TEST(Bonded, HarmonicBondEnergyAndForce) {
  ParticleSystem sys;
  sys.box.lengths = {5.0, 5.0, 5.0};
  sys.resize(2);
  sys.positions = {{1.0, 1.0, 1.0}, {1.12, 1.0, 1.0}};
  Topology topo;
  topo.add_bond({0, 1, 0.1, 1000.0});
  const BondedResult r = compute_bonded(sys, topo);
  EXPECT_NEAR(r.energy_bonds, 0.5 * 1000.0 * 0.02 * 0.02, 1e-12);
  EXPECT_NEAR(sys.forces[0].x, 1000.0 * 0.02, 1e-9);  // pulled toward j
  EXPECT_NEAR(sys.forces[1].x, -1000.0 * 0.02, 1e-9);
}

TEST(Bonded, AngleForceMatchesNumericalGradient) {
  ParticleSystem sys;
  sys.box.lengths = {10.0, 10.0, 10.0};
  sys.resize(3);
  sys.positions = {{1.0, 1.0, 1.0}, {2.0, 1.0, 1.0}, {2.4, 1.9, 1.2}};
  Topology topo;
  topo.add_angle({0, 1, 2, 1.8, 400.0});
  compute_bonded(sys, topo);
  const Vec3 analytic = sys.forces[2];
  const double eps = 1e-7;
  for (int axis = 0; axis < 3; ++axis) {
    auto perturbed = sys;
    perturbed.positions[2][static_cast<std::size_t>(axis)] += eps;
    perturbed.forces.assign(3, Vec3{});
    const double e_hi = compute_bonded(perturbed, topo).energy_angles;
    perturbed.positions[2][static_cast<std::size_t>(axis)] -= 2 * eps;
    perturbed.forces.assign(3, Vec3{});
    const double e_lo = compute_bonded(perturbed, topo).energy_angles;
    EXPECT_NEAR(analytic[static_cast<std::size_t>(axis)],
                -(e_hi - e_lo) / (2 * eps), 1e-4);
  }
}

TEST(Bonded, DihedralEnergyMatchesClosedForm) {
  // Four atoms with a known torsion angle of 90 degrees.
  ParticleSystem sys;
  sys.box.lengths = {10.0, 10.0, 10.0};
  sys.resize(4);
  sys.positions = {{1.0, 1.0, 0.0}, {1.0, 0.0, 0.0}, {2.0, 0.0, 0.0},
                   {2.0, 0.0, 1.0}};
  Topology topo;
  topo.add_dihedral({0, 1, 2, 3, 2, 0.0, 5.0});  // V = 5 (1 + cos(2 phi))
  const BondedResult r = compute_bonded(sys, topo);
  // phi = +-90 degrees -> cos(2 phi) = -1 -> V = 0.
  EXPECT_NEAR(r.energy_dihedrals, 0.0, 1e-10);
}

TEST(Bonded, DihedralForceMatchesNumericalGradient) {
  ParticleSystem sys;
  sys.box.lengths = {10.0, 10.0, 10.0};
  sys.resize(4);
  sys.positions = {{1.1, 1.0, 0.2}, {1.0, 0.1, 0.0}, {2.0, 0.0, 0.1},
                   {2.3, 0.4, 1.0}};
  Topology topo;
  topo.add_dihedral({0, 1, 2, 3, 3, 0.7, 12.0});
  compute_bonded(sys, topo);
  const auto analytic = sys.forces;
  const double eps = 1e-7;
  for (std::size_t atom = 0; atom < 4; ++atom) {
    for (int axis = 0; axis < 3; ++axis) {
      auto perturbed = sys;
      perturbed.positions[atom][static_cast<std::size_t>(axis)] += eps;
      perturbed.forces.assign(4, Vec3{});
      const double e_hi = compute_bonded(perturbed, topo).energy_dihedrals;
      perturbed.positions[atom][static_cast<std::size_t>(axis)] -= 2 * eps;
      perturbed.forces.assign(4, Vec3{});
      const double e_lo = compute_bonded(perturbed, topo).energy_dihedrals;
      EXPECT_NEAR(analytic[atom][static_cast<std::size_t>(axis)],
                  -(e_hi - e_lo) / (2 * eps), 1e-4)
          << "atom " << atom << " axis " << axis;
    }
  }
}

TEST(Bonded, DihedralForcesSumToZero) {
  ParticleSystem sys;
  sys.box.lengths = {10.0, 10.0, 10.0};
  sys.resize(4);
  sys.positions = {{0.9, 1.2, 0.3}, {1.0, 0.0, 0.0}, {2.1, 0.2, 0.0},
                   {2.5, 0.1, 0.9}};
  Topology topo;
  topo.add_dihedral({0, 1, 2, 3, 1, 0.3, 7.0});
  compute_bonded(sys, topo);
  Vec3 net{};
  for (const Vec3& f : sys.forces) net += f;
  EXPECT_NEAR(norm(net), 0.0, 1e-10);
}

TEST(Bonded, CollinearDihedralIsSkippedSafely) {
  ParticleSystem sys;
  sys.box.lengths = {10.0, 10.0, 10.0};
  sys.resize(4);
  sys.positions = {{1.0, 0.0, 0.0}, {2.0, 0.0, 0.0}, {3.0, 0.0, 0.0},
                   {4.0, 0.0, 0.0}};
  Topology topo;
  topo.add_dihedral({0, 1, 2, 3, 1, 0.0, 7.0});
  const BondedResult r = compute_bonded(sys, topo);
  for (const Vec3& f : sys.forces) EXPECT_EQ(norm(f), 0.0);
  (void)r;
}

TEST(Bonded, AngleForcesSumToZero) {
  ParticleSystem sys;
  sys.box.lengths = {10.0, 10.0, 10.0};
  sys.resize(3);
  sys.positions = {{1.0, 1.3, 0.9}, {2.0, 1.0, 1.0}, {2.4, 1.9, 1.2}};
  Topology topo;
  topo.add_angle({0, 1, 2, 1.8, 400.0});
  compute_bonded(sys, topo);
  const Vec3 net = sys.forces[0] + sys.forces[1] + sys.forces[2];
  EXPECT_NEAR(norm(net), 0.0, 1e-10);
}

// --- constraints -------------------------------------------------------------

class ConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WaterBoxSpec spec;
    spec.molecules = 64;
    spec.seed = 5;
    wb_ = build_water_box(spec);
  }

  // Random unconstrained displacement of all atoms.
  std::vector<Vec3> displaced(double scale, std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<Vec3> out = wb_.system.positions;
    for (auto& p : out) {
      p += Vec3{scale * rng.normal(), scale * rng.normal(), scale * rng.normal()};
    }
    return out;
  }

  WaterBox wb_;
};

TEST_F(ConstraintTest, SettleRestoresRigidGeometry) {
  const WaterConstraints constraints(wb_.topology, wb_.system.masses, ConstraintParams{});
  std::vector<Vec3> pos = displaced(0.005, 7);
  constraints.apply_positions(wb_.system.box, wb_.system.positions, pos, nullptr,
                              0.001, ConstraintMethod::kSettle);
  EXPECT_LT(constraints.max_violation(wb_.system.box, pos), 1e-9);
}

TEST_F(ConstraintTest, ShakeRestoresRigidGeometry) {
  const WaterConstraints constraints(wb_.topology, wb_.system.masses, ConstraintParams{});
  std::vector<Vec3> pos = displaced(0.005, 7);
  constraints.apply_positions(wb_.system.box, wb_.system.positions, pos, nullptr,
                              0.001, ConstraintMethod::kShake);
  EXPECT_LT(constraints.max_violation(wb_.system.box, pos), 1e-9);
}

TEST_F(ConstraintTest, SettleAgreesWithShake) {
  // SETTLE is the analytical solution of the same constraint problem SHAKE
  // solves iteratively; for MD-sized displacements they must agree to the
  // SHAKE tolerance.
  const WaterConstraints constraints(wb_.topology, wb_.system.masses, ConstraintParams{});
  std::vector<Vec3> settled = displaced(0.003, 21);
  std::vector<Vec3> shaken = settled;
  constraints.apply_positions(wb_.system.box, wb_.system.positions, settled, nullptr,
                              0.001, ConstraintMethod::kSettle);
  constraints.apply_positions(wb_.system.box, wb_.system.positions, shaken, nullptr,
                              0.001, ConstraintMethod::kShake);
  double worst = 0.0;
  for (std::size_t i = 0; i < settled.size(); ++i) {
    worst = std::max(worst, norm(settled[i] - shaken[i]));
  }
  EXPECT_LT(worst, 1e-6);
}

TEST_F(ConstraintTest, SettlePreservesMomentum) {
  const WaterConstraints constraints(wb_.topology, wb_.system.masses, ConstraintParams{});
  std::vector<Vec3> pos = displaced(0.004, 9);
  std::vector<Vec3> before = pos;
  constraints.apply_positions(wb_.system.box, wb_.system.positions, pos, nullptr,
                              0.001, ConstraintMethod::kSettle);
  // Internal constraint forces cannot change each molecule's COM.
  for (const RigidWater& w : wb_.topology.rigid_waters()) {
    const Vec3 delta_com = kMassO * (pos[w.o] - before[w.o]) +
                           kMassH * (pos[w.h1] - before[w.h1]) +
                           kMassH * (pos[w.h2] - before[w.h2]);
    EXPECT_LT(norm(delta_com), 1e-10);
  }
}

TEST_F(ConstraintTest, VelocityProjectionRemovesBondRates) {
  const WaterConstraints constraints(wb_.topology, wb_.system.masses, ConstraintParams{});
  Rng rng(33);
  std::vector<Vec3> vel(wb_.system.size());
  for (auto& v : vel) v = {rng.normal(), rng.normal(), rng.normal()};
  constraints.project_velocities(wb_.system.box, wb_.system.positions, vel);
  for (const RigidWater& w : wb_.topology.rigid_waters()) {
    const auto rate = [&](std::size_t i, std::size_t j) {
      const Vec3 rij = wb_.system.box.min_image_disp(wb_.system.positions[i],
                                                     wb_.system.positions[j]);
      return std::abs(dot(rij, vel[i] - vel[j])) / norm(rij);
    };
    EXPECT_LT(rate(w.o, w.h1), 1e-8);
    EXPECT_LT(rate(w.o, w.h2), 1e-8);
    EXPECT_LT(rate(w.h1, w.h2), 1e-8);
  }
}

// --- NVE integration ----------------------------------------------------------

TEST(Integrator, NveConservesEnergyWithSpme) {
  WaterBoxSpec spec;
  spec.molecules = 216;  // box ~1.87 nm so that r_c < L/2
  spec.temperature = 300.0;
  WaterBox wb = build_water_box(spec);

  const double r_cut = 0.7;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;
  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = {16, 16, 16};
  ForceField ff(sr, make_spme_solver(wb.system.box, sp));

  IntegratorParams ip;
  ip.dt = 0.001;
  const VelocityVerlet integrator(wb.topology, wb.system, ip);
  integrator.prime(wb.system, wb.topology, ff);
  // Let the freshly built lattice relax before measuring conservation.
  StepReport report{};
  for (int s = 0; s < 20; ++s) report = integrator.step(wb.system, wb.topology, ff);
  const double e0 = report.total();

  double max_drift = 0.0;
  for (int s = 0; s < 100; ++s) {
    report = integrator.step(wb.system, wb.topology, ff);
    max_drift = std::max(max_drift, std::abs(report.total() - e0));
  }
  // 100 fs of NVE: fluctuation stays well below 1% of the kinetic energy.
  EXPECT_LT(max_drift, 0.01 * report.kinetic + 1.0);
  // Constraints stay satisfied throughout.
  EXPECT_LT(integrator.constraints().max_violation(wb.system.box,
                                                   wb.system.positions),
            1e-8);
}

TEST(Integrator, SettleAndShakeGiveSameTrajectory) {
  WaterBoxSpec spec;
  spec.molecules = 125;  // box ~1.56 nm: r_c < L/2
  WaterBox wb1 = build_water_box(spec);
  WaterBox wb2 = build_water_box(spec);

  const double r_cut = 0.7;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;
  auto make_ff = [&](const Box& box) {
    SpmeParams sp;
    sp.alpha = alpha;
    sp.grid = {16, 16, 16};
    return ForceField(sr, make_spme_solver(box, sp));
  };
  const ForceField ff1 = make_ff(wb1.system.box);
  const ForceField ff2 = make_ff(wb2.system.box);

  IntegratorParams p1;
  p1.constraint_method = ConstraintMethod::kSettle;
  IntegratorParams p2;
  p2.constraint_method = ConstraintMethod::kShake;
  const VelocityVerlet i1(wb1.topology, wb1.system, p1);
  const VelocityVerlet i2(wb2.topology, wb2.system, p2);
  i1.prime(wb1.system, wb1.topology, ff1);
  i2.prime(wb2.system, wb2.topology, ff2);
  for (int s = 0; s < 20; ++s) {
    i1.step(wb1.system, wb1.topology, ff1);
    i2.step(wb2.system, wb2.topology, ff2);
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < wb1.system.size(); ++i) {
    worst = std::max(worst, norm(wb1.system.positions[i] - wb2.system.positions[i]));
  }
  EXPECT_LT(worst, 1e-5);
}

TEST(Integrator, MomentumIsConservedApproximately) {
  WaterBoxSpec spec;
  spec.molecules = 125;
  WaterBox wb = build_water_box(spec);
  const double alpha = alpha_from_tolerance(0.7, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = 0.7;
  sr.alpha = alpha;
  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = {16, 16, 16};
  ForceField ff(sr, make_spme_solver(wb.system.box, sp));
  const VelocityVerlet integrator(wb.topology, wb.system, IntegratorParams{});
  integrator.prime(wb.system, wb.topology, ff);
  for (int s = 0; s < 50; ++s) integrator.step(wb.system, wb.topology, ff);
  // The mesh force is the only non-conserving term; its net force is tiny.
  double v_scale = 0.0;
  for (std::size_t i = 0; i < wb.system.size(); ++i) {
    v_scale += wb.system.masses[i] * norm(wb.system.velocities[i]);
  }
  EXPECT_LT(norm(wb.system.momentum()), 1e-3 * v_scale);
}

TEST(Integrator, NveConservesEnergyWithFullBondedStack) {
  // A flexible 5-bead chain (bonds + angles + torsions) in a periodic box
  // with SPME electrostatics: the complete force-field stack must conserve
  // energy under velocity Verlet.
  ParticleSystem sys;
  sys.box.lengths = {3.0, 3.0, 3.0};
  sys.resize(5);
  Topology topo;
  const double b0 = 0.15;
  for (std::size_t b = 0; b < 5; ++b) {
    const double zig = (b % 2 == 0) ? 0.0 : 0.08;
    sys.positions[b] = {1.0 + 0.13 * static_cast<double>(b), 1.5, 1.5 + zig};
    sys.masses[b] = 12.0;
    sys.charges[b] = (b % 2 == 0) ? 0.3 : -0.3;
    topo.lj().push_back({0.25, 0.2});
  }
  sys.charges[4] -= 0.3;  // neutralise
  for (std::size_t b = 0; b + 1 < 5; ++b) topo.add_bond({b, b + 1, b0, 30000.0});
  for (std::size_t b = 0; b + 2 < 5; ++b) {
    topo.add_angle({b, b + 1, b + 2, 2.0, 300.0});
  }
  for (std::size_t b = 0; b + 3 < 5; ++b) {
    topo.add_dihedral({b, b + 1, b + 2, b + 3, 3, 0.4, 4.0});
  }
  topo.build_exclusions_from_bonded();
  topo.finalize(5);

  const double r_cut = 0.9;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;
  sr.shift_lj = true;
  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = {16, 16, 16};
  const ForceField ff(sr, make_spme_solver(sys.box, sp));
  const VelocityVerlet integrator(topo, sys, IntegratorParams{});
  // Small random velocities.
  Rng rng(4);
  for (auto& v : sys.velocities) v = {0.2 * rng.normal(), 0.2 * rng.normal(),
                                      0.2 * rng.normal()};
  StepReport report = integrator.prime(sys, topo, ff);
  const double e0 = report.total();
  double worst = 0.0;
  bool torsions_active = false;
  for (int s = 0; s < 400; ++s) {
    report = integrator.step(sys, topo, ff);
    worst = std::max(worst, std::abs(report.total() - e0));
    if (report.energies.dihedrals > 0.1) torsions_active = true;
  }
  EXPECT_LT(worst, 0.5);  // kJ/mol over 0.4 ps
  EXPECT_TRUE(torsions_active);
}

TEST(ForceField, RejectsMismatchedAlpha) {
  const Box box{{4.0, 4.0, 4.0}};
  ShortRangeParams sr;
  sr.alpha = 2.0;
  SpmeParams sp;
  sp.alpha = 3.0;
  sp.grid = {16, 16, 16};
  EXPECT_THROW(ForceField(sr, make_spme_solver(box, sp)), std::invalid_argument);
}

TEST(ForceField, TmeAndSpmeGiveSameEnergiesOnWater) {
  WaterBoxSpec spec;
  spec.molecules = 512;  // box ~2.49 nm
  WaterBox wb_a = build_water_box(spec);
  WaterBox wb_b = build_water_box(spec);
  // Keep the paper's operating point alpha * h ~ 0.69: r_c = 4 h.
  const double r_cut = wb_a.system.box.lengths.x * 4.0 / 16.0;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;

  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = {16, 16, 16};
  const ForceField ff_spme(sr, make_spme_solver(wb_a.system.box, sp));

  TmeParams tp;
  tp.alpha = alpha;
  tp.grid = {16, 16, 16};
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  const ForceField ff_tme(sr, make_tme_solver(wb_b.system.box, tp));

  const EnergyReport e_spme = ff_spme.evaluate(wb_a.system, wb_a.topology);
  const EnergyReport e_tme = ff_tme.evaluate(wb_b.system, wb_b.topology);
  // The systematic TME-vs-SPME offset scales with the gross reciprocal
  // energy kC alpha/sqrt(pi) sum q^2 (the net potential of an
  // unequilibrated lattice is a poor yardstick); measured ~6e-4 of gross.
  double q2 = 0.0;
  for (const double q : wb_a.system.charges) q2 += q * q;
  const double gross = kCoulomb * alpha / std::sqrt(M_PI) * q2;
  EXPECT_NEAR(e_tme.potential(), e_spme.potential(), 1.5e-3 * gross);
  double worst = 0.0;
  double scale = 0.0;
  for (std::size_t i = 0; i < wb_a.system.size(); ++i) {
    worst = std::max(worst, norm(wb_a.system.forces[i] - wb_b.system.forces[i]));
    scale = std::max(scale, norm(wb_a.system.forces[i]));
  }
  EXPECT_LT(worst, 5e-3 * scale);
}

}  // namespace
}  // namespace tme
