#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/grid_kernel.hpp"
#include "core/tme.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "msm/msm.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem water_like(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  const double min_dist2 = 0.08 * 0.08;
  double total = 0.0;
  while (sys.positions.size() < n) {
    const Vec3 candidate{rng.uniform(0.0, box_length), rng.uniform(0.0, box_length),
                         rng.uniform(0.0, box_length)};
    bool ok = true;
    for (const Vec3& existing : sys.positions) {
      if (norm2(sys.box.min_image_disp(candidate, existing)) < min_dist2) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    sys.positions.push_back(candidate);
    const double q = (sys.positions.size() % 3 == 0) ? -0.834 : 0.417;
    sys.charges.push_back(q);
    total += q;
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

TEST(MsmKernel, CentreTapDominatesAndDecays) {
  const Box box{{3.2, 3.2, 3.2}};
  const double alpha = alpha_from_tolerance(0.8, 1e-4);
  const int gc = 8;
  const auto cube = msm_level_kernel(box, {16, 16, 16}, 6, alpha, 1, gc);
  const std::size_t w = static_cast<std::size_t>(2 * gc + 1);
  const std::size_t centre = (static_cast<std::size_t>(gc) * w +
                              static_cast<std::size_t>(gc)) *
                                 w +
                             static_cast<std::size_t>(gc);
  EXPECT_GT(cube[centre], 0.0);
  for (std::size_t i = 0; i < cube.size(); ++i) {
    EXPECT_LE(std::abs(cube[i]), std::abs(cube[centre]) * 1.0001);
  }
  // Corner taps are far below the centre.
  EXPECT_LT(std::abs(cube[0]), 1e-3 * cube[centre]);
}

TEST(MsmKernel, MatchesTensorKernelSummedOverManyGaussians) {
  // The MSM cube is the exact shell expansion; the TME cube with many
  // Gaussians must converge to it.
  const Box box{{3.2, 3.2, 3.2}};
  const double alpha = alpha_from_tolerance(0.8, 1e-4);
  const int gc = 6;
  const auto exact = msm_level_kernel(box, {16, 16, 16}, 6, alpha, 1, gc);

  const Vec3 h{0.2, 0.2, 0.2};
  const auto terms = fit_shell_gaussians(alpha, 8);
  const auto kernels = build_level_kernels(terms, 6, {16, 16, 16}, h, gc);
  const auto tme_cube = dense_kernel_cube(kernels, gc);

  double worst = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    worst = std::max(worst, std::abs(exact[i] - tme_cube[i]));
  }
  const std::size_t w = static_cast<std::size_t>(2 * gc + 1);
  const double centre = exact[(static_cast<std::size_t>(gc) * w +
                               static_cast<std::size_t>(gc)) *
                                  w +
                              static_cast<std::size_t>(gc)];
  EXPECT_LT(worst, 1e-5 * centre);
}

class MsmVsOthers : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = water_like(2400, 3.2, 99);
    alpha_ = alpha_from_tolerance(0.8, 1e-4);
  }
  TestSystem sys_;
  double alpha_ = 0.0;
};

TEST_F(MsmVsOthers, MatchesSpmeLongRangeForces) {
  MsmParams mp;
  mp.alpha = alpha_;
  mp.grid = {16, 16, 16};
  mp.grid_cutoff = 8;
  const Msm msm(sys_.box, mp);
  const CoulombResult lr_msm = msm.compute(sys_.positions, sys_.charges);

  SpmeParams sp;
  sp.alpha = alpha_;
  sp.grid = {16, 16, 16};
  const Spme spme(sys_.box, sp);
  const CoulombResult lr_spme = spme.compute(sys_.positions, sys_.charges);

  EXPECT_LT(lr_msm.relative_force_error_against(lr_spme), 2e-2);
}

TEST_F(MsmVsOthers, TmeConvergesToMsmAsMGrows) {
  MsmParams mp;
  mp.alpha = alpha_;
  mp.grid = {16, 16, 16};
  mp.grid_cutoff = 8;
  const Msm msm(sys_.box, mp);
  const CoulombResult lr_msm = msm.compute(sys_.positions, sys_.charges);

  double prev = 1.0;
  for (const std::size_t m : {1u, 3u, 6u}) {
    TmeParams tp;
    tp.alpha = alpha_;
    tp.grid = {16, 16, 16};
    tp.grid_cutoff = 8;
    tp.num_gaussians = m;
    const Tme tme(sys_.box, tp);
    const CoulombResult lr_tme = tme.compute(sys_.positions, sys_.charges);
    const double dev = lr_tme.relative_force_error_against(lr_msm);
    EXPECT_LT(dev, prev) << "M=" << m;
    prev = dev;
  }
  // At M = 6 the only difference left is the Gaussian quadrature residual.
  EXPECT_LT(prev, 1e-4);
}

TEST_F(MsmVsOthers, EnergiesAgreeAtConvergence) {
  MsmParams mp;
  mp.alpha = alpha_;
  mp.grid = {16, 16, 16};
  mp.grid_cutoff = 8;
  const Msm msm(sys_.box, mp);
  TmeParams tp;
  tp.alpha = alpha_;
  tp.grid = {16, 16, 16};
  tp.grid_cutoff = 8;
  tp.num_gaussians = 6;
  const Tme tme(sys_.box, tp);
  const double e_msm = msm.compute(sys_.positions, sys_.charges).energy;
  const double e_tme = tme.compute(sys_.positions, sys_.charges).energy;
  EXPECT_NEAR(e_tme, e_msm, 1e-4 * std::abs(e_msm));
}

TEST(Msm, TwoLevelHierarchyWorks) {
  TestSystem sys = water_like(500, 6.4, 5);
  const double alpha = alpha_from_tolerance(0.8, 1e-4);
  MsmParams mp;
  mp.alpha = alpha;
  mp.grid = {32, 32, 32};
  mp.levels = 2;
  mp.grid_cutoff = 8;
  const Msm msm(sys.box, mp);
  const CoulombResult lr = msm.compute(sys.positions, sys.charges);

  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = {32, 32, 32};
  const Spme spme(sys.box, sp);
  const CoulombResult ref = spme.compute(sys.positions, sys.charges);
  EXPECT_LT(lr.relative_force_error_against(ref), 3e-2);
}

TEST(Msm, RejectsBadConfigurations) {
  const Box box{{4.0, 4.0, 4.0}};
  MsmParams mp;
  mp.alpha = 2.0;
  mp.grid = {32, 32, 32};
  mp.order = 5;
  EXPECT_THROW(Msm(box, mp), std::invalid_argument);
  mp.order = 6;
  mp.levels = 0;
  EXPECT_THROW(Msm(box, mp), std::invalid_argument);
  mp.levels = 4;
  EXPECT_THROW(Msm(box, mp), std::invalid_argument);
}

}  // namespace
}  // namespace tme
