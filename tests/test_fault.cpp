// Fault injection, fault-aware routing, retry timing, and graceful
// degradation of the distributed TME.
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/tme.hpp"
#include "ewald/splitting.hpp"
#include "hw/event_sim.hpp"
#include "hw/fault.hpp"
#include "hw/machine.hpp"
#include "hw/network_model.hpp"
#include "hw/torus.hpp"
#include "obs/metrics.hpp"
#include "par/par_tme.hpp"
#include "par/recovery.hpp"
#include "par/traffic.hpp"
#include "util/rng.hpp"

namespace tme::hw {
namespace {

// --- FaultInjector -----------------------------------------------------------

TEST(FaultInjector, ValidatesConfig) {
  FaultConfig bad;
  bad.link_error_rate = 1.5;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
  bad.link_error_rate = -0.1;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
  FaultConfig neg;
  neg.max_retries = -1;
  EXPECT_THROW(FaultInjector{neg}, std::invalid_argument);
}

TEST(FaultInjector, RandomKillsAreSeededAndDistinct) {
  FaultConfig cfg;
  cfg.seed = 42;
  FaultInjector a(cfg), b(cfg);
  a.kill_random_nodes(5, 64);
  b.kill_random_nodes(5, 64);
  EXPECT_EQ(a.dead_nodes(), b.dead_nodes());
  EXPECT_EQ(a.dead_nodes().size(), 5u);

  cfg.seed = 43;
  FaultInjector c(cfg);
  c.kill_random_nodes(5, 64);
  EXPECT_NE(a.dead_nodes(), c.dead_nodes());

  FaultInjector d(cfg);
  EXPECT_THROW(d.kill_random_nodes(65, 64), std::invalid_argument);
}

TEST(FaultInjector, CorruptionDrawsFollowTheRate) {
  FaultConfig clean;  // rate 0
  const FaultInjector never(clean);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(never.attempt_corrupted(6));
  EXPECT_EQ(never.injected_errors(), 0u);

  FaultConfig always;
  always.link_error_rate = 1.0;
  const FaultInjector certain(always);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(certain.attempt_corrupted(1));
  EXPECT_EQ(certain.injected_errors(), 10u);

  // Same seed, same call sequence, same outcomes.
  FaultConfig half;
  half.link_error_rate = 0.3;
  half.seed = 7;
  const FaultInjector x(half), y(half);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(x.attempt_corrupted(3), y.attempt_corrupted(3));
  }
}

TEST(FaultInjector, EnvConfigParsesAndFallsBack) {
  setenv("TME_FAULT_SEED", "12345", 1);
  setenv("TME_FAULT_LINK_ERROR_RATE", "0.25", 1);
  FaultConfig cfg = fault_config_from_env();
  EXPECT_EQ(cfg.seed, 12345u);
  EXPECT_DOUBLE_EQ(cfg.link_error_rate, 0.25);

  setenv("TME_FAULT_SEED", "not-a-number", 1);
  setenv("TME_FAULT_LINK_ERROR_RATE", "2.5", 1);  // out of [0, 1]
  cfg = fault_config_from_env();
  EXPECT_EQ(cfg.seed, FaultConfig{}.seed);
  EXPECT_DOUBLE_EQ(cfg.link_error_rate, FaultConfig{}.link_error_rate);

  unsetenv("TME_FAULT_SEED");
  unsetenv("TME_FAULT_LINK_ERROR_RATE");
}

// --- torus validation + fault-aware routing ----------------------------------

TEST(TorusValidation, RejectsZeroExtents) {
  EXPECT_THROW(TorusTopology(0, 4, 4), std::invalid_argument);
  EXPECT_THROW(TorusTopology(4, 0, 4), std::invalid_argument);
  EXPECT_THROW(TorusTopology(4, 4, 0), std::invalid_argument);
}

TEST(TorusValidation, RejectsOutOfRangeIndex) {
  const TorusTopology topo(2, 2, 2);
  EXPECT_NO_THROW(topo.coord(7));
  EXPECT_THROW(topo.coord(8), std::out_of_range);
  EXPECT_THROW(topo.coord(1000), std::out_of_range);
}

TEST(Torus, DimensionOrderedRouteHasManhattanLength) {
  const TorusTopology topo(8, 8, 8);
  const NodeCoord a{1, 2, 3}, b{6, 0, 7};
  const std::vector<NodeCoord> path = topo.route(a, b);
  ASSERT_EQ(path.size(), topo.hops(a, b) + 1);
  EXPECT_EQ(path.front(), a);
  EXPECT_EQ(path.back(), b);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(topo.hops(path[i - 1], path[i]), 1u);
  }
}

TEST(Torus, HopsAvoidingDetoursAroundDeadNodes) {
  const TorusTopology topo(4, 4, 4);
  FaultInjector faults;
  // Healthy machine: identical to the Manhattan metric.
  EXPECT_EQ(topo.hops_avoiding({0, 0, 0}, {2, 1, 0}, faults), 3u);

  // Kill a node in the middle of the straight x-route; the detour costs
  // extra hops only if every shortest path is blocked (it is not, on a
  // torus), so the distance must stay the Manhattan one.
  faults.kill_node(topo.index({1, 0, 0}));
  EXPECT_EQ(topo.hops_avoiding({0, 0, 0}, {2, 0, 0}, faults), 2u);

  // Dead endpoints are unreachable.
  EXPECT_EQ(topo.hops_avoiding({1, 0, 0}, {2, 0, 0}, faults), kUnreachable);
  EXPECT_EQ(topo.hops_avoiding({0, 0, 0}, {1, 0, 0}, faults), kUnreachable);
}

TEST(Torus, DeadLinksForceLongerRoutes) {
  const TorusTopology topo(4, 1, 1);  // a ring: exactly two routes per pair
  FaultInjector faults;
  faults.kill_link(topo.index({0, 0, 0}), topo.index({1, 0, 0}));
  // 0 -> 1 must now go the long way round: 0 -> 3 -> 2 -> 1.
  EXPECT_EQ(topo.hops_avoiding({0, 0, 0}, {1, 0, 0}, faults), 3u);
}

TEST(Torus, PartitionReportFindsCutOffNodes) {
  const TorusTopology topo(4, 4, 4);
  FaultInjector faults;
  const NodeCoord victim{2, 2, 2};
  for (const NodeCoord& nb : topo.neighbours(victim)) {
    faults.kill_node(topo.index(nb));
  }
  const PartitionReport report = topo.partition_report(faults);
  EXPECT_EQ(report.dead.size(), 6u);
  ASSERT_EQ(report.unreachable.size(), 1u);
  EXPECT_EQ(report.unreachable[0], topo.index(victim));
  EXPECT_EQ(report.alive, topo.node_count() - 7u);
}

TEST(Torus, PartitionReportOnHealthyMachineIsClean) {
  const TorusTopology topo(8, 8, 8);
  const FaultInjector faults;
  const PartitionReport report = topo.partition_report(faults);
  EXPECT_EQ(report.root, 0u);
  EXPECT_EQ(report.alive, 512u);
  EXPECT_TRUE(report.dead.empty());
  EXPECT_TRUE(report.unreachable.empty());
}

// --- network retries ---------------------------------------------------------

TEST(NetworkFaults, CleanTransferMatchesBaseModel) {
  const NetworkParams nw;
  const FaultInjector clean;  // rate 0
  const TransferOutcome out = transfer_with_faults(nw, 4096, 3, clean);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_TRUE(out.delivered);
  EXPECT_DOUBLE_EQ(out.time_s, transfer_time(nw, 4096, 3));
}

TEST(NetworkFaults, CertainCorruptionExhaustsRetriesWithBackoff) {
  const NetworkParams nw;
  FaultConfig cfg;
  cfg.link_error_rate = 1.0;
  cfg.max_retries = 3;
  const FaultInjector faults(cfg);
  const TransferOutcome out = transfer_with_faults(nw, 4096, 3, faults);
  EXPECT_EQ(out.attempts, cfg.max_retries + 1);
  EXPECT_FALSE(out.delivered);
  // Four attempts of serialisation plus detect timeouts plus the doubling
  // backoff make it strictly (much) slower than a clean transfer.
  EXPECT_GT(out.time_s, 4.0 * transfer_time(nw, 4096, 3));
}

TEST(NetworkFaults, ModerateRateRetriesAndDelivers) {
  const NetworkParams nw;
  FaultConfig cfg;
  cfg.link_error_rate = 0.1;
  cfg.seed = 11;
  const FaultInjector faults(cfg);
  int total_attempts = 0;
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    const TransferOutcome out = transfer_with_faults(nw, 1024, 4, faults);
    total_attempts += out.attempts;
    delivered += out.delivered ? 1 : 0;
  }
  EXPECT_GT(total_attempts, 50);  // some retransmissions happened
  EXPECT_GT(delivered, 40);       // but nearly everything got through
  EXPECT_GT(faults.injected_errors(), 0u);
}

// --- event simulator retries -------------------------------------------------

TEST(EventSimFaults, RetriesStretchTheMakespan) {
  EventSimulator clean;
  clean.add_task({"t", "NW", 10e-6, {}, -1});
  clean.run();
  const double base = clean.makespan();

  EventSimulator faulty;
  TaskSpec spec{"t", "NW", 10e-6, {}, -1};
  spec.failures = 2;
  spec.retry_penalty = 1e-6;
  faulty.add_task(spec);
  const auto schedule = faulty.run();
  EXPECT_DOUBLE_EQ(faulty.makespan(), base + 2 * (10e-6 + 1e-6));
  EXPECT_EQ(faulty.total_retries(), 2u);
  EXPECT_EQ(schedule[0].attempts, 3);
  EXPECT_TRUE(schedule[0].completed);
  EXPECT_EQ(faulty.failed_tasks(), 0u);
}

TEST(EventSimFaults, RetryLimitBoundsTheDamage) {
  EventSimulator sim;
  sim.set_retry_limit(2);
  TaskSpec spec{"doomed", "NW", 5e-6, {}, -1};
  spec.failures = 10;  // far beyond the limit
  const TaskId doomed = sim.add_task(spec);
  TaskSpec dependent{"after", "NW", 1e-6, {doomed}, -1};
  sim.add_task(dependent);
  const auto schedule = sim.run();
  EXPECT_EQ(schedule[0].attempts, 3);  // limit + 1 attempts, all failed
  EXPECT_FALSE(schedule[0].completed);
  EXPECT_EQ(sim.failed_tasks(), 1u);
  // Dependents still run: the machine degrades rather than hangs.
  EXPECT_TRUE(schedule[1].completed);
  EXPECT_GE(schedule[1].start, schedule[0].end);
}

TEST(EventSimFaults, RejectsNegativeInjection) {
  EventSimulator sim;
  TaskSpec spec{"bad", "NW", 1e-6, {}, -1};
  spec.failures = -1;
  EXPECT_THROW(sim.add_task(spec), std::invalid_argument);
}

// --- whole-machine degradation -----------------------------------------------

TEST(MachineFaults, DeadNodesAndLinkErrorsSlowTheStep) {
  const MdgrapeMachine machine;
  StepConfig healthy;
  const StepTimings base = machine.simulate_step(healthy);
  EXPECT_EQ(base.dead_nodes, 0u);
  EXPECT_EQ(base.task_retries, 0u);

  StepConfig degraded = healthy;
  degraded.dead_node_count = 8;
  degraded.link_error_rate = 0.3;
  degraded.fault_seed = 2021;
  const StepTimings hurt = machine.simulate_step(degraded);
  EXPECT_EQ(hurt.dead_nodes, 8u);
  EXPECT_GT(hurt.task_retries, 0u);
  EXPECT_GT(hurt.step_time, base.step_time);

  // Deterministic: same seed, same degraded makespan.
  const StepTimings again = machine.simulate_step(degraded);
  EXPECT_DOUBLE_EQ(hurt.step_time, again.step_time);
  EXPECT_EQ(hurt.task_retries, again.task_retries);
}

TEST(MachineFaults, KillingEveryNodeThrows) {
  const MdgrapeMachine machine;
  StepConfig cfg;
  cfg.dead_node_count = machine.params().node_count();
  EXPECT_THROW(machine.simulate_step(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace tme::hw

namespace tme::par {
namespace {

TmeParams fault_test_params(double alpha) {
  TmeParams tp;
  tp.alpha = alpha;
  tp.grid = {32, 32, 32};
  tp.levels = 1;
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  return tp;
}

struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem random_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box_length), rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

// --- RecoveryPlan ------------------------------------------------------------

TEST(RecoveryPlan, MapsDeadNodesToAliveNeighbours) {
  const TorusTopology topo(2, 2, 2);
  hw::FaultInjector faults;
  faults.kill_node(3);
  const RecoveryPlan plan(topo, faults);
  EXPECT_EQ(plan.dead_count(), 1u);
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    if (n == 3) continue;
    EXPECT_EQ(plan.host(n), n);  // alive nodes host themselves
  }
  const std::size_t host = plan.host(3);
  EXPECT_NE(host, 3u);
  EXPECT_FALSE(faults.node_dead(host));
  EXPECT_EQ(topo.hops(topo.coord(3), topo.coord(host)), 1u);
  // Messages between co-hosted blocks collapse to zero hops.
  EXPECT_EQ(plan.hops(3, host), 0u);
  EXPECT_EQ(plan.hops(host, 3), 0u);
}

TEST(RecoveryPlan, BrokenRoutesAreCountedAsReroutes) {
  const TorusTopology topo(4, 4, 4);
  hw::FaultInjector faults;
  faults.kill_node(topo.index({1, 0, 0}));
  const RecoveryPlan plan(topo, faults);
  // The dimension-ordered route 0,0,0 -> 2,0,0 passes straight through the
  // dead node.
  EXPECT_TRUE(plan.rerouted(topo.index({0, 0, 0}), topo.index({2, 0, 0})));
  EXPECT_FALSE(plan.rerouted(topo.index({0, 0, 0}), topo.index({0, 2, 0})));
  EXPECT_GT(plan.reroute_count(), 0u);
}

TEST(RecoveryPlan, MultipleSimultaneousDeathsAllRehome) {
  const TorusTopology topo(4, 4, 4);
  hw::FaultInjector faults;
  // Four scattered nodes die in the same step.
  const std::size_t dead[] = {topo.index({0, 0, 0}), topo.index({1, 2, 3}),
                              topo.index({3, 3, 0}), topo.index({2, 1, 1})};
  for (const std::size_t n : dead) faults.kill_node(n);
  const RecoveryPlan plan(topo, faults);
  EXPECT_EQ(plan.dead_count(), 4u);
  for (const std::size_t n : dead) {
    const std::size_t host = plan.host(n);
    EXPECT_NE(host, n);
    EXPECT_FALSE(faults.node_dead(host)) << "node " << n;
  }
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    if (faults.node_dead(n)) continue;
    EXPECT_EQ(plan.host(n), n);
  }
}

TEST(RecoveryPlan, AdjacentDeathClusterRehomesOutsideTheCluster) {
  // A whole 2x2 face of a 4x4x1 machine dies at once; every victim must land
  // on a survivor, never on another member of the dead cluster.
  const TorusTopology topo(4, 4, 1);
  hw::FaultInjector faults;
  std::vector<std::size_t> cluster;
  for (std::size_t x = 0; x < 2; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      cluster.push_back(topo.index({x, y, 0}));
    }
  }
  for (const std::size_t n : cluster) faults.kill_node(n);
  const RecoveryPlan plan(topo, faults);
  EXPECT_EQ(plan.dead_count(), cluster.size());
  for (const std::size_t n : cluster) {
    EXPECT_FALSE(faults.node_dead(plan.host(n))) << "node " << n;
  }
}

TEST(RecoveryPlan, CascadingLinkFailuresGrowReroutes) {
  const TorusTopology topo(4, 4, 4);
  // Cut links one at a time along the +x ring through the origin; each cut
  // can only add broken dimension-ordered routes, never repair one.
  std::size_t previous = 0;
  hw::FaultInjector faults;
  for (std::size_t x = 0; x < 3; ++x) {
    faults.kill_link(topo.index({x, 0, 0}), topo.index({x + 1, 0, 0}));
    const RecoveryPlan plan(topo, faults);
    EXPECT_EQ(plan.dead_count(), 0u);  // links only: every node hosts itself
    EXPECT_GE(plan.reroute_count(), previous);
    previous = plan.reroute_count();
  }
  EXPECT_GT(previous, 0u);
  // The straight-line route along the severed ring must be flagged.
  const RecoveryPlan plan(topo, faults);
  EXPECT_TRUE(plan.rerouted(topo.index({0, 0, 0}), topo.index({1, 0, 0})));
}

TEST(RecoveryPlan, LastSurvivorHostsEverything) {
  const TorusTopology topo(2, 2, 2);
  hw::FaultInjector faults;
  for (std::size_t n = 1; n < topo.node_count(); ++n) faults.kill_node(n);
  const RecoveryPlan plan(topo, faults);
  EXPECT_EQ(plan.dead_count(), topo.node_count() - 1);
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    EXPECT_EQ(plan.host(n), 0u);
  }
  // And killing the survivor too crosses into refusal.
  faults.kill_node(0);
  EXPECT_THROW(RecoveryPlan(topo, faults), std::runtime_error);
}

TEST(RecoveryPlan, DeadNodesThatPartitionTheSurvivorsAreRefused) {
  // On a 4-node ring, killing two opposite nodes splits the survivors into
  // two islands that cannot reach each other.
  const TorusTopology topo(4, 1, 1);
  hw::FaultInjector faults;
  faults.kill_node(1);
  faults.kill_node(3);
  EXPECT_THROW(RecoveryPlan(topo, faults), std::runtime_error);
}

TEST(RecoveryPlan, RefusesUnrecoverableMachines) {
  const TorusTopology topo(2, 2, 2);
  hw::FaultInjector all;
  for (std::size_t n = 0; n < topo.node_count(); ++n) all.kill_node(n);
  EXPECT_THROW(RecoveryPlan(topo, all), std::runtime_error);

  // Node 0 alive but with every link severed: an unreachable partition.
  const TorusTopology big(4, 4, 4);
  hw::FaultInjector cut;
  for (const hw::NodeCoord& nb : big.neighbours({0, 0, 0})) {
    cut.kill_link(big.index({0, 0, 0}), big.index(nb));
  }
  EXPECT_THROW(RecoveryPlan(big, cut), std::runtime_error);
}

// --- degraded distributed TME ------------------------------------------------

class DegradedParTmeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = random_system(400, 6.4, 7);
    alpha_ = alpha_from_tolerance(0.8, 1e-4);
  }
  TestSystem sys_;
  double alpha_ = 0.0;
};

TEST_F(DegradedParTmeTest, OneDeadNodeKeepsForcesBitwiseIdentical) {
  // The acceptance scenario: one dead node + 1e-4 link-error rate, fixed
  // seed.  Physics must be unaffected (the recovery re-homes blocks without
  // changing summation order); only the traffic accounting changes.
  const TmeParams tp = fault_test_params(alpha_);
  const TorusTopology topo(2, 2, 2);

  ParallelTme healthy(sys_.box, tp, topo);
  TrafficLog healthy_log;
  const CoulombResult clean =
      healthy.compute(sys_.positions, sys_.charges, &healthy_log);

  hw::FaultConfig cfg;
  cfg.seed = 2021;
  cfg.link_error_rate = 1e-4;
  hw::FaultInjector faults(cfg);
  faults.kill_random_nodes(1, topo.node_count());

  ParallelTme degraded(sys_.box, tp, topo);
  degraded.set_fault_injector(&faults);
  ASSERT_NE(degraded.recovery_plan(), nullptr);
  EXPECT_EQ(degraded.recovery_plan()->dead_count(), 1u);

  TrafficLog log;
  const CoulombResult result =
      degraded.compute(sys_.positions, sys_.charges, &log);

  EXPECT_EQ(result.energy, clean.energy);  // bitwise, not approximately
  ASSERT_EQ(result.forces.size(), clean.forces.size());
  for (std::size_t i = 0; i < clean.forces.size(); ++i) {
    EXPECT_EQ(result.forces[i].x, clean.forces[i].x);
    EXPECT_EQ(result.forces[i].y, clean.forces[i].y);
    EXPECT_EQ(result.forces[i].z, clean.forces[i].z);
  }

  // The degradation is visible in the traffic: the one-time block
  // migration phase exists, and the total message count differs from the
  // healthy run (dead-node messages re-homed / collapsed).
  EXPECT_GT(log.words_in("fault redistribution"), 0u);
  EXPECT_NE(log.total_messages(), healthy_log.total_messages());
}

TEST_F(DegradedParTmeTest, LinkErrorsProduceRetransmissionTraffic) {
  const TmeParams tp = fault_test_params(alpha_);
  const TorusTopology topo(2, 2, 2);

  hw::FaultConfig cfg;
  cfg.seed = 5;
  cfg.link_error_rate = 0.02;  // high enough that retries certainly fire
  hw::FaultInjector faults(cfg);
  faults.kill_random_nodes(1, topo.node_count());

  ParallelTme par(sys_.box, tp, topo);
  par.set_fault_injector(&faults);
  TrafficLog log;
  const CoulombResult result = par.compute(sys_.positions, sys_.charges, &log);
  (void)result;

  EXPECT_GT(faults.injected_errors(), 0u);
  EXPECT_GT(log.words_in("fault retransmission"), 0u);
}

TEST_F(DegradedParTmeTest, MetricsExportCountersWhenEnabled) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry::global().reset();

  const TmeParams tp = fault_test_params(alpha_);
  const TorusTopology topo(2, 2, 2);
  hw::FaultConfig cfg;
  cfg.seed = 2021;
  cfg.link_error_rate = 0.02;
  hw::FaultInjector faults(cfg);
  faults.kill_random_nodes(1, topo.node_count());

  ParallelTme par(sys_.box, tp, topo);
  par.set_fault_injector(&faults);
  TrafficLog log;
  par.compute(sys_.positions, sys_.charges, &log);

  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    return 0;
  };
  EXPECT_GT(counter("par_tme/nw_retries"), 0u);
  EXPECT_GT(counter("par_tme/rerouted_messages"), 0u);
}

TEST_F(DegradedParTmeTest, ClearingTheInjectorRestoresHealthyAccounting) {
  const TmeParams tp = fault_test_params(alpha_);
  const TorusTopology topo(2, 2, 2);
  hw::FaultInjector faults;
  faults.kill_node(0);

  ParallelTme par(sys_.box, tp, topo);
  par.set_fault_injector(&faults);
  EXPECT_NE(par.recovery_plan(), nullptr);
  par.set_fault_injector(nullptr);
  EXPECT_EQ(par.recovery_plan(), nullptr);

  TrafficLog log;
  par.compute(sys_.positions, sys_.charges, &log);
  EXPECT_EQ(log.words_in("fault redistribution"), 0u);
  EXPECT_EQ(log.words_in("fault retransmission"), 0u);
}

TEST(ParTmeFaults, PartitioningFaultSetIsRejectedUpFront) {
  const TorusTopology topo(2, 2, 2);
  hw::FaultInjector faults;
  // Sever node 0 from everything without killing it.
  for (const hw::NodeCoord& nb : topo.neighbours({0, 0, 0})) {
    faults.kill_link(topo.index({0, 0, 0}), topo.index(nb));
  }
  const TestSystem sys = random_system(100, 6.4, 3);
  TmeParams tp = fault_test_params(alpha_from_tolerance(0.8, 1e-4));
  ParallelTme par(sys.box, tp, topo);
  EXPECT_THROW(par.set_fault_injector(&faults), std::runtime_error);
}

}  // namespace
}  // namespace tme::par
