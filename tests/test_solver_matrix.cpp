// Solver x scenario cross-validation matrix.
//
// Every registered long-range backend runs against every scenario in the
// library (md/scenarios.hpp); each (solver, scenario) cell completes the
// long-range result with the identical direct erfc pair sum and gates on
//   - pairwise RMS force error against the classical-Ewald long-range
//     reference at the same (alpha, r_cut) — the paper's Table 1 metric,
//   - total-energy agreement,
//   - Newton's-third-law net force,
//   - short NVE total-energy drift (scenarios that carry MD state).
// Cells are parameterized gtest instances, so a failure names the exact
// (solver, scenario) pair; every cell also appends its measurements to a
// JSON report (TME_SOLVER_MATRIX_OUT, default SOLVER_MATRIX.json) stamped
// with the per-run manifest, written once when the process exits.
//
// Registered as ONE ctest entry (`ctest -R solver_matrix`) so all cells
// share the process and the report aggregates the full matrix.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/solvers.hpp"
#include "ewald/splitting.hpp"
#include "md/forcefield.hpp"
#include "md/integrator.hpp"
#include "md/scenarios.hpp"
#include "md/short_range.hpp"
#include "obs/manifest.hpp"
#include "util/constants.hpp"

namespace tme {
namespace {

// --- scenario roster ---------------------------------------------------------

std::vector<Scenario> build_scenarios() {
  std::vector<Scenario> out;
  out.push_back(scenario_tip3p_water(64, 2021));
  out.push_back(scenario_nacl_electrolyte(64, 4, 2022));
  out.push_back(scenario_charged_solute(32, 2.0, 2023));
  out.push_back(scenario_anisotropic_water(32, 2024));
  out.push_back(scenario_random_gas(64, 1.6, 2025));
  out.push_back(scenario_random_gas(128, 1.6, 2026));
  out.push_back(scenario_random_gas(256, 1.6, 2027));
  return out;
}

// Per-scenario reference data, built once and shared by every solver's cell.
struct ScenarioData {
  Scenario sc;
  double r_cut = 0.0;
  double alpha = 0.0;
  CoulombResult reference;  // classical-Ewald LR + direct erfc pair sum
};

const std::vector<ScenarioData>& scenario_data() {
  static const std::vector<ScenarioData> data = [] {
    std::vector<ScenarioData> out;
    for (Scenario& sc : build_scenarios()) {
      ScenarioData d;
      d.sc = std::move(sc);
      const double min_length = std::min(
          {d.sc.box.lengths.x, d.sc.box.lengths.y, d.sc.box.lengths.z});
      d.r_cut = 0.45 * min_length;
      d.alpha = alpha_from_tolerance(d.r_cut, 1e-4);
      SolverTuning tuning;
      tuning.alpha = d.alpha;
      tuning.grid = d.sc.grid;
      d.reference = make_long_range_solver("ewald", d.sc.box, tuning)
                        ->compute(d.sc.positions, d.sc.charges);
      add_short_range_direct(d.sc.box, d.sc.positions, d.sc.charges, d.alpha,
                            d.r_cut, d.reference);
      out.push_back(std::move(d));
    }
    return out;
  }();
  return data;
}

// --- per-backend accuracy gates ----------------------------------------------

struct CellGates {
  double force_rms_rel;   // vs the Ewald reference, Table 1 metric
  double energy_rel;      // |E - E_ref| / |E_ref|
  double net_force_rel;   // |sum F| / (N * rms|F|)
};

CellGates gates_for(const std::string& backend) {
  // ewald-vs-ewald anchors the matrix at rounding level; the mesh methods
  // get envelopes ~5-10x above their measured worst cells (forces ~6e-4 on
  // the anisotropic box, energies ~5e-4 on the small gas boxes, net force
  // ~1.3e-5 from mesh back-interpolation).
  if (backend == "ewald") return {1e-12, 1e-12, 1e-12};
  if (backend == "spme") return {5e-4, 1e-3, 5e-5};
  if (backend == "tme") return {5e-3, 2e-3, 5e-5};
  if (backend == "tme_fixed") return {5e-3, 2e-3, 5e-5};
  return {1e-3, 1e-3, 5e-5};
}

// --- JSON report -------------------------------------------------------------

std::vector<obs::JsonValue>& cell_records() {
  static std::vector<obs::JsonValue> records;
  return records;
}

class MatrixReportEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    obs::JsonValue root = obs::JsonValue::make_object();
    auto& obj = root.as_object();
    obj["manifest"] = obs::manifest_json();
    obs::JsonValue cells = obs::JsonValue::make_array();
    cells.as_array() = cell_records();
    obj["cells"] = std::move(cells);

    const char* path = std::getenv("TME_SOLVER_MATRIX_OUT");
    std::ofstream out(path != nullptr ? path : "SOLVER_MATRIX.json");
    out << root.dump() << "\n";
  }
};

const ::testing::Environment* const kMatrixEnv =
    ::testing::AddGlobalTestEnvironment(new MatrixReportEnvironment);

// --- the matrix --------------------------------------------------------------

class SolverMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(SolverMatrix, CellPassesAccuracyGates) {
  const std::string backend = std::get<0>(GetParam());
  const ScenarioData& d = scenario_data()[std::get<1>(GetParam())];
  const Scenario& sc = d.sc;
  const CellGates gates = gates_for(backend);

  SolverTuning tuning;
  tuning.alpha = d.alpha;
  tuning.grid = sc.grid;
  const std::unique_ptr<LongRangeSolver> solver =
      make_long_range_solver(backend, sc.box, tuning);

  CoulombResult cell = solver->compute(sc.positions, sc.charges);
  add_short_range_direct(sc.box, sc.positions, sc.charges, d.alpha, d.r_cut,
                         cell);

  // Pairwise RMS force error against the Ewald reference (Table 1 metric).
  const double force_rms_rel = cell.relative_force_error_against(d.reference);
  EXPECT_LE(force_rms_rel, gates.force_rms_rel)
      << backend << " x " << sc.name << ": force error above gate";

  // Total-energy agreement.
  const double energy_rel =
      std::abs(cell.energy - d.reference.energy) / std::abs(d.reference.energy);
  EXPECT_LE(energy_rel, gates.energy_rel)
      << backend << " x " << sc.name << ": E=" << cell.energy
      << " ref=" << d.reference.energy;

  // Newton's third law: the net force must vanish relative to the typical
  // force magnitude (the direct pair sum cancels exactly; what remains is
  // the mesh back-interpolation's non-conservation).
  Vec3 net{};
  double rms = 0.0;
  for (const Vec3& f : cell.forces) {
    net += f;
    rms += norm2(f);
  }
  const std::size_t n = cell.forces.size();
  rms = std::sqrt(rms / static_cast<double>(n));
  const double net_force_rel = norm(net) / (static_cast<double>(n) * rms);
  EXPECT_LE(net_force_rel, gates.net_force_rel)
      << backend << " x " << sc.name << ": net force " << norm(net);

  // Short NVE drift for scenarios that carry MD state.
  double drift = -1.0, drift_gate = -1.0;
  if (sc.md.has_value()) {
    WaterBox wb = *sc.md;  // fresh copy: cells must not share MD state
    ShortRangeParams sr;
    sr.cutoff = d.r_cut;
    sr.alpha = d.alpha;
    sr.shift_lj = true;
    SolverTuning md_tuning = tuning;
    const ForceField ff(sr, make_long_range_solver(backend, wb.system.box,
                                                   md_tuning));
    const VelocityVerlet integrator(wb.topology, wb.system, IntegratorParams{});
    integrator.prime(wb.system, wb.topology, ff);
    StepReport report{};
    for (int s = 0; s < 10; ++s) {
      report = integrator.step(wb.system, wb.topology, ff);
    }
    const double e0 = report.total();
    drift = 0.0;
    for (int s = 0; s < 50; ++s) {
      report = integrator.step(wb.system, wb.topology, ff);
      drift = std::max(drift, std::abs(report.total() - e0));
    }
    drift_gate = 0.01 * report.kinetic + 1.0;
    EXPECT_LT(drift, drift_gate)
        << backend << " x " << sc.name << ": NVE drift";
  }

  // Per-cell record for the aggregated JSON report.
  obs::JsonValue rec = obs::JsonValue::make_object();
  auto& r = rec.as_object();
  r["solver"] = obs::JsonValue::make_string(backend);
  r["scenario"] = obs::JsonValue::make_string(sc.name);
  r["solver_config"] = solver->describe();
  r["scenario_config"] = sc.describe();
  r["alpha"] = obs::JsonValue::make_number(d.alpha);
  r["r_cut"] = obs::JsonValue::make_number(d.r_cut);
  r["force_rms_rel"] = obs::JsonValue::make_number(force_rms_rel);
  r["force_gate"] = obs::JsonValue::make_number(gates.force_rms_rel);
  r["energy_rel"] = obs::JsonValue::make_number(energy_rel);
  r["energy_gate"] = obs::JsonValue::make_number(gates.energy_rel);
  r["net_force_rel"] = obs::JsonValue::make_number(net_force_rel);
  r["net_force_gate"] = obs::JsonValue::make_number(gates.net_force_rel);
  r["nve_drift"] = obs::JsonValue::make_number(drift);
  r["nve_drift_gate"] = obs::JsonValue::make_number(drift_gate);
  r["passed"] = obs::JsonValue::make_bool(!::testing::Test::HasFailure());
  cell_records().push_back(std::move(rec));
}

std::vector<std::string> backend_names() { return long_range_backends(); }

std::vector<std::size_t> scenario_indices() {
  std::vector<std::size_t> idx(build_scenarios().size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return idx;
}

std::string cell_name(
    const ::testing::TestParamInfo<SolverMatrix::ParamType>& info) {
  return std::get<0>(info.param) + "_x_" +
         scenario_data()[std::get<1>(info.param)].sc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SolverMatrix,
    ::testing::Combine(::testing::ValuesIn(backend_names()),
                       ::testing::ValuesIn(scenario_indices())),
    cell_name);

}  // namespace
}  // namespace tme
