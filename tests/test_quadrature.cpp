#include "quadrature/gauss_legendre.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace tme {
namespace {

TEST(GaussLegendre, OnePointRuleIsMidpoint) {
  const QuadratureRule rule = gauss_legendre(1);
  ASSERT_EQ(rule.nodes.size(), 1u);
  EXPECT_NEAR(rule.nodes[0], 0.0, 1e-15);
  EXPECT_NEAR(rule.weights[0], 2.0, 1e-15);
}

TEST(GaussLegendre, TwoPointRuleMatchesClosedForm) {
  const QuadratureRule rule = gauss_legendre(2);
  const double node = 1.0 / std::sqrt(3.0);
  EXPECT_NEAR(rule.nodes[0], -node, 1e-14);
  EXPECT_NEAR(rule.nodes[1], node, 1e-14);
  EXPECT_NEAR(rule.weights[0], 1.0, 1e-14);
  EXPECT_NEAR(rule.weights[1], 1.0, 1e-14);
}

TEST(GaussLegendre, ThreePointRuleMatchesClosedForm) {
  const QuadratureRule rule = gauss_legendre(3);
  const double node = std::sqrt(0.6);
  EXPECT_NEAR(rule.nodes[0], -node, 1e-14);
  EXPECT_NEAR(rule.nodes[1], 0.0, 1e-14);
  EXPECT_NEAR(rule.nodes[2], node, 1e-14);
  EXPECT_NEAR(rule.weights[0], 5.0 / 9.0, 1e-14);
  EXPECT_NEAR(rule.weights[1], 8.0 / 9.0, 1e-14);
  EXPECT_NEAR(rule.weights[2], 5.0 / 9.0, 1e-14);
}

TEST(GaussLegendre, RejectsZeroPoints) {
  EXPECT_THROW(gauss_legendre(0), std::invalid_argument);
}

class GaussLegendreSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussLegendreSweep, WeightsSumToTwo) {
  const QuadratureRule rule = gauss_legendre(GetParam());
  double sum = 0.0;
  for (const double w : rule.weights) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 2.0, 1e-13);
}

TEST_P(GaussLegendreSweep, NodesAscendInOpenInterval) {
  const QuadratureRule rule = gauss_legendre(GetParam());
  for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
    EXPECT_GT(rule.nodes[i], -1.0);
    EXPECT_LT(rule.nodes[i], 1.0);
    if (i > 0) EXPECT_GT(rule.nodes[i], rule.nodes[i - 1]);
  }
}

TEST_P(GaussLegendreSweep, ExactForPolynomialsUpToDegree2mMinus1) {
  const std::size_t m = GetParam();
  const QuadratureRule rule = gauss_legendre(m);
  // Integrate x^d over [-1, 1]: 0 for odd d, 2/(d+1) for even d.
  for (std::size_t d = 0; d <= 2 * m - 1; ++d) {
    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      sum += rule.weights[i] * std::pow(rule.nodes[i], static_cast<double>(d));
    }
    const double exact = d % 2 == 1 ? 0.0 : 2.0 / (static_cast<double>(d) + 1.0);
    EXPECT_NEAR(sum, exact, 1e-12) << "m=" << m << " degree=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussLegendreSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 33, 64));

TEST(GaussLegendre, IntegratesGaussianSegmentAccurately) {
  // The TME uses the rule on exp(-(c u)^2) over [-1, 1]; check convergence
  // against erf.
  const double c = 1.3;
  const double exact = std::sqrt(M_PI) / c * std::erf(c);
  const double approx =
      integrate_gl([c](double u) { return std::exp(-c * c * u * u); }, -1.0, 1.0, 20);
  EXPECT_NEAR(approx, exact, 1e-13);
  // And the convergence the TME relies on: each added point shrinks the
  // error of the low-order rules substantially.
  double prev_err = 1.0;
  for (std::size_t m = 1; m <= 4; ++m) {
    const double val = integrate_gl(
        [c](double u) { return std::exp(-c * c * u * u); }, -1.0, 1.0, m);
    const double err = std::abs(val - exact);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-2);
}

}  // namespace
}  // namespace tme
