// Force-consistency property tests: for every long-range solver the forces
// must equal the negative numerical gradient of the energy, atom by atom.
// This pins the analytic derivative paths (B-spline derivative chains,
// reciprocal-space force expressions) against the energy paths they must
// match for stable dynamics.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/tme.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "msm/msm.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem small_system(std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {3.2, 3.2, 3.2};
  Rng rng(seed);
  const std::size_t n = 24;
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, 3.2), rng.uniform(0.0, 3.2),
                        rng.uniform(0.0, 3.2)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

// Central-difference gradient check on a handful of atoms/axes.
template <typename Energy>
void expect_forces_match_gradient(const TestSystem& sys,
                                  const std::vector<Vec3>& forces,
                                  const Energy& energy_of, double tolerance) {
  const double eps = 2e-6;
  for (const std::size_t atom : {0u, 7u, 15u}) {
    for (int axis = 0; axis < 3; ++axis) {
      auto shifted = sys.positions;
      shifted[atom][static_cast<std::size_t>(axis)] += eps;
      const double e_hi = energy_of(shifted);
      shifted[atom][static_cast<std::size_t>(axis)] -= 2 * eps;
      const double e_lo = energy_of(shifted);
      const double fd = -(e_hi - e_lo) / (2 * eps);
      EXPECT_NEAR(forces[atom][static_cast<std::size_t>(axis)], fd, tolerance)
          << "atom " << atom << " axis " << axis;
    }
  }
}

TEST(ForceGradient, EwaldReference) {
  const TestSystem sys = small_system(1);
  EwaldParams params;
  params.alpha = 3.0;
  const CoulombResult r = ewald_reference(sys.box, sys.positions, sys.charges, params);
  expect_forces_match_gradient(
      sys, r.forces,
      [&](const std::vector<Vec3>& pos) {
        return ewald_reference(sys.box, pos, sys.charges, params).energy;
      },
      2e-4);
}

TEST(ForceGradient, Spme) {
  const TestSystem sys = small_system(2);
  SpmeParams params;
  params.alpha = alpha_from_tolerance(0.8, 1e-4);
  params.grid = {16, 16, 16};
  const Spme spme(sys.box, params);
  const CoulombResult r = spme.compute(sys.positions, sys.charges);
  expect_forces_match_gradient(
      sys, r.forces,
      [&](const std::vector<Vec3>& pos) {
        return spme.compute(pos, sys.charges).energy;
      },
      2e-4);
}

class TmeGradientSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(TmeGradientSweep, ForcesMatchEnergyGradient) {
  const auto [order, gc, m] = GetParam();
  const TestSystem sys = small_system(3);
  TmeParams params;
  params.order = order;
  params.alpha = alpha_from_tolerance(0.8, 1e-4);
  params.grid = {16, 16, 16};
  params.grid_cutoff = gc;
  params.num_gaussians = m;
  const Tme tme(sys.box, params);
  const CoulombResult r = tme.compute(sys.positions, sys.charges);
  expect_forces_match_gradient(
      sys, r.forces,
      [&](const std::vector<Vec3>& pos) {
        return tme.compute(pos, sys.charges).energy;
      },
      2e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, TmeGradientSweep,
    ::testing::Values(std::make_tuple(4, 8, 2u), std::make_tuple(6, 8, 4u),
                      std::make_tuple(6, 4, 1u), std::make_tuple(8, 8, 3u),
                      std::make_tuple(6, 12, 4u)));

TEST(ForceGradient, Msm) {
  const TestSystem sys = small_system(4);
  MsmParams params;
  params.alpha = alpha_from_tolerance(0.8, 1e-4);
  params.grid = {16, 16, 16};
  params.grid_cutoff = 8;
  const Msm msm(sys.box, params);
  const CoulombResult r = msm.compute(sys.positions, sys.charges);
  expect_forces_match_gradient(
      sys, r.forces,
      [&](const std::vector<Vec3>& pos) {
        return msm.compute(pos, sys.charges).energy;
      },
      2e-4);
}

TEST(ForceGradient, TmeTwoLevels) {
  const TestSystem sys = small_system(5);
  TmeParams params;
  params.alpha = alpha_from_tolerance(0.4, 1e-4);
  params.grid = {32, 32, 32};
  params.levels = 2;
  params.grid_cutoff = 8;
  params.num_gaussians = 3;
  const Tme tme(sys.box, params);
  const CoulombResult r = tme.compute(sys.positions, sys.charges);
  expect_forces_match_gradient(
      sys, r.forces,
      [&](const std::vector<Vec3>& pos) {
        return tme.compute(pos, sys.charges).energy;
      },
      5e-4);
}

}  // namespace
}  // namespace tme
