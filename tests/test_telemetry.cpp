// Fleet observability tests: clock-offset estimation (and its RTT/2 error
// bound under injected asymmetric delay), the kTelemetry wire codec, trace
// chunk drain conservation (emitted == merged + dropped across flush
// boundaries), the coordinator-side FleetTelemetry merge (determinism,
// per-track timestamp monotonicity, worker process tracks), the StatusReporter
// live-introspection snapshots, and the end-to-end fork-mode fleet run whose
// merged timeline must carry one process track per worker incarnation with
// dispatch -> task flow arrows.
#include <unistd.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ewald/splitting.hpp"
#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "par/fleet.hpp"
#include "par/par_tme.hpp"
#include "par/telemetry.hpp"
#include "par/traffic.hpp"
#include "par/worker.hpp"
#include "util/rng.hpp"

namespace tme::par {
namespace {

// --- shared fixtures ---------------------------------------------------------

struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem random_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

TmeParams small_params() {
  TmeParams tp;
  tp.alpha = alpha_from_tolerance(0.8, 1e-4);
  tp.grid = {16, 16, 16};
  tp.levels = 1;
  tp.grid_cutoff = 4;
  tp.num_gaussians = 3;
  return tp;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

// For every (pid, tid) row of a merged trace, event timestamps must be
// non-decreasing — Perfetto rejects out-of-order slices on a track.
void expect_monotone_tracks(const obs::JsonValue& trace) {
  std::map<std::pair<double, double>, double> last_ts;
  for (const obs::JsonValue& ev : trace.at("traceEvents").as_array()) {
    const std::string ph = ev.at("ph").as_string();
    if (ph == "M") continue;  // metadata records carry no timestamp
    const std::pair<double, double> key = {ev.at("pid").as_number(),
                                           ev.at("tid").as_number()};
    const double ts = ev.at("ts").as_number();
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, ts) << "track pid=" << key.first
                                << " tid=" << key.second;
    }
    last_ts[key] = ts;
  }
}

// Collects the names of all "process_name" metadata records.
std::vector<std::string> process_names(const obs::JsonValue& trace) {
  std::vector<std::string> names;
  for (const obs::JsonValue& ev : trace.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() == "M" &&
        ev.at("name").as_string() == "process_name") {
      names.push_back(ev.at("args").at("name").as_string());
    }
  }
  return names;
}

// --- clock-offset estimator --------------------------------------------------

TEST(ClockOffset, RecoversKnownOffsetFromSymmetricRoundTrip) {
  obs::ClockOffsetEstimator est;
  EXPECT_FALSE(est.has_offset());
  // Worker clock runs 500us ahead; both legs take 40us.
  const double t0 = 1000.0, t1 = 1080.0;
  const double remote = (t0 + t1) / 2.0 + 500.0;
  est.add_sample(t0, t1, remote);
  ASSERT_TRUE(est.has_offset());
  EXPECT_DOUBLE_EQ(est.offset_us(), 500.0);
  EXPECT_DOUBLE_EQ(est.rtt_us(), 80.0);
  // Mapping: local = remote - offset.
  EXPECT_DOUBLE_EQ(remote - est.offset_us(), 1040.0);
}

TEST(ClockOffset, MinRttSampleWinsAndCongestionNeverLoosens) {
  obs::ClockOffsetEstimator est;
  est.add_sample(0.0, 200.0, 100.0 + 7.0);    // rtt 200, offset 7
  est.add_sample(1000.0, 1040.0, 1020.0 + 3.0);  // rtt 40: tighter, wins
  EXPECT_DOUBLE_EQ(est.rtt_us(), 40.0);
  EXPECT_DOUBLE_EQ(est.offset_us(), 3.0);
  // A later congested ping must not replace the tight sample.
  est.add_sample(2000.0, 2900.0, 2450.0 + 99.0);
  EXPECT_DOUBLE_EQ(est.rtt_us(), 40.0);
  EXPECT_DOUBLE_EQ(est.offset_us(), 3.0);
  EXPECT_EQ(est.samples(), 3u);
  est.reset();
  EXPECT_FALSE(est.has_offset());
  EXPECT_EQ(est.samples(), 0u);
}

TEST(ClockOffset, ErrorBoundedByHalfRttUnderAsymmetricDelay) {
  // Worst-case asymmetry: the entire RTT spent on one leg.  True offset 0;
  // the remote samples its clock at t0 (outbound instantaneous, return slow)
  // or at t1 (outbound slow).  Either way |estimate| <= rtt/2.
  const double t0 = 5000.0, t1 = 5600.0;
  for (const double remote : {t0, t1}) {
    obs::ClockOffsetEstimator est;
    est.add_sample(t0, t1, remote);
    EXPECT_LE(std::abs(est.offset_us()), est.rtt_us() / 2.0 + 1e-9);
  }
}

// Fleet-level: an in-proc fleet shares the coordinator's tracer epoch, so
// the true offset is zero — any estimate the init/ping round trips produce
// must sit inside the RTT/2 bound even with a 20ms asymmetric (outbound
// only) delay injected on the transport.
TEST(ClockOffset, FleetEstimateWithinHalfRttUnderInjectedAsymmetry) {
  const TestSystem sys = random_system(32, 3.2, 11);
  const hw::TorusTopology topo(2, 2, 1);
  ParallelTme par(sys.box, small_params(), topo);
  FleetConfig cfg;
  cfg.backend = FleetConfig::Backend::kInProc;
  cfg.workers = 2;
  cfg.net_fault.delay_ms = 20;  // coordinator->worker leg only
  WorkerFleet fleet(par.context(), par.topology(), cfg);
  EXPECT_EQ(fleet.heartbeat(std::chrono::milliseconds(2000)), 2u);
  for (std::size_t w = 0; w < cfg.workers; ++w) {
    ASSERT_TRUE(fleet.worker_clock_synced(w)) << "worker " << w;
    const double rtt = fleet.worker_clock_rtt_us(w);
    // Every coordinator send sleeps 20ms, so the round trip is at least that.
    EXPECT_GE(rtt, 20000.0 * 0.9);
    EXPECT_LE(std::abs(fleet.worker_clock_offset_us(w)), rtt / 2.0 + 50.0)
        << "worker " << w;
  }
  fleet.quiesce();
}

// --- kTelemetry wire codec ---------------------------------------------------

obs::WorkerTelemetry sample_telemetry() {
  obs::WorkerTelemetry t;
  t.rank = 3;
  t.pid = 123456;
  t.seq = 7;
  t.chunk.tracks.push_back({"tasks", "rank 3"});
  t.chunk.tracks.push_back({"software", "thread 0"});
  t.chunk.emitted = 42;
  t.chunk.dropped = 2;
  obs::TraceEvent complete;
  complete.type = obs::TraceEventType::kComplete;
  complete.track = 0;
  complete.ts_us = 100.5;
  complete.dur_us = 20.25;
  complete.name = "ca task";
  complete.detail = "task 9";
  obs::TraceEvent instant;
  instant.type = obs::TraceEventType::kInstant;
  instant.track = 1;
  instant.ts_us = 130.0;
  instant.name = "checkpoint";
  obs::TraceEvent counter;
  counter.type = obs::TraceEventType::kCounter;
  counter.track = 0;
  counter.ts_us = 131.0;
  counter.value = 5.0;
  counter.name = "inflight";
  obs::TraceEvent flow;
  flow.type = obs::TraceEventType::kFlowFinish;
  flow.track = 0;
  flow.ts_us = 100.5;
  flow.flow = 77;
  flow.name = "dispatch";
  t.chunk.events = {complete, instant, counter, flow};
  t.metrics_json = "{\"counters\":{\"worker/tasks\":4}}";
  return t;
}

TEST(TelemetryCodec, RoundTripPreservesEverything) {
  const obs::WorkerTelemetry t = sample_telemetry();
  const obs::WorkerTelemetry got = decode_telemetry(encode_telemetry(t));
  EXPECT_EQ(got.rank, t.rank);
  EXPECT_EQ(got.pid, t.pid);
  EXPECT_EQ(got.seq, t.seq);
  EXPECT_EQ(got.metrics_json, t.metrics_json);
  EXPECT_EQ(got.chunk.emitted, t.chunk.emitted);
  EXPECT_EQ(got.chunk.dropped, t.chunk.dropped);
  ASSERT_EQ(got.chunk.tracks.size(), t.chunk.tracks.size());
  for (std::size_t i = 0; i < t.chunk.tracks.size(); ++i) {
    EXPECT_EQ(got.chunk.tracks[i].process, t.chunk.tracks[i].process);
    EXPECT_EQ(got.chunk.tracks[i].name, t.chunk.tracks[i].name);
  }
  ASSERT_EQ(got.chunk.events.size(), t.chunk.events.size());
  for (std::size_t i = 0; i < t.chunk.events.size(); ++i) {
    const obs::TraceEvent& want = t.chunk.events[i];
    const obs::TraceEvent& have = got.chunk.events[i];
    EXPECT_EQ(have.type, want.type) << "event " << i;
    EXPECT_EQ(have.track, want.track) << "event " << i;
    EXPECT_EQ(have.ts_us, want.ts_us) << "event " << i;
    EXPECT_EQ(have.dur_us, want.dur_us) << "event " << i;
    EXPECT_EQ(have.value, want.value) << "event " << i;
    EXPECT_EQ(have.flow, want.flow) << "event " << i;
    EXPECT_EQ(have.name, want.name) << "event " << i;
    EXPECT_EQ(have.detail, want.detail) << "event " << i;
  }
}

TEST(TelemetryCodec, RejectsBadMagicTruncationAndTrailingGarbage) {
  const std::vector<std::uint8_t> bytes = encode_telemetry(sample_telemetry());
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW((void)decode_telemetry(bad_magic), std::exception);
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_THROW((void)decode_telemetry(truncated), std::exception);
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_telemetry(trailing), std::exception);
  EXPECT_THROW((void)decode_telemetry({}), std::exception);
}

// --- context codec v2 (telemetry flag) ---------------------------------------

TEST(ContextCodec, TelemetryFlagRoundTrips) {
  WorkerContext ctx;
  ctx.rank = 2;
  ctx.workers = 4;
  ctx.fault.delay_ms = 5;
  ctx.telemetry = true;
  const WorkerContext got = decode_context(encode_context(ctx));
  EXPECT_EQ(got.rank, 2u);
  EXPECT_EQ(got.workers, 4u);
  EXPECT_EQ(got.fault.delay_ms, 5);
  EXPECT_TRUE(got.telemetry);
  ctx.telemetry = false;
  EXPECT_FALSE(decode_context(encode_context(ctx)).telemetry);
}

// --- tracer drain conservation -----------------------------------------------

TEST(TraceDrain, EmittedEqualsMergedPlusDroppedAcrossFlushBoundaries) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.reset_for_testing();
  tracer.set_buffer_capacity(8);
  tracer.set_enabled(true);
  const obs::TrackId track = tracer.track("test", "drain");
  for (int i = 0; i < 20; ++i) {
    tracer.instant(track, "e", static_cast<double>(i));
  }
  const obs::TraceChunk first = tracer.drain_chunk();
  // Ring holds 8, so 12 overflowed; cumulative counters cover both.
  EXPECT_EQ(first.events.size(), 8u);
  EXPECT_EQ(first.emitted, 20u);
  EXPECT_EQ(first.dropped, 12u);
  EXPECT_EQ(first.emitted, first.events.size() + first.dropped);
  ASSERT_FALSE(first.tracks.empty());
  EXPECT_LT(first.events[0].track, first.tracks.size());

  // Second flush window: the ring is still full, so these all drop — and
  // conservation must keep holding with cumulative counters.
  for (int i = 0; i < 5; ++i) {
    tracer.instant(track, "late", 100.0 + i);
  }
  const obs::TraceChunk second = tracer.drain_chunk();
  EXPECT_EQ(second.emitted, 25u);
  const std::uint64_t merged_total = first.events.size() + second.events.size();
  EXPECT_EQ(second.emitted, merged_total + second.dropped);
  EXPECT_EQ(tracer.undrained_count(), 0u);

  tracer.reset_for_testing();
  tracer.set_buffer_capacity(65536);  // don't leak the tiny ring to later tests
  tracer.set_enabled(false);
}

// --- FleetTelemetry merge ----------------------------------------------------

obs::WorkerTelemetry chunk_from(std::uint32_t rank, std::int64_t pid,
                                std::uint64_t seq, double ts0,
                                std::uint64_t emitted, std::uint64_t dropped) {
  obs::WorkerTelemetry t;
  t.rank = rank;
  t.pid = pid;
  t.seq = seq;
  t.chunk.tracks.push_back({"tasks", "rank " + std::to_string(rank)});
  t.chunk.emitted = emitted;
  t.chunk.dropped = dropped;
  for (int i = 0; i < 3; ++i) {
    obs::TraceEvent e;
    e.type = obs::TraceEventType::kComplete;
    e.track = 0;
    e.ts_us = ts0 + 10.0 * i;
    e.dur_us = 4.0;
    e.name = "task";
    t.chunk.events.push_back(std::move(e));
  }
  return t;
}

TEST(FleetMerge, WorkerTracksOffsetsAndConservation) {
  obs::FleetTelemetry fleet;
  // Worker 0, first incarnation: clock 500us ahead of the coordinator.
  fleet.set_offset(0, 4242, 500.0, 60.0);
  fleet.ingest(chunk_from(0, 4242, 1, 1000.0, 3, 0));
  fleet.ingest(chunk_from(0, 4242, 2, 2000.0, 6, 0));
  // Worker 0 respawned as pid 4300: separate incarnation, separate clock.
  // One of its events overflowed the ring: emitted 4 = 3 merged + 1 dropped.
  fleet.set_offset(0, 4300, -250.0, 40.0);
  fleet.ingest(chunk_from(0, 4300, 1, 100.0, 4, 1));
  // Worker 1 never shipped an offset (no pong landed): merged unshifted.
  fleet.ingest(chunk_from(1, 5555, 1, 50.0, 3, 0));

  EXPECT_EQ(fleet.incarnation_count(), 3u);
  EXPECT_EQ(fleet.chunk_count(), 4u);
  EXPECT_EQ(fleet.events_merged(), 12u);
  // Cumulative counters: per-incarnation max, summed.
  EXPECT_EQ(fleet.emitted_total(), 6u + 4u + 3u);
  EXPECT_EQ(fleet.dropped_total(), 1u);
  EXPECT_EQ(fleet.emitted_total(), fleet.events_merged() + fleet.dropped_total());

  const std::string json = fleet.to_json(obs::Tracer::global());
  // Byte-identical on re-serialisation: the merge is deterministic.
  EXPECT_EQ(json, fleet.to_json(obs::Tracer::global()));

  const obs::JsonValue trace = obs::json_parse(json);
  expect_monotone_tracks(trace);
  const std::vector<std::string> procs = process_names(trace);
  auto has = [&](const std::string& name) {
    for (const std::string& p : procs) {
      if (p == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("worker 0 (pid 4242)"));
  EXPECT_TRUE(has("worker 0 (pid 4300)"));
  EXPECT_TRUE(has("worker 1 (pid 5555)"));

  // Offset application: incarnation 4242's first event lands at 1000 - 500.
  bool found_shifted = false;
  for (const obs::JsonValue& ev : trace.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() == "X" && ev.at("pid").as_number() == 1001.0 &&
        ev.at("ts").as_number() == 500.0) {
      found_shifted = true;
    }
  }
  EXPECT_TRUE(found_shifted);

  // The merged file self-reports the fleet-wide totals and clock table.
  const obs::JsonValue& other = trace.at("otherData");
  EXPECT_EQ(other.at("telemetry_events_merged").as_number(), 12.0);
  EXPECT_EQ(other.at("telemetry_emitted").as_number(), 13.0);
  EXPECT_EQ(other.at("telemetry_chunks").as_number(), 4.0);
  const auto& offsets = other.at("clock_offsets").as_array();
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0].at("offset_us").as_number(), 500.0);
  EXPECT_TRUE(offsets[0].at("has_offset").as_bool());
  EXPECT_FALSE(offsets[2].at("has_offset").as_bool());

  fleet.clear();
  EXPECT_EQ(fleet.incarnation_count(), 0u);
  EXPECT_EQ(fleet.events_merged(), 0u);
}

TEST(FleetMerge, MalformedTrackIndexDropsEventNotProcess) {
  obs::FleetTelemetry fleet;
  obs::WorkerTelemetry bad = chunk_from(0, 99, 1, 10.0, 4, 0);
  obs::TraceEvent rogue;
  rogue.type = obs::TraceEventType::kInstant;
  rogue.track = 17;  // out of range for the chunk's 1-entry track table
  rogue.ts_us = 11.0;
  rogue.name = "rogue";
  bad.chunk.events.push_back(rogue);
  fleet.ingest(std::move(bad));
  const obs::JsonValue trace =
      obs::json_parse(fleet.to_json(obs::Tracer::global()));
  std::size_t worker_events = 0;
  for (const obs::JsonValue& ev : trace.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "M" && ev.at("pid").as_number() == 1001.0) {
      EXPECT_NE(ev.at("name").as_string(), "rogue");
      ++worker_events;
    }
  }
  EXPECT_EQ(worker_events, 3u);
}

TEST(FleetMerge, PublishWorkerMetricsLandsInRegistryAsGauges) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::FleetTelemetry fleet;
  obs::WorkerTelemetry t = chunk_from(1, 777, 1, 0.0, 3, 0);
  t.metrics_json =
      "{\"counters\":{\"worker/tasks\":9},\"gauges\":{},\"timers\":{}}";
  fleet.ingest(std::move(t));
  obs::Registry& reg = obs::Registry::global();
  fleet.publish_worker_metrics(reg);
  const obs::MetricsSnapshot snap = reg.snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "fleet/w1/worker/worker/tasks") {
      found = true;
      EXPECT_DOUBLE_EQ(value, 9.0);
    }
  }
  EXPECT_TRUE(found);
}

// --- StatusReporter ----------------------------------------------------------

class StatusReporterTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::StatusReporter::global().reset_for_testing(); }
  void TearDown() override {
    obs::StatusReporter::global().reset_for_testing();
  }
};

TEST_F(StatusReporterTest, WriteNowIsAtomicAndSchemaShaped) {
  obs::StatusReporter& status = obs::StatusReporter::global();
  EXPECT_FALSE(status.poll(1));  // no path configured: a no-op
  const std::string path = temp_path("status_schema.json");
  status.set_path(path);
  const int id = status.add_provider("fleet", [](obs::JsonValue& v) {
    v.as_object()["workers"] = obs::JsonValue::make_number(3.0);
  });
  ASSERT_TRUE(status.write_now(17));
  // Atomic: the temp file is renamed away, only the target remains.
  EXPECT_FALSE(file_exists(path + ".tmp." + std::to_string(::getpid())));
  const obs::JsonValue snap = obs::json_parse(read_file(path));
  EXPECT_EQ(snap.at("schema").as_string(), "tme-status-v1");
  EXPECT_EQ(snap.at("step").as_number(), 17.0);
  EXPECT_EQ(snap.at("pid").as_number(), static_cast<double>(::getpid()));
  EXPECT_GT(snap.at("written_unix_ms").as_number(), 0.0);
  ASSERT_TRUE(snap.contains("metrics"));
  EXPECT_TRUE(snap.at("metrics").contains("counters"));
  EXPECT_TRUE(snap.at("metrics").contains("gauges"));
  EXPECT_TRUE(snap.at("metrics").contains("histograms"));
  ASSERT_TRUE(snap.contains("fleet"));
  EXPECT_EQ(snap.at("fleet").at("workers").as_number(), 3.0);
  status.remove_provider(id);
  ASSERT_TRUE(status.write_now(18));
  EXPECT_FALSE(obs::json_parse(read_file(path)).contains("fleet"));
  std::remove(path.c_str());
}

TEST_F(StatusReporterTest, HistogramPercentilesAppearInSnapshot) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::StatusReporter& status = obs::StatusReporter::global();
  const std::string path = temp_path("status_hist.json");
  status.set_path(path);
  obs::Histogram& h = obs::Registry::global().histogram("status/test_latency");
  for (int i = 1; i <= 100; ++i) h.record(i * 1e-3);
  ASSERT_TRUE(status.write_now(1));
  const obs::JsonValue snap = obs::json_parse(read_file(path));
  const obs::JsonValue& hist =
      snap.at("metrics").at("histograms").at("status/test_latency");
  EXPECT_GE(hist.at("count").as_number(), 100.0);
  EXPECT_GT(hist.at("p50").as_number(), 0.0);
  EXPECT_LE(hist.at("p50").as_number(), hist.at("p95").as_number());
  EXPECT_LE(hist.at("p95").as_number(), hist.at("p99").as_number());
  std::remove(path.c_str());
}

TEST_F(StatusReporterTest, PeriodicPollWritesOnConfiguredCadence) {
  obs::StatusReporter& status = obs::StatusReporter::global();
  const std::string path = temp_path("status_every.json");
  status.set_path(path);
  status.set_every(3);
  EXPECT_FALSE(status.poll(1));
  EXPECT_FALSE(status.poll(2));
  EXPECT_TRUE(status.poll(3));
  EXPECT_FALSE(status.poll(4));
  EXPECT_TRUE(status.poll(6));
  EXPECT_EQ(obs::json_parse(read_file(path)).at("step").as_number(), 6.0);
  std::remove(path.c_str());
}

TEST_F(StatusReporterTest, Sigusr1SetsPendingFlagAndPollConsumesIt) {
  obs::StatusReporter& status = obs::StatusReporter::global();
  const std::string path = temp_path("status_signal.json");
  status.set_path(path);
  status.arm_signal();
  EXPECT_FALSE(obs::StatusReporter::signal_pending());
  ASSERT_EQ(::raise(SIGUSR1), 0);
  EXPECT_TRUE(obs::StatusReporter::signal_pending());
  EXPECT_TRUE(status.poll(5));  // off-cadence step: the signal forced it
  EXPECT_FALSE(obs::StatusReporter::signal_pending());
  EXPECT_FALSE(status.poll(6));
  EXPECT_EQ(obs::json_parse(read_file(path)).at("step").as_number(), 5.0);
  std::remove(path.c_str());
}

TEST_F(StatusReporterTest, EnvConfigurationWiresPathAndPeriod) {
  ::setenv("TME_STATUS_OUT", temp_path("status_env.json").c_str(), 1);
  ::setenv("TME_STATUS_EVERY", "2", 1);
  obs::StatusReporter& status = obs::StatusReporter::global();
  status.configure_from_env();
  EXPECT_EQ(status.path(), temp_path("status_env.json"));
  EXPECT_EQ(status.every(), 2u);
  EXPECT_TRUE(status.poll(2));
  std::remove(temp_path("status_env.json").c_str());
  ::unsetenv("TME_STATUS_OUT");
  ::unsetenv("TME_STATUS_EVERY");
}

// --- end-to-end: fork-mode fleet with a kill drill ---------------------------

// The acceptance run: a real-process fleet with worker-side telemetry armed
// and one worker SIGKILLed mid-run.  The merged timeline must carry the
// coordinator's dispatch track, one process per worker incarnation
// (including the respawn), and dispatch -> task flow arrows; forces stay
// bitwise identical to the serial reference; conservation holds.
TEST(FleetTelemetryE2E, KillDrillProducesMergedTimelineWithRespawnTrack) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.reset_for_testing();
  tracer.set_enabled(true);

  const TestSystem sys = random_system(48, 3.2, 23);
  const hw::TorusTopology topo(2, 2, 1);
  ParallelTme reference(sys.box, small_params(), topo);
  TrafficLog ref_log;
  const CoulombResult want =
      reference.compute(sys.positions, sys.charges, &ref_log);

  FleetConfig cfg;
  cfg.backend = FleetConfig::Backend::kProc;
  cfg.workers = 2;
  cfg.respawn = true;
  cfg.context_path = temp_path("telemetry_e2e.ctx");
  cfg.worker_faults.resize(2);
  cfg.worker_faults[1].crash_after_tasks = 2;  // SIGKILL mid-run

  ParallelTme par(sys.box, small_params(), topo);
  WorkerFleet fleet(par.context(), par.topology(), cfg);
  ASSERT_TRUE(fleet.telemetry_enabled());
  par.set_executor(&fleet);
  TrafficLog log;
  const CoulombResult got = par.compute(sys.positions, sys.charges, &log);

  EXPECT_EQ(want.energy, got.energy);
  ASSERT_EQ(want.forces.size(), got.forces.size());
  for (std::size_t i = 0; i < want.forces.size(); ++i) {
    ASSERT_EQ(want.forces[i].x, got.forces[i].x) << "atom " << i;
    ASSERT_EQ(want.forces[i].y, got.forces[i].y) << "atom " << i;
    ASSERT_EQ(want.forces[i].z, got.forces[i].z) << "atom " << i;
  }
  EXPECT_GE(fleet.stats().worker_deaths, 1u);
  EXPECT_GE(fleet.stats().respawns, 1u);

  // Clock sync from the init handshakes (and respawn re-init).
  for (std::size_t w = 0; w < cfg.workers; ++w) {
    EXPECT_TRUE(fleet.worker_clock_synced(w)) << "worker " << w;
    EXPECT_EQ(fleet.outstanding_tasks(w), 0u) << "worker " << w;
  }

  // Quiesce flushes each live worker's final chunk before kBye.
  EXPECT_TRUE(fleet.quiesce());
  const obs::FleetTelemetry& telemetry = fleet.telemetry();
  // Two initial incarnations + at least one respawn incarnation.
  EXPECT_GE(telemetry.incarnation_count(), 3u);
  EXPECT_GT(telemetry.events_merged(), 0u);
  // The SIGKILLed incarnation's unsent tail is invisible on both sides of
  // the ledger, so conservation holds fleet-wide at chunk granularity.
  EXPECT_EQ(telemetry.emitted_total(),
            telemetry.events_merged() + telemetry.dropped_total());

  const std::string json = telemetry.to_json(tracer);
  EXPECT_EQ(json, telemetry.to_json(tracer));  // deterministic merge
  const obs::JsonValue trace = obs::json_parse(json);
  expect_monotone_tracks(trace);

  // One process per worker incarnation, including the respawn of rank 1.
  const std::vector<std::string> procs = process_names(trace);
  std::size_t rank1_incarnations = 0;
  bool coordinator_process = false;
  for (const std::string& p : procs) {
    if (p.rfind("worker 1 (pid ", 0) == 0) ++rank1_incarnations;
    if (p == "fleet") coordinator_process = true;
  }
  EXPECT_GE(rank1_incarnations, 2u) << json.substr(0, 2000);
  EXPECT_TRUE(coordinator_process);

  // Dispatch spans with flow tails on the coordinator, flow heads on worker
  // task spans — the parenting arrows of the merged timeline.
  bool flow_start = false, flow_finish = false, dispatch_span = false,
       worker_task_span = false, death_instant = false, respawn_instant = false;
  for (const obs::JsonValue& ev : trace.at("traceEvents").as_array()) {
    const std::string ph = ev.at("ph").as_string();
    const std::string name =
        ev.contains("name") ? ev.at("name").as_string() : "";
    if (ph == "s" && name == "dispatch") flow_start = true;
    if (ph == "f" && name == "dispatch" && ev.at("pid").as_number() >= 1001.0) {
      flow_finish = true;
    }
    if (ph == "X" && name == "dispatch") dispatch_span = true;
    if (ph == "X" && ev.at("pid").as_number() >= 1001.0 &&
        name.find("task") != std::string::npos) {
      worker_task_span = true;
    }
    if (ph == "i" && name == "worker dead") death_instant = true;
    if (ph == "i" && name == "worker respawned") respawn_instant = true;
  }
  EXPECT_TRUE(flow_start);
  EXPECT_TRUE(flow_finish);
  EXPECT_TRUE(dispatch_span);
  EXPECT_TRUE(worker_task_span);
  EXPECT_TRUE(death_instant);
  EXPECT_TRUE(respawn_instant);

  // write_fleet_trace lands the same JSON on disk.
  const std::string trace_path = temp_path("telemetry_e2e_trace.json");
  ASSERT_TRUE(fleet.write_fleet_trace(trace_path));
  EXPECT_EQ(read_file(trace_path), json);

  // The live-introspection section: per-worker health, clock and counters.
  obs::JsonValue status = obs::JsonValue::make_object();
  fleet.status_json(status);
  EXPECT_EQ(status.at("workers").as_number(), 2.0);
  EXPECT_TRUE(status.at("telemetry").as_bool());
  EXPECT_TRUE(status.at("quiesced").as_bool());
  const auto& per_worker = status.at("per_worker").as_array();
  ASSERT_EQ(per_worker.size(), 2u);
  for (const obs::JsonValue& w : per_worker) {
    EXPECT_TRUE(w.at("clock_synced").as_bool());
    EXPECT_EQ(w.at("outstanding").as_number(), 0.0);
    EXPECT_TRUE(w.contains("clock_offset_us"));
    EXPECT_TRUE(w.contains("clock_rtt_us"));
  }
  EXPECT_GE(status.at("stats").at("worker_deaths").as_number(), 1.0);
  EXPECT_GE(status.at("trace").at("incarnations").as_number(), 3.0);

  // Per-worker transport stats + worker snapshots land as registry gauges.
  if (obs::kMetricsEnabled) {
    fleet.publish_metrics();
    const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
    bool net_gauge = false, worker_gauge = false;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "fleet/w0/net/messages_sent") net_gauge = value > 0.0;
      if (name.rfind("fleet/w", 0) == 0 &&
          name.find("/worker/worker/tasks") != std::string::npos) {
        worker_gauge = worker_gauge || value > 0.0;
      }
    }
    EXPECT_TRUE(net_gauge);
    EXPECT_TRUE(worker_gauge);
  }

  std::remove(trace_path.c_str());
  std::remove(cfg.context_path.c_str());
  tracer.reset_for_testing();
  tracer.set_enabled(false);
}

}  // namespace
}  // namespace tme::par
