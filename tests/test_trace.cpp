// Tests for the span tracer (obs/trace), the simulated-hardware trace
// feeders (hw/track_meta, hw::trace_step), per-link telemetry
// (hw/link_stats) including its conservation invariant against the traffic
// log, the per-run manifest, and the structured JSONL log sink.
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ewald/splitting.hpp"
#include "hw/event_sim.hpp"
#include "hw/link_stats.hpp"
#include "hw/machine.hpp"
#include "hw/track_meta.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "par/par_tme.hpp"
#include "par/traffic.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tme::obs {
namespace {

// Every test drives the global tracer (that is what the macros and feeders
// target), so each starts from a clean, enabled slate and disables tracing
// again on exit so other suites in the binary are unaffected.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (!kTraceEnabled) GTEST_SKIP() << "tracing compiled out";
    Tracer::global().reset_for_testing();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().reset_for_testing();
  }
};

// Walks the exported JSON and checks trace-event invariants: every event
// carries ph/pid/tid, complete events carry ts+dur, and timestamps are
// monotone per (pid, tid) track in export order.
void check_trace_json(const std::string& json) {
  const JsonValue root = json_parse(json);  // throws on malformed JSON
  const auto& obj = root.as_object();
  ASSERT_TRUE(obj.count("traceEvents"));
  ASSERT_TRUE(obj.count("otherData"));
  std::map<std::pair<double, double>, double> last_ts;
  for (const JsonValue& e : obj.at("traceEvents").as_array()) {
    const auto& ev = e.as_object();
    ASSERT_TRUE(ev.count("ph"));
    ASSERT_TRUE(ev.count("pid"));
    ASSERT_TRUE(ev.count("tid"));
    const std::string ph = ev.at("ph").as_string();
    if (ph == "M") continue;
    ASSERT_TRUE(ev.count("ts"));
    ASSERT_TRUE(ev.count("name"));
    if (ph == "X") ASSERT_TRUE(ev.count("dur"));
    const std::pair<double, double> track{ev.at("pid").as_number(),
                                          ev.at("tid").as_number()};
    const double ts = ev.at("ts").as_number();
    if (last_ts.count(track)) EXPECT_GE(ts, last_ts[track]);
    last_ts[track] = ts;
  }
}

// All process_name metadata values in the export.
std::set<std::string> process_names(const std::string& json) {
  std::set<std::string> names;
  const JsonValue root = json_parse(json);
  for (const JsonValue& e : root.as_object().at("traceEvents").as_array()) {
    const auto& ev = e.as_object();
    if (ev.at("ph").as_string() == "M" &&
        ev.at("name").as_string() == "process_name") {
      names.insert(ev.at("args").as_object().at("name").as_string());
    }
  }
  return names;
}

std::size_t count_ph(const std::string& json, const std::string& ph) {
  std::size_t n = 0;
  const JsonValue root = json_parse(json);
  for (const JsonValue& e : root.as_object().at("traceEvents").as_array()) {
    if (e.as_object().at("ph").as_string() == ph) ++n;
  }
  return n;
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::global().set_enabled(false);
  TME_TRACE_INSTANT("ignored");
  { TME_TRACE_SPAN("also ignored"); }
  Tracer::global().complete(0, "direct call", 0.0, 1.0);
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(TraceTest, SpanDisabledAtConstructionIsNotHalfCaptured) {
  Tracer::global().set_enabled(false);
  {
    TraceSpan span("opened while disabled");
    // Enabling mid-span must not record it: it was not captured at open.
    Tracer::global().set_enabled(true);
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(TraceTest, MacrosRecordSpansAndInstants) {
  {
    TME_TRACE_SPAN("outer");
    TME_TRACE_INSTANT("marker");
    TME_TRACE_INSTANT_D("detailed", "extra context");
  }
  EXPECT_EQ(Tracer::global().event_count(), 3u);
  const std::string json = Tracer::global().to_json();
  check_trace_json(json);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("extra context"), std::string::npos);
  EXPECT_TRUE(process_names(json).count("software"));
}

TEST_F(TraceTest, ThreadPoolStressNoDropsBelowCapacityAndMonotoneTracks) {
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kSpansPerTask = 50;
  ThreadPool pool(3);
  parallel_for(pool, 0, kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kSpansPerTask; ++i) {
      TME_TRACE_SPAN("stress");
      TME_TRACE_INSTANT("tick");
    }
  });
  // 2 events per iteration, well below the default 65536/thread capacity.
  EXPECT_EQ(Tracer::global().event_count(), kTasks * kSpansPerTask * 2);
  EXPECT_EQ(Tracer::global().dropped_count(), 0u);
  check_trace_json(Tracer::global().to_json());
}

TEST_F(TraceTest, FullRingCountsDropsInsteadOfGrowing) {
  Tracer::global().reset_for_testing();
  Tracer::global().set_buffer_capacity(16);
  Tracer::global().set_enabled(true);
  for (int i = 0; i < 100; ++i) TME_TRACE_INSTANT("burst");
  EXPECT_EQ(Tracer::global().event_count(), 16u);
  EXPECT_EQ(Tracer::global().dropped_count(), 84u);
  // The export stays valid and reports the drop count.
  const std::string json = Tracer::global().to_json();
  check_trace_json(json);
  const JsonValue root = json_parse(json);
  EXPECT_EQ(root.as_object()
                .at("otherData")
                .as_object()
                .at("trace_dropped")
                .as_number(),
            84.0);
  Tracer::global().set_buffer_capacity(65536);
}

TEST_F(TraceTest, WriteProducesParseableFile) {
  TME_TRACE_INSTANT("file marker");
  const std::string path = ::testing::TempDir() + "trace_test_out.json";
  ASSERT_TRUE(Tracer::global().write(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  check_trace_json(buf.str());
  std::remove(path.c_str());
}

TEST_F(TraceTest, ExplicitTracksKeepSimTimestamps) {
  Tracer& tracer = Tracer::global();
  const TrackId gcu = tracer.track("machine", "GCU");
  const TrackId lru = tracer.track("machine", "LRU");
  EXPECT_NE(gcu, lru);
  EXPECT_EQ(tracer.track("machine", "GCU"), gcu);  // lookup, not duplicate
  tracer.complete(gcu, "convolution", 10.0, 5.0);
  tracer.counter(lru, "occupancy", 12.0, 0.5);
  const std::string json = tracer.to_json();
  check_trace_json(json);
  EXPECT_TRUE(process_names(json).count("machine"));
  EXPECT_EQ(count_ph(json, "C"), 1u);
}

}  // namespace
}  // namespace tme::obs

namespace tme::hw {
namespace {

using obs::Tracer;

class HwTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (!obs::kTraceEnabled) GTEST_SKIP() << "tracing compiled out";
    Tracer::global().reset_for_testing();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().reset_for_testing();
  }
};

TEST(TrackMeta, LaneLabelsCoverEveryScheduleLane) {
  // Labels drive the timechart legend and the trace rows: every lane the
  // event simulator emits must resolve to a descriptive label.
  for (const char* lane : {"GP", "PP", "NW", "LRU", "GCU", "TMENW"}) {
    EXPECT_NE(lane_label(lane), lane) << lane;
    EXPECT_FALSE(lane_label(lane).empty());
  }
  // Unknown lanes fall back to the key itself.
  EXPECT_EQ(lane_label("XYZ"), "XYZ");
}

TEST_F(HwTraceTest, TraceScheduleReplaysTasksOntoLaneTracks) {
  std::vector<ScheduledTask> schedule;
  schedule.push_back({{"integrate", "GP", 2e-6, {}, -1, 0, 0.0}, 0.0, 2e-6, 1, true});
  schedule.push_back({{"halo", "NW", 1e-6, {}, -1, 0, 0.0}, 0.0, 1e-6, 3, true});
  schedule.push_back({{"doomed", "NW", 1e-6, {}, -1, 0, 0.0}, 1e-6, 2e-6, 4, false});
  trace_schedule(schedule, "sim test");
  const std::string json = Tracer::global().to_json();
  obs::check_trace_json(json);
  EXPECT_TRUE(obs::process_names(json).count("sim test"));
  // 3 spans + retry instants (2 + 3 extra attempts) + one gave-up marker.
  EXPECT_EQ(obs::count_ph(json, "X"), 3u);
  EXPECT_EQ(obs::count_ph(json, "i"), 6u);
}

TEST_F(HwTraceTest, TraceStepEmitsNodeTracksFftStagesAndLinkCounters) {
  MachineParams mp;
  mp.nodes_x = mp.nodes_y = mp.nodes_z = 2;
  const MdgrapeMachine machine(mp);
  StepConfig config;
  config.dead_node_count = 1;
  const StepTimings timings = machine.simulate_step(config);
  ASSERT_NE(timings.links, nullptr);
  trace_step(timings, machine.params());

  const std::string json = Tracer::global().to_json();
  obs::check_trace_json(json);
  const std::set<std::string> procs = obs::process_names(json);
  EXPECT_TRUE(procs.count("machine step 1") == 1 ||
              procs.count("machine step 2") == 1)
      << "schedule tracks missing";
  bool node_proc = false;
  for (const std::string& p : procs) {
    if (p.rfind("torus nodes", 0) == 0) node_proc = true;
  }
  EXPECT_TRUE(node_proc);
  EXPECT_TRUE(procs.count("torus links"));
  EXPECT_GT(obs::count_ph(json, "C"), 0u);       // per-link counters
  EXPECT_NE(json.find("fft forward"), std::string::npos);
  EXPECT_NE(json.find("\"dead\""), std::string::npos);  // killed-node marker
}

TEST(LinkTelemetry, RecordTransferChargesEveryHopOnTheRoute) {
  const TorusTopology topo(4, 1, 1);
  LinkTelemetry links(topo);
  // 0 -> 2 is two +x hops: both links on the path get the bytes, the final
  // hop gets the CRC retries.
  links.record_transfer(0, 2, 100, 3);
  EXPECT_EQ(links.total_bytes(), 200u);
  EXPECT_EQ(links.total_messages(), 2u);
  EXPECT_EQ(links.total_crc_retries(), 3u);
  EXPECT_EQ(links.link(links.link_index(0, 0)).bytes, 100u);
  EXPECT_EQ(links.link(links.link_index(1, 0)).bytes, 100u);
  EXPECT_EQ(links.link(links.link_index(0, 0)).crc_retries, 0u);
  EXPECT_EQ(links.link(links.link_index(1, 0)).crc_retries, 3u);
  // Self transfers are node-local: no link traffic.
  links.record_transfer(2, 2, 999);
  EXPECT_EQ(links.total_bytes(), 200u);
}

TEST(LinkTelemetry, ReportJsonListsBusyLinksAndUtilization) {
  const TorusTopology topo(2, 2, 2);
  LinkTelemetry links(topo);
  links.record_transfer(0, 1, 4096);
  const NetworkParams nw;
  const obs::JsonValue report = links.report_json(nw, 1e-6);
  const auto& obj = report.as_object();
  EXPECT_EQ(obj.at("total_bytes").as_number(), 4096.0);
  const auto& busy = obj.at("links").as_object();  // keyed by link name
  ASSERT_EQ(busy.size(), 1u);                      // only non-idle links
  EXPECT_EQ(busy.begin()->first, "(0,0,0)+x");
  const auto& entry = busy.begin()->second.as_object();
  EXPECT_EQ(entry.at("bytes").as_number(), 4096.0);
  EXPECT_GT(entry.at("utilization").as_number(), 0.0);
  EXPECT_EQ(obj.at("busiest_link").as_string(), "(0,0,0)+x");
}

}  // namespace
}  // namespace tme::hw

namespace tme::par {
namespace {

TmeParams trace_test_params() {
  TmeParams tp;
  tp.alpha = alpha_from_tolerance(0.8, 1e-4);
  tp.grid = {32, 32, 32};
  tp.levels = 1;
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  return tp;
}

struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem random_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

// The conservation invariant tying the two accounting layers together: the
// traffic log accumulates words x hops per message, the link telemetry
// charges 4-byte words to every link on each message's dimension-ordered
// route — on a healthy machine (routes == shortest paths) the totals must
// agree exactly.
TEST(LinkTelemetryConservation, HealthyMachineLinkBytesMatchWordHops) {
  const TorusTopology topo(2, 2, 2);
  const TestSystem sys = random_system(120, 6.4, 31);
  ParallelTme ptme(sys.box, trace_test_params(), topo);
  hw::LinkTelemetry links(topo);
  ptme.set_link_telemetry(&links);
  TrafficLog log;
  (void)ptme.compute(sys.positions, sys.charges, &log);
  EXPECT_GT(log.total_word_hops(), 0u);
  EXPECT_EQ(links.total_bytes(), 4 * log.total_word_hops());
  EXPECT_EQ(links.total_crc_retries(), 0u);
}

TEST(LinkTelemetryConservation, LinkErrorsAddRetriesAndStayConserved) {
  const TorusTopology topo(2, 2, 2);
  const TestSystem sys = random_system(120, 6.4, 31);
  hw::FaultConfig cfg;
  cfg.seed = 5;
  cfg.link_error_rate = 1e-2;
  hw::FaultInjector faults(cfg);

  ParallelTme ptme(sys.box, trace_test_params(), topo);
  ptme.set_fault_injector(&faults);  // stochastic only: no structural faults
  hw::LinkTelemetry links(topo);
  ptme.set_link_telemetry(&links);
  TrafficLog log;
  (void)ptme.compute(sys.positions, sys.charges, &log);
  // Retransmitted words are logged with the same hop count they were
  // charged with, so the invariant includes the retry traffic.
  EXPECT_GT(links.total_crc_retries(), 0u);
  EXPECT_GT(log.words_in("fault retransmission"), 0u);
  EXPECT_EQ(links.total_bytes(), 4 * log.total_word_hops());
}

}  // namespace
}  // namespace tme::par

namespace tme::obs {
namespace {

TEST(Manifest, CarriesBuildFactsAndRuntimeEntries) {
  manifest_set("test_runtime_key", 42.0);
  manifest_set("test_runtime_name", std::string("value"));
  const JsonValue m = manifest_json();
  const auto& obj = m.as_object();
  EXPECT_TRUE(obj.count("git_describe"));
  EXPECT_TRUE(obj.count("build_type"));
  EXPECT_TRUE(obj.count("env"));
  const auto& runtime = obj.at("runtime").as_object();
  EXPECT_EQ(runtime.at("test_runtime_key").as_number(), 42.0);
  EXPECT_EQ(runtime.at("test_runtime_name").as_string(), "value");
}

TEST(StructuredLog, JsonlSinkWritesOneObjectPerLine) {
  const std::string path = ::testing::TempDir() + "trace_test_log.jsonl";
  std::remove(path.c_str());
  tme::set_log_json_path(path);
  tme::log_structured(tme::LogLevel::kWarn, "test_event",
                      {{"node", "3"}, {"detail", "quoted \"text\""}});
  tme::log_warn("plain message");
  tme::set_log_json_path("");  // close so the file is flushed and released

  std::ifstream in(path);
  std::string line;
  std::vector<JsonValue> lines;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(json_parse(line));
  }
  ASSERT_EQ(lines.size(), 2u);
  const auto& first = lines[0].as_object();
  EXPECT_EQ(first.at("event").as_string(), "test_event");
  EXPECT_EQ(first.at("level").as_string(), "warn");
  EXPECT_EQ(first.at("node").as_string(), "3");
  EXPECT_EQ(first.at("detail").as_string(), "quoted \"text\"");
  EXPECT_TRUE(first.count("ts_us"));
  EXPECT_TRUE(first.count("tid"));
  const auto& second = lines[1].as_object();
  EXPECT_EQ(second.at("msg").as_string(), "plain message");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tme::obs
