// Chaos harness tests: spec round-trips, the oracle-checked runner under a
// composed multi-surface schedule, graceful SIGTERM drain/resume, and the
// acceptance contract of the shrinker — a lethal schedule reduces to a
// minimal reproducer whose replay re-triggers the same oracle failure
// deterministically.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"
#include "chaos/shrink.hpp"
#include "util/io_shim.hpp"

#ifndef TME_WORKER_BIN
#define TME_WORKER_BIN ""
#endif

namespace tme::chaos {
namespace {

// --- schedule spec -----------------------------------------------------------

TEST(ChaosSpec, SurfaceNamesRoundTrip) {
  const Surface all[] = {Surface::kNode,   Surface::kLink,  Surface::kSdc,
                         Surface::kPacket, Surface::kWorker, Surface::kBitrot,
                         Surface::kIo,     Surface::kAlloc, Surface::kSigterm,
                         Surface::kSabotage};
  for (const Surface s : all) {
    Surface back;
    ASSERT_TRUE(surface_from_string(to_string(s), &back)) << to_string(s);
    EXPECT_EQ(back, s);
  }
  Surface out;
  EXPECT_FALSE(surface_from_string("plasma", &out));
}

TEST(ChaosSpec, JsonRoundTripPreservesEveryField) {
  ChaosSpec spec;
  spec.seed = 77;
  spec.steps = 12;
  spec.atoms = 128;
  spec.workers = 3;
  spec.backend = "proc";
  spec.checkpoint_interval = 3;
  spec.checkpoint_keep = 4;
  spec.timeout_ms = 1234;
  spec.step_deadline_ms = 9999;
  ChaosEvent e;
  e.step = 2;
  e.surface = Surface::kPacket;
  e.rate = 0.125;
  e.rate2 = 0.0625;
  e.a = 5;
  e.b = 6;
  e.until_step = 4;
  e.detail = "note";
  spec.events.push_back(e);

  const ChaosSpec back = parse_spec(dump_spec(spec));
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.steps, spec.steps);
  EXPECT_EQ(back.atoms, spec.atoms);
  EXPECT_EQ(back.workers, spec.workers);
  EXPECT_EQ(back.backend, spec.backend);
  EXPECT_EQ(back.checkpoint_interval, spec.checkpoint_interval);
  EXPECT_EQ(back.checkpoint_keep, spec.checkpoint_keep);
  EXPECT_EQ(back.timeout_ms, spec.timeout_ms);
  EXPECT_EQ(back.step_deadline_ms, spec.step_deadline_ms);
  ASSERT_EQ(back.events.size(), 1u);
  EXPECT_EQ(back.events[0].step, e.step);
  EXPECT_EQ(back.events[0].surface, e.surface);
  EXPECT_EQ(back.events[0].rate, e.rate);
  EXPECT_EQ(back.events[0].rate2, e.rate2);
  EXPECT_EQ(back.events[0].a, e.a);
  EXPECT_EQ(back.events[0].b, e.b);
  EXPECT_EQ(back.events[0].until_step, e.until_step);
  EXPECT_EQ(back.events[0].detail, e.detail);
}

TEST(ChaosSpec, UnknownSurfaceInJsonThrows) {
  EXPECT_THROW(parse_spec("{\"events\":[{\"step\":0,\"surface\":\"gamma\"}]}"),
               std::runtime_error);
}

TEST(ChaosSpec, RandomSpecIsDeterministicInTheSeed) {
  const std::vector<Surface> surfaces = {Surface::kNode, Surface::kPacket,
                                         Surface::kIo, Surface::kWorker};
  const ChaosSpec a = random_spec(42, 8, surfaces);
  const ChaosSpec b = random_spec(42, 8, surfaces);
  const ChaosSpec c = random_spec(43, 8, surfaces);
  EXPECT_EQ(dump_spec(a), dump_spec(b));
  EXPECT_NE(dump_spec(a), dump_spec(c));
  EXPECT_EQ(a.events.size(), surfaces.size());
  for (const ChaosEvent& e : a.events) EXPECT_LT(e.step, a.steps);
}

TEST(ChaosSpec, EnvOverridesApplyOnTopOfBase) {
  setenv("TME_CHAOS_SEED", "99", 1);
  setenv("TME_CHAOS_STEPS", "5", 1);
  setenv("TME_CHAOS_WORKERS", "3", 1);
  setenv("TME_CHAOS_BACKEND", "proc", 1);
  setenv("TME_CHAOS_SURFACES", "packet,io", 1);
  const ChaosSpec spec = spec_from_env();
  unsetenv("TME_CHAOS_SEED");
  unsetenv("TME_CHAOS_STEPS");
  unsetenv("TME_CHAOS_WORKERS");
  unsetenv("TME_CHAOS_BACKEND");
  unsetenv("TME_CHAOS_SURFACES");
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.steps, 5u);
  EXPECT_EQ(spec.workers, 3u);
  EXPECT_EQ(spec.backend, "proc");
  EXPECT_EQ(spec.events.size(), 2u);
}

// --- the runner --------------------------------------------------------------

RunnerOptions test_options() {
  RunnerOptions opts;
  opts.workdir = ::testing::TempDir();
  opts.worker_bin = TME_WORKER_BIN;
  return opts;
}

// The acceptance run: a seeded schedule composing five distinct fault
// surfaces survives with every oracle green.
TEST(ChaosRunner, ComposedMultiSurfaceScheduleStaysGreen) {
  ChaosSpec spec;
  spec.seed = 2021;
  spec.steps = 6;
  spec.timeout_ms = 400;  // dropped frames retransmit fast (tasks run in ms)
  spec.events.push_back({0, Surface::kWorker, 0, 0, 0, -1, 0, "kill"});
  spec.events.push_back({1, Surface::kNode, 0, 0, 1, -1, 0, ""});
  spec.events.push_back({2, Surface::kPacket, 0.08, 0.05, -1, -1, 4, ""});
  spec.events.push_back({2, Surface::kIo, 0, 0, -1, -1, 4, "fsync"});
  spec.events.push_back({4, Surface::kSdc, 1e-5, 0, -1, -1, 0, ""});

  ChaosRunner runner(spec, test_options());
  const ChaosRunResult result = runner.run();
  EXPECT_TRUE(result.ok) << failure_signature(result) << ": "
                         << result.failure_detail;
  EXPECT_EQ(result.steps_completed, spec.steps);
  EXPECT_GE(result.worker_deaths, 1u);
  EXPECT_GE(result.respawns, 1u);
  EXPECT_GE(result.frames_dropped + result.frames_corrupted, 1u);
  EXPECT_GE(result.checkpoint_write_failures, 1u);  // fsync window hit a write
  EXPECT_GE(result.sdc_injected, 0u);
  EXPECT_FALSE(result.log.empty());
  EXPECT_FALSE(io::IoShim::instance().armed());  // runner cleaned up
}

TEST(ChaosRunner, SigtermDrainResumesBitwiseFromItsCheckpoint) {
  ChaosSpec spec;
  spec.seed = 7;
  spec.steps = 5;
  spec.events.push_back({2, Surface::kSigterm, 0, 0, -1, -1, 0, ""});

  ChaosRunner runner(spec, test_options());
  const ChaosRunResult result = runner.run();
  ASSERT_TRUE(result.ok) << failure_signature(result) << ": "
                         << result.failure_detail;
  // One mid-run drain + the end-of-run quiesce.
  EXPECT_GE(result.quiesces, 2u);
  bool saw_resume = false;
  for (const RealizedEvent& e : result.log) {
    saw_resume = saw_resume || e.what.find("resumed bitwise") == 0;
  }
  EXPECT_TRUE(saw_resume);
}

TEST(ChaosRunner, BitrotOnNewestGenerationFallsBackAndStaysGreen) {
  ChaosSpec spec;
  spec.seed = 13;
  spec.steps = 5;
  spec.checkpoint_interval = 2;
  // Damage the newest generation after the last rotating write (writes land
  // at the end of steps 1 and 3), so the end-of-run restore must fall back.
  spec.events.push_back({4, Surface::kBitrot, 0, 0, 40, -1, 0, ""});

  ChaosRunner runner(spec, test_options());
  const ChaosRunResult result = runner.run();
  ASSERT_TRUE(result.ok) << failure_signature(result) << ": "
                         << result.failure_detail;
  EXPECT_GE(result.checkpoint_fallbacks, 1u);
}

TEST(ChaosRunner, ReplayFileRoundTripsTheSpec) {
  ChaosSpec spec = random_spec(5, 6, {Surface::kPacket, Surface::kIo});
  ChaosRunResult result;
  result.ok = false;
  result.failed_oracle = "force-parity";
  result.failed_step = 3;
  result.log.push_back({1, "packet", "window open"});
  const std::string path = ::testing::TempDir() + "chaos_replay.json";
  write_replay_file(path, spec, result);
  const ChaosSpec back = read_replay_spec(path);
  EXPECT_EQ(dump_spec(back), dump_spec(spec));
  std::remove(path.c_str());
}

// --- the shrinker ------------------------------------------------------------

TEST(ChaosShrink, SurvivableScheduleHasNothingToShrink) {
  ChaosSpec spec;
  spec.seed = 3;
  spec.steps = 4;
  spec.events.push_back({1, Surface::kWorker, 0, 0, 0, -1, 0, "kill"});
  const ShrinkResult shrunk = shrink_schedule(spec, test_options());
  EXPECT_TRUE(shrunk.signature.empty());
  EXPECT_TRUE(shrunk.last_run.ok);
  EXPECT_EQ(shrunk.runs, 1);
}

// The acceptance contract: an intentionally lethal schedule (an
// undetectable force corruption buried in survivable noise) shrinks to a
// minimal reproducer whose replay re-triggers the same oracle failure
// deterministically.
TEST(ChaosShrink, LethalScheduleShrinksToDeterministicMinimalReproducer) {
  ChaosSpec spec;
  spec.seed = 21;
  spec.steps = 6;
  spec.timeout_ms = 400;
  // Survivable noise...
  spec.events.push_back({0, Surface::kWorker, 0, 0, 1, -1, 0, "kill"});
  spec.events.push_back({1, Surface::kPacket, 0.05, 0.05, -1, -1, 3, ""});
  spec.events.push_back({2, Surface::kIo, 0, 0, -1, -1, 4, "enospc"});
  spec.events.push_back({4, Surface::kNode, 0, 0, 2, -1, 0, ""});
  // ...hiding the one lethal event.
  spec.events.push_back({3, Surface::kSabotage, 0, 0, 9, -1, 0, ""});

  const RunnerOptions opts = test_options();
  const ShrinkResult shrunk = shrink_schedule(spec, opts);
  EXPECT_EQ(shrunk.signature, "force-parity@3");
  EXPECT_EQ(shrunk.events_before, 5u);
  ASSERT_EQ(shrunk.events_after, 1u);  // exactly the sabotage survives
  EXPECT_EQ(shrunk.spec.events[0].surface, Surface::kSabotage);
  EXPECT_LE(shrunk.spec.steps, spec.steps);

  // Replay file round-trip, then two independent replays: the minimal
  // reproducer must fail identically every time.
  const std::string path = ::testing::TempDir() + "chaos_repro.json";
  write_replay_file(path, shrunk.spec, shrunk.last_run);
  const ChaosSpec replay = read_replay_spec(path);
  for (int i = 0; i < 2; ++i) {
    ChaosRunner again(replay, opts);
    const ChaosRunResult rerun = again.run();
    EXPECT_FALSE(rerun.ok);
    EXPECT_EQ(failure_signature(rerun), shrunk.signature);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tme::chaos
