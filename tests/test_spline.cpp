#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "quadrature/gauss_legendre.hpp"
#include "spline/bspline.hpp"
#include "spline/interpolation_coeffs.hpp"
#include "spline/two_scale.hpp"

namespace tme {
namespace {

std::size_t Gridless_wrap(long i, std::size_t n) {
  long r = i % static_cast<long>(n);
  if (r < 0) r += static_cast<long>(n);
  return static_cast<std::size_t>(r);
}

TEST(BSpline, Order2IsHatFunction) {
  EXPECT_NEAR(bspline(2, 0.5), 0.5, 1e-15);
  EXPECT_NEAR(bspline(2, 1.0), 1.0, 1e-15);
  EXPECT_NEAR(bspline(2, 1.5), 0.5, 1e-15);
  EXPECT_EQ(bspline(2, -0.1), 0.0);
  EXPECT_EQ(bspline(2, 2.1), 0.0);
}

TEST(BSpline, Order4MatchesClosedFormOnFirstInterval) {
  // M_4(u) = u^3/6 on [0,1].
  for (const double u : {0.1, 0.4, 0.7, 0.999}) {
    EXPECT_NEAR(bspline(4, u), u * u * u / 6.0, 1e-14);
  }
}

TEST(BSpline, Order6ValueAtCentre) {
  // M_6(3) = 11/20 (central value of the quintic B-spline).
  EXPECT_NEAR(bspline(6, 3.0), 11.0 / 20.0, 1e-14);
}

TEST(BSpline, IntegerSamplesOrder6) {
  // M_6 at integers 1..5: 1/120, 26/120, 66/120, 26/120, 1/120.
  EXPECT_NEAR(bspline(6, 1.0), 1.0 / 120.0, 1e-14);
  EXPECT_NEAR(bspline(6, 2.0), 26.0 / 120.0, 1e-14);
  EXPECT_NEAR(bspline(6, 3.0), 66.0 / 120.0, 1e-14);
  EXPECT_NEAR(bspline(6, 4.0), 26.0 / 120.0, 1e-14);
  EXPECT_NEAR(bspline(6, 5.0), 1.0 / 120.0, 1e-14);
}

class BSplineOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(BSplineOrderSweep, PartitionOfUnity) {
  const int p = GetParam();
  for (const double x : {0.0, 0.123, 0.5, 0.987, 3.21}) {
    double sum = 0.0;
    for (int m = -2 * p; m <= 2 * p; ++m) sum += bspline(p, x - m + p * 0.5 + 4);
    // Equivalent: sum over integer shifts covering the support.
    sum = 0.0;
    for (int m = -3 * p; m <= 3 * p; ++m) sum += bspline(p, x - m);
    EXPECT_NEAR(sum, 1.0, 1e-13) << "p=" << p << " x=" << x;
  }
}

TEST_P(BSplineOrderSweep, NonNegativeAndSymmetric) {
  const int p = GetParam();
  for (double u = -1.0; u <= p + 1.0; u += 0.0625) {
    const double v = bspline(p, u);
    EXPECT_GE(v, 0.0);
    EXPECT_NEAR(v, bspline(p, p - u), 1e-14);  // symmetry about p/2
  }
}

TEST_P(BSplineOrderSweep, IntegratesToOne) {
  // Integrate knot interval by knot interval: on [k, k+1] the spline is a
  // polynomial of degree p-1, so a modest Gauss rule is exact.
  const int p = GetParam();
  double integral = 0.0;
  for (int k = 0; k < p; ++k) {
    integral += integrate_gl([p](double u) { return bspline(p, u); },
                             static_cast<double>(k), static_cast<double>(k + 1), 12);
  }
  EXPECT_NEAR(integral, 1.0, 1e-13);
}

TEST_P(BSplineOrderSweep, DerivativeMatchesFiniteDifference) {
  const int p = GetParam();
  const double eps = 1e-6;
  for (double u = 0.3; u < p - 0.2; u += 0.517) {
    const double fd = (bspline(p, u + eps) - bspline(p, u - eps)) / (2.0 * eps);
    EXPECT_NEAR(bspline_derivative(p, u), fd, 1e-7) << "p=" << p << " u=" << u;
  }
}

TEST_P(BSplineOrderSweep, WeightsMatchPointEvaluations) {
  const int p = GetParam();
  std::vector<double> w(static_cast<std::size_t>(p)), d(w);
  // Avoid exact integers: the one-sided derivative of the p = 2 hat
  // function is ambiguous at the knots.
  for (const double u : {0.0625, 0.25, 7.9, 123.456}) {
    const long m0 = bspline_weights(p, u, w, d);
    for (int k = 0; k < p; ++k) {
      const double arg = u - static_cast<double>(m0 + k);
      EXPECT_NEAR(w[static_cast<std::size_t>(k)], bspline(p, arg), 1e-13);
      EXPECT_NEAR(d[static_cast<std::size_t>(k)], bspline_derivative(p, arg), 1e-13);
    }
    // The weights are a complete partition: they sum to 1.
    EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-13);
    // Derivatives of a partition of unity sum to 0.
    EXPECT_NEAR(std::accumulate(d.begin(), d.end(), 0.0), 0.0, 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BSplineOrderSweep, ::testing::Values(2, 4, 6, 8, 10));

TEST(BSplineCentral, SupportAndPeak) {
  EXPECT_EQ(bspline_central(6, -3.0), 0.0);
  EXPECT_EQ(bspline_central(6, 3.0), 0.0);
  EXPECT_NEAR(bspline_central(6, 0.0), 11.0 / 20.0, 1e-14);
  EXPECT_NEAR(bspline_central_at_integer(6, 1), 26.0 / 120.0, 1e-14);
  EXPECT_EQ(bspline_central_at_integer(6, 3), 0.0);
}

class TwoScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(TwoScaleSweep, CoefficientsSumToTwo) {
  const int p = GetParam();
  const std::vector<double> j = two_scale_coefficients(p);
  EXPECT_EQ(j.size(), static_cast<std::size_t>(p + 1));
  EXPECT_NEAR(std::accumulate(j.begin(), j.end(), 0.0), 2.0, 1e-14);
}

TEST_P(TwoScaleSweep, RefinementIdentityHolds) {
  // M_p(x) = sum_m J_m M_p(2x - m), paper Sec. III.A.
  const int p = GetParam();
  const int half = p / 2;
  const std::vector<double> j = two_scale_coefficients(p);
  for (double x = -0.5 * p; x <= 0.5 * p; x += 0.0937) {
    double rhs = 0.0;
    for (int m = -half; m <= half; ++m) {
      rhs += j[static_cast<std::size_t>(m + half)] * bspline_central(p, 2.0 * x - m);
    }
    EXPECT_NEAR(rhs, bspline_central(p, x), 1e-13) << "p=" << p << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, TwoScaleSweep, ::testing::Values(2, 4, 6, 8));

TEST(TwoScale, KnownValuesForOrder6) {
  const std::vector<double> j = two_scale_coefficients(6);
  EXPECT_NEAR(j[3], 20.0 / 32.0, 1e-15);  // J_0
  EXPECT_NEAR(j[2], 15.0 / 32.0, 1e-15);  // J_{-1}
  EXPECT_NEAR(j[4], 15.0 / 32.0, 1e-15);  // J_{+1}
  EXPECT_NEAR(j[1], 6.0 / 32.0, 1e-15);
  EXPECT_NEAR(j[0], 1.0 / 32.0, 1e-15);
}

TEST(TwoScale, RejectsOddOrder) {
  EXPECT_THROW(two_scale_coefficients(5), std::invalid_argument);
}

TEST(InterpolationCoeffs, OmegaInvertsBSplineSamples) {
  // (omega * b)_k = delta_k0 in the cyclic algebra, b_m = M_p^c(m).
  for (const int p : {4, 6, 8}) {
    const std::size_t n = 32;
    const std::vector<double> omega = interpolation_coefficients(p, n);
    for (std::size_t k = 0; k < n; ++k) {
      double conv = 0.0;
      for (int m = -p / 2; m <= p / 2; ++m) {
        const std::size_t idx =
            Gridless_wrap(static_cast<long>(k) - m, n);
        conv += bspline_central_at_integer(p, m) * omega[idx];
      }
      EXPECT_NEAR(conv, k == 0 ? 1.0 : 0.0, 1e-12) << "p=" << p << " k=" << k;
    }
  }
}

TEST(InterpolationCoeffs, OmegaPrimeMatchesOmegaConvolvedWithItself) {
  const int p = 6;
  const std::size_t n = 24;
  const std::vector<double> omega = interpolation_coefficients(p, n);
  const std::vector<double> op = omega_prime(p, n);
  for (std::size_t k = 0; k < n; ++k) {
    double conv = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      conv += omega[m] * omega[(k + n - m) % n];
    }
    EXPECT_NEAR(op[k], conv, 1e-12);
  }
}

TEST(InterpolationCoeffs, OmegaPrimeMatchesHardyTableOrder6) {
  // Hardy et al. 2016 Table I lists omega' for p = 6; the leading values are
  // omega'_0 ~ 5.2156, omega'_1 ~ -3.1415 (decaying alternating tail).
  // We check the defining property instead of transcribing the table, plus
  // the qualitative alternating-decay structure.
  const std::vector<double> op = omega_prime(6, 64);
  EXPECT_GT(op[0], 0.0);
  for (int k = 1; k < 8; ++k) {
    // Alternating sign and decaying magnitude.
    EXPECT_LT(op[static_cast<std::size_t>(k)] * op[static_cast<std::size_t>(k - 1)], 0.0);
    EXPECT_LT(std::abs(op[static_cast<std::size_t>(k)]),
              std::abs(op[static_cast<std::size_t>(k - 1)]));
  }
}

// Max error of the B-spline expansion of a Gaussian (paper Eq. 8), measured
// over a sample of point pairs on a periodic grid.
double gaussian_expansion_error(int p, std::size_t n, double alpha) {
  const std::vector<double> g = gaussian_grid_kernel(p, n, alpha);
  double worst = 0.0;
  for (const double x : {3.2, 7.77, 11.03}) {
    for (const double xp : {2.9, 9.5, 12.61}) {
      double approx = 0.0;
      for (long m = 0; m < static_cast<long>(n); ++m) {
        const double mx = bspline_central(p, x - static_cast<double>(m));
        if (mx == 0.0) continue;
        for (long mp = 0; mp < static_cast<long>(n); ++mp) {
          const double mxp = bspline_central(p, xp - static_cast<double>(mp));
          if (mxp == 0.0) continue;
          const std::size_t idx = Gridless_wrap(m - mp, n);
          approx += g[idx] * mx * mxp;
        }
      }
      const double exact = std::exp(-alpha * alpha * (x - xp) * (x - xp));
      worst = std::max(worst, std::abs(approx - exact));
    }
  }
  return worst;
}

TEST(InterpolationCoeffs, GaussianGridKernelReproducesGaussian) {
  // The expansion error is the intrinsic p = 6 interpolation error; it is
  // small and falls rapidly as the Gaussian widens relative to the grid.
  const double err_narrow = gaussian_expansion_error(6, 32, 0.7);
  const double err_wide = gaussian_expansion_error(6, 32, 0.35);
  EXPECT_LT(err_narrow, 5e-3);
  EXPECT_LT(err_wide, 2e-4);
  EXPECT_LT(err_wide, 0.25 * err_narrow);
}

TEST(InterpolationCoeffs, GaussianGridKernelImprovesWithOrder) {
  const double err_p4 = gaussian_expansion_error(4, 32, 0.5);
  const double err_p6 = gaussian_expansion_error(6, 32, 0.5);
  const double err_p8 = gaussian_expansion_error(8, 32, 0.5);
  EXPECT_LT(err_p6, err_p4);
  EXPECT_LT(err_p8, err_p6);
}

}  // namespace
}  // namespace tme
