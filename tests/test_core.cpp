#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/gaussian_fit.hpp"
#include "core/grid_kernel.hpp"
#include "core/tme.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "grid/separable_conv.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem random_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box_length), rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

// Water-like density and charge pattern (one -0.834 per two +0.417) on a
// jittered lattice.  Two properties of real molecular systems matter for
// the Table 1 metric: density (a dilute gas deflates the reference-force
// norm and inflates the relative error) and excluded volume (fully random
// placements produce sub-0.05 nm overlaps no force field ever sees, where
// the kernel-origin error of any mesh method blows up).
TestSystem dense_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  const double min_dist = 0.08;  // ~ an O-H bond: closest approach in water
  const double min_dist2 = min_dist * min_dist;
  sys.positions.reserve(n);
  sys.charges.reserve(n);
  double total = 0.0;
  while (sys.positions.size() < n) {
    const Vec3 candidate{rng.uniform(0.0, box_length), rng.uniform(0.0, box_length),
                         rng.uniform(0.0, box_length)};
    bool ok = true;
    for (const Vec3& existing : sys.positions) {
      if (norm2(sys.box.min_image_disp(candidate, existing)) < min_dist2) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    sys.positions.push_back(candidate);
    const double q = (sys.positions.size() % 3 == 0) ? -0.834 : 0.417;
    sys.charges.push_back(q);
    total += q;
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

// --- Gaussian shell fit (paper Fig. 3) -------------------------------------

TEST(GaussianFit, TermsHavePositiveWeightsInExpectedRange) {
  const auto terms = fit_shell_gaussians(2.0, 4);
  ASSERT_EQ(terms.size(), 4u);
  for (const auto& t : terms) {
    EXPECT_GT(t.c_nu, 0.0);
    // alpha_nu in [alpha/2, alpha] by construction.
    EXPECT_GE(t.alpha_nu, 1.0 - 1e-12);
    EXPECT_LE(t.alpha_nu, 2.0 + 1e-12);
  }
}

TEST(GaussianFit, ApproximationConvergesWithM) {
  // Max deviation of the normalised profile over s in [0, 6] must fall
  // rapidly with M (Fig. 3(b)), below 1e-2 already for M = 1 and below
  // ~1e-6 by M = 4.
  double prev = 1.0;
  for (const std::size_t m : {1u, 2u, 3u, 4u}) {
    double worst = 0.0;
    for (double s = 0.0; s <= 6.0; s += 0.01) {
      worst = std::max(worst,
                       std::abs(shell_profile_gaussian(s, m) - shell_profile_exact(s)));
    }
    EXPECT_LT(worst, prev) << "M=" << m;
    prev = worst;
  }
  EXPECT_LT(prev, 5e-6);  // measured 2.6e-6 at M = 4
}

TEST(GaussianFit, SingleGaussianErrorMatchesFigure3Scale) {
  // Fig. 3(b): the M = 1 error peaks at the ~1e-2..1e-3 level.
  double worst = 0.0;
  for (double s = 0.0; s <= 6.0; s += 0.01) {
    worst = std::max(worst,
                     std::abs(shell_profile_gaussian(s, 1) - shell_profile_exact(s)));
  }
  EXPECT_GT(worst, 1e-4);
  EXPECT_LT(worst, 3e-2);
}

TEST(GaussianFit, LeastSquaresFitIsNoWorseThanQuadrature) {
  for (const std::size_t m : {1u, 2u, 3u, 4u}) {
    auto profile_error = [&](const std::vector<GaussianTerm>& terms) {
      const double g0 = g_shell(0.0, 1.0, 1);
      double worst = 0.0;
      for (double s = 0.0; s <= 6.0; s += 0.01) {
        worst = std::max(worst, std::abs(shell_from_gaussians(terms, s, 1) -
                                         g_shell(s, 1.0, 1)) /
                                    g0);
      }
      return worst;
    };
    const double err_gl = profile_error(fit_shell_gaussians(1.0, m));
    const double err_ls = profile_error(fit_shell_gaussians_least_squares(1.0, m));
    // The LSQ weights minimise the L2 error, so the max error stays within
    // a small factor of the quadrature fit (and typically improves).
    EXPECT_LT(err_ls, 1.5 * err_gl) << "M=" << m;
  }
}

TEST(GaussianFit, LeastSquaresKeepsQuadratureExponents) {
  const auto gl = fit_shell_gaussians(2.0, 3);
  const auto ls = fit_shell_gaussians_least_squares(2.0, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ls[i].alpha_nu, gl[i].alpha_nu);
  }
}

TEST(GridKernel, SharpeningMattersByOrdersOfMagnitude) {
  // Without the omega * omega inverse (Eq. 8) the B-spline smoothing is
  // uncompensated: the pointwise kernel expansion degrades badly.
  const auto terms = fit_shell_gaussians(2.2, 2);
  const GridDims dims{32, 32, 32};
  const Vec3 h{0.31, 0.31, 0.31};
  const auto sharp = build_level_kernels(terms, 6, dims, h, 8, true);
  const auto naive = build_level_kernels(terms, 6, dims, h, 8, false);
  // Centre taps differ: the sharpened kernel overshoots the raw samples to
  // cancel the basis smoothing.
  EXPECT_GT(sharp[0].kx.tap(0), naive[0].kx.tap(0));
  // And the raw samples are strictly positive while sharpened taps ring.
  bool rings = false;
  for (int m = 1; m <= 8; ++m) {
    if (sharp[0].kx.tap(m) < 0.0) rings = true;
    EXPECT_GE(naive[0].kx.tap(m), 0.0);
  }
  EXPECT_TRUE(rings);
}

TEST(GaussianFit, ShellFromGaussiansRespectsLevelScaling) {
  const auto terms = fit_shell_gaussians(1.9, 3);
  for (const double r : {0.2, 0.8, 1.7}) {
    EXPECT_NEAR(shell_from_gaussians(terms, r, 2),
                0.5 * shell_from_gaussians(terms, r / 2.0, 1), 1e-14);
  }
}

TEST(GaussianFit, ApproximatesShellAbsolutely) {
  const double alpha = 2.751064;
  const auto terms = fit_shell_gaussians(alpha, 4);
  for (const double r : {0.0, 0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(shell_from_gaussians(terms, r, 1), g_shell(r, alpha, 1),
                2e-6 * g_shell(0.0, alpha, 1));
  }
}

// --- Grid kernels ----------------------------------------------------------

TEST(GridKernel, TapsAreSymmetric) {
  const auto terms = fit_shell_gaussians(2.751064, 3);
  const auto kernels = build_level_kernels(terms, 6, {32, 32, 32},
                                           {0.2, 0.2, 0.2}, 8);
  ASSERT_EQ(kernels.size(), 3u);
  for (const auto& st : kernels) {
    for (const Kernel1d* k : {&st.kx, &st.ky, &st.kz}) {
      ASSERT_EQ(k->cutoff, 8);
      for (int m = 1; m <= 8; ++m) EXPECT_NEAR(k->tap(m), k->tap(-m), 1e-15);
    }
  }
}

TEST(GridKernel, AnisotropicSpacingGivesAnisotropicTaps) {
  const auto terms = fit_shell_gaussians(2.0, 2);
  const auto kernels =
      build_level_kernels(terms, 6, {32, 32, 32}, {0.2, 0.3, 0.4}, 6);
  // Wider spacing -> narrower kernel in grid units -> faster tap decay.
  EXPECT_GT(kernels[0].kx.tap(4) / kernels[0].kx.tap(0),
            kernels[0].kz.tap(4) / kernels[0].kz.tap(0));
}

TEST(GridKernel, DenseCubeMatchesSeparableConvolution) {
  const auto terms = fit_shell_gaussians(2.4, 2);
  const int gc = 5;
  const auto kernels = build_level_kernels(terms, 6, {16, 16, 16},
                                           {0.25, 0.25, 0.25}, gc);
  const auto cube = dense_kernel_cube(kernels, gc);

  Grid3d q(16, 16, 16);
  Rng rng(3);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);

  Grid3d via_dense(q.dims());
  convolve_dense3d(q, cube, gc, via_dense);
  Grid3d via_separable(q.dims());
  convolve_tensor(q, kernels, 1.0, via_separable);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_NEAR(via_separable[i], via_dense[i], 1e-10);
  }
}

// --- Cost model (paper Sec. III.C) -----------------------------------------

TEST(CostModel, PaperParametersFavourTme) {
  // MDGRAPE-4A: N_x/P_x in {4, 8}, g_c = 8, M = 4 -> TME cheaper on both
  // axes of cost.
  for (const int local : {4, 8}) {
    const CostModelInput in{local, 8, 4};
    const auto msm = msm_level1_cost(in);
    const auto tme_cost = tme_level1_cost(in);
    EXPECT_LT(tme_cost.compute, msm.compute);
    EXPECT_LT(tme_cost.comm, msm.comm);
  }
}

TEST(CostModel, FormulasMatchPaperExpressions) {
  const CostModelInput in{8, 8, 4};
  EXPECT_NEAR(gamma_ratio(in), 1.0, 1e-15);
  EXPECT_NEAR(msm_level1_cost(in).compute, 17.0 * 17.0 * 17.0 * 512.0, 1e-9);
  EXPECT_NEAR(tme_level1_cost(in).compute, 17.0 * 512.0 * 4.0, 1e-9);
  EXPECT_NEAR(msm_level1_cost(in).comm, (8.0 + 12.0 + 6.0) * 512.0, 1e-9);
  EXPECT_NEAR(tme_level1_cost(in).comm, (2.0 + 16.0) * 512.0, 1e-9);
}

TEST(CostModel, LargeMEventuallyCostsMoreCommunication) {
  const CostModelInput small_m{8, 8, 2};
  const CostModelInput large_m{8, 8, 64};
  EXPECT_LT(tme_level1_cost(small_m).comm, tme_level1_cost(large_m).comm);
  EXPECT_GT(tme_level1_cost(large_m).comm, msm_level1_cost(large_m).comm);
}

// --- The TME end to end ----------------------------------------------------

// The paper's operating regime has alpha * h ~ 0.69..0.86 (N = 32^3 over a
// ~10 nm box, erfc(alpha r_c) = 1e-4 with r_c = 1..1.5 nm).  The test system
// scales the box to 6.4 nm with r_c = 0.8 nm, which lands alpha * h at the
// same 0.69 — outside this regime the g_c-truncated kernels legitimately
// lose accuracy (that is Table 1's g_c = 4 column, not a bug).
constexpr double kTestBox = 3.2;
constexpr double kTestRcut = 0.8;
constexpr std::size_t kTestAtoms = 2400;  // ~73 atoms/nm^3, water-like
constexpr std::size_t kTestGrid = 16;     // keeps alpha*h at the paper's 0.686

class TmeAccuracy : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = dense_system(kTestAtoms, kTestBox, 99);
    eparams_.alpha = alpha_from_tolerance(kTestRcut, 1e-4);
    reference_ = ewald_reference(sys_.box, sys_.positions, sys_.charges, eparams_);
  }

  // Total Coulomb force error of a long-range solver + analytic short range.
  double total_force_error(const CoulombResult& lr, double r_cut) const {
    CoulombResult total = lr;
    for (std::size_t i = 0; i < sys_.positions.size(); ++i) {
      for (std::size_t j = i + 1; j < sys_.positions.size(); ++j) {
        const Vec3 d = sys_.box.min_image_disp(sys_.positions[i], sys_.positions[j]);
        const double r2 = norm2(d);
        if (r2 >= r_cut * r_cut) continue;
        const double r = std::sqrt(r2);
        const double qq = constants::kCoulomb * sys_.charges[i] * sys_.charges[j];
        const double fr = -qq * g_short_derivative(r, eparams_.alpha) / r;
        total.forces[i] += fr * d;
        total.forces[j] -= fr * d;
      }
    }
    return total.relative_force_error_against(reference_);
  }

  TestSystem sys_;
  EwaldParams eparams_;
  CoulombResult reference_;
};

TEST_F(TmeAccuracy, MatchesEwaldReference) {
  TmeParams params;
  params.alpha = eparams_.alpha;
  params.grid = {kTestGrid, kTestGrid, kTestGrid};
  params.levels = 1;
  params.grid_cutoff = 8;
  params.num_gaussians = 4;
  const Tme tme(sys_.box, params);
  const CoulombResult lr = tme.compute(sys_.positions, sys_.charges);
  // Paper Table 1 regime (alpha h = 0.686, M = 4, g_c = 8).  The absolute
  // value of the relative-force-error metric is configuration dependent
  // (real water reaches ~1.4e-4; an uncorrelated charge gas sits an order
  // of magnitude higher because it lacks local charge neutrality); parity
  // with SPME is asserted separately in ConvergesToSpmeAccuracy.
  EXPECT_LT(total_force_error(lr, kTestRcut), 5e-3);
}

TEST_F(TmeAccuracy, ConvergesToSpmeAccuracy) {
  // Table 1 behaviour: with g_c = 8 and M >= 3 the TME error is within a
  // few percent of the SPME error at identical (alpha, p, N).
  SpmeParams sp;
  sp.alpha = eparams_.alpha;
  sp.grid = {kTestGrid, kTestGrid, kTestGrid};
  const Spme spme(sys_.box, sp);
  const double spme_err =
      total_force_error(spme.compute(sys_.positions, sys_.charges), kTestRcut);

  TmeParams tp;
  tp.alpha = eparams_.alpha;
  tp.grid = {kTestGrid, kTestGrid, kTestGrid};
  tp.grid_cutoff = 8;
  tp.num_gaussians = 3;
  const Tme tme(sys_.box, tp);
  const double tme_err =
      total_force_error(tme.compute(sys_.positions, sys_.charges), kTestRcut);

  EXPECT_LT(tme_err, 1.5 * spme_err);
}

TEST_F(TmeAccuracy, ErrorDecreasesWithM) {
  double prev = 1.0;
  for (const std::size_t m : {1u, 2u, 4u}) {
    TmeParams tp;
    tp.alpha = eparams_.alpha;
    tp.grid = {kTestGrid, kTestGrid, kTestGrid};
    tp.grid_cutoff = 8;
    tp.num_gaussians = m;
    const Tme tme(sys_.box, tp);
    const double err =
        total_force_error(tme.compute(sys_.positions, sys_.charges), kTestRcut);
    EXPECT_LT(err, prev) << "M=" << m;
    prev = err;
  }
}

TEST(Tme, TwoLevelHierarchyMatchesSpme) {
  // L = 2: compare the long-range forces directly against SPME at identical
  // (alpha, p, N) — the deeper hierarchy must not change the result beyond
  // the kernel approximation error of the extra level.
  const TestSystem sys = dense_system(4000, 12.8, 17);
  const double alpha = alpha_from_tolerance(0.8, 1e-4);  // alpha*h = 0.688
  TmeParams tp;
  tp.alpha = alpha;
  tp.grid = {64, 64, 64};
  tp.levels = 2;
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  const Tme tme(sys.box, tp);
  const CoulombResult lr = tme.compute(sys.positions, sys.charges);

  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = {64, 64, 64};
  const Spme spme(sys.box, sp);
  const CoulombResult lr_spme = spme.compute(sys.positions, sys.charges);

  EXPECT_LT(lr.relative_force_error_against(lr_spme), 2e-2);
  double q2 = 0.0;
  for (const double q : sys.charges) q2 += q * q;
  const double scale = constants::kCoulomb * alpha / std::sqrt(M_PI) * q2;
  EXPECT_NEAR(lr.energy, lr_spme.energy, 5e-3 * scale);
}

TEST_F(TmeAccuracy, EnergyMatchesReference) {
  TmeParams tp;
  tp.alpha = eparams_.alpha;
  tp.grid = {kTestGrid, kTestGrid, kTestGrid};
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  const Tme tme(sys_.box, tp);
  CoulombResult total = tme.compute(sys_.positions, sys_.charges);
  for (std::size_t i = 0; i < sys_.positions.size(); ++i) {
    for (std::size_t j = i + 1; j < sys_.positions.size(); ++j) {
      const Vec3 d = sys_.box.min_image_disp(sys_.positions[i], sys_.positions[j]);
      const double r2 = norm2(d);
      if (r2 >= kTestRcut * kTestRcut) continue;
      total.energy += constants::kCoulomb * sys_.charges[i] * sys_.charges[j] *
                      g_short(std::sqrt(r2), eparams_.alpha);
    }
  }
  // The TME energy carries a systematic offset from the B-spline expansion
  // of the shell Gaussians — the effect behind the Fig. 4 energy offset.
  // In locally neutral systems (water) it largely cancels; in this
  // uncorrelated charge gas it does not, so the natural yardstick is the
  // gross reciprocal energy scale kC alpha/sqrt(pi) sum q^2.
  double q2 = 0.0;
  for (const double q : sys_.charges) q2 += q * q;
  const double scale = constants::kCoulomb * eparams_.alpha / std::sqrt(M_PI) * q2;
  EXPECT_NEAR(total.energy, reference_.energy, 5e-3 * scale);
}

TEST(Tme, ForcesSumToZero) {
  const TestSystem sys = random_system(150, kTestBox, 7);
  TmeParams tp;
  tp.alpha = alpha_from_tolerance(kTestRcut, 1e-4);
  tp.grid = {32, 32, 32};
  const Tme tme(sys.box, tp);
  const CoulombResult r = tme.compute(sys.positions, sys.charges);
  Vec3 total{};
  for (const Vec3& f : r.forces) total += f;
  // Mesh methods conserve momentum only up to interpolation error (this is
  // true of SPME as well); the net force stays a small fraction of the
  // total force magnitude.  Measured ratio: 1.2e-3.
  double magnitude = 0.0;
  for (const Vec3& f : r.forces) magnitude += norm(f);
  EXPECT_LT(norm(total), 5e-3 * magnitude);
}

TEST(Tme, TraceExposesAllLevels) {
  const TestSystem sys = random_system(50, 3.2, 8);
  TmeParams tp;
  tp.alpha = 2.5;
  tp.grid = {32, 32, 32};
  tp.levels = 2;
  const Tme tme(sys.box, tp);
  TmeTrace trace;
  (void)tme.compute(sys.positions, sys.charges, &trace);
  ASSERT_EQ(trace.level_charges.size(), 3u);
  ASSERT_EQ(trace.level_potentials.size(), 3u);
  EXPECT_EQ(trace.level_charges[0].dims().nx, 32u);
  EXPECT_EQ(trace.level_charges[1].dims().nx, 16u);
  EXPECT_EQ(trace.level_charges[2].dims().nx, 8u);
  EXPECT_EQ(trace.level_potentials[0].dims().nx, 32u);
  // Total charge is conserved down the hierarchy.
  EXPECT_NEAR(trace.level_charges[0].sum(), trace.level_charges[2].sum(), 1e-8);
}

TEST(Tme, RejectsInvalidConfigurations) {
  const Box box{{4.0, 4.0, 4.0}};
  TmeParams tp;
  tp.alpha = 2.0;
  tp.grid = {32, 32, 32};
  tp.order = 5;
  EXPECT_THROW(Tme(box, tp), std::invalid_argument);
  tp.order = 6;
  tp.levels = 0;
  EXPECT_THROW(Tme(box, tp), std::invalid_argument);
  tp.levels = 4;  // top grid would be 4 < p: rejected
  EXPECT_THROW(Tme(box, tp), std::invalid_argument);
  tp.levels = 1;
  tp.num_gaussians = 0;
  EXPECT_THROW(Tme(box, tp), std::invalid_argument);
}

TEST(Tme, DenseTopLevelMatchesSpmeTopLevel) {
  // The FFT-free dense top convolution is mathematically identical to the
  // SPME top solve; only the evaluation differs.
  const TestSystem sys = dense_system(800, 3.2, 31);
  TmeParams spme_mode;
  spme_mode.alpha = alpha_from_tolerance(0.8, 1e-4);
  spme_mode.grid = {16, 16, 16};
  spme_mode.grid_cutoff = 8;
  spme_mode.num_gaussians = 4;
  TmeParams dense_mode = spme_mode;
  dense_mode.top_level_mode = TopLevelMode::kDense;

  const Tme a(sys.box, spme_mode);
  const Tme b(sys.box, dense_mode);
  const CoulombResult ra = a.compute(sys.positions, sys.charges);
  const CoulombResult rb = b.compute(sys.positions, sys.charges);
  EXPECT_NEAR(rb.energy, ra.energy, 1e-9 * std::abs(ra.energy));
  for (std::size_t i = 0; i < ra.forces.size(); ++i) {
    EXPECT_LT(norm(ra.forces[i] - rb.forces[i]), 1e-8);
  }
}

TEST(Tme, DenseTopKernelIsSymmetric) {
  const Box box{{4.0, 4.0, 4.0}};
  TmeParams tp;
  tp.alpha = 2.0;
  tp.grid = {16, 16, 16};
  tp.top_level_mode = TopLevelMode::kDense;
  const Tme tme(box, tp);
  const Grid3d& k = tme.top_dense_kernel();
  ASSERT_EQ(k.dims().nx, 8u);
  for (long m = 1; m < 4; ++m) {
    EXPECT_NEAR(k.at_wrapped(m, 0, 0), k.at_wrapped(-m, 0, 0), 1e-12);
    EXPECT_NEAR(k.at_wrapped(0, m, 2), k.at_wrapped(0, -m, 2), 1e-12);
  }
}

TEST(Tme, TopLevelUsesHalvedAlphaAndGrid) {
  const Box box{{4.0, 4.0, 4.0}};
  TmeParams tp;
  tp.alpha = 2.0;
  tp.grid = {32, 32, 32};
  tp.levels = 2;
  const Tme tme(box, tp);
  EXPECT_EQ(tme.top_level().params().grid.nx, 8u);
  EXPECT_NEAR(tme.top_level().params().alpha, 0.5, 1e-15);
  EXPECT_EQ(tme.level_dims(1).nx, 32u);
  EXPECT_EQ(tme.level_dims(3).nx, 8u);
}

}  // namespace
}  // namespace tme
