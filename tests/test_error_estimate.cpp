// Property tests for the Kolafa–Perram / Deserno–Holm a-priori RMS
// force-error estimates: across an alpha sweep the estimates must
// upper-bound (within the customary factor-of-two headroom) the measured
// truncation error of this library's reference Ewald, while staying in the
// right ballpark (not orders of magnitude loose).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ewald/error_estimate.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
  double q2 = 0.0;
};

TestSystem random_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) {
    q -= total / static_cast<double>(n);
    sys.q2 += q * q;
  }
  return sys;
}

double rms_force_difference(const CoulombResult& a, const CoulombResult& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.forces.size(); ++i) {
    sum += norm2(a.forces[i] - b.forces[i]);
  }
  return std::sqrt(sum / static_cast<double>(a.forces.size()));
}

TEST(ErrorEstimate, RejectsBadArgumentsAndDecaysMonotonically) {
  EXPECT_THROW(ewald_real_space_rms_force_error(1.0, 0, 8.0, 0.9, 3.0),
               std::invalid_argument);
  EXPECT_THROW(ewald_real_space_rms_force_error(1.0, 10, 8.0, -0.9, 3.0),
               std::invalid_argument);
  EXPECT_THROW(ewald_reciprocal_rms_force_error(1.0, 10, 8.0, 2.0, 3.0, 0),
               std::invalid_argument);

  // Larger cutoffs mean smaller truncation error, always.
  double prev = ewald_real_space_rms_force_error(10.0, 100, 8.0, 0.4, 4.0);
  for (const double rc : {0.6, 0.8, 1.0}) {
    const double cur = ewald_real_space_rms_force_error(10.0, 100, 8.0, rc, 4.0);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  prev = ewald_reciprocal_rms_force_error(10.0, 100, 8.0, 2.0, 4.0, 4);
  for (const int nc : {6, 8, 10}) {
    const double cur =
        ewald_reciprocal_rms_force_error(10.0, 100, 8.0, 2.0, 4.0, nc);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(ErrorEstimate, RealSpaceEstimateBoundsMeasuredErrorAcrossAlphaSweep) {
  const TestSystem sys = random_system(200, 2.0, 41);
  const double r_cut = 0.7;  // < L/2

  for (const double alpha : {2.5, 3.5, 4.5, 5.5}) {
    // Same converged reciprocal part in both; the force difference is purely
    // the real-space tail beyond r_cut.
    EwaldParams full;
    full.alpha = alpha;  // r_cut = L/2
    EwaldParams truncated;
    truncated.alpha = alpha;
    truncated.r_cut = r_cut;
    const CoulombResult a =
        ewald_reference(sys.box, sys.positions, sys.charges, full);
    const CoulombResult b =
        ewald_reference(sys.box, sys.positions, sys.charges, truncated);
    const double measured = rms_force_difference(a, b);
    const double estimate = ewald_real_space_rms_force_error(
        sys.q2, sys.positions.size(), sys.box.volume(), r_cut, alpha);

    // Upper bound with the customary 2x headroom; ballpark floor keeps the
    // estimate honest (no silent over-estimation by orders of magnitude).
    EXPECT_LT(measured, 2.0 * estimate) << "alpha=" << alpha;
    EXPECT_GT(measured, 0.02 * estimate) << "alpha=" << alpha;
  }
}

TEST(ErrorEstimate, ReciprocalEstimateBoundsMeasuredErrorAcrossAlphaSweep) {
  const TestSystem sys = random_system(200, 2.0, 42);

  for (const double alpha : {3.0, 4.0, 5.0}) {
    // n_cut chosen mid-decay so the truncated tail is measurable; the
    // reference keeps the converged auto cutoff.
    const int n_cut = std::max(
        2, reciprocal_cutoff_from_tolerance(alpha, sys.box.lengths.x, 1e-4));
    EwaldParams full;
    full.alpha = alpha;
    EwaldParams truncated;
    truncated.alpha = alpha;
    truncated.n_cut = n_cut;
    const CoulombResult a =
        ewald_reference(sys.box, sys.positions, sys.charges, full);
    const CoulombResult b =
        ewald_reference(sys.box, sys.positions, sys.charges, truncated);
    const double measured = rms_force_difference(a, b);
    const double estimate = ewald_reciprocal_rms_force_error(
        sys.q2, sys.positions.size(), sys.box.volume(), sys.box.lengths.x,
        alpha, n_cut);

    EXPECT_LT(measured, 2.0 * estimate) << "alpha=" << alpha;
    EXPECT_GT(measured, 0.02 * estimate) << "alpha=" << alpha;
  }
}

}  // namespace
}  // namespace tme
