#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/tme.hpp"
#include "ewald/splitting.hpp"
#include "par/decomposition.hpp"
#include "par/par_tme.hpp"
#include "grid/separable_conv.hpp"
#include "par/traffic.hpp"
#include "util/rng.hpp"

namespace tme::par {
namespace {

struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem random_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box_length), rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

TmeParams default_params(double alpha) {
  TmeParams tp;
  tp.alpha = alpha;
  tp.grid = {32, 32, 32};
  tp.levels = 1;
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  return tp;
}

// --- decomposition -----------------------------------------------------------

TEST(Decomposition, OwnerAndOriginsAreConsistent) {
  const TorusTopology topo(4, 2, 2);
  const GridDecomposition d({32, 32, 32}, topo);
  EXPECT_EQ(d.local().nx, 8u);
  EXPECT_EQ(d.local().ny, 16u);
  EXPECT_EQ(d.local().nz, 16u);
  const NodeCoord owner = d.owner(9, 17, 3);
  EXPECT_EQ(owner.x, 1u);
  EXPECT_EQ(owner.y, 1u);
  EXPECT_EQ(owner.z, 0u);
  // Negative / beyond-period coordinates wrap.
  EXPECT_EQ(d.owner(-1, 0, 0).x, 3u);
  EXPECT_EQ(d.owner(32, 0, 0).x, 0u);
}

TEST(Decomposition, RejectsUnevenSplit) {
  const TorusTopology topo(3, 2, 2);
  EXPECT_THROW(GridDecomposition({32, 32, 32}, topo), std::invalid_argument);
}

TEST(Decomposition, AtomAssignmentCoversAllNodesUniformly) {
  const TorusTopology topo(2, 2, 2);
  const TestSystem sys = random_system(4000, 4.0, 3);
  const auto owners = assign_atoms_to_nodes(sys.box, sys.positions, topo);
  std::vector<std::size_t> counts(topo.node_count(), 0);
  for (const std::size_t o : owners) {
    ASSERT_LT(o, topo.node_count());
    ++counts[o];
  }
  for (const std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 500.0, 120.0);
  }
}

TEST(DistributedGrid, DistributeAssembleRoundTrip) {
  const TorusTopology topo(2, 2, 2);
  const GridDecomposition d({16, 16, 16}, topo);
  Grid3d g(d.global());
  Rng rng(4);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = rng.uniform(-1.0, 1.0);
  const DistributedGrid dist = DistributedGrid::distribute(g, d);
  const Grid3d back = dist.assemble();
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(back[i], g[i]);
}

// --- traffic log -------------------------------------------------------------

TEST(TrafficLog, AccumulatesByPhase) {
  TrafficLog log;
  log.add("a", 1, 100, 2);
  log.add("a", 2, 50, 3);
  log.add("b", 1, 10, 1);
  EXPECT_EQ(log.phases().size(), 2u);
  EXPECT_EQ(log.words_in("a"), 150u);
  EXPECT_EQ(log.words_in("b"), 10u);
  EXPECT_EQ(log.words_in("absent"), 0u);
  EXPECT_EQ(log.total_messages(), 4u);
  EXPECT_EQ(log.total_words(), 160u);
  EXPECT_EQ(log.phases()[0].max_hops, 3u);
}

// --- parallel TME ------------------------------------------------------------

class ParallelTmeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = random_system(400, 6.4, 7);
    alpha_ = alpha_from_tolerance(0.8, 1e-4);
  }
  TestSystem sys_;
  double alpha_ = 0.0;
};

TEST_F(ParallelTmeTest, GridPipelineMatchesSerial) {
  const TmeParams tp = default_params(alpha_);
  const TorusTopology topo(4, 4, 4);
  const ParallelTme par(sys_.box, tp, topo);

  // Random finest-grid charges through both pipelines.
  Grid3d q(tp.grid);
  Rng rng(9);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);

  const Grid3d serial_phi = par.serial().solve_potential(q);
  const GridDecomposition decomp(tp.grid, par.topology());
  TrafficLog log;
  const DistributedGrid par_phi =
      par.solve_potential(DistributedGrid::distribute(q, decomp), &log);
  const Grid3d assembled = par_phi.assemble();

  double worst = 0.0;
  for (std::size_t i = 0; i < serial_phi.size(); ++i) {
    worst = std::max(worst, std::abs(assembled[i] - serial_phi[i]));
  }
  EXPECT_LT(worst, 1e-10 * serial_phi.max_abs());
  EXPECT_GT(log.total_words(), 0u);
}

TEST_F(ParallelTmeTest, ForcesAndEnergyMatchSerial) {
  const TmeParams tp = default_params(alpha_);
  const TorusTopology topo(2, 2, 2);
  const ParallelTme par(sys_.box, tp, topo);

  const CoulombResult serial = par.serial().compute(sys_.positions, sys_.charges);
  TrafficLog log;
  const CoulombResult parallel = par.compute(sys_.positions, sys_.charges, &log);

  EXPECT_NEAR(parallel.energy, serial.energy, 1e-9 * std::abs(serial.energy));
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < serial.forces.size(); ++i) {
    worst = std::max(worst, norm(parallel.forces[i] - serial.forces[i]));
    scale = std::max(scale, norm(serial.forces[i]));
  }
  EXPECT_LT(worst, 1e-10 * scale);
}

TEST_F(ParallelTmeTest, ResultIndependentOfDecomposition) {
  const TmeParams tp = default_params(alpha_);
  const ParallelTme p2(sys_.box, tp, TorusTopology(2, 2, 2));
  const ParallelTme p4(sys_.box, tp, TorusTopology(4, 4, 4));
  const ParallelTme p_aniso(sys_.box, tp, TorusTopology(4, 2, 1));
  const CoulombResult r2 = p2.compute(sys_.positions, sys_.charges, nullptr);
  const CoulombResult r4 = p4.compute(sys_.positions, sys_.charges, nullptr);
  const CoulombResult ra = p_aniso.compute(sys_.positions, sys_.charges, nullptr);
  EXPECT_NEAR(r2.energy, r4.energy, 1e-9 * std::abs(r2.energy));
  EXPECT_NEAR(r2.energy, ra.energy, 1e-9 * std::abs(r2.energy));
  for (std::size_t i = 0; i < r2.forces.size(); ++i) {
    EXPECT_LT(norm(r2.forces[i] - r4.forces[i]), 1e-8);
    EXPECT_LT(norm(r2.forces[i] - ra.forces[i]), 1e-8);
  }
}

TEST_F(ParallelTmeTest, ConvolutionTrafficMatchesCostModel) {
  // Paper Sec. III.C: level-1 convolution receives (2 + 4M) gamma^2 g_c^3
  // words per node.  Measure it on the 8^3-node, 32^3-grid, g_c = 8, M = 4
  // configuration of the machine (gamma = 0.5).
  TmeParams tp = default_params(alpha_);
  const TorusTopology topo(8, 8, 8);
  const ParallelTme par(sys_.box, tp, topo);
  const GridDecomposition decomp(tp.grid, par.topology());

  Grid3d q(tp.grid);
  Rng rng(11);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);
  TrafficLog log;
  (void)par.solve_potential(DistributedGrid::distribute(q, decomp), &log);

  const CostModelInput in{4, 8, 4};  // N/P = 32/8, g_c = 8, M = 4
  const double predicted = tme_level1_cost(in).comm;  // words per node
  const double measured =
      static_cast<double>(log.words_in("level convolution")) /
      static_cast<double>(topo.node_count());
  EXPECT_NEAR(measured, predicted, 0.01 * predicted);
}

TEST_F(ParallelTmeTest, ConvolutionTrafficMatchesCostModelAtGammaOne) {
  // Same check at gamma = 1 (N/P = 8): 4^3 nodes over the 32^3 grid.
  TmeParams tp = default_params(alpha_);
  const TorusTopology topo(4, 4, 4);
  const ParallelTme par(sys_.box, tp, topo);
  const GridDecomposition decomp(tp.grid, par.topology());

  Grid3d q(tp.grid);
  Rng rng(13);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);
  TrafficLog log;
  (void)par.solve_potential(DistributedGrid::distribute(q, decomp), &log);

  const CostModelInput in{8, 8, 4};
  const double predicted = tme_level1_cost(in).comm;
  const double measured =
      static_cast<double>(log.words_in("level convolution")) /
      static_cast<double>(topo.node_count());
  EXPECT_NEAR(measured, predicted, 0.01 * predicted);
}

TEST_F(ParallelTmeTest, TransferPhasesAreCheapRelativeToConvolution) {
  // The paper's rationale for the B-spline hierarchy: restriction and
  // prolongation move far less data than the kernel convolution.
  const TmeParams tp = default_params(alpha_);
  const TorusTopology topo(4, 4, 4);
  const ParallelTme par(sys_.box, tp, topo);
  TrafficLog log;
  (void)par.compute(sys_.positions, sys_.charges, &log);
  EXPECT_LT(log.words_in("restriction halo"), log.words_in("level convolution"));
  EXPECT_LT(log.words_in("prolongation halo"), log.words_in("level convolution"));
  EXPECT_GT(log.words_in("CA sleeve exchange"), 0u);
  EXPECT_GT(log.words_in("BI grid transfer"), 0u);
  EXPECT_GT(log.words_in("TMENW gather"), 0u);
}

TEST(ParallelMsm, HaloTrafficMatchesCostModelExactly) {
  // The paper's MSM communication formula (8 + 12 gamma + 6 gamma^2) g_c^3
  // is the halo volume of the dense convolution — measure it.
  const int gc = 8;
  Grid3d in(32, 32, 32);
  Rng rng(23);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-1.0, 1.0);
  std::vector<double> taps((2 * gc + 1) * (2 * gc + 1) * (2 * gc + 1), 0.0);
  taps[taps.size() / 2] = 1.0;  // delta: convolution math is not the point

  for (const std::size_t nodes : {8u, 4u}) {  // gamma = 0.5 and 1
    const TorusTopology topo(nodes, nodes, nodes);
    TrafficLog log;
    (void)parallel_msm_convolution(in, taps, gc, topo, &log);
    const double measured = static_cast<double>(log.words_in("MSM dense halo")) /
                            static_cast<double>(topo.node_count());
    const CostModelInput op{static_cast<int>(32 / nodes), gc, 4};
    const double predicted = msm_level1_cost(op).comm;
    EXPECT_NEAR(measured, predicted, 1e-9) << "nodes " << nodes;
  }
}

TEST(ParallelMsm, DenseConvolutionMatchesSerial) {
  const int gc = 4;
  Grid3d in(16, 16, 16);
  Rng rng(29);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-1.0, 1.0);
  std::vector<double> taps;
  Rng rng2(31);
  for (int i = 0; i < (2 * gc + 1) * (2 * gc + 1) * (2 * gc + 1); ++i) {
    taps.push_back(rng2.uniform(-0.1, 0.1));
  }
  Grid3d serial(in.dims());
  convolve_dense3d(in, taps, gc, serial);
  const TorusTopology topo(2, 2, 2);
  const Grid3d parallel = parallel_msm_convolution(in, taps, gc, topo, nullptr);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(parallel[i], serial[i], 1e-12);
  }
}

TEST(ParallelTmeTwoLevel, MatchesSerialWithDeeperHierarchy) {
  const TestSystem sys = random_system(200, 6.4, 21);
  TmeParams tp;
  tp.alpha = alpha_from_tolerance(0.8, 1e-4);
  tp.grid = {32, 32, 32};
  tp.levels = 2;
  tp.grid_cutoff = 6;
  tp.num_gaussians = 3;
  const ParallelTme par(sys.box, tp, TorusTopology(2, 2, 2));
  const CoulombResult serial = par.serial().compute(sys.positions, sys.charges);
  const CoulombResult parallel = par.compute(sys.positions, sys.charges, nullptr);
  EXPECT_NEAR(parallel.energy, serial.energy, 1e-9 * std::abs(serial.energy));
  for (std::size_t i = 0; i < serial.forces.size(); ++i) {
    EXPECT_LT(norm(parallel.forces[i] - serial.forces[i]), 1e-8);
  }
}

}  // namespace
}  // namespace tme::par
