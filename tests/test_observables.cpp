#include <cmath>

#include <gtest/gtest.h>

#include "md/observables.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

TEST(Rdf, IdealGasIsFlatAtOne) {
  const Box box{{4.0, 4.0, 4.0}};
  Rng rng(1);
  const std::size_t n = 800;
  std::vector<Vec3> pos(n);
  std::vector<std::size_t> group(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    group[i] = i;
  }
  RdfAccumulator rdf(1.5, 30);
  for (int frame = 0; frame < 10; ++frame) {
    rdf.accumulate(box, pos, group, group);
    for (auto& p : pos) {
      p = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    }
  }
  const RdfResult result = rdf.result();
  EXPECT_EQ(result.samples, 10u);
  // Skip the first (poor-statistics) bins; the rest must hover near 1.
  for (std::size_t b = 5; b < result.g.size(); ++b) {
    EXPECT_NEAR(result.g[b], 1.0, 0.15) << "bin " << b;
  }
}

TEST(Rdf, LatticePeaksAtNeighbourDistance) {
  // Simple cubic lattice: g(r) must spike at the lattice constant.
  const double a = 0.5;
  const Box box{{4.0, 4.0, 4.0}};
  std::vector<Vec3> pos;
  std::vector<std::size_t> group;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      for (int z = 0; z < 8; ++z) {
        group.push_back(pos.size());
        pos.push_back({x * a, y * a, z * a});
      }
    }
  }
  RdfAccumulator rdf(1.0, 50);
  rdf.accumulate(box, pos, group, group);
  const RdfResult r = rdf.result();
  // Sharp shell at the lattice constant, empty gap before the sqrt(2) shell.
  const std::size_t shell_bin = static_cast<std::size_t>(a / 1.0 * 50.0);
  EXPECT_GT(r.g[shell_bin], 5.0);
  const std::size_t gap_bin = static_cast<std::size_t>(0.6 / 1.0 * 50.0);
  EXPECT_LT(r.g[gap_bin], 1e-12);
  // And nothing below the nearest-neighbour distance.
  for (std::size_t b = 0; b + 1 < shell_bin; ++b) EXPECT_EQ(r.g[b], 0.0);
}

TEST(Rdf, RejectsBadParameters) {
  EXPECT_THROW(RdfAccumulator(0.0, 10), std::invalid_argument);
  EXPECT_THROW(RdfAccumulator(1.0, 0), std::invalid_argument);
}

TEST(Msd, BallisticMotionGivesQuadraticGrowth) {
  const Box box{{5.0, 5.0, 5.0}};
  std::vector<Vec3> pos{{1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}};
  const std::vector<std::size_t> group{0, 1};
  MsdTracker msd(box, pos, group);
  const Vec3 v{0.1, 0.0, 0.0};
  double prev = 0.0;
  for (int step = 1; step <= 10; ++step) {
    for (auto& p : pos) p = box.wrap(p + v);
    const double value = msd.update(pos);
    const double expected = norm2(v) * step * step;
    EXPECT_NEAR(value, expected, 1e-10) << "step " << step;
    EXPECT_GT(value, prev);
    prev = value;
  }
}

TEST(Msd, UnwrapsAcrossPeriodicBoundary) {
  const Box box{{2.0, 2.0, 2.0}};
  std::vector<Vec3> pos{{1.9, 1.0, 1.0}};
  const std::vector<std::size_t> group{0};
  MsdTracker msd(box, pos, group);
  // Cross the boundary: +0.3 -> wrapped to 0.2; true displacement 0.3.
  pos[0] = box.wrap({2.2, 1.0, 1.0});
  const double value = msd.update(pos);
  EXPECT_NEAR(value, 0.09, 1e-12);
}

TEST(Msd, StationaryParticlesStayAtZero) {
  const Box box{{3.0, 3.0, 3.0}};
  std::vector<Vec3> pos{{0.5, 0.5, 0.5}, {1.5, 1.5, 1.5}};
  const std::vector<std::size_t> group{0, 1};
  MsdTracker msd(box, pos, group);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(msd.update(pos), 0.0);
}

}  // namespace
}  // namespace tme
