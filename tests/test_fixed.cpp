#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/gaussian_fit.hpp"
#include "core/grid_kernel.hpp"
#include "fixed/fixed_point.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

TEST(FixedPoint, QuantizeRoundTripWithinResolution) {
  const FixedFormat fmt{32, 24};
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    EXPECT_NEAR(quantize_value(v, fmt), v, fmt.resolution() * 0.5 + 1e-15);
  }
}

TEST(FixedPoint, ResolutionMatchesFracBits) {
  EXPECT_NEAR((FixedFormat{32, 24}).resolution(), std::ldexp(1.0, -24), 1e-20);
  EXPECT_NEAR((FixedFormat{24, 18}).resolution(), std::ldexp(1.0, -18), 1e-20);
}

TEST(FixedPoint, SaturatesAtRange) {
  const FixedFormat fmt{16, 8};  // range ~[-128, 128)
  EXPECT_NEAR(quantize_value(500.0, fmt), dequantize(fmt.max_raw(), fmt), 1e-12);
  EXPECT_NEAR(quantize_value(-500.0, fmt), dequantize(fmt.min_raw(), fmt), 1e-12);
}

TEST(FixedPoint, RoundsToNearest) {
  const FixedFormat fmt{16, 4};  // resolution 1/16
  EXPECT_NEAR(quantize_value(0.031, fmt), 0.0625 * 0.0 + 1.0 / 32.0, 1.0 / 32.0);
  EXPECT_NEAR(quantize_value(0.0624, fmt), 0.0625, 1e-12);
}

TEST(FixedPoint, QuantizeGridCountsSaturations) {
  Grid3d g(2, 2, 2);
  g[0] = 1e9;
  g[1] = -1e9;
  g[2] = 0.5;
  const FixedFormat fmt{16, 8};
  const std::size_t saturated = quantize_grid(g, fmt);
  EXPECT_EQ(saturated, 2u);
  EXPECT_NEAR(g[2], 0.5, fmt.resolution());
}

TEST(FixedConvolution, MatchesFloatWithinQuantisationError) {
  // Build a realistic TME level-1 kernel and compare fixed vs float paths.
  const auto terms = fit_shell_gaussians(2.4, 3);
  const int gc = 6;
  const auto kernels =
      build_level_kernels(terms, 6, {16, 16, 16}, {0.25, 0.25, 0.25}, gc);

  Grid3d q(16, 16, 16);
  Rng rng(5);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);

  Grid3d float_out(q.dims());
  convolve_tensor(q, kernels, 1.0, float_out);
  Grid3d fixed_out(q.dims());
  convolve_tensor_fixed(q, kernels, 1.0, mdgrape_grid_format(20),
                        mdgrape_coeff_format(18), fixed_out);

  double worst = 0.0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    worst = std::max(worst, std::abs(float_out[i] - fixed_out[i]));
  }
  // 20 fractional grid bits and 18 coefficient bits with 17-tap
  // accumulations: error stays far below the method error (~1e-4 relative).
  EXPECT_LT(worst, 1e-4 * float_out.max_abs() + 1e-6);
  EXPECT_GT(worst, 0.0);  // the fixed path genuinely quantises
}

TEST(FixedConvolution, DeltaKernelReproducesQuantisedInput) {
  Grid3d in(8, 8, 8);
  Rng rng(9);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-2.0, 2.0);
  Kernel1d delta;
  delta.cutoff = 1;
  delta.taps = {0.0, 1.0, 0.0};
  Grid3d out(in.dims());
  const FixedFormat gfmt{32, 20};
  const FixedFormat cfmt{24, 18};
  convolve_axis_fixed(in, delta, ConvAxis::kY, gfmt, cfmt, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(out[i], quantize_value(in[i], gfmt), gfmt.resolution() + 1e-12);
  }
}

TEST(FixedConvolution, CoarseGridFormatDegradesAccuracy) {
  // Property: fewer fractional bits -> strictly larger quantisation error.
  const auto terms = fit_shell_gaussians(2.0, 2);
  const auto kernels =
      build_level_kernels(terms, 6, {16, 16, 16}, {0.25, 0.25, 0.25}, 4);
  Grid3d q(16, 16, 16);
  Rng rng(11);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);
  Grid3d exact(q.dims());
  convolve_tensor(q, kernels, 1.0, exact);

  double prev_err = -1.0;
  for (const int frac : {24, 16, 8}) {
    Grid3d fixed_out(q.dims());
    convolve_tensor_fixed(q, kernels, 1.0, mdgrape_grid_format(frac),
                          mdgrape_coeff_format(18), fixed_out);
    double err = 0.0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      err += (exact[i] - fixed_out[i]) * (exact[i] - fixed_out[i]);
    }
    err = std::sqrt(err / static_cast<double>(q.size()));
    EXPECT_GT(err, prev_err);
    prev_err = err;
  }
}

}  // namespace
}  // namespace tme
