// util/simd tests: lane-op unit tests for every vec<double, W> primitive
// (against a plain per-lane reference) plus the property tests behind the
// determinism contract documented in util/simd.hpp —
//  - scalar-vs-native BITWISE force parity for the short-range engine at
//    every pool size and for both Coulomb kernels,
//  - bitwise grid parity for B-spline charge spreading,
//  - bitwise parity for every separable-convolution axis (including wrapped
//    boundaries and partial vector tails),
//  - the documented reassociation-only relaxation of the gather path.
//
// This translation unit is compiled with -ffp-contract=off (see
// tests/CMakeLists.txt) so reference expressions written as a*b+c are not
// silently fused into something the unfused vec ops can't match.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "ewald/charge_assignment.hpp"
#include "ewald/splitting.hpp"
#include "grid/separable_conv.hpp"
#include "md/short_range_engine.hpp"
#include "md/water_box.hpp"
#include "obs/json.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace tme {
namespace {

// ---------------------------------------------------------------------------
// vec<double, W> primitives.  Instantiated at W = 1 (the scalar twin),
// W = kNativeWidth (the ISA specialization on SIMD builds), and W = 3 (an
// odd width that can only resolve to the generic array fallback, exercising
// its odd-tail reduce).

template <int W>
void check_primitives() {
  using V = simd::vec<double, W>;
  SCOPED_TRACE("W=" + std::to_string(W));
  Rng rng(99 + W);
  double a[W], b[W], c[W], out[W + 1];
  for (int i = 0; i < W; ++i) {
    a[i] = rng.uniform(-8.0, 8.0);
    b[i] = rng.uniform(0.1, 4.0);
    c[i] = rng.uniform(-2.0, 2.0);
  }

  // load / store round trip.
  V::load(a).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i]);

  // load_partial zero-fills past n; store_partial leaves the tail untouched.
  for (int n = 0; n <= W; ++n) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const V v = V::load_partial(a, n);
    for (int i = 0; i < W; ++i) EXPECT_EQ(v.extract(i), i < n ? a[i] : 0.0);
    for (int i = 0; i <= W; ++i) out[i] = -777.0;
    V::load(a).store_partial(out, n);
    for (int i = 0; i < n; ++i) EXPECT_EQ(out[i], a[i]);
    for (int i = n; i <= W; ++i) EXPECT_EQ(out[i], -777.0);
  }

  // gather.
  double base[4 * W];
  std::int64_t idx[W];
  for (int i = 0; i < 4 * W; ++i) base[i] = 100.0 + i;
  for (int i = 0; i < W; ++i) idx[i] = (7 * i + 3) % (4 * W);
  const V g = V::gather(base, idx);
  for (int i = 0; i < W; ++i) EXPECT_EQ(g.extract(i), base[idx[i]]);

  // Arithmetic: each lane is the plain IEEE double op.
  const V va = V::load(a), vb = V::load(b), vc = V::load(c);
  for (int i = 0; i < W; ++i) {
    EXPECT_EQ((va + vb).extract(i), a[i] + b[i]);
    EXPECT_EQ((va - vb).extract(i), a[i] - b[i]);
    EXPECT_EQ((va * vb).extract(i), a[i] * b[i]);
    EXPECT_EQ((va / vb).extract(i), a[i] / b[i]);
    EXPECT_EQ(V::sqrt(vb).extract(i), std::sqrt(b[i]));
    EXPECT_EQ(V::nearbyint(va).extract(i), std::nearbyint(a[i]));
    EXPECT_EQ(V::floor(va).extract(i), std::floor(a[i]));
    EXPECT_EQ(V::min(va, vb).extract(i), std::min(a[i], b[i]));
    EXPECT_EQ(V::max(va, vb).extract(i), std::max(a[i], b[i]));
  }

  // fma follows the build's fusion policy on every width, and fma1 is its
  // scalar mirror — the heart of the bitwise parity contract.
  const V f = V::fma(va, vb, vc);
  for (int i = 0; i < W; ++i) {
    const double expect =
        simd::kFmaFused ? std::fma(a[i], b[i], c[i]) : a[i] * b[i] + c[i];
    EXPECT_EQ(f.extract(i), expect);
    EXPECT_EQ(simd::fma1(a[i], b[i], c[i]), expect);
  }

  // Comparisons, blend, mask_bits.
  const auto lt = V::cmp_lt(va, vc);
  const auto ge = V::cmp_ge(va, vc);
  const V bl = V::blend(lt, va, vb);
  unsigned expect_bits = 0;
  for (int i = 0; i < W; ++i) {
    const bool is_lt = a[i] < c[i];
    expect_bits |= is_lt ? (1u << i) : 0u;
    EXPECT_EQ(bl.extract(i), is_lt ? a[i] : b[i]);
  }
  EXPECT_EQ(V::mask_bits(lt), expect_bits);
  EXPECT_EQ(V::mask_bits(ge), ~expect_bits & ((1u << W) - 1u));

  // reduce_add is the fixed pairwise tree, identical to the generic
  // algorithm — a specialization with a different association would
  // silently break cross-ISA determinism of the gather path.
  double acc[W];
  std::memcpy(acc, a, sizeof(acc));
  int n = W;
  while (n > 1) {
    const int half = (n + 1) / 2;
    for (int i = 0; i < n / 2; ++i) acc[i] = acc[i] + acc[i + half];
    n = half;
  }
  EXPECT_EQ(va.reduce_add(), acc[0]);
}

TEST(SimdVec, PrimitivesScalarTwin) { check_primitives<1>(); }
TEST(SimdVec, PrimitivesNativeWidth) { check_primitives<simd::kNativeWidth>(); }
TEST(SimdVec, PrimitivesGenericOddWidth) { check_primitives<3>(); }

TEST(SimdVec, RuntimeFacts) {
  EXPECT_STREQ(simd::mode_name(simd::Mode::kScalar), "scalar");
  EXPECT_STREQ(simd::mode_name(simd::Mode::kNative), "native");
  EXPECT_EQ(simd::lanes(simd::Mode::kScalar), 1);
  EXPECT_EQ(simd::lanes(simd::Mode::kNative), simd::kNativeWidth);
  EXPECT_STREQ(simd::active_isa(), simd::kIsaName);
  const std::string json = simd::describe_json(simd::Mode::kNative).dump();
  EXPECT_NE(json.find("\"isa\""), std::string::npos);
  EXPECT_NE(json.find("\"native_width\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"native\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property: the short-range engine's forces and energies are bitwise
// identical between the scalar twin and the native kernel, for both Coulomb
// kernels and at every pool size (the accumulation order is fixed by the
// cell sweep, never by the vector width).

TEST(SimdParity, ShortRangeForcesBitwiseAcrossPoolSizes) {
  WaterBoxSpec spec;
  spec.molecules = 216;
  spec.seed = 7;
  WaterBox wb = build_water_box(spec);
  add_ion_pairs(wb, 4);  // several LJ types, non-trivial mixing table
  const std::size_t n = wb.system.size();

  ShortRangeParams params;
  params.cutoff = std::min(0.9, 0.45 * wb.system.box.lengths.x);
  params.alpha = alpha_from_tolerance(params.cutoff, 1e-4);
  params.shift_lj = true;

  for (const CoulombKernel kernel :
       {CoulombKernel::kAnalytic, CoulombKernel::kTabulated}) {
    ShortRangeParams p_scalar = params;
    p_scalar.kernel = kernel;
    p_scalar.simd = ShortRangeParams::SimdChoice::kScalar;
    ShortRangeParams p_native = p_scalar;
    p_native.simd = ShortRangeParams::SimdChoice::kNative;
    const ShortRangeEngine scalar_engine(p_scalar);
    const ShortRangeEngine native_engine(p_native);
    ASSERT_EQ(scalar_engine.simd_mode(), simd::Mode::kScalar);
    ASSERT_EQ(native_engine.simd_mode(), simd::Mode::kNative);

    for (const std::size_t workers : {0u, 1u, 3u}) {
      SCOPED_TRACE(std::string(kernel == CoulombKernel::kAnalytic
                                   ? "analytic"
                                   : "tabulated") +
                   " workers=" + std::to_string(workers));
      ThreadPool pool(workers);

      wb.system.forces.assign(n, Vec3{});
      const ShortRangeResult rs =
          scalar_engine.compute(wb.system, wb.topology, &pool);
      const std::vector<Vec3> f_scalar = wb.system.forces;

      wb.system.forces.assign(n, Vec3{});
      const ShortRangeResult rn =
          native_engine.compute(wb.system, wb.topology, &pool);

      EXPECT_EQ(rn.pair_count, rs.pair_count);
      EXPECT_EQ(rn.energy_coulomb, rs.energy_coulomb);
      EXPECT_EQ(rn.energy_lj, rs.energy_lj);
      EXPECT_TRUE(rn.third_law_ok);
      ASSERT_EQ(wb.system.forces.size(), f_scalar.size());
      EXPECT_EQ(std::memcmp(wb.system.forces.data(), f_scalar.data(),
                            n * sizeof(Vec3)),
                0)
          << "native forces are not bitwise identical to the scalar twin";
    }
  }
}

// ---------------------------------------------------------------------------
// Property: B-spline charge spreading produces a bitwise-identical grid in
// both modes (element-wise fma on the grid, wrap fallback included), at
// every pool size and for both the hardware order (6) and order 4.

TEST(SimdParity, ChargeSpreadingBitwiseAcrossPoolSizes) {
  Box box;
  box.lengths = {2.0, 1.6, 1.3};
  const GridDims dims{24, 20, 18};  // non-cubic: distinct axis strides
  Rng rng(4242);
  const std::size_t n_particles = 500;
  std::vector<Vec3> pos(n_particles);
  std::vector<double> q(n_particles);
  for (std::size_t i = 0; i < n_particles; ++i) {
    // Includes particles whose stencil window wraps the x boundary, so the
    // scalar wrap fallback and the contiguous fast path are both exercised.
    pos[i] = {rng.uniform(0.0, box.lengths.x), rng.uniform(0.0, box.lengths.y),
              rng.uniform(0.0, box.lengths.z)};
    q[i] = rng.uniform(-1.0, 1.0);
  }

  for (const int order : {4, 6}) {
    ChargeAssigner assigner(box, dims, order);
    for (const std::size_t workers : {0u, 2u}) {
      SCOPED_TRACE("order=" + std::to_string(order) +
                   " workers=" + std::to_string(workers));
      ThreadPool pool(workers);
      assigner.set_simd_mode(simd::Mode::kScalar);
      const Grid3d g_scalar = assigner.assign(pos, q, &pool);
      assigner.set_simd_mode(simd::Mode::kNative);
      const Grid3d g_native = assigner.assign(pos, q, &pool);
      ASSERT_EQ(g_scalar.size(), g_native.size());
      EXPECT_EQ(std::memcmp(g_scalar.values().data(), g_native.values().data(),
                            g_scalar.size() * sizeof(double)),
                0)
          << "native spreading is not bitwise identical to the scalar twin";
    }
  }
}

// Property: the back-interpolation gather reduces lane partials with a fixed
// tree, so native agrees with scalar to reassociation rounding only — the
// documented relaxation.  1e-12 relative is ~4 decades above double epsilon
// and ~4 decades below any physical tolerance.

TEST(SimdParity, BackInterpolationWithinReassociationRounding) {
  Box box;
  box.lengths = {2.0, 2.0, 2.0};
  const GridDims dims{20, 20, 20};
  Rng rng(1717);
  const std::size_t n_particles = 400;
  std::vector<Vec3> pos(n_particles);
  std::vector<double> q(n_particles);
  for (std::size_t i = 0; i < n_particles; ++i) {
    pos[i] = {rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0),
              rng.uniform(0.0, 2.0)};
    q[i] = rng.uniform(-1.0, 1.0);
  }
  ChargeAssigner assigner(box, dims, 6);
  assigner.set_simd_mode(simd::Mode::kScalar);
  const Grid3d grid = assigner.assign(pos, q);

  std::vector<Vec3> f_scalar(n_particles, Vec3{}), f_native(n_particles, Vec3{});
  std::vector<double> phi_scalar, phi_native;
  const double e_scalar =
      assigner.back_interpolate(grid, pos, q, &f_scalar, &phi_scalar);
  assigner.set_simd_mode(simd::Mode::kNative);
  const double e_native =
      assigner.back_interpolate(grid, pos, q, &f_native, &phi_native);

  EXPECT_NEAR(e_native, e_scalar, 1e-12 * std::abs(e_scalar));
  double f_scale = 0.0;
  for (const Vec3& f : f_scalar) f_scale = std::max(f_scale, norm(f));
  for (std::size_t i = 0; i < n_particles; ++i) {
    EXPECT_NEAR(phi_native[i], phi_scalar[i],
                1e-12 * std::max(1.0, std::abs(phi_scalar[i])));
    EXPECT_LE(norm(f_native[i] - f_scalar[i]), 1e-12 * f_scale);
  }
}

// ---------------------------------------------------------------------------
// Property: every separable-convolution axis is bitwise invariant under the
// mode, including wrapped boundary columns, partial vector tails (axis
// lengths not divisible by any W), and taps wider than half the axis.

TEST(SimdParity, SeparableConvolutionBitwisePerAxis) {
  struct Case {
    GridDims dims;
    int cutoff;
  };
  const Case cases[] = {
      {{16, 16, 16}, 3},  // clean interior + small wrap
      {{20, 12, 9}, 4},   // non-cubic, odd z, tails on every axis
      {{12, 13, 17}, 8},  // boundary regions dominate (nx < 2c on x)
  };
  Rng rng(8080);
  for (const Case& c : cases) {
    Grid3d src(c.dims);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src.values()[i] = rng.uniform(-1.0, 1.0);
    }
    Kernel1d kernel;
    kernel.cutoff = c.cutoff;
    kernel.taps.resize(static_cast<std::size_t>(2 * c.cutoff + 1));
    for (int t = -c.cutoff; t <= c.cutoff; ++t) {
      kernel.taps[static_cast<std::size_t>(t + c.cutoff)] =
          std::exp(-0.21 * t * t);
    }
    for (const ConvAxis axis : {ConvAxis::kX, ConvAxis::kY, ConvAxis::kZ}) {
      SCOPED_TRACE("dims=" + std::to_string(c.dims.nx) + "x" +
                   std::to_string(c.dims.ny) + "x" + std::to_string(c.dims.nz) +
                   " cutoff=" + std::to_string(c.cutoff) +
                   " axis=" + std::to_string(static_cast<int>(axis)));
      Grid3d out_scalar(c.dims), out_native(c.dims);
      convolve_axis(src, kernel, axis, out_scalar, simd::Mode::kScalar);
      convolve_axis(src, kernel, axis, out_native, simd::Mode::kNative);
      EXPECT_EQ(std::memcmp(out_scalar.values().data(),
                            out_native.values().data(),
                            out_scalar.size() * sizeof(double)),
                0)
          << "native convolution is not bitwise identical to the scalar twin";
    }
  }
}

}  // namespace
}  // namespace tme
