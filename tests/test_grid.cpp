#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "grid/grid3d.hpp"
#include "grid/separable_conv.hpp"
#include "grid/transfer.hpp"
#include "spline/two_scale.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

Grid3d random_grid(GridDims dims, std::uint64_t seed) {
  Grid3d g(dims);
  Rng rng(seed);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = rng.uniform(-1.0, 1.0);
  return g;
}

Kernel1d gaussian_kernel(int cutoff, double width) {
  Kernel1d k;
  k.cutoff = cutoff;
  k.taps.resize(static_cast<std::size_t>(2 * cutoff + 1));
  for (int m = -cutoff; m <= cutoff; ++m) {
    k.taps[static_cast<std::size_t>(m + cutoff)] = std::exp(-width * m * m);
  }
  return k;
}

TEST(Grid3d, IndexingIsXFastest) {
  Grid3d g(4, 3, 2);
  EXPECT_EQ(g.index(1, 0, 0), 1u);
  EXPECT_EQ(g.index(0, 1, 0), 4u);
  EXPECT_EQ(g.index(0, 0, 1), 12u);
  EXPECT_EQ(g.size(), 24u);
}

TEST(Grid3d, WrappedAccessIsPeriodic) {
  Grid3d g(4, 4, 4);
  g.at(3, 0, 1) = 7.5;
  EXPECT_EQ(g.at_wrapped(-1, 4, 5), 7.5);
  EXPECT_EQ(g.at_wrapped(7, -4, -3), 7.5);
}

TEST(Grid3d, SumAndMaxAbs) {
  Grid3d g(2, 2, 2);
  g[0] = -3.0;
  g[7] = 2.0;
  EXPECT_NEAR(g.sum(), -1.0, 1e-15);
  EXPECT_NEAR(g.max_abs(), 3.0, 1e-15);
}

TEST(Grid3d, HalvedRequiresEvenExtents) {
  EXPECT_THROW(GridDims({3, 4, 4}).halved(), std::invalid_argument);
  const GridDims h = GridDims{8, 4, 6}.halved();
  EXPECT_EQ(h.nx, 4u);
  EXPECT_EQ(h.ny, 2u);
  EXPECT_EQ(h.nz, 3u);
}

TEST(SeparableConv, DeltaKernelIsIdentity) {
  const Grid3d in = random_grid({8, 8, 8}, 1);
  Kernel1d delta;
  delta.cutoff = 2;
  delta.taps = {0.0, 0.0, 1.0, 0.0, 0.0};
  Grid3d out(in.dims());
  for (const ConvAxis axis : {ConvAxis::kX, ConvAxis::kY, ConvAxis::kZ}) {
    convolve_axis(in, delta, axis, out);
    for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], in[i]);
  }
}

TEST(SeparableConv, ShiftKernelRotatesAxis) {
  const Grid3d in = random_grid({4, 4, 4}, 2);
  Kernel1d shift;  // taps select in[n - 1]
  shift.cutoff = 1;
  shift.taps = {0.0, 0.0, 1.0};
  Grid3d out(in.dims());
  convolve_axis(in, shift, ConvAxis::kX, out);
  for (std::size_t iz = 0; iz < 4; ++iz) {
    for (std::size_t iy = 0; iy < 4; ++iy) {
      for (std::size_t ix = 0; ix < 4; ++ix) {
        EXPECT_EQ(out.at(ix, iy, iz),
                  in.at_wrapped(static_cast<long>(ix) - 1, static_cast<long>(iy),
                                static_cast<long>(iz)));
      }
    }
  }
}

TEST(SeparableConv, MatchesDense3dForTensorProductKernel) {
  const Grid3d in = random_grid({8, 6, 10}, 3);
  const int c = 2;
  const Kernel1d kx = gaussian_kernel(c, 0.4);
  const Kernel1d ky = gaussian_kernel(c, 0.7);
  const Kernel1d kz = gaussian_kernel(c, 0.9);
  // Build the dense tensor-product cube.
  const std::size_t w = static_cast<std::size_t>(2 * c + 1);
  std::vector<double> taps3d(w * w * w);
  for (int mz = -c; mz <= c; ++mz) {
    for (int my = -c; my <= c; ++my) {
      for (int mx = -c; mx <= c; ++mx) {
        taps3d[(static_cast<std::size_t>(mz + c) * w + static_cast<std::size_t>(my + c)) * w +
               static_cast<std::size_t>(mx + c)] =
            kx.tap(mx) * ky.tap(my) * kz.tap(mz);
      }
    }
  }
  const Grid3d separable = convolve_separable(in, kx, ky, kz);
  Grid3d dense(in.dims());
  convolve_dense3d(in, taps3d, c, dense);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(separable[i], dense[i], 1e-12);
  }
}

TEST(SeparableConv, TensorSumAccumulatesWithScale) {
  const Grid3d in = random_grid({6, 6, 6}, 4);
  std::vector<SeparableTerm> terms;
  terms.push_back({gaussian_kernel(1, 0.5), gaussian_kernel(1, 0.5), gaussian_kernel(1, 0.5)});
  terms.push_back({gaussian_kernel(2, 1.0), gaussian_kernel(2, 1.0), gaussian_kernel(2, 1.0)});
  Grid3d out(in.dims());
  out.fill(1.0);
  convolve_tensor(in, terms, 0.5, out);
  // Reference: 1 + 0.5 * (term1 + term2).
  const Grid3d t1 = convolve_separable(in, terms[0].kx, terms[0].ky, terms[0].kz);
  const Grid3d t2 = convolve_separable(in, terms[1].kx, terms[1].ky, terms[1].kz);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(out[i], 1.0 + 0.5 * (t1[i] + t2[i]), 1e-12);
  }
}

TEST(SeparableConv, KernelWiderThanGridFoldsPeriodically) {
  // A kernel whose cutoff reaches beyond the period must accumulate the
  // periodic images, equivalent to convolving with the folded kernel.
  const std::size_t n = 4;
  Grid3d in(n, 1, 1);
  in.at(0, 0, 0) = 1.0;
  Kernel1d k;
  k.cutoff = 3;  // 7 taps on a period of 4: taps -3 and +1 alias
  k.taps = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
  Grid3d out(in.dims());
  convolve_axis(in, k, ConvAxis::kX, out);
  // out[n] = sum_m k[m] delta((n - m) mod 4 == 0) = sum of taps with m ≡ n.
  EXPECT_NEAR(out.at(0, 0, 0), 0.4, 1e-15);              // m = 0
  EXPECT_NEAR(out.at(1, 0, 0), 0.5 + 0.1, 1e-15);        // m = 1, m = -3
  EXPECT_NEAR(out.at(2, 0, 0), 0.6 + 0.2, 1e-15);        // m = 2, m = -2
  EXPECT_NEAR(out.at(3, 0, 0), 0.7 + 0.3, 1e-15);        // m = 3, m = -1
}

TEST(SeparableConv, RejectsInPlaceAndMismatch) {
  Grid3d g(4, 4, 4);
  Kernel1d k = gaussian_kernel(1, 1.0);
  EXPECT_THROW(convolve_axis(g, k, ConvAxis::kX, g), std::invalid_argument);
  Grid3d other(4, 4, 8);
  EXPECT_THROW(convolve_axis(g, k, ConvAxis::kX, other), std::invalid_argument);
}

TEST(Transfer, RestrictionPreservesTotalCharge) {
  // Per axis the J coefficients sum to 2 and downsampling halves the point
  // count, so the grid sum (total charge) is preserved in 3D: (2/2)^3 = 1...
  // more precisely sum(restrict(Q)) = sum_m sum_k J_k Q_{2m+k} = sum(Q)
  // since each fine point is hit by J taps summing to 1 per parity class.
  for (const int p : {2, 4, 6}) {
    const Grid3d fine = random_grid({8, 8, 8}, 10 + static_cast<std::uint64_t>(p));
    const Grid3d coarse = restrict_grid(fine, p);
    EXPECT_EQ(coarse.dims().nx, 4u);
    EXPECT_NEAR(coarse.sum(), fine.sum(), 1e-10) << "p=" << p;
  }
}

TEST(Transfer, RestrictionOfConstantScalesByEight) {
  // Each coarse basis function aggregates 2 fine cells per axis (the J
  // coefficients sum to 2), so a uniform charge density restricts to 2^3
  // times the per-point value — total charge is what is conserved.
  Grid3d fine(8, 8, 8);
  fine.fill(1.0);
  const Grid3d coarse = restrict_grid(fine, 6);
  for (std::size_t i = 0; i < coarse.size(); ++i) EXPECT_NEAR(coarse[i], 8.0, 1e-12);
}

TEST(Transfer, ProlongationOfConstantIsConstant) {
  Grid3d coarse(4, 4, 4);
  coarse.fill(2.5);
  const Grid3d fine = prolong_grid(coarse, 6);
  EXPECT_EQ(fine.dims().nx, 8u);
  for (std::size_t i = 0; i < fine.size(); ++i) EXPECT_NEAR(fine[i], 2.5, 1e-12);
}

TEST(Transfer, RestrictionAndProlongationAreAdjoint) {
  // <restrict(a), b>_coarse == <a, prolong(b)>_fine for all grids a, b.
  for (const int p : {2, 4, 6, 8}) {
    const Grid3d a = random_grid({8, 8, 8}, 100 + static_cast<std::uint64_t>(p));
    const Grid3d b = random_grid({4, 4, 4}, 200 + static_cast<std::uint64_t>(p));
    const Grid3d ra = restrict_grid(a, p);
    const Grid3d pb = prolong_grid(b, p);
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) lhs += ra[i] * b[i];
    for (std::size_t i = 0; i < a.size(); ++i) rhs += a[i] * pb[i];
    EXPECT_NEAR(lhs, rhs, 1e-10) << "p=" << p;
  }
}

TEST(Transfer, NonCubicGridsSupported) {
  const Grid3d fine = random_grid({8, 4, 16}, 42);
  const Grid3d coarse = restrict_grid(fine, 4);
  EXPECT_EQ(coarse.dims().nx, 4u);
  EXPECT_EQ(coarse.dims().ny, 2u);
  EXPECT_EQ(coarse.dims().nz, 8u);
  const Grid3d back = prolong_grid(coarse, 4);
  EXPECT_EQ(back.dims().nx, 8u);
  EXPECT_EQ(back.dims().ny, 4u);
  EXPECT_EQ(back.dims().nz, 16u);
}

TEST(Transfer, RejectsOddExtents) {
  const Grid3d fine = random_grid({6, 6, 7}, 1);
  EXPECT_THROW(restrict_grid(fine, 4), std::invalid_argument);
}

}  // namespace
}  // namespace tme
