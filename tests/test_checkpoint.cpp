// Checkpoint write/restore (CRC-validated, bitwise resume) and the numerical
// guardrail policies.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ewald/splitting.hpp"
#include "md/checkpoint.hpp"
#include "md/forcefield.hpp"
#include "md/guardrail.hpp"
#include "md/integrator.hpp"
#include "md/water_box.hpp"
#include "util/crc32.hpp"
#include "util/io_shim.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

// --- CRC-32 ------------------------------------------------------------------

TEST(Crc32, MatchesTheStandardTestVector) {
  const char digits[] = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
}

TEST(Crc32, IncrementalUpdateEqualsOneShot) {
  const char digits[] = "123456789";
  std::uint32_t crc = 0;
  crc = crc32_update(crc, digits, 4);
  crc = crc32_update(crc, digits + 4, 5);
  EXPECT_EQ(crc, 0xCBF43926u);
}

// --- checkpoint I/O ----------------------------------------------------------

ParticleSystem random_state(std::size_t n, std::uint64_t seed) {
  ParticleSystem sys;
  sys.box.lengths = {2.5, 3.0, 3.5};
  sys.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, 2.5), rng.uniform(0.0, 3.0),
                        rng.uniform(0.0, 3.5)};
    sys.velocities[i] = {rng.normal(), rng.normal(), rng.normal()};
    sys.forces[i] = {rng.normal(), rng.normal(), rng.normal()};
    sys.masses[i] = rng.uniform(1.0, 16.0);
    sys.charges[i] = rng.uniform(-1.0, 1.0);
  }
  return sys;
}

void expect_bitwise_equal(const ParticleSystem& a, const ParticleSystem& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.box.lengths.x, b.box.lengths.x);
  EXPECT_EQ(a.box.lengths.y, b.box.lengths.y);
  EXPECT_EQ(a.box.lengths.z, b.box.lengths.z);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(a.positions[i][k], b.positions[i][k]) << "particle " << i;
      EXPECT_EQ(a.velocities[i][k], b.velocities[i][k]) << "particle " << i;
      EXPECT_EQ(a.forces[i][k], b.forces[i][k]) << "particle " << i;
    }
    EXPECT_EQ(a.masses[i], b.masses[i]);
    EXPECT_EQ(a.charges[i], b.charges[i]);
  }
}

class CheckpointTest : public ::testing::Test {
 protected:
  std::string path(const char* name) const {
    return ::testing::TempDir() + name;
  }
};

TEST_F(CheckpointTest, RoundTripIsBitwiseExact) {
  const ParticleSystem sys = random_state(64, 9);
  const std::string file = path("roundtrip.ckpt");
  write_checkpoint(file, sys, 1234);
  const Checkpoint ckpt = read_checkpoint(file);
  EXPECT_EQ(ckpt.step, 1234u);
  expect_bitwise_equal(ckpt.system, sys);
  std::remove(file.c_str());
}

TEST_F(CheckpointTest, CorruptedByteIsRejectedByCrc) {
  const ParticleSystem sys = random_state(16, 10);
  const std::string file = path("corrupt.ckpt");
  write_checkpoint(file, sys, 7);

  std::vector<char> bytes;
  {
    std::ifstream in(file, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(read_checkpoint(file), std::runtime_error);
  std::remove(file.c_str());
}

TEST_F(CheckpointTest, TruncatedFileIsRejected) {
  const ParticleSystem sys = random_state(16, 11);
  const std::string file = path("truncated.ckpt");
  write_checkpoint(file, sys, 7);

  std::vector<char> bytes;
  {
    std::ifstream in(file, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  EXPECT_THROW(read_checkpoint(file), std::runtime_error);
  std::remove(file.c_str());
}

TEST_F(CheckpointTest, ForgedParticleCountIsRejectedBeforeAllocation) {
  const ParticleSystem sys = random_state(16, 21);
  const std::string file = path("forged.ckpt");

  // Forge the declared particle count *and* recompute the trailing CRC so
  // the forgery passes the integrity check — the size validation must still
  // reject it before any allocation is sized from the bogus count.
  auto forge = [&](std::uint64_t declared_n) {
    write_checkpoint(file, sys, 7);
    std::vector<unsigned char> bytes;
    {
      std::ifstream in(file, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    // Layout: magic(8) version(4) step(8) n(8) ... crc(4).
    constexpr std::size_t kCountOffset = 8 + 4 + 8;
    std::memcpy(bytes.data() + kCountOffset, &declared_n, sizeof(declared_n));
    const std::uint32_t crc = crc32(bytes.data(), bytes.size() - 4);
    std::memcpy(bytes.data() + bytes.size() - 4, &crc, sizeof(crc));
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  };

  forge(std::uint64_t{1} << 40);  // would be a multi-TB allocation
  EXPECT_THROW(read_checkpoint(file), std::runtime_error);
  forge(15);  // undersized: payload no longer matches the count
  EXPECT_THROW(read_checkpoint(file), std::runtime_error);
  forge(16);  // control: the forgery helper round-trips an honest count
  EXPECT_NO_THROW(read_checkpoint(file));
  std::remove(file.c_str());
}

TEST_F(CheckpointTest, NonCheckpointFileIsRejected) {
  const std::string file = path("garbage.ckpt");
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out << "this is not a checkpoint at all, but it is long enough to parse";
  }
  EXPECT_THROW(read_checkpoint(file), std::runtime_error);
  EXPECT_THROW(read_checkpoint(path("does-not-exist.ckpt")), std::runtime_error);
  std::remove(file.c_str());
}

// --- typed checkpoint faults -------------------------------------------------

CheckpointFault fault_of(const std::string& file) {
  try {
    (void)read_checkpoint(file);
  } catch (const CheckpointError& e) {
    return e.fault();
  }
  ADD_FAILURE() << file << " unexpectedly read back cleanly";
  return CheckpointFault::kIoError;
}

TEST_F(CheckpointTest, EveryRejectionCarriesItsFaultKind) {
  const ParticleSystem sys = random_state(16, 31);
  const std::string file = path("typed.ckpt");

  EXPECT_EQ(fault_of(path("typed-missing.ckpt")), CheckpointFault::kMissingFile);

  auto rewrite = [&](const std::vector<unsigned char>& bytes) {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  };
  auto read_bytes = [&]() {
    std::ifstream in(file, std::ios::binary);
    return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>());
  };

  write_checkpoint(file, sys, 7);
  std::vector<unsigned char> good = read_bytes();

  std::vector<unsigned char> torn(good.begin(), good.begin() + 10);
  rewrite(torn);
  EXPECT_EQ(fault_of(file), CheckpointFault::kTruncated);

  std::vector<unsigned char> flipped = good;
  flipped[flipped.size() / 2] ^= 0x01;
  rewrite(flipped);
  EXPECT_EQ(fault_of(file), CheckpointFault::kCrcMismatch);

  // Forgeries that re-seal the CRC: bad magic, bad version, bad length.
  auto reseal = [](std::vector<unsigned char> bytes) {
    const std::uint32_t crc = crc32(bytes.data(), bytes.size() - 4);
    std::memcpy(bytes.data() + bytes.size() - 4, &crc, sizeof(crc));
    return bytes;
  };
  std::vector<unsigned char> wrong_magic = good;
  wrong_magic[0] ^= 0xFF;
  rewrite(reseal(wrong_magic));
  EXPECT_EQ(fault_of(file), CheckpointFault::kBadMagic);

  std::vector<unsigned char> wrong_version = good;
  wrong_version[8] = 0x7F;  // version lives right after the 8-byte magic
  rewrite(reseal(wrong_version));
  EXPECT_EQ(fault_of(file), CheckpointFault::kBadVersion);

  std::vector<unsigned char> wrong_count = good;
  const std::uint64_t forged_n = 15;
  std::memcpy(wrong_count.data() + 8 + 4 + 8, &forged_n, sizeof(forged_n));
  rewrite(reseal(wrong_count));
  EXPECT_EQ(fault_of(file), CheckpointFault::kBadLength);

  EXPECT_STREQ(to_string(CheckpointFault::kCrcMismatch), "crc-mismatch");
  std::remove(file.c_str());
}

// --- rotating generations + partial-write resume ------------------------------

TEST_F(CheckpointTest, RotationKeepsOlderGenerationsReadable) {
  const std::string file = path("rotating.ckpt");
  const ParticleSystem first = random_state(16, 41);
  const ParticleSystem second = random_state(16, 42);

  write_checkpoint_rotating(file, first, 10, 2);
  write_checkpoint_rotating(file, second, 20, 2);

  std::string used;
  const Checkpoint newest = read_latest_checkpoint(file, 2, &used);
  EXPECT_EQ(newest.step, 20u);
  EXPECT_EQ(used, file);
  expect_bitwise_equal(newest.system, second);

  const Checkpoint older = read_checkpoint(file + ".1");
  EXPECT_EQ(older.step, 10u);
  expect_bitwise_equal(older.system, first);

  std::remove(file.c_str());
  std::remove((file + ".1").c_str());
}

TEST_F(CheckpointTest, PartialWriteFallsBackToThePreviousGeneration) {
  const std::string file = path("torn.ckpt");
  const ParticleSystem first = random_state(16, 43);
  const ParticleSystem second = random_state(16, 44);

  write_checkpoint_rotating(file, first, 10, 2);
  write_checkpoint_rotating(file, second, 20, 2);

  // Simulate a crash mid-write of the newest generation: keep only a prefix.
  {
    std::ifstream in(file, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  std::string used;
  const Checkpoint resumed = read_latest_checkpoint(file, 2, &used);
  EXPECT_EQ(resumed.step, 10u);  // the previous generation carried the run
  EXPECT_EQ(used, file + ".1");
  expect_bitwise_equal(resumed.system, first);

  // With every generation damaged, the NEWEST file's error is what surfaces.
  {
    std::ofstream out(file + ".1", std::ios::binary | std::ios::trunc);
    out << "xx";
  }
  try {
    (void)read_latest_checkpoint(file, 2);
    ADD_FAILURE() << "all-damaged read unexpectedly succeeded";
  } catch (const CheckpointError& e) {
    // Gen 0's torn prefix still clears the minimum-size check, so it dies at
    // the CRC — and that newest-generation fault is the one reported.
    EXPECT_EQ(e.fault(), CheckpointFault::kCrcMismatch);
  }

  std::remove(file.c_str());
  std::remove((file + ".1").c_str());
}

// --- injected IO faults (util/io_shim) ---------------------------------------

TEST_F(CheckpointTest, EnospcMidWriteIsTypedAndLeavesNoTemp) {
  const ParticleSystem sys = random_state(32, 50);
  const std::string file = path("enospc.ckpt");
  io::IoFaultPlan plan;
  plan.path_substring = "enospc.ckpt";
  plan.enospc_after_bytes = 100;  // the payload is ~3 KB: fails mid-write
  io::ScopedIoFaults armed(plan);
  try {
    write_checkpoint(file, sys, 1);
    ADD_FAILURE() << "ENOSPC write unexpectedly succeeded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kNoSpace);
  }
  // The temp file was unlinked and nothing was renamed into place.
  EXPECT_FALSE(std::ifstream(file + ".tmp").good());
  EXPECT_FALSE(std::ifstream(file).good());
  EXPECT_GE(io::IoShim::instance().stats().injected_enospc, 1u);
}

TEST_F(CheckpointTest, EnospcTornWriteFallsBackToOlderGeneration) {
  const std::string file = path("enospc_rot.ckpt");
  const ParticleSystem first = random_state(16, 51);
  const ParticleSystem second = random_state(16, 52);
  write_checkpoint_rotating(file, first, 10, 2);

  {
    io::IoFaultPlan plan;
    plan.path_substring = "enospc_rot.ckpt";
    plan.enospc_after_bytes = 64;
    io::ScopedIoFaults armed(plan);
    try {
      write_checkpoint_rotating(file, second, 20, 2);
      ADD_FAILURE() << "ENOSPC rotating write unexpectedly succeeded";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.fault(), CheckpointFault::kNoSpace);
    }
  }

  // The refused write already rotated step 10 down to .1; the fallback chain
  // still resumes from it bitwise.
  std::string used;
  const Checkpoint resumed = read_latest_checkpoint(file, 2, &used);
  EXPECT_EQ(resumed.step, 10u);
  EXPECT_EQ(used, file + ".1");
  expect_bitwise_equal(resumed.system, first);
  std::remove((file + ".1").c_str());
}

TEST_F(CheckpointTest, FsyncFailureIsTypedIoErrorAndLeavesOldState) {
  const std::string file = path("fsync.ckpt");
  const ParticleSystem first = random_state(16, 53);
  write_checkpoint(file, first, 5);

  {
    io::IoFaultPlan plan;
    plan.path_substring = "fsync.ckpt";
    plan.fail_fsync = true;
    io::ScopedIoFaults armed(plan);
    try {
      write_checkpoint(file, random_state(16, 54), 6);
      ADD_FAILURE() << "fsync-failure write unexpectedly succeeded";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.fault(), CheckpointFault::kIoError);
    }
  }

  // The unsynced temp never replaced the previous durable state.
  const Checkpoint kept = read_checkpoint(file);
  EXPECT_EQ(kept.step, 5u);
  expect_bitwise_equal(kept.system, first);
  EXPECT_GE(io::IoShim::instance().stats().injected_fsync_failures, 1u);
  std::remove(file.c_str());
}

TEST_F(CheckpointTest, OpenFailureIsTypedIoError) {
  io::IoFaultPlan plan;
  plan.path_substring = "openfail.ckpt";
  plan.fail_open = true;
  io::ScopedIoFaults armed(plan);
  try {
    write_checkpoint(path("openfail.ckpt"), random_state(8, 55), 1);
    ADD_FAILURE() << "open-failure write unexpectedly succeeded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kIoError);
  }
}

TEST_F(CheckpointTest, EintrStormAndShortWritesAreRetriedToCompletion) {
  const ParticleSystem sys = random_state(48, 56);
  const std::string file = path("eintr.ckpt");
  io::IoShim::instance().reset_stats();
  {
    io::IoFaultPlan plan;
    plan.path_substring = "eintr.ckpt";
    plan.short_writes = true;
    plan.eintr_every = 2;  // every other write/fsync EINTRs once
    io::ScopedIoFaults armed(plan);
    write_checkpoint(file, sys, 99);  // must succeed despite the storm
  }
  const io::IoStats stats = io::IoShim::instance().stats();
  EXPECT_GE(stats.injected_eintr, 1u);
  EXPECT_GE(stats.injected_short_writes, 2u);
  const Checkpoint ckpt = read_checkpoint(file);
  EXPECT_EQ(ckpt.step, 99u);
  expect_bitwise_equal(ckpt.system, sys);  // bitwise despite retries
  std::remove(file.c_str());
}

TEST_F(CheckpointTest, AllocRefusalIsTypedResourceAndFallsBack) {
  const std::string file = path("alloc.ckpt");
  const ParticleSystem first = random_state(16, 57);
  const ParticleSystem second = random_state(16, 58);
  write_checkpoint_rotating(file, first, 10, 2);
  write_checkpoint_rotating(file, second, 20, 2);

  io::IoFaultPlan plan;
  plan.fail_allocs = 2;  // the next two guarded restore sizings fail
  io::ScopedIoFaults armed(plan);

  // Direct read: the refusal surfaces as the typed kResource fault.
  try {
    (void)read_checkpoint(file);
    ADD_FAILURE() << "alloc-refused read unexpectedly succeeded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kResource);
  }

  // Generational read: the second refusal burns the newest file, the budget
  // is spent, and the older generation restores bitwise.
  std::string used;
  const Checkpoint resumed = read_latest_checkpoint(file, 2, &used);
  EXPECT_EQ(resumed.step, 10u);
  EXPECT_EQ(used, file + ".1");
  expect_bitwise_equal(resumed.system, first);

  std::remove(file.c_str());
  std::remove((file + ".1").c_str());
}

TEST_F(CheckpointTest, ShimPathFilterLeavesOtherFilesAlone) {
  io::IoFaultPlan plan;
  plan.path_substring = "only_this.ckpt";
  plan.fail_fsync = true;
  io::ScopedIoFaults armed(plan);
  const ParticleSystem sys = random_state(8, 59);
  const std::string file = path("unrelated.ckpt");
  write_checkpoint(file, sys, 3);  // untouched by the armed plan
  const Checkpoint ckpt = read_checkpoint(file);
  expect_bitwise_equal(ckpt.system, sys);
  std::remove(file.c_str());
}

// --- bitwise resume of a real MD run ----------------------------------------

struct MdSetup {
  WaterBox wb;
  ForceField ff;
  VelocityVerlet integrator;
};

MdSetup make_md() {
  WaterBoxSpec spec;
  spec.molecules = 125;
  spec.temperature = 300.0;
  WaterBox wb = build_water_box(spec);
  const double r_cut = 0.7;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;
  SpmeParams sp;
  sp.alpha = alpha;
  sp.grid = {16, 16, 16};
  ForceField ff(sr, make_spme_solver(wb.system.box, sp));
  VelocityVerlet integrator(wb.topology, wb.system, IntegratorParams{});
  return {std::move(wb), std::move(ff), std::move(integrator)};
}

TEST_F(CheckpointTest, MidRunKillAndRestoreResumesBitwiseIdentically) {
  const std::string file = path("midrun.ckpt");

  // Uninterrupted reference: prime, 5 steps, checkpoint, 5 more steps.
  MdSetup md = make_md();
  md.integrator.prime(md.wb.system, md.wb.topology, md.ff);
  for (int s = 0; s < 5; ++s) md.integrator.step(md.wb.system, md.wb.topology, md.ff);
  write_checkpoint(file, md.wb.system, 5);
  for (int s = 0; s < 5; ++s) md.integrator.step(md.wb.system, md.wb.topology, md.ff);

  // "Killed" run: restore the checkpoint into a fresh system and replay the
  // remaining 5 steps.  No re-prime — the checkpoint carries the forces.
  const Checkpoint ckpt = read_checkpoint(file);
  EXPECT_EQ(ckpt.step, 5u);
  ParticleSystem resumed = ckpt.system;
  for (int s = 0; s < 5; ++s) md.integrator.step(resumed, md.wb.topology, md.ff);

  expect_bitwise_equal(resumed, md.wb.system);
  std::remove(file.c_str());
}

// --- guardrail ---------------------------------------------------------------

TEST(Guardrail, PolicyEnvParsing) {
  setenv("TME_GUARDRAIL", "abort", 1);
  EXPECT_EQ(guardrail_policy_from_env(), GuardrailPolicy::kAbort);
  setenv("TME_GUARDRAIL", "recover", 1);
  EXPECT_EQ(guardrail_policy_from_env(), GuardrailPolicy::kRecover);
  setenv("TME_GUARDRAIL", "recompute", 1);
  EXPECT_EQ(guardrail_policy_from_env(), GuardrailPolicy::kRecompute);
  setenv("TME_GUARDRAIL", "warn", 1);
  EXPECT_EQ(guardrail_policy_from_env(GuardrailPolicy::kAbort),
            GuardrailPolicy::kWarn);
  setenv("TME_GUARDRAIL", "bogus", 1);
  EXPECT_EQ(guardrail_policy_from_env(GuardrailPolicy::kRecover),
            GuardrailPolicy::kRecover);
  unsetenv("TME_GUARDRAIL");
  EXPECT_EQ(guardrail_policy_from_env(), GuardrailPolicy::kWarn);
}

TEST(Guardrail, FlagsNonFiniteStateAndForceBlowups) {
  ParticleSystem sys = random_state(8, 12);
  Guardrail guard{GuardrailConfig{}};
  StepReport report{};
  EXPECT_TRUE(guard.check(sys, report, 1).empty());

  sys.forces[3].y = std::numeric_limits<double>::quiet_NaN();
  sys.positions[1].x = std::numeric_limits<double>::infinity();
  const auto bad = guard.check(sys, report, 2);
  EXPECT_EQ(bad.size(), 2u);
  EXPECT_EQ(guard.violations().size(), 2u);

  ParticleSystem blowup = random_state(8, 13);
  blowup.forces[0] = {1e9, 0.0, 0.0};
  Guardrail guard2{GuardrailConfig{}};
  EXPECT_EQ(guard2.check(blowup, report, 1).size(), 1u);
}

TEST(Guardrail, FlagsFixedPointOverflow) {
  ParticleSystem sys = random_state(8, 14);
  GuardrailConfig cfg;
  cfg.check_fixed_overflow = true;
  cfg.fixed_format = FixedFormat{16, 8};  // tiny: max ~127.996
  sys.forces[2] = {500.0, 0.0, 0.0};      // fits the default max_force, not Q8.8
  Guardrail guard{cfg};
  const auto bad = guard.check(sys, StepReport{}, 1);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_NE(bad[0].what.find("saturate"), std::string::npos);
}

TEST(Guardrail, FlagsEnergyDrift) {
  const ParticleSystem sys = random_state(8, 15);
  GuardrailConfig cfg;
  cfg.energy_drift_tol = 0.01;
  Guardrail guard{cfg};
  StepReport report{};
  report.kinetic = 100.0;
  EXPECT_TRUE(guard.check(sys, report, 1).empty());  // establishes reference
  report.kinetic = 100.5;
  EXPECT_TRUE(guard.check(sys, report, 2).empty());  // within 1%
  report.kinetic = 110.0;
  EXPECT_EQ(guard.check(sys, report, 3).size(), 1u);  // 10% drift
}

// --- guarded run driver ------------------------------------------------------

TEST(GuardedRun, HealthyRunCompletesAndCheckpoints) {
  MdSetup md = make_md();
  GuardedRunParams params;
  params.checkpoint_path = ::testing::TempDir() + "guarded-healthy.ckpt";
  params.checkpoint_interval = 2;
  const GuardedRunResult result =
      run_guarded(md.wb.system, md.wb.topology, md.ff, md.integrator, 6, params);
  EXPECT_EQ(result.steps_completed, 6u);
  EXPECT_EQ(result.recoveries, 0);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.violation_count, 0u);
  const Checkpoint last = read_checkpoint(params.checkpoint_path);
  EXPECT_EQ(last.step, 6u);
  std::remove(params.checkpoint_path.c_str());
}

TEST(GuardedRun, AbortPolicyStopsOnInjectedNan) {
  MdSetup md = make_md();
  GuardedRunParams params;
  params.guardrail.policy = GuardrailPolicy::kAbort;
  params.fault_hook = [](std::uint64_t step, ParticleSystem& sys) {
    if (step == 4) {
      sys.velocities[0].x = std::numeric_limits<double>::quiet_NaN();
    }
  };
  const GuardedRunResult result =
      run_guarded(md.wb.system, md.wb.topology, md.ff, md.integrator, 10, params);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.steps_completed, 3u);
  EXPECT_GT(result.violation_count, 0u);
}

TEST(GuardedRun, RecoverPolicyRollsBackToCheckpointAndFinishes) {
  MdSetup md = make_md();
  GuardedRunParams params;
  params.guardrail.policy = GuardrailPolicy::kRecover;
  params.checkpoint_path = ::testing::TempDir() + "guarded-recover.ckpt";
  params.checkpoint_interval = 2;
  bool injected = false;
  params.fault_hook = [&injected](std::uint64_t step, ParticleSystem& sys) {
    if (step == 5 && !injected) {
      injected = true;  // transient fault: one corrupted force evaluation
      sys.positions[2].z = std::numeric_limits<double>::quiet_NaN();
    }
  };
  const GuardedRunResult result =
      run_guarded(md.wb.system, md.wb.topology, md.ff, md.integrator, 8, params);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.steps_completed, 8u);
  EXPECT_EQ(result.recoveries, 1);
  EXPECT_GT(result.violation_count, 0u);
  std::remove(params.checkpoint_path.c_str());

  // The recovered trajectory matches an undisturbed one bitwise: the
  // rollback restored the exact step-4 state.
  MdSetup clean = make_md();
  GuardedRunParams quiet;
  const GuardedRunResult clean_result = run_guarded(
      clean.wb.system, clean.wb.topology, clean.ff, clean.integrator, 8, quiet);
  EXPECT_EQ(clean_result.steps_completed, 8u);
  expect_bitwise_equal(md.wb.system, clean.wb.system);
}

TEST(GuardedRun, RecoverWithoutCheckpointPathAborts) {
  MdSetup md = make_md();
  GuardedRunParams params;
  params.guardrail.policy = GuardrailPolicy::kRecover;  // but no path set
  params.fault_hook = [](std::uint64_t step, ParticleSystem& sys) {
    if (step == 2) sys.velocities[0].x = std::numeric_limits<double>::quiet_NaN();
  };
  const GuardedRunResult result =
      run_guarded(md.wb.system, md.wb.topology, md.ff, md.integrator, 5, params);
  EXPECT_TRUE(result.aborted);
}

TEST(GuardedRun, RecomputePolicyRetriesTransientFaultInPlace) {
  MdSetup md = make_md();
  GuardedRunParams params;
  params.guardrail.policy = GuardrailPolicy::kRecompute;
  params.watchdog_timeout_s = 30.0;  // generous: must never fire here
  bool injected = false;
  params.fault_hook = [&injected](std::uint64_t step, ParticleSystem& sys) {
    if (step == 4 && !injected) {
      injected = true;  // transient upset: one corrupted step input
      sys.velocities[1].y = std::numeric_limits<double>::quiet_NaN();
    }
  };
  const GuardedRunResult result =
      run_guarded(md.wb.system, md.wb.topology, md.ff, md.integrator, 8, params);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.steps_completed, 8u);
  EXPECT_EQ(result.step_recomputes, 1u);
  EXPECT_EQ(result.recoveries, 0);  // no rollback, no checkpoint needed
  EXPECT_GT(result.violation_count, 0u);
  EXPECT_FALSE(result.watchdog_fired);

  // The localized recompute restored the exact pre-step state, so the whole
  // trajectory is bitwise identical to an undisturbed run.
  MdSetup clean = make_md();
  GuardedRunParams quiet;
  const GuardedRunResult clean_result = run_guarded(
      clean.wb.system, clean.wb.topology, clean.ff, clean.integrator, 8, quiet);
  EXPECT_EQ(clean_result.steps_completed, 8u);
  expect_bitwise_equal(md.wb.system, clean.wb.system);
}

TEST(GuardedRun, RecomputeBudgetExhaustionEscalatesToRollback) {
  MdSetup md = make_md();
  GuardedRunParams params;
  params.guardrail.policy = GuardrailPolicy::kRecompute;
  params.max_step_recomputes = 0;  // force the escalation path
  params.checkpoint_path = ::testing::TempDir() + "guarded-escalate.ckpt";
  params.checkpoint_interval = 2;
  bool injected = false;
  params.fault_hook = [&injected](std::uint64_t step, ParticleSystem& sys) {
    if (step == 5 && !injected) {
      injected = true;
      sys.positions[0].x = std::numeric_limits<double>::quiet_NaN();
    }
  };
  const GuardedRunResult result =
      run_guarded(md.wb.system, md.wb.topology, md.ff, md.integrator, 8, params);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.steps_completed, 8u);
  EXPECT_EQ(result.step_recomputes, 0u);
  EXPECT_EQ(result.recoveries, 1);  // rung above recompute
  std::remove(params.checkpoint_path.c_str());

  // With no checkpoint to fall back on, the same exhaustion aborts.
  MdSetup bare = make_md();
  GuardedRunParams no_ckpt;
  no_ckpt.guardrail.policy = GuardrailPolicy::kRecompute;
  no_ckpt.max_step_recomputes = 0;
  no_ckpt.fault_hook = [](std::uint64_t step, ParticleSystem& sys) {
    if (step == 2) sys.forces[0].x = std::numeric_limits<double>::quiet_NaN();
  };
  const GuardedRunResult bare_result = run_guarded(
      bare.wb.system, bare.wb.topology, bare.ff, bare.integrator, 5, no_ckpt);
  EXPECT_TRUE(bare_result.aborted);
}

TEST(GuardedRun, PersistentFaultExhaustsRecoveryBudget) {
  MdSetup md = make_md();
  GuardedRunParams params;
  params.guardrail.policy = GuardrailPolicy::kRecover;
  params.checkpoint_path = ::testing::TempDir() + "guarded-persistent.ckpt";
  params.checkpoint_interval = 2;
  params.max_recoveries = 2;
  params.fault_hook = [](std::uint64_t step, ParticleSystem& sys) {
    // Deterministic fault that reappears after every rollback.
    if (step == 3) sys.forces[0].x = std::numeric_limits<double>::quiet_NaN();
  };
  const GuardedRunResult result =
      run_guarded(md.wb.system, md.wb.topology, md.ff, md.integrator, 6, params);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.recoveries, 2);
  std::remove(params.checkpoint_path.c_str());
}

}  // namespace
}  // namespace tme
