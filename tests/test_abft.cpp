// ABFT invariants, SDC injection, the guarded hardware pipeline's localized
// recovery, and the par-layer health monitor.
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/abft.hpp"
#include "core/tme.hpp"
#include "ewald/greens_function.hpp"
#include "grid/separable_conv.hpp"
#include "grid/transfer.hpp"
#include "hw/event_sim.hpp"
#include "hw/fault.hpp"
#include "hw/fpga_fft.hpp"
#include "hw/sdc_guard.hpp"
#include "hw/torus.hpp"
#include "par/decomposition.hpp"
#include "par/health.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tme::hw {
namespace {

// --- test fixtures -----------------------------------------------------------

struct TestSystem {
  Box box{{3.2, 3.2, 3.2}};
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem make_system(std::size_t n, std::uint64_t seed) {
  TestSystem sys;
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, 3.2), rng.uniform(0.0, 3.2),
                        rng.uniform(0.0, 3.2)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

Grid3d random_grid(GridDims dims, std::uint64_t seed) {
  Grid3d g(dims);
  Rng rng(seed);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = rng.uniform(-1.0, 1.0);
  return g;
}

TmeParams small_params() {
  TmeParams p;
  p.grid = {32, 32, 32};  // levels = 1 -> 16^3 top: the FPGA engine's geometry
  p.levels = 1;
  p.alpha = 3.0;
  p.grid_cutoff = 4;
  p.num_gaussians = 3;
  return p;
}

bool bitwise_equal(const CoulombResult& a, const CoulombResult& b) {
  if (a.energy != b.energy || a.energy_reciprocal != b.energy_reciprocal ||
      a.energy_self != b.energy_self || a.forces.size() != b.forces.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.forces.size(); ++i) {
    for (std::size_t k = 0; k < 3; ++k) {
      if (a.forces[i][k] != b.forces[i][k]) return false;
    }
  }
  return true;
}

// --- abft primitives ---------------------------------------------------------

TEST(AbftCheckSet, HonoursToleranceAndRejectsNonFinite) {
  abft::CheckSet checks(1.0);
  EXPECT_TRUE(checks.check("a", 1.0, 1.0 + 1e-9, 1e-8));
  EXPECT_FALSE(checks.check("a", 1.0, 1.01, 1e-8));
  EXPECT_FALSE(checks.check("a", 1.0, std::numeric_limits<double>::quiet_NaN(),
                            1e6));
  EXPECT_FALSE(
      checks.check("a", 1.0, std::numeric_limits<double>::infinity(), 1e6));
  EXPECT_EQ(checks.violations().size(), 3u);
  EXPECT_EQ(checks.checks_run(), 4u);

  // The scale knob loosens every tolerance together.
  abft::CheckSet loose(1e7);
  EXPECT_TRUE(loose.check("a", 1.0, 1.01, 1e-8));
}

TEST(AbftPrimitives, TapSumAndTensorGain) {
  Kernel1d k;
  k.cutoff = 1;
  k.taps = {0.25, 0.5, 0.25};
  EXPECT_DOUBLE_EQ(abft::tap_sum(k), 1.0);
  SeparableTerm term{k, k, k};
  EXPECT_DOUBLE_EQ(abft::tensor_gain({term, term}), 2.0);
}

TEST(AbftTransfer, RestrictionPreservesAndProlongationScalesTotals) {
  for (const std::size_t n : {8u, 16u, 32u}) {
    const Grid3d fine = random_grid({n, n, n}, 100 + n);
    const Grid3d coarse = restrict_grid(fine, 6);
    const double tol = abft::rounding_tolerance(fine.size(), fine.size(), 0x1p-52);
    EXPECT_NEAR(abft::grid_total(coarse), abft::grid_total(fine), tol)
        << "restriction total at n=" << n;

    const Grid3d coarse2 = random_grid({n / 2, n / 2, n / 2}, 200 + n);
    const Grid3d up = prolong_grid(coarse2, 6);
    EXPECT_NEAR(abft::grid_total(up), 8.0 * abft::grid_total(coarse2), tol)
        << "prolongation total at n=" << n;
  }
}

TEST(AbftConvChecksum, PassesCleanAndLocalisesACorruptedLine) {
  const GridDims dims{16, 16, 16};
  const Grid3d in = random_grid(dims, 7);
  Kernel1d k;
  k.cutoff = 3;
  k.taps = {0.1, -0.2, 0.4, 0.9, 0.4, -0.2, 0.1};

  for (int axis = 0; axis < 3; ++axis) {
    Grid3d out(dims);
    convolve_axis(in, k, static_cast<ConvAxis>(axis), out);
    abft::CheckSet clean(1.0);
    const double tol = abft::rounding_tolerance(16 * 7, 2.3, 0x1p-52);
    EXPECT_EQ(abft::check_conv_axis_lines(in, out, k, axis, tol, clean), 0u);

    // One corrupted cell must flag exactly its own line.
    out.at(5, 6, 7) += 1e-3;
    abft::CheckSet dirty(1.0);
    EXPECT_EQ(abft::check_conv_axis_lines(in, out, k, axis, tol, dirty), 1u);
    ASSERT_EQ(dirty.violations().size(), 1u);
    const int line = dirty.violations()[0].index;
    const int expected_line = axis == 0   ? 7 * 16 + 6
                              : axis == 1 ? 7 * 16 + 5
                                          : 6 * 16 + 5;
    EXPECT_EQ(line, expected_line);
  }
}

// --- SDC injection -----------------------------------------------------------

TEST(SdcInjection, RateZeroIsPassthroughAndSeededRateIsDeterministic) {
  FaultConfig off;
  FaultInjector clean(off);
  EXPECT_FALSE(clean.sdc_enabled());
  EXPECT_EQ(clean.sdc_fixed(12345, 32, SdcSite::kLruAccumulator, 1.0), 12345);
  EXPECT_EQ(clean.sdc_double(2.5, SdcSite::kGcuAccumulator), 2.5);
  EXPECT_EQ(clean.sdc_float(1.5f, SdcSite::kFpgaFft), 1.5f);
  EXPECT_EQ(clean.injected_sdc(), 0u);

  FaultConfig cfg;
  cfg.seed = 11;
  cfg.sdc_rate = 0.5;
  FaultInjector a(cfg), b(cfg);
  std::uint64_t flips_a = 0;
  for (int i = 0; i < 256; ++i) {
    const std::int64_t ra = a.sdc_fixed(1000, 32, SdcSite::kLruAccumulator, 1.0);
    const std::int64_t rb = b.sdc_fixed(1000, 32, SdcSite::kLruAccumulator, 1.0);
    EXPECT_EQ(ra, rb);  // same seed, same stream
    if (ra != 1000) ++flips_a;
  }
  EXPECT_GT(flips_a, 64u);
  EXPECT_LT(flips_a, 192u);
  EXPECT_EQ(a.injected_sdc(), flips_a);
  EXPECT_EQ(a.sdc_events().size(), flips_a);

  // Suspension (the recompute path) stops every draw.
  a.set_sdc_suspended(true);
  EXPECT_EQ(a.sdc_fixed(1000, 32, SdcSite::kLruAccumulator, 1.0), 1000);
  a.set_sdc_suspended(false);

  // Events carry the caller's stage context.
  a.clear_sdc_events();
  a.set_sdc_context(4, 107);
  FaultConfig always;
  always.sdc_rate = 1.0;
  FaultInjector hot(always);
  hot.set_sdc_context(4, 107);
  (void)hot.sdc_double(3.25, SdcSite::kGcuAccumulator);
  ASSERT_EQ(hot.sdc_events().size(), 1u);
  EXPECT_EQ(hot.sdc_events()[0].stage, 4);
  EXPECT_EQ(hot.sdc_events()[0].index, 107);
  EXPECT_EQ(hot.sdc_events()[0].site, SdcSite::kGcuAccumulator);
  EXPECT_NE(hot.sdc_events()[0].after, hot.sdc_events()[0].before);
}

TEST(SdcInjection, FpgaParsevalProbeCatchesSpectrumFlips) {
  // Fault-free: both Parseval sides hold in single precision.
  std::vector<float> charges(16 * 16 * 16);
  Rng rng(3);
  for (auto& c : charges) c = static_cast<float>(rng.uniform(-1.0, 1.0));
  Box box{{3.2, 3.2, 3.2}};
  const std::vector<double> green = spme_influence(box, {16, 16, 16}, 6, 1.5);

  FpgaAbftProbe probe;
  const std::vector<float> clean =
      fpga_top_level_convolve(charges, green, nullptr, &probe);
  const double tol_f =
      abft::rounding_tolerance(4096, probe.input_energy, 0x1p-23);
  const double tol_i =
      abft::rounding_tolerance(4096, probe.green_energy, 0x1p-23);
  EXPECT_NEAR(probe.forward_energy, probe.input_energy, tol_f);
  EXPECT_NEAR(probe.output_energy, probe.green_energy, tol_i);

  // Seeded flips: at least one side of at least one seed must break, and
  // every run is reproducible draw-for-draw.
  bool any_detected = false;
  for (std::uint64_t seed = 1; seed <= 8 && !any_detected; ++seed) {
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.sdc_rate = 2e-3;
    FaultInjector faults(cfg);
    FpgaAbftProbe dirty;
    (void)fpga_top_level_convolve(charges, green, &faults, &dirty);
    if (faults.injected_sdc() == 0) continue;
    const bool fwd_bad =
        !std::isfinite(dirty.forward_energy) ||
        std::abs(dirty.forward_energy - dirty.input_energy) >
            abft::rounding_tolerance(4096, dirty.input_energy, 0x1p-23);
    const bool inv_bad =
        !std::isfinite(dirty.output_energy) ||
        std::abs(dirty.output_energy - dirty.green_energy) >
            abft::rounding_tolerance(4096, dirty.green_energy, 0x1p-23);
    any_detected = fwd_bad || inv_bad;
  }
  EXPECT_TRUE(any_detected);
}

// --- guarded pipeline --------------------------------------------------------

TEST(GuardedTme, FaultFreeRunPassesEveryCheckAcrossPoolSizes) {
  const TestSystem sys = make_system(120, 21);
  for (const unsigned workers : {0u, 3u}) {
    ThreadPool pool(workers);
    // Two independent evaluations per pool exercise the pipeline under the
    // same concurrency the MD driver would use.
    std::vector<GuardedTmeReport> reports(2);
    parallel_for(pool, 0, reports.size(), [&](std::size_t i) {
      GuardedTmePipeline pipeline(sys.box, small_params(), GuardedTmeConfig{});
      (void)pipeline.compute(sys.positions, sys.charges, &reports[i]);
    });
    for (const GuardedTmeReport& rep : reports) {
      EXPECT_GT(rep.checks_run, 0u);
      EXPECT_EQ(rep.violations, 0u) << "workers=" << workers;
      EXPECT_EQ(rep.stage_recomputes, 0u);
      EXPECT_TRUE(rep.recovered);
    }
  }
}

TEST(GuardedTme, ChecksAreBitwiseNeutralAtRateZero) {
  const TestSystem sys = make_system(150, 22);
  FaultConfig off;  // sdc_rate = 0: the injector is attached but silent
  FaultInjector faults_on(off), faults_off(off);

  GuardedTmeConfig with_checks;
  with_checks.checks_enabled = true;
  GuardedTmePipeline guarded(sys.box, small_params(), with_checks, &faults_on);
  GuardedTmeReport rep;
  const CoulombResult a = guarded.compute(sys.positions, sys.charges, &rep);

  GuardedTmeConfig without;
  without.checks_enabled = false;
  GuardedTmePipeline bare(sys.box, small_params(), without, &faults_off);
  const CoulombResult b = bare.compute(sys.positions, sys.charges);

  EXPECT_EQ(rep.violations, 0u);
  EXPECT_TRUE(bitwise_equal(a, b));
}

TEST(GuardedTme, DetectsInjectedCorruptionAndRecomputesLocally) {
  const TestSystem sys = make_system(100, 23);

  // Fault-free reference from an identical pipeline.
  GuardedTmePipeline reference(sys.box, small_params(), GuardedTmeConfig{});
  const CoulombResult clean = reference.compute(sys.positions, sys.charges);

  // Scan seeds for a run where corruption was injected, detected, and fully
  // repaired by localized recompute — the restored result must be bitwise
  // identical to the fault-free evaluation (the recompute re-executes the
  // stage with injection suspended, so this holds by construction whenever
  // every significant flip was caught).
  bool found_detected = false;
  bool found_bitwise_restore = false;
  std::uint64_t total_events = 0;
  for (std::uint64_t seed = 1; seed <= 24 && !found_bitwise_restore; ++seed) {
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.sdc_rate = 5e-7;  // a handful of flips across ~1e6 draws
    FaultInjector faults(cfg);
    GuardedTmePipeline pipeline(sys.box, small_params(), GuardedTmeConfig{},
                                &faults);
    GuardedTmeReport rep;
    const CoulombResult result =
        pipeline.compute(sys.positions, sys.charges, &rep);
    total_events += faults.injected_sdc();
    if (rep.violations == 0) continue;
    found_detected = true;
    EXPECT_GT(faults.injected_sdc(), 0u);  // no false positives
    if (rep.recovered && rep.stage_recomputes > 0 &&
        bitwise_equal(result, clean)) {
      found_bitwise_restore = true;
    }
  }
  EXPECT_GT(total_events, 0u);
  EXPECT_TRUE(found_detected);
  EXPECT_TRUE(found_bitwise_restore);
}

TEST(GuardedTme, DetectionCoverageMeetsTheFloorWithZeroFalsePositives) {
  const TestSystem sys = make_system(80, 24);
  std::size_t significant_runs = 0;
  std::size_t detected_runs = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.sdc_rate = 1e-5;
    FaultInjector faults(cfg);
    GuardedTmePipeline pipeline(sys.box, small_params(), GuardedTmeConfig{},
                                &faults);
    GuardedTmeReport rep;
    (void)pipeline.compute(sys.positions, sys.charges, &rep);

    // "Significant" = the flip hit a stage with an exact conservation
    // checksum (charge assignment = 0, tensor convolution = 4; the FPGA
    // Parseval and BI envelope checks are documented partial detectors) and
    // moved the operand past the quantisation-noise floor every stage
    // tolerance must admit.
    bool significant = false;
    for (const SdcEvent& e : faults.sdc_events()) {
      if (e.stage != 0 && e.stage != 4) continue;
      const double delta = std::abs(e.after - e.before);
      if (!std::isfinite(e.after) || delta > 0.1) {
        significant = true;
        break;
      }
    }
    if (faults.injected_sdc() == 0) {
      EXPECT_EQ(rep.violations, 0u) << "false positive at seed " << seed;
      continue;
    }
    if (significant) {
      ++significant_runs;
      if (rep.violations > 0) ++detected_runs;
    }
  }
  ASSERT_GT(significant_runs, 0u);
  // Detection-coverage floor over runs with a significant injected event.
  EXPECT_GE(static_cast<double>(detected_runs),
            0.7 * static_cast<double>(significant_runs));

  // Zero false positives at rate 0 (the other half of the contract).
  FaultConfig off;
  FaultInjector quiet(off);
  GuardedTmePipeline pipeline(sys.box, small_params(), GuardedTmeConfig{},
                              &quiet);
  GuardedTmeReport rep;
  (void)pipeline.compute(sys.positions, sys.charges, &rep);
  EXPECT_EQ(rep.violations, 0u);
}

TEST(GuardedTme, ViolationCallbackNamesTheStage) {
  const TestSystem sys = make_system(80, 25);
  std::vector<std::pair<GuardedStage, int>> seen;
  bool any = false;
  for (std::uint64_t seed = 1; seed <= 24 && !any; ++seed) {
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.sdc_rate = 5e-6;
    FaultInjector faults(cfg);
    GuardedTmePipeline pipeline(sys.box, small_params(), GuardedTmeConfig{},
                                &faults);
    seen.clear();
    pipeline.set_violation_callback(
        [&seen](GuardedStage s, int index) { seen.emplace_back(s, index); });
    GuardedTmeReport rep;
    (void)pipeline.compute(sys.positions, sys.charges, &rep);
    any = !seen.empty();
    if (any) {
      EXPECT_GT(rep.violations, 0u);
    }
  }
  EXPECT_TRUE(any);
}

// --- event simulator heartbeats + stall horizon ------------------------------

TEST(EventSim, HeartbeatReportsProgressPerTask) {
  EventSimulator sim;
  const TaskId a = sim.add_task({"a", "GP", 1.0, {}, -1});
  sim.add_task({"b", "PP", 2.0, {a}, -1});
  std::vector<std::size_t> beats;
  sim.set_heartbeat([&beats](std::size_t done, std::size_t total, double t) {
    EXPECT_EQ(total, 2u);
    EXPECT_GE(t, 0.0);
    beats.push_back(done);
  });
  sim.run();
  ASSERT_EQ(beats.size(), 2u);
  EXPECT_EQ(beats[0], 1u);
  EXPECT_EQ(beats[1], 2u);
  EXPECT_FALSE(sim.stalled());
}

TEST(EventSim, StallHorizonStopsARetryStorm) {
  EventSimulator sim;
  sim.set_retry_limit(1000);
  // One task whose retries push the next task's start far past the horizon.
  TaskSpec storm{"storm", "NW", 1.0, {}, 0};
  storm.failures = 500;
  storm.retry_penalty = 1.0;
  const TaskId s = sim.add_task(storm);
  sim.add_task({"after", "NW", 1.0, {s}, 0});
  sim.set_stall_horizon(10.0);
  const auto schedule = sim.run();
  EXPECT_TRUE(sim.stalled());
  EXPECT_FALSE(schedule[1].completed);
  EXPECT_GE(sim.failed_tasks(), 1u);
  EXPECT_THROW(sim.set_stall_horizon(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tme::hw

// --- health monitor (par layer) ----------------------------------------------

namespace tme::par {
namespace {

TEST(HealthMonitor, PromotesRepeatedViolationsIntoQuarantine) {
  TorusTopology topo(2, 2, 2);
  FaultInjector faults;
  HealthMonitor monitor(topo, faults, HealthConfig{3});

  EXPECT_FALSE(monitor.report_violation(5));
  EXPECT_FALSE(monitor.report_violation(5));
  EXPECT_FALSE(monitor.quarantined(5));
  EXPECT_TRUE(monitor.report_violation(5));  // third strike
  EXPECT_TRUE(monitor.quarantined(5));
  EXPECT_TRUE(faults.node_dead(5));
  EXPECT_EQ(monitor.quarantine_count(), 1u);
  EXPECT_EQ(monitor.violations(5), 3u);

  // The rebuilt plan re-homes the node's blocks onto a survivor.
  ASSERT_NE(monitor.plan(), nullptr);
  EXPECT_NE(monitor.plan()->host(5), 5u);
  EXPECT_FALSE(faults.node_dead(monitor.plan()->host(5)));

  // Further reports keep counting but never re-quarantine.
  EXPECT_FALSE(monitor.report_violation(5));
  EXPECT_EQ(monitor.violations(5), 4u);
  EXPECT_EQ(monitor.quarantine_count(), 1u);
}

TEST(HealthMonitor, RefusesToKillTheLastSurvivor) {
  TorusTopology topo(1, 1, 1);
  FaultInjector faults;
  HealthMonitor monitor(topo, faults, HealthConfig{1});
  EXPECT_FALSE(monitor.report_violation(0));
  EXPECT_FALSE(monitor.quarantined(0));
  EXPECT_FALSE(faults.node_dead(0));
  EXPECT_EQ(monitor.refused_count(), 1u);
  EXPECT_THROW(HealthMonitor(topo, faults, HealthConfig{0}),
               std::invalid_argument);
}

TEST(HealthMonitor, AttributesConvLinesToOwningNodes) {
  TorusTopology topo(2, 2, 2);
  GridDecomposition decomp({16, 16, 16}, topo);
  // Axis 0 lines are flattened as line = gz * ny + gy; cell (0, 9, 12) lives
  // in the node block (0, 1, 1).
  const std::size_t node = attribute_conv_line(decomp, 0, 12 * 16 + 9);
  EXPECT_EQ(node, topo.index({0, 1, 1}));
  EXPECT_EQ(attribute_conv_line(decomp, 2, 0), topo.index({0, 0, 0}));
}

}  // namespace
}  // namespace tme::par
