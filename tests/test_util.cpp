#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/vec3.hpp"
#include "util/watchdog.hpp"

namespace tme {
namespace {

TEST(Vec3, BasicArithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-4.0, 0.5, 2.0};
  EXPECT_EQ((a + b).x, -3.0);
  EXPECT_EQ((a - b).y, 1.5);
  EXPECT_EQ((2.0 * a).z, 6.0);
  EXPECT_NEAR(dot(a, b), -4.0 + 1.0 + 6.0, 1e-15);
  EXPECT_NEAR(norm(Vec3{3.0, 4.0, 0.0}), 5.0, 1e-15);
}

TEST(Vec3, CrossProductIsOrthogonal) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-4.0, 0.5, 2.0};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(a, c), 0.0, 1e-12);
  EXPECT_NEAR(dot(b, c), 0.0, 1e-12);
}

TEST(Box, WrapPutsCoordinatesInBox) {
  const Box box{{2.0, 3.0, 4.0}};
  const Vec3 w = box.wrap({-0.5, 3.5, 9.0});
  EXPECT_NEAR(w.x, 1.5, 1e-12);
  EXPECT_NEAR(w.y, 0.5, 1e-12);
  EXPECT_NEAR(w.z, 1.0, 1e-12);
}

TEST(Box, MinImageDisplacementIsShortest) {
  const Box box{{10.0, 10.0, 10.0}};
  const Vec3 d = box.min_image_disp({9.5, 0.0, 0.0}, {0.5, 0.0, 0.0});
  EXPECT_NEAR(d.x, -1.0, 1e-12);
  EXPECT_LE(std::abs(d.x), 5.0);
}

TEST(Box, MinImageHalfBoxBoundary) {
  const Box box{{10.0, 10.0, 10.0}};
  const Vec3 d = box.min_image_disp({7.5, 0.0, 0.0}, {2.5, 0.0, 0.0});
  EXPECT_NEAR(std::abs(d.x), 5.0, 1e-12);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RepeatedInvocationsAreStable) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    parallel_for(0, 257, [&](std::size_t i) { sum += static_cast<long>(i); });
    EXPECT_EQ(sum.load(), 257L * 256L / 2L);
  }
}

TEST(ThreadPool, RangesPartitionIsDisjointAndComplete) {
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  parallel_for_ranges(0, 1003, [&](std::size_t b, std::size_t e) {
    std::lock_guard lock(m);
    ranges.emplace_back(b, e);
  });
  std::vector<int> cover(1003, 0);
  for (const auto& [b, e] : ranges) {
    for (std::size_t i = b; i < e; ++i) ++cover[i];
  }
  for (const int c : cover) EXPECT_EQ(c, 1);
}

TEST(ThreadPool, ZeroWorkerPoolRunsSeriallyOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<int> hits(100, 0);  // plain ints: no other thread may touch them
  pool.parallel_for_blocks(0, hits.size(), [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, OversubscribedPoolStillCoversRangeExactlyOnce) {
  // Far more threads than cores (and than work blocks): the dispatch must
  // not lose or duplicate blocks when most workers find nothing to do.
  ThreadPool pool(64);
  EXPECT_EQ(pool.concurrency(), 65u);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for_blocks(0, hits.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, NestedParallelForRunsSeriallyWithoutDeadlock) {
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  std::atomic<long> sum{0};
  std::atomic<int> nested_parallel{0};
  parallel_for(0, 16, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // The inner call must not re-enter the pool: it runs as one serial
    // block on this thread.  If it re-entered the in-flight dispatch this
    // would deadlock or corrupt the outer loop's bookkeeping.
    parallel_for_ranges(0, 100, [&](std::size_t b, std::size_t e) {
      if (b != 0 || e != 100) nested_parallel.fetch_add(1);
      for (std::size_t i = b; i < e; ++i) sum += static_cast<long>(i);
    });
  });
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  EXPECT_EQ(nested_parallel.load(), 0);
  EXPECT_EQ(sum.load(), 16L * (99L * 100L / 2L));
}

TEST(ThreadPool, RegionFlagRestoredAfterNestedCall) {
  parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 2, [](std::size_t) {});
    // A sloppy guard would clear the flag when the nested call returned.
    EXPECT_TRUE(ThreadPool::in_parallel_region());
  });
}

TEST(ThreadPool, ExceptionPropagatesAndOtherBlocksStillRun) {
  std::vector<std::atomic<int>> hits(1000);
  try {
    parallel_for(0, hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 137) throw std::runtime_error("block 137 failed");
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block 137 failed");
  }
  // Every index before the throwing one in its block — and every other
  // block — still ran: only the throwing block stops early.  (On a
  // single-core pool the whole range is one block, so only the prefix up
  // to the throw runs.)
  int covered = 0;
  for (const auto& h : hits) covered += h.load();
  if (global_pool().concurrency() > 1) {
    const std::size_t chunk =
        (hits.size() + global_pool().concurrency() - 1) /
        global_pool().concurrency();
    EXPECT_GE(covered, static_cast<int>(hits.size() - chunk));
  } else {
    EXPECT_EQ(covered, 138);
  }
}

TEST(ThreadPool, PoolRemainsUsableAfterException) {
  EXPECT_THROW(
      parallel_for(0, 64, [](std::size_t i) {
        if (i % 2 == 0) throw std::logic_error("boom");
      }),
      std::logic_error);
  // Same global pool, next dispatch must be clean (no stale error, no lost
  // workers).
  for (int round = 0; round < 5; ++round) {
    std::atomic<long> sum{0};
    parallel_for(0, 1000, [&](std::size_t i) { sum += static_cast<long>(i); });
    EXPECT_EQ(sum.load(), 999L * 1000L / 2L);
  }
}

TEST(ThreadPool, ExceptionInNestedSerialCallPropagates) {
  EXPECT_THROW(parallel_for(0, 8,
                            [&](std::size_t) {
                              parallel_for(0, 4, [](std::size_t j) {
                                if (j == 2) throw std::runtime_error("nested");
                              });
                            }),
               std::runtime_error);
  // And the pool still works.
  std::atomic<int> n{0};
  parallel_for(0, 100, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 100);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double mean = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  EXPECT_NEAR(mean / n, 0.5, 5e-3);
}

TEST(Rng, NormalHasUnitVariance) {
  Rng rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Args, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha", "3.5", "--grid=32", "--full"};
  const Args args(5, argv);
  EXPECT_NEAR(args.get_double("alpha", 0.0), 3.5, 1e-15);
  EXPECT_EQ(args.get_int("grid", 0), 32);
  EXPECT_TRUE(args.get_flag("full"));
  EXPECT_FALSE(args.get_flag("absent"));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(Args, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const Args args(3, argv);
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(Args(2, argv), std::invalid_argument);
}

// RAII environment variable override for the env-helper tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(Env, StrictParsersRejectPartialInput) {
  EXPECT_EQ(env::parse_u64("42"), 42u);
  EXPECT_FALSE(env::parse_u64("42x").has_value());
  EXPECT_FALSE(env::parse_u64(" 42").has_value());
  EXPECT_FALSE(env::parse_u64("-1").has_value());
  EXPECT_EQ(env::parse_long("-7"), -7);
  EXPECT_FALSE(env::parse_long("7.5").has_value());
  EXPECT_EQ(env::parse_double("2.5e-3"), 2.5e-3);
  EXPECT_FALSE(env::parse_double("fast").has_value());
  EXPECT_FALSE(env::parse_double("").has_value());
}

TEST(Env, UnsetAndEmptyFallBackSilently) {
  ScopedEnv unset("TME_TEST_ENV_KNOB", nullptr);
  EXPECT_FALSE(env::raw("TME_TEST_ENV_KNOB").has_value());
  EXPECT_EQ(env::u64_or("TME_TEST_ENV_KNOB", 9), 9u);
  ScopedEnv empty("TME_TEST_ENV_KNOB", "");
  EXPECT_FALSE(env::raw("TME_TEST_ENV_KNOB").has_value());
  EXPECT_EQ(env::u64_or("TME_TEST_ENV_KNOB", 9), 9u);
}

TEST(Env, MalformedValuesKeepTheFallback) {
  ScopedEnv bad("TME_TEST_ENV_KNOB", "banana");
  EXPECT_EQ(env::u64_or("TME_TEST_ENV_KNOB", 3), 3u);
  EXPECT_EQ(env::probability_or("TME_TEST_ENV_KNOB", 0.25), 0.25);
  EXPECT_EQ(env::non_negative_or("TME_TEST_ENV_KNOB", 1.5), 1.5);
  EXPECT_EQ(env::bounded_long_or("TME_TEST_ENV_KNOB", 2, 0, 8), 2);
  EXPECT_TRUE(env::flag_or("TME_TEST_ENV_KNOB", true));
}

TEST(Env, RangeViolationsKeepTheFallback) {
  {
    ScopedEnv over("TME_TEST_ENV_KNOB", "1.5");
    EXPECT_EQ(env::probability_or("TME_TEST_ENV_KNOB", 0.1), 0.1);
  }
  {
    ScopedEnv negative("TME_TEST_ENV_KNOB", "-2");
    EXPECT_EQ(env::non_negative_or("TME_TEST_ENV_KNOB", 4.0), 4.0);
    EXPECT_EQ(env::bounded_long_or("TME_TEST_ENV_KNOB", 1, 0, 8), 1);
  }
  {
    ScopedEnv good("TME_TEST_ENV_KNOB", "0.75");
    EXPECT_EQ(env::probability_or("TME_TEST_ENV_KNOB", 0.1), 0.75);
  }
}

TEST(Env, FlagAcceptsConventionalSpellings) {
  for (const char* spelling : {"1", "on", "true"}) {
    ScopedEnv e("TME_TEST_ENV_KNOB", spelling);
    EXPECT_TRUE(env::flag_or("TME_TEST_ENV_KNOB", false)) << spelling;
  }
  for (const char* spelling : {"0", "off", "false"}) {
    ScopedEnv e("TME_TEST_ENV_KNOB", spelling);
    EXPECT_FALSE(env::flag_or("TME_TEST_ENV_KNOB", true)) << spelling;
  }
}

TEST(Env, ChoiceMatchesExactlyOrKeepsFallback) {
  const std::vector<std::string> ladder = {"warn", "recompute", "recover",
                                           "abort"};
  {
    ScopedEnv e("TME_TEST_ENV_KNOB", "recover");
    EXPECT_EQ(env::choice_or("TME_TEST_ENV_KNOB", ladder, 0), 2u);
  }
  {
    ScopedEnv e("TME_TEST_ENV_KNOB", "Recover");  // case-sensitive
    EXPECT_EQ(env::choice_or("TME_TEST_ENV_KNOB", ladder, 1), 1u);
  }
  {
    ScopedEnv e("TME_TEST_ENV_KNOB", nullptr);
    EXPECT_EQ(env::choice_or("TME_TEST_ENV_KNOB", ladder, 3), 3u);
  }
}

TEST(Watchdog, FiresOnStallAndRearmsOnPet) {
  std::atomic<int> fired{0};
  Watchdog wd(0.05, [&fired] { ++fired; });
  // Stall long enough for one firing (the callback fires once per stall,
  // not repeatedly).
  for (int i = 0; i < 200 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(wd.fired());
  EXPECT_EQ(wd.firings(), 1u);

  // A pet re-arms it; a second stall fires again.
  wd.pet();
  for (int i = 0; i < 200 && fired.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 2);
  EXPECT_EQ(wd.firings(), 2u);
}

TEST(Watchdog, StaysQuietWhilePetted) {
  std::atomic<int> fired{0};
  Watchdog wd(0.25, [&fired] { ++fired; });
  for (int i = 0; i < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    wd.pet();
  }
  EXPECT_EQ(fired.load(), 0);
  EXPECT_FALSE(wd.fired());
  EXPECT_THROW(Watchdog(0.0, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace tme
