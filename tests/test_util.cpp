#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace tme {
namespace {

TEST(Vec3, BasicArithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-4.0, 0.5, 2.0};
  EXPECT_EQ((a + b).x, -3.0);
  EXPECT_EQ((a - b).y, 1.5);
  EXPECT_EQ((2.0 * a).z, 6.0);
  EXPECT_NEAR(dot(a, b), -4.0 + 1.0 + 6.0, 1e-15);
  EXPECT_NEAR(norm(Vec3{3.0, 4.0, 0.0}), 5.0, 1e-15);
}

TEST(Vec3, CrossProductIsOrthogonal) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-4.0, 0.5, 2.0};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(a, c), 0.0, 1e-12);
  EXPECT_NEAR(dot(b, c), 0.0, 1e-12);
}

TEST(Box, WrapPutsCoordinatesInBox) {
  const Box box{{2.0, 3.0, 4.0}};
  const Vec3 w = box.wrap({-0.5, 3.5, 9.0});
  EXPECT_NEAR(w.x, 1.5, 1e-12);
  EXPECT_NEAR(w.y, 0.5, 1e-12);
  EXPECT_NEAR(w.z, 1.0, 1e-12);
}

TEST(Box, MinImageDisplacementIsShortest) {
  const Box box{{10.0, 10.0, 10.0}};
  const Vec3 d = box.min_image_disp({9.5, 0.0, 0.0}, {0.5, 0.0, 0.0});
  EXPECT_NEAR(d.x, -1.0, 1e-12);
  EXPECT_LE(std::abs(d.x), 5.0);
}

TEST(Box, MinImageHalfBoxBoundary) {
  const Box box{{10.0, 10.0, 10.0}};
  const Vec3 d = box.min_image_disp({7.5, 0.0, 0.0}, {2.5, 0.0, 0.0});
  EXPECT_NEAR(std::abs(d.x), 5.0, 1e-12);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RepeatedInvocationsAreStable) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    parallel_for(0, 257, [&](std::size_t i) { sum += static_cast<long>(i); });
    EXPECT_EQ(sum.load(), 257L * 256L / 2L);
  }
}

TEST(ThreadPool, RangesPartitionIsDisjointAndComplete) {
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  parallel_for_ranges(0, 1003, [&](std::size_t b, std::size_t e) {
    std::lock_guard lock(m);
    ranges.emplace_back(b, e);
  });
  std::vector<int> cover(1003, 0);
  for (const auto& [b, e] : ranges) {
    for (std::size_t i = b; i < e; ++i) ++cover[i];
  }
  for (const int c : cover) EXPECT_EQ(c, 1);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double mean = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  EXPECT_NEAR(mean / n, 0.5, 5e-3);
}

TEST(Rng, NormalHasUnitVariance) {
  Rng rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Args, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha", "3.5", "--grid=32", "--full"};
  const Args args(5, argv);
  EXPECT_NEAR(args.get_double("alpha", 0.0), 3.5, 1e-15);
  EXPECT_EQ(args.get_int("grid", 0), 32);
  EXPECT_TRUE(args.get_flag("full"));
  EXPECT_FALSE(args.get_flag("absent"));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(Args, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const Args args(3, argv);
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(Args(2, argv), std::invalid_argument);
}

}  // namespace
}  // namespace tme
