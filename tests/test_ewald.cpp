#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ewald/charge_assignment.hpp"
#include "ewald/greens_function.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

// Random neutral charge system in a cubic box.
struct TestSystem {
  Box box;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

TestSystem random_system(std::size_t n, double box_length, std::uint64_t seed) {
  TestSystem sys;
  sys.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  sys.positions.resize(n);
  sys.charges.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box_length), rng.uniform(0.0, box_length),
                        rng.uniform(0.0, box_length)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    total += sys.charges[i];
  }
  // Neutralise.
  for (auto& q : sys.charges) q -= total / static_cast<double>(n);
  return sys;
}

TEST(Splitting, ShortPlusLongIsCoulomb) {
  for (const double r : {0.1, 0.7, 1.3, 2.9}) {
    for (const double alpha : {0.5, 2.0, 5.0}) {
      EXPECT_NEAR(g_short(r, alpha) + g_long(r, alpha), 1.0 / r, 1e-13);
    }
  }
}

TEST(Splitting, ShellsTelescopeToLongRangeDifference) {
  // sum_{l=1..L} g_l(r) = g_L(r; alpha) - g_L(r; alpha/2^L).
  const double alpha = 2.4, r = 0.9;
  const int levels = 3;
  double shells = 0.0;
  for (int l = 1; l <= levels; ++l) shells += g_shell(r, alpha, l);
  EXPECT_NEAR(shells, g_long(r, alpha) - g_long(r, alpha / 8.0), 1e-13);
}

TEST(Splitting, ShellScalingIdentity) {
  // g_l(r) = g_1(r / 2^{l-1}) / 2^{l-1}  (paper Eq. 5).
  const double alpha = 1.7;
  for (const int l : {2, 3, 4}) {
    const double scale = std::ldexp(1.0, l - 1);
    for (const double r : {0.3, 1.1, 2.2}) {
      EXPECT_NEAR(g_shell(r, alpha, l), g_shell(r / scale, alpha, 1) / scale, 1e-13);
    }
  }
}

TEST(Splitting, ZeroLimits) {
  const double alpha = 3.1;
  EXPECT_NEAR(g_long(0.0, alpha), 2.0 * alpha / std::sqrt(M_PI), 1e-13);
  EXPECT_NEAR(g_shell(0.0, alpha, 1),
              2.0 * (alpha - alpha / 2.0) / std::sqrt(M_PI), 1e-13);
}

TEST(Splitting, DerivativesMatchFiniteDifferences) {
  const double alpha = 2.0, eps = 1e-6;
  for (const double r : {0.4, 1.0, 1.9}) {
    const double fd_s = (g_short(r + eps, alpha) - g_short(r - eps, alpha)) / (2 * eps);
    EXPECT_NEAR(g_short_derivative(r, alpha), fd_s, 1e-6);
    const double fd_l = (g_long(r + eps, alpha) - g_long(r - eps, alpha)) / (2 * eps);
    EXPECT_NEAR(g_long_derivative(r, alpha), fd_l, 1e-6);
  }
}

TEST(Splitting, AlphaFromToleranceMatchesPaper) {
  // The paper: erfc(alpha r_c) = 1e-4  =>  alpha r_c ~ 2.751064.
  const double alpha = alpha_from_tolerance(1.0, 1e-4);
  EXPECT_NEAR(alpha, 2.751064, 1e-5);
  // And the Table 1 headline value: r_c = L/2-independent scaling.
  EXPECT_NEAR(alpha_from_tolerance(1.25, 1e-4), 2.751064 / 1.25, 1e-5);
}

TEST(Splitting, ReciprocalCutoffScalesWithAlphaAndBox) {
  const int n1 = reciprocal_cutoff_from_tolerance(3.0, 5.0, 1e-15);
  const int n2 = reciprocal_cutoff_from_tolerance(6.0, 5.0, 1e-15);
  EXPECT_GE(n2, 2 * n1 - 1);
  // Paper reference configuration: alpha = 1.178612 nm^-1, L = 9.9727 nm
  // gives n_c = 22.
  EXPECT_EQ(reciprocal_cutoff_from_tolerance(1.178612, 9.97270, 1e-15), 22);
}

TEST(ChargeAssignment, ConservesTotalCharge) {
  const TestSystem sys = random_system(100, 4.0, 3);
  const ChargeAssigner ca(sys.box, {16, 16, 16}, 6);
  const Grid3d grid = ca.assign(sys.positions, sys.charges);
  double qtot = 0.0;
  for (const double q : sys.charges) qtot += q;
  EXPECT_NEAR(grid.sum(), qtot, 1e-10);
}

TEST(ChargeAssignment, SingleChargeOnGridPointIsLocalised) {
  Box box{{4.0, 4.0, 4.0}};
  const ChargeAssigner ca(box, {8, 8, 8}, 6);
  // Atom exactly on grid point (2, 2, 2): h = 0.5.
  const std::vector<Vec3> pos{{1.0, 1.0, 1.0}};
  const std::vector<double> q{1.0};
  const Grid3d grid = ca.assign(pos, q);
  // For even p on a grid point, the spline spreads to p-1 points per axis
  // centred at the atom; the centre gets M_p(p/2) = 11/20 per axis for p=6.
  EXPECT_NEAR(grid.at(2, 2, 2), std::pow(11.0 / 20.0, 3), 1e-12);
  EXPECT_NEAR(grid.sum(), 1.0, 1e-12);
}

TEST(ChargeAssignment, BackInterpolationRecoversSmoothField) {
  // Fill the grid with a smooth periodic potential and check that
  // interpolation reproduces it and its gradient.
  Box box{{8.0, 8.0, 8.0}};
  const GridDims dims{32, 32, 32};
  const ChargeAssigner ca(box, dims, 6);
  Grid3d phi(dims);
  const double kx = 2.0 * M_PI / box.lengths.x;
  for (std::size_t iz = 0; iz < dims.nz; ++iz) {
    for (std::size_t iy = 0; iy < dims.ny; ++iy) {
      for (std::size_t ix = 0; ix < dims.nx; ++ix) {
        phi.at(ix, iy, iz) = std::sin(kx * 0.25 * static_cast<double>(ix));
      }
    }
  }
  const std::vector<Vec3> pos{{3.37, 1.2, 5.9}};
  const std::vector<double> q{2.0};
  std::vector<Vec3> forces(1);
  std::vector<double> phi_atom;
  const double q_phi = ca.back_interpolate(phi, pos, q, &forces, &phi_atom);
  // B-spline summation of raw samples is quasi-interpolation: the tone is
  // attenuated by bhat(theta) = sum_m M_p^c(m) cos(theta m) with theta the
  // phase advance per grid step.  (SPME's |b|^2 Euler factors undo exactly
  // this attenuation.)
  const double theta = kx * 0.25;
  const double bhat = 66.0 / 120.0 + 2.0 * (26.0 / 120.0) * std::cos(theta) +
                      2.0 * (1.0 / 120.0) * std::cos(2.0 * theta);
  const double expected_phi = bhat * std::sin(kx * pos[0].x);
  EXPECT_NEAR(phi_atom[0], expected_phi, 1e-5);
  EXPECT_NEAR(q_phi, 2.0 * phi_atom[0], 1e-12);
  // Force = -q dphi/dx with dphi/dx = (kx/h... ) cos(...) — compare against a
  // numerical derivative of the interpolant itself.
  const double eps = 1e-5;
  const std::vector<Vec3> pos_hi{{pos[0].x + eps, pos[0].y, pos[0].z}};
  const std::vector<Vec3> pos_lo{{pos[0].x - eps, pos[0].y, pos[0].z}};
  std::vector<double> phi_hi, phi_lo;
  ca.back_interpolate(phi, pos_hi, q, nullptr, &phi_hi);
  ca.back_interpolate(phi, pos_lo, q, nullptr, &phi_lo);
  const double dphi_dx = (phi_hi[0] - phi_lo[0]) / (2.0 * eps);
  EXPECT_NEAR(forces[0].x, -q[0] * dphi_dx, 1e-5);
  EXPECT_NEAR(forces[0].y, 0.0, 1e-9);
  EXPECT_NEAR(forces[0].z, 0.0, 1e-9);
}

TEST(GreensFunction, EulerFactorsPositiveForEvenOrders) {
  for (const int p : {4, 6, 8}) {
    const auto b2 = euler_factors(p, 32);
    for (const double v : b2) EXPECT_GT(v, 0.0);
  }
}

TEST(GreensFunction, ZeroModeDropped) {
  const Box box{{5.0, 5.0, 5.0}};
  const auto g = spme_influence(box, {16, 16, 16}, 6, 3.0);
  EXPECT_EQ(g[0], 0.0);
}

TEST(EwaldReference, QuadrupoleEnergyMatchesDirectSum) {
  // Two antiparallel +/- pairs: the cell dipole vanishes, so the direct
  // image sum with cubic shells converges absolutely to the tinfoil Ewald
  // value (a dipolar cell would carry a summation-order-dependent boundary
  // term instead).
  Box box{{6.0, 6.0, 6.0}};
  const Vec3 d{1.2, 0.0, 0.0};
  const Vec3 a{1.0, 1.0, 1.0};
  const Vec3 b{3.0, 2.5, 4.0};
  const std::vector<Vec3> pos{a, a + d, b, b + d};
  const std::vector<double> q{1.0, -1.0, -1.0, 1.0};
  EwaldParams params;
  params.alpha = 2.0;
  const CoulombResult ewald = ewald_reference(box, pos, q, params);
  const double direct = direct_lattice_energy(box, pos, q, 12);
  EXPECT_NEAR(ewald.energy, direct, 2e-3 * std::abs(direct));
}

TEST(EwaldReference, EnergyIndependentOfAlpha) {
  const TestSystem sys = random_system(40, 3.5, 17);
  EwaldParams p1;
  p1.alpha = 2.5;
  EwaldParams p2;
  p2.alpha = 3.5;
  const CoulombResult r1 = ewald_reference(sys.box, sys.positions, sys.charges, p1);
  const CoulombResult r2 = ewald_reference(sys.box, sys.positions, sys.charges, p2);
  EXPECT_NEAR(r1.energy, r2.energy, 1e-6 * std::abs(r1.energy));
  for (std::size_t i = 0; i < r1.forces.size(); ++i) {
    EXPECT_NEAR(norm(r1.forces[i] - r2.forces[i]), 0.0, 1e-5);
  }
}

TEST(EwaldReference, ForcesSumToZero) {
  const TestSystem sys = random_system(60, 4.2, 23);
  EwaldParams params;
  params.alpha = 2.5;
  const CoulombResult r = ewald_reference(sys.box, sys.positions, sys.charges, params);
  Vec3 total{};
  for (const Vec3& f : r.forces) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-8);
}

TEST(EwaldReference, ForceMatchesEnergyGradient) {
  const TestSystem sys = random_system(20, 3.0, 31);
  EwaldParams params;
  params.alpha = 3.0;
  const CoulombResult r = ewald_reference(sys.box, sys.positions, sys.charges, params);
  // Displace atom 0 along x and compare numerical gradient.
  const double eps = 1e-5;
  auto shifted = sys.positions;
  shifted[0].x += eps;
  const double e_hi = ewald_reference(sys.box, shifted, sys.charges, params).energy;
  shifted[0].x -= 2 * eps;
  const double e_lo = ewald_reference(sys.box, shifted, sys.charges, params).energy;
  const double fd = -(e_hi - e_lo) / (2 * eps);
  EXPECT_NEAR(r.forces[0].x, fd, 5e-5 * std::max(1.0, std::abs(fd)));
}

TEST(EwaldReference, MadelungConstantNaCl) {
  // Rock-salt unit cell (8 ions) with unit charges and nearest-neighbour
  // distance d = 0.5: E per ion pair = -M * kC / d with M = 1.7475645946.
  Box box{{1.0, 1.0, 1.0}};
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int k = 0; k < 2; ++k) {
        pos.push_back({0.5 * i, 0.5 * j, 0.5 * k});
        q.push_back(((i + j + k) % 2 == 0) ? 1.0 : -1.0);
      }
    }
  }
  EwaldParams params;
  params.alpha = 12.0;  // erfc(alpha L/2) ~ 2e-17: real-space truncation safe
  const CoulombResult r = ewald_reference(box, pos, q, params);
  const double madelung = -r.energy / (4.0 * constants::kCoulomb) * 0.5;
  EXPECT_NEAR(madelung, 1.7475645946, 1e-8);
}

TEST(Spme, MatchesEwaldReferenceOnRandomSystem) {
  const TestSystem sys = random_system(200, 4.0, 41);
  EwaldParams eparams;
  eparams.alpha = alpha_from_tolerance(1.0, 1e-4);
  const CoulombResult ref = ewald_reference(sys.box, sys.positions, sys.charges, eparams);

  SpmeParams sparams;
  sparams.alpha = eparams.alpha;
  sparams.order = 6;
  sparams.grid = {32, 32, 32};
  const Spme spme(sys.box, sparams);
  const CoulombResult lr = spme.compute(sys.positions, sys.charges);

  // Add the short-range part directly to complete the total.
  CoulombResult total = lr;
  const double r_cut = 1.0;
  for (std::size_t i = 0; i < sys.positions.size(); ++i) {
    for (std::size_t j = i + 1; j < sys.positions.size(); ++j) {
      const Vec3 d = sys.box.min_image_disp(sys.positions[i], sys.positions[j]);
      const double r2 = norm2(d);
      if (r2 >= r_cut * r_cut) continue;
      const double r = std::sqrt(r2);
      const double qq = constants::kCoulomb * sys.charges[i] * sys.charges[j];
      total.energy += qq * g_short(r, eparams.alpha);
      const double fr = -qq * g_short_derivative(r, eparams.alpha) / r;
      total.forces[i] += fr * d;
      total.forces[j] -= fr * d;
    }
  }
  EXPECT_NEAR(total.energy, ref.energy,
              2e-3 * std::abs(ref.energy) + 1e-4);
  const double rel_err = total.relative_force_error_against(ref);
  EXPECT_LT(rel_err, 2e-3);
}

TEST(Spme, AnisotropicGridAndBoxSupported) {
  // Non-cubic box with per-axis grid extents (including a non-power-of-two
  // axis, exercising the Bluestein FFT path end to end).
  Box box{{3.0, 4.5, 6.0}};
  Rng rng(61);
  const std::size_t n = 200;
  std::vector<Vec3> pos(n);
  std::vector<double> q(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = {rng.uniform(0.0, 3.0), rng.uniform(0.0, 4.5), rng.uniform(0.0, 6.0)};
    q[i] = rng.uniform(-1.0, 1.0);
    total += q[i];
  }
  for (auto& v : q) v -= total / static_cast<double>(n);

  EwaldParams ep;
  // Tight splitting tolerance so the r_c truncation (which the converged
  // reference does not share) stays below the comparison threshold.
  ep.alpha = alpha_from_tolerance(0.9, 1e-6);
  const CoulombResult ref = ewald_reference(box, pos, q, ep);

  SpmeParams sp;
  sp.alpha = ep.alpha;
  sp.grid = {16, 24, 32};  // h = (0.19, 0.19, 0.19)
  const Spme spme(box, sp);
  CoulombResult lr = spme.compute(pos, q);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3 d = box.min_image_disp(pos[i], pos[j]);
      const double r2 = norm2(d);
      if (r2 >= 0.81) continue;
      const double r = std::sqrt(r2);
      const double qq = constants::kCoulomb * q[i] * q[j];
      lr.energy += qq * g_short(r, ep.alpha);
      const double fr = -qq * g_short_derivative(r, ep.alpha) / r;
      lr.forces[i] += fr * d;
      lr.forces[j] -= fr * d;
    }
  }
  // The dilute random gas inflates the relative-error metric (few
  // near-contact pairs in the reference norm); the point here is correct
  // anisotropic support, asserted at the metric's dilute-gas level.
  EXPECT_LT(lr.relative_force_error_against(ref), 2e-2);
  // Grid energy error scales with the gross reciprocal energy
  // kC alpha/sqrt(pi) sum q^2 (the net energy of a dilute gas is a
  // cancellation-dominated yardstick).
  double q2 = 0.0;
  for (const double v : q) q2 += v * v;
  const double gross = constants::kCoulomb * ep.alpha / std::sqrt(M_PI) * q2;
  EXPECT_NEAR(lr.energy, ref.energy, 5e-3 * gross);
}

TEST(Spme, EnergyAgreesWithKSpaceSum) {
  // The grid energy 0.5 sum(Q Phi) must match the analytic reciprocal-space
  // SPME energy expression evaluated independently.
  const TestSystem sys = random_system(50, 3.0, 53);
  SpmeParams params;
  params.alpha = 2.8;
  params.order = 6;
  params.grid = {24, 24, 24};
  params.subtract_self = false;
  const Spme spme(sys.box, params);
  const CoulombResult lr = spme.compute(sys.positions, sys.charges);
  // Independent evaluation through ewald_reference's reciprocal part with
  // matching alpha and a converged k-cutoff, minus its real and self parts:
  EwaldParams eparams;
  eparams.alpha = params.alpha;
  const CoulombResult ref = ewald_reference(sys.box, sys.positions, sys.charges, eparams);
  EXPECT_NEAR(lr.energy_reciprocal, ref.energy_reciprocal,
              5e-3 * std::abs(ref.energy_reciprocal));
}

}  // namespace
}  // namespace tme
