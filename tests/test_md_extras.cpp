// Tests for the MD quality-of-life layer: buffered pair lists, thermostats,
// and the I/O writers.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "ewald/splitting.hpp"
#include "md/pair_list.hpp"
#include "md/short_range.hpp"
#include "md/system.hpp"
#include "md/thermostat.hpp"
#include "md/water_box.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

namespace fs = std::filesystem;

TEST(PairList, MatchesFreshCellListEvaluation) {
  WaterBoxSpec spec;
  spec.molecules = 216;
  WaterBox wb_a = build_water_box(spec);
  WaterBox wb_b = build_water_box(spec);
  ShortRangeParams params;
  params.cutoff = 0.7;
  params.alpha = alpha_from_tolerance(0.7, 1e-4);

  wb_a.system.forces.assign(wb_a.system.size(), Vec3{});
  const ShortRangeResult fresh = compute_short_range(wb_a.system, wb_a.topology, params);

  PairList list(params.cutoff, 0.15);
  wb_b.system.forces.assign(wb_b.system.size(), Vec3{});
  const ShortRangeResult buffered =
      compute_short_range_with_list(wb_b.system, wb_b.topology, params, list);

  EXPECT_EQ(buffered.pair_count, fresh.pair_count);
  EXPECT_NEAR(buffered.energy_coulomb, fresh.energy_coulomb, 1e-10);
  EXPECT_NEAR(buffered.energy_lj, fresh.energy_lj, 1e-10);
  for (std::size_t i = 0; i < wb_a.system.size(); ++i) {
    EXPECT_LT(norm(wb_a.system.forces[i] - wb_b.system.forces[i]), 1e-10);
  }
}

TEST(PairList, ReusedListStaysExactWithinBuffer) {
  WaterBoxSpec spec;
  spec.molecules = 125;
  WaterBox wb = build_water_box(spec);
  ShortRangeParams params;
  params.cutoff = 0.6;
  params.alpha = 3.0;
  PairList list(params.cutoff, 0.2);

  Rng rng(3);
  for (int step = 0; step < 5; ++step) {
    // Displace everything by less than buffer/2 cumulatively, then compare
    // against a fresh evaluation.
    for (auto& r : wb.system.positions) {
      r += Vec3{0.015 * rng.normal(), 0.015 * rng.normal(), 0.015 * rng.normal()};
    }
    wb.system.forces.assign(wb.system.size(), Vec3{});
    const ShortRangeResult buffered =
        compute_short_range_with_list(wb.system, wb.topology, params, list);

    auto fresh_sys = wb.system;
    fresh_sys.forces.assign(fresh_sys.size(), Vec3{});
    const ShortRangeResult fresh =
        compute_short_range(fresh_sys, wb.topology, params);
    EXPECT_EQ(buffered.pair_count, fresh.pair_count) << "step " << step;
    EXPECT_NEAR(buffered.energy_coulomb, fresh.energy_coulomb, 1e-9);
  }
  // Some steps must have reused the list (no rebuild).
  EXPECT_LT(list.rebuild_count(), 6u);
  EXPECT_GE(list.rebuild_count(), 1u);
}

TEST(PairList, RebuildTriggeredByLargeMove) {
  WaterBoxSpec spec;
  spec.molecules = 64;
  WaterBox wb = build_water_box(spec);
  PairList list(0.6, 0.2);
  list.update(wb.system.box, wb.system.positions, wb.topology);
  EXPECT_EQ(list.rebuild_count(), 1u);
  EXPECT_FALSE(list.update(wb.system.box, wb.system.positions, wb.topology));
  wb.system.positions[0].x += 0.11;  // > buffer / 2
  EXPECT_TRUE(list.update(wb.system.box, wb.system.positions, wb.topology));
  EXPECT_EQ(list.rebuild_count(), 2u);
}

TEST(PairList, RejectsCutoffMismatch) {
  WaterBoxSpec spec;
  spec.molecules = 27;
  WaterBox wb = build_water_box(spec);
  ShortRangeParams params;
  params.cutoff = 0.5;
  params.alpha = 3.0;
  PairList list(0.6, 0.1);
  EXPECT_THROW(compute_short_range_with_list(wb.system, wb.topology, params, list),
               std::invalid_argument);
}

TEST(Thermostat, BerendsenDrivesTowardsTarget) {
  WaterBoxSpec spec;
  spec.molecules = 125;
  spec.temperature = 600.0;
  WaterBox wb = build_water_box(spec);
  const std::size_t dof = 3 * wb.system.size() - 3;
  BerendsenParams params;
  params.target_temperature = 300.0;
  params.time_constant = 0.05;
  params.dof = dof;
  double t_prev = wb.system.temperature(dof);
  for (int i = 0; i < 200; ++i) apply_berendsen(wb.system, params, 0.001);
  const double t_now = wb.system.temperature(dof);
  EXPECT_LT(std::abs(t_now - 300.0), std::abs(t_prev - 300.0));
  EXPECT_NEAR(t_now, 300.0, 20.0);
}

TEST(Thermostat, HardRescaleIsExact) {
  WaterBoxSpec spec;
  spec.molecules = 64;
  spec.temperature = 500.0;
  WaterBox wb = build_water_box(spec);
  const std::size_t dof = 3 * wb.system.size() - 3;
  rescale_to_temperature(wb.system, 310.0, dof);
  EXPECT_NEAR(wb.system.temperature(dof), 310.0, 1e-9);
}

TEST(Io, XyzWriterProducesReadableFrames) {
  const fs::path path = fs::temp_directory_path() / "tme_test_traj.xyz";
  {
    XyzWriter writer(path.string());
    const std::vector<std::string> elems{"O", "H"};
    const std::vector<Vec3> pos{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
    const Box box{{1.0, 1.0, 1.0}};
    writer.write_frame(elems, pos, box, "t=0");
    writer.write_frame(elems, pos, box, "t=1");
    EXPECT_EQ(writer.frames_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "2");
  std::getline(in, line);
  EXPECT_NE(line.find("Lattice"), std::string::npos);
  std::getline(in, line);
  EXPECT_EQ(line.rfind("O ", 0), 0u);  // Angstrom coordinates follow
  fs::remove(path);
}

TEST(Io, CsvLoggerWritesHeaderAndRows) {
  const fs::path path = fs::temp_directory_path() / "tme_test_log.csv";
  {
    const std::vector<std::string> cols{"t", "energy"};
    CsvLogger log(path.string(), cols);
    log.write_row(std::vector<double>{0.0, -1.5});
    log.write_row(std::vector<double>{0.1, -1.6});
    EXPECT_EQ(log.rows_written(), 2u);
    EXPECT_THROW(log.write_row(std::vector<double>{1.0}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,energy");
  std::getline(in, line);
  EXPECT_EQ(line, "0,-1.5");
  fs::remove(path);
}

}  // namespace
}  // namespace tme
