// Parallel short-range engine, tabulated kernel, and threaded particle-grid
// path tests: parallel-vs-serial equivalence across pool sizes (1, 2, and N
// participating threads), force-table accuracy against analytic erfc, and
// determinism of the threaded exclusion corrections.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ewald/charge_assignment.hpp"
#include "ewald/force_table.hpp"
#include "ewald/splitting.hpp"
#include "md/short_range.hpp"
#include "md/short_range_engine.hpp"
#include "md/water_box.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tme {
namespace {

// max_i |a_i - b_i| / max_i |b_i|.
double force_deviation(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, norm(a[i] - b[i]));
    scale = std::max(scale, norm(b[i]));
  }
  return scale > 0.0 ? worst / scale : worst;
}

WaterBox test_box() {
  WaterBoxSpec spec;
  spec.molecules = 216;
  spec.seed = 7;
  WaterBox wb = build_water_box(spec);
  add_ion_pairs(wb, 4);  // several LJ types, non-trivial mixing table
  return wb;
}

ShortRangeParams test_params(const WaterBox& wb) {
  ShortRangeParams params;
  params.cutoff = std::min(0.9, 0.45 * wb.system.box.lengths.x);
  params.alpha = alpha_from_tolerance(params.cutoff, 1e-4);
  params.shift_lj = true;
  return params;
}

// --- force table -------------------------------------------------------------

TEST(ForceTable, MatchesAnalyticErfcWithinBound) {
  const double alpha = alpha_from_tolerance(1.2, 1e-4);
  const ForceTable table(alpha, 0.1, 1.2);
  // The constructor-measured bound must hold and sit below the 1e-6 target.
  EXPECT_LT(table.max_rel_error_energy(), 1e-6);
  EXPECT_LT(table.max_rel_error_force(), 1e-6);
  // Independent dense sampling (not the constructor's probe points).
  double worst_e = 0.0, worst_f = 0.0;
  for (int k = 0; k < 20000; ++k) {
    const double r = 0.1 + (1.2 - 0.1) * (k + 0.5) / 20000.0;
    const double r2 = r * r;
    const ForceTable::Sample tab = table.lookup(r2);
    const ForceTable::Sample ref = table.analytic(r2);
    worst_e = std::max(worst_e,
                       std::abs(tab.energy - ref.energy) / std::abs(ref.energy));
    worst_f = std::max(worst_f, std::abs(tab.force_over_r - ref.force_over_r) /
                                    std::abs(ref.force_over_r));
  }
  EXPECT_LT(worst_e, 1e-6);
  EXPECT_LT(worst_f, 1e-6);
}

TEST(ForceTable, FallsBackToAnalyticOutsideRange) {
  const ForceTable table(3.0, 0.1, 1.0);
  for (const double r : {0.01, 0.05, 0.0999, 1.001, 2.0}) {
    const ForceTable::Sample got = table.lookup(r * r);
    const ForceTable::Sample ref = table.analytic(r * r);
    EXPECT_EQ(got.energy, ref.energy);
    EXPECT_EQ(got.force_over_r, ref.force_over_r);
  }
}

TEST(ForceTable, RejectsBadArguments) {
  EXPECT_THROW(ForceTable(0.0, 0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(ForceTable(3.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ForceTable(3.0, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(ForceTable(3.0, 0.1, 1.0, 1), std::invalid_argument);
}

// --- engine vs serial reference ----------------------------------------------

TEST(ShortRangeEngine, AnalyticMatchesSerialAcrossPoolSizes) {
  WaterBox wb = test_box();
  const ShortRangeParams params = test_params(wb);
  const std::size_t n = wb.system.size();

  wb.system.forces.assign(n, Vec3{});
  const ShortRangeResult serial = compute_short_range(wb.system, wb.topology, params);
  const std::vector<Vec3> f_serial = wb.system.forces;

  const ShortRangeEngine engine(params);
  for (const unsigned workers : {0u, 1u, 3u}) {  // 1, 2, and N threads total
    ThreadPool pool(workers);
    wb.system.forces.assign(n, Vec3{});
    const ShortRangeResult r = engine.compute(wb.system, wb.topology, &pool);
    EXPECT_EQ(r.pair_count, serial.pair_count) << "workers=" << workers;
    EXPECT_NEAR(r.energy_coulomb, serial.energy_coulomb,
                1e-10 * std::abs(serial.energy_coulomb));
    EXPECT_NEAR(r.energy_lj, serial.energy_lj, 1e-10 * std::abs(serial.energy_lj));
    EXPECT_LT(force_deviation(wb.system.forces, f_serial), 1e-10)
        << "workers=" << workers;
  }
}

TEST(ShortRangeEngine, SamePoolSizeIsDeterministic) {
  WaterBox wb = test_box();
  const ShortRangeParams params = test_params(wb);
  const std::size_t n = wb.system.size();
  const ShortRangeEngine engine(params);
  ThreadPool pool(3);

  wb.system.forces.assign(n, Vec3{});
  const ShortRangeResult a = engine.compute(wb.system, wb.topology, &pool);
  const std::vector<Vec3> f_a = wb.system.forces;
  wb.system.forces.assign(n, Vec3{});
  const ShortRangeResult b = engine.compute(wb.system, wb.topology, &pool);
  EXPECT_EQ(a.energy_coulomb, b.energy_coulomb);
  EXPECT_EQ(a.energy_lj, b.energy_lj);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(f_a[i].x, wb.system.forces[i].x);
    EXPECT_EQ(f_a[i].y, wb.system.forces[i].y);
    EXPECT_EQ(f_a[i].z, wb.system.forces[i].z);
  }
}

TEST(ShortRangeEngine, ThirdLawNetForceCancelsWithinRoundingEnvelope) {
  WaterBox wb = test_box();
  const ShortRangeParams params = test_params(wb);
  const std::size_t n = wb.system.size();
  const ShortRangeEngine engine(params);

  for (const unsigned workers : {0u, 3u}) {
    ThreadPool pool(workers);
    wb.system.forces.assign(n, Vec3{});
    const ShortRangeResult r = engine.compute(wb.system, wb.topology, &pool);
    EXPECT_TRUE(r.third_law_ok) << "workers=" << workers;
    EXPECT_GT(r.net_force_tolerance, 0.0);
    EXPECT_LE(std::abs(r.net_force.x), r.net_force_tolerance);
    EXPECT_LE(std::abs(r.net_force.y), r.net_force_tolerance);
    EXPECT_LE(std::abs(r.net_force.z), r.net_force_tolerance);

    // Forces started at zero, so their sum is the engine's contribution too
    // (summed in a different order — both land inside the same envelope).
    Vec3 delta{};
    for (const Vec3& f : wb.system.forces) delta += f;
    EXPECT_LE(std::abs(delta.x), r.net_force_tolerance) << "workers=" << workers;
    EXPECT_LE(std::abs(delta.y), r.net_force_tolerance);
    EXPECT_LE(std::abs(delta.z), r.net_force_tolerance);
  }

  // abft_tolerance_scale = 0 collapses the envelope: the check must then
  // reject the (nonzero) rounding residual, proving the violation path and
  // the loosening knob are both wired through.
  ShortRangeParams strict = params;
  strict.abft_tolerance_scale = 0.0;
  const ShortRangeEngine zealot(strict);
  ThreadPool pool(3);
  wb.system.forces.assign(n, Vec3{});
  const ShortRangeResult rs = zealot.compute(wb.system, wb.topology, &pool);
  const bool exactly_zero = rs.net_force.x == 0.0 && rs.net_force.y == 0.0 &&
                            rs.net_force.z == 0.0;
  EXPECT_EQ(rs.third_law_ok, exactly_zero);
  EXPECT_FALSE(rs.third_law_ok);  // this box leaves a nonzero residual
}

TEST(ShortRangeEngine, TabulatedKernelTracksAnalyticForces) {
  WaterBox wb = test_box();
  ShortRangeParams params = test_params(wb);
  const std::size_t n = wb.system.size();

  const ShortRangeEngine analytic(params);
  wb.system.forces.assign(n, Vec3{});
  const ShortRangeResult ra = analytic.compute(wb.system, wb.topology);
  const std::vector<Vec3> f_analytic = wb.system.forces;

  params.kernel = CoulombKernel::kTabulated;
  const ShortRangeEngine tabulated(params);
  ASSERT_NE(tabulated.force_table(), nullptr);
  wb.system.forces.assign(n, Vec3{});
  const ShortRangeResult rt = tabulated.compute(wb.system, wb.topology);

  EXPECT_EQ(rt.pair_count, ra.pair_count);
  EXPECT_LT(force_deviation(wb.system.forces, f_analytic), 1e-6);
  EXPECT_NEAR(rt.energy_coulomb, ra.energy_coulomb,
              1e-6 * std::abs(ra.energy_coulomb));
  // LJ is evaluated identically in both modes.
  EXPECT_EQ(rt.energy_lj, ra.energy_lj);
}

// --- threaded charge spreading -----------------------------------------------

TEST(ChargeAssignment, ThreadedSpreadMatchesSerialAcrossPoolSizes) {
  const Box box{{2.0, 2.0, 2.0}};
  Rng rng(99);
  const std::size_t n = 500;
  std::vector<Vec3> pos(n);
  std::vector<double> q(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = {rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0)};
    q[i] = rng.uniform(-1.0, 1.0);
  }
  const ChargeAssigner assigner(box, {16, 16, 16}, 6);

  ThreadPool serial_pool(0);
  const Grid3d serial = assigner.assign(pos, q, &serial_pool);
  double scale = serial.max_abs();
  for (const unsigned workers : {1u, 3u}) {
    ThreadPool pool(workers);
    const Grid3d threaded = assigner.assign(pos, q, &pool);
    double worst = 0.0;
    for (std::size_t g = 0; g < serial.size(); ++g) {
      worst = std::max(worst, std::abs(threaded[g] - serial[g]));
    }
    EXPECT_LT(worst, 1e-12 * scale) << "workers=" << workers;
  }
}

// --- threaded exclusion corrections ------------------------------------------

TEST(ExclusionCorrections, BitwiseStableAcrossPoolSizes) {
  WaterBox wb = test_box();
  const double alpha = 3.0;
  const std::size_t n = wb.system.size();
  ASSERT_FALSE(wb.topology.exclusions().empty());

  ThreadPool serial_pool(0);
  wb.system.forces.assign(n, Vec3{});
  const double e_serial =
      apply_exclusion_corrections(wb.system, wb.topology, alpha, &serial_pool);
  const std::vector<Vec3> f_serial = wb.system.forces;

  for (const unsigned workers : {1u, 3u}) {
    ThreadPool pool(workers);
    wb.system.forces.assign(n, Vec3{});
    const double e =
        apply_exclusion_corrections(wb.system, wb.topology, alpha, &pool);
    EXPECT_EQ(e, e_serial) << "workers=" << workers;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(wb.system.forces[i].x, f_serial[i].x);
      EXPECT_EQ(wb.system.forces[i].y, f_serial[i].y);
      EXPECT_EQ(wb.system.forces[i].z, f_serial[i].z);
    }
  }
}

// --- TME_THREADS parsing -----------------------------------------------------

TEST(PoolSizing, WorkersFromEnv) {
  // Valid overrides: TME_THREADS is the total participating thread count.
  EXPECT_EQ(pool_workers_from_env("1", 8), 0u);
  EXPECT_EQ(pool_workers_from_env("4", 8), 3u);
  EXPECT_EQ(pool_workers_from_env("16", 2), 15u);
  // Unset / invalid values fall back to hardware_concurrency - 1.
  EXPECT_EQ(pool_workers_from_env(nullptr, 8), 7u);
  EXPECT_EQ(pool_workers_from_env("", 8), 7u);
  EXPECT_EQ(pool_workers_from_env("0", 8), 7u);
  EXPECT_EQ(pool_workers_from_env("-2", 8), 7u);
  EXPECT_EQ(pool_workers_from_env("abc", 8), 7u);
  EXPECT_EQ(pool_workers_from_env("4x", 8), 7u);
  EXPECT_EQ(pool_workers_from_env("99999", 8), 7u);
  // Degenerate hardware report still yields a valid (serial) pool.
  EXPECT_EQ(pool_workers_from_env(nullptr, 0), 0u);
}

}  // namespace
}  // namespace tme
