// Thread-scaling and kernel-accuracy bench for the parallel short-range
// engine (md/short_range_engine.hpp) on the standard water-box workload.
//
// Sweeps pool sizes 1, 2, 4, ... up to --threads for both Coulomb kernels
// (analytic erfc vs the segmented-polynomial r² table) and reports per-eval
// time, pair throughput, speedup over 1 thread, and the force deviation from
// the serial reference loop.  The run *fails* (non-zero exit) when the
// parallel analytic forces drift from the serial ones beyond 1e-10 relative
// or the tabulated forces drift from analytic beyond 1e-6 relative — CI runs
// this as a correctness smoke, never asserting on raw timing.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ewald/splitting.hpp"
#include "md/short_range_engine.hpp"
#include "md/water_box.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

#include "common.hpp"

namespace {

using namespace tme;

// max_i |a_i - b_i| / max_i |b_i| — scale-relative force deviation.
double force_deviation(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, norm(a[i] - b[i]));
    scale = std::max(scale, norm(b[i]));
  }
  return scale > 0.0 ? worst / scale : worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  const std::size_t molecules =
      static_cast<std::size_t>(args.get_int("molecules", 1728));
  const int reps = args.get_int("reps", 3);
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned max_threads =
      static_cast<unsigned>(args.get_int("threads", static_cast<int>(hardware)));
  const std::string trace_path = bench::begin_trace(args, "shortrange");

  WaterBoxSpec spec;
  spec.molecules = molecules;
  WaterBox wb = build_water_box(spec);
  add_ion_pairs(wb, std::max<std::size_t>(1, molecules / 64));
  const std::size_t n = wb.system.size();

  ShortRangeParams params;
  params.cutoff = std::min(1.2, 0.45 * wb.system.box.lengths.x);
  params.alpha = alpha_from_tolerance(params.cutoff, 1e-4);
  params.shift_lj = true;

  bench::print_header("bench_shortrange: parallel short-range engine");
  std::printf("atoms %zu  box %.3f nm  cutoff %.3f nm  alpha %.3f  reps %d\n",
              n, wb.system.box.lengths.x, params.cutoff, params.alpha, reps);

  obs::Registry::global().reset();

  // Serial reference: the plain cell-list loop.
  std::vector<Vec3> f_serial;
  ShortRangeResult ref;
  double serial_seconds = 0.0;
  {
    Timer timer;
    for (int rep = 0; rep < reps; ++rep) {
      wb.system.forces.assign(n, Vec3{});
      timer.reset();
      ref = compute_short_range(wb.system, wb.topology, params);
      const double s = timer.seconds();
      if (rep == 0 || s < serial_seconds) serial_seconds = s;
    }
    f_serial = wb.system.forces;
  }
  std::printf("serial reference: %8.2f ms/eval  %zu pairs\n",
              serial_seconds * 1e3, ref.pair_count);

  struct ModeSpec {
    const char* name;
    CoulombKernel kernel;
    double tolerance;  // vs the serial analytic reference
  };
  const ModeSpec modes[] = {
      {"analytic", CoulombKernel::kAnalytic, 1e-10},
      {"tabulated", CoulombKernel::kTabulated, 1e-6},
  };

  bench::print_header("thread sweep");
  std::printf("%-10s %8s %12s %14s %9s %12s\n", "kernel", "threads",
              "ms/eval", "pairs/s", "speedup", "max rel dF");

  bool mismatch = false;
  for (const ModeSpec& mode : modes) {
    ShortRangeParams p = params;
    p.kernel = mode.kernel;
    const ShortRangeEngine engine(p);
    if (engine.force_table() != nullptr) {
      obs::Registry::global().gauge_set(
          "shortrange/table_max_rel_error_energy",
          engine.force_table()->max_rel_error_energy());
      obs::Registry::global().gauge_set(
          "shortrange/table_max_rel_error_force",
          engine.force_table()->max_rel_error_force());
    }
    double t1 = 0.0;  // 1-thread time for the speedup column
    for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
      ThreadPool pool(threads - 1);
      double best = 0.0;
      ShortRangeResult r{};
      Timer timer;
      for (int rep = 0; rep < reps; ++rep) {
        wb.system.forces.assign(n, Vec3{});
        timer.reset();
        r = engine.compute(wb.system, wb.topology, &pool);
        const double s = timer.seconds();
        if (rep == 0 || s < best) best = s;
      }
      if (threads == 1) t1 = best;
      const double deviation = force_deviation(wb.system.forces, f_serial);
      const double pairs_per_s = static_cast<double>(r.pair_count) / best;
      std::printf("%-10s %8u %12.2f %14.3e %9.2f %12.2e%s\n", mode.name,
                  threads, best * 1e3, pairs_per_s, t1 / best, deviation,
                  deviation > mode.tolerance ? "  ** MISMATCH **" : "");
      const std::string prefix = std::string("shortrange/") + mode.name +
                                 "/t" + std::to_string(threads);
      obs::Registry::global().gauge_set(prefix + "/seconds_per_eval", best);
      obs::Registry::global().gauge_set(prefix + "/pairs_per_s", pairs_per_s);
      obs::Registry::global().gauge_set(prefix + "/speedup", t1 / best);
      obs::Registry::global().gauge_set(prefix + "/force_deviation", deviation);
      if (deviation > mode.tolerance) mismatch = true;
      if (r.pair_count != ref.pair_count) {
        std::printf("  ** pair count mismatch: %zu vs serial %zu **\n",
                    r.pair_count, ref.pair_count);
        mismatch = true;
      }
    }
  }

  bench::emit_metrics("shortrange");
  bench::finish_trace(trace_path);
  if (mismatch) {
    std::printf("FAILED: parallel/tabulated forces deviate beyond tolerance\n");
    return 1;
  }
  return 0;
}
