// Thread-scaling, SIMD, and kernel-accuracy bench for the parallel
// short-range engine (md/short_range_engine.hpp) on the standard water-box
// workload.
//
// Sweeps kernel (analytic erfc vs the segmented-polynomial r² table) ×
// SIMD mode (scalar twin vs native-width vec kernel) × pool sizes 1, 2, 4,
// ... up to --threads, and reports per-eval time, pair throughput, speedup
// over 1 thread, speedup over the scalar twin, and the force deviation from
// the serial reference loop.  The run *fails* (non-zero exit) when
//  - the analytic forces drift from the serial ones beyond 1e-10 relative,
//  - the tabulated forces drift from analytic beyond 1e-6 relative, or
//  - the native-mode forces are not BITWISE identical to the scalar-mode
//    forces at the same pool size (the SIMD parity contract, util/simd.hpp).
// CI runs this as a correctness smoke, never asserting on raw timing.
//
// A final "isolated kernel micro" block times the batched pair kernel and
// the separable axis convolution without the scalar enumeration overhead,
// exporting shortrange/kernel_micro/<path>/speedup_vs_scalar — the
// headline scalar-vs-native numbers for the SIMD layer.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ewald/splitting.hpp"
#include "grid/separable_conv.hpp"
#include "md/short_range_engine.hpp"
#include "md/short_range_kernels.hpp"
#include "md/water_box.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

#include "common.hpp"

namespace {

using namespace tme;

// max_i |a_i - b_i| / max_i |b_i| — scale-relative force deviation.
double force_deviation(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, norm(a[i] - b[i]));
    scale = std::max(scale, norm(b[i]));
  }
  return scale > 0.0 ? worst / scale : worst;
}

bool bitwise_equal(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Vec3)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  const std::size_t molecules =
      static_cast<std::size_t>(args.get_int("molecules", 1728));
  const int reps = args.get_int("reps", 3);
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned max_threads =
      static_cast<unsigned>(args.get_int("threads", static_cast<int>(hardware)));
  const std::string trace_path = bench::begin_trace(args, "shortrange");

  WaterBoxSpec spec;
  spec.molecules = molecules;
  WaterBox wb = build_water_box(spec);
  add_ion_pairs(wb, std::max<std::size_t>(1, molecules / 64));
  const std::size_t n = wb.system.size();

  ShortRangeParams params;
  params.cutoff = std::min(1.2, 0.45 * wb.system.box.lengths.x);
  params.alpha = alpha_from_tolerance(params.cutoff, 1e-4);
  params.shift_lj = true;

  bench::print_header("bench_shortrange: parallel short-range engine");
  std::printf(
      "atoms %zu  box %.3f nm  cutoff %.3f nm  alpha %.3f  reps %d  isa %s\n",
      n, wb.system.box.lengths.x, params.cutoff, params.alpha, reps,
      simd::active_isa());

  obs::Registry::global().reset();

  // Serial reference: the plain cell-list loop (warmed up by time_best).
  std::vector<Vec3> f_serial;
  ShortRangeResult ref;
  const double serial_seconds = bench::time_best(reps, [&] {
    wb.system.forces.assign(n, Vec3{});
    ref = compute_short_range(wb.system, wb.topology, params);
  });
  f_serial = wb.system.forces;
  std::printf("serial reference: %8.2f ms/eval  %zu pairs\n",
              serial_seconds * 1e3, ref.pair_count);

  struct KernelSpec {
    const char* name;
    CoulombKernel kernel;
    double tolerance;  // vs the serial analytic reference
  };
  const KernelSpec kernels[] = {
      {"analytic", CoulombKernel::kAnalytic, 1e-10},
      {"tabulated", CoulombKernel::kTabulated, 1e-6},
  };

  bench::print_header("kernel x simd-mode x thread sweep");
  std::printf("%-10s %-7s %8s %12s %14s %9s %10s %12s\n", "kernel", "mode",
              "threads", "ms/eval", "pairs/s", "speedup", "vs_scalar",
              "max rel dF");

  bool mismatch = false;
  for (const KernelSpec& kernel : kernels) {
    ShortRangeParams p_scalar = params;
    p_scalar.kernel = kernel.kernel;
    p_scalar.simd = ShortRangeParams::SimdChoice::kScalar;
    ShortRangeParams p_native = p_scalar;
    p_native.simd = ShortRangeParams::SimdChoice::kNative;
    const ShortRangeEngine engines[] = {ShortRangeEngine(p_scalar),
                                        ShortRangeEngine(p_native)};
    if (engines[0].force_table() != nullptr) {
      obs::Registry::global().gauge_set(
          "shortrange/table_max_rel_error_energy",
          engines[0].force_table()->max_rel_error_energy());
      obs::Registry::global().gauge_set(
          "shortrange/table_max_rel_error_force",
          engines[0].force_table()->max_rel_error_force());
    }
    // t1 per mode (for the thread-speedup column); scalar best per thread
    // count (for the SIMD-speedup column and the bitwise parity gate).
    double t1[2] = {0.0, 0.0};
    for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
      ThreadPool pool(threads - 1);
      double scalar_best = 0.0;
      std::vector<Vec3> f_scalar;
      for (int m = 0; m < 2; ++m) {
        const ShortRangeEngine& engine = engines[m];
        ShortRangeResult r{};
        const double best = bench::time_best(reps, [&] {
          wb.system.forces.assign(n, Vec3{});
          r = engine.compute(wb.system, wb.topology, &pool);
        });
        if (threads == 1) t1[m] = best;
        if (m == 0) {
          scalar_best = best;
          f_scalar = wb.system.forces;
        }
        const double deviation = force_deviation(wb.system.forces, f_serial);
        const double pairs_per_s = static_cast<double>(r.pair_count) / best;
        const double vs_scalar = scalar_best / best;
        const char* mode_name = simd::mode_name(engine.simd_mode());
        const bool parity_ok = m == 0 || bitwise_equal(wb.system.forces, f_scalar);
        std::printf("%-10s %-7s %8u %12.2f %14.3e %9.2f %10.2f %12.2e%s%s\n",
                    kernel.name, mode_name, threads, best * 1e3, pairs_per_s,
                    t1[m] / best, vs_scalar, deviation,
                    deviation > kernel.tolerance ? "  ** MISMATCH **" : "",
                    parity_ok ? "" : "  ** SIMD PARITY BROKEN **");
        const std::string prefix = std::string("shortrange/") + kernel.name +
                                   "/" + mode_name + "/t" +
                                   std::to_string(threads);
        obs::Registry::global().gauge_set(prefix + "/seconds_per_eval", best);
        obs::Registry::global().gauge_set(prefix + "/pairs_per_s", pairs_per_s);
        obs::Registry::global().gauge_set(prefix + "/speedup", t1[m] / best);
        obs::Registry::global().gauge_set(prefix + "/speedup_vs_scalar",
                                          vs_scalar);
        if (deviation > kernel.tolerance) mismatch = true;
        if (!parity_ok) mismatch = true;
        if (r.pair_count != ref.pair_count) {
          std::printf("  ** pair count mismatch: %zu vs serial %zu **\n",
                      r.pair_count, ref.pair_count);
          mismatch = true;
        }
      }
    }
  }

  // --- isolated vectorized-kernel micro (single thread) --------------------
  // The engine sweep above folds scalar pair enumeration (cell walk,
  // minimum image, cutoff/exclusion filter) into every timing, which dilutes
  // the kernel-level SIMD gain.  These rows time the vectorized kernels by
  // themselves: the batched pair kernel on a synthetic batch matching the
  // water-box distance distribution, and the separable axis convolution that
  // the TME long-range pass runs on the same step.  The speedup_vs_scalar
  // gauges here are the headline scalar-vs-native kernel numbers.
  bench::print_header("isolated kernel micro: scalar vs native");
  std::printf("%-28s %10s %10s %9s\n", "path", "scalar ms", "native ms",
              "speedup");
  {
    const double micro_cutoff = params.cutoff;
    const ForceTable micro_table(params.alpha, 0.1, micro_cutoff, 4096);
    Rng rng(20210817);
    PairBatch proto;
    const std::size_t micro_pairs = 200000;
    proto.reserve(micro_pairs);
    for (std::size_t i = 0; i < micro_pairs; ++i) {
      const double r = rng.uniform(0.05, micro_cutoff);
      const double qq = i % 5 == 0 ? 0.0 : rng.uniform(-140.0, 140.0);
      const double c6 = i % 3 == 0 ? 0.0 : rng.uniform(0.0, 3e-3);
      proto.push(r, 0.0, 0.0, r * r, qq, c6, c6 * rng.uniform(0.0, 1e-5), 0.0,
                 static_cast<std::uint32_t>(i),
                 static_cast<std::uint32_t>(i + 1));
    }
    struct MicroRow {
      std::string path;
      double scalar_s = 0.0;
      double native_s = 0.0;
      bool parity_ok = true;
    };
    auto emit_micro = [&](const MicroRow& row) {
      const double speedup =
          row.native_s > 0.0 ? row.scalar_s / row.native_s : 0.0;
      std::printf("%-28s %10.3f %10.3f %8.2fx%s\n", row.path.c_str(),
                  row.scalar_s * 1e3, row.native_s * 1e3, speedup,
                  row.parity_ok ? "" : "  ** SIMD PARITY BROKEN **");
      const std::string prefix = "shortrange/kernel_micro/" + row.path;
      obs::Registry::global().gauge_set(prefix + "/scalar_seconds_per_eval",
                                        row.scalar_s);
      obs::Registry::global().gauge_set(prefix + "/native_seconds_per_eval",
                                        row.native_s);
      obs::Registry::global().gauge_set(prefix + "/speedup_vs_scalar", speedup);
      if (!row.parity_ok) mismatch = true;
    };
    const PairKernelConfig micro_cfgs[] = {{params.alpha, &micro_table},
                                           {params.alpha, nullptr}};
    const char* micro_names[] = {"pair_tabulated", "pair_analytic"};
    for (int c = 0; c < 2; ++c) {
      MicroRow row;
      row.path = micro_names[c];
      std::vector<double> out_scalar;
      for (int m = 0; m < 2; ++m) {
        const simd::Mode mode =
            m == 0 ? simd::Mode::kScalar : simd::Mode::kNative;
        PairBatch batch = proto;
        batch.finalize(simd::lanes(mode));
        const double best = bench::time_best(
            reps, [&] { evaluate_pair_batch(batch, micro_cfgs[c], mode); });
        const long real = static_cast<long>(batch.size());
        std::vector<double> out;
        out.insert(out.end(), batch.e_coul.begin(), batch.e_coul.begin() + real);
        out.insert(out.end(), batch.e_lj.begin(), batch.e_lj.begin() + real);
        out.insert(out.end(), batch.f_over_r.begin(),
                   batch.f_over_r.begin() + real);
        if (m == 0) {
          row.scalar_s = best;
          out_scalar = std::move(out);
        } else {
          row.native_s = best;
          row.parity_ok =
              out.size() == out_scalar.size() &&
              std::memcmp(out.data(), out_scalar.data(),
                          out.size() * sizeof(double)) == 0;
        }
      }
      emit_micro(row);
    }

    // Gaussian axis convolution on a 64³ grid (the TME per-axis pass).
    const GridDims dims{64, 64, 64};
    Grid3d src(dims);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src.values()[i] = rng.uniform(-1.0, 1.0);
    }
    Kernel1d gauss;
    gauss.cutoff = 8;
    gauss.taps.resize(17);
    for (int t = -8; t <= 8; ++t) {
      gauss.taps[static_cast<std::size_t>(t + 8)] = std::exp(-0.08 * t * t);
    }
    const ConvAxis conv_axes[] = {ConvAxis::kX, ConvAxis::kY, ConvAxis::kZ};
    const char* conv_names[] = {"conv_axis_x", "conv_axis_y", "conv_axis_z"};
    for (int a = 0; a < 3; ++a) {
      MicroRow row;
      row.path = conv_names[a];
      Grid3d out_scalar(dims), out_native(dims);
      for (int m = 0; m < 2; ++m) {
        const simd::Mode mode =
            m == 0 ? simd::Mode::kScalar : simd::Mode::kNative;
        Grid3d& out = m == 0 ? out_scalar : out_native;
        const double best = bench::time_best(
            reps, [&] { convolve_axis(src, gauss, conv_axes[a], out, mode); });
        (m == 0 ? row.scalar_s : row.native_s) = best;
      }
      row.parity_ok =
          std::memcmp(out_scalar.values().data(), out_native.values().data(),
                      out_scalar.size() * sizeof(double)) == 0;
      emit_micro(row);
    }
  }

  bench::emit_metrics("shortrange");
  bench::finish_trace(trace_path);
  if (mismatch) {
    std::printf(
        "FAILED: forces deviate beyond tolerance or SIMD parity broke\n");
    return 1;
  }
  return 0;
}
