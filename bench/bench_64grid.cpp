// Reproduces the Sec. VI.A estimate: the long-range term for a 64^3-grid
// TME (L = 2) on an 8x-volume target system — GCU operations ~8x the 32^3
// case (~72 us in the paper's scaled estimate), ~10 us extra grid-transfer
// for CA and BI, total long-range ~150 us.
#include <cstdio>

#include "hw/machine.hpp"
#include "hw/timechart.hpp"
#include "util/args.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  using namespace tme::hw;
  const Args args(argc, argv);
  (void)args;

  MdgrapeMachine machine;

  StepConfig base;  // Fig. 9 system: 32^3, L = 1
  const StepTimings t32 = machine.simulate_step(base);

  StepConfig big;
  big.grid = {64, 64, 64};
  big.levels = 2;
  big.atoms = base.atoms * 8;
  big.box_x = 2 * base.box_x;
  big.box_y = 2 * base.box_y;
  big.box_z = 2 * base.box_z;
  const StepTimings t64 = machine.simulate_step(big);

  bench::print_header("Sec VI.A: 64^3-grid TME (L = 2), 8x volume and atoms");
  std::printf("%-34s %12s %12s %10s\n", "", "32^3 (us)", "64^3 (us)", "ratio");
  auto row = [](const char* name, double a, double b) {
    std::printf("%-34s %12.2f %12.2f %9.1fx\n", name, a * 1e6, b * 1e6, b / a);
  };
  row("GCU restriction (all levels)", t32.restriction, t64.restriction);
  row("GCU convolution (all levels)", t32.convolution, t64.convolution);
  row("GCU prolongation (all levels)", t32.prolongation, t64.prolongation);
  row("GCU total window", t32.gcu_window, t64.gcu_window);
  row("LRU CA + BI", t32.lru_ca + t32.lru_bi, t64.lru_ca + t64.lru_bi);
  row("TMENW round trip", t32.tmenw, t64.tmenw);
  row("long-range busy total", t32.long_range_total, t64.long_range_total);
  row("single step", t32.step_time, t64.step_time);

  bench::print_header("comparison with the paper's estimates");
  std::printf(
      "  GCU total:        %6.1f us   (paper scales its measured 9 us spans by\n"
      "                                8x -> 72 us; this model scales only the\n"
      "                                streamed data, so fixed CGP overheads\n"
      "                                keep it below the paper's bound)\n",
      t64.gcu_window * 1e6);
  std::printf("  long-range total: %6.1f us   (paper: ~150 us)\n",
              t64.long_range_total * 1e6);
  std::printf("  TMENW unchanged:  %6.1f us   (paper: 'tasks of the TMENW were\n"
              "                                the same' — top grid is 16^3 in\n"
              "                                both configurations)\n",
              t64.tmenw * 1e6);
  return 0;
}
