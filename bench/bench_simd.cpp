// SIMD kernel micro-sweep: every vectorized hot path (batched pair kernel,
// B-spline spreading and gathering, per-axis separable convolution) timed in
// both TME_SIMD modes from one process, with the parity contract asserted on
// every element:
//  - pair kernel, spreading, and axis convolutions must be BITWISE identical
//    between the scalar twin and the native-width kernel;
//  - back interpolation (gathering) reduces lane partials with a fixed tree,
//    so scalar and native agree to reassociation rounding only (checked at
//    1e-12 relative) — the one documented relaxation (util/simd.hpp).
// Exits non-zero on any parity violation; timing gauges are volatile
// (speedup / seconds_per_eval) and never gate the regression check.  The
// element counters gate: they are deterministic for a fixed configuration.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ewald/charge_assignment.hpp"
#include "grid/separable_conv.hpp"
#include "md/short_range_kernels.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

#include "common.hpp"

namespace {

using namespace tme;

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

double max_rel_dev(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
    scale = std::max(scale, std::abs(b[i]));
  }
  return scale > 0.0 ? worst / scale : worst;
}

struct Row {
  std::string path;
  double scalar_s = 0.0;
  double native_s = 0.0;
  double elements = 0.0;  // work items per eval, for the per-element rate
  bool parity_ok = true;
  double deviation = 0.0;  // 0 for bitwise-exact paths
};

void report(const Row& row) {
  const double speedup = row.native_s > 0.0 ? row.scalar_s / row.native_s : 0.0;
  std::printf("%-18s %10.3f %10.3f %8.2fx %11.1e %s\n", row.path.c_str(),
              row.scalar_s * 1e3, row.native_s * 1e3, speedup, row.deviation,
              row.parity_ok ? "ok" : "** PARITY BROKEN **");
  const std::string prefix = "simd/" + row.path;
  auto& reg = obs::Registry::global();
  reg.gauge_set(prefix + "/scalar_seconds_per_eval", row.scalar_s);
  reg.gauge_set(prefix + "/native_seconds_per_eval", row.native_s);
  reg.gauge_set(prefix + "/speedup_vs_scalar", speedup);
  reg.counter(prefix + "/elements")
      .add(static_cast<std::uint64_t>(row.elements));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  const int reps = args.get_int("reps", 5);
  const std::size_t pairs =
      static_cast<std::size_t>(args.get_int("pairs", 200000));
  const std::size_t grid_n = static_cast<std::size_t>(args.get_int("grid", 64));
  const std::size_t particles =
      static_cast<std::size_t>(args.get_int("particles", 20000));
  const int conv_cutoff = args.get_int("conv-cutoff", 8);

  bench::print_header("bench_simd: scalar vs native kernel instantiations");
  std::printf("isa %s  native width %d  fma fused %s\n", simd::active_isa(),
              simd::kNativeWidth, simd::kFmaFused ? "yes" : "no");
  std::printf("%-18s %10s %10s %9s %11s\n", "path", "scalar ms", "native ms",
              "speedup", "deviation");

  obs::Registry::global().reset();
  bool all_ok = true;
  Rng rng(20210817);  // fixed seed: counters must be deterministic

  // --- batched pair kernel (tabulated and analytic Coulomb) ----------------
  {
    const double cutoff = 1.2, alpha = 3.0;
    const ForceTable table(alpha, 0.1, cutoff, 4096);
    PairBatch proto;
    proto.reserve(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      const double r = rng.uniform(0.05, cutoff);  // some below table r_min
      const double qq = i % 5 == 0 ? 0.0 : rng.uniform(-140.0, 140.0);
      const double c6 = i % 3 == 0 ? 0.0 : rng.uniform(0.0, 3e-3);
      const double c12 = c6 * rng.uniform(0.0, 1e-5);
      proto.push(r, 0.0, 0.0, r * r, qq, c6, c12, 0.0,
                 static_cast<std::uint32_t>(i),
                 static_cast<std::uint32_t>(i + 1));
    }
    struct KernelCase {
      const char* name;
      PairKernelConfig cfg;
    };
    const KernelCase cases[] = {{"pair_tabulated", {alpha, &table}},
                                {"pair_analytic", {alpha, nullptr}}};
    for (const KernelCase& kc : cases) {
      Row row;
      row.path = kc.name;
      row.elements = static_cast<double>(pairs);
      std::vector<double> out_scalar;
      for (int m = 0; m < 2; ++m) {
        const simd::Mode mode = m == 0 ? simd::Mode::kScalar : simd::Mode::kNative;
        PairBatch batch = proto;
        batch.finalize(simd::lanes(mode));
        const double best = bench::time_best(
            reps, [&] { evaluate_pair_batch(batch, kc.cfg, mode); });
        // Compare only the real (unpadded) outputs; the two modes pad to
        // different multiples.
        const long real = static_cast<long>(batch.size());
        std::vector<double> out;
        out.reserve(3 * batch.size());
        out.insert(out.end(), batch.e_coul.begin(), batch.e_coul.begin() + real);
        out.insert(out.end(), batch.e_lj.begin(), batch.e_lj.begin() + real);
        out.insert(out.end(), batch.f_over_r.begin(),
                   batch.f_over_r.begin() + real);
        if (m == 0) {
          row.scalar_s = best;
          out_scalar = out;
        } else {
          row.native_s = best;
          row.parity_ok = bitwise_equal(out, out_scalar);
        }
      }
      report(row);
      all_ok = all_ok && row.parity_ok;
    }
  }

  // --- B-spline spreading and gathering ------------------------------------
  {
    Box box;
    box.lengths = {4.0, 4.0, 4.0};
    const GridDims dims{grid_n, grid_n, grid_n};
    std::vector<Vec3> pos(particles);
    std::vector<double> q(particles);
    for (std::size_t i = 0; i < particles; ++i) {
      pos[i] = {rng.uniform(0.0, box.lengths.x), rng.uniform(0.0, box.lengths.y),
                rng.uniform(0.0, box.lengths.z)};
      q[i] = rng.uniform(-1.0, 1.0);
    }
    ChargeAssigner assigner(box, dims, 6);
    ThreadPool serial(0);  // single-thread: the SIMD effect, not threading

    Row spread;
    spread.path = "spread";
    spread.elements = static_cast<double>(particles);
    Grid3d grid_scalar(dims), grid_native(dims);
    for (int m = 0; m < 2; ++m) {
      assigner.set_simd_mode(m == 0 ? simd::Mode::kScalar : simd::Mode::kNative);
      Grid3d grid(dims);
      const double best = bench::time_best(
          reps, [&] { grid = assigner.assign(pos, q, &serial); });
      (m == 0 ? spread.scalar_s : spread.native_s) = best;
      (m == 0 ? grid_scalar : grid_native) = grid;
    }
    spread.parity_ok = bitwise_equal(grid_scalar.values(), grid_native.values());
    report(spread);
    all_ok = all_ok && spread.parity_ok;

    Row gather;
    gather.path = "gather";
    gather.elements = static_cast<double>(particles);
    std::vector<double> phi_scalar, phi_native;
    for (int m = 0; m < 2; ++m) {
      assigner.set_simd_mode(m == 0 ? simd::Mode::kScalar : simd::Mode::kNative);
      std::vector<Vec3> forces(particles, Vec3{});
      std::vector<double> phi;
      const double best = bench::time_best(reps, [&] {
        forces.assign(particles, Vec3{});
        assigner.back_interpolate(grid_scalar, pos, q, &forces, &phi);
      });
      (m == 0 ? gather.scalar_s : gather.native_s) = best;
      (m == 0 ? phi_scalar : phi_native) = phi;
    }
    // Gathering is the documented non-bitwise path: lane partials reduce
    // with a fixed tree, so scalar vs native differ by reassociation only.
    gather.deviation = max_rel_dev(phi_native, phi_scalar);
    gather.parity_ok = gather.deviation <= 1e-12;
    report(gather);
    all_ok = all_ok && gather.parity_ok;

    // --- per-axis separable convolutions -----------------------------------
    Kernel1d kernel;
    kernel.cutoff = conv_cutoff;
    kernel.taps.resize(static_cast<std::size_t>(2 * conv_cutoff + 1));
    for (int mtap = -conv_cutoff; mtap <= conv_cutoff; ++mtap) {
      kernel.taps[static_cast<std::size_t>(mtap + conv_cutoff)] =
          std::exp(-0.08 * mtap * mtap);
    }
    const ConvAxis axes[] = {ConvAxis::kX, ConvAxis::kY, ConvAxis::kZ};
    const char* axis_names[] = {"conv_x", "conv_y", "conv_z"};
    for (int a = 0; a < 3; ++a) {
      Row conv;
      conv.path = axis_names[a];
      conv.elements = static_cast<double>(grid_scalar.size());
      Grid3d out_scalar(dims), out_native(dims);
      for (int m = 0; m < 2; ++m) {
        const simd::Mode mode = m == 0 ? simd::Mode::kScalar : simd::Mode::kNative;
        Grid3d& out = m == 0 ? out_scalar : out_native;
        const double best = bench::time_best(reps, [&] {
          convolve_axis(grid_scalar, kernel, axes[a], out, mode);
        });
        (m == 0 ? conv.scalar_s : conv.native_s) = best;
      }
      conv.parity_ok = bitwise_equal(out_scalar.values(), out_native.values());
      report(conv);
      all_ok = all_ok && conv.parity_ok;
    }
  }

  bench::emit_metrics("simd");
  if (!all_ok) {
    std::printf("FAILED: scalar/native kernel parity violated\n");
    return 1;
  }
  return 0;
}
