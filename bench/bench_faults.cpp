// Degraded-machine bench and fault-injection soak.
//
// Three sweeps over the fault model, with recovery invariants asserted along
// the way (non-zero exit on any violation — CI runs this as the fault soak):
//
//   A. Partition soak: seeded dead-node draws on the full 8x8x8 torus must
//      never cut an alive node off from the surviving partition.
//   B. Machine makespan sweep: single-step makespan and retry counts vs
//      link-error rate x dead-node count (the degraded-machine recipe in
//      EXPERIMENTS.md).
//   C. Distributed TME degradation: forces must stay bitwise identical to the
//      fault-free run while retry/redistribution traffic grows with the
//      error rate.
//   D. SDC detection coverage: seeded compute bit flips through the guarded
//      pipeline; significant corruptions must be detected at or above the
//      coverage floor with zero false positives at rate 0 (exit-code
//      invariant — timing never gates).
//
// Writes BENCH_faults.json with the makespan, traffic-overhead and
// detection-coverage gauges.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ewald/splitting.hpp"
#include "hw/fault.hpp"
#include "hw/machine.hpp"
#include "hw/sdc_guard.hpp"
#include "hw/network_model.hpp"
#include "hw/torus.hpp"
#include "par/fleet.hpp"
#include "par/par_tme.hpp"
#include "par/traffic.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

#include "common.hpp"

namespace {

int g_violations = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++g_violations;
    std::printf("  [VIOLATION] %s\n", what.c_str());
  }
}

std::string gauge_name(const std::string& stem, double rate, std::size_t dead) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s/r%.0e_d%zu", stem.c_str(), rate, dead);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tme;
  using namespace tme::hw;
  const Args args(argc, argv);
  const int soak_seeds = args.get_int("soak-seeds", 8);
  const std::string trace_path = bench::begin_trace(args, "faults");

  obs::Registry::global().reset();
  auto& reg = obs::Registry::global();

  // --- A: partition soak on the full machine --------------------------------
  bench::print_header(
      "A: dead-node partition soak (8x8x8, seeded draws; invariant: zero "
      "unreachable partitions)");
  const TorusTopology torus(8, 8, 8);
  std::size_t soak_runs = 0;
  for (int seed = 1; seed <= soak_seeds; ++seed) {
    for (const std::size_t dead : {1u, 4u, 16u, 32u, 64u}) {
      FaultConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(seed);
      FaultInjector faults(cfg);
      faults.kill_random_nodes(dead, torus.node_count());
      const PartitionReport report = torus.partition_report(faults);
      check(report.unreachable.empty(),
            "seed " + std::to_string(seed) + ", " + std::to_string(dead) +
                " dead nodes: " + std::to_string(report.unreachable.size()) +
                " alive nodes unreachable");
      check(report.alive + report.dead.size() == torus.node_count(),
            "partition report does not account for every node");
      ++soak_runs;
    }
  }
  std::printf("  %zu seeded draws up to 64/512 dead nodes: %s\n", soak_runs,
              g_violations == 0 ? "all partitions intact" : "violations above");
  reg.gauge_set("faults/soak/runs", static_cast<double>(soak_runs));

  // --- A2: link-error recovery invariant ------------------------------------
  bench::print_header(
      "A2: CRC/retry recovery (invariant: every transfer delivered within "
      "the retry budget)");
  const NetworkParams nw;
  std::printf("  %-12s %14s %14s %16s\n", "error rate", "transfers",
              "retransmits", "time overhead");
  for (const double rate : {1e-5, 1e-4, 1e-3, 1e-2}) {
    FaultConfig cfg;
    cfg.link_error_rate = rate;
    FaultInjector faults(cfg);
    const int transfers = 2000;
    double faulty_time = 0.0;
    std::uint64_t attempts = 0;
    for (int i = 0; i < transfers; ++i) {
      const TransferOutcome out = transfer_with_faults(nw, 4096, 3, faults);
      check(out.delivered, "transfer dropped at rate " + std::to_string(rate));
      faulty_time += out.time_s;
      attempts += static_cast<std::uint64_t>(out.attempts);
    }
    const double clean_time = transfers * transfer_time(nw, 4096, 3);
    const double overhead = faulty_time / clean_time - 1.0;
    std::printf("  %-12.0e %14d %14llu %15.2f%%\n", rate, transfers,
                static_cast<unsigned long long>(attempts - transfers),
                overhead * 100.0);
    reg.gauge_set(gauge_name("faults/network/retry_time_overhead", rate, 0),
                  overhead);
  }

  // --- B: degraded-machine makespan sweep -----------------------------------
  bench::print_header(
      "B: single-step makespan vs link-error rate x dead nodes (80,540 "
      "atoms, 512 nodes)");
  const MdgrapeMachine machine;
  const auto fault_seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 11));
  StepConfig healthy;
  const StepTimings base = machine.simulate_step(healthy);
  std::printf("  %-12s %-6s %14s %12s %10s\n", "error rate", "dead",
              "makespan (us)", "slowdown", "retries");
  for (const double rate : {0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    for (const std::size_t dead : {0u, 1u, 4u}) {
      StepConfig cfg;
      cfg.link_error_rate = rate;
      cfg.dead_node_count = dead;
      cfg.fault_seed = fault_seed;
      const StepTimings t = machine.simulate_step(cfg);
      check(t.step_time >= base.step_time,
            "degraded makespan below the healthy baseline");
      check(t.tasks_given_up == 0, "a machine task exhausted its retries");
      check(t.dead_nodes == dead, "dead-node count not reflected in timings");
      std::printf("  %-12.0e %-6zu %14.2f %11.3fx %10llu\n", rate, dead,
                  t.step_time * 1e6, t.step_time / base.step_time,
                  static_cast<unsigned long long>(t.task_retries));
      reg.gauge_set(gauge_name("faults/machine/makespan_us", rate, dead),
                    t.step_time * 1e6);
      reg.gauge_set(gauge_name("faults/machine/task_retries", rate, dead),
                    static_cast<double>(t.task_retries));
    }
  }

  // --- C: distributed TME under faults --------------------------------------
  bench::print_header(
      "C: parallel TME with one dead node (invariant: forces bitwise equal "
      "to the fault-free run)");
  const std::size_t atoms = 400;
  const double box_length = 6.4;
  Rng rng(7);
  Box box;
  box.lengths = {box_length, box_length, box_length};
  std::vector<Vec3> positions(atoms);
  std::vector<double> charges(atoms);
  double total_q = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    positions[i] = {rng.uniform(0.0, box_length), rng.uniform(0.0, box_length),
                    rng.uniform(0.0, box_length)};
    charges[i] = rng.uniform(-1.0, 1.0);
    total_q += charges[i];
  }
  for (double& q : charges) q -= total_q / static_cast<double>(atoms);

  TmeParams tp;
  tp.alpha = alpha_from_tolerance(0.8, 1e-4);
  tp.grid = {32, 32, 32};
  tp.levels = 1;
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  const TorusTopology small(2, 2, 2);

  par::ParallelTme clean_tme(box, tp, small);
  par::TrafficLog clean_log;
  const CoulombResult clean = clean_tme.compute(positions, charges, &clean_log);

  std::printf("  %-12s %16s %18s %14s\n", "error rate", "retrans. words",
              "traffic overhead", "forces");
  for (const double rate : {1e-4, 1e-3, 1e-2}) {
    FaultConfig cfg;
    cfg.seed = 2021;
    cfg.link_error_rate = rate;
    FaultInjector faults(cfg);
    faults.kill_random_nodes(1, small.node_count());

    par::ParallelTme degraded(box, tp, small);
    degraded.set_fault_injector(&faults);
    par::TrafficLog log;
    const CoulombResult result = degraded.compute(positions, charges, &log);

    bool identical = result.energy == clean.energy;
    for (std::size_t i = 0; identical && i < atoms; ++i) {
      identical = result.forces[i].x == clean.forces[i].x &&
                  result.forces[i].y == clean.forces[i].y &&
                  result.forces[i].z == clean.forces[i].z;
    }
    check(identical, "degraded forces differ from the fault-free run");

    const std::size_t retrans = log.words_in("fault retransmission");
    const double overhead = static_cast<double>(log.total_words()) /
                                static_cast<double>(clean_log.total_words()) -
                            1.0;
    std::printf("  %-12.0e %16zu %17.2f%% %14s\n", rate, retrans,
                overhead * 100.0, identical ? "bitwise equal" : "DIVERGED");
    reg.gauge_set(gauge_name("faults/par_tme/retrans_words", rate, 1),
                  static_cast<double>(retrans));
    reg.gauge_set(gauge_name("faults/par_tme/traffic_overhead", rate, 1),
                  overhead);
  }

  // --- D: SDC detection coverage + recompute overhead ------------------------
  bench::print_header(
      "D: ABFT detection coverage vs SDC rate (invariant: significant "
      "corruptions detected at >= 70%, zero false positives at rate 0)");
  std::printf("  %-12s %8s %12s %12s %10s %12s\n", "sdc rate", "flips",
              "significant", "detected", "coverage", "recomputes");
  for (const double sdc_rate : {0.0, 1e-7, 1e-6, 1e-5, 1e-4}) {
    std::size_t flips = 0;
    std::size_t significant = 0;
    std::size_t detected = 0;
    std::size_t recomputes = 0;
    std::size_t unrecovered = 0;
    std::size_t clean_violations = 0;
    const int sweeps = 12;
    for (int seed = 1; seed <= sweeps; ++seed) {
      FaultConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(seed);
      cfg.sdc_rate = sdc_rate;
      FaultInjector faults(cfg);
      GuardedTmePipeline pipeline(box, tp, GuardedTmeConfig{}, &faults);
      GuardedTmeReport rep;
      (void)pipeline.compute(positions, charges, &rep);
      flips += faults.injected_sdc();
      recomputes += rep.stage_recomputes;
      if (!rep.recovered) ++unrecovered;
      if (sdc_rate == 0.0) {
        clean_violations += rep.violations;
        continue;
      }
      // A flip counts against the coverage floor only when (a) it hit a
      // stage with an exact conservation checksum — charge assignment (0)
      // or the tensor convolution (4); the FPGA Parseval and BI envelope
      // checks are documented partial detectors — and (b) it moved the
      // operand by more than the quantisation-noise floor every stage
      // tolerance must admit.
      bool any_significant = false;
      for (const SdcEvent& e : faults.sdc_events()) {
        if (e.stage != 0 && e.stage != 4) continue;
        const double delta = std::abs(e.after - e.before);
        if (!std::isfinite(e.after) || delta > 0.1) {
          any_significant = true;
          break;
        }
      }
      if (any_significant) {
        ++significant;
        if (rep.violations > 0) ++detected;
      }
    }
    const double coverage =
        significant == 0
            ? 1.0
            : static_cast<double>(detected) / static_cast<double>(significant);
    if (sdc_rate == 0.0) {
      check(clean_violations == 0, "ABFT false positives in a fault-free run");
    } else if (significant > 0) {
      check(coverage >= 0.7, "detection coverage below floor at rate " +
                                 std::to_string(sdc_rate));
    }
    check(unrecovered == 0, "localized recompute failed to repair a run");
    std::printf("  %-12.0e %8zu %12zu %12zu %9.0f%% %12zu\n", sdc_rate, flips,
                significant, detected, coverage * 100.0, recomputes);
    reg.gauge_set(gauge_name("faults/sdc/coverage", sdc_rate, 0), coverage);
    reg.gauge_set(gauge_name("faults/sdc/recomputes", sdc_rate, 0),
                  static_cast<double>(recomputes));
    reg.gauge_set(gauge_name("faults/sdc/flips", sdc_rate, 0),
                  static_cast<double>(flips));
  }

  // --- E: real worker transport ----------------------------------------------
  bench::print_header(
      "E: worker transport backends (invariant: worker-farm forces bitwise "
      "equal to serial, including after a mid-run worker kill)");
  {
    auto fleet_forces_match = [&](const CoulombResult& r) {
      bool identical = r.energy == clean.energy;
      for (std::size_t i = 0; identical && i < atoms; ++i) {
        identical = r.forces[i].x == clean.forces[i].x &&
                    r.forces[i].y == clean.forces[i].y &&
                    r.forces[i].z == clean.forces[i].z;
      }
      return identical;
    };
    auto timed_fleet_run = [&](const char* label, par::FleetConfig fcfg,
                               par::FleetStats* stats_out) {
      par::ParallelTme tme(box, tp, small);
      par::WorkerFleet fleet(tme.context(), tme.topology(), std::move(fcfg));
      tme.set_executor(&fleet);
      par::TrafficLog log;
      const auto t0 = std::chrono::steady_clock::now();
      const CoulombResult r = tme.compute(positions, charges, &log);
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds = std::chrono::duration<double>(t1 - t0).count();
      check(fleet_forces_match(r),
            std::string(label) + " forces differ from the serial run");
      if (stats_out != nullptr) *stats_out = fleet.stats();
      return seconds;
    };

    std::printf("  %-10s %10s %12s %14s %8s %9s\n", "backend", "workers",
                "time (ms)", "tasks/s", "deaths", "respawns");
    const std::size_t farm = 4;
    for (const auto backend : {par::FleetConfig::Backend::kInProc,
                               par::FleetConfig::Backend::kProc}) {
      const bool proc = backend == par::FleetConfig::Backend::kProc;
      par::FleetConfig fcfg;
      fcfg.backend = backend;
      fcfg.workers = farm;
      par::FleetStats stats;
      const double seconds =
          timed_fleet_run(proc ? "proc" : "inproc", fcfg, &stats);
      const double tasks_per_s =
          static_cast<double>(stats.tasks_sent) / seconds;
      std::printf("  %-10s %10zu %12.1f %14.0f %8llu %9llu\n",
                  proc ? "proc" : "inproc", farm, seconds * 1e3, tasks_per_s,
                  static_cast<unsigned long long>(stats.worker_deaths),
                  static_cast<unsigned long long>(stats.respawns));
      check(stats.worker_deaths == 0, "healthy fleet run lost a worker");
      const std::string stem =
          std::string("faults/transport/") + (proc ? "proc" : "inproc");
      reg.gauge_set(stem + "/time_ms", seconds * 1e3);
      reg.gauge_set(stem + "/tasks_per_s", tasks_per_s);
    }

    // Recovery drill: one real process worker SIGKILLs itself mid-run and is
    // restarted from the CRC-sealed context checkpoint.
    par::FleetConfig kill_cfg;
    kill_cfg.backend = par::FleetConfig::Backend::kProc;
    kill_cfg.workers = farm;
    kill_cfg.context_path = "bench_faults_worker.ctx";
    kill_cfg.worker_faults.resize(farm);
    kill_cfg.worker_faults[1].crash_after_tasks = 8;
    par::FleetStats kill_stats;
    const double kill_seconds = timed_fleet_run("kill-drill", kill_cfg,
                                                &kill_stats);
    std::remove(kill_cfg.context_path.c_str());
    check(kill_stats.worker_deaths >= 1, "kill drill never killed a worker");
    check(kill_stats.respawns >= 1, "killed worker was never respawned");
    std::printf("  kill drill: %.1f ms, %llu deaths, %llu respawns, %llu "
                "tasks re-homed\n",
                kill_seconds * 1e3,
                static_cast<unsigned long long>(kill_stats.worker_deaths),
                static_cast<unsigned long long>(kill_stats.respawns),
                static_cast<unsigned long long>(kill_stats.rehomed_tasks));
    reg.gauge_set("faults/transport/kill_drill/time_ms", kill_seconds * 1e3);
    reg.gauge_set("faults/transport/kill_drill/deaths",
                  static_cast<double>(kill_stats.worker_deaths));
    reg.gauge_set("faults/transport/kill_drill/respawns",
                  static_cast<double>(kill_stats.respawns));
  }

  bench::print_header("verdict");
  std::printf("  recovery invariants: %s (%d violations)\n",
              g_violations == 0 ? "PASS" : "FAIL", g_violations);

  bench::emit_metrics("faults");
  bench::finish_trace(trace_path);
  return g_violations == 0 ? 0 : 1;
}
