// Reproduces paper Table 2: performance comparison for 50k-100k atom
// systems.  The MDGRAPE-4A row comes from this repository's hardware model
// (bench_fig9); the other rows are the literature values the paper quotes
// ([28] for GROMACS clusters, [35]/[5] for the Anton family) — they are
// comparison targets, not measurements of this software.
#include <cstdio>

#include "hw/machine.hpp"
#include "util/args.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  using namespace tme::hw;
  const Args args(argc, argv);
  const std::string trace_path = bench::begin_trace(args, "table2");

  MdgrapeMachine machine;
  const StepConfig config;  // Fig. 9 system, 2.5 fs steps
  obs::Registry::global().reset();  // one clean breakdown for the export
  const StepTimings t = machine.simulate_step(config);
  record_step_metrics(t, machine.params().nw);
  trace_step(t, machine.params());
  const double mdgrape_perf = machine.performance_us_per_day(config);
  const double mdgrape_step = t.step_time * 1e6;
  const double mdgrape_lr = t.long_range_total * 1e6;

  bench::print_header("Table 2: performance comparison, 50k-100k atom targets");
  std::printf("%-26s %-10s %12s %14s %12s\n", "computer system", "LR method",
              "perf us/day", "time/step us", "LR part us");

  struct Row {
    const char* system;
    const char* method;
    double perf, step, lr;
  };
  const Row literature[] = {
      {"CPU cluster (64 nodes)", "SPME", 0.25, 800.0, 500.0},
      {"GPU cluster (64 GPUs)", "SPME", 0.30, 700.0, 500.0},
  };
  for (const Row& r : literature) {
    std::printf("%-26s %-10s %12.2f %14.0f %12.0f   [literature]\n", r.system,
                r.method, r.perf, r.step, r.lr);
  }
  std::printf("%-26s %-10s %12.2f %14.0f %12.0f   [this model]\n",
              "MDGRAPE-4A (512 nodes)", "TME", mdgrape_perf, mdgrape_step,
              mdgrape_lr);
  const Row anton[] = {
      {"Anton 1 (512 nodes)", "k-GSE", 10.0, 20.0, 20.0},
      {"Anton 2 (512 nodes)", "u-series", 70.0, 3.0, 3.0},
  };
  for (const Row& r : anton) {
    std::printf("%-26s %-10s %12.2f %14.0f %12.0f   [literature]\n", r.system,
                r.method, r.perf, r.step, r.lr);
  }

  bench::print_header("shape checks (paper Sec. V.D)");
  std::printf("  MDGRAPE-4A vs best commodity cluster: %5.1fx faster  "
              "(paper: >= 3x)\n",
              mdgrape_perf / 0.30);
  std::printf("  Anton 1 vs MDGRAPE-4A:                %5.1fx faster  "
              "(paper: ~10x)\n",
              10.0 / mdgrape_perf);
  std::printf("  long-range part vs commodity cluster: %5.1fx faster  "
              "(paper: ~10x, 'one order of magnitude')\n",
              500.0 / mdgrape_lr);
  std::printf("  long-range part vs Anton 1:           %5.2fx  "
              "(paper: 'comparable')\n",
              mdgrape_lr / 20.0);

  bench::ExtraJson extra;
  if (t.links != nullptr) {
    extra.emplace_back("link_report",
                       t.links->report_json(machine.params().nw, t.step_time));
  }
  bench::emit_metrics("table2", extra);
  bench::finish_trace(trace_path);
  return 0;
}
