// Strong-scaling study (the abstract's design goal: "interconnects designed
// to achieve strong scalability for biomolecular simulations").
//
// Sweeps the machine size at a fixed 80,540-atom workload and prints step
// time, throughput, and the long-range decomposition; also compares the
// hardware-accelerated TME against the software-FFT alternative the paper
// rejected for the previous MDGRAPE-4 ("hundreds of microseconds").
#include <cstdio>

#include "hw/machine.hpp"
#include "util/args.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  using namespace tme::hw;
  const Args args(argc, argv);
  (void)args;

  bench::print_header(
      "strong scaling: Fig 9 workload (80,540 atoms, 32^3 grid) vs machine size");
  std::printf("%8s %12s %14s %14s %12s\n", "nodes", "step (us)", "us/day",
              "LR busy (us)", "GCU win (us)");
  for (const std::size_t n : {2u, 4u, 8u, 16u}) {
    MachineParams mp;
    mp.nodes_x = mp.nodes_y = mp.nodes_z = n;
    const MdgrapeMachine machine(mp);
    StepConfig cfg;
    // The grid decomposition needs at least one grid point per node.
    if (cfg.grid.nx / n < 1) continue;
    const StepTimings t = machine.simulate_step(cfg);
    std::printf("%7zu^3 %12.1f %14.3f %14.1f %12.1f\n", n, t.step_time * 1e6,
                machine.performance_us_per_day(cfg), t.long_range_total * 1e6,
                t.gcu_window * 1e6);
  }
  std::printf("\nexpected shape: near-ideal scaling while GP work per node\n"
              "dominates; the fixed-latency long-range phases (TMENW, GCU\n"
              "windows) cap the returns at large machines.\n");

  bench::print_header(
      "hardware TME vs software 3D FFT on the torus (the MDGRAPE-4 lesson)");
  std::printf("%8s %22s %24s\n", "nodes", "TME long range (us)",
              "software-FFT SPME (us)");
  for (const std::size_t n : {4u, 8u}) {
    MachineParams mp;
    mp.nodes_x = mp.nodes_y = mp.nodes_z = n;
    const MdgrapeMachine machine(mp);
    StepConfig cfg;
    const StepTimings t = machine.simulate_step(cfg);
    const double sw_fft = software_fft_estimate(mp, cfg.grid);
    std::printf("%7zu^3 %22.1f %24.1f\n", n, t.long_range_total * 1e6,
                sw_fft * 1e6);
  }
  std::printf("\npaper Sec. V.D: the software FFT prototype on MDGRAPE-4 would\n"
              "have taken hundreds of microseconds at 512 nodes — the reason\n"
              "the long-range method was redesigned around the TME.\n");

  // Export the canonical 8^3-node point of the sweep as the bench's
  // machine-readable stage breakdown.
  {
    MachineParams mp;
    mp.nodes_x = mp.nodes_y = mp.nodes_z = 8;
    const MdgrapeMachine machine(mp);
    StepConfig cfg;
    obs::Registry::global().reset();
    const StepTimings t = machine.simulate_step(cfg);
    record_step_metrics(t);
    bench::emit_metrics("scaling");
  }
  return 0;
}
