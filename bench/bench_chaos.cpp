// Cost of chaos: wall-clock overhead of the fault schedule against a clean
// run of the same guarded pipeline.
//
// Three configurations of the same N-step ChaosRunner workload:
//   clean       no events armed — the harness floor (twin + fleet + oracles
//               + rotating durable checkpoints)
//   composed    the CI smoke schedule: worker kill, node kill, packet
//               window, IO fsync window, one SDC burst
//   io-heavy    every checkpoint write under an armed shim (ENOSPC budget,
//               EINTR storms) — bounds the typed-error recovery cost
//
// Reported per configuration: total wall, ms/step, and the realized fault
// counters, so a regression in recovery cost (retransmission storms,
// respawn churn, fallback reads) shows up as ms/step drift between rows.
#include <chrono>
#include <cstdio>
#include <string>

#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"

#include "common.hpp"

#ifndef TME_WORKER_BIN
#define TME_WORKER_BIN ""
#endif

int main(int argc, char** argv) {
  using namespace tme;
  using clock = std::chrono::steady_clock;
  const Args args(argc, argv);

  chaos::RunnerOptions opts;
  opts.workdir = args.get("workdir", ".");
  opts.worker_bin = args.get("worker-bin", TME_WORKER_BIN);

  const std::uint64_t steps =
      static_cast<std::uint64_t>(args.get_int("steps", 6));

  chaos::ChaosSpec clean;
  clean.seed = 2021;
  clean.steps = steps;
  clean.timeout_ms = 400;

  chaos::ChaosSpec composed = clean;
  composed.events.push_back({0, chaos::Surface::kWorker, 0, 0, 0, -1, 0, "kill"});
  composed.events.push_back({1, chaos::Surface::kNode, 0, 0, 1, -1, 0, ""});
  composed.events.push_back(
      {2, chaos::Surface::kPacket, 0.08, 0.05, -1, -1, 4, ""});
  composed.events.push_back({2, chaos::Surface::kIo, 0, 0, -1, -1, 4, "fsync"});
  composed.events.push_back({4, chaos::Surface::kSdc, 1e-5, 0, -1, -1, 0, ""});

  chaos::ChaosSpec io_heavy = clean;
  for (std::uint64_t s = 0; s + 1 < steps; s += 2) {
    io_heavy.events.push_back(
        {s, chaos::Surface::kIo, 0, 0, 256, -1, s + 2, s % 4 == 0 ? "enospc" : "eintr"});
  }

  bench::print_header("chaos harness: fault-schedule overhead");
  std::printf("%-10s %10s %10s %8s %8s %8s %8s %8s\n", "config", "wall ms",
              "ms/step", "deaths", "retrans", "ckptRef", "ioInj", "oracles");

  const auto row = [&](const char* name,
                       const chaos::ChaosSpec& spec) -> double {
    chaos::ChaosRunner runner(spec, opts);
    const auto t0 = clock::now();
    const chaos::ChaosRunResult r = runner.run();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    std::printf("%-10s %10.1f %10.1f %8llu %8llu %8llu %8llu %8s\n", name, ms,
                ms / static_cast<double>(spec.steps),
                static_cast<unsigned long long>(r.worker_deaths),
                static_cast<unsigned long long>(r.retransmissions),
                static_cast<unsigned long long>(r.checkpoint_write_failures),
                static_cast<unsigned long long>(r.io_faults_injected),
                r.ok ? "green" : chaos::failure_signature(r).c_str());
    return ms;
  };

  row("clean", clean);
  row("composed", composed);
  row("io-heavy", io_heavy);

  // Telemetry overhead: the same composed schedule on the real-process
  // backend, with fleet-wide tracing + worker telemetry disarmed vs armed.
  // The runner's force-parity oracle runs in both rows, so a "green" verdict
  // is the forces-bitwise-identical-on/off check; the acceptance bar for
  // the armed row is <= 5% ms/step over the disarmed one.
  if (obs::kTraceEnabled) {
    chaos::ChaosSpec fleet_spec = composed;
    fleet_spec.backend = "proc";
    fleet_spec.timeout_ms = 2000;
    obs::Tracer::global().set_enabled(false);
    const double off_ms = row("telem-off", fleet_spec);
    obs::Tracer::global().set_enabled(true);
    const double on_ms = row("telem-on", fleet_spec);
    obs::Tracer::global().set_enabled(false);
    std::printf(
        "telemetry overhead: %+.2f%% ms/step (on %.1f, off %.1f; bar <=5%%)\n",
        (on_ms - off_ms) / off_ms * 100.0,
        on_ms / static_cast<double>(steps),
        off_ms / static_cast<double>(steps));
  }
  return 0;
}
