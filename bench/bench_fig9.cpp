// Reproduces paper Fig. 9 (single-step time chart on MDGRAPE-4A), Fig. 10
// (detailed GCU phases), and the Sec. V.B/V.C summaries: ~50 us long-range
// busy time, ~10 us (5%) net cost after overlap.
#include <cstdio>

#include "hw/machine.hpp"
#include "hw/timechart.hpp"
#include "util/args.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  using namespace tme::hw;
  const Args args(argc, argv);

  MdgrapeMachine machine;
  StepConfig config;  // defaults = the paper's Fig. 9 system
  config.atoms = args.get_int("atoms", 80540);
  config.dead_node_count =
      static_cast<std::size_t>(args.get_int("dead-nodes", 0));
  config.link_error_rate = args.get_double("link-error-rate", 0.0);
  const std::string trace_path = bench::begin_trace(args, "fig9");

  bench::print_header(
      "Fig 9: time chart of one MD step (80,540 atoms, 512 nodes, N=32^3, "
      "L=1, g_c=8, M=4)");
  obs::Registry::global().reset();  // one clean breakdown for the export
  const StepTimings with_lr = machine.simulate_step(config);
  record_step_metrics(with_lr, machine.params().nw);
  trace_step(with_lr, machine.params());
  std::printf("%s\n", render_timechart(with_lr.schedule, 100).c_str());
  std::printf("%s\n", render_task_table(with_lr.schedule).c_str());

  bench::print_header("Fig 10: GCU / TMENW phase detail");
  std::printf("  %-34s %8.2f us   (paper: ~1.5 us)\n", "restriction",
              with_lr.restriction * 1e6);
  std::printf("  %-34s %8.2f us   (paper: ~6 us)\n", "level-1 convolution",
              with_lr.convolution * 1e6);
  std::printf("  %-34s %8.2f us   (paper: ~1.5 us)\n", "prolongation",
              with_lr.prolongation * 1e6);
  std::printf("  %-34s %8.2f us   (paper: < 20 us)\n", "TMENW round trip",
              with_lr.tmenw * 1e6);
  std::printf("  %-34s %8.2f us   (paper: ~10 us)\n", "LRU CA + BI",
              (with_lr.lru_ca + with_lr.lru_bi) * 1e6);

  StepConfig no_lr = config;
  no_lr.long_range = false;
  const StepTimings without = machine.simulate_step(no_lr);

  bench::print_header("Sec V.B / V.C summary");
  std::printf("  %-42s %8.1f us   (paper: 206 us)\n", "single step with long range",
              with_lr.step_time * 1e6);
  std::printf("  %-42s %8.1f us   (paper: 196 us)\n", "single step without long range",
              without.step_time * 1e6);
  const double delta = (with_lr.step_time - without.step_time) * 1e6;
  std::printf("  %-42s %8.1f us   (paper: ~10 us, 5%%)\n",
              "net cost of the long-range term", delta);
  std::printf("  %-42s %8.1f %%\n", "as fraction of the step",
              delta / (with_lr.step_time * 1e6) * 100.0);
  std::printf("  %-42s %8.1f us   (paper: ~50 us)\n",
              "long-range busy time (CA..BI activities)",
              with_lr.long_range_total * 1e6);
  std::printf("  %-42s %8.1f us\n", "long-range wall-clock span",
              with_lr.long_range_span * 1e6);
  std::printf("  %-42s %8.3f us/day (paper: ~1.0 us/day at 2.5 fs)\n",
              "simulated throughput",
              machine.performance_us_per_day(config));

  bench::ExtraJson extra;
  if (with_lr.links != nullptr) {
    extra.emplace_back("link_report", with_lr.links->report_json(
                                          machine.params().nw, with_lr.step_time));
  }
  bench::emit_metrics("fig9", extra);
  bench::finish_trace(trace_path);
  return 0;
}
