// Reproduces the Sec. III.C analysis: computational and communication cost
// of the level-1 grid kernel convolution, B-spline MSM (dense range-limited
// 3D) vs TME (M separable 1D passes), as a function of gamma = (N/P) / g_c
// and M — plus a measured wall-clock cross-check of the two convolution
// paths on this machine.
#include <cstdio>

#include "core/cost_model.hpp"
#include "ewald/splitting.hpp"
#include "par/par_tme.hpp"
#include "core/gaussian_fit.hpp"
#include "core/grid_kernel.hpp"
#include "grid/separable_conv.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  (void)args;

  bench::print_header(
      "Sec III.C: analytic cost of the level-1 kernel convolution per node");
  std::printf("%8s %6s %4s | %14s %14s %8s | %12s %12s %8s\n", "N/P", "g_c", "M",
              "comp MSM", "comp TME", "ratio", "comm MSM", "comm TME", "ratio");
  for (const int local : {4, 8, 16}) {
    for (const int gc : {8, 12}) {
      for (const int m : {2, 4, 8}) {
        const CostModelInput in{local, gc, m};
        const auto msm = msm_level1_cost(in);
        const auto tme_c = tme_level1_cost(in);
        std::printf("%8d %6d %4d | %14.3e %14.3e %8.1f | %12.3e %12.3e %8.2f\n",
                    local, gc, m, msm.compute, tme_c.compute,
                    msm.compute / tme_c.compute, msm.comm, tme_c.comm,
                    msm.comm / tme_c.comm);
      }
    }
  }
  std::printf("\nMDGRAPE-4A operating points (N/P in {4, 8}, g_c = 8, M = 4):\n");
  for (const int local : {4, 8}) {
    const CostModelInput in{local, 8, 4};
    std::printf("  N/P=%d gamma=%.2f: TME saves %.0fx compute, %.1fx comm\n",
                local, gamma_ratio(in),
                msm_level1_cost(in).compute / tme_level1_cost(in).compute,
                msm_level1_cost(in).comm / tme_level1_cost(in).comm);
  }

  bench::print_header(
      "measured: separable (TME) vs dense 3D (MSM) convolution wall clock");
  const auto terms = fit_shell_gaussians(2.2008, 4);
  const int gc = 8;
  std::printf("%8s | %12s %12s %8s\n", "grid", "dense ms", "separable ms",
              "speedup");
  for (const std::size_t n : {16u, 32u}) {
    const auto kernels = build_level_kernels(terms, 6, {n, n, n},
                                             {0.3116, 0.3116, 0.3116}, gc);
    const auto cube = dense_kernel_cube(kernels, gc);
    Grid3d q(n, n, n);
    Rng rng(1);
    for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);

    Grid3d out(q.dims());
    Timer t_dense;
    convolve_dense3d(q, cube, gc, out);
    const double dense_ms = t_dense.milliseconds();

    Grid3d out2(q.dims());
    Timer t_sep;
    convolve_tensor(q, kernels, 1.0, out2);
    const double sep_ms = t_sep.milliseconds();

    std::printf("%7zu^3 | %12.2f %12.2f %8.1fx\n", n, dense_ms, sep_ms,
                dense_ms / sep_ms);
  }
  std::printf("\nexpected shape: TME wins both compute and communication at the\n"
              "machine's operating points; the separable path wins wall-clock\n"
              "by roughly (2 g_c + 1)^2 / (3 M).\n");

  bench::print_header(
      "measured: message traffic of the distributed TME vs the model");
  // Execute the real parallel data flow on a virtual 8^3 torus and compare
  // the level-convolution words per node with (2 + 4M) gamma^2 g_c^3.
  {
    const Box box{{6.4, 6.4, 6.4}};
    TmeParams tp;
    tp.alpha = alpha_from_tolerance(0.8, 1e-4);
    tp.grid = {32, 32, 32};
    tp.grid_cutoff = 8;
    tp.num_gaussians = 4;
    const par::TorusTopology topo(8, 8, 8);
    const par::ParallelTme ptme(box, tp, topo);
    const par::GridDecomposition decomp(tp.grid, ptme.topology());
    Grid3d q(tp.grid);
    Rng rng(1);
    for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);
    par::TrafficLog log;
    (void)ptme.solve_potential(par::DistributedGrid::distribute(q, decomp), &log);
    std::printf("%s\n", log.report().c_str());
    const CostModelInput op{4, 8, 4};
    const double predicted = tme_level1_cost(op).comm;
    const double measured =
        static_cast<double>(log.words_in("level convolution")) / 512.0;
    std::printf("  level-conv words/node: measured %.0f, Sec III.C model %.0f "
                "(%.1f%% apart)\n",
                measured, predicted,
                100.0 * std::abs(measured - predicted) / predicted);
  }
  return 0;
}
