// Shared helpers for the reproduction benches.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "md/short_range.hpp"
#include "md/system.hpp"
#include "md/topology.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/constants.hpp"
#include "util/simd.hpp"
#include "util/vec3.hpp"

namespace tme::bench {

// Completes a long-range result into total Coulomb forces by adding the
// analytic short-range (erfc) part over all non-excluded pairs, so the
// relative force error against the Ewald reference can be measured
// (Table 1 protocol; the reference includes all pairs, so exclusions are
// empty here).
inline CoulombResult complete_with_short_range(const Box& box,
                                               std::span<const Vec3> positions,
                                               std::span<const double> charges,
                                               CoulombResult lr, double alpha,
                                               double r_cut) {
  ParticleSystem sys;
  sys.box = box;
  sys.resize(positions.size());
  sys.positions.assign(positions.begin(), positions.end());
  sys.charges.assign(charges.begin(), charges.end());
  sys.forces.assign(positions.size(), Vec3{});
  Topology topo;
  topo.lj().assign(positions.size(), LjParams{});
  topo.finalize(positions.size());
  ShortRangeParams params;
  params.cutoff = r_cut;
  params.alpha = alpha;
  const ShortRangeResult sr = compute_short_range(sys, topo, params);
  lr.energy += sr.energy_coulomb;
  for (std::size_t i = 0; i < positions.size(); ++i) lr.forces[i] += sys.forces[i];
  return lr;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

// Derives short-range pair throughput (pairs/s) from the registry's pair
// counter and accumulated short_range timer and records it as a gauge, so
// every bench export reports a throughput number comparable across benches
// (bench_shortrange and bench_table2 in particular).  No-op when either
// input is missing or zero.
inline void record_pair_throughput() {
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  std::uint64_t pairs = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "short_range/pairs") pairs = value;
  }
  double seconds = 0.0;
  for (const auto& [path, stat] : snap.timers) {
    // The phase path is "short_range" at top level or ".../short_range"
    // when the evaluator runs inside an enclosing phase.
    if (path == "short_range" || (path.size() > 12 &&
                                  path.compare(path.size() - 12, 12,
                                               "/short_range") == 0)) {
      seconds += stat.seconds;
    }
  }
  if (pairs > 0 && seconds > 0.0) {
    obs::Registry::global().gauge_set(
        "short_range/pairs_per_s", static_cast<double>(pairs) / seconds);
  }
}

// Times `fn` over `reps` repetitions and returns the best (minimum) seconds
// per call.  The kernel runs ONCE untimed first so every timed repetition
// sees warm caches, a populated force table, and resolved lazy init — cold
// first-call costs used to leak into single-rep timings and made
// scalar-vs-native comparisons depend on sweep order.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  fn();  // warm-up, never timed
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

// Extra top-level JSON blocks a bench can attach to its export (e.g. the
// per-link "link_report" from a hardware-model run).
using ExtraJson = std::vector<std::pair<std::string, obs::JsonValue>>;

// Emits the current metrics registry as a machine-readable per-stage
// breakdown: printed to stdout under a marked header and written to
// BENCH_<name>.json in the working directory (the perf-trajectory record).
// Every export carries a "manifest" block (git describe, build type, TME_*
// environment, runtime facts) so a BENCH json is self-describing.
// Callers that want a single clean breakdown should reset the registry
// before the run they mean to export.
inline void emit_metrics(const std::string& bench_name,
                         const ExtraJson& extra = {}) {
  record_pair_throughput();
  // Every export records which SIMD backend and mode produced it.
  obs::manifest_set("simd", simd::describe_json());
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  obs::JsonValue root = obs::json_parse(obs::to_json(snap));
  root.as_object()["bench"] = obs::JsonValue::make_string(bench_name);
  root.as_object()["manifest"] = obs::manifest_json();
  for (const auto& [key, value] : extra) {
    root.as_object()[key] = value;
  }
  const std::string json = root.dump();

  print_header("metrics (json)");
  std::printf("%s\n", json.c_str());

  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  out << json << "\n";
  std::printf("[written: %s]\n", path.c_str());
}

// --trace-out support.  `--trace-out <path>` (or the bare flag, which picks
// TRACE_<bench>.json next to the BENCH json) turns the tracer on for the
// run; returns the output path, or "" when tracing was not requested.
inline std::string begin_trace(const Args& args, const std::string& bench_name) {
  if (!args.has("trace-out")) return {};
  std::string path = args.get("trace-out", "");
  if (path.empty() || path == "1") path = "TRACE_" + bench_name + ".json";
  if constexpr (!obs::kTraceEnabled) {
    std::fprintf(stderr,
                 "[--trace-out ignored: tracing compiled out (-DTME_TRACE=OFF)]\n");
    return {};
  }
  obs::Tracer::global().set_enabled(true);
  return path;
}

// Writes the trace collected since begin_trace; no-op for an empty path.
inline void finish_trace(const std::string& path) {
  if (path.empty()) return;
  const obs::Tracer& tracer = obs::Tracer::global();
  if (obs::Tracer::global().write(path)) {
    std::printf("[trace written: %s (%zu events, %zu dropped)]\n", path.c_str(),
                tracer.event_count(), tracer.dropped_count());
  } else {
    std::fprintf(stderr, "[trace write failed: %s]\n", path.c_str());
  }
}

}  // namespace tme::bench
