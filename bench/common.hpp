// Shared helpers for the reproduction benches.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "md/short_range.hpp"
#include "md/system.hpp"
#include "md/topology.hpp"
#include "util/constants.hpp"
#include "util/vec3.hpp"

namespace tme::bench {

// Completes a long-range result into total Coulomb forces by adding the
// analytic short-range (erfc) part over all non-excluded pairs, so the
// relative force error against the Ewald reference can be measured
// (Table 1 protocol; the reference includes all pairs, so exclusions are
// empty here).
inline CoulombResult complete_with_short_range(const Box& box,
                                               std::span<const Vec3> positions,
                                               std::span<const double> charges,
                                               CoulombResult lr, double alpha,
                                               double r_cut) {
  ParticleSystem sys;
  sys.box = box;
  sys.resize(positions.size());
  sys.positions.assign(positions.begin(), positions.end());
  sys.charges.assign(charges.begin(), charges.end());
  sys.forces.assign(positions.size(), Vec3{});
  Topology topo;
  topo.lj().assign(positions.size(), LjParams{});
  topo.finalize(positions.size());
  ShortRangeParams params;
  params.cutoff = r_cut;
  params.alpha = alpha;
  const ShortRangeResult sr = compute_short_range(sys, topo, params);
  lr.energy += sr.energy_coulomb;
  for (std::size_t i = 0; i < positions.size(); ++i) lr.forces[i] += sys.forces[i];
  return lr;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace tme::bench
