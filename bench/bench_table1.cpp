// Reproduces paper Table 1: relative force errors of SPME and TME (L = 1)
// with respect to the classical Ewald method, on a TIP3P water box.
//
// Paper configuration: 32,773 molecules (N = 98,319) in a 9.97270 nm cube,
// p = 6, N = 32^3, r_c = {1, 1.25, 1.5} nm with erfc(alpha r_c) = 1e-4,
// g_c = {4, 8, 12}, M = {1..4}.  The default run scales the box to 1/8 the
// molecule count with a 16^3 grid, which preserves every dimensionless
// parameter (alpha h, r_c / h, g_c, M); pass --full for the paper's exact
// sizes (expect tens of minutes on one core).
#include <cstdio>
#include <vector>

#include "core/tme.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "md/water_box.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  const bool full = args.get_flag("full");

  WaterBoxSpec spec;
  if (full) {
    spec = paper_table1_spec();
  } else {
    spec.molecules = args.get_int("molecules", 2048);
    spec.box_length = 0.0;  // density-derived
  }
  spec.seed = args.get_int("seed", 2021);
  const WaterBox wb = build_water_box(spec);
  const Box& box = wb.system.box;
  const std::size_t grid_n = full ? 32 : static_cast<std::size_t>(args.get_int("grid", 16));
  const double h = box.lengths.x / static_cast<double>(grid_n);

  // The paper's three cutoffs in grid units: 1 / 1.25 / 1.5 nm over
  // h = 9.9727/32 nm.
  const std::vector<double> rc_over_h = {3.2088, 4.0110, 4.8132};

  std::printf("water box: %zu molecules, N = %zu atoms, L = %.5f nm, grid %zu^3, "
              "h = %.4f nm%s\n",
              wb.molecules, wb.system.size(), box.lengths.x, grid_n, h,
              full ? " (paper-exact)" : " (scaled; --full for paper size)");

  // One double-precision Ewald reference serves every row (alpha-invariant).
  bench::print_header("computing Ewald reference (r_c = L/2, k-space to 1e-15)");
  Timer ref_timer;
  EwaldParams ref_params;
  ref_params.alpha = alpha_from_tolerance(0.5 * box.lengths.x, 1e-15);
  const CoulombResult reference =
      ewald_reference(box, wb.system.positions, wb.system.charges, ref_params);
  std::printf("reference alpha = %.6f nm^-1, energy = %.3f kJ/mol (%.1f s)\n",
              ref_params.alpha, reference.energy, ref_timer.seconds());

  bench::print_header("Table 1: relative force error vs Ewald reference");
  std::printf("%-6s %4s %3s |", "method", "g_c", "M");
  for (const double r : rc_over_h) std::printf("  r_c=%.3fnm", r * h);
  std::printf("\n");

  auto error_for = [&](const CoulombResult& lr, double alpha, double r_cut) {
    const CoulombResult total = bench::complete_with_short_range(
        box, wb.system.positions, wb.system.charges, lr, alpha, r_cut);
    return total.relative_force_error_against(reference);
  };

  // SPME row.
  std::printf("%-6s %4s %3s |", "SPME", "-", "-");
  for (const double ratio : rc_over_h) {
    const double r_cut = ratio * h;
    const double alpha = alpha_from_tolerance(r_cut, 1e-4);
    SpmeParams sp;
    sp.alpha = alpha;
    sp.order = 6;
    sp.grid = {grid_n, grid_n, grid_n};
    const Spme spme(box, sp);
    const double err =
        error_for(spme.compute(wb.system.positions, wb.system.charges), alpha, r_cut);
    std::printf("   %10.3e", err);
  }
  std::printf("\n");

  // TME rows.
  for (const int gc : {4, 8, 12}) {
    for (const std::size_t m : {1u, 2u, 3u, 4u}) {
      std::printf("%-6s %4d %3zu |", "TME", gc, m);
      for (const double ratio : rc_over_h) {
        const double r_cut = ratio * h;
        const double alpha = alpha_from_tolerance(r_cut, 1e-4);
        TmeParams tp;
        tp.alpha = alpha;
        tp.order = 6;
        tp.grid = {grid_n, grid_n, grid_n};
        tp.levels = 1;
        tp.grid_cutoff = gc;
        tp.num_gaussians = m;
        const Tme tme(box, tp);
        const double err = error_for(
            tme.compute(wb.system.positions, wb.system.charges), alpha, r_cut);
        std::printf("   %10.3e", err);
      }
      std::printf("\n");
    }
  }

  bench::print_header("expected shape (paper Table 1)");
  std::printf(
      "- M = 1 errors sit well above the rest; M = 3 and M = 4 coincide\n"
      "- g_c = 8 matches g_c = 12; g_c = 4 is visibly worse at the largest r_c\n"
      "- converged TME (g_c >= 8, M >= 3) is within a few %% of the SPME row\n");
  return 0;
}
