// Ablations of the TME's design choices (beyond the paper's tables):
//
//   A. Gaussian shell fit: Gauss–Legendre quadrature (paper Eq. 7) vs
//      least-squares-refined weights — the "many possibilities" of Sec. III.
//   B. B-spline order p = 4 / 6 / 8 (the hardware fixes p = 6).
//   C. The omega * omega kernel sharpening of Eq. 8: with vs without.
//   D. Hierarchy depth L = 1 vs L = 2 at fixed finest grid.
//   E. TME vs B-spline MSM: accuracy and measured convolution wall clock.
//
// All force errors follow the Table 1 protocol on a scaled TIP3P water box.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/gaussian_fit.hpp"
#include "core/grid_kernel.hpp"
#include "core/tme.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "grid/transfer.hpp"
#include "md/water_box.hpp"
#include "msm/msm.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

#include "common.hpp"

namespace {

using namespace tme;

// A TME variant whose middle-level kernels can be swapped (used for the
// sharpening and fit ablations): run the pipeline manually with custom
// kernels, sharing the CA/BI and top level of a reference Tme.
double force_error_with_kernels(const Tme& tme, const Box& box,
                                std::span<const Vec3> pos,
                                std::span<const double> q,
                                const std::vector<SeparableTerm>& kernels,
                                const CoulombResult& reference, double r_cut) {
  const TmeParams& params = tme.params();
  const ChargeAssigner assigner(box, params.grid, params.order);
  const Grid3d q_grid = assigner.assign(pos, q);
  // Single-level pipeline with the custom kernels.
  const Grid3d q_coarse = restrict_grid(q_grid, params.order);
  Grid3d phi = prolong_grid(tme.top_level().solve_potential(q_coarse), params.order);
  convolve_tensor(q_grid, kernels, constants::kCoulomb, phi);

  CoulombResult lr;
  lr.forces.assign(pos.size(), Vec3{});
  const double q_phi = assigner.back_interpolate(phi, pos, q, &lr.forces);
  lr.energy_reciprocal = 0.5 * q_phi;
  const CoulombResult total = bench::complete_with_short_range(
      box, pos, q, std::move(lr), params.alpha, r_cut);
  return total.relative_force_error_against(reference);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);

  // --- A: quadrature vs least-squares fit ----------------------------------
  bench::print_header("A. shell-fit ablation: max profile error over s in [0,6]");
  std::printf("%4s %16s %16s %10s\n", "M", "Gauss-Legendre", "least-squares",
              "gain");
  for (const std::size_t m : {1u, 2u, 3u, 4u}) {
    auto profile_error = [&](const std::vector<GaussianTerm>& terms) {
      const double g0 = g_shell(0.0, 1.0, 1);
      double worst = 0.0;
      for (double s = 0.0; s <= 6.0; s += 0.005) {
        worst = std::max(worst, std::abs(shell_from_gaussians(terms, s, 1) -
                                         g_shell(s, 1.0, 1)) /
                                    g0);
      }
      return worst;
    };
    const double err_gl = profile_error(fit_shell_gaussians(1.0, m));
    const double err_ls = profile_error(fit_shell_gaussians_least_squares(1.0, m));
    std::printf("%4zu %16.3e %16.3e %9.1fx\n", m, err_gl, err_ls,
                err_gl / err_ls);
  }

  // --- Shared water-box setup for B-E ---------------------------------------
  WaterBoxSpec spec;
  spec.molecules = args.get_int("molecules", 864);
  spec.seed = 11;
  const WaterBox wb = build_water_box(spec);
  const Box& box = wb.system.box;
  const std::size_t grid_n = 16;
  const double h = box.lengths.x / static_cast<double>(grid_n);
  const double r_cut = 4.0110 * h;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  const Vec3 spacing{h, h, h};

  std::printf("\nwater box: %zu molecules, box %.3f nm, grid 16^3, r_c = %.3f nm\n",
              wb.molecules, box.lengths.x, r_cut);
  EwaldParams ref_params;
  ref_params.alpha = alpha_from_tolerance(0.5 * box.lengths.x, 1e-15);
  Timer ref_timer;
  const CoulombResult reference =
      ewald_reference(box, wb.system.positions, wb.system.charges, ref_params);
  std::printf("Ewald reference computed in %.1f s\n", ref_timer.seconds());

  auto table1_error = [&](const CoulombResult& lr) {
    const CoulombResult total = bench::complete_with_short_range(
        box, wb.system.positions, wb.system.charges, lr, alpha, r_cut);
    return total.relative_force_error_against(reference);
  };

  // --- B: spline order -------------------------------------------------------
  bench::print_header("B. spline order ablation (g_c = 8, M = 4, L = 1)");
  std::printf("%4s %16s   (hardware fixes p = 6)\n", "p", "force error");
  for (const int p : {4, 6, 8}) {
    TmeParams tp;
    tp.order = p;
    tp.alpha = alpha;
    tp.grid = {grid_n, grid_n, grid_n};
    tp.grid_cutoff = 8;
    tp.num_gaussians = 4;
    const Tme tme(box, tp);
    std::printf("%4d %16.3e\n", p,
                table1_error(tme.compute(wb.system.positions, wb.system.charges)));
  }

  // --- C: omega^2 sharpening -------------------------------------------------
  bench::print_header("C. kernel sharpening ablation (Eq. 8's G = g * omega^2)");
  {
    TmeParams tp;
    tp.alpha = alpha;
    tp.grid = {grid_n, grid_n, grid_n};
    tp.grid_cutoff = 8;
    tp.num_gaussians = 4;
    const Tme tme(box, tp);
    const auto terms = fit_shell_gaussians(alpha, 4);
    const auto sharpened =
        build_level_kernels(terms, 6, tp.grid, spacing, 8, true);
    const auto naive = build_level_kernels(terms, 6, tp.grid, spacing, 8, false);
    const double err_sharp =
        force_error_with_kernels(tme, box, wb.system.positions,
                                 wb.system.charges, sharpened, reference, r_cut);
    const double err_naive =
        force_error_with_kernels(tme, box, wb.system.positions,
                                 wb.system.charges, naive, reference, r_cut);
    std::printf("  with sharpening    %12.3e\n", err_sharp);
    std::printf("  without sharpening %12.3e   (%.0fx worse)\n", err_naive,
                err_naive / err_sharp);
  }

  // --- D: hierarchy depth ----------------------------------------------------
  bench::print_header("D. hierarchy depth (fixed finest grid 16^3)");
  for (const int levels : {1, 2}) {
    TmeParams tp;
    tp.alpha = alpha;
    tp.grid = {grid_n, grid_n, grid_n};
    tp.levels = levels;
    tp.grid_cutoff = 8;
    tp.num_gaussians = 4;
    if (grid_n >> levels < 6) {
      std::printf("  L = %d: top grid too coarse for p = 6, skipped\n", levels);
      continue;
    }
    const Tme tme(box, tp);
    std::printf("  L = %d: force error %12.3e  (top grid %zu^3)\n", levels,
                table1_error(tme.compute(wb.system.positions, wb.system.charges)),
                grid_n >> levels);
  }

  // --- E: TME vs MSM ----------------------------------------------------------
  bench::print_header("E. TME vs B-spline MSM (same splitting, g_c = 8)");
  {
    TmeParams tp;
    tp.alpha = alpha;
    tp.grid = {grid_n, grid_n, grid_n};
    tp.grid_cutoff = 8;
    tp.num_gaussians = 4;
    const Tme tme(box, tp);
    MsmParams mp;
    mp.alpha = alpha;
    mp.grid = {grid_n, grid_n, grid_n};
    mp.grid_cutoff = 8;
    const Msm msm(box, mp);

    Timer t_tme;
    const CoulombResult lr_tme = tme.compute(wb.system.positions, wb.system.charges);
    const double ms_tme = t_tme.milliseconds();
    Timer t_msm;
    const CoulombResult lr_msm = msm.compute(wb.system.positions, wb.system.charges);
    const double ms_msm = t_msm.milliseconds();

    std::printf("  %-14s force error %12.3e   wall %8.1f ms\n", "TME (M=4)",
                table1_error(lr_tme), ms_tme);
    std::printf("  %-14s force error %12.3e   wall %8.1f ms\n", "B-spline MSM",
                table1_error(lr_msm), ms_msm);
    std::printf("  (Sec. III.C predicts the dense MSM convolution costs\n"
                "   (2g_c+1)^2 / (3M) = %.0fx the TME's separable passes)\n",
                17.0 * 17.0 / 12.0);
  }
  return 0;
}
