// Google-benchmark microbenchmarks of the numerical kernels: B-spline
// evaluation (the LRU inner loop), FFT sizes the hardware uses, separable
// vs dense convolution (the GCU workload), charge assignment and back
// interpolation throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/gaussian_fit.hpp"
#include "core/grid_kernel.hpp"
#include "ewald/charge_assignment.hpp"
#include "fft/fft3d.hpp"
#include "grid/separable_conv.hpp"
#include "spline/bspline.hpp"
#include "util/rng.hpp"

namespace {

using namespace tme;

void BM_BsplineWeights(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  std::vector<double> w(static_cast<std::size_t>(p)), d(w);
  Rng rng(1);
  double u = rng.uniform(0.0, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bspline_weights_central(p, u, w, d));
    u += 0.37;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BsplineWeights)->Arg(4)->Arg(6)->Arg(8);

void BM_Fft3d(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Fft3d fft(n, n, n);
  Rng rng(2);
  std::vector<std::complex<double>> data(fft.size());
  for (auto& v : data) v = {rng.uniform(-1.0, 1.0), 0.0};
  for (auto _ : state) {
    fft.forward(data);
    fft.inverse(data);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(fft.size()));
}
BENCHMARK(BM_Fft3d)->Arg(16)->Arg(32)->Arg(64);

void BM_SeparableConvolution(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto terms = fit_shell_gaussians(2.2, 4);
  const auto kernels =
      build_level_kernels(terms, 6, {n, n, n}, {0.31, 0.31, 0.31}, 8);
  Grid3d q(n, n, n);
  Rng rng(3);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);
  Grid3d out(q.dims());
  for (auto _ : state) {
    out.fill(0.0);
    convolve_tensor(q, kernels, 1.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(q.size()));
}
BENCHMARK(BM_SeparableConvolution)->Arg(16)->Arg(32);

void BM_DenseConvolution(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto terms = fit_shell_gaussians(2.2, 4);
  const auto kernels =
      build_level_kernels(terms, 6, {n, n, n}, {0.31, 0.31, 0.31}, 8);
  const auto cube = dense_kernel_cube(kernels, 8);
  Grid3d q(n, n, n);
  Rng rng(4);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.uniform(-1.0, 1.0);
  Grid3d out(q.dims());
  for (auto _ : state) {
    convolve_dense3d(q, cube, 8, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(q.size()));
}
BENCHMARK(BM_DenseConvolution)->Arg(16);

void BM_ChargeAssignment(benchmark::State& state) {
  const std::size_t atoms = static_cast<std::size_t>(state.range(0));
  const Box box{{6.0, 6.0, 6.0}};
  const ChargeAssigner ca(box, {32, 32, 32}, 6);
  Rng rng(5);
  std::vector<Vec3> pos(atoms);
  std::vector<double> q(atoms);
  for (std::size_t i = 0; i < atoms; ++i) {
    pos[i] = {rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)};
    q[i] = rng.uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ca.assign(pos, q));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(atoms));
}
BENCHMARK(BM_ChargeAssignment)->Arg(1000)->Arg(10000);

void BM_BackInterpolation(benchmark::State& state) {
  const std::size_t atoms = static_cast<std::size_t>(state.range(0));
  const Box box{{6.0, 6.0, 6.0}};
  const ChargeAssigner ca(box, {32, 32, 32}, 6);
  Rng rng(6);
  std::vector<Vec3> pos(atoms);
  std::vector<double> q(atoms);
  for (std::size_t i = 0; i < atoms; ++i) {
    pos[i] = {rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)};
    q[i] = rng.uniform(-1.0, 1.0);
  }
  const Grid3d grid = ca.assign(pos, q);
  std::vector<Vec3> forces(atoms);
  for (auto _ : state) {
    forces.assign(atoms, Vec3{});
    benchmark::DoNotOptimize(ca.back_interpolate(grid, pos, q, &forces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(atoms));
}
BENCHMARK(BM_BackInterpolation)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
