// Reproduces paper Fig. 3: the Gaussian approximation of the normalised
// middle-range shell profile g_{alpha,l}(r) / g_{alpha,l}(0).
//
//   (a) profile and its M = 1, 2 Gaussian approximations vs s = alpha r / 2^{l-1}
//   (b) max/percentile approximation error vs s for M = 1..4
//
// Both panels are invariant in alpha and l (paper Eq. 5), so the series are
// printed in the dimensionless coordinate s.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/gaussian_fit.hpp"
#include "util/args.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  const double s_max = args.get_double("smax", 6.0);
  const double ds = args.get_double("ds", 0.25);

  bench::print_header("Fig 3(a): shell profile g(s)/g(0) and Gaussian approximations");
  std::printf("%8s %12s %12s %12s %12s %12s\n", "s", "exact", "M=1", "M=2", "M=3",
              "M=4");
  for (double s = 0.0; s <= s_max + 1e-12; s += ds) {
    std::printf("%8.3f %12.7f %12.7f %12.7f %12.7f %12.7f\n", s,
                shell_profile_exact(s), shell_profile_gaussian(s, 1),
                shell_profile_gaussian(s, 2), shell_profile_gaussian(s, 3),
                shell_profile_gaussian(s, 4));
  }

  bench::print_header("Fig 3(b): |approximation error| vs s");
  std::printf("%8s %12s %12s %12s %12s\n", "s", "M=1", "M=2", "M=3", "M=4");
  const double ds_fine = ds / 5.0;
  for (double s = 0.0; s <= s_max + 1e-12; s += ds) {
    double err[4] = {0.0, 0.0, 0.0, 0.0};
    // Report the max error over the bin [s, s + ds) like a plotted envelope.
    for (double t = s; t < s + ds && t <= s_max; t += ds_fine) {
      const double exact = shell_profile_exact(t);
      for (std::size_t m = 1; m <= 4; ++m) {
        err[m - 1] = std::max(err[m - 1],
                              std::abs(shell_profile_gaussian(t, m) - exact));
      }
    }
    std::printf("%8.3f %12.4e %12.4e %12.4e %12.4e\n", s, err[0], err[1], err[2],
                err[3]);
  }

  bench::print_header("Fig 3(b) summary: max error over s in [0, smax]");
  std::printf("%6s %14s   (paper: error decreases rapidly with M)\n", "M",
              "max |error|");
  double prev = 1.0;
  for (std::size_t m = 1; m <= 6; ++m) {
    double worst = 0.0;
    for (double s = 0.0; s <= s_max; s += 0.01) {
      worst = std::max(worst,
                       std::abs(shell_profile_gaussian(s, m) - shell_profile_exact(s)));
    }
    std::printf("%6zu %14.4e   %s\n", m, worst,
                worst < prev ? "(decreasing)" : "(NOT decreasing!)");
    prev = worst;
  }
  return 0;
}
