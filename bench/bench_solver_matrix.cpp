// Solver x scenario accuracy/cost sweep over every registered long-range
// backend: the bench twin of tests/test_solver_matrix.cpp.  For each
// scenario the classical Ewald backend provides the force reference; every
// backend's cell reports the Table 1 relative RMS force error, the total
// long-range energy deviation, and the per-call wall time.  The export
// (BENCH_solver_matrix.json) embeds each solver's describe() manifest, so a
// recorded run names every backend knob it measured.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/solvers.hpp"
#include "ewald/splitting.hpp"
#include "md/scenarios.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  const int repeats = args.get_int("repeats", 3);
  const int molecules = args.get_int("molecules", 64);
  const std::uint64_t seed = args.get_int("seed", 2021);

  std::vector<Scenario> scenarios;
  scenarios.push_back(scenario_tip3p_water(molecules, seed));
  scenarios.push_back(scenario_nacl_electrolyte(molecules, 4, seed + 1));
  scenarios.push_back(scenario_charged_solute(molecules / 2, 2.0, seed + 2));
  scenarios.push_back(scenario_anisotropic_water(molecules / 2, seed + 3));
  scenarios.push_back(scenario_random_gas(4 * molecules, 1.6, seed + 4));

  bench::print_header("solver x scenario matrix");
  std::printf("%-10s %-20s %6s %12s %12s %10s\n", "solver", "scenario", "N",
              "dF/F (rms)", "dE/E", "ms/call");

  obs::JsonValue cells = obs::JsonValue::make_array();
  obs::JsonValue solver_manifests = obs::JsonValue::make_object();

  for (const Scenario& sc : scenarios) {
    const double min_length =
        std::min({sc.box.lengths.x, sc.box.lengths.y, sc.box.lengths.z});
    const double r_cut = 0.45 * min_length;
    SolverTuning tuning;
    tuning.alpha = alpha_from_tolerance(r_cut, 1e-4);
    tuning.grid = sc.grid;

    const CoulombResult reference =
        make_long_range_solver("ewald", sc.box, tuning)
            ->compute(sc.positions, sc.charges);

    for (const std::string& backend : long_range_backends()) {
      const std::unique_ptr<LongRangeSolver> solver =
          make_long_range_solver(backend, sc.box, tuning);
      solver_manifests.as_object()[backend] = solver->describe();

      CoulombResult out;
      const Timer timer;
      for (int r = 0; r < repeats; ++r) {
        out = solver->compute(sc.positions, sc.charges);
      }
      const double ms = timer.milliseconds() / repeats;
      const double force_err = out.relative_force_error_against(reference);
      const double energy_err = std::abs(out.energy - reference.energy) /
                                std::abs(reference.energy);

      std::printf("%-10s %-20s %6zu %12.3e %12.3e %10.3f\n", backend.c_str(),
                  sc.name.c_str(), sc.positions.size(), force_err, energy_err,
                  ms);

      obs::JsonValue rec = obs::JsonValue::make_object();
      auto& r = rec.as_object();
      r["solver"] = obs::JsonValue::make_string(backend);
      r["scenario"] = obs::JsonValue::make_string(sc.name);
      r["scenario_config"] = sc.describe();
      r["solver_config"] = solver->describe();
      r["force_rms_rel"] = obs::JsonValue::make_number(force_err);
      r["energy_rel"] = obs::JsonValue::make_number(energy_err);
      r["ms_per_call"] = obs::JsonValue::make_number(ms);
      cells.as_array().push_back(std::move(rec));
    }
  }

  // The solver manifests also ride the run manifest itself, exercising the
  // describe() -> manifest_json() round trip the bench exports rely on.
  obs::manifest_set("solver_backends", solver_manifests);

  bench::ExtraJson extra;
  extra.emplace_back("matrix", std::move(cells));
  bench::emit_metrics("solver_matrix", extra);
  return 0;
}
