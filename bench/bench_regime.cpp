// Operating-regime study: relative force error of SPME and TME as a
// function of alpha * h (the splitting parameter in grid units).
//
// The paper runs at alpha h ~ 0.69..0.86 (Table 1's three cutoffs over a
// 32^3 grid).  This sweep shows why: finer grids (small alpha h) starve the
// g_c-truncated TME kernels — the slowest shell Gaussian (width alpha/2)
// no longer decays inside g_c taps — while coarser grids (large alpha h)
// degrade both methods through plain interpolation error.  SPME, whose
// reciprocal-space kernel has no real-space truncation, keeps improving as
// the grid refines; the divergence of the two curves on the left side is
// the cost the TME pays for locality.
#include <cmath>
#include <cstdio>

#include "core/tme.hpp"
#include "core/tuning.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "md/water_box.hpp"
#include "util/args.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);

  WaterBoxSpec spec;
  spec.molecules = args.get_int("molecules", 864);
  spec.seed = 11;
  const WaterBox wb = build_water_box(spec);
  const Box& box = wb.system.box;

  EwaldParams ref_params;
  ref_params.alpha = alpha_from_tolerance(0.5 * box.lengths.x, 1e-15);
  const CoulombResult reference =
      ewald_reference(box, wb.system.positions, wb.system.charges, ref_params);

  bench::print_header(
      "force error vs alpha*h at fixed r_c (g_c = 8, M = 4, p = 6)");
  std::printf("water box: %zu molecules, box %.3f nm\n\n", wb.molecules,
              box.lengths.x);
  std::printf("%8s %8s %10s | %12s %12s %10s\n", "grid", "alpha*h", "r_c/h",
              "SPME", "TME", "TME/SPME");

  // Fixed physics (r_c, alpha); sweep the grid resolution.
  const double r_cut = 0.25 * box.lengths.x;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  for (const std::size_t n : {8u, 12u, 16u, 24u, 32u, 48u}) {
    const double h = box.lengths.x / static_cast<double>(n);
    if (n < 12) continue;  // top grid below spline order
    SpmeParams sp;
    sp.alpha = alpha;
    sp.grid = {n, n, n};
    const Spme spme(box, sp);
    const CoulombResult lr_spme = spme.compute(wb.system.positions, wb.system.charges);
    const CoulombResult spme_total = bench::complete_with_short_range(
        box, wb.system.positions, wb.system.charges, lr_spme, alpha, r_cut);
    const double err_spme = spme_total.relative_force_error_against(reference);

    TmeParams tp;
    tp.alpha = alpha;
    tp.grid = {n, n, n};
    tp.grid_cutoff = 8;
    tp.num_gaussians = 4;
    const Tme tme(box, tp);
    const CoulombResult lr_tme = tme.compute(wb.system.positions, wb.system.charges);
    const CoulombResult tme_total = bench::complete_with_short_range(
        box, wb.system.positions, wb.system.charges, lr_tme, alpha, r_cut);
    const double err_tme = tme_total.relative_force_error_against(reference);

    std::printf("%7zu^3 %8.3f %10.2f | %12.3e %12.3e %9.1fx\n", n, alpha * h,
                r_cut / h, err_spme, err_tme, err_tme / err_spme);
  }

  bench::print_header("the auto-tuner's pick for this box");
  TmeTuningRequest req;
  req.r_cut = r_cut;
  const TmeTuning tuned = tune_tme(box, req);
  std::printf("grid %zu^3, L = %d, M = %zu, alpha*h = %.3f, r_c/h = %.2f\n",
              tuned.params.grid.nx, tuned.params.levels,
              tuned.params.num_gaussians, tuned.alpha * tuned.grid_spacing,
              tuned.rc_over_h);
  std::printf("\nexpected shape: TME tracks SPME near alpha*h ~ 0.7 (the "
              "paper's regime)\nand detaches on over-refined grids where the "
              "truncated kernels lose the\nslow shell Gaussian's tail.\n");
  return 0;
}
