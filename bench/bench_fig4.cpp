// Reproduces paper Fig. 4: NVE total-energy traces of SETTLE-constrained
// TIP3P water with SPME vs TME (g_c = 8, M = 1, 2, 3) long-range solvers.
//
// Paper configuration: the Table 1 water system, 200 ps at 1 fs,
// ewald-rtol = 1e-4, p = 6, N = 32^3, r_c = 1.25 nm.  The default run uses
// a smaller box / shorter trajectory with all dimensionless parameters
// preserved; pass --molecules / --ps to scale up.
//
// Protocol: the freshly built box is equilibrated once (velocity rescaling
// to 300 K) with the SPME force field; every solver then runs NVE from that
// identical snapshot.  Signatures to reproduce: no systematic energy drift
// for any solver, and a total-energy offset of the TME relative to SPME
// that shrinks as M grows.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/tme.hpp"
#include "ewald/splitting.hpp"
#include "md/integrator.hpp"
#include "md/water_box.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

#include "common.hpp"

namespace {

struct Trace {
  std::string label;
  std::vector<double> total_energy;  // sampled, kJ/mol
  double e_first = 0.0;
  double drift_per_ns = 0.0;  // linear-fit slope
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);

  WaterBoxSpec spec;
  spec.molecules = args.get_int("molecules", 500);
  spec.temperature = 300.0;
  spec.seed = args.get_int("seed", 7);
  const double sim_ps = args.get_double("ps", 2.0);
  const double equil_ps = args.get_double("equil-ps", 0.5);
  const int sample_every = args.get_int("sample", 50);

  const std::size_t grid_n = args.get_int("grid", 16);
  const int steps = static_cast<int>(sim_ps * 1000.0);
  const int equil_steps = static_cast<int>(equil_ps * 1000.0);

  // r_c / h = 4.011 (the paper's r_c = 1.25 nm row).
  WaterBox wb = build_water_box(spec);
  const Box box = wb.system.box;
  const double h = box.lengths.x / static_cast<double>(grid_n);
  const double r_cut = 4.0110 * h;
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;
  sr.shift_lj = true;  // GROMACS-style potential shift at the cutoff

  std::printf("NVE: %zu molecules, box %.4f nm, grid %zu^3, r_c = %.4f nm, "
              "dt = 1 fs, %d + %d steps (equil + production)\n",
              spec.molecules, box.lengths.x, grid_n, r_cut, equil_steps, steps);

  // --- Equilibrate once with SPME; snapshot the state. ---------------------
  {
    SpmeParams sp;
    sp.alpha = alpha;
    sp.grid = {grid_n, grid_n, grid_n};
    const ForceField ff(sr, make_spme_solver(box, sp));
    const VelocityVerlet integrator(wb.topology, wb.system, IntegratorParams{});
    integrator.prime(wb.system, wb.topology, ff);
    const std::size_t dof = wb.degrees_of_freedom();
    Timer timer;
    for (int s = 0; s < equil_steps; ++s) {
      integrator.step(wb.system, wb.topology, ff);
      if (s % 50 == 49) {
        // Crude velocity rescale to 300 K during equilibration only.
        const double t_now = wb.system.temperature(dof);
        const double scale = std::sqrt(300.0 / std::max(t_now, 1.0));
        for (auto& v : wb.system.velocities) v *= scale;
      }
    }
    std::printf("equilibrated %.1f ps (T = %.0f K) in %.1f s\n", equil_ps,
                wb.system.temperature(dof), timer.seconds());
  }
  const std::vector<Vec3> snapshot_x = wb.system.positions;
  const std::vector<Vec3> snapshot_v = wb.system.velocities;

  auto run = [&](const std::string& label,
                 std::unique_ptr<LongRangeSolver> solver) {
    wb.system.positions = snapshot_x;
    wb.system.velocities = snapshot_v;
    const ForceField ff(sr, std::move(solver));
    const VelocityVerlet integrator(wb.topology, wb.system, IntegratorParams{});
    integrator.prime(wb.system, wb.topology, ff);

    Trace trace;
    trace.label = label;
    Timer timer;
    for (int s = 0; s < steps; ++s) {
      const StepReport report = integrator.step(wb.system, wb.topology, ff);
      if (s % sample_every == 0) trace.total_energy.push_back(report.total());
    }
    trace.e_first = trace.total_energy.front();
    // Least-squares drift in kJ/mol per ns.
    const std::size_t n = trace.total_energy.size();
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double t_ns = static_cast<double>(i) * sample_every * 1e-6;
      sx += t_ns;
      sy += trace.total_energy[i];
      sxx += t_ns * t_ns;
      sxy += t_ns * trace.total_energy[i];
    }
    trace.drift_per_ns = (n * sxy - sx * sy) / (n * sxx - sx * sx + 1e-30);
    std::printf("  %-12s done in %.1f s\n", label.c_str(), timer.seconds());
    return trace;
  };

  bench::print_header("Fig 4: NVE total energy traces (identical start state)");
  std::vector<Trace> traces;
  {
    SpmeParams sp;
    sp.alpha = alpha;
    sp.grid = {grid_n, grid_n, grid_n};
    traces.push_back(run("SPME", make_spme_solver(box, sp)));
  }
  for (const std::size_t m : {1u, 2u, 3u}) {
    TmeParams tp;
    tp.alpha = alpha;
    tp.grid = {grid_n, grid_n, grid_n};
    tp.grid_cutoff = 8;
    tp.num_gaussians = m;
    traces.push_back(run("TME M=" + std::to_string(m), make_tme_solver(box, tp)));
  }

  std::printf("\n%10s", "t (ps)");
  for (const Trace& t : traces) std::printf(" %14s", t.label.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < traces[0].total_energy.size(); ++i) {
    std::printf("%10.3f", static_cast<double>(i) * sample_every * 1e-3);
    for (const Trace& t : traces) std::printf(" %14.3f", t.total_energy[i]);
    std::printf("\n");
  }

  bench::print_header("Fig 4 summary");
  std::printf("%-12s %16s %18s %20s\n", "solver", "E(0) kJ/mol",
              "drift kJ/mol/ns", "offset vs SPME");
  const double spme_e0 = traces[0].e_first;
  for (const Trace& t : traces) {
    std::printf("%-12s %16.3f %18.3f %20.3f\n", t.label.c_str(), t.e_first,
                t.drift_per_ns, t.e_first - spme_e0);
  }
  std::printf(
      "\nexpected shape (paper Fig 4): no systematic drift for any solver;\n"
      "TME M=1 shows the largest total-energy offset from SPME, shrinking\n"
      "for M=2 and M=3 (paper: ~80 kJ/mol for M=1 at 98,319 atoms).\n");
  return 0;
}
