// Liquid-water structure and dynamics with the TME: equilibrates a TIP3P
// box, then samples the O-O radial distribution function and the oxygen
// mean-square displacement.  A physically meaningful end-to-end check: the
// first g_OO peak of TIP3P sits near 0.28 nm.
//
//   ./examples/water_structure [--molecules 216] [--equil-ps 1] [--sample-ps 2]
#include <cstdio>

#include "core/tme.hpp"
#include "ewald/splitting.hpp"
#include "md/integrator.hpp"
#include "md/observables.hpp"
#include "md/thermostat.hpp"
#include "md/water_box.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);

  WaterBoxSpec spec;
  spec.molecules = args.get_int("molecules", 216);
  spec.temperature = 300.0;
  const double equil_ps = args.get_double("equil-ps", 1.0);
  const double sample_ps = args.get_double("sample-ps", 2.0);

  WaterBox wb = build_water_box(spec);
  const Box box = wb.system.box;
  const std::size_t grid_n = 16;
  const double r_cut = 4.0 * box.lengths.x / static_cast<double>(grid_n);
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;
  sr.shift_lj = true;
  TmeParams tp;
  tp.alpha = alpha;
  tp.grid = {grid_n, grid_n, grid_n};
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  const ForceField ff(sr, make_tme_solver(box, tp));
  const VelocityVerlet integrator(wb.topology, wb.system, IntegratorParams{});
  integrator.prime(wb.system, wb.topology, ff);
  const std::size_t dof = wb.degrees_of_freedom();

  std::printf("TIP3P water: %zu molecules, box %.3f nm, r_c = %.3f nm\n",
              wb.molecules, box.lengths.x, r_cut);

  // Equilibrate with weak coupling.
  BerendsenParams thermostat;
  thermostat.dof = dof;
  thermostat.time_constant = 0.02;
  Timer timer;
  const int equil_steps = static_cast<int>(equil_ps * 1000.0);
  for (int s = 0; s < equil_steps; ++s) {
    integrator.step(wb.system, wb.topology, ff);
    apply_berendsen(wb.system, thermostat, 0.001);
  }
  std::printf("equilibrated %.1f ps at T = %.0f K (%.0f s)\n", equil_ps,
              wb.system.temperature(dof), timer.seconds());

  // Sample.
  std::vector<std::size_t> oxygens;
  for (std::size_t m = 0; m < wb.molecules; ++m) oxygens.push_back(3 * m);
  RdfAccumulator rdf(std::min(1.0, 0.45 * box.lengths.x), 60);
  MsdTracker msd(box, wb.system.positions, oxygens);
  const int sample_steps = static_cast<int>(sample_ps * 1000.0);
  double final_msd = 0.0;
  for (int s = 0; s < sample_steps; ++s) {
    integrator.step(wb.system, wb.topology, ff);
    if (s % 100 == 99) {
      rdf.accumulate(box, wb.system.positions, oxygens, oxygens);
      final_msd = msd.update(wb.system.positions);
    }
  }

  const RdfResult g = rdf.result();
  std::printf("\nO-O radial distribution function (%zu frames):\n", g.samples);
  std::printf("%8s %10s\n", "r (nm)", "g(r)");
  for (std::size_t b = 0; b < g.r.size(); b += 2) {
    std::printf("%8.3f %10.3f\n", g.r[b], g.g[b]);
  }
  std::size_t peak = 0;
  for (std::size_t b = 1; b < g.g.size(); ++b) {
    if (g.g[b] > g.g[peak]) peak = b;
  }
  std::printf("\nfirst g_OO peak at r = %.3f nm (TIP3P literature: ~0.28 nm)\n",
              g.r[peak]);
  std::printf("oxygen MSD after %.1f ps: %.4f nm^2 (D ~ %.2e cm^2/s)\n", sample_ps,
              final_msd, final_msd / (6.0 * sample_ps) * 1e-2);
  return 0;
}
