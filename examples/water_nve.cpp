// NVE molecular dynamics of TIP3P water with the TME long-range solver —
// the paper's Fig. 4 workload as a runnable application.
//
//   ./examples/water_nve [--molecules 216] [--ps 2] [--solver tme|spme]
//                        [--ion-pairs 0] [--traj out.xyz]
//
// Prints a short trajectory log (time, kinetic/potential/total energy,
// temperature) and verifies constraint satisfaction at the end.
#include <cstdio>
#include <string>

#include "core/tme.hpp"
#include "ewald/splitting.hpp"
#include "md/integrator.hpp"
#include "md/water_box.hpp"
#include "util/args.hpp"
#include "util/io.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);

  WaterBoxSpec spec;
  spec.molecules = args.get_int("molecules", 216);
  spec.temperature = args.get_double("temperature", 300.0);
  const double sim_ps = args.get_double("ps", 2.0);
  const std::string solver_name = args.get("solver", "tme");

  WaterBox wb = build_water_box(spec);
  const std::size_t ion_pairs =
      static_cast<std::size_t>(args.get_int("ion-pairs", 0));
  if (ion_pairs > 0) add_ion_pairs(wb, ion_pairs);
  const std::string traj_path = args.get("traj", "");
  const Box& box = wb.system.box;
  const std::size_t grid_n = 16;
  const double r_cut = 4.0 * box.lengths.x / static_cast<double>(grid_n);
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);

  std::unique_ptr<LongRangeSolver> solver;
  if (solver_name == "tme") {
    TmeParams tp;
    tp.alpha = alpha;
    tp.grid = {grid_n, grid_n, grid_n};
    tp.grid_cutoff = 8;
    tp.num_gaussians = 4;
    solver = make_tme_solver(box, tp);
  } else if (solver_name == "spme") {
    SpmeParams sp;
    sp.alpha = alpha;
    sp.grid = {grid_n, grid_n, grid_n};
    solver = make_spme_solver(box, sp);
  } else {
    std::fprintf(stderr, "unknown --solver '%s' (use tme or spme)\n",
                 solver_name.c_str());
    return 1;
  }

  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;
  const ForceField ff(sr, std::move(solver));

  const VelocityVerlet integrator(wb.topology, wb.system, IntegratorParams{});
  integrator.prime(wb.system, wb.topology, ff);

  const int steps = static_cast<int>(sim_ps * 1000.0);
  const std::size_t dof =
      3 * wb.system.size() - wb.topology.constraint_count() - 3;
  std::unique_ptr<XyzWriter> traj;
  std::vector<std::string> elements;
  if (!traj_path.empty()) {
    traj = std::make_unique<XyzWriter>(traj_path);
    for (std::size_t w = 0; w < wb.molecules; ++w) {
      elements.push_back("O");
      elements.push_back("H");
      elements.push_back("H");
    }
    for (std::size_t i = elements.size(); i < wb.system.size(); ++i) {
      elements.push_back(wb.system.charges[i] > 0 ? "Na" : "Cl");
    }
  }
  std::printf("NVE %s: %zu molecules, box %.3f nm, r_c = %.3f nm, %d steps\n",
              solver_name.c_str(), wb.molecules, box.lengths.x, r_cut, steps);
  std::printf("%10s %14s %14s %14s %10s\n", "t (ps)", "kinetic", "potential",
              "total", "T (K)");

  Timer timer;
  for (int s = 0; s <= steps; ++s) {
    const StepReport report =
        s == 0 ? integrator.prime(wb.system, wb.topology, ff)
               : integrator.step(wb.system, wb.topology, ff);
    if (s % std::max(steps / 10, 1) == 0) {
      std::printf("%10.3f %14.3f %14.3f %14.3f %10.1f\n", s * 0.001,
                  report.kinetic, report.energies.potential(), report.total(),
                  wb.system.temperature(dof));
      if (traj) traj->write_frame(elements, wb.system.positions, box);
    }
  }
  std::printf("\n%.1f s wall clock, %.2f ms/step\n", timer.seconds(),
              timer.milliseconds() / steps);
  std::printf("max constraint violation: %.2e nm\n",
              integrator.constraints().max_violation(box, wb.system.positions));
  return 0;
}
