// Madelung constant of rock-salt NaCl, computed three ways: classical
// Ewald, SPME, and the TME.  A classic validation of any periodic
// electrostatics code — the exact value is 1.747564594633...
//
//   ./examples/madelung [--cells 4]
//
// `cells` replicates the 8-ion unit cell, so the same physical constant is
// recovered from ever larger periodic systems (a supercell-invariance test).
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/tme.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "util/args.hpp"
#include "util/constants.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  const int cells = args.get_int("cells", 4);
  constexpr double kMadelungExact = 1.7475645946331822;

  // Rock salt with nearest-neighbour distance d = 0.282 nm (NaCl).
  const double d = 0.282;
  const double cell = 2.0 * d;
  const Box box{{cells * cell, cells * cell, cells * cell}};
  std::vector<Vec3> positions;
  std::vector<double> charges;
  for (int cx = 0; cx < 2 * cells; ++cx) {
    for (int cy = 0; cy < 2 * cells; ++cy) {
      for (int cz = 0; cz < 2 * cells; ++cz) {
        positions.push_back({cx * d, cy * d, cz * d});
        charges.push_back((cx + cy + cz) % 2 == 0 ? 1.0 : -1.0);
      }
    }
  }
  const std::size_t n = positions.size();
  std::printf("NaCl lattice: %zu ions, box %.3f nm, d = %.3f nm\n", n,
              box.lengths.x, d);
  std::printf("exact Madelung constant: %.10f\n\n", kMadelungExact);

  // Energy per ion = -M kC / d  =>  M = -2 E d / (N kC).
  const auto madelung_from_energy = [&](double energy) {
    return -2.0 * energy * d / (static_cast<double>(n) * constants::kCoulomb);
  };

  // Classical Ewald (double precision, converged).
  {
    EwaldParams params;
    params.alpha = alpha_from_tolerance(0.5 * box.lengths.x, 1e-15);
    const CoulombResult r = ewald_reference(box, positions, charges, params);
    const double m = madelung_from_energy(r.energy);
    std::printf("%-8s M = %.10f   |error| = %.2e\n", "Ewald", m,
                std::abs(m - kMadelungExact));
  }

  // Mesh methods: total = long range + short range (erfc) pair sum.  A
  // crystal is the adversarial case for mesh electrostatics (every ion sits
  // exactly on a grid point, so interpolation errors add coherently);
  // r_c = 6 h with a tight splitting tolerance keeps the mesh part gentle.
  const std::size_t grid_n = static_cast<std::size_t>(8 * cells);
  const double r_cut = 6.0 * box.lengths.x / static_cast<double>(grid_n);
  const double alpha = alpha_from_tolerance(r_cut, 1e-7);
  const auto short_range_energy = [&]() {
    double e = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const Vec3 disp = box.min_image_disp(positions[i], positions[j]);
        const double r2 = norm2(disp);
        if (r2 >= r_cut * r_cut) continue;
        e += constants::kCoulomb * charges[i] * charges[j] *
             g_short(std::sqrt(r2), alpha);
      }
    }
    return e;
  }();

  {
    SpmeParams sp;
    sp.alpha = alpha;
    sp.grid = {grid_n, grid_n, grid_n};
    const Spme spme(box, sp);
    const double e = spme.compute(positions, charges).energy + short_range_energy;
    const double m = madelung_from_energy(e);
    std::printf("%-8s M = %.10f   |error| = %.2e\n", "SPME", m,
                std::abs(m - kMadelungExact));
  }
  {
    TmeParams tp;
    tp.alpha = alpha;
    tp.grid = {grid_n, grid_n, grid_n};
    tp.levels = 1;
    tp.grid_cutoff = 8;
    tp.num_gaussians = 4;
    const Tme tme(box, tp);
    const double e = tme.compute(positions, charges).energy + short_range_energy;
    const double m = madelung_from_energy(e);
    std::printf("%-8s M = %.10f   |error| = %.2e\n", "TME", m,
                std::abs(m - kMadelungExact));
  }
  return 0;
}
