// Kill-a-worker-mid-run drill for CI and for the EXPERIMENTS.md recipe.
//
// Runs the distributed TME twice over the same system: once with the plain
// in-process serial executor (the fault-free reference), once with a fleet of
// real workers behind the Transport abstraction — and, when a drill is armed,
// with one worker crashing (SIGKILL), hanging or straggling mid-run.  The
// verdict is the robustness contract: after detection, checkpointed restart
// and RecoveryPlan re-homing, the forces must be BITWISE identical to the
// reference.  Exit code 0 only when they are.
//
// Configuration comes through the strict env knobs:
//   TME_TRANSPORT=proc|inproc      backend (default proc: real processes)
//   TME_WORKERS=N                  fleet size (default 2)
//   TME_TRANSPORT_TIMEOUT_MS=MS    per-worker deadline (default 2000)
//   TME_FAULT_KILL_WORKER_RANK=R   which worker the drill targets
//   TME_FAULT_KILL_WORKER_TASK=N   crash (SIGKILL) after N completed tasks
//   TME_FAULT_HANG_WORKER_TASK=N   or go silent after N completed tasks
//   TME_FAULT_WORKER_DELAY_MS=MS   or straggle by MS per task
//   TME_FAULT_PACKET_DROP_RATE=P   seeded frame loss on the transport
//   TME_FAULT_PACKET_CORRUPT_RATE=P  seeded frame bit flips
//
// Observability flags: --trace-out <f> writes the merged fleet timeline
// (one Perfetto process track per worker incarnation), --status-out <f>
// arms SIGUSR1/periodic live-status snapshots (--status-every N).
//
// Typical CI invocation (SIGKILL worker 1 after 2 tasks, real processes):
//   TME_TRANSPORT=proc TME_WORKERS=3 TME_FAULT_KILL_WORKER_RANK=1 \
//   TME_FAULT_KILL_WORKER_TASK=2 ./worker_drill
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ewald/splitting.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"
#include "par/fleet.hpp"
#include "par/par_tme.hpp"
#include "par/traffic.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  const std::size_t atoms =
      static_cast<std::size_t>(args.get_int("atoms", 200));
  const int steps = args.get_int("steps", 3);
  // --trace-out <path>: record the run in Chrome trace-event format.  On the
  // proc backend this is the *merged fleet* timeline: workers ship their own
  // trace chunks back, and the file gets one process track per worker
  // incarnation with dispatch->task flow arrows — the trace CI uploads.
  const std::string trace_path = args.get("trace-out", "");
  if (!trace_path.empty()) {
    if constexpr (obs::kTraceEnabled) {
      obs::Tracer::global().set_enabled(true);
    } else {
      std::fprintf(stderr, "[--trace-out ignored: tracing compiled out]\n");
    }
  }
  // --status-out <path> [--status-every N]: live introspection.  SIGUSR1 (or
  // every N evaluations) atomically writes a JSON snapshot with per-worker
  // health, clock offsets and outstanding tasks.  TME_STATUS_OUT /
  // TME_STATUS_EVERY configure the same thing from the environment.
  obs::StatusReporter& status = obs::StatusReporter::global();
  status.configure_from_env();
  const std::string status_path = args.get("status-out", "");
  if (!status_path.empty()) {
    status.set_path(status_path);
    status.arm_signal();
  }
  const int status_every = args.get_int("status-every", 0);
  if (status_every > 0) {
    status.set_every(static_cast<std::uint64_t>(status_every));
  }

  Box box;
  const double box_length = 3.2;
  box.lengths = {box_length, box_length, box_length};
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
  std::vector<Vec3> positions(atoms);
  std::vector<double> charges(atoms);
  double total_q = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    positions[i] = {rng.uniform(0.0, box_length), rng.uniform(0.0, box_length),
                    rng.uniform(0.0, box_length)};
    charges[i] = rng.uniform(-1.0, 1.0);
    total_q += charges[i];
  }
  for (double& q : charges) q -= total_q / static_cast<double>(atoms);

  TmeParams tp;
  tp.alpha = alpha_from_tolerance(0.8, 1e-4);
  tp.grid = {16, 16, 16};
  tp.levels = 1;
  tp.grid_cutoff = 4;
  tp.num_gaussians = 3;
  const hw::TorusTopology topo(2, 2, 1);

  par::FleetConfig base;
  base.backend = par::FleetConfig::Backend::kProc;
  base.context_path = "worker_drill.ctx";
  const par::FleetConfig cfg = par::fleet_config_from_env(base);
  const bool proc = cfg.backend == par::FleetConfig::Backend::kProc;
  std::printf("worker drill: %zu atoms, %d evaluations, %zu %s workers\n",
              atoms, steps, cfg.workers, proc ? "process" : "in-proc");

  // Fault-free reference: the serial in-process executor.
  par::ParallelTme reference(box, tp, topo);
  std::vector<CoulombResult> want(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    par::TrafficLog log;
    want[static_cast<std::size_t>(s)] =
        reference.compute(positions, charges, &log);
  }

  // The same evaluations through the worker fleet, drills armed.
  par::ParallelTme distributed(box, tp, topo);
  par::WorkerFleet fleet(distributed.context(), distributed.topology(), cfg);
  distributed.set_executor(&fleet);
  const int fleet_section = status.add_provider(
      "fleet", [&fleet](obs::JsonValue& v) { fleet.status_json(v); });

  bool identical = true;
  for (int s = 0; s < steps; ++s) {
    par::TrafficLog log;
    const CoulombResult got = distributed.compute(positions, charges, &log);
    const CoulombResult& ref = want[static_cast<std::size_t>(s)];
    bool step_ok = got.energy == ref.energy;
    for (std::size_t i = 0; step_ok && i < atoms; ++i) {
      step_ok = got.forces[i].x == ref.forces[i].x &&
                got.forces[i].y == ref.forces[i].y &&
                got.forces[i].z == ref.forces[i].z;
    }
    std::printf("  evaluation %d: %s\n", s,
                step_ok ? "bitwise equal" : "DIVERGED");
    identical = identical && step_ok;
    if (obs::StatusReporter::signal_pending() ||
        (status.every() != 0 &&
         static_cast<std::uint64_t>(s + 1) % status.every() == 0)) {
      fleet.publish_metrics();
    }
    status.poll(static_cast<std::uint64_t>(s + 1));
  }
  std::remove(cfg.context_path.c_str());

  const par::FleetStats& st = fleet.stats();
  const par::TransportStats& ts = fleet.transport_stats();
  std::printf(
      "  fleet: %llu tasks, %llu results, %llu retransmissions, %llu deaths, "
      "%llu respawns, %llu re-homed\n",
      static_cast<unsigned long long>(st.tasks_sent),
      static_cast<unsigned long long>(st.results_received),
      static_cast<unsigned long long>(st.retransmissions),
      static_cast<unsigned long long>(st.worker_deaths),
      static_cast<unsigned long long>(st.respawns),
      static_cast<unsigned long long>(st.rehomed_tasks));
  std::printf(
      "  transport: %llu msgs out, %llu msgs in, %llu dropped, %llu "
      "corrupted, %llu CRC rejects\n",
      static_cast<unsigned long long>(ts.messages_sent),
      static_cast<unsigned long long>(ts.messages_received),
      static_cast<unsigned long long>(ts.frames_dropped),
      static_cast<unsigned long long>(ts.frames_corrupted),
      static_cast<unsigned long long>(ts.crc_rejects));

  // When a kill drill was armed, recovery machinery must actually have run.
  if (cfg.worker_faults.size() > 0) {
    bool armed_kill = false;
    for (const par::WorkerFaultPolicy& f : cfg.worker_faults) {
      armed_kill = armed_kill || f.crash_after_tasks >= 0 ||
                   f.hang_after_tasks >= 0;
    }
    if (armed_kill && st.worker_deaths == 0) {
      std::printf("verdict: FAIL (drill armed but no worker death detected)\n");
      return 1;
    }
  }

  // Quiesce first: workers flush their final telemetry chunk in the
  // kShutdown drain, so the merged file carries every worker span.
  fleet.quiesce();
  fleet.publish_metrics();
  status.remove_provider(fleet_section);
  if (!trace_path.empty() && obs::kTraceEnabled) {
    const bool wrote = fleet.telemetry_enabled()
                           ? fleet.write_fleet_trace(trace_path)
                           : obs::Tracer::global().write(trace_path);
    if (wrote) {
      std::printf("[trace written: %s]\n", trace_path.c_str());
      if (fleet.telemetry_enabled()) {
        std::printf("[fleet trace: %zu worker incarnation(s), %llu events "
                    "merged, %llu dropped]\n",
                    fleet.telemetry().incarnation_count(),
                    static_cast<unsigned long long>(
                        fleet.telemetry().events_merged()),
                    static_cast<unsigned long long>(
                        fleet.telemetry().dropped_total()));
      }
    }
  }

  std::printf("verdict: %s\n", identical ? "PASS (forces bitwise identical)"
                                         : "FAIL (forces diverged)");
  return identical ? 0 : 1;
}
