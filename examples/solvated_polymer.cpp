// A charged bead-spring polymer solvated in TIP3P water — a small analogue
// of the paper's Fig. 9 production system (a 480-residue protein, ions and
// water).  Exercises the full force-field stack: bonds, angles, 1-2/1-3
// exclusions, mixed LJ sites, rigid water, and the TME long-range solver.
//
//   ./examples/solvated_polymer [--beads 6] [--molecules 500] [--ps 1]
//                               [--traj polymer.xyz]
#include <cmath>
#include <cstdio>
#include <string>

#include "core/tme.hpp"
#include "ewald/splitting.hpp"
#include "md/integrator.hpp"
#include "md/thermostat.hpp"
#include "md/water_box.hpp"
#include "util/args.hpp"
#include "util/io.hpp"
#include "util/timer.hpp"

namespace {

using namespace tme;

// Inserts a linear chain of `beads` along the box diagonal region,
// deleting any water molecule that overlaps it.
struct SolvatedSystem {
  ParticleSystem system;
  Topology topology;
  std::size_t beads = 0;
  std::size_t waters = 0;
};

SolvatedSystem build(std::size_t beads, std::size_t molecules, double temperature) {
  WaterBoxSpec spec;
  spec.molecules = molecules;
  spec.temperature = temperature;
  WaterBox wb = build_water_box(spec);
  const Box box = wb.system.box;
  // The chain must fit comfortably inside the periodic box, or beads clash
  // with their own images.
  if (0.25 * std::sin(M_PI / 3.0) * static_cast<double>(beads - 1) >
      0.6 * box.lengths.x) {
    throw std::invalid_argument(
        "solvated_polymer: chain too long for the box; raise --molecules");
  }

  // Chain geometry: a 120-degree zigzag in the xz plane through the box
  // centre (a collinear chain would sit on the torsion singularity).
  const double bond_length = 0.25;
  const double step_x = bond_length * std::sin(M_PI / 3.0);
  const double step_z = bond_length * std::cos(M_PI / 3.0);
  const double start_x =
      0.5 * box.lengths.x - 0.5 * step_x * static_cast<double>(beads - 1);
  std::vector<Vec3> bead_pos(beads);
  for (std::size_t b = 0; b < beads; ++b) {
    bead_pos[b] = {start_x + step_x * static_cast<double>(b),
                   0.5 * box.lengths.y,
                   0.5 * box.lengths.z + (b % 2 == 0 ? 0.0 : step_z)};
  }

  // Keep only waters that clear the chain by 0.30 nm.
  std::vector<bool> keep(molecules, true);
  for (std::size_t m = 0; m < molecules; ++m) {
    for (std::size_t a = 3 * m; a < 3 * m + 3; ++a) {
      for (const Vec3& bp : bead_pos) {
        if (norm(box.min_image_disp(wb.system.positions[a], bp)) < 0.34) {
          keep[m] = false;
        }
      }
    }
  }

  SolvatedSystem out;
  out.beads = beads;
  out.system.box = box;
  // Chain first: alternating +/- 0.5 e beads, carbon-ish LJ and mass.
  for (std::size_t b = 0; b < beads; ++b) {
    out.system.positions.push_back(bead_pos[b]);
    out.system.velocities.push_back({});
    out.system.forces.push_back({});
    out.system.masses.push_back(12.011);
    out.system.charges.push_back(b % 2 == 0 ? 0.5 : -0.5);
    out.topology.lj().push_back({0.35, 0.40});
  }
  for (std::size_t b = 0; b + 1 < beads; ++b) {
    out.topology.add_bond({b, b + 1, bond_length, 20000.0});
  }
  for (std::size_t b = 0; b + 2 < beads; ++b) {
    out.topology.add_angle({b, b + 1, b + 2, 2.0 * M_PI / 3.0, 200.0});
  }
  for (std::size_t b = 0; b + 3 < beads; ++b) {
    // A soft threefold torsion along the backbone.
    out.topology.add_dihedral({b, b + 1, b + 2, b + 3, 3, 0.0, 2.0});
  }
  out.topology.build_exclusions_from_bonded();

  // Then the surviving waters.
  for (std::size_t m = 0; m < molecules; ++m) {
    if (!keep[m]) continue;
    const std::size_t base = out.system.positions.size();
    for (std::size_t a = 3 * m; a < 3 * m + 3; ++a) {
      out.system.positions.push_back(wb.system.positions[a]);
      out.system.velocities.push_back(wb.system.velocities[a]);
      out.system.forces.push_back({});
      out.system.masses.push_back(wb.system.masses[a]);
      out.system.charges.push_back(wb.system.charges[a]);
      out.topology.lj().push_back(wb.topology.lj()[a]);
    }
    out.topology.add_rigid_water({base, base + 1, base + 2});
    ++out.waters;
  }
  // Neutralise the residual chain charge (odd bead counts) over the waters.
  double total = 0.0;
  for (const double q : out.system.charges) total += q;
  for (auto& q : out.system.charges) {
    q -= total / static_cast<double>(out.system.charges.size());
  }
  out.topology.finalize(out.system.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::size_t beads = static_cast<std::size_t>(args.get_int("beads", 6));
  const std::size_t molecules =
      static_cast<std::size_t>(args.get_int("molecules", 500));
  const double sim_ps = args.get_double("ps", 1.0);
  const std::string traj_path = args.get("traj", "");

  SolvatedSystem sys = build(beads, molecules, 300.0);
  const Box box = sys.system.box;
  std::printf("solvated polymer: %zu beads + %zu waters (%zu atoms), box %.3f nm\n",
              sys.beads, sys.waters, sys.system.size(), box.lengths.x);

  const std::size_t grid_n = 16;
  const double r_cut = 4.0 * box.lengths.x / static_cast<double>(grid_n);
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  ShortRangeParams sr;
  sr.cutoff = r_cut;
  sr.alpha = alpha;
  sr.shift_lj = true;
  TmeParams tp;
  tp.alpha = alpha;
  tp.grid = {grid_n, grid_n, grid_n};
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;
  const ForceField ff(sr, make_tme_solver(box, tp));

  const VelocityVerlet integrator(sys.topology, sys.system, IntegratorParams{});
  integrator.prime(sys.system, sys.topology, ff);
  const std::size_t dof =
      3 * sys.system.size() - sys.topology.constraint_count() - 3;

  std::unique_ptr<XyzWriter> traj;
  std::vector<std::string> elements;
  if (!traj_path.empty()) {
    traj = std::make_unique<XyzWriter>(traj_path);
    for (std::size_t b = 0; b < sys.beads; ++b) elements.push_back("C");
    for (std::size_t w = 0; w < sys.waters; ++w) {
      elements.push_back("O");
      elements.push_back("H");
      elements.push_back("H");
    }
  }

  const int steps = static_cast<int>(sim_ps * 1000.0);
  std::printf("%10s %10s %10s %10s %12s %12s %8s\n", "t (ps)", "bonds",
              "angles", "torsions", "potential", "total", "T (K)");
  BerendsenParams thermostat;
  thermostat.dof = dof;
  thermostat.time_constant = 0.02;  // strong coupling while equilibrating
  Timer timer;
  for (int s = 0; s <= steps; ++s) {
    const StepReport report = s == 0
                                  ? integrator.prime(sys.system, sys.topology, ff)
                                  : integrator.step(sys.system, sys.topology, ff);
    if (s < steps / 2) apply_berendsen(sys.system, thermostat, 0.001);
    if (s % std::max(steps / 8, 1) == 0) {
      std::printf("%10.3f %10.3f %10.3f %10.3f %12.2f %12.2f %8.1f\n", s * 0.001,
                  report.energies.bonds, report.energies.angles,
                  report.energies.dihedrals, report.energies.potential(),
                  report.total(), sys.system.temperature(dof));
      if (traj) traj->write_frame(elements, sys.system.positions, box);
    }
  }
  std::printf("\n%.1f s wall clock; constraints violated by %.2e nm\n",
              timer.seconds(),
              integrator.constraints().max_violation(box, sys.system.positions));
  if (traj) std::printf("trajectory: %zu frames\n", traj->frames_written());
  return 0;
}
