// Run the TME distributed over a virtual 3D-torus machine and inspect the
// message traffic of every pipeline phase — the communication pattern the
// MDGRAPE-4A network hardware was designed around.
//
//   ./examples/parallel_traffic [--nodes 8] [--molecules 500] [--grid 32]
//
// Also verifies on the fly that the distributed execution matches the
// shared-memory solver.
#include <cmath>
#include <cstdio>

#include "core/cost_model.hpp"
#include "ewald/splitting.hpp"
#include "md/water_box.hpp"
#include "par/par_tme.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);
  const std::size_t nodes = static_cast<std::size_t>(args.get_int("nodes", 8));
  const std::size_t grid_n = static_cast<std::size_t>(args.get_int("grid", 32));

  WaterBoxSpec spec;
  spec.molecules = static_cast<std::size_t>(args.get_int("molecules", 500));
  const WaterBox wb = build_water_box(spec);
  const Box box = wb.system.box;

  const double r_cut = 4.0 * box.lengths.x / static_cast<double>(grid_n);
  TmeParams tp;
  tp.alpha = alpha_from_tolerance(r_cut, 1e-4);
  tp.grid = {grid_n, grid_n, grid_n};
  tp.grid_cutoff = 8;
  tp.num_gaussians = 4;

  const par::TorusTopology topo(nodes, nodes, nodes);
  const par::ParallelTme ptme(box, tp, topo);

  std::printf("distributed TME: %zu^3 nodes, %zu^3 grid, %zu atoms\n", nodes,
              grid_n, wb.system.size());

  par::TrafficLog log;
  const CoulombResult parallel =
      ptme.compute(wb.system.positions, wb.system.charges, &log);
  const CoulombResult serial =
      ptme.serial().compute(wb.system.positions, wb.system.charges);

  std::printf("\nper-phase message traffic (grid words, 4 bytes each):\n%s\n",
              log.report().c_str());

  const double energy_dev =
      std::abs(parallel.energy - serial.energy) / std::abs(serial.energy);
  double force_dev = 0.0;
  for (std::size_t i = 0; i < serial.forces.size(); ++i) {
    force_dev = std::max(force_dev, norm(parallel.forces[i] - serial.forces[i]));
  }
  std::printf("distributed vs shared-memory: energy dev %.2e, max force dev %.2e\n",
              energy_dev, force_dev);

  const int local = static_cast<int>(grid_n / nodes);
  const CostModelInput op{local, tp.grid_cutoff,
                          static_cast<int>(tp.num_gaussians)};
  const double model = tme_level1_cost(op).comm;
  const double measured = static_cast<double>(log.words_in("level convolution")) /
                          static_cast<double>(topo.node_count());
  std::printf("level-convolution words per node: measured %.0f, "
              "Sec III.C model (2+4M) gamma^2 g_c^3 = %.0f\n",
              measured, model);
  return 0;
}
