// Seeded chaos drill for CI and for the EXPERIMENTS.md recipe.
//
// Three modes over the src/chaos harness:
//
//   survive (default)   run a schedule and demand every oracle stays green;
//                       exit 0 only when the run survives.
//   --replay <file>     re-run the schedule recorded in a replay file (the
//                       output of a previous drill or of the shrinker) and
//                       report whether the same verdict reproduces.
//   --shrink            expect the schedule to be LETHAL: shrink it to a
//                       minimal reproducer, write the replay file, and exit 0
//                       only when the minimal schedule still fails with the
//                       original signature.
//
// The schedule comes from --spec <file> (JSON, see chaos/schedule.hpp), from
// the TME_CHAOS_* environment (TME_CHAOS_SURFACES=node,packet,io,... builds
// a seeded random timeline), or defaults to a four-surface survivable mix.
// --out <file> records the realized run as a replay file either way.
//
// Typical CI invocations:
//   TME_CHAOS_SURFACES=node,packet,worker,io TME_CHAOS_SEED=7 ./chaos_drill
//   ./chaos_drill --spec lethal.json --shrink --out repro.json
//   ./chaos_drill --replay repro.json
#include <cstdio>
#include <string>

#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"
#include "chaos/shrink.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"

#ifndef TME_WORKER_BIN
#define TME_WORKER_BIN ""
#endif

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);

  chaos::ChaosSpec spec;
  const std::string replay_path = args.get("replay", "");
  const std::string spec_path = args.get("spec", "");
  if (!replay_path.empty()) {
    spec = chaos::read_replay_spec(replay_path);
  } else if (!spec_path.empty()) {
    setenv("TME_CHAOS_SPEC", spec_path.c_str(), 1);
    spec = chaos::spec_from_env();
  } else {
    // Default: a survivable four-surface composition.
    chaos::ChaosSpec base = chaos::random_spec(
        2021, 8,
        {chaos::Surface::kNode, chaos::Surface::kPacket,
         chaos::Surface::kWorker, chaos::Surface::kIo});
    spec = chaos::spec_from_env(base);
  }

  chaos::RunnerOptions opts;
  opts.workdir = args.get("workdir", ".");
  opts.worker_bin = args.get("worker-bin", TME_WORKER_BIN);
  opts.verbose = !args.get_flag("quiet");
  const std::string out_path = args.get("out", "");

  // --trace-out <file>: merged fleet timeline (chaos instants + one process
  // track per worker incarnation, surviving mid-run fleet restarts).
  opts.trace_out = args.get("trace-out", "");
  if (!opts.trace_out.empty()) {
    if constexpr (obs::kTraceEnabled) {
      obs::Tracer::global().set_enabled(true);
    } else {
      std::fprintf(stderr, "[--trace-out ignored: tracing compiled out]\n");
    }
  }
  // --status-out <file> [--status-every N]: SIGUSR1 / periodic live-status
  // snapshots with fleet and chaos sections (also TME_STATUS_OUT/_EVERY).
  obs::StatusReporter& status = obs::StatusReporter::global();
  status.configure_from_env();
  const std::string status_path = args.get("status-out", "");
  if (!status_path.empty()) {
    status.set_path(status_path);
    status.arm_signal();
  }
  const int status_every = args.get_int("status-every", 0);
  if (status_every > 0) {
    status.set_every(static_cast<std::uint64_t>(status_every));
  }

  std::printf("chaos drill: seed %llu, %llu steps, %zu atoms, %zu %s workers, "
              "%zu event(s)\n",
              static_cast<unsigned long long>(spec.seed),
              static_cast<unsigned long long>(spec.steps), spec.atoms,
              spec.workers, spec.backend.c_str(), spec.events.size());

  if (args.get_flag("shrink")) {
    chaos::ShrinkOptions sopts;
    sopts.verbose = opts.verbose;
    sopts.max_runs = args.get_int("max-runs", 64);
    const chaos::ShrinkResult shrunk =
        chaos::shrink_schedule(spec, opts, sopts);
    if (shrunk.signature.empty()) {
      std::printf("verdict: FAIL (schedule survived; nothing to shrink)\n");
      return 1;
    }
    std::printf("shrunk %zu -> %zu event(s), signature %s, %d run(s)\n",
                shrunk.events_before, shrunk.events_after,
                shrunk.signature.c_str(), shrunk.runs);
    if (!out_path.empty()) {
      chaos::write_replay_file(out_path, shrunk.spec, shrunk.last_run);
      std::printf("minimal reproducer written: %s\n", out_path.c_str());
    }
    return 0;
  }

  chaos::ChaosRunner runner(spec, opts);
  const chaos::ChaosRunResult result = runner.run();
  if (!out_path.empty()) {
    chaos::write_replay_file(out_path, spec, result);
    std::printf("replay file written: %s\n", out_path.c_str());
  }
  std::printf("  %llu/%llu steps, %llu ckpt writes (%llu refused, %llu "
              "fallbacks), %llu deaths, %llu respawns, %llu retransmissions, "
              "%llu dropped, %llu corrupted, %llu sdc, %llu io faults\n",
              static_cast<unsigned long long>(result.steps_completed),
              static_cast<unsigned long long>(spec.steps),
              static_cast<unsigned long long>(result.checkpoint_writes),
              static_cast<unsigned long long>(result.checkpoint_write_failures),
              static_cast<unsigned long long>(result.checkpoint_fallbacks),
              static_cast<unsigned long long>(result.worker_deaths),
              static_cast<unsigned long long>(result.respawns),
              static_cast<unsigned long long>(result.retransmissions),
              static_cast<unsigned long long>(result.frames_dropped),
              static_cast<unsigned long long>(result.frames_corrupted),
              static_cast<unsigned long long>(result.sdc_injected),
              static_cast<unsigned long long>(result.io_faults_injected));

  if (!replay_path.empty()) {
    // A replay reproduces whatever verdict the file records — for a shrunk
    // reproducer that is the deterministic failure.
    std::printf("replay verdict: %s\n",
                chaos::failure_signature(result).c_str());
    return 0;
  }
  std::printf("verdict: %s\n",
              result.ok
                  ? "PASS (all oracles green)"
                  : ("FAIL (" + chaos::failure_signature(result) + ": " +
                     result.failure_detail + ")")
                        .c_str());
  return result.ok ? 0 : 1;
}
