// Explore the MDGRAPE-4A performance model interactively: sweep atoms, grid
// size, hierarchy depth, or machine size and print the resulting time chart
// and step summary.
//
//   ./examples/hw_timechart [--atoms 80540] [--grid 32] [--levels 1]
//                           [--gc 8] [--gaussians 4] [--nodes 8]
//                           [--no-long-range]
#include <cstdio>

#include "hw/machine.hpp"
#include "hw/timechart.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  using namespace tme::hw;
  const Args args(argc, argv);

  MachineParams mp;
  const std::size_t nodes = static_cast<std::size_t>(args.get_int("nodes", 8));
  mp.nodes_x = mp.nodes_y = mp.nodes_z = nodes;
  const MdgrapeMachine machine(mp);

  StepConfig cfg;
  cfg.atoms = static_cast<std::size_t>(args.get_int("atoms", 80540));
  const std::size_t g = static_cast<std::size_t>(args.get_int("grid", 32));
  cfg.grid = {g, g, g};
  cfg.levels = args.get_int("levels", 1);
  cfg.grid_cutoff = args.get_int("gc", 8);
  cfg.num_gaussians = args.get_int("gaussians", 4);
  cfg.long_range = !args.get_flag("no-long-range");

  const StepTimings t = machine.simulate_step(cfg);
  std::printf("MDGRAPE-4A model: %zu^3 nodes, %zu atoms, grid %zu^3, L=%d, "
              "g_c=%d, M=%d\n\n",
              nodes, cfg.atoms, g, cfg.levels, cfg.grid_cutoff,
              cfg.num_gaussians);
  std::printf("%s\n", render_timechart(t.schedule, 100).c_str());
  std::printf("%s\n", render_task_table(t.schedule).c_str());
  std::printf("step time:            %8.1f us\n", t.step_time * 1e6);
  if (cfg.long_range) {
    std::printf("long-range busy time: %8.1f us\n", t.long_range_total * 1e6);
    std::printf("GCU exclusive window: %8.1f us\n", t.gcu_window * 1e6);
    std::printf("TMENW round trip:     %8.1f us\n", t.tmenw * 1e6);
  }
  std::printf("throughput:           %8.3f us/day (%.1f fs steps)\n",
              machine.performance_us_per_day(cfg), cfg.timestep_fs);

  const auto unused = args.unused();
  for (const auto& key : unused) {
    std::fprintf(stderr, "warning: unused option --%s\n", key.c_str());
  }
  return 0;
}
