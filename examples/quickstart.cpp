// Quickstart: compute the long-range Coulomb forces of a small water box
// with the TME and compare against SPME and the exact Ewald sum.
//
//   ./examples/quickstart [--molecules 128]
//
// This walks through the library's core objects in ~60 lines:
//   build_water_box  ->  Tme / Spme  ->  ewald_reference  ->  force errors.
#include <cstdio>

#include "core/tme.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/splitting.hpp"
#include "ewald/spme.hpp"
#include "md/water_box.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace tme;
  const Args args(argc, argv);

  // 1. A TIP3P water box at liquid density.
  WaterBoxSpec spec;
  spec.molecules = args.get_int("molecules", 128);
  const WaterBox wb = build_water_box(spec);
  const Box& box = wb.system.box;
  std::printf("water box: %zu molecules (%zu atoms), box %.3f nm\n", wb.molecules,
              wb.system.size(), box.lengths.x);

  // 2. Ewald splitting: choose alpha from the short-range cutoff, GROMACS
  //    style (erfc(alpha r_c) = 1e-4).
  const std::size_t grid_n = 16;
  const double r_cut = 4.0 * box.lengths.x / static_cast<double>(grid_n);
  const double alpha = alpha_from_tolerance(r_cut, 1e-4);
  std::printf("r_c = %.3f nm, alpha = %.4f nm^-1\n", r_cut, alpha);

  // 3. The TME long-range solver: 16^3 grid, one middle level, g_c = 8,
  //    M = 4 Gaussians (the MDGRAPE-4A configuration).
  TmeParams tme_params;
  tme_params.alpha = alpha;
  tme_params.grid = {grid_n, grid_n, grid_n};
  tme_params.levels = 1;
  tme_params.grid_cutoff = 8;
  tme_params.num_gaussians = 4;
  const Tme tme(box, tme_params);
  const CoulombResult lr_tme = tme.compute(wb.system.positions, wb.system.charges);
  std::printf("\nTME long-range energy:  %12.3f kJ/mol\n", lr_tme.energy);

  // 4. The SPME baseline at identical (alpha, p, N).
  SpmeParams spme_params;
  spme_params.alpha = alpha;
  spme_params.grid = tme_params.grid;
  const Spme spme(box, spme_params);
  const CoulombResult lr_spme = spme.compute(wb.system.positions, wb.system.charges);
  std::printf("SPME long-range energy: %12.3f kJ/mol\n", lr_spme.energy);
  std::printf("TME vs SPME force deviation: %.3e (relative)\n",
              lr_tme.relative_force_error_against(lr_spme));

  // 5. Exact reference: classical Ewald summation.
  EwaldParams ref;
  ref.alpha = alpha_from_tolerance(0.5 * box.lengths.x, 1e-15);
  const CoulombResult exact =
      ewald_reference(box, wb.system.positions, wb.system.charges, ref);
  std::printf("\nexact Coulomb energy:   %12.3f kJ/mol\n", exact.energy);
  std::printf("(to compare totals, add the short-range erfc part — see "
              "bench_table1 for the full Table 1 protocol)\n");
  return 0;
}
