// Watchdog smoke test for CI: proves that a hung run dies with exit code
// 124 instead of stalling the build, and that a healthy run is untouched.
//
//   watchdog_smoke hang    — arms a fatal 0.2 s watchdog, then sleeps
//                            forever; the watchdog must _Exit(124).
//   watchdog_smoke healthy — pets a fatal watchdog through a short loop of
//                            simulated work and exits 0.
//
// The CI watchdog-smoke job runs both and asserts the exit codes.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "util/watchdog.hpp"

int main(int argc, char** argv) {
  const char* mode = argc > 1 ? argv[1] : "healthy";

  if (std::strcmp(mode, "hang") == 0) {
    tme::Watchdog wd(0.2, [] { std::fprintf(stderr, "stalled in 'hang' mode\n"); },
                     /*fatal=*/true);
    // Simulated deadlock: never pet again.  The watchdog must end the
    // process with code 124; reaching the return below is the failure.
    std::this_thread::sleep_for(std::chrono::seconds(30));
    std::fprintf(stderr, "watchdog never fired\n");
    return 1;
  }

  if (std::strcmp(mode, "healthy") == 0) {
    tme::Watchdog wd(1.0, [] { std::fprintf(stderr, "spurious firing\n"); },
                     /*fatal=*/true);
    for (int i = 0; i < 20; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      wd.pet();
    }
    std::printf("healthy run completed\n");
    return 0;
  }

  std::fprintf(stderr, "usage: %s hang|healthy\n", argv[0]);
  return 2;
}
