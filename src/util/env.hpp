// Environment-variable configuration parsing, shared by every TME_* knob.
//
// Before this helper each subsystem hand-rolled its own strtoull/strtod
// parse-and-warn block (TME_THREADS in util/parallel, TME_FAULT_* in
// hw/fault, TME_GUARDRAIL in md/guardrail), with slightly different
// malformed-value behaviour.  This module is the single implementation:
// strict full-string parses that return nullopt on any malformed input, and
// typed lookups that log one consistently-formatted warning
//   "<NAME>='<value>' is not <expectation>; keeping <fallback>"
// and keep the caller's fallback.  Unset or empty variables are silently
// the fallback — only a present-but-malformed value warns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tme::env {

// Raw value of `name`; nullopt when the variable is unset or empty.
std::optional<std::string> raw(const char* name);

// Strict parsers: the whole string must be consumed, no leading/trailing
// garbage.  Return nullopt on malformed input (never throw).
std::optional<std::uint64_t> parse_u64(const std::string& text);
std::optional<long> parse_long(const std::string& text);
std::optional<double> parse_double(const std::string& text);

// Typed lookups with the consistent warning described above.
std::uint64_t u64_or(const char* name, std::uint64_t fallback);

// Probability in [0, 1].
double probability_or(const char* name, double fallback);

// Finite value with value >= 0 (timeouts, rates in seconds).
double non_negative_or(const char* name, double fallback);

// Integer in [lo, hi].
long bounded_long_or(const char* name, long fallback, long lo, long hi);

// Boolean flag: "0"/"off"/"false" -> false, "1"/"on"/"true" -> true.
bool flag_or(const char* name, bool fallback);

// One of `choices` (exact match); returns the matching index, or
// `fallback_index` with a warning listing the valid spellings.
std::size_t choice_or(const char* name, const std::vector<std::string>& choices,
                      std::size_t fallback_index);

}  // namespace tme::env
