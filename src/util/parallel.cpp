#include "util/parallel.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace tme {

namespace {

// Set while the current thread executes a parallel_for block (caller or
// worker side); nested dispatches check it and run serially instead.
thread_local bool t_in_parallel_region = false;

struct RegionGuard {
  bool saved = t_in_parallel_region;
  RegionGuard() { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = saved; }
};

}  // namespace

bool ThreadPool::in_parallel_region() { return t_in_parallel_region; }

ThreadPool::ThreadPool(unsigned workers) {
  tasks_.resize(workers);
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = tasks_[index];
    }
    if (task.fn != nullptr && task.begin < task.end) {
      RegionGuard region;
      try {
        (*task.fn)(task.begin, task.end);
      } catch (...) {
        std::lock_guard lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for_blocks(
    std::size_t first, std::size_t last,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (first >= last) return;
  const std::size_t n = last - first;
  const unsigned parts = static_cast<unsigned>(
      std::min<std::size_t>(concurrency(), n));
  // Serial fallback: a one-thread split, or a nested call issued from
  // inside another parallel_for block (re-entering the dispatch state
  // while a generation is in flight would corrupt it — see header).
  if (parts <= 1 || t_in_parallel_region) {
    TME_COUNTER_ADD("util/parallel_for/serial_calls", 1);
    RegionGuard region;
    fn(first, last);
    return;
  }
  TME_COUNTER_ADD("util/parallel_for/calls", 1);
  const std::size_t chunk = (n + parts - 1) / parts;
  // Give blocks 1..parts-1 to the workers, keep block 0 for this thread.
  {
    std::lock_guard lock(mutex_);
    // Every worker observes the new generation and decrements pending_,
    // including those that received an empty task.
    pending_ = static_cast<unsigned>(threads_.size());
    for (unsigned w = 0; w < threads_.size(); ++w) {
      const unsigned blk = w + 1;
      Task t;
      if (blk < parts) {
        t.fn = &fn;
        t.begin = std::min(first + blk * chunk, last);
        t.end = std::min(t.begin + chunk, last);
      }
      tasks_[w] = t;
    }
    ++generation_;
  }
  cv_start_.notify_all();
  {
    RegionGuard region;
    try {
      fn(first, std::min(first + chunk, last));
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
  // Rethrow the first captured block exception (if any) on the caller,
  // leaving the pool ready for the next dispatch.
  if (first_error_) {
    std::exception_ptr err;
    std::swap(err, first_error_);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

unsigned pool_workers_from_env(const char* text, unsigned hardware_threads) {
  const unsigned fallback = std::max(1u, hardware_threads) - 1u;
  if (text == nullptr || *text == '\0') return fallback;
  // 4096 is a sanity bound, not a tuning knob.
  const auto v = env::parse_long(text);
  if (!v || *v < 1 || *v > 4096) {
    log_warn("TME_THREADS='", text, "' is not an integer in [1, 4096]; using ",
             fallback + 1u, " threads");
    return fallback;
  }
  return static_cast<unsigned>(*v) - 1u;
}

ThreadPool& global_pool() {
  static ThreadPool pool(pool_workers_from_env(
      std::getenv("TME_THREADS"), std::thread::hardware_concurrency()));
  static const bool recorded = [] {
    obs::manifest_set("pool_threads", static_cast<double>(pool.concurrency()));
    return true;
  }();
  (void)recorded;
  return pool;
}

}  // namespace tme
