// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// checkpoint format and the simulated network's CRC-detect path use to
// reject corrupted payloads.  Header-only; crc32("123456789") = 0xCBF43926.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace tme {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

// Incremental update: start from 0 and feed buffers in order; chaining
// crc32_update calls over a split buffer equals one call over the whole.
inline std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                  std::size_t len) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_update(0, data, len);
}

}  // namespace tme
