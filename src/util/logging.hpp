// Lightweight leveled logging to stderr, with an optional structured JSONL
// sink for machine-parseable fault-run analysis.
//
// The library itself logs nothing at Info by default; benches raise the level
// to show progress on long sweeps.
//
// When TME_LOG_JSON=<path> is set (or set_log_json_path is called), every
// log line is additionally appended to <path> as one JSON object per line:
//   {"ts_us": <monotonic us since process start>, "level": "warn",
//    "tid": <small per-thread id>, "msg": "..."}
// Structured events (log_structured) replace "msg" with "event" plus their
// key=value fields, so guardrail/health/watchdog warnings from fault runs
// can be grepped and joined without parsing prose.
#pragma once

#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace tme {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& text);

// Key=value pairs attached to a structured event; values are logged as JSON
// strings (callers stringify numbers — exact formatting is theirs to pick).
using LogFields = std::vector<std::pair<std::string, std::string>>;

// Emits a structured event: to stderr as "event key=value ..." (subject to
// the level filter) and to the JSONL sink (always, when configured).
void log_structured(LogLevel level, const std::string& event,
                    const LogFields& fields = {});

// Points the JSONL sink at `path` (append mode; "" closes it).  Overrides
// the TME_LOG_JSON environment variable, which otherwise configures the
// sink on first use.
void set_log_json_path(const std::string& path);
bool log_json_enabled();

namespace detail {
template <typename... Parts>
std::string concat(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Parts>
void log_info(const Parts&... parts) {
  if (log_level() >= LogLevel::kInfo) log_message(LogLevel::kInfo, detail::concat(parts...));
}
template <typename... Parts>
void log_warn(const Parts&... parts) {
  if (log_level() >= LogLevel::kWarn) log_message(LogLevel::kWarn, detail::concat(parts...));
}
template <typename... Parts>
void log_error(const Parts&... parts) {
  log_message(LogLevel::kError, detail::concat(parts...));
}
template <typename... Parts>
void log_debug(const Parts&... parts) {
  if (log_level() >= LogLevel::kDebug) log_message(LogLevel::kDebug, detail::concat(parts...));
}

}  // namespace tme
