// Lightweight leveled logging to stderr.
//
// The library itself logs nothing at Info by default; benches raise the level
// to show progress on long sweeps.
#pragma once

#include <sstream>
#include <string>

namespace tme {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& text);

namespace detail {
template <typename... Parts>
std::string concat(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Parts>
void log_info(const Parts&... parts) {
  if (log_level() >= LogLevel::kInfo) log_message(LogLevel::kInfo, detail::concat(parts...));
}
template <typename... Parts>
void log_warn(const Parts&... parts) {
  if (log_level() >= LogLevel::kWarn) log_message(LogLevel::kWarn, detail::concat(parts...));
}
template <typename... Parts>
void log_error(const Parts&... parts) {
  log_message(LogLevel::kError, detail::concat(parts...));
}
template <typename... Parts>
void log_debug(const Parts&... parts) {
  if (log_level() >= LogLevel::kDebug) log_message(LogLevel::kDebug, detail::concat(parts...));
}

}  // namespace tme
