// Physical constants in the library's unit system:
//   length  — nm, mass — u (g/mol), time — ps, charge — e, energy — kJ/mol.
// This matches the GROMACS unit system the paper's evaluation uses.
#pragma once

namespace tme::constants {

// Coulomb prefactor 1/(4 pi eps0) in kJ mol^-1 nm e^-2.
inline constexpr double kCoulomb = 138.935458;

// Boltzmann constant in kJ mol^-1 K^-1.
inline constexpr double kBoltzmann = 8.314462618e-3;

// TIP3P water model parameters (Jorgensen et al. 1983).
inline constexpr double kTip3pChargeO = -0.834;
inline constexpr double kTip3pChargeH = 0.417;
inline constexpr double kTip3pSigmaO = 0.315061;   // nm
inline constexpr double kTip3pEpsilonO = 0.636386; // kJ/mol
inline constexpr double kTip3pBondOH = 0.09572;    // nm
inline constexpr double kTip3pAngleHOH = 104.52;   // degrees
inline constexpr double kMassO = 15.99943;         // u
inline constexpr double kMassH = 1.00794;          // u

}  // namespace tme::constants
