// Injectable POSIX-IO fault shim for the storage path.
//
// Durable writers (md/checkpoint, the fleet's sealed context file) route
// every open/write/fsync/rename through this process-global shim.  Unarmed
// it is a transparent passthrough to the real syscalls; armed with an
// IoFaultPlan it deterministically injects the resource-exhaustion faults a
// week-long production run actually meets — ENOSPC part-way through a
// write, short writes, EINTR storms, fsync and rename failures — so the
// chaos harness (src/chaos) can prove the checkpoint rotation and the
// fleet's sealed-context fallback survive them with typed errors instead of
// crashes or silent corruption.
//
// The shim also carries a *bounded allocation-failure hook*: restore paths
// that size large buffers from on-disk headers ask `alloc_allowed(bytes)`
// first, so an armed plan can model allocator pressure (the next N guarded
// allocations fail) without touching the global operator new.
//
// Plans match on a path substring, so a test can target `*.ckpt` files
// while trace/bench output writes normally.  All mutation is
// mutex-guarded: the TSan tier runs fleet + chaos tests against this
// singleton.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <sys/types.h>

namespace tme::io {

// Which faults an armed plan injects on matching paths.  Counters of what
// actually fired are in IoStats (realized-event log feeds on them).
struct IoFaultPlan {
  std::string path_substring;     // empty matches every shimmed path
  bool fail_open = false;         // open() fails with EACCES
  long enospc_after_bytes = -1;   // >=0: bytes beyond this fail with ENOSPC
  bool short_writes = false;      // every write() accepts at most half
  int eintr_every = 0;            // >0: every Nth write()/fsync() EINTRs once
  bool fail_fsync = false;        // fsync() fails with EIO
  bool fail_rename = false;       // rename() fails with EIO
  long fail_allocs = 0;           // >0: the next N guarded allocations fail
  std::size_t alloc_min_bytes = 0;  // only allocations at least this large

  bool any() const {
    return fail_open || enospc_after_bytes >= 0 || short_writes ||
           eintr_every > 0 || fail_fsync || fail_rename || fail_allocs > 0;
  }
};

struct IoStats {
  std::uint64_t injected_enospc = 0;
  std::uint64_t injected_short_writes = 0;
  std::uint64_t injected_eintr = 0;
  std::uint64_t injected_fsync_failures = 0;
  std::uint64_t injected_rename_failures = 0;
  std::uint64_t injected_open_failures = 0;
  std::uint64_t injected_alloc_failures = 0;
};

class IoShim {
 public:
  static IoShim& instance();

  // Replaces the active plan and resets the per-plan write budget.  Stats
  // accumulate across plans until reset_stats().
  void arm(IoFaultPlan plan);
  void disarm();
  bool armed() const;
  IoFaultPlan plan() const;
  IoStats stats() const;
  void reset_stats();

  // POSIX-shaped calls: same return/errno contract as the syscalls they
  // wrap, with faults injected first on armed matching paths.
  int open_for_write(const std::string& path);
  ssize_t write_some(int fd, const void* buf, std::size_t len,
                     const std::string& path);
  int fsync_fd(int fd, const std::string& path);
  int close_fd(int fd);
  int rename_file(const std::string& from, const std::string& to);
  // fsyncs the directory containing `path` (durability of the rename
  // itself); returns 0 when the directory cannot be opened read-only on
  // this platform — only a real or injected fsync failure reports -1.
  int fsync_parent_dir(const std::string& path);

  // Allocation-failure hook: returns false (and consumes one failure budget
  // token) when a guarded allocation of `bytes` should fail.
  bool alloc_allowed(std::size_t bytes);

 private:
  IoShim() = default;
  bool matches(const std::string& path) const;  // callers hold mu_

  mutable std::mutex mu_;
  bool armed_ = false;
  IoFaultPlan plan_;
  IoStats stats_;
  long bytes_written_ = 0;  // against enospc_after_bytes, since arm()
  int op_count_ = 0;        // against eintr_every
};

// RAII arm/disarm for tests: arms on construction, restores the previous
// plan (or disarms) on destruction.
class ScopedIoFaults {
 public:
  explicit ScopedIoFaults(IoFaultPlan plan);
  ~ScopedIoFaults();
  ScopedIoFaults(const ScopedIoFaults&) = delete;
  ScopedIoFaults& operator=(const ScopedIoFaults&) = delete;

 private:
  bool was_armed_;
  IoFaultPlan previous_;
};

}  // namespace tme::io
