// Minimal 3-component vector used throughout the library.
//
// Lengths are in nanometres, charges in units of the elementary charge, and
// energies in kJ/mol (see util/constants.hpp for the Coulomb prefactor).
#pragma once

#include <cmath>
#include <cstddef>
#include <ostream>

namespace tme {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const double& operator[](std::size_t i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
constexpr double norm2(const Vec3& a) { return dot(a, a); }
inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

// Component-wise product and quotient (used for box-normalised coordinates).
constexpr Vec3 hadamard(const Vec3& a, const Vec3& b) {
  return {a.x * b.x, a.y * b.y, a.z * b.z};
}
constexpr Vec3 hadamard_div(const Vec3& a, const Vec3& b) {
  return {a.x / b.x, a.y / b.y, a.z / b.z};
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

// Wrap `x` into [0, box) — periodic boundary for a single coordinate.
inline double wrap_coord(double x, double box) {
  x = std::fmod(x, box);
  return x < 0.0 ? x + box : x;
}

// Minimum-image displacement component for an orthorhombic box.
inline double min_image(double dx, double box) {
  return dx - box * std::nearbyint(dx / box);
}

// Orthorhombic periodic box.
struct Box {
  Vec3 lengths{1.0, 1.0, 1.0};

  constexpr double volume() const { return lengths.x * lengths.y * lengths.z; }

  Vec3 wrap(const Vec3& r) const {
    return {wrap_coord(r.x, lengths.x), wrap_coord(r.y, lengths.y),
            wrap_coord(r.z, lengths.z)};
  }

  // Minimum-image displacement a - b.
  Vec3 min_image_disp(const Vec3& a, const Vec3& b) const {
    return {min_image(a.x - b.x, lengths.x), min_image(a.y - b.y, lengths.y),
            min_image(a.z - b.z, lengths.z)};
  }
};

}  // namespace tme
