// Tiny command-line parser for the benches and examples.
//
// Supports `--key value`, `--key=value`, and boolean `--flag` forms; anything
// unrecognised is reported so typos in sweep scripts fail loudly instead of
// silently running the default configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace tme {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key) const;

  // Keys the program never queried; call at the end of main to warn.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace tme
