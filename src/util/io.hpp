// Plain-text output writers: XYZ trajectories (readable by VMD/OVITO) and
// CSV energy logs — enough tooling to inspect the example simulations.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "util/vec3.hpp"

namespace tme {

// Appends frames in extended-XYZ format; positions are written in Angstrom
// (the conventional XYZ unit; internal unit is nm).
class XyzWriter {
 public:
  explicit XyzWriter(const std::string& path);

  // `elements` must match positions in size (e.g. "O", "H").
  void write_frame(std::span<const std::string> elements,
                   std::span<const Vec3> positions, const Box& box,
                   const std::string& comment = "");

  std::size_t frames_written() const { return frames_; }

 private:
  std::ofstream out_;
  std::size_t frames_ = 0;
};

// One-line-per-record CSV with a fixed header.
class CsvLogger {
 public:
  CsvLogger(const std::string& path, std::span<const std::string> columns);

  void write_row(std::span<const double> values);
  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace tme
