#include "util/io.hpp"

#include <stdexcept>

namespace tme {

XyzWriter::XyzWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("XyzWriter: cannot open " + path);
}

void XyzWriter::write_frame(std::span<const std::string> elements,
                            std::span<const Vec3> positions, const Box& box,
                            const std::string& comment) {
  if (elements.size() != positions.size()) {
    throw std::invalid_argument("XyzWriter: elements/positions size mismatch");
  }
  out_ << positions.size() << '\n';
  out_ << "Lattice=\"" << box.lengths.x * 10.0 << " 0 0 0 " << box.lengths.y * 10.0
       << " 0 0 0 " << box.lengths.z * 10.0 << "\"";
  if (!comment.empty()) out_ << ' ' << comment;
  out_ << '\n';
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 r = box.wrap(positions[i]);
    out_ << elements[i] << ' ' << r.x * 10.0 << ' ' << r.y * 10.0 << ' '
         << r.z * 10.0 << '\n';
  }
  out_.flush();
  ++frames_;
}

CsvLogger::CsvLogger(const std::string& path, std::span<const std::string> columns)
    : out_(path), columns_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvLogger: cannot open " + path);
  if (columns.empty()) throw std::invalid_argument("CsvLogger: no columns");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << columns[i] << (i + 1 < columns.size() ? ',' : '\n');
  }
}

void CsvLogger::write_row(std::span<const double> values) {
  if (values.size() != columns_) {
    throw std::invalid_argument("CsvLogger: row width mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << values[i] << (i + 1 < values.size() ? ',' : '\n');
  }
  ++rows_;
}

}  // namespace tme
