#include "util/watchdog.hpp"

#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace tme {

Watchdog::Watchdog(double timeout_s, std::function<void()> on_timeout, bool fatal)
    : timeout_(std::chrono::nanoseconds(
          static_cast<std::int64_t>(timeout_s * 1e9))),
      on_timeout_(std::move(on_timeout)),
      fatal_(fatal) {
  if (!(timeout_s > 0.0)) {
    throw std::invalid_argument("Watchdog: timeout must be > 0");
  }
  last_pet_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Watchdog::pet() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_pet_ = std::chrono::steady_clock::now();
    ++pets_;
    armed_ = true;
  }
  cv_.notify_all();
}

bool Watchdog::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return firings_ > 0;
}

std::uint64_t Watchdog::firings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return firings_;
}

void Watchdog::monitor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    const auto deadline = last_pet_ + timeout_;
    if (armed_ && std::chrono::steady_clock::now() >= deadline) {
      // Stall: fire once, then stay quiet until the next pet re-arms us.
      ++firings_;
      armed_ = false;
      TME_COUNTER_ADD("util/watchdog/firings", 1);
      if (on_timeout_) {
        // Release the lock around user code: the callback may log at length
        // or query state that in turn pets the watchdog.
        lock.unlock();
        on_timeout_();
        lock.lock();
      }
      if (fatal_) {
        log_error("watchdog: no progress within timeout; exiting 124");
        std::_Exit(124);
      }
      continue;
    }
    if (armed_) {
      cv_.wait_until(lock, deadline);
    } else {
      cv_.wait(lock);  // disarmed: sleep until a pet or shutdown
    }
  }
}

}  // namespace tme
