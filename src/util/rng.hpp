// Deterministic random number generation.
//
// All stochastic pieces of the library (water-box jitter, velocity
// initialisation, test fixtures) draw from SplitMix64 / Xoshiro256** so that
// results are reproducible across platforms and standard-library versions —
// std::mt19937 distributions are not bit-stable across implementations.
#pragma once

#include <cmath>
#include <cstdint>

namespace tme {

// SplitMix64: used to seed Xoshiro and for cheap one-off streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace tme
