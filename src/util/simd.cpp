#include "util/simd.hpp"

#include "obs/json.hpp"
#include "util/env.hpp"

namespace tme::simd {

Mode mode_from_env() {
  // Parsed once: kernels must not change width mid-run or the bitwise
  // per-(pool size, ISA, mode) determinism contract would silently break.
  static const Mode mode = [] {
    const std::size_t pick = env::choice_or("TME_SIMD", {"scalar", "native"}, 1);
    return pick == 0 ? Mode::kScalar : Mode::kNative;
  }();
  return mode;
}

const char* active_isa() { return kIsaName; }

int lanes(Mode mode) { return mode == Mode::kScalar ? 1 : kNativeWidth; }

const char* mode_name(Mode mode) {
  return mode == Mode::kScalar ? "scalar" : "native";
}

obs::JsonValue describe_json(Mode mode) {
  obs::JsonValue d = obs::JsonValue::make_object();
  auto& obj = d.as_object();
  obj["isa"] = obs::JsonValue::make_string(kIsaName);
  obj["native_width"] = obs::JsonValue::make_number(kNativeWidth);
  obj["fma_fused"] = obs::JsonValue::make_bool(kFmaFused);
  obj["mode"] = obs::JsonValue::make_string(mode_name(mode));
  obj["width"] = obs::JsonValue::make_number(lanes(mode));
  return d;
}

}  // namespace tme::simd
