#include "util/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tme {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("positional arguments are not supported: " + token);
    }
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // `--key value` unless the next token is another option or missing.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "1";  // boolean flag
    }
  }
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Args::get_int(const std::string& key, int fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

double Args::get_double(const std::string& key, double fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool Args::get_flag(const std::string& key) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it != values_.end() && it->second != "0" && it->second != "false";
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (queried_.count(key) == 0) out.push_back(key);
  }
  return out;
}

}  // namespace tme
