// Wall-clock watchdog for long-running drivers.
//
// A production run that stops making progress — a deadlocked pool, a task
// stuck in an unbounded retry loop, a pathological input that turns a step
// into an effectively infinite computation — should produce a diagnostic
// dump instead of a silent hang.  The watchdog runs a monitor thread; the
// guarded driver pets it once per unit of progress.  If no pet arrives
// within the timeout the on_timeout callback fires (once per stall) on the
// monitor thread, typically logging a dump of where the run was.  A later
// pet re-arms the watchdog.
//
// With `fatal = true` the process exits with code 124 (the conventional
// timeout status) right after the callback — the mode the CI watchdog-smoke
// job uses so an introduced hang fails the build instead of stalling it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace tme {

class Watchdog {
 public:
  // Starts the monitor thread.  `timeout_s` must be > 0.
  Watchdog(double timeout_s, std::function<void()> on_timeout, bool fatal = false);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Records progress: resets the stall clock and re-arms after a firing.
  void pet();

  // True once the watchdog has fired at least once.
  bool fired() const;

  // Times the watchdog fired (a pet between stalls re-arms it).
  std::uint64_t firings() const;

 private:
  void monitor_loop();

  const std::chrono::nanoseconds timeout_;
  const std::function<void()> on_timeout_;
  const bool fatal_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::chrono::steady_clock::time_point last_pet_;
  std::uint64_t pets_ = 0;
  std::uint64_t firings_ = 0;
  bool armed_ = true;   // false between a firing and the next pet
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace tme
