// A small reusable thread pool with a blocking parallel_for.
//
// The pool is created once per process (see global_pool()) so repeated
// parallel_for calls do not pay thread-creation cost.  Work is distributed
// in contiguous blocks; the calling thread participates, so a pool of size 1
// degenerates to a plain loop with no synchronisation overhead.
//
// Semantics worth relying on (asserted in tests/test_util.cpp):
//  - Reentrancy: a parallel_for issued from inside a parallel_for body (on
//    any pool) runs serially on the calling thread instead of re-entering
//    the pool, so nested parallelism can neither deadlock nor corrupt the
//    in-flight dispatch state.
//  - Exceptions: if one or more block invocations throw, every other block
//    still runs to completion, then exactly one of the captured exceptions
//    (the first one observed) is rethrown on the calling thread.  The pool
//    remains usable afterwards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tme {

class ThreadPool {
 public:
  // `workers` is the number of *extra* threads; total parallelism is
  // workers + 1 (the caller).  workers == 0 is valid and fully serial.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned concurrency() const { return static_cast<unsigned>(threads_.size()) + 1; }

  // Runs fn(begin, end) over [first, last) split into roughly equal blocks,
  // one per participating thread.  Blocks until all work is complete.
  // Nested calls degrade to a serial fn(first, last); a block's exception is
  // rethrown here after all blocks finish (see header comment).
  void parallel_for_blocks(std::size_t first, std::size_t last,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  // True while the calling thread is inside a parallel_for block (of any
  // pool) — the condition under which nested calls run serially.
  static bool in_parallel_region();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(unsigned index);

  std::vector<std::thread> threads_;
  std::vector<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

// Process-wide pool.  Sized from hardware_concurrency by default; the
// TME_THREADS environment variable overrides the total participating thread
// count (callers + workers, so TME_THREADS=1 is fully serial) without a
// rebuild — benches and CI use it to pin thread counts.  Invalid or unset
// values fall back to hardware_concurrency.
ThreadPool& global_pool();

// Parses a TME_THREADS-style override into a ThreadPool worker count
// (participating threads minus one).  `text` is the raw environment value
// (may be null); out-of-range or malformed input falls back to
// hardware_threads - 1.  Exposed separately so tests can cover the parsing
// without re-execing the process.
unsigned pool_workers_from_env(const char* text, unsigned hardware_threads);

// Convenience wrapper: body(i) for i in [first, last), parallelised over the
// given pool.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t first, std::size_t last,
                  Body&& body) {
  pool.parallel_for_blocks(first, last, [&body](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) body(i);
  });
}

template <typename Body>
void parallel_for(std::size_t first, std::size_t last, Body&& body) {
  parallel_for(global_pool(), first, last, std::forward<Body>(body));
}

// Like parallel_for but hands whole ranges to the body — useful when the
// body wants per-thread accumulators.
template <typename Body>
void parallel_for_ranges(ThreadPool& pool, std::size_t first, std::size_t last,
                         Body&& body) {
  pool.parallel_for_blocks(first, last, std::function<void(std::size_t, std::size_t)>(
                                            std::forward<Body>(body)));
}

template <typename Body>
void parallel_for_ranges(std::size_t first, std::size_t last, Body&& body) {
  parallel_for_ranges(global_pool(), first, last, std::forward<Body>(body));
}

}  // namespace tme
