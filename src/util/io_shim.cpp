#include "util/io_shim.hpp"

#include <cerrno>
#include <fcntl.h>
#include <unistd.h>

namespace tme::io {

IoShim& IoShim::instance() {
  static IoShim shim;
  return shim;
}

void IoShim::arm(IoFaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  armed_ = plan_.any();
  bytes_written_ = 0;
  op_count_ = 0;
}

void IoShim::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  plan_ = IoFaultPlan{};
  bytes_written_ = 0;
  op_count_ = 0;
}

bool IoShim::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

IoFaultPlan IoShim::plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

IoStats IoShim::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void IoShim::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = IoStats{};
}

bool IoShim::matches(const std::string& path) const {
  return plan_.path_substring.empty() ||
         path.find(plan_.path_substring) != std::string::npos;
}

int IoShim::open_for_write(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (armed_ && plan_.fail_open && matches(path)) {
      ++stats_.injected_open_failures;
      errno = EACCES;
      return -1;
    }
  }
  return ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
}

ssize_t IoShim::write_some(int fd, const void* buf, std::size_t len,
                           const std::string& path) {
  std::size_t allowed = len;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (armed_ && matches(path)) {
      if (plan_.eintr_every > 0 && ++op_count_ % plan_.eintr_every == 0) {
        ++stats_.injected_eintr;
        errno = EINTR;
        return -1;
      }
      if (plan_.enospc_after_bytes >= 0 &&
          bytes_written_ >= plan_.enospc_after_bytes) {
        ++stats_.injected_enospc;
        errno = ENOSPC;
        return -1;
      }
      if (plan_.enospc_after_bytes >= 0) {
        const long budget = plan_.enospc_after_bytes - bytes_written_;
        if (static_cast<long>(allowed) > budget) {
          allowed = static_cast<std::size_t>(budget);
        }
      }
      if (plan_.short_writes && allowed > 1) {
        allowed = (allowed + 1) / 2;
        ++stats_.injected_short_writes;
      }
    }
  }
  const ssize_t n = ::write(fd, buf, allowed);
  if (n > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_written_ += n;
  }
  return n;
}

int IoShim::fsync_fd(int fd, const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (armed_ && matches(path)) {
      if (plan_.eintr_every > 0 && ++op_count_ % plan_.eintr_every == 0) {
        ++stats_.injected_eintr;
        errno = EINTR;
        return -1;
      }
      if (plan_.fail_fsync) {
        ++stats_.injected_fsync_failures;
        errno = EIO;
        return -1;
      }
    }
  }
  return ::fsync(fd);
}

int IoShim::close_fd(int fd) { return ::close(fd); }

int IoShim::rename_file(const std::string& from, const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (armed_ && plan_.fail_rename && (matches(from) || matches(to))) {
      ++stats_.injected_rename_failures;
      errno = EIO;
      return -1;
    }
  }
  return ::rename(from.c_str(), to.c_str());
}

int IoShim::fsync_parent_dir(const std::string& path) {
  std::string dir = ".";
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    dir = slash == 0 ? "/" : path.substr(0, slash);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (armed_ && plan_.fail_fsync && matches(path)) {
      ++stats_.injected_fsync_failures;
      errno = EIO;
      return -1;
    }
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) return 0;  // directory fsync is best-effort by platform
  const int rc = ::fsync(dfd);
  ::close(dfd);
  return rc;
}

bool IoShim::alloc_allowed(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_ || plan_.fail_allocs <= 0 || bytes < plan_.alloc_min_bytes) {
    return true;
  }
  --plan_.fail_allocs;
  ++stats_.injected_alloc_failures;
  return false;
}

ScopedIoFaults::ScopedIoFaults(IoFaultPlan plan) {
  auto& shim = IoShim::instance();
  was_armed_ = shim.armed();
  previous_ = shim.plan();
  shim.arm(std::move(plan));
}

ScopedIoFaults::~ScopedIoFaults() {
  auto& shim = IoShim::instance();
  if (was_armed_) {
    shim.arm(previous_);
  } else {
    shim.disarm();
  }
}

}  // namespace tme::io
