#include "util/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/logging.hpp"

namespace tme::env {

namespace {

// strto* skip leading whitespace; the strict contract rejects it.
bool leading_space(const std::string& text) {
  return !text.empty() &&
         std::isspace(static_cast<unsigned char>(text[0])) != 0;
}

}  // namespace

std::optional<std::string> raw(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return std::nullopt;
  return std::string(text);
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty() || leading_space(text) || text[0] == '-') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<long> parse_long(const std::string& text) {
  if (text.empty() || leading_space(text)) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return std::nullopt;
  return v;
}

std::optional<double> parse_double(const std::string& text) {
  if (text.empty() || leading_space(text)) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::uint64_t u64_or(const char* name, std::uint64_t fallback) {
  const auto text = raw(name);
  if (!text) return fallback;
  if (const auto v = parse_u64(*text)) return *v;
  log_warn(name, "='", *text, "' is not an unsigned integer; keeping ", fallback);
  return fallback;
}

double probability_or(const char* name, double fallback) {
  const auto text = raw(name);
  if (!text) return fallback;
  const auto v = parse_double(*text);
  if (v && *v >= 0.0 && *v <= 1.0) return *v;
  log_warn(name, "='", *text, "' is not a probability in [0, 1]; keeping ",
           fallback);
  return fallback;
}

double non_negative_or(const char* name, double fallback) {
  const auto text = raw(name);
  if (!text) return fallback;
  const auto v = parse_double(*text);
  if (v && std::isfinite(*v) && *v >= 0.0) return *v;
  log_warn(name, "='", *text, "' is not a non-negative number; keeping ",
           fallback);
  return fallback;
}

long bounded_long_or(const char* name, long fallback, long lo, long hi) {
  const auto text = raw(name);
  if (!text) return fallback;
  const auto v = parse_long(*text);
  if (v && *v >= lo && *v <= hi) return *v;
  log_warn(name, "='", *text, "' is not an integer in [", lo, ", ", hi,
           "]; keeping ", fallback);
  return fallback;
}

bool flag_or(const char* name, bool fallback) {
  const auto text = raw(name);
  if (!text) return fallback;
  if (*text == "1" || *text == "on" || *text == "true") return true;
  if (*text == "0" || *text == "off" || *text == "false") return false;
  log_warn(name, "='", *text, "' is not 0|1|on|off|true|false; keeping ",
           fallback ? "on" : "off");
  return fallback;
}

std::size_t choice_or(const char* name, const std::vector<std::string>& choices,
                      std::size_t fallback_index) {
  const auto text = raw(name);
  if (!text) return fallback_index;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (*text == choices[i]) return i;
  }
  std::string valid;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) valid += "|";
    valid += choices[i];
  }
  log_warn(name, "='", *text, "' is not ", valid, "; keeping ",
           choices[fallback_index]);
  return fallback_index;
}

}  // namespace tme::env
