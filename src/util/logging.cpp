#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tme {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& text) {
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), text.c_str());
}

}  // namespace tme
