#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "obs/json.hpp"
#include "util/env.hpp"

namespace tme {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

// JSONL sink state, guarded by g_mutex.  Initialised lazily from
// TME_LOG_JSON so library users get the sink without any setup call.
std::FILE* g_json_file = nullptr;
bool g_json_initialised = false;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

double monotonic_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

int thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1);
  return id;
}

// Must hold g_mutex.
std::FILE* json_sink_locked() {
  if (!g_json_initialised) {
    g_json_initialised = true;
    if (const auto path = env::raw("TME_LOG_JSON"); path.has_value() && !path->empty()) {
      g_json_file = std::fopen(path->c_str(), "ab");
    }
  }
  return g_json_file;
}

// Must hold g_mutex.  `body` is the pre-rendered payload members
// ("\"msg\":..." or "\"event\":...,fields").
void write_json_locked(LogLevel level, const std::string& body) {
  std::FILE* f = json_sink_locked();
  if (f == nullptr) return;
  std::fprintf(f, "{\"ts_us\":%.3f,\"level\":\"%s\",\"tid\":%d,%s}\n",
               monotonic_us(), level_name(level), thread_id(), body.c_str());
  std::fflush(f);
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_json_path(const std::string& path) {
  std::lock_guard lock(g_mutex);
  if (g_json_file != nullptr) std::fclose(g_json_file);
  g_json_file = nullptr;
  g_json_initialised = true;
  if (!path.empty()) g_json_file = std::fopen(path.c_str(), "ab");
}

bool log_json_enabled() {
  std::lock_guard lock(g_mutex);
  return json_sink_locked() != nullptr;
}

void log_message(LogLevel level, const std::string& text) {
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), text.c_str());
  write_json_locked(level, "\"msg\":" + obs::json_quote(text));
}

void log_structured(LogLevel level, const std::string& event,
                    const LogFields& fields) {
  // stderr rendering obeys the level filter like the log_* templates...
  if (level == LogLevel::kError || log_level() >= level) {
    std::string text = event;
    for (const auto& [key, value] : fields) {
      text += ' ';
      text += key;
      text += '=';
      text += value;
    }
    std::lock_guard lock(g_mutex);
    std::fprintf(stderr, "[%s] %s\n", level_tag(level), text.c_str());
    std::string body = "\"event\":" + obs::json_quote(event);
    for (const auto& [key, value] : fields) {
      body += ',' + obs::json_quote(key) + ':' + obs::json_quote(value);
    }
    write_json_locked(level, body);
    return;
  }
  // ...but the JSONL sink records every structured event regardless: the
  // whole point is a complete machine-readable record of a fault run.
  std::lock_guard lock(g_mutex);
  std::string body = "\"event\":" + obs::json_quote(event);
  for (const auto& [key, value] : fields) {
    body += ',' + obs::json_quote(key) + ':' + obs::json_quote(value);
  }
  write_json_locked(level, body);
}

}  // namespace tme
