// Portable SIMD abstraction — one vec<double, W> type over AVX-512, AVX2,
// NEON, and a generic array fallback, selected at compile time by the
// TME_SIMD_ARCH build option (see the top-level CMakeLists).
//
// The software reproduction mirrors MDGRAPE-4A's wide arithmetic pipelines
// here: the hot inner loops (short-range pair kernel, B-spline charge
// spreading/gathering, separable axis convolutions) are written once against
// this type and instantiated at two widths — W = kNativeWidth (the "native"
// kernel) and W = 1 (its scalar twin).  The runtime TME_SIMD=scalar|native
// environment knob A/B-switches between the two instantiations behind the
// same function signatures.
//
// Determinism contract (asserted by tests/test_simd.cpp):
//  - every lane op (add/sub/mul/div/sqrt/round/fma) is the IEEE-754 double
//    operation, so per-lane results are bitwise identical to the scalar
//    instantiation executing the same op sequence;
//  - fma() is *fused* exactly when kFmaFused is true (hardware-FMA backends),
//    and the W = 1 twin then routes through std::fma, so scalar and native
//    kernels stay bitwise identical per build;
//  - kernels that only combine lane ops with a shared (scalar) accumulation
//    order are therefore bitwise invariant under TME_SIMD.  Horizontal
//    reduce_add uses a fixed pairwise tree — deterministic per W, but a
//    different association than a serial loop; kernels that need bitwise
//    scalar parity must not use it on values that feed results (the
//    back-interpolation gather documents this as its one relaxation).
//
// Translation units that instantiate kernels at both widths are compiled
// with -ffp-contract=off (set in src/CMakeLists.txt) so the compiler cannot
// fuse a*b+c behind the abstraction's back and break the parity contract.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__) && defined(__AVX512DQ__)
#define TME_SIMD_ISA_AVX512 1
#include <immintrin.h>
#elif defined(__AVX2__) && defined(__FMA__)
#define TME_SIMD_ISA_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define TME_SIMD_ISA_NEON 1
#include <arm_neon.h>
#else
#define TME_SIMD_ISA_GENERIC 1
#endif

namespace tme::simd {

// ---------------------------------------------------------------------------
// Compile-time ISA facts.

#if defined(TME_SIMD_ISA_AVX512)
inline constexpr int kNativeWidth = 8;
inline constexpr bool kFmaFused = true;
inline constexpr const char* kIsaName = "avx512";
#elif defined(TME_SIMD_ISA_AVX2)
inline constexpr int kNativeWidth = 4;
inline constexpr bool kFmaFused = true;
inline constexpr const char* kIsaName = "avx2";
#elif defined(TME_SIMD_ISA_NEON)
inline constexpr int kNativeWidth = 2;
inline constexpr bool kFmaFused = true;
inline constexpr const char* kIsaName = "neon";
#else
// No vector ISA enabled at compile time: the "native" kernel instantiates
// the generic array vec below (plain unfused lane loops the autovectorizer
// may still widen), which is bitwise identical to the scalar twin.
inline constexpr int kNativeWidth = 4;
inline constexpr bool kFmaFused = false;
inline constexpr const char* kIsaName = "generic";
#endif

// ---------------------------------------------------------------------------
// Generic array-backed vec<double, W>: the always-available fallback and the
// W = 1 scalar twin.  Lane ops are written as plain loops; fma honours
// kFmaFused so the twin matches whichever native backend this build carries.

template <typename T, int W>
struct vec;

template <int W>
struct vec<double, W> {
  static_assert(W >= 1);
  static constexpr int width = W;
  std::array<double, W> lane{};

  // Comparison mask: all-ones (true) / all-zeros per lane, stored as double
  // bit patterns so blend() is pure bit logic on every backend.
  struct mask {
    std::array<bool, W> lane{};
  };

  static vec zero() { return vec{}; }
  static vec broadcast(double x) {
    vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = x;
    return v;
  }
  static vec load(const double* p) {
    vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = p[i];
    return v;
  }
  // First `n` lanes from p, remaining lanes zero (masked tail load).
  static vec load_partial(const double* p, int n) {
    vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = i < n ? p[i] : 0.0;
    return v;
  }
  // Gather-ish helper: lane i reads base[idx[i]].
  static vec gather(const double* base, const std::int64_t* idx) {
    vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = base[idx[i]];
    return v;
  }
  void store(double* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  void store_partial(double* p, int n) const {
    for (int i = 0; i < W && i < n; ++i) p[i] = lane[i];
  }
  double extract(int i) const { return lane[i]; }

  friend vec operator+(vec a, vec b) {
    for (int i = 0; i < W; ++i) a.lane[i] += b.lane[i];
    return a;
  }
  friend vec operator-(vec a, vec b) {
    for (int i = 0; i < W; ++i) a.lane[i] -= b.lane[i];
    return a;
  }
  friend vec operator*(vec a, vec b) {
    for (int i = 0; i < W; ++i) a.lane[i] *= b.lane[i];
    return a;
  }
  friend vec operator/(vec a, vec b) {
    for (int i = 0; i < W; ++i) a.lane[i] /= b.lane[i];
    return a;
  }

  // a*b + c, fused exactly when the build's native backend fuses.
  static vec fma(vec a, vec b, vec c) {
    vec r;
    for (int i = 0; i < W; ++i) {
      if constexpr (kFmaFused) {
        r.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
      } else {
        r.lane[i] = a.lane[i] * b.lane[i] + c.lane[i];
      }
    }
    return r;
  }

  static vec sqrt(vec a) {
    for (int i = 0; i < W; ++i) a.lane[i] = std::sqrt(a.lane[i]);
    return a;
  }
  // Round to nearest even — the vector twin of std::nearbyint in the default
  // rounding mode (what min_image uses).
  static vec nearbyint(vec a) {
    for (int i = 0; i < W; ++i) a.lane[i] = std::nearbyint(a.lane[i]);
    return a;
  }
  static vec floor(vec a) {
    for (int i = 0; i < W; ++i) a.lane[i] = std::floor(a.lane[i]);
    return a;
  }
  static vec min(vec a, vec b) {
    for (int i = 0; i < W; ++i) a.lane[i] = b.lane[i] < a.lane[i] ? b.lane[i] : a.lane[i];
    return a;
  }
  static vec max(vec a, vec b) {
    for (int i = 0; i < W; ++i) a.lane[i] = a.lane[i] < b.lane[i] ? b.lane[i] : a.lane[i];
    return a;
  }

  static mask cmp_lt(vec a, vec b) {
    mask m;
    for (int i = 0; i < W; ++i) m.lane[i] = a.lane[i] < b.lane[i];
    return m;
  }
  static mask cmp_ge(vec a, vec b) {
    mask m;
    for (int i = 0; i < W; ++i) m.lane[i] = a.lane[i] >= b.lane[i];
    return m;
  }
  static vec blend(mask m, vec a, vec b) {  // lane i: m ? a : b
    vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = m.lane[i] ? a.lane[i] : b.lane[i];
    return r;
  }
  // Bit i set iff lane i of the mask is true.
  static unsigned mask_bits(mask m) {
    unsigned bits = 0;
    for (int i = 0; i < W; ++i) bits |= m.lane[i] ? (1u << i) : 0u;
    return bits;
  }

  // Horizontal sum with a fixed pairwise tree (pad odd tails with +0.0):
  // deterministic for a given W, independent of the backend.
  double reduce_add() const {
    std::array<double, W> acc = lane;
    int n = W;
    while (n > 1) {
      const int half = (n + 1) / 2;
      for (int i = 0; i < n / 2; ++i) acc[i] = acc[i] + acc[i + half];
      n = half;
    }
    return acc[0];
  }
};

// ---------------------------------------------------------------------------
// AVX2 specialization: vec<double, 4> on __m256d.

#if defined(TME_SIMD_ISA_AVX2)

template <>
struct vec<double, 4> {
  static constexpr int width = 4;
  __m256d v;

  struct mask {
    __m256d m;  // all-ones / all-zeros per lane
  };

  static vec zero() { return {_mm256_setzero_pd()}; }
  static vec broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static vec load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static vec load_partial(const double* p, int n) {
    const __m256i lane_mask = partial_mask(n);
    return {_mm256_maskload_pd(p, lane_mask)};
  }
  static vec gather(const double* base, const std::int64_t* idx) {
    const __m256i vindex = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return {_mm256_i64gather_pd(base, vindex, 8)};
  }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  void store_partial(double* p, int n) const {
    _mm256_maskstore_pd(p, partial_mask(n), v);
  }
  double extract(int i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }

  friend vec operator+(vec a, vec b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend vec operator-(vec a, vec b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend vec operator*(vec a, vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend vec operator/(vec a, vec b) { return {_mm256_div_pd(a.v, b.v)}; }

  static vec fma(vec a, vec b, vec c) { return {_mm256_fmadd_pd(a.v, b.v, c.v)}; }
  static vec sqrt(vec a) { return {_mm256_sqrt_pd(a.v)}; }
  static vec nearbyint(vec a) {
    return {_mm256_round_pd(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
  }
  static vec floor(vec a) { return {_mm256_floor_pd(a.v)}; }
  static vec min(vec a, vec b) { return {_mm256_min_pd(a.v, b.v)}; }
  static vec max(vec a, vec b) { return {_mm256_max_pd(a.v, b.v)}; }

  static mask cmp_lt(vec a, vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)}; }
  static mask cmp_ge(vec a, vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
  static vec blend(mask m, vec a, vec b) {
    return {_mm256_blendv_pd(b.v, a.v, m.m)};
  }
  static unsigned mask_bits(mask m) {
    return static_cast<unsigned>(_mm256_movemask_pd(m.m));
  }

  double reduce_add() const {
    // Fixed tree matching the generic (0+2, 1+3) then pairwise sum.
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
  }

 private:
  static __m256i partial_mask(int n) {
    const __m256i iota = _mm256_setr_epi64x(0, 1, 2, 3);
    return _mm256_cmpgt_epi64(_mm256_set1_epi64x(n), iota);
  }
};

#endif  // TME_SIMD_ISA_AVX2

// ---------------------------------------------------------------------------
// AVX-512 specialization: vec<double, 8> on __m512d with native k-masks.

#if defined(TME_SIMD_ISA_AVX512)

template <>
struct vec<double, 8> {
  static constexpr int width = 8;
  __m512d v;

  struct mask {
    __mmask8 m;
  };

  static vec zero() { return {_mm512_setzero_pd()}; }
  static vec broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static vec load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static vec load_partial(const double* p, int n) {
    const __mmask8 k = static_cast<__mmask8>((1u << n) - 1u);
    return {_mm512_maskz_loadu_pd(k, p)};
  }
  static vec gather(const double* base, const std::int64_t* idx) {
    // Masked form with an explicit zero source: the plain _mm512_i64gather_pd
    // seeds from _mm512_undefined_pd, which GCC flags -Wmaybe-uninitialized.
    const __m512i vindex = _mm512_loadu_si512(idx);
    return {_mm512_mask_i64gather_pd(_mm512_setzero_pd(), 0xFF, vindex, base, 8)};
  }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  void store_partial(double* p, int n) const {
    _mm512_mask_storeu_pd(p, static_cast<__mmask8>((1u << n) - 1u), v);
  }
  double extract(int i) const {
    alignas(64) double tmp[8];
    _mm512_store_pd(tmp, v);
    return tmp[i];
  }

  friend vec operator+(vec a, vec b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend vec operator-(vec a, vec b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend vec operator*(vec a, vec b) { return {_mm512_mul_pd(a.v, b.v)}; }
  friend vec operator/(vec a, vec b) { return {_mm512_div_pd(a.v, b.v)}; }

  // maskz forms with an all-ones mask throughout: GCC 12's unmasked
  // sqrt/roundscale/min/max expand through _mm512_undefined_pd and trip
  // -Wmaybe-uninitialized (same story as the reduce_add shuffles below).
  static vec fma(vec a, vec b, vec c) { return {_mm512_fmadd_pd(a.v, b.v, c.v)}; }
  static vec sqrt(vec a) { return {_mm512_maskz_sqrt_pd(0xFF, a.v)}; }
  static vec nearbyint(vec a) {
    return {_mm512_maskz_roundscale_pd(
        0xFF, a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
  }
  static vec floor(vec a) {
    return {_mm512_maskz_roundscale_pd(
        0xFF, a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
  }
  static vec min(vec a, vec b) { return {_mm512_maskz_min_pd(0xFF, a.v, b.v)}; }
  static vec max(vec a, vec b) { return {_mm512_maskz_max_pd(0xFF, a.v, b.v)}; }

  static mask cmp_lt(vec a, vec b) {
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ)};
  }
  static mask cmp_ge(vec a, vec b) {
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ)};
  }
  static vec blend(mask m, vec a, vec b) {
    return {_mm512_mask_blend_pd(m.m, b.v, a.v)};
  }
  static unsigned mask_bits(mask m) { return static_cast<unsigned>(m.m); }

  double reduce_add() const {
    // Fixed tree (i, i+4) -> (i, i+2) -> (i, i+1), matching the generic vec.
    // Only maskz shuffles: GCC 12's unmasked shuffles, extracts, and even the
    // 512->256 casts expand through _mm512_undefined_pd and trip
    // -Wmaybe-uninitialized.
    const __m512d s4 =
        _mm512_add_pd(v, _mm512_maskz_shuffle_f64x2(0xFF, v, v, 0x4E));
    const __m512d s2 =
        _mm512_add_pd(s4, _mm512_maskz_shuffle_f64x2(0xFF, s4, s4, 0xB1));
    const __m512d s1 = _mm512_add_pd(s2, _mm512_maskz_permute_pd(0xFF, s2, 0x55));
    return _mm512_cvtsd_f64(s1);
  }
};

#endif  // TME_SIMD_ISA_AVX512

// ---------------------------------------------------------------------------
// NEON specialization: vec<double, 2> on float64x2_t.

#if defined(TME_SIMD_ISA_NEON)

template <>
struct vec<double, 2> {
  static constexpr int width = 2;
  float64x2_t v;

  struct mask {
    uint64x2_t m;
  };

  static vec zero() { return {vdupq_n_f64(0.0)}; }
  static vec broadcast(double x) { return {vdupq_n_f64(x)}; }
  static vec load(const double* p) { return {vld1q_f64(p)}; }
  static vec load_partial(const double* p, int n) {
    return n >= 2 ? load(p) : vec{vsetq_lane_f64(n == 1 ? p[0] : 0.0, vdupq_n_f64(0.0), 0)};
  }
  static vec gather(const double* base, const std::int64_t* idx) {
    float64x2_t r = vdupq_n_f64(0.0);
    r = vsetq_lane_f64(base[idx[0]], r, 0);
    r = vsetq_lane_f64(base[idx[1]], r, 1);
    return {r};
  }
  void store(double* p) const { vst1q_f64(p, v); }
  void store_partial(double* p, int n) const {
    if (n >= 2) {
      store(p);
    } else if (n == 1) {
      p[0] = vgetq_lane_f64(v, 0);
    }
  }
  double extract(int i) const {
    return i == 0 ? vgetq_lane_f64(v, 0) : vgetq_lane_f64(v, 1);
  }

  friend vec operator+(vec a, vec b) { return {vaddq_f64(a.v, b.v)}; }
  friend vec operator-(vec a, vec b) { return {vsubq_f64(a.v, b.v)}; }
  friend vec operator*(vec a, vec b) { return {vmulq_f64(a.v, b.v)}; }
  friend vec operator/(vec a, vec b) { return {vdivq_f64(a.v, b.v)}; }

  static vec fma(vec a, vec b, vec c) { return {vfmaq_f64(c.v, a.v, b.v)}; }
  static vec sqrt(vec a) { return {vsqrtq_f64(a.v)}; }
  static vec nearbyint(vec a) { return {vrndnq_f64(a.v)}; }  // round-to-even
  static vec floor(vec a) { return {vrndmq_f64(a.v)}; }
  static vec min(vec a, vec b) { return {vminq_f64(a.v, b.v)}; }
  static vec max(vec a, vec b) { return {vmaxq_f64(a.v, b.v)}; }

  static mask cmp_lt(vec a, vec b) { return {vcltq_f64(a.v, b.v)}; }
  static mask cmp_ge(vec a, vec b) { return {vcgeq_f64(a.v, b.v)}; }
  static vec blend(mask m, vec a, vec b) { return {vbslq_f64(m.m, a.v, b.v)}; }
  static unsigned mask_bits(mask m) {
    return static_cast<unsigned>(vgetq_lane_u64(m.m, 0) & 1) |
           (static_cast<unsigned>(vgetq_lane_u64(m.m, 1) & 1) << 1);
  }

  double reduce_add() const { return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1); }
};

#endif  // TME_SIMD_ISA_NEON

using vecd = vec<double, kNativeWidth>;
using vec1d = vec<double, 1>;

// Scalar a*b + c with the same fusion policy as the vec backends — for the
// wrap-around / boundary fallback loops inside vectorized kernels, so every
// element sees the identical operation regardless of which path touched it.
inline double fma1(double a, double b, double c) {
  if constexpr (kFmaFused) {
    return std::fma(a, b, c);
  } else {
    return a * b + c;
  }
}

// ---------------------------------------------------------------------------
// Runtime kernel selection.

// Which instantiation a dispatching kernel runs.
enum class Mode {
  kScalar,  // the W = 1 twin — the A/B baseline
  kNative,  // vec<double, kNativeWidth> on the compile-time ISA
};

// The TME_SIMD=scalar|native environment knob, parsed once per process
// (default native).  Malformed values warn and keep the default.
Mode mode_from_env();

// Name of the compile-time backend: "avx512", "avx2", "neon", or "generic".
const char* active_isa();

// Lane count of the mode's instantiation (1 for kScalar).
int lanes(Mode mode);

// Human-readable mode name ("scalar" / "native").
const char* mode_name(Mode mode);

}  // namespace tme::simd

namespace tme::obs {
class JsonValue;
}

namespace tme::simd {

// {"isa", "native_width", "fma_fused", "mode", "width"} — attached to the
// per-run manifest, every LongRangeSolver::describe(), and BENCH exports so
// artifacts record exactly which kernel instantiations produced them.
obs::JsonValue describe_json(Mode mode = mode_from_env());

}  // namespace tme::simd
