// Pipeline observability: a process-wide metrics registry.
//
// Four metric kinds, mirroring what the paper's evaluation needs (Table 2,
// Fig. 9 per-stage breakdowns):
//  - counters:   monotonically increasing event counts (atomic, safe to bump
//    concurrently from ThreadPool workers);
//  - gauges:     last-written values (grid sizes, traffic volumes);
//  - timers:     accumulated wall-clock seconds + invocation counts, keyed by
//    a hierarchical slash-joined path built from nested ScopedPhase scopes
//    ("tme/convolution" is the convolution stage inside Tme::compute);
//  - histograms: log-spaced fixed-bin distributions with p50/p95/p99/min/max
//    in snapshots.  Every timer_add also records its sample into a histogram
//    at the same path, so per-stage timing *distributions* (not just sums)
//    appear in BENCH_*.json — the percentile-level fidelity the mesh-Ewald
//    comparisons in the literature report.
//
// Instrumentation sites use the TME_PHASE / TME_COUNTER_ADD / TME_GAUGE_SET
// macros below.  When the build is configured with -DTME_METRICS=OFF the
// macros expand to nothing, so instrumented hot paths carry zero overhead;
// the registry classes themselves stay compiled so tests and tools can use
// them explicitly in either configuration.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tme::obs {

#if defined(TME_METRICS_ENABLED)
inline constexpr bool kMetricsEnabled = true;
#else
inline constexpr bool kMetricsEnabled = false;
#endif

// Monotonic event counter.  add() is lock-free; the registry hands out
// stable references, so call sites may cache the result of counter().
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

struct TimerStat {
  double seconds = 0.0;
  std::uint64_t count = 0;
};

// Log-spaced fixed-bin histogram.  record() is lock-free (atomic bin bumps),
// so ThreadPool workers may record concurrently; quantiles are computed on
// demand from the bins.  The bin grid is fixed at construction: 8 bins per
// decade over [1e-9, 1e4) — fine enough that a quantile read off a bin's
// geometric midpoint is within ±15% of the true sample (10^(1/16) ≈ 1.155),
// wide enough to span nanosecond kernels to multi-hour runs.  Samples
// outside the grid land in dedicated underflow/overflow bins.
class Histogram {
 public:
  static constexpr double kMinValue = 1e-9;
  static constexpr int kBinsPerDecade = 8;
  static constexpr int kDecades = 13;
  // underflow + graded bins + overflow
  static constexpr int kBinCount = 2 + kBinsPerDecade * kDecades;

  void record(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t bin(int index) const {
    return bins_[static_cast<std::size_t>(index)].load(std::memory_order_relaxed);
  }

  // Inclusive lower edge of a graded bin (index in [1, kBinCount-2]).
  static double bin_lower(int index);
  // Geometric midpoint used as the representative value of a bin.
  static double bin_mid(int index);
  // Bin index a value lands in.
  static int bin_index(double value);

  void reset();

 private:
  std::atomic<std::uint64_t> bins_[kBinCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};

  friend struct HistogramStat;
  friend class Registry;
};

// A read-out of one histogram: summary stats, quantiles, and the non-empty
// bins (sparse, as (bin index, count) pairs) for exact reconstruction.
struct HistogramStat {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<std::pair<int, std::uint64_t>> bins;

  static HistogramStat from(const Histogram& h);
  // Quantile from the captured bins (q in [0, 1]); bin-midpoint resolution,
  // clamped to the observed [min, max].
  double quantile(double q) const;
};

// A point-in-time copy of the registry, sorted by name within each kind.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, TimerStat>> timers;
  std::vector<std::pair<std::string, HistogramStat>> histograms;
};

class Registry {
 public:
  // The process-wide registry used by all instrumentation macros.
  static Registry& global();

  // Returns the named counter, creating it at zero on first use.  The
  // reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);

  void gauge_set(const std::string& name, double value);
  // Accumulates into the timer at `path` AND records the sample into the
  // histogram of the same name, so every timer site gets a distribution
  // for free.
  void timer_add(const std::string& path, double seconds);

  // Returns the named histogram, creating it empty on first use.  The
  // reference stays valid for the registry's lifetime (like counter()).
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  // Zeroes every counter and histogram and drops all gauges and timers.
  // Counter/histogram references handed out earlier stay valid (they are
  // kept, reset).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;  // node-based: stable addresses
  std::map<std::string, double> gauges_;
  std::map<std::string, TimerStat> timers_;
  std::map<std::string, Histogram> histograms_;  // node-based: stable
};

// RAII wall-clock phase timer.  Nested instances on the same thread build a
// slash-joined path; the elapsed time is recorded into the global registry's
// timer at that path on destruction.  The phase stack is thread-local, so
// concurrent top-level phases on different threads do not interleave.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  // The slash-joined path of the calling thread's open phases ("" if none).
  static std::string current_path();

 private:
  std::chrono::steady_clock::time_point start_;
  std::string path_;
};

// Serialises a snapshot as a JSON object:
//   {"counters": {...}, "gauges": {...}, "timers": {"p": {"seconds": s,
//    "count": n}, ...}, "histograms": {"p": {"count": n, "sum": s, "min": m,
//    "max": M, "p50": ..., "p95": ..., "p99": ..., "bins": {"<idx>": n}}}}
// Doubles are printed with enough digits to round-trip.
std::string to_json(const MetricsSnapshot& snapshot);

// Parses the output of to_json back into a snapshot (throws
// std::runtime_error on malformed input).  Used by tests and tools that
// ingest the bench BENCH_*.json breakdowns.  The "histograms" key is
// optional so artifacts written before histograms existed still parse.
MetricsSnapshot metrics_from_json(const std::string& json);

}  // namespace tme::obs

#define TME_OBS_CONCAT_INNER(a, b) a##b
#define TME_OBS_CONCAT(a, b) TME_OBS_CONCAT_INNER(a, b)

#if defined(TME_METRICS_ENABLED)

#define TME_PHASE(name) \
  ::tme::obs::ScopedPhase TME_OBS_CONCAT(tme_obs_phase_, __LINE__)(name)

// `name` must be a string literal (the counter reference is cached).
#define TME_COUNTER_ADD(name, n)                                        \
  do {                                                                  \
    static ::tme::obs::Counter& TME_OBS_CONCAT(tme_obs_counter_,        \
                                               __LINE__) =              \
        ::tme::obs::Registry::global().counter(name);                   \
    TME_OBS_CONCAT(tme_obs_counter_, __LINE__)                          \
        .add(static_cast<std::uint64_t>(n));                            \
  } while (0)

#define TME_GAUGE_SET(name, value) \
  ::tme::obs::Registry::global().gauge_set(name, static_cast<double>(value))

#else  // instrumentation compiled out

#define TME_PHASE(name) \
  do {                  \
  } while (0)
#define TME_COUNTER_ADD(name, n) \
  do {                           \
    (void)sizeof(n);             \
  } while (0)
#define TME_GAUGE_SET(name, value) \
  do {                             \
    (void)sizeof(value);           \
  } while (0)

#endif
