// Pipeline observability: a process-wide metrics registry.
//
// Three metric kinds, mirroring what the paper's evaluation needs (Table 2,
// Fig. 9 per-stage breakdowns):
//  - counters: monotonically increasing event counts (atomic, safe to bump
//    concurrently from ThreadPool workers);
//  - gauges:   last-written values (grid sizes, traffic volumes);
//  - timers:   accumulated wall-clock seconds + invocation counts, keyed by
//    a hierarchical slash-joined path built from nested ScopedPhase scopes
//    ("tme/convolution" is the convolution stage inside Tme::compute).
//
// Instrumentation sites use the TME_PHASE / TME_COUNTER_ADD / TME_GAUGE_SET
// macros below.  When the build is configured with -DTME_METRICS=OFF the
// macros expand to nothing, so instrumented hot paths carry zero overhead;
// the registry classes themselves stay compiled so tests and tools can use
// them explicitly in either configuration.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tme::obs {

#if defined(TME_METRICS_ENABLED)
inline constexpr bool kMetricsEnabled = true;
#else
inline constexpr bool kMetricsEnabled = false;
#endif

// Monotonic event counter.  add() is lock-free; the registry hands out
// stable references, so call sites may cache the result of counter().
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

struct TimerStat {
  double seconds = 0.0;
  std::uint64_t count = 0;
};

// A point-in-time copy of the registry, sorted by name within each kind.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, TimerStat>> timers;
};

class Registry {
 public:
  // The process-wide registry used by all instrumentation macros.
  static Registry& global();

  // Returns the named counter, creating it at zero on first use.  The
  // reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);

  void gauge_set(const std::string& name, double value);
  void timer_add(const std::string& path, double seconds);

  MetricsSnapshot snapshot() const;

  // Zeroes every counter and drops all gauges and timers.  Counter
  // references handed out earlier stay valid (counters are kept, reset).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;  // node-based: stable addresses
  std::map<std::string, double> gauges_;
  std::map<std::string, TimerStat> timers_;
};

// RAII wall-clock phase timer.  Nested instances on the same thread build a
// slash-joined path; the elapsed time is recorded into the global registry's
// timer at that path on destruction.  The phase stack is thread-local, so
// concurrent top-level phases on different threads do not interleave.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  // The slash-joined path of the calling thread's open phases ("" if none).
  static std::string current_path();

 private:
  std::chrono::steady_clock::time_point start_;
  std::string path_;
};

// Serialises a snapshot as a JSON object:
//   {"counters": {...}, "gauges": {...}, "timers": {"p": {"seconds": s,
//    "count": n}, ...}}
// Doubles are printed with enough digits to round-trip.
std::string to_json(const MetricsSnapshot& snapshot);

// Parses the output of to_json back into a snapshot (throws
// std::runtime_error on malformed input).  Used by tests and tools that
// ingest the bench BENCH_*.json breakdowns.
MetricsSnapshot metrics_from_json(const std::string& json);

}  // namespace tme::obs

#define TME_OBS_CONCAT_INNER(a, b) a##b
#define TME_OBS_CONCAT(a, b) TME_OBS_CONCAT_INNER(a, b)

#if defined(TME_METRICS_ENABLED)

#define TME_PHASE(name) \
  ::tme::obs::ScopedPhase TME_OBS_CONCAT(tme_obs_phase_, __LINE__)(name)

// `name` must be a string literal (the counter reference is cached).
#define TME_COUNTER_ADD(name, n)                                        \
  do {                                                                  \
    static ::tme::obs::Counter& TME_OBS_CONCAT(tme_obs_counter_,        \
                                               __LINE__) =              \
        ::tme::obs::Registry::global().counter(name);                   \
    TME_OBS_CONCAT(tme_obs_counter_, __LINE__)                          \
        .add(static_cast<std::uint64_t>(n));                            \
  } while (0)

#define TME_GAUGE_SET(name, value) \
  ::tme::obs::Registry::global().gauge_set(name, static_cast<double>(value))

#else  // instrumentation compiled out

#define TME_PHASE(name) \
  do {                  \
  } while (0)
#define TME_COUNTER_ADD(name, n) \
  do {                           \
    (void)sizeof(n);             \
  } while (0)
#define TME_GAUGE_SET(name, value) \
  do {                             \
    (void)sizeof(value);           \
  } while (0)

#endif
