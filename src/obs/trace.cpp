#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json.hpp"
#include "obs/manifest.hpp"

namespace tme::obs {

namespace {

// obs sits below util in the link order, so it cannot use util/env; the two
// variables read here are simple enough for direct parsing.
bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  return std::strcmp(raw, "1") == 0 || std::strcmp(raw, "on") == 0 ||
         std::strcmp(raw, "ON") == 0 || std::strcmp(raw, "true") == 0 ||
         std::strcmp(raw, "TRUE") == 0;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || v == 0) return fallback;
  return static_cast<std::size_t>(v);
}

void append_number(std::string& out, double v) {
  char buf[32];
  // Timestamps and counter values: fixed microsecond precision keeps the
  // file compact and is far below anything the viewer can display.
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  enabled_.store(env_flag("TME_TRACE"), std::memory_order_relaxed);
  capacity_.store(env_size("TME_TRACE_BUFFER", 65536), std::memory_order_relaxed);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

double Tracer::now_us() const {
  const auto delta = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(delta).count();
}

TrackId Tracer::track(const std::string& process, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].process == process && tracks_[i].name == name)
      return static_cast<TrackId>(i);
  }
  std::uint32_t pid = 0;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] == process) pid = static_cast<std::uint32_t>(i + 1);
  }
  if (pid == 0) {
    processes_.push_back(process);
    pid = static_cast<std::uint32_t>(processes_.size());
  }
  // tids only need to be unique within a pid; globally unique is simpler
  // and renders identically.
  const std::uint32_t tid = static_cast<std::uint32_t>(tracks_.size() + 1);
  tracks_.push_back(TrackInfo{process, name, pid, tid});
  return static_cast<TrackId>(tracks_.size() - 1);
}

Tracer::Buffer& Tracer::local_buffer() {
  struct Local {
    std::shared_ptr<Buffer> buffer;
    std::uint64_t generation = ~std::uint64_t{0};
    TrackId track = 0;
  };
  thread_local Local local;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (local.buffer == nullptr || local.generation != gen) {
    auto buffer = std::make_shared<Buffer>();
    buffer->capacity = capacity_.load(std::memory_order_relaxed);
    buffer->events.reserve(buffer->capacity);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      buffers_.push_back(buffer);
    }
    local.buffer = std::move(buffer);
    local.generation = gen;
  }
  return *local.buffer;
}

TrackId Tracer::thread_track() {
  struct Local {
    TrackId track = 0;
    std::uint64_t generation = ~std::uint64_t{0};
  };
  thread_local Local local;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (local.generation != gen) {
    std::uint32_t index = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      index = thread_count_++;
    }
    local.track = track("software", "thread " + std::to_string(index));
    local.generation = gen;
  }
  return local.track;
}

void Tracer::append(TraceEvent event) {
  Buffer& buf = local_buffer();
  const std::size_t size = buf.size.load(std::memory_order_relaxed);
  if (size >= buf.capacity) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(std::move(event));
  // Publish after the element is fully constructed so a concurrent export
  // sees only complete events.
  buf.size.store(size + 1, std::memory_order_release);
}

void Tracer::complete(TrackId track, std::string name, double ts_us,
                      double dur_us, std::string detail) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kComplete;
  e.track = track;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.name = std::move(name);
  e.detail = std::move(detail);
  append(std::move(e));
}

void Tracer::instant(TrackId track, std::string name, double ts_us,
                     std::string detail) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kInstant;
  e.track = track;
  e.ts_us = ts_us;
  e.name = std::move(name);
  e.detail = std::move(detail);
  append(std::move(e));
}

void Tracer::instant_now(std::string name, std::string detail) {
  if (!enabled()) return;
  instant(thread_track(), std::move(name), now_us(), std::move(detail));
}

void Tracer::counter(TrackId track, std::string name, double ts_us,
                     double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kCounter;
  e.track = track;
  e.ts_us = ts_us;
  e.value = value;
  e.name = std::move(name);
  append(std::move(e));
}

void Tracer::flow_start(TrackId track, std::string name, double ts_us,
                        std::uint64_t flow_id) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kFlowStart;
  e.track = track;
  e.ts_us = ts_us;
  e.flow = flow_id;
  e.name = std::move(name);
  append(std::move(e));
}

void Tracer::flow_finish(TrackId track, std::string name, double ts_us,
                         std::uint64_t flow_id) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kFlowFinish;
  e.track = track;
  e.ts_us = ts_us;
  e.flow = flow_id;
  e.name = std::move(name);
  append(std::move(e));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buf : buffers_) total += buf->size.load(std::memory_order_acquire);
  return total;
}

std::size_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buf : buffers_)
    total += static_cast<std::size_t>(buf->dropped.load(std::memory_order_relaxed));
  return total;
}

TraceChunk Tracer::drain_chunk() {
  TraceChunk chunk;
  std::lock_guard<std::mutex> lock(mutex_);
  chunk.tracks.reserve(tracks_.size());
  for (const TrackInfo& t : tracks_)
    chunk.tracks.push_back(TraceChunkTrack{t.process, t.name});
  for (const auto& buf : buffers_) {
    const std::size_t size = buf->size.load(std::memory_order_acquire);
    const std::uint64_t dropped = buf->dropped.load(std::memory_order_relaxed);
    // `emitted` counts every recording attempt (kept + overflowed), so the
    // receiver's conservation check  emitted == merged + dropped  closes.
    chunk.emitted += size + dropped;
    chunk.dropped += dropped;
    for (std::size_t i = buf->consumed; i < size; ++i)
      chunk.events.push_back(buf->events[i]);
    buf->consumed = size;
  }
  return chunk;
}

TraceChunk Tracer::snapshot_chunk() const {
  TraceChunk chunk;
  std::lock_guard<std::mutex> lock(mutex_);
  chunk.tracks.reserve(tracks_.size());
  for (const TrackInfo& t : tracks_)
    chunk.tracks.push_back(TraceChunkTrack{t.process, t.name});
  for (const auto& buf : buffers_) {
    const std::size_t size = buf->size.load(std::memory_order_acquire);
    const std::uint64_t dropped = buf->dropped.load(std::memory_order_relaxed);
    chunk.emitted += size + dropped;
    chunk.dropped += dropped;
    for (std::size_t i = 0; i < size; ++i) chunk.events.push_back(buf->events[i]);
  }
  return chunk;
}

std::size_t Tracer::undrained_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buf : buffers_)
    total += buf->size.load(std::memory_order_acquire) - buf->consumed;
  return total;
}

std::string Tracer::to_json() const {
  // Snapshot under the lock, then format without it.
  std::vector<TraceEvent> events;
  std::vector<TrackInfo> tracks;
  std::vector<std::string> processes;
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracks = tracks_;
    processes = processes_;
    for (const auto& buf : buffers_) {
      const std::size_t size = buf->size.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < size; ++i) events.push_back(buf->events[i]);
      dropped += static_cast<std::size_t>(buf->dropped.load(std::memory_order_relaxed));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [&](const TraceEvent& a, const TraceEvent& b) {
                     const TrackInfo& ta = tracks[a.track];
                     const TrackInfo& tb = tracks[b.track];
                     if (ta.pid != tb.pid) return ta.pid < tb.pid;
                     if (ta.tid != tb.tid) return ta.tid < tb.tid;
                     return a.ts_us < b.ts_us;
                   });

  std::string out;
  out.reserve(events.size() * 96 + 4096);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // Metadata records: name the processes and track rows.
  for (std::size_t p = 0; p < processes.size(); ++p) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(p + 1);
    out += ",\"tid\":0,\"args\":{\"name\":" + json_quote(processes[p]) + "}}";
  }
  for (const TrackInfo& t : tracks) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(t.pid);
    out += ",\"tid\":";
    out += std::to_string(t.tid);
    out += ",\"args\":{\"name\":" + json_quote(t.name) + "}}";
  }
  for (const TraceEvent& e : events) {
    const TrackInfo& t = tracks[e.track];
    sep();
    out += "{\"ph\":\"";
    switch (e.type) {
      case TraceEventType::kComplete: out += 'X'; break;
      case TraceEventType::kInstant: out += 'i'; break;
      case TraceEventType::kCounter: out += 'C'; break;
      case TraceEventType::kFlowStart: out += 's'; break;
      case TraceEventType::kFlowFinish: out += 'f'; break;
    }
    out += "\",\"name\":" + json_quote(e.name);
    out += ",\"pid\":" + std::to_string(t.pid);
    out += ",\"tid\":" + std::to_string(t.tid);
    out += ",\"ts\":";
    append_number(out, e.ts_us);
    if (e.type == TraceEventType::kComplete) {
      out += ",\"dur\":";
      append_number(out, e.dur_us);
    }
    if (e.type == TraceEventType::kInstant) out += ",\"s\":\"t\"";
    if (e.type == TraceEventType::kFlowStart ||
        e.type == TraceEventType::kFlowFinish) {
      out += ",\"cat\":\"flow\",\"id\":" + std::to_string(e.flow);
      if (e.type == TraceEventType::kFlowFinish) out += ",\"bp\":\"e\"";
    }
    if (e.type == TraceEventType::kCounter) {
      out += ",\"args\":{\"value\":";
      append_number(out, e.value);
      out += "}";
    } else if (!e.detail.empty()) {
      out += ",\"args\":{\"detail\":" + json_quote(e.detail) + "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ns\",\"otherData\":";
  JsonValue other = manifest_json();
  other.as_object()["trace_events"] = JsonValue::make_number(static_cast<double>(events.size()));
  other.as_object()["trace_dropped"] = JsonValue::make_number(static_cast<double>(dropped));
  out += other.dump();
  out += "}\n";
  return out;
}

bool Tracer::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (written != json.size()) std::fclose(f);
  return ok;
}

void Tracer::set_buffer_capacity(std::size_t events) {
  if (events == 0) events = 1;
  capacity_.store(events, std::memory_order_relaxed);
}

void Tracer::reset_for_testing() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  tracks_.clear();
  processes_.clear();
  thread_count_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace tme::obs
