#include "obs/manifest.hpp"

#include <cstring>
#include <map>
#include <mutex>
#include <variant>

extern char** environ;

namespace tme::obs {

namespace {

#if !defined(TME_GIT_DESCRIBE)
#define TME_GIT_DESCRIBE "unknown"
#endif
#if !defined(TME_BUILD_TYPE)
#define TME_BUILD_TYPE "unknown"
#endif

struct RuntimeFacts {
  std::mutex mutex;
  std::map<std::string, std::variant<std::string, double, JsonValue>> values;
};

RuntimeFacts& facts() {
  static RuntimeFacts f;
  return f;
}

}  // namespace

void manifest_set(const std::string& key, const std::string& value) {
  RuntimeFacts& f = facts();
  std::lock_guard<std::mutex> lock(f.mutex);
  f.values[key] = value;
}

void manifest_set(const std::string& key, double value) {
  RuntimeFacts& f = facts();
  std::lock_guard<std::mutex> lock(f.mutex);
  f.values[key] = value;
}

void manifest_set(const std::string& key, JsonValue value) {
  RuntimeFacts& f = facts();
  std::lock_guard<std::mutex> lock(f.mutex);
  f.values[key] = std::move(value);
}

JsonValue manifest_json() {
  JsonValue root = JsonValue::make_object();
  auto& obj = root.as_object();
  obj["git_describe"] = JsonValue::make_string(TME_GIT_DESCRIBE);
  obj["build_type"] = JsonValue::make_string(TME_BUILD_TYPE);
#if defined(TME_METRICS_ENABLED)
  obj["metrics_compiled"] = JsonValue::make_number(1);
#else
  obj["metrics_compiled"] = JsonValue::make_number(0);
#endif
#if defined(TME_TRACE_ENABLED)
  obj["trace_compiled"] = JsonValue::make_number(1);
#else
  obj["trace_compiled"] = JsonValue::make_number(0);
#endif

  JsonValue env = JsonValue::make_object();
  auto& env_obj = env.as_object();
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    if (std::strncmp(*e, "TME_", 4) != 0) continue;
    const char* eq = std::strchr(*e, '=');
    if (eq == nullptr) continue;
    env_obj[std::string(*e, static_cast<std::size_t>(eq - *e))] =
        JsonValue::make_string(eq + 1);
  }
  obj["env"] = std::move(env);

  JsonValue runtime = JsonValue::make_object();
  auto& run_obj = runtime.as_object();
  {
    RuntimeFacts& f = facts();
    std::lock_guard<std::mutex> lock(f.mutex);
    for (const auto& [key, value] : f.values) {
      if (std::holds_alternative<double>(value)) {
        run_obj[key] = JsonValue::make_number(std::get<double>(value));
      } else if (std::holds_alternative<JsonValue>(value)) {
        run_obj[key] = std::get<JsonValue>(value);
      } else {
        run_obj[key] = JsonValue::make_string(std::get<std::string>(value));
      }
    }
  }
  obj["runtime"] = std::move(runtime);
  return root;
}

}  // namespace tme::obs
