// Fleet-wide telemetry aggregation: merge worker trace chunks and metric
// snapshots into one coordinator-side timeline.
//
// Workers run their own process-local Tracer and Registry; the transport
// layer ships sealed TraceChunks (plus a metrics-snapshot JSON) back to the
// coordinator as kTelemetry messages.  This class owns the coordinator-side
// half: it keys every (rank, os pid) incarnation separately — a respawned
// worker has a fresh tracer epoch and must never share a clock mapping with
// its predecessor — applies the per-incarnation clock offset estimated from
// ping/pong round trips (obs/clock.hpp), and writes one Chrome/Perfetto
// JSON with a process track per worker incarnation next to the
// coordinator's own tracks.
//
// Conservation: chunks carry *cumulative* emitted/dropped counters, so for
// a fully-flushed incarnation  emitted == merged events + dropped  holds
// exactly, and the merged file reports fleet-wide totals in otherData.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tme::obs {

class Registry;
class Tracer;

// One telemetry shipment from a worker, decoded off the wire
// (par/telemetry.hpp owns the codec).
struct WorkerTelemetry {
  std::uint32_t rank = 0;
  std::int64_t pid = 0;       // worker os pid, stamps the incarnation
  std::uint64_t seq = 0;      // per-incarnation flush sequence number
  TraceChunk chunk;
  std::string metrics_json;   // obs::to_json of the worker's registry ("" ok)
};

class FleetTelemetry {
 public:
  // Records (or refreshes) the clock offset for a worker incarnation:
  // local = remote - offset_us, error bound rtt_us / 2.  Creates the
  // incarnation record if this is the first contact (init handshake
  // usually lands before any telemetry chunk).
  void set_offset(std::uint32_t rank, std::int64_t pid, double offset_us,
                  double rtt_us);

  void ingest(WorkerTelemetry telemetry);

  std::size_t chunk_count() const { return chunk_count_; }
  std::uint64_t events_merged() const { return events_merged_; }
  // Cumulative totals across incarnations (latest counter per incarnation).
  std::uint64_t emitted_total() const;
  std::uint64_t dropped_total() const;
  std::size_t incarnation_count() const { return incarnations_.size(); }

  // Latest worker metrics-snapshot JSON per rank (most recent incarnation
  // and flush wins).  Empty strings are skipped.
  std::map<std::uint32_t, std::string> latest_metrics() const;

  // Re-publishes every worker's latest counters, gauges and timer seconds
  // into `registry` as gauges named "fleet/w<rank>/worker/<name>", so the
  // fleet view lands in ordinary BENCH_*.json exports.  Malformed snapshots
  // are skipped.
  void publish_worker_metrics(Registry& registry) const;

  // Serialises the merged timeline: the coordinator tracer's own events
  // (snapshot, non-consuming) on its usual process tracks, plus one process
  // per worker incarnation ("worker <rank> (pid <p>)", merged pid 1001+)
  // with timestamps shifted onto the coordinator clock.  Deterministic for
  // a fixed ingest order: byte-identical output for identical inputs.
  std::string to_json(const Tracer& coordinator) const;
  bool write(const std::string& path, const Tracer& coordinator) const;

  void clear();

 private:
  struct Incarnation {
    std::uint32_t rank = 0;
    std::int64_t pid = 0;
    double offset_us = 0.0;
    double rtt_us = 0.0;
    bool has_offset = false;
    std::uint64_t emitted = 0;  // latest cumulative counters seen
    std::uint64_t dropped = 0;
    std::uint64_t last_seq = 0;
    std::string metrics_json;
    std::vector<TraceChunk> chunks;
  };

  Incarnation& incarnation(std::uint32_t rank, std::int64_t pid);

  std::vector<Incarnation> incarnations_;  // arrival order: stable merge pids
  std::size_t chunk_count_ = 0;
  std::uint64_t events_merged_ = 0;
};

}  // namespace tme::obs
