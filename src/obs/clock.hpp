// Per-worker clock-offset estimation from ping/pong round trips.
//
// Worker tracer timestamps are microseconds since *that process's* tracer
// epoch, so every worker lives on its own clock.  The coordinator aligns
// them with the classic NTP-style midpoint estimate: send a ping at local
// t0, receive the pong at local t1 carrying the worker's clock reading R
// taken while handling the ping.  Assuming the outbound and return legs
// are symmetric, R was sampled at local (t0 + t1) / 2, so
//
//   offset = R - (t0 + t1) / 2      and      local = remote - offset.
//
// The asymmetry error is bounded by RTT / 2, so the estimator keeps the
// sample with the smallest RTT seen — tighter round trips give tighter
// bounds, and a congested ping can never loosen an earlier good estimate.
// Offsets are only meaningful per tracer epoch: the fleet resets its
// estimator for a rank whenever the worker (re)initialises.
#pragma once

#include <cstdint>

namespace tme::obs {

class ClockOffsetEstimator {
 public:
  // One round trip: local send/receive times and the remote clock reading
  // taken in between (all microseconds, local on the caller's clock).
  // Keeps the sample iff its RTT is the smallest seen.  Non-positive RTTs
  // (clock misuse) are ignored except as the very first sample.
  void add_sample(double t0_us, double t1_us, double remote_us) {
    const double rtt = t1_us - t0_us;
    const double offset = remote_us - 0.5 * (t0_us + t1_us);
    ++samples_;
    if (samples_ == 1 || (rtt >= 0.0 && rtt < rtt_us_)) {
      rtt_us_ = rtt;
      offset_us_ = offset;
    }
  }

  bool has_offset() const { return samples_ > 0; }
  // remote - local midpoint; map remote timestamps with local = remote - offset.
  double offset_us() const { return offset_us_; }
  // RTT of the best (kept) sample; the offset error bound is rtt_us() / 2.
  double rtt_us() const { return rtt_us_; }
  std::uint64_t samples() const { return samples_; }

  void reset() { *this = ClockOffsetEstimator{}; }

 private:
  double offset_us_ = 0.0;
  double rtt_us_ = 0.0;
  std::uint64_t samples_ = 0;
};

}  // namespace tme::obs
