#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tme::obs {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos));
}

// Shortest %.17g-style representation that still round-trips a double.
std::string format_number(double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; metrics never produce them, but fail loudly.
    throw std::runtime_error("json: non-finite number");
  }
  char buf[32];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("bad literal", pos_);
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("bad literal", pos_);
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("bad literal", pos_);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.as_object()[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.as_array().push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos_ - 1);
          }
          // UTF-8 encode the BMP code point (metrics names are ASCII; this
          // keeps the parser honest for general input).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value", pos_);
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number", start);
    return JsonValue::make_number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

std::vector<JsonValue>& JsonValue::as_array() {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

std::map<std::string, JsonValue>& JsonValue::as_object() {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  const auto& obj = as_object();
  return obj.find(key) != obj.end();
}

std::string JsonValue::dump() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return bool_ ? "true" : "false";
    case Type::kNumber: return format_number(number_);
    case Type::kString: return json_quote(string_);
    case Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].dump();
      }
      return out + "]";
    }
    case Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        out += json_quote(k);
        out += ':';
        out += v.dump();
      }
      return out + "}";
    }
  }
  throw std::logic_error("json: bad type");
}

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out + "\"";
}

}  // namespace tme::obs
