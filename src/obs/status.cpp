#include "obs/status.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <chrono>

#include <unistd.h>

#include "obs/metrics.hpp"

namespace tme::obs {

namespace {

volatile std::sig_atomic_t g_status_signal = 0;

void on_sigusr1(int) { g_status_signal = 1; }

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

StatusReporter& StatusReporter::global() {
  static StatusReporter reporter;
  return reporter;
}

void StatusReporter::set_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(path);
}

std::string StatusReporter::path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return path_;
}

void StatusReporter::set_every(std::uint64_t every) {
  std::lock_guard<std::mutex> lock(mutex_);
  every_ = every;
}

std::uint64_t StatusReporter::every() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return every_;
}

int StatusReporter::add_provider(std::string key,
                                 std::function<void(JsonValue&)> fill) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = next_id_++;
  providers_.push_back(Provider{id, std::move(key), std::move(fill)});
  return id;
}

void StatusReporter::remove_provider(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < providers_.size(); ++i) {
    if (providers_[i].id == id) {
      providers_.erase(providers_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void StatusReporter::arm_signal() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_sigusr1;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &sa, nullptr);
}

void StatusReporter::configure_from_env() {
  const char* out = std::getenv("TME_STATUS_OUT");
  if (out != nullptr && *out != '\0') {
    set_path(out);
    arm_signal();
  }
  set_every(env_u64("TME_STATUS_EVERY", every()));
}

bool StatusReporter::signal_pending() { return g_status_signal != 0; }

bool StatusReporter::poll(std::uint64_t step) {
  bool due = false;
  if (g_status_signal != 0) {
    g_status_signal = 0;
    due = true;
  }
  const std::uint64_t every = this->every();
  if (every != 0 && step % every == 0) due = true;
  if (!due) return false;
  return write_now(step);
}

bool StatusReporter::write_now(std::uint64_t step) {
  std::string path;
  std::vector<Provider> providers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path = path_;
    providers = providers_;
  }
  if (path.empty()) return false;

  JsonValue root = JsonValue::make_object();
  auto& obj = root.as_object();
  obj["schema"] = JsonValue::make_string("tme-status-v1");
  obj["step"] = JsonValue::make_number(static_cast<double>(step));
  obj["pid"] = JsonValue::make_number(static_cast<double>(::getpid()));
  obj["written_unix_ms"] = JsonValue::make_number(static_cast<double>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count()));

  // Global-registry section: counters + gauges verbatim, histograms as
  // count/percentile summaries (the full bins live in BENCH exports).
  const MetricsSnapshot snap = Registry::global().snapshot();
  JsonValue metrics = JsonValue::make_object();
  auto& mo = metrics.as_object();
  JsonValue counters = JsonValue::make_object();
  for (const auto& [name, value] : snap.counters)
    counters.as_object()[name] =
        JsonValue::make_number(static_cast<double>(value));
  mo["counters"] = std::move(counters);
  JsonValue gauges = JsonValue::make_object();
  for (const auto& [name, value] : snap.gauges)
    gauges.as_object()[name] = JsonValue::make_number(value);
  mo["gauges"] = std::move(gauges);
  JsonValue hists = JsonValue::make_object();
  for (const auto& [name, stat] : snap.histograms) {
    JsonValue h = JsonValue::make_object();
    auto& ho = h.as_object();
    ho["count"] = JsonValue::make_number(static_cast<double>(stat.count));
    ho["p50"] = JsonValue::make_number(stat.p50);
    ho["p95"] = JsonValue::make_number(stat.p95);
    ho["p99"] = JsonValue::make_number(stat.p99);
    hists.as_object()[name] = std::move(h);
  }
  mo["histograms"] = std::move(hists);
  obj["metrics"] = std::move(metrics);

  for (const Provider& p : providers) {
    JsonValue section = JsonValue::make_object();
    p.fill(section);
    obj[p.key] = std::move(section);
  }

  const std::string json = root.dump() + "\n";
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (written != json.size() || std::fclose(f) != 0) {
    if (written != json.size()) std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void StatusReporter::reset_for_testing() {
  std::lock_guard<std::mutex> lock(mutex_);
  path_.clear();
  every_ = 0;
  providers_.clear();
  g_status_signal = 0;
}

}  // namespace tme::obs
