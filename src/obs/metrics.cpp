#include "obs/metrics.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace tme::obs {

namespace {

// Per-thread stack of open phase names; joined with '/' to form timer paths.
thread_local std::vector<std::string> g_phase_stack;

std::string join_stack() {
  std::string out;
  for (const std::string& s : g_phase_stack) {
    if (!out.empty()) out += '/';
    out += s;
  }
  return out;
}

}  // namespace

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  return counters_[name];
}

void Registry::gauge_set(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  gauges_[name] = value;
}

void Registry::timer_add(const std::string& path, double seconds) {
  std::lock_guard lock(mutex_);
  TimerStat& t = timers_[path];
  t.seconds += seconds;
  t.count += 1;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c.value());
  out.gauges.assign(gauges_.begin(), gauges_.end());
  out.timers.assign(timers_.begin(), timers_.end());
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  gauges_.clear();
  timers_.clear();
}

ScopedPhase::ScopedPhase(const char* name) : start_(std::chrono::steady_clock::now()) {
  g_phase_stack.emplace_back(name);
  path_ = join_stack();
}

ScopedPhase::~ScopedPhase() {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Registry::global().timer_add(path_, elapsed);
  g_phase_stack.pop_back();
}

std::string ScopedPhase::current_path() { return join_stack(); }

std::string to_json(const MetricsSnapshot& snapshot) {
  JsonValue root = JsonValue::make_object();
  JsonValue counters = JsonValue::make_object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.as_object()[name] =
        JsonValue::make_number(static_cast<double>(value));
  }
  JsonValue gauges = JsonValue::make_object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.as_object()[name] = JsonValue::make_number(value);
  }
  JsonValue timers = JsonValue::make_object();
  for (const auto& [path, stat] : snapshot.timers) {
    JsonValue entry = JsonValue::make_object();
    entry.as_object()["seconds"] = JsonValue::make_number(stat.seconds);
    entry.as_object()["count"] =
        JsonValue::make_number(static_cast<double>(stat.count));
    timers.as_object()[path] = std::move(entry);
  }
  root.as_object()["counters"] = std::move(counters);
  root.as_object()["gauges"] = std::move(gauges);
  root.as_object()["timers"] = std::move(timers);
  return root.dump();
}

MetricsSnapshot metrics_from_json(const std::string& json) {
  const JsonValue root = json_parse(json);
  MetricsSnapshot out;
  for (const auto& [name, value] : root.at("counters").as_object()) {
    out.counters.emplace_back(name,
                              static_cast<std::uint64_t>(value.as_number()));
  }
  for (const auto& [name, value] : root.at("gauges").as_object()) {
    out.gauges.emplace_back(name, value.as_number());
  }
  for (const auto& [path, entry] : root.at("timers").as_object()) {
    TimerStat stat;
    stat.seconds = entry.at("seconds").as_number();
    stat.count = static_cast<std::uint64_t>(entry.at("count").as_number());
    out.timers.emplace_back(path, stat);
  }
  return out;
}

}  // namespace tme::obs
