#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace tme::obs {

namespace {

// Per-thread stack of open phase names; joined with '/' to form timer paths.
thread_local std::vector<std::string> g_phase_stack;

std::string join_stack() {
  std::string out;
  for (const std::string& s : g_phase_stack) {
    if (!out.empty()) out += '/';
    out += s;
  }
  return out;
}

}  // namespace

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  return counters_[name];
}

void Registry::gauge_set(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  gauges_[name] = value;
}

void Registry::timer_add(const std::string& path, double seconds) {
  Histogram* h = nullptr;
  {
    std::lock_guard lock(mutex_);
    TimerStat& t = timers_[path];
    t.seconds += seconds;
    t.count += 1;
    h = &histograms_[path];
  }
  h->record(seconds);
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  return histograms_[name];
}

void Histogram::record(double value) {
  bins_[static_cast<std::size_t>(bin_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max via CAS; first sample initialises both (count_ orders this:
  // racing first samples both CAS against the other's value, so the final
  // min/max still cover every recorded sample).
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

int Histogram::bin_index(double value) {
  if (!(value >= kMinValue)) return 0;  // underflow (also NaN, negatives)
  const double decades = std::log10(value / kMinValue);
  const int idx = 1 + static_cast<int>(decades * kBinsPerDecade);
  if (idx >= kBinCount - 1) return kBinCount - 1;  // overflow
  return idx;
}

double Histogram::bin_lower(int index) {
  return kMinValue *
         std::pow(10.0, static_cast<double>(index - 1) / kBinsPerDecade);
}

double Histogram::bin_mid(int index) {
  return kMinValue *
         std::pow(10.0, (static_cast<double>(index) - 0.5) / kBinsPerDecade);
}

void Histogram::reset() {
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

HistogramStat HistogramStat::from(const Histogram& h) {
  HistogramStat out;
  out.count = h.count_.load(std::memory_order_relaxed);
  out.sum = h.sum_.load(std::memory_order_relaxed);
  out.min = h.min_.load(std::memory_order_relaxed);
  out.max = h.max_.load(std::memory_order_relaxed);
  for (int i = 0; i < Histogram::kBinCount; ++i) {
    const std::uint64_t n = h.bin(i);
    if (n != 0) out.bins.emplace_back(i, n);
  }
  out.p50 = out.quantile(0.50);
  out.p95 = out.quantile(0.95);
  out.p99 = out.quantile(0.99);
  return out;
}

double HistogramStat::quantile(double q) const {
  if (count == 0) return 0.0;
  // Rank of the q-th sample (1-based, nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (const auto& [index, n] : bins) {
    cum += n;
    if (cum >= rank) {
      double v;
      if (index == 0) {
        v = min;  // underflow bin: all we know is "below the grid"
      } else if (index == Histogram::kBinCount - 1) {
        v = max;  // overflow bin
      } else {
        v = Histogram::bin_mid(index);
      }
      return std::clamp(v, min, max);
    }
  }
  return max;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c.value());
  out.gauges.assign(gauges_.begin(), gauges_.end());
  out.timers.assign(timers_.begin(), timers_.end());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, HistogramStat::from(h));
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, h] : histograms_) h.reset();
  gauges_.clear();
  timers_.clear();
}

ScopedPhase::ScopedPhase(const char* name) : start_(std::chrono::steady_clock::now()) {
  g_phase_stack.emplace_back(name);
  path_ = join_stack();
}

ScopedPhase::~ScopedPhase() {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Registry::global().timer_add(path_, elapsed);
  // Bridge into the tracer: every TME_PHASE site doubles as a trace span on
  // the calling thread's track, named by the full slash-joined path.
  if (tracing_active()) {
    Tracer& tracer = Tracer::global();
    const double end_us = tracer.now_us();
    tracer.complete(tracer.thread_track(), path_, end_us - elapsed * 1e6,
                    elapsed * 1e6);
  }
  g_phase_stack.pop_back();
}

std::string ScopedPhase::current_path() { return join_stack(); }

std::string to_json(const MetricsSnapshot& snapshot) {
  JsonValue root = JsonValue::make_object();
  JsonValue counters = JsonValue::make_object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.as_object()[name] =
        JsonValue::make_number(static_cast<double>(value));
  }
  JsonValue gauges = JsonValue::make_object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.as_object()[name] = JsonValue::make_number(value);
  }
  JsonValue timers = JsonValue::make_object();
  for (const auto& [path, stat] : snapshot.timers) {
    JsonValue entry = JsonValue::make_object();
    entry.as_object()["seconds"] = JsonValue::make_number(stat.seconds);
    entry.as_object()["count"] =
        JsonValue::make_number(static_cast<double>(stat.count));
    timers.as_object()[path] = std::move(entry);
  }
  JsonValue histograms = JsonValue::make_object();
  for (const auto& [path, stat] : snapshot.histograms) {
    JsonValue entry = JsonValue::make_object();
    auto& obj = entry.as_object();
    obj["count"] = JsonValue::make_number(static_cast<double>(stat.count));
    obj["sum"] = JsonValue::make_number(stat.sum);
    obj["min"] = JsonValue::make_number(stat.min);
    obj["max"] = JsonValue::make_number(stat.max);
    obj["p50"] = JsonValue::make_number(stat.p50);
    obj["p95"] = JsonValue::make_number(stat.p95);
    obj["p99"] = JsonValue::make_number(stat.p99);
    JsonValue bins = JsonValue::make_object();
    for (const auto& [index, n] : stat.bins) {
      bins.as_object()[std::to_string(index)] =
          JsonValue::make_number(static_cast<double>(n));
    }
    obj["bins"] = std::move(bins);
    histograms.as_object()[path] = std::move(entry);
  }
  root.as_object()["counters"] = std::move(counters);
  root.as_object()["gauges"] = std::move(gauges);
  root.as_object()["timers"] = std::move(timers);
  root.as_object()["histograms"] = std::move(histograms);
  return root.dump();
}

MetricsSnapshot metrics_from_json(const std::string& json) {
  const JsonValue root = json_parse(json);
  MetricsSnapshot out;
  for (const auto& [name, value] : root.at("counters").as_object()) {
    out.counters.emplace_back(name,
                              static_cast<std::uint64_t>(value.as_number()));
  }
  for (const auto& [name, value] : root.at("gauges").as_object()) {
    out.gauges.emplace_back(name, value.as_number());
  }
  for (const auto& [path, entry] : root.at("timers").as_object()) {
    TimerStat stat;
    stat.seconds = entry.at("seconds").as_number();
    stat.count = static_cast<std::uint64_t>(entry.at("count").as_number());
    out.timers.emplace_back(path, stat);
  }
  // Optional: BENCH files written before histograms existed lack this key.
  if (root.contains("histograms")) {
    for (const auto& [path, entry] : root.at("histograms").as_object()) {
      HistogramStat stat;
      stat.count = static_cast<std::uint64_t>(entry.at("count").as_number());
      stat.sum = entry.at("sum").as_number();
      stat.min = entry.at("min").as_number();
      stat.max = entry.at("max").as_number();
      stat.p50 = entry.at("p50").as_number();
      stat.p95 = entry.at("p95").as_number();
      stat.p99 = entry.at("p99").as_number();
      for (const auto& [index, n] : entry.at("bins").as_object()) {
        stat.bins.emplace_back(std::stoi(index),
                               static_cast<std::uint64_t>(n.as_number()));
      }
      std::sort(stat.bins.begin(), stat.bins.end());
      out.histograms.emplace_back(path, stat);
    }
  }
  return out;
}

}  // namespace tme::obs
