#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace tme::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[32];
  // Same fixed microsecond precision as Tracer::to_json, so a merged file
  // and a single-process file format timestamps identically.
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

struct OutEvent {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  TraceEvent event;
};

struct OutTrack {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;
};

}  // namespace

FleetTelemetry::Incarnation& FleetTelemetry::incarnation(std::uint32_t rank,
                                                         std::int64_t pid) {
  for (Incarnation& inc : incarnations_) {
    if (inc.rank == rank && inc.pid == pid) return inc;
  }
  Incarnation inc;
  inc.rank = rank;
  inc.pid = pid;
  incarnations_.push_back(std::move(inc));
  return incarnations_.back();
}

void FleetTelemetry::set_offset(std::uint32_t rank, std::int64_t pid,
                                double offset_us, double rtt_us) {
  Incarnation& inc = incarnation(rank, pid);
  inc.offset_us = offset_us;
  inc.rtt_us = rtt_us;
  inc.has_offset = true;
}

void FleetTelemetry::ingest(WorkerTelemetry telemetry) {
  Incarnation& inc = incarnation(telemetry.rank, telemetry.pid);
  // Cumulative counters: the latest flush carries the largest values.
  inc.emitted = std::max(inc.emitted, telemetry.chunk.emitted);
  inc.dropped = std::max(inc.dropped, telemetry.chunk.dropped);
  if (!telemetry.metrics_json.empty() && telemetry.seq >= inc.last_seq) {
    inc.metrics_json = std::move(telemetry.metrics_json);
  }
  inc.last_seq = std::max(inc.last_seq, telemetry.seq);
  events_merged_ += telemetry.chunk.events.size();
  ++chunk_count_;
  inc.chunks.push_back(std::move(telemetry.chunk));
}

std::uint64_t FleetTelemetry::emitted_total() const {
  std::uint64_t total = 0;
  for (const Incarnation& inc : incarnations_) total += inc.emitted;
  return total;
}

std::uint64_t FleetTelemetry::dropped_total() const {
  std::uint64_t total = 0;
  for (const Incarnation& inc : incarnations_) total += inc.dropped;
  return total;
}

std::map<std::uint32_t, std::string> FleetTelemetry::latest_metrics() const {
  // Later incarnations of a rank overwrite earlier ones (arrival order).
  std::map<std::uint32_t, std::string> latest;
  for (const Incarnation& inc : incarnations_) {
    if (!inc.metrics_json.empty()) latest[inc.rank] = inc.metrics_json;
  }
  return latest;
}

void FleetTelemetry::publish_worker_metrics(Registry& registry) const {
  for (const auto& [rank, json] : latest_metrics()) {
    MetricsSnapshot snap;
    try {
      snap = metrics_from_json(json);
    } catch (const std::exception&) {
      continue;  // malformed shipment: skip, never poison the registry
    }
    const std::string prefix = "fleet/w" + std::to_string(rank) + "/worker/";
    for (const auto& [name, value] : snap.counters)
      registry.gauge_set(prefix + name, static_cast<double>(value));
    for (const auto& [name, value] : snap.gauges)
      registry.gauge_set(prefix + name, value);
    for (const auto& [name, stat] : snap.timers)
      registry.gauge_set(prefix + name + "_s", stat.seconds);
  }
}

std::string FleetTelemetry::to_json(const Tracer& coordinator) const {
  const TraceChunk coord = coordinator.snapshot_chunk();

  // Rebuild the coordinator's pid/tid numbering exactly as Tracer::to_json
  // does: pids by first process appearance in track-registration order,
  // tids globally unique in registration order.
  std::vector<std::string> processes;        // index + 1 == pid
  std::vector<OutTrack> out_tracks;
  std::vector<OutEvent> out_events;
  out_events.reserve(coord.events.size() + events_merged_);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> coord_row;  // per track
  coord_row.reserve(coord.tracks.size());
  for (const TraceChunkTrack& t : coord.tracks) {
    std::uint32_t pid = 0;
    for (std::size_t i = 0; i < processes.size(); ++i) {
      if (processes[i] == t.process) pid = static_cast<std::uint32_t>(i + 1);
    }
    if (pid == 0) {
      processes.push_back(t.process);
      pid = static_cast<std::uint32_t>(processes.size());
    }
    const std::uint32_t tid = static_cast<std::uint32_t>(out_tracks.size() + 1);
    coord_row.emplace_back(pid, tid);
    out_tracks.push_back(OutTrack{pid, tid, t.name});
  }
  for (const TraceEvent& e : coord.events) {
    const auto [pid, tid] = coord_row[e.track];
    out_events.push_back(OutEvent{pid, tid, e});
  }

  // One merged process per worker incarnation, pids from 1001 up in arrival
  // order (stable for a fixed replay, far from the coordinator's 1..P).
  struct WorkerProcess {
    std::uint32_t pid = 0;
    std::string name;
  };
  std::vector<WorkerProcess> worker_processes;
  std::uint32_t next_tid = static_cast<std::uint32_t>(out_tracks.size() + 1);
  for (std::size_t i = 0; i < incarnations_.size(); ++i) {
    const Incarnation& inc = incarnations_[i];
    const std::uint32_t pid = static_cast<std::uint32_t>(1001 + i);
    worker_processes.push_back(
        WorkerProcess{pid, "worker " + std::to_string(inc.rank) + " (pid " +
                               std::to_string(inc.pid) + ")"});
    const double shift = inc.has_offset ? -inc.offset_us : 0.0;
    // Worker-side tracks keep their origin process as a name prefix
    // ("software/thread 0", "tasks/rank 1") under the incarnation's pid.
    std::map<std::string, std::uint32_t> tid_of;
    for (const TraceChunk& chunk : inc.chunks) {
      std::vector<std::uint32_t> row(chunk.tracks.size(), 0);
      for (std::size_t t = 0; t < chunk.tracks.size(); ++t) {
        const std::string key =
            chunk.tracks[t].process + "/" + chunk.tracks[t].name;
        auto it = tid_of.find(key);
        if (it == tid_of.end()) {
          it = tid_of.emplace(key, next_tid++).first;
          out_tracks.push_back(OutTrack{pid, it->second, key});
        }
        row[t] = it->second;
      }
      for (const TraceEvent& e : chunk.events) {
        if (e.track >= row.size()) continue;  // malformed shipment: drop event
        OutEvent oe{pid, row[e.track], e};
        oe.event.ts_us += shift;
        out_events.push_back(std::move(oe));
      }
    }
  }

  std::stable_sort(out_events.begin(), out_events.end(),
                   [](const OutEvent& a, const OutEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.event.ts_us < b.event.ts_us;
                   });

  std::string out;
  out.reserve(out_events.size() * 96 + 4096);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (std::size_t p = 0; p < processes.size(); ++p) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(p + 1);
    out += ",\"tid\":0,\"args\":{\"name\":" + json_quote(processes[p]) + "}}";
  }
  for (const WorkerProcess& wp : worker_processes) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(wp.pid);
    out += ",\"tid\":0,\"args\":{\"name\":" + json_quote(wp.name) + "}}";
  }
  for (const OutTrack& t : out_tracks) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(t.pid);
    out += ",\"tid\":";
    out += std::to_string(t.tid);
    out += ",\"args\":{\"name\":" + json_quote(t.name) + "}}";
  }
  for (const OutEvent& oe : out_events) {
    const TraceEvent& e = oe.event;
    sep();
    out += "{\"ph\":\"";
    switch (e.type) {
      case TraceEventType::kComplete: out += 'X'; break;
      case TraceEventType::kInstant: out += 'i'; break;
      case TraceEventType::kCounter: out += 'C'; break;
      case TraceEventType::kFlowStart: out += 's'; break;
      case TraceEventType::kFlowFinish: out += 'f'; break;
    }
    out += "\",\"name\":" + json_quote(e.name);
    out += ",\"pid\":" + std::to_string(oe.pid);
    out += ",\"tid\":" + std::to_string(oe.tid);
    out += ",\"ts\":";
    append_number(out, e.ts_us);
    if (e.type == TraceEventType::kComplete) {
      out += ",\"dur\":";
      append_number(out, e.dur_us);
    }
    if (e.type == TraceEventType::kInstant) out += ",\"s\":\"t\"";
    if (e.type == TraceEventType::kFlowStart ||
        e.type == TraceEventType::kFlowFinish) {
      out += ",\"cat\":\"flow\",\"id\":" + std::to_string(e.flow);
      if (e.type == TraceEventType::kFlowFinish) out += ",\"bp\":\"e\"";
    }
    if (e.type == TraceEventType::kCounter) {
      out += ",\"args\":{\"value\":";
      append_number(out, e.value);
      out += "}";
    } else if (!e.detail.empty()) {
      out += ",\"args\":{\"detail\":" + json_quote(e.detail) + "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ns\",\"otherData\":";
  JsonValue other = manifest_json();
  auto& obj = other.as_object();
  obj["trace_events"] =
      JsonValue::make_number(static_cast<double>(out_events.size()));
  obj["trace_dropped"] = JsonValue::make_number(
      static_cast<double>(coord.dropped + dropped_total()));
  obj["telemetry_chunks"] =
      JsonValue::make_number(static_cast<double>(chunk_count_));
  obj["telemetry_events_merged"] =
      JsonValue::make_number(static_cast<double>(events_merged_));
  obj["telemetry_emitted"] =
      JsonValue::make_number(static_cast<double>(emitted_total()));
  obj["telemetry_dropped"] =
      JsonValue::make_number(static_cast<double>(dropped_total()));
  JsonValue offsets = JsonValue::make_array();
  for (const Incarnation& inc : incarnations_) {
    JsonValue row = JsonValue::make_object();
    auto& ro = row.as_object();
    ro["rank"] = JsonValue::make_number(static_cast<double>(inc.rank));
    ro["pid"] = JsonValue::make_number(static_cast<double>(inc.pid));
    ro["offset_us"] = JsonValue::make_number(inc.offset_us);
    ro["rtt_us"] = JsonValue::make_number(inc.rtt_us);
    ro["has_offset"] = JsonValue::make_bool(inc.has_offset);
    offsets.as_array().push_back(std::move(row));
  }
  obj["clock_offsets"] = std::move(offsets);
  out += other.dump();
  out += "}\n";
  return out;
}

bool FleetTelemetry::write(const std::string& path,
                           const Tracer& coordinator) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = to_json(coordinator);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (written != json.size()) std::fclose(f);
  return ok;
}

void FleetTelemetry::clear() {
  incarnations_.clear();
  chunk_count_ = 0;
  events_merged_ = 0;
}

}  // namespace tme::obs
