// Per-run manifest: a JSON block stamped into every BENCH_*.json and trace
// export so artifacts are self-describing — which commit, which build type,
// which TME_* environment knobs, which pool size and fault seed produced
// the numbers.  Build-time facts (git describe, build type, compile-time
// toggles) come from compile definitions; runtime facts are contributed by
// the subsystems that own them via manifest_set (global_pool reports
// pool_threads, fault_config_from_env reports fault_seed, benches report
// their CLI arguments).
#pragma once

#include <string>

#include "obs/json.hpp"

namespace tme::obs {

// Records a runtime fact under `key`.  Later calls with the same key
// overwrite; thread-safe.  The JsonValue overload stores a structured fact
// (e.g. a LongRangeSolver::describe() manifest) verbatim.
void manifest_set(const std::string& key, const std::string& value);
void manifest_set(const std::string& key, double value);
void manifest_set(const std::string& key, JsonValue value);

// Assembles the manifest: build facts, every TME_* environment variable in
// effect, and all manifest_set entries (under "runtime").
JsonValue manifest_json();

}  // namespace tme::obs
