// Minimal JSON reader/writer support for the metrics export.
//
// Deliberately small: objects, arrays, strings, numbers, booleans, null —
// enough to round-trip metrics::to_json output and to let tools ingest the
// BENCH_*.json per-stage breakdowns without an external dependency.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tme::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  // Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  std::vector<JsonValue>& as_array();
  const std::map<std::string, JsonValue>& as_object() const;
  std::map<std::string, JsonValue>& as_object();

  // Object member lookup; throws std::runtime_error if absent.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  // Compact serialisation (keys in map order; numbers round-trip doubles).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses a complete JSON document (throws std::runtime_error on syntax
// errors or trailing garbage).
JsonValue json_parse(const std::string& text);

// Escapes a string for embedding in a JSON document (adds the quotes).
std::string json_quote(const std::string& s);

}  // namespace tme::obs
