// Live run introspection: an on-demand JSON status snapshot.
//
// Long soak and chaos runs are opaque without a debugger; this reporter
// makes them inspectable from the outside.  Two triggers write a snapshot:
//  - SIGUSR1 (arm_signal() installs the handler; the handler only sets a
//    flag — the file is written from poll() on the main loop, never from
//    signal context);
//  - every N steps when set_every(N) / TME_STATUS_EVERY is configured.
//
// The snapshot is written atomically: the JSON lands in "<path>.tmp.<pid>"
// and is renamed over <path>, so a reader never observes a torn file.  Its
// schema ("tme-status-v1") is a flat object: step, pid, wall-clock stamp,
// a "metrics" section (counters, gauges, histogram percentiles from the
// global registry), plus one section per registered provider — the fleet
// contributes per-worker health/offset/outstanding, the chaos runner its
// event and oracle counters.
//
// obs sits below util in the link order, so file IO uses std::FILE +
// std::rename directly and the two env knobs are parsed locally.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace tme::obs {

class StatusReporter {
 public:
  static StatusReporter& global();

  void set_path(std::string path);
  std::string path() const;
  // 0 disables step-periodic writes (signal-only).
  void set_every(std::uint64_t every);
  std::uint64_t every() const;

  // Registers a section writer: on each snapshot, `fill` receives a fresh
  // JSON object that becomes the top-level member `key`.  Returns a handle
  // for remove_provider (RAII at the call sites: fleets and runners remove
  // themselves on destruction).  Providers run on the polling thread.
  int add_provider(std::string key, std::function<void(JsonValue&)> fill);
  void remove_provider(int id);

  // Installs the SIGUSR1 handler (idempotent).  The handler sets a
  // sig_atomic_t flag; nothing is written until the next poll().
  void arm_signal();

  // Reads TME_STATUS_OUT (path) and TME_STATUS_EVERY (step period) and
  // arms the signal handler when a path is configured.
  void configure_from_env();

  // Main-loop hook: writes a snapshot when SIGUSR1 arrived since the last
  // poll or when `step` hits the configured period.  Returns true when a
  // snapshot was written.  No-op (false) without a configured path.
  bool poll(std::uint64_t step);

  // Unconditional snapshot write (still needs a path).  Returns false on
  // IO failure.
  bool write_now(std::uint64_t step);

  // True when SIGUSR1 arrived and has not yet been consumed by poll().
  static bool signal_pending();

  void reset_for_testing();

 private:
  StatusReporter() = default;

  struct Provider {
    int id = 0;
    std::string key;
    std::function<void(JsonValue&)> fill;
  };

  mutable std::mutex mutex_;
  std::string path_;
  std::uint64_t every_ = 0;
  int next_id_ = 1;
  std::vector<Provider> providers_;
};

}  // namespace tme::obs
