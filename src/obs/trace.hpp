// Low-overhead span tracing with Chrome trace-event / Perfetto JSON export.
//
// The metrics registry (obs/metrics.hpp) answers "how much time did each
// stage take in aggregate"; this module answers "when did every span run,
// on which thread or simulated hardware unit".  Three event sources feed
// one process-wide Tracer:
//  - software spans: every TME_PHASE site (bridged from ScopedPhase) plus
//    explicit TME_TRACE_SPAN scopes, stamped with wall-clock monotonic
//    timestamps on the emitting thread's track;
//  - simulated-hardware spans: schedule tasks, torus-node activity and
//    retry/backoff episodes replayed in *simulated* time onto explicitly
//    registered tracks (hw/track_meta.hpp feeds these from the event
//    simulator and the machine model);
//  - counter samples: per-link traffic/utilization tracks (hw/link_stats).
//
// Recording is wait-free on the hot path: each thread appends into its own
// pre-reserved ring buffer (registered once with the Tracer), and a full
// buffer counts drops instead of blocking or reallocating.  Tracing costs
// one relaxed atomic load when runtime-disabled, and compiles out entirely
// (macros expand to nothing, kTraceEnabled = false) when the build is
// configured with -DTME_TRACE=OFF — mirroring TME_METRICS.  At runtime the
// tracer starts disabled unless the TME_TRACE environment variable is set
// to 1/on/true; benches enable it for --trace-out runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tme::obs {

#if defined(TME_TRACE_ENABLED)
inline constexpr bool kTraceEnabled = true;
#else
inline constexpr bool kTraceEnabled = false;
#endif

// Identifies a (process, thread) row in the exported trace.  Obtain from
// Tracer::track(); the id stays valid until reset_for_testing().
using TrackId = std::uint32_t;

enum class TraceEventType : std::uint8_t {
  kComplete,    // "X": a span with ts + dur
  kInstant,     // "i": a point event
  kCounter,     // "C": a sampled counter value
  kFlowStart,   // "s": flow arrow tail, bound to the enclosing slice
  kFlowFinish,  // "f": flow arrow head (binding point "e")
};

struct TraceEvent {
  TraceEventType type = TraceEventType::kComplete;
  TrackId track = 0;
  double ts_us = 0.0;   // microseconds: wall (since tracer epoch) or sim time
  double dur_us = 0.0;  // kComplete only
  double value = 0.0;   // kCounter only
  std::uint64_t flow = 0;  // kFlowStart/kFlowFinish only: the flow id
  std::string name;
  std::string detail;   // optional; exported as args.detail when non-empty
};

// A self-contained batch of events drained from (or snapshotted out of) a
// Tracer, with its own track table so it can cross a process boundary: the
// worker serialises a chunk over the wire and the coordinator re-binds the
// tracks into its merged timeline (obs/telemetry.hpp).  `emitted` and
// `dropped` are *cumulative* for the producing tracer, so the receiver can
// verify conservation (emitted == merged + dropped) across any number of
// flush boundaries without per-chunk bookkeeping.
struct TraceChunkTrack {
  std::string process;
  std::string name;
};

struct TraceChunk {
  std::vector<TraceChunkTrack> tracks;  // TraceEvent::track indexes this table
  std::vector<TraceEvent> events;
  std::uint64_t emitted = 0;  // cumulative recording attempts (kept + dropped)
  std::uint64_t dropped = 0;  // cumulative events dropped (rings full)
};

class Tracer {
 public:
  // The process-wide tracer used by all instrumentation macros and feeders.
  static Tracer& global();

  // Runtime switch.  The initial value comes from the TME_TRACE environment
  // variable (1/on/true enables); set_enabled overrides it.  Spans opened
  // while disabled are not recorded even if tracing is enabled before they
  // close (no half-captured spans).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  // Registers (or looks up) a track.  Tracks are grouped by `process` in the
  // trace viewer; `name` labels the row.  Thread-safe; ids are assigned in
  // first-registration order, so a fixed call order gives a fixed layout.
  TrackId track(const std::string& process, const std::string& name);

  // The calling thread's own wall-clock track ("software" process), created
  // on first use as "thread <n>" in registration order.
  TrackId thread_track();

  // Microseconds of monotonic wall clock since the tracer epoch.
  double now_us() const;

  // --- recording (no-ops when runtime-disabled) ---------------------------
  // Wall-clock span/instant on the calling thread's software track.
  void complete(TrackId track, std::string name, double ts_us, double dur_us,
                std::string detail = {});
  void instant(TrackId track, std::string name, double ts_us,
               std::string detail = {});
  void instant_now(std::string name, std::string detail = {});
  // Counter sample (ph "C"): one series named `name` on `track`.
  void counter(TrackId track, std::string name, double ts_us, double value);
  // Flow arrows (ph "s"/"f"): `flow_start` marks the tail inside the slice
  // enclosing ts_us on `track`, `flow_finish` the head.  The coordinator
  // stamps a start on its dispatch span and the worker a finish on the task
  // span, so the merged timeline draws dispatch -> execution arrows.
  void flow_start(TrackId track, std::string name, double ts_us,
                  std::uint64_t flow_id);
  void flow_finish(TrackId track, std::string name, double ts_us,
                   std::uint64_t flow_id);

  // --- export -------------------------------------------------------------
  // Events recorded / events dropped because a thread's ring was full.
  std::size_t event_count() const;
  std::size_t dropped_count() const;

  // --- chunked export (fleet telemetry) -----------------------------------
  // Moves every not-yet-drained event out of the rings into a chunk.  The
  // rings stay append-only (concurrent recorders are never disturbed); a
  // per-buffer consumed cursor advances under the lock.  Chunk counters are
  // cumulative, so the last chunk of a run carries the final totals.
  TraceChunk drain_chunk();
  // Copies everything recorded so far without consuming (coordinator-side
  // merge of its own events while the process keeps tracing).
  TraceChunk snapshot_chunk() const;
  // Events recorded but not yet drained — flush-threshold probe.
  std::size_t undrained_count() const;

  // Serialises everything as a Chrome trace-event JSON object
  // ({"traceEvents": [...], "displayTimeUnit": "ns", "otherData": manifest}).
  // Events are sorted by (pid, tid, ts) so per-track timestamps are monotone;
  // process/thread metadata records carry the registered names.  Safe to call
  // while other threads record (they keep appending; the export sees a
  // consistent prefix of each buffer).
  std::string to_json() const;

  // to_json() to a file; returns false (and logs nothing) on I/O failure.
  bool write(const std::string& path) const;

  // Per-thread ring capacity for buffers created *after* this call (existing
  // buffers are retired by reset_for_testing).  Default 65536 events,
  // overridable at startup with TME_TRACE_BUFFER.
  void set_buffer_capacity(std::size_t events);
  std::size_t buffer_capacity() const { return capacity_.load(std::memory_order_relaxed); }

  // Drops all recorded events, tracks and thread buffers and re-arms the
  // epoch.  Outstanding TrackIds become invalid.  Tests only.
  void reset_for_testing();

 private:
  friend class TraceSpan;

  struct Buffer {
    std::vector<TraceEvent> events;       // reserved to capacity, append-only
    std::atomic<std::size_t> size{0};     // published length (release on write)
    std::atomic<std::uint64_t> dropped{0};
    std::size_t capacity = 0;
    std::size_t consumed = 0;  // drained prefix; guarded by Tracer::mutex_
  };

  struct TrackInfo {
    std::string process;
    std::string name;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
  };

  Tracer();
  Buffer& local_buffer();
  void append(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{65536};
  std::atomic<std::uint64_t> generation_{0};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  // guards buffers_, tracks_, processes_
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::vector<TrackInfo> tracks_;
  std::vector<std::string> processes_;  // index + 1 == pid
  std::uint32_t thread_count_ = 0;
};

// True when tracing is compiled in *and* runtime-enabled — the one check
// every feeder performs before doing any work.
inline bool tracing_active() {
  if constexpr (!kTraceEnabled) {
    return false;
  } else {
    return Tracer::global().enabled();
  }
}

// RAII wall-clock span on the calling thread's track.  `name` must outlive
// the scope (string literals at the instrumentation sites).  If tracing is
// disabled at construction the destructor does nothing.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (tracing_active()) {
      name_ = name;
      start_us_ = Tracer::global().now_us();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr && tracing_active()) {
      Tracer& t = Tracer::global();
      const double now = t.now_us();
      t.complete(t.thread_track(), name_, start_us_, now - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace tme::obs

#if defined(TME_TRACE_ENABLED)

#define TME_TRACE_SPAN(name) \
  ::tme::obs::TraceSpan TME_OBS_TRACE_CONCAT(tme_trace_span_, __LINE__)(name)

#define TME_TRACE_INSTANT(name)                                   \
  do {                                                            \
    if (::tme::obs::tracing_active())                             \
      ::tme::obs::Tracer::global().instant_now(name);             \
  } while (0)

// `detail` may be any std::string-convertible expression; it is evaluated
// only when tracing is active.
#define TME_TRACE_INSTANT_D(name, detail)                         \
  do {                                                            \
    if (::tme::obs::tracing_active())                             \
      ::tme::obs::Tracer::global().instant_now(name, (detail));   \
  } while (0)

#define TME_OBS_TRACE_CONCAT_INNER(a, b) a##b
#define TME_OBS_TRACE_CONCAT(a, b) TME_OBS_TRACE_CONCAT_INNER(a, b)

#else  // tracing compiled out

#define TME_TRACE_SPAN(name) \
  do {                       \
  } while (0)
#define TME_TRACE_INSTANT(name) \
  do {                          \
  } while (0)
#define TME_TRACE_INSTANT_D(name, detail) \
  do {                                    \
    (void)sizeof(detail);                 \
  } while (0)

#endif
