// B-spline multilevel summation method (MSM) — the baseline the paper's
// Sec. III.C cost analysis compares the TME against (Hardy et al. 2016).
//
// Structure is identical to the TME (charge assignment, restriction down a
// grid hierarchy, per-level grid-kernel convolution, prolongation, back
// interpolation) except for the one difference that motivates the TME: the
// level kernels are *exact* shell kernels, not sums of M separable
// Gaussians, so the range-limited convolution is a dense 3D stencil of
// (2 g_c + 1)^3 taps instead of 3 M passes of (2 g_c + 1) taps.
//
// Substitution note (DESIGN.md): classic MSM softens 1/r with polynomial
// splittings; this implementation keeps the paper's Ewald splitting and the
// SPME top level so that TME and MSM differ in exactly one variable — the
// convolution structure — which is what both the accuracy comparison and
// the cost model isolate.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ewald/charge_assignment.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/spme.hpp"
#include "grid/grid3d.hpp"
#include "util/vec3.hpp"

namespace tme {

struct MsmParams {
  int order = 6;       // B-spline order p (even)
  GridDims grid;       // finest grid N
  double alpha = 3.0;  // Ewald splitting parameter, nm^-1
  int levels = 1;      // L middle-range levels
  int grid_cutoff = 8; // g_c: dense kernel reach per axis
  bool subtract_self = true;
};

class Msm {
 public:
  Msm(const Box& box, const MsmParams& params);

  const MsmParams& params() const { return params_; }
  const Box& box() const { return box_; }

  // Long-range energy and forces, same contract as Tme::compute.
  CoulombResult compute(std::span<const Vec3> positions,
                        std::span<const double> charges) const;

  // Grid pipeline alone (finest charges -> finest potentials).
  Grid3d solve_potential(const Grid3d& finest_charges) const;

  // The dense (2 g_c + 1)^3 kernel cube of one level (exposed for tests and
  // the cost benches).
  const std::vector<double>& level_kernel(int level) const;

 private:
  Box box_;
  MsmParams params_;
  ChargeAssigner assigner_;
  std::vector<std::vector<double>> kernels_;  // dense cubes, level 1..L
  std::unique_ptr<Spme> top_;
};

// Builds the exact level-l kernel cube: the periodised shell g_{alpha,l}
// expanded in the level's B-spline basis (G = g * omega' per the same
// construction as the TME, but on the full 3D sample cube), truncated to
// (2 g_c + 1)^3 with periodic-class deduplication.
std::vector<double> msm_level_kernel(const Box& box, GridDims level_dims,
                                     int order, double alpha, int level,
                                     int grid_cutoff);

}  // namespace tme
