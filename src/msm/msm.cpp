#include "msm/msm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ewald/greens_function.hpp"
#include "ewald/splitting.hpp"
#include "fft/fft3d.hpp"
#include "grid/separable_conv.hpp"
#include "grid/transfer.hpp"
#include "util/constants.hpp"

namespace tme {

namespace {

GridDims dims_at_level(GridDims finest, int level) {
  GridDims d = finest;
  for (int l = 1; l < level; ++l) d = d.halved();
  return d;
}

}  // namespace

std::vector<double> msm_level_kernel(const Box& box, GridDims level_dims,
                                     int order, double alpha, int level,
                                     int grid_cutoff) {
  if (grid_cutoff < 1) throw std::invalid_argument("msm_level_kernel: bad cutoff");
  const Vec3 h{box.lengths.x / static_cast<double>(level_dims.nx),
               box.lengths.y / static_cast<double>(level_dims.ny),
               box.lengths.z / static_cast<double>(level_dims.nz)};

  // Periodised samples of the shell on the level grid.  The shell decays on
  // the scale 2^l / alpha, so a few image layers converge to double
  // precision.
  Grid3d samples(level_dims);
  // Shell tail ~ exp(-(alpha r / 2^l)^2): radius 8 * 2^l / alpha reaches
  // exp(-64), far below double precision.
  const double reach = 8.0 * std::ldexp(1.0, level) / alpha;
  const int images_x = static_cast<int>(std::ceil(reach / box.lengths.x));
  const int images_y = static_cast<int>(std::ceil(reach / box.lengths.y));
  const int images_z = static_cast<int>(std::ceil(reach / box.lengths.z));
  for (std::size_t iz = 0; iz < level_dims.nz; ++iz) {
    for (std::size_t iy = 0; iy < level_dims.ny; ++iy) {
      for (std::size_t ix = 0; ix < level_dims.nx; ++ix) {
        double sum = 0.0;
        for (int wx = -images_x; wx <= images_x; ++wx) {
          for (int wy = -images_y; wy <= images_y; ++wy) {
            for (int wz = -images_z; wz <= images_z; ++wz) {
              const double dx = (static_cast<double>(ix) +
                                 wx * static_cast<double>(level_dims.nx)) * h.x;
              const double dy = (static_cast<double>(iy) +
                                 wy * static_cast<double>(level_dims.ny)) * h.y;
              const double dz = (static_cast<double>(iz) +
                                 wz * static_cast<double>(level_dims.nz)) * h.z;
              const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
              sum += g_shell(r, alpha, level);
            }
          }
        }
        samples.at(ix, iy, iz) = sum;
      }
    }
  }

  // Sharpen with omega' per axis: divide the spectrum by bhat^2 per axis —
  // exactly the Eq. 8 construction in 3D.
  Fft3d fft(level_dims.nx, level_dims.ny, level_dims.nz);
  auto spectrum = fft.forward_real(samples.values());
  const std::vector<double> bx = euler_factors(order, level_dims.nx);
  const std::vector<double> by = euler_factors(order, level_dims.ny);
  const std::vector<double> bz = euler_factors(order, level_dims.nz);
  // euler_factors returns 1/|b|^2 inverted... it returns |b(n)|^2 as the
  // *reciprocal* of the denominator magnitude: spme uses it multiplicatively.
  // Here we need division by bhat^2 = multiplication by euler factor, per
  // axis, where bhat is the B-spline sample DFT; euler_factors is exactly
  // 1 / |sum_k M_p(k+1) e^{2 pi i n k / N}|^2 = 1 / bhat^2.
  for (std::size_t nz = 0; nz < level_dims.nz; ++nz) {
    for (std::size_t ny = 0; ny < level_dims.ny; ++ny) {
      for (std::size_t nx = 0; nx < level_dims.nx; ++nx) {
        spectrum[(nz * level_dims.ny + ny) * level_dims.nx + nx] *=
            bx[nx] * by[ny] * bz[nz];
      }
    }
  }
  Grid3d g(level_dims);
  g.values() = fft.inverse_to_real(std::move(spectrum));

  // Truncate to the dense cube with periodic-class deduplication (outward
  // from the centre, like the TME's 1D taps).
  const int c = grid_cutoff;
  const std::size_t w = static_cast<std::size_t>(2 * c + 1);
  std::vector<double> cube(w * w * w, 0.0);
  std::vector<bool> seen(level_dims.total(), false);
  // Visit offsets sorted by Chebyshev distance so the shortest image of
  // each periodic class is the one retained.
  for (int dist = 0; dist <= c; ++dist) {
    for (int mz = -c; mz <= c; ++mz) {
      for (int my = -c; my <= c; ++my) {
        for (int mx = -c; mx <= c; ++mx) {
          const int cheb = std::max({std::abs(mx), std::abs(my), std::abs(mz)});
          if (cheb != dist) continue;
          const std::size_t cls =
              (Grid3d::wrap(mz, level_dims.nz) * level_dims.ny +
               Grid3d::wrap(my, level_dims.ny)) *
                  level_dims.nx +
              Grid3d::wrap(mx, level_dims.nx);
          double tap = 0.0;
          if (!seen[cls]) {
            seen[cls] = true;
            tap = g[cls];
          }
          cube[(static_cast<std::size_t>(mz + c) * w +
                static_cast<std::size_t>(my + c)) *
                   w +
               static_cast<std::size_t>(mx + c)] = tap;
        }
      }
    }
  }
  return cube;
}

Msm::Msm(const Box& box, const MsmParams& params)
    : box_(box), params_(params), assigner_(box, params.grid, params.order) {
  if (params.order % 2 != 0 || params.order < 2) {
    throw std::invalid_argument("Msm: order must be even and >= 2");
  }
  if (params.levels < 1) throw std::invalid_argument("Msm: levels must be >= 1");
  const GridDims top = dims_at_level(params.grid, params.levels + 1);
  if (top.nx < static_cast<std::size_t>(params.order) ||
      top.ny < static_cast<std::size_t>(params.order) ||
      top.nz < static_cast<std::size_t>(params.order)) {
    throw std::invalid_argument("Msm: top-level grid too coarse for spline order");
  }

  kernels_.reserve(static_cast<std::size_t>(params.levels));
  for (int l = 1; l <= params.levels; ++l) {
    kernels_.push_back(msm_level_kernel(box, dims_at_level(params.grid, l),
                                        params.order, params.alpha, l,
                                        params.grid_cutoff));
  }

  SpmeParams top_params;
  top_params.order = params.order;
  top_params.grid = top;
  top_params.alpha = params.alpha / std::ldexp(1.0, params.levels);
  top_params.subtract_self = false;
  top_ = std::make_unique<Spme>(box, top_params);
}

const std::vector<double>& Msm::level_kernel(int level) const {
  if (level < 1 || level > params_.levels) {
    throw std::invalid_argument("Msm::level_kernel: level out of range");
  }
  return kernels_[static_cast<std::size_t>(level - 1)];
}

Grid3d Msm::solve_potential(const Grid3d& finest_charges) const {
  if (!(finest_charges.dims() == params_.grid)) {
    throw std::invalid_argument("Msm::solve_potential: grid mismatch");
  }
  const int levels = params_.levels;
  std::vector<Grid3d> q(static_cast<std::size_t>(levels) + 1);
  q[0] = finest_charges;
  for (int l = 1; l <= levels; ++l) {
    q[static_cast<std::size_t>(l)] =
        restrict_grid(q[static_cast<std::size_t>(l - 1)], params_.order);
  }

  Grid3d phi = top_->solve_potential(q[static_cast<std::size_t>(levels)]);
  for (int l = levels; l >= 1; --l) {
    Grid3d level_phi = prolong_grid(phi, params_.order);
    Grid3d conv(level_phi.dims());
    convolve_dense3d(q[static_cast<std::size_t>(l - 1)],
                     kernels_[static_cast<std::size_t>(l - 1)],
                     params_.grid_cutoff, conv);
    conv *= constants::kCoulomb;  // shell samples carry the 1/2^{l-1} already
    level_phi += conv;
    phi = std::move(level_phi);
  }
  return phi;
}

CoulombResult Msm::compute(std::span<const Vec3> positions,
                           std::span<const double> charges) const {
  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});
  const Grid3d q_grid = assigner_.assign(positions, charges);
  const Grid3d potential = solve_potential(q_grid);
  const double q_phi =
      assigner_.back_interpolate(potential, positions, charges, &out.forces);
  out.energy_reciprocal = 0.5 * q_phi;
  if (params_.subtract_self) {
    double q2 = 0.0;
    for (const double q : charges) q2 += q * q;
    out.energy_self = -constants::kCoulomb * params_.alpha / std::sqrt(M_PI) * q2;
  }
  // Net-charge background, top-level splitting only: the dense middle-level
  // stencils carry their shell kernels' finite DC, and only the top SPME
  // drops its k = 0 mode (same telescoping as Tme::compute).
  double q_total = 0.0;
  for (const double q : charges) q_total += q;
  out.energy_background = net_charge_background_energy(
      q_total, top_->params().alpha, box_.volume());
  out.energy = out.energy_reciprocal + out.energy_self + out.energy_background;
  return out;
}

}  // namespace tme
