// Two-scale (refinement) relation of the central B-spline,
//   M_p(x) = sum_m J_m M_p(2x - m),   J_m = 2^{1-p} C(p, p/2 + |m|),
// for even order p (paper Sec. III.A, after Hardy et al. 2016).
//
// J drives both grid transfer operations of the TME / B-spline MSM:
//   restriction  Q^{l+1}_m = sum_k J_k Q^l_{2m+k}   (J-convolve, downsample)
//   prolongation P^l_n    += J_{n-2m} P^{l+1}_m     (upsample, J-convolve)
#pragma once

#include <vector>

namespace tme {

// Returns J_{-p/2} .. J_{p/2} (size p+1).  Sum of coefficients is 2.
std::vector<double> two_scale_coefficients(int p);

}  // namespace tme
