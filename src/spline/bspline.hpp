// Cardinal B-splines.
//
// Conventions follow Essmann et al. (SPME, 1995): M_p(u) is the order-p
// (degree p-1) uniform B-spline supported on [0, p].  The paper's "central
// B-spline" is the shifted copy M_p^c(x) = M_p(x + p/2) supported on
// [-p/2, p/2]; both views are provided.  Order p must be >= 2; the TME /
// two-scale machinery additionally requires p even.
#pragma once

#include <cstddef>
#include <span>

namespace tme {

// M_p(u) for u anywhere on the real line (0 outside [0, p]).
double bspline(int p, double u);

// d/du M_p(u).
double bspline_derivative(int p, double u);

// Central B-spline M_p(x + p/2), supported on [-p/2, p/2].
double bspline_central(int p, double x);
double bspline_central_derivative(int p, double x);

// Charge-assignment weights for an atom at normalised coordinate u (grid
// units).  Fills values[k] = M_p(u - (m0 + k)) and derivs[k] with the
// derivative, for k = 0..p-1, where m0 = floor(u) - p + 1 is the leftmost
// grid point that the atom touches.  Returns m0.
//
// values/derivs must have size >= p.  derivs may be empty when not needed.
long bspline_weights(int p, double u, std::span<double> values,
                     std::span<double> derivs);

// Central-convention variant (even p only): identical weight values, but the
// base index m0 = floor(u) - p/2 + 1 positions them symmetrically around the
// atom, i.e. values[k] = M_p^c(u - (m0 + k)).  This is the convention of the
// paper's Eq. 12 and the one the TME's restriction/prolongation requires —
// the Essmann-shifted basis differs by p/2, which does not commute with the
// factor-2 downsampling of the grid hierarchy.
long bspline_weights_central(int p, double u, std::span<double> values,
                             std::span<double> derivs);

// Exact values of the central B-spline at the integers, index m in
// [-p/2, p/2]; returns M_p^c(m) (zero at the endpoints for p even).
double bspline_central_at_integer(int p, int m);

}  // namespace tme
