#include "spline/two_scale.hpp"

#include <cmath>
#include <stdexcept>

namespace tme {

namespace {

double binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  double result = 1.0;
  // Multiplicative form keeps everything exact in double for n <= ~50.
  for (int i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

}  // namespace

std::vector<double> two_scale_coefficients(int p) {
  if (p < 2 || p % 2 != 0) {
    throw std::invalid_argument("two_scale_coefficients: p must be even and >= 2");
  }
  const int half = p / 2;
  std::vector<double> j(static_cast<std::size_t>(p) + 1);
  const double scale = std::ldexp(1.0, 1 - p);  // 2^{1-p}
  for (int m = -half; m <= half; ++m) {
    j[static_cast<std::size_t>(m + half)] = scale * binomial(p, half + std::abs(m));
  }
  return j;
}

}  // namespace tme
