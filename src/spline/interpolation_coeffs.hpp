// Interpolation coefficients of the fundamental spline, and the grid-kernel
// coefficient sequence G(alpha) = g(alpha) * omega * omega (paper Eq. 8).
//
// omega is defined by  sum_m omega_m M_p^c(k - m) = delta_{k0}: it is the
// convolution inverse of the B-spline integer samples.  On a periodic grid
// of n points the inverse is computed exactly in the cyclic algebra via the
// DFT (the denominator is strictly positive for even p), which is also the
// natural object for a periodic simulation box.
#pragma once

#include <cstddef>
#include <vector>

namespace tme {

// DFT of the integer samples of the central B-spline on a cyclic grid of n
// points: bhat_k = sum_m M_p^c(m) cos(2 pi k m / n).  Strictly positive for
// even p.
std::vector<double> bspline_sample_dft(int p, std::size_t n);

// Cyclic interpolation coefficients omega (size n): DFT^{-1}[1 / bhat].
std::vector<double> interpolation_coefficients(int p, std::size_t n);

// omega' = omega * omega (cyclic), the sequence tabulated by Hardy et al.
std::vector<double> omega_prime(int p, std::size_t n);

// Grid-kernel coefficients G_m(alpha) for a Gaussian exp(-alpha^2 x^2)
// sampled in grid units, on a cyclic grid of n points:
//   G = g * omega * omega,  g_m = sum_{images} exp(-alpha^2 (m + n j)^2).
// Returned indexed m = 0..n-1 (periodic; G[n-m] = G[m]).
//
// `sharpen = false` skips the omega * omega interpolation inverse and
// returns the raw periodised samples — the naive quasi-interpolation kernel.
// It exists for the ablation benches: without sharpening the B-spline
// smoothing of the basis is not compensated and the method error rises by
// orders of magnitude (see bench_ablation).
std::vector<double> gaussian_grid_kernel(int p, std::size_t n, double alpha,
                                         bool sharpen = true);

}  // namespace tme
