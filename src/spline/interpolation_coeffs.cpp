#include "spline/interpolation_coeffs.hpp"

#include <cmath>
#include <stdexcept>

#include "spline/bspline.hpp"

namespace tme {

namespace {

void check_args(int p, std::size_t n) {
  if (p < 2 || p % 2 != 0)
    throw std::invalid_argument("interpolation coefficients require even p >= 2");
  if (n < static_cast<std::size_t>(p))
    throw std::invalid_argument("cyclic grid too small for spline order");
}

// Inverse real DFT of a real, even spectrum: x_m = (1/n) sum_k X_k cos(2 pi k m / n).
std::vector<double> inverse_even_dft(const std::vector<double>& spectrum) {
  const std::size_t n = spectrum.size();
  std::vector<double> x(n, 0.0);
  const double w = 2.0 * M_PI / static_cast<double>(n);
  for (std::size_t m = 0; m < n; ++m) {
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += spectrum[k] * std::cos(w * static_cast<double>(k * m % n));
    }
    x[m] = sum / static_cast<double>(n);
  }
  return x;
}

}  // namespace

std::vector<double> bspline_sample_dft(int p, std::size_t n) {
  check_args(p, n);
  const int half = p / 2;
  std::vector<double> bhat(n, 0.0);
  const double w = 2.0 * M_PI / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    double sum = bspline_central_at_integer(p, 0);
    for (int m = 1; m < half; ++m) {  // M_p^c(±half) = 0 for even p
      sum += 2.0 * bspline_central_at_integer(p, m) * std::cos(w * k * m);
    }
    bhat[k] = sum;
  }
  return bhat;
}

std::vector<double> interpolation_coefficients(int p, std::size_t n) {
  std::vector<double> spectrum = bspline_sample_dft(p, n);
  for (auto& v : spectrum) v = 1.0 / v;
  return inverse_even_dft(spectrum);
}

std::vector<double> omega_prime(int p, std::size_t n) {
  std::vector<double> spectrum = bspline_sample_dft(p, n);
  for (auto& v : spectrum) v = 1.0 / (v * v);
  return inverse_even_dft(spectrum);
}

std::vector<double> gaussian_grid_kernel(int p, std::size_t n, double alpha,
                                         bool sharpen) {
  check_args(p, n);
  if (alpha <= 0.0)
    throw std::invalid_argument("gaussian_grid_kernel: alpha must be positive");
  // ghat_k = DFT of the periodised Gaussian samples.  The image sum is
  // truncated once the exponent underflows.
  const double a2 = alpha * alpha;
  const long reach = static_cast<long>(std::ceil(std::sqrt(709.0) / alpha)) + 1;
  std::vector<double> g(n, 0.0);
  for (long m = -reach; m <= reach; ++m) {
    const double v = std::exp(-a2 * static_cast<double>(m) * static_cast<double>(m));
    const long idx = ((m % static_cast<long>(n)) + static_cast<long>(n)) %
                     static_cast<long>(n);
    g[static_cast<std::size_t>(idx)] += v;
  }
  if (!sharpen) return g;
  // Spectrum of g (real even sequence).
  const double w = 2.0 * M_PI / static_cast<double>(n);
  std::vector<double> ghat(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double sum = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      sum += g[m] * std::cos(w * static_cast<double>(k * m % n));
    }
    ghat[k] = sum;
  }
  std::vector<double> bhat = bspline_sample_dft(p, n);
  for (std::size_t k = 0; k < n; ++k) ghat[k] /= bhat[k] * bhat[k];
  return inverse_even_dft(ghat);
}

}  // namespace tme
