#include "spline/bspline.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tme {

namespace {

void check_order(int p) {
  if (p < 2) throw std::invalid_argument("bspline: order p must be >= 2");
}

}  // namespace

double bspline(int p, double u) {
  check_order(p);
  if (u <= 0.0 || u >= static_cast<double>(p)) return 0.0;
  // Cox–de Boor on the uniform knots 0..p, specialised to a single point.
  // M_2 is the hat function; raise the order by the standard recurrence
  //   M_n(u) = [u M_{n-1}(u) + (n-u) M_{n-1}(u-1)] / (n-1).
  // We track the values M_n(u - j) for j = 0..n-1 starting from n = 2.
  const double w = u - std::floor(u);
  std::vector<double> data(static_cast<std::size_t>(p), 0.0);
  data[0] = w;
  data[1] = 1.0 - w;
  for (int n = 3; n <= p; ++n) {
    const double inv = 1.0 / (n - 1.0);
    for (int j = n - 1; j >= 0; --j) {
      const double a = (w + j) * (j < n - 1 ? data[j] : 0.0);
      const double b = (n - w - j) * (j > 0 ? data[j - 1] : 0.0);
      data[static_cast<std::size_t>(j)] = inv * (a + b);
    }
  }
  // data[j] = M_p(w + j); we want M_p(u) with u = w + floor(u).
  const int j = static_cast<int>(std::floor(u));
  if (j < 0 || j >= p) return 0.0;
  return data[static_cast<std::size_t>(j)];
}

double bspline_derivative(int p, double u) {
  check_order(p);
  if (p == 2) {
    if (u <= 0.0 || u >= 2.0) return 0.0;
    return u < 1.0 ? 1.0 : -1.0;
  }
  return bspline(p - 1, u) - bspline(p - 1, u - 1.0);
}

double bspline_central(int p, double x) { return bspline(p, x + 0.5 * p); }

double bspline_central_derivative(int p, double x) {
  return bspline_derivative(p, x + 0.5 * p);
}

long bspline_weights(int p, double u, std::span<double> values,
                     std::span<double> derivs) {
  check_order(p);
  assert(values.size() >= static_cast<std::size_t>(p));
  const double fl = std::floor(u);
  const double w = u - fl;
  // data[j] = M_n(w + j), built up from n = 2 to p.
  std::vector<double> data(static_cast<std::size_t>(p), 0.0);
  data[0] = w;
  data[1] = 1.0 - w;
  const bool want_derivs = derivs.size() >= static_cast<std::size_t>(p);
  std::vector<double> prev;  // M_{p-1}(w + j) snapshot for the derivative
  for (int n = 3; n <= p; ++n) {
    if (want_derivs && n == p) prev.assign(data.begin(), data.end());
    const double inv = 1.0 / (n - 1.0);
    for (int j = n - 1; j >= 0; --j) {
      const double a = (w + j) * (j < n - 1 ? data[j] : 0.0);
      const double b = (n - w - j) * (j > 0 ? data[j - 1] : 0.0);
      data[static_cast<std::size_t>(j)] = inv * (a + b);
    }
  }
  if (want_derivs && p == 2) prev = {1.0, 0.0};  // M_1(w) = 1, M_1(w+1) = 0
  // Grid point m0 + k sees argument u - (m0 + k) = w + p - 1 - k.
  for (int k = 0; k < p; ++k) {
    values[static_cast<std::size_t>(k)] = data[static_cast<std::size_t>(p - 1 - k)];
  }
  if (want_derivs) {
    // M_p'(w + j) = M_{p-1}(w + j) - M_{p-1}(w + j - 1).
    for (int k = 0; k < p; ++k) {
      const int j = p - 1 - k;
      const double hi = (j <= p - 2) ? prev[static_cast<std::size_t>(j)] : 0.0;
      const double lo = (j - 1 >= 0 && j - 1 <= p - 2)
                            ? prev[static_cast<std::size_t>(j - 1)]
                            : 0.0;
      derivs[static_cast<std::size_t>(k)] = hi - lo;
    }
  }
  return static_cast<long>(fl) - (p - 1);
}

long bspline_weights_central(int p, double u, std::span<double> values,
                             std::span<double> derivs) {
  if (p % 2 != 0) {
    throw std::invalid_argument("bspline_weights_central: p must be even");
  }
  return bspline_weights(p, u, values, derivs) + p / 2;
}

double bspline_central_at_integer(int p, int m) {
  check_order(p);
  if (p % 2 != 0)
    throw std::invalid_argument("bspline_central_at_integer: p must be even");
  const int half = p / 2;
  if (m < -half || m > half) return 0.0;
  return bspline(p, static_cast<double>(m + half));
}

}  // namespace tme
