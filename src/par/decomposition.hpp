// Spatial decomposition of grids and atoms over the 3D-torus node array
// (paper Sec. II: "atoms ... decomposed spatially into rectangular cells;
// each cell managed by a node at a corresponding coordinate").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "grid/grid3d.hpp"
#include "hw/torus.hpp"
#include "util/vec3.hpp"

namespace tme::par {

using hw::NodeCoord;
using hw::TorusTopology;

// Even block decomposition of a global grid over the node array.
class GridDecomposition {
 public:
  GridDecomposition(GridDims global, const TorusTopology& topo);

  const GridDims& global() const { return global_; }
  const GridDims& local() const { return local_; }
  std::size_t node_count() const { return topo_->node_count(); }
  const TorusTopology& topology() const { return *topo_; }

  // Owner node of a (wrapped) global cell.
  NodeCoord owner(long gx, long gy, long gz) const;

  // First global cell of a node's block.
  std::size_t origin_x(const NodeCoord& n) const { return n.x * local_.nx; }
  std::size_t origin_y(const NodeCoord& n) const { return n.y * local_.ny; }
  std::size_t origin_z(const NodeCoord& n) const { return n.z * local_.nz; }

 private:
  GridDims global_;
  GridDims local_;
  const TorusTopology* topo_;
};

// Assignment of atoms to nodes by box position.
std::vector<std::size_t> assign_atoms_to_nodes(const Box& box,
                                               std::span<const Vec3> positions,
                                               const TorusTopology& topo);

}  // namespace tme::par
