#include "par/fleet.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "par/proc_transport.hpp"
#include "par/telemetry.hpp"
#include "par/wire.hpp"
#include "util/crc32.hpp"
#include "util/env.hpp"

namespace tme::par {

FleetConfig with_fault_modes(FleetConfig base, const hw::FaultConfig& faults) {
  base.net_fault.seed = faults.seed;
  base.net_fault.drop_rate = faults.packet_drop_rate;
  base.net_fault.corrupt_rate = faults.packet_corrupt_rate;
  if (faults.kill_worker_rank >= 0) {
    const auto rank = static_cast<std::size_t>(faults.kill_worker_rank);
    if (base.worker_faults.size() <= rank) base.worker_faults.resize(rank + 1);
    base.worker_faults[rank].crash_after_tasks = faults.kill_worker_task;
    base.worker_faults[rank].hang_after_tasks = faults.hang_worker_task;
    base.worker_faults[rank].delay_ms = faults.worker_delay_ms;
  }
  return base;
}

FleetConfig fleet_config_from_env(FleetConfig base) {
  const std::size_t backend = env::choice_or(
      "TME_TRANSPORT", {"inproc", "proc"},
      base.backend == FleetConfig::Backend::kProc ? 1 : 0);
  base.backend =
      backend == 1 ? FleetConfig::Backend::kProc : FleetConfig::Backend::kInProc;
  base.workers = static_cast<std::size_t>(env::bounded_long_or(
      "TME_WORKERS", static_cast<long>(base.workers), 1, 1024));
  base.timeout_ms =
      env::bounded_long_or("TME_TRANSPORT_TIMEOUT_MS", base.timeout_ms, 1,
                           600000);
  base.term_grace_ms = env::bounded_long_or("TME_TERM_GRACE_MS",
                                            base.term_grace_ms, 0, 60000);
  return with_fault_modes(std::move(base), hw::fault_config_from_env());
}

// One outstanding task: the encoded payload (task id baked in) plus a
// callback that decodes and stores the accepted result.
struct WorkerFleet::Pending {
  std::uint64_t id = 0;
  std::size_t node = 0;
  std::size_t worker = 0;
  bool ever_sent = false;
  bool done = false;
  double sent_us = 0.0;  // first-send timestamp, for the latency histogram
  std::vector<std::uint8_t> payload;
  std::function<void(const std::vector<std::uint8_t>&)> accept;
};

WorkerFleet::WorkerFleet(const PipelineContext& ctx,
                         const hw::TorusTopology& topo, FleetConfig cfg)
    : ctx_(&ctx), topo_(&topo), cfg_(std::move(cfg)) {
  if (cfg_.workers == 0) {
    throw std::invalid_argument("WorkerFleet: need at least one worker");
  }
  worker_dead_.assign(cfg_.workers, 0);
  telemetry_on_ = cfg_.telemetry &&
                  cfg_.backend == FleetConfig::Backend::kProc &&
                  obs::tracing_active();
  offsets_.assign(cfg_.workers, obs::ClockOffsetEstimator{});
  worker_os_pid_.assign(cfg_.workers, -1);
  outstanding_.assign(cfg_.workers, 0);
  trace_id_ = static_cast<std::uint64_t>(::getpid());
  if (telemetry_on_) {
    obs::Tracer& tracer = obs::Tracer::global();
    dispatch_track_ = tracer.track("fleet", "dispatch");
    events_track_ = tracer.track("fleet", "events");
  }
  WorkerContext wc;
  wc.pipeline = *ctx_;
  wc.workers = static_cast<std::uint32_t>(cfg_.workers);
  wc.telemetry = telemetry_on_;
  base_context_ = encode_context(wc);
  if (!cfg_.context_path.empty()) {
    write_context_file(cfg_.context_path, base_context_);
  }
  spawn_transport();
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    if (!init_worker(w)) {
      throw TransportError("fleet: worker " + std::to_string(w) +
                           " failed the init handshake");
    }
  }
}

WorkerFleet::~WorkerFleet() {
  if (!stopped_) shutdown_workers();
}

// The kShutdown/kBye handshake with every live worker.  Returns true when
// all of them acknowledged before their 300ms grace expired.
bool WorkerFleet::shutdown_workers() {
  Message shutdown;
  shutdown.type = MsgType::kShutdown;
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    if (worker_dead_[w]) continue;
    try {
      transport_->send(w, shutdown);
    } catch (...) {
      continue;
    }
  }
  // Give each live worker a moment to answer kBye so processes exit cleanly;
  // the transport destructor reaps any straggler.
  bool all_acked = true;
  Message out;
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    if (worker_dead_[w]) continue;
    bool acked = false;
    for (;;) {
      RecvStatus st;
      try {
        st = transport_->recv(w, out, std::chrono::milliseconds(300));
      } catch (...) {
        break;
      }
      if (st != RecvStatus::kOk) break;
      // Workers flush their final telemetry chunk just before kBye, so the
      // shutdown drain is also the last ingest point.
      maybe_ingest_telemetry(out, w);
      if (out.type == MsgType::kBye) {
        acked = true;
        break;
      }
    }
    all_acked = all_acked && acked;
  }
  return all_acked;
}

bool WorkerFleet::quiesce() {
  if (stopped_) return true;
  // Checkpoint before teardown: re-seal the context file so the next fleet
  // (or a post-restart supervisor) re-initialises workers from exactly the
  // state this one was driving.
  bool ok = true;
  if (!cfg_.context_path.empty()) {
    try {
      write_context_file(cfg_.context_path, base_context_);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[fleet] quiesce: context re-seal failed: %s\n",
                   e.what());
      ok = false;
    }
  }
  ok = shutdown_workers() && ok;
  stopped_ = true;
  return ok;
}

void WorkerFleet::set_net_fault(const TransportFaultPolicy& fault) {
  cfg_.net_fault = fault;
  transport_->set_fault_policy(fault);
}

void WorkerFleet::set_telemetry_sink(obs::FleetTelemetry* sink) {
  sink_ = sink != nullptr ? sink : &own_telemetry_;
  if (!telemetry_on_) return;
  // Re-seed the new sink with the offsets estimated during the constructor's
  // init handshakes (the usual case: the runner installs its sink after the
  // fleet is built).
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    if (offsets_[w].has_offset() && worker_os_pid_[w] > 0) {
      sink_->set_offset(static_cast<std::uint32_t>(w), worker_os_pid_[w],
                        offsets_[w].offset_us(), offsets_[w].rtt_us());
    }
  }
}

bool WorkerFleet::worker_clock_synced(std::size_t w) const {
  return w < offsets_.size() && offsets_[w].has_offset();
}

double WorkerFleet::worker_clock_offset_us(std::size_t w) const {
  return worker_clock_synced(w) ? offsets_[w].offset_us() : 0.0;
}

double WorkerFleet::worker_clock_rtt_us(std::size_t w) const {
  return worker_clock_synced(w) ? offsets_[w].rtt_us() : 0.0;
}

std::size_t WorkerFleet::outstanding_tasks(std::size_t w) const {
  return w < outstanding_.size() ? outstanding_[w] : 0;
}

void WorkerFleet::maybe_ingest_telemetry(const Message& m, std::size_t w) {
  if (!telemetry_on_ || m.type != MsgType::kTelemetry) return;
  try {
    sink_->ingest(decode_telemetry(m.payload));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[fleet] worker %zu telemetry rejected: %s\n", w,
                 e.what());
  }
}

void WorkerFleet::note_fleet_instant(const char* name, std::string detail) {
  if (!telemetry_on_) return;
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.instant(events_track_, name, tracer.now_us(), std::move(detail));
}

void WorkerFleet::record_clock_sample(std::size_t w, double t0_us,
                                      double t1_us, double remote_us) {
  if (w >= offsets_.size()) return;
  offsets_[w].add_sample(t0_us, t1_us, remote_us);
  if (telemetry_on_ && worker_os_pid_[w] > 0) {
    sink_->set_offset(static_cast<std::uint32_t>(w), worker_os_pid_[w],
                      offsets_[w].offset_us(), offsets_[w].rtt_us());
  }
}

void WorkerFleet::spawn_transport() {
  if (cfg_.backend == FleetConfig::Backend::kInProc) {
    transport_ = std::make_unique<InProcTransport>(
        cfg_.workers,
        [](Endpoint& ep) {
          try {
            worker_loop(ep);
          } catch (...) {
            // A misbehaving in-proc worker closes its connection (below)
            // exactly like a crashing process closes its socket.
          }
        },
        cfg_.net_fault);
    return;
  }
  ProcTransport::Options opts;
  opts.worker_bin = cfg_.worker_bin;
  opts.fault = cfg_.net_fault;
  opts.term_grace_ms = cfg_.term_grace_ms;
  opts.context_path = cfg_.context_path;
  if (opts.worker_bin.empty()) {
    opts.fork_child = [](int fd) {
      FdEndpoint ep(fd);
      try {
        worker_loop(ep);
      } catch (...) {
      }
    };
  }
  transport_ = std::make_unique<ProcTransport>(cfg_.workers, std::move(opts));
}

std::vector<std::uint8_t> WorkerFleet::context_bytes_for(
    std::size_t rank) const {
  // A respawned worker restarts from the CRC-sealed context checkpoint when
  // one was written — the read path validates the seal before trusting it.
  WorkerContext wc = decode_context(cfg_.context_path.empty()
                                        ? base_context_
                                        : read_context_file(cfg_.context_path));
  wc.rank = static_cast<std::uint32_t>(rank);
  wc.workers = static_cast<std::uint32_t>(cfg_.workers);
  wc.fault = rank < cfg_.worker_faults.size() ? cfg_.worker_faults[rank]
                                              : WorkerFaultPolicy{};
  return encode_context(wc);
}

bool WorkerFleet::init_worker(std::size_t w) {
  Message init;
  init.type = MsgType::kInit;
  init.payload = context_bytes_for(w);
  const std::uint32_t crc = crc32(init.payload.data(), init.payload.size());
  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    const double t0 = obs::Tracer::global().now_us();
    try {
      transport_->send(w, init);
    } catch (const PeerDead&) {
      return false;
    }
    Message reply;
    const RecvStatus st =
        transport_->recv(w, reply, std::chrono::milliseconds(cfg_.timeout_ms));
    const double t1 = obs::Tracer::global().now_us();
    if (st == RecvStatus::kClosed) return false;
    if (st != RecvStatus::kOk) continue;
    maybe_ingest_telemetry(reply, w);
    if (reply.type != MsgType::kInitAck) continue;
    wire::Reader r(reply.payload);
    if (r.u32() == crc) {
      // A successful init is a fresh tracer epoch on the worker side, so the
      // old offset is meaningless; the InitAck extension (trailing i64 pid +
      // f64 clock reading, ignored by pre-extension readers) seeds the new
      // incarnation's estimate from this very round trip.
      if (w < offsets_.size()) offsets_[w].reset();
      if (r.remaining() >= 16) {
        worker_os_pid_[w] = r.i64();
        record_clock_sample(w, t0, t1, r.f64());
      }
      ++stats_.reinits;
      return true;
    }
    return false;  // half-applied context: refuse the worker
  }
  return false;
}

std::size_t WorkerFleet::worker_of_node(std::size_t node) const {
  const std::size_t host = plan_ ? plan_->host(node) : node;
  return host % cfg_.workers;
}

std::size_t WorkerFleet::alive_workers() const {
  std::size_t n = 0;
  for (const char d : worker_dead_) n += d == 0 ? 1 : 0;
  return n;
}

void WorkerFleet::kill_worker(std::size_t w) { transport_->kill(w); }

void WorkerFleet::term_worker(std::size_t w, long grace_ms) {
  if (auto* proc = dynamic_cast<ProcTransport*>(transport_.get())) {
    proc->terminate(w, grace_ms);
    return;
  }
  transport_->kill(w);  // inproc has no graceful path: tear the channel down
}

bool WorkerFleet::worker_exited_cleanly(std::size_t w) const {
  if (const auto* proc = dynamic_cast<const ProcTransport*>(transport_.get())) {
    return proc->exited_cleanly(w);
  }
  return false;
}

pid_t WorkerFleet::worker_pid(std::size_t w) const {
  if (const auto* proc = dynamic_cast<const ProcTransport*>(transport_.get())) {
    return proc->pid(w);
  }
  return -1;
}

void WorkerFleet::rebuild_plan() {
  auto faults = std::make_unique<hw::FaultInjector>();
  bool any = false;
  const std::size_t nodes = topo_->node_count();
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    if (!worker_dead_[w]) continue;
    for (std::size_t n = w; n < nodes; n += cfg_.workers) {
      faults->kill_node(n);
      any = true;
    }
  }
  if (any) {
    // Throws when the dead set partitions the torus or leaves no survivor —
    // the last-survivor refusal the recovery tests assert on.
    plan_ = std::make_unique<RecoveryPlan>(*topo_, *faults);
  } else {
    plan_.reset();
  }
  faults_ = std::move(faults);
}

void WorkerFleet::handle_worker_death(std::size_t w, const char* cause) {
  if (w >= cfg_.workers || worker_dead_[w]) return;
  worker_dead_[w] = 1;
  ++stats_.worker_deaths;
  TME_COUNTER_ADD("par/fleet/worker_deaths", 1);
  note_fleet_instant("worker dead",
                     "worker " + std::to_string(w) + " (" + cause + ")");
  std::fprintf(stderr, "[fleet] worker %zu declared dead (%s)\n", w, cause);
  if (health_ != nullptr && w < topo_->node_count()) {
    health_->report_violation(w);
  }
  if (cfg_.respawn) {
    transport_->respawn(w);
    ++stats_.respawns;
    TME_COUNTER_ADD("par/fleet/respawns", 1);
    if (init_worker(w)) {
      worker_dead_[w] = 0;
      note_fleet_instant("worker respawned",
                         "worker " + std::to_string(w) + " pid " +
                             std::to_string(worker_os_pid_[w]));
      std::fprintf(stderr, "[fleet] worker %zu respawned from sealed context\n",
                   w);
    }
  }
  rebuild_plan();
}

void WorkerFleet::record_transfer(std::size_t node, std::size_t bytes) {
  if (links_ == nullptr) return;
  const std::size_t n = node % topo_->node_count();
  links_->record_transfer(0, n, bytes);
}

void WorkerFleet::dispatch(std::vector<Pending>& pending) {
  if (pending.empty()) return;
  const std::size_t W = cfg_.workers;
  struct WState {
    std::vector<std::size_t> inflight;  // pending indices, oldest first
    int attempts = 0;
    std::chrono::steady_clock::time_point deadline{};
  };
  std::vector<WState> ws(W);
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  std::deque<std::size_t> to_send;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    by_id.emplace(pending[i].id, i);
    to_send.push_back(i);
  }
  std::size_t remaining = pending.size();
  const auto timeout =
      std::chrono::milliseconds(cfg_.timeout_ms > 0 ? cfg_.timeout_ms : 1);
  const auto now = [] { return std::chrono::steady_clock::now(); };
  // A worker whose fault policy crashes it on every generation would respawn
  // forever; bound the deaths one dispatch tolerates.
  std::size_t deaths_budget = 3 * W + 8;

  std::function<void(std::size_t, const char*)> on_death =
      [&](std::size_t w, const char* cause) {
        if (deaths_budget == 0) {
          throw TransportError(
              "fleet: worker death limit exceeded (crash loop?)");
        }
        --deaths_budget;
        handle_worker_death(w, cause);
        for (const std::size_t pi : ws[w].inflight) {
          if (!pending[pi].done) to_send.push_back(pi);
        }
        ws[w].inflight.clear();
        ws[w].attempts = 0;
        outstanding_[w] = 0;
      };

  const auto send_task = [&](std::size_t pi) {
    Pending& p = pending[pi];
    const std::size_t target = worker_of_node(p.node);
    const double send_us =
        telemetry_on_ ? obs::Tracer::global().now_us() : 0.0;
    Message m;
    m.type = MsgType::kTask;
    m.payload = p.payload;
    try {
      transport_->send(target, m);
    } catch (const PeerDead&) {
      on_death(target, "send to dead worker");
      to_send.push_back(pi);
      return;
    }
    if (p.ever_sent && target != p.worker) {
      ++stats_.rehomed_tasks;
      TME_COUNTER_ADD("par/fleet/rehomed_tasks", 1);
    }
    p.worker = target;
    p.ever_sent = true;
    WState& s = ws[target];
    if (std::find(s.inflight.begin(), s.inflight.end(), pi) ==
        s.inflight.end()) {
      s.inflight.push_back(pi);
    }
    outstanding_[target] = s.inflight.size();
    if (s.inflight.size() == 1) {
      s.attempts = 0;
      s.deadline = now() + timeout;
    }
    ++stats_.tasks_sent;
    TME_COUNTER_ADD("par/fleet/tasks_sent", 1);
    record_transfer(p.node, p.payload.size());
    if (telemetry_on_) {
      // A thin dispatch slice carrying the flow tail: the worker's task span
      // finishes the same flow id, so the merged timeline draws the
      // coordinator -> worker arrow.  Queue depth rides along as a counter
      // sample and a histogram.
      obs::Tracer& tracer = obs::Tracer::global();
      const double end_us = tracer.now_us();
      p.sent_us = send_us;
      tracer.complete(dispatch_track_, "dispatch", send_us, end_us - send_us,
                      "task " + std::to_string(p.id) + " -> w" +
                          std::to_string(target));
      tracer.flow_start(dispatch_track_, "dispatch", send_us, p.id);
      tracer.counter(dispatch_track_, "inflight w" + std::to_string(target),
                     end_us, static_cast<double>(s.inflight.size()));
      obs::Registry::global()
          .histogram("fleet/queue_depth")
          .record(static_cast<double>(s.inflight.size()));
    }
  };

  const auto expire = [&](std::size_t w) {
    WState& s = ws[w];
    ++s.attempts;
    if (s.attempts > cfg_.max_retries) {
      // Retries exhausted: a hung worker holds a live socket, so make the
      // death real before recovering.
      transport_->kill(w);
      on_death(w, "deadline exhausted");
      return;
    }
    ++stats_.retransmissions;
    TME_COUNTER_ADD("par/fleet/retransmissions", 1);
    if (telemetry_on_) {
      obs::Registry::global()
          .counter("fleet/w" + std::to_string(w) + "/retransmissions")
          .add(1);
    }
    const int shift = std::min(s.attempts - 1, 20);
    s.deadline =
        now() + timeout +
        std::chrono::milliseconds(cfg_.backoff_base_ms << shift);
    const std::vector<std::size_t> flight = s.inflight;  // on_death may clear
    for (const std::size_t pi : flight) {
      Pending& p = pending[pi];
      Message m;
      m.type = MsgType::kTask;
      m.payload = p.payload;
      try {
        transport_->send(w, m);
      } catch (const PeerDead&) {
        on_death(w, "send on retransmit");
        return;
      }
      ++stats_.tasks_sent;
      record_transfer(p.node, p.payload.size());
    }
  };

  while (remaining > 0) {
    while (!to_send.empty()) {
      const std::size_t pi = to_send.front();
      to_send.pop_front();
      if (!pending[pi].done) send_task(pi);
    }
    std::vector<char> want(W, 0);
    bool any = false;
    auto earliest = now() + timeout;
    for (std::size_t w = 0; w < W; ++w) {
      if (worker_dead_[w] || ws[w].inflight.empty()) continue;
      want[w] = 1;
      any = true;
      if (ws[w].deadline < earliest) earliest = ws[w].deadline;
    }
    if (!any) {
      if (!to_send.empty()) continue;
      throw TransportError(
          "fleet: tasks outstanding but no live worker owes results");
    }
    auto slice =
        std::chrono::duration_cast<std::chrono::milliseconds>(earliest - now());
    if (slice.count() < 0) slice = std::chrono::milliseconds(0);
    Message out;
    const auto arrived = transport_->recv_any(want, out, slice);
    if (!arrived) {
      const auto t = now();
      for (std::size_t w = 0; w < W; ++w) {
        if (want[w] && ws[w].deadline <= t) expire(w);
      }
      continue;
    }
    if (arrived->status == RecvStatus::kClosed) {
      on_death(arrived->worker, "connection closed");
      continue;
    }
    maybe_ingest_telemetry(out, arrived->worker);
    if (out.type != MsgType::kResult) continue;  // stray pong/ack/telemetry
    const ResultHeader header = peek_result_header(out.payload);
    const auto it = by_id.find(header.task_id);
    if (it == by_id.end()) {
      ++stats_.duplicate_results;
      continue;
    }
    Pending& p = pending[it->second];
    WState& s = ws[arrived->worker];
    const auto f = std::find(s.inflight.begin(), s.inflight.end(), it->second);
    if (f != s.inflight.end()) s.inflight.erase(f);
    outstanding_[arrived->worker] = s.inflight.size();
    s.attempts = 0;
    s.deadline = now() + timeout;
    if (p.done) {
      ++stats_.duplicate_results;
      TME_COUNTER_ADD("par/fleet/duplicate_results", 1);
      continue;
    }
    p.accept(out.payload);
    p.done = true;
    --remaining;
    ++stats_.results_received;
    TME_COUNTER_ADD("par/fleet/results_received", 1);
    record_transfer(p.node, out.payload.size());
    if (telemetry_on_ && p.sent_us > 0.0) {
      const double latency_s =
          (obs::Tracer::global().now_us() - p.sent_us) * 1e-6;
      obs::Registry& reg = obs::Registry::global();
      reg.histogram("fleet/task_latency_s").record(latency_s);
      reg.histogram("fleet/w" + std::to_string(arrived->worker) +
                    "/task_latency_s")
          .record(latency_s);
    }
  }
}

std::vector<Grid3d> WorkerFleet::run_grid(std::vector<GridBlockTask> tasks) {
  TME_PHASE("fleet_grid");
  std::vector<Grid3d> results(tasks.size());
  std::vector<Pending> pending(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Pending& p = pending[i];
    p.id = next_task_id_++;
    p.node = tasks[i].node;
    p.payload = encode_grid_task(p.id, tasks[i], trace_id_, p.id);
    Grid3d* slot = &results[i];
    p.accept = [slot](const std::vector<std::uint8_t>& payload) {
      *slot = decode_grid_result(payload);
    };
  }
  dispatch(pending);
  return results;
}

std::vector<ExtendedBlock> WorkerFleet::run_ca(std::vector<CaBlockTask> tasks) {
  TME_PHASE("fleet_ca");
  std::vector<ExtendedBlock> results(tasks.size());
  std::vector<Pending> pending(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Pending& p = pending[i];
    p.id = next_task_id_++;
    p.node = tasks[i].node;
    p.payload = encode_ca_task(p.id, tasks[i], trace_id_, p.id);
    ExtendedBlock* slot = &results[i];
    p.accept = [slot](const std::vector<std::uint8_t>& payload) {
      *slot = decode_ca_result(payload);
    };
  }
  dispatch(pending);
  return results;
}

std::vector<BiBlockResult> WorkerFleet::run_bi(std::vector<BiBlockTask> tasks) {
  TME_PHASE("fleet_bi");
  std::vector<BiBlockResult> results(tasks.size());
  std::vector<Pending> pending(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Pending& p = pending[i];
    p.id = next_task_id_++;
    p.node = tasks[i].node;
    p.payload = encode_bi_task(p.id, tasks[i], trace_id_, p.id);
    BiBlockResult* slot = &results[i];
    p.accept = [slot](const std::vector<std::uint8_t>& payload) {
      *slot = decode_bi_result(payload);
    };
  }
  dispatch(pending);
  return results;
}

std::size_t WorkerFleet::heartbeat(std::chrono::milliseconds timeout) {
  const std::size_t W = cfg_.workers;
  std::vector<char> want(W, 0);
  std::vector<char> pongd(W, 0);
  std::vector<double> ping_sent_us(W, 0.0);
  const std::uint64_t nonce_base = next_task_id_;
  next_task_id_ += W;
  for (std::size_t w = 0; w < W; ++w) {
    if (worker_dead_[w]) continue;
    wire::Writer body;
    body.u64(nonce_base + w);
    Message ping;
    ping.type = MsgType::kPing;
    ping.payload = body.take();
    ping_sent_us[w] = obs::Tracer::global().now_us();
    try {
      transport_->send(w, ping);
    } catch (const PeerDead&) {
      handle_worker_death(w, "heartbeat send");
      continue;
    }
    want[w] = 1;
    ++stats_.heartbeats_sent;
    TME_COUNTER_ADD("par/fleet/heartbeats_sent", 1);
  }
  const auto until = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool any = false;
    for (const char wnt : want) any = any || wnt != 0;
    if (!any) break;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        until - std::chrono::steady_clock::now());
    if (left.count() <= 0) break;
    Message out;
    const auto arrived = transport_->recv_any(want, out, left);
    if (!arrived) break;
    if (arrived->status == RecvStatus::kClosed) {
      want[arrived->worker] = 0;
      handle_worker_death(arrived->worker, "heartbeat eof");
      continue;
    }
    maybe_ingest_telemetry(out, arrived->worker);
    if (out.type != MsgType::kPong) continue;  // stale result straggler
    const double pong_recv_us = obs::Tracer::global().now_us();
    wire::Reader r(out.payload);
    if (r.u64() == nonce_base + arrived->worker) {
      pongd[arrived->worker] = 1;
      want[arrived->worker] = 0;
      // Pong extension: a trailing remote clock reading turns every
      // heartbeat into an NTP-style offset sample (pre-extension pongs just
      // echo the ping and fall through).
      if (r.remaining() >= 8) {
        record_clock_sample(arrived->worker, ping_sent_us[arrived->worker],
                            pong_recv_us, r.f64());
      }
    }
  }
  std::size_t answered = 0;
  for (std::size_t w = 0; w < W; ++w) {
    if (pongd[w]) {
      ++answered;
      continue;
    }
    if (!want[w]) continue;  // never pinged or already handled as dead
    ++stats_.heartbeats_missed;
    TME_COUNTER_ADD("par/fleet/heartbeats_missed", 1);
    if (health_ != nullptr && w < topo_->node_count()) {
      health_->report_violation(w);
    }
  }
  return answered;
}

void WorkerFleet::publish_metrics() const {
  obs::Registry& reg = obs::Registry::global();
  reg.gauge_set("fleet/workers", static_cast<double>(cfg_.workers));
  reg.gauge_set("fleet/alive_workers", static_cast<double>(alive_workers()));
  reg.gauge_set("fleet/tasks_sent", static_cast<double>(stats_.tasks_sent));
  reg.gauge_set("fleet/results_received",
                static_cast<double>(stats_.results_received));
  reg.gauge_set("fleet/retransmissions",
                static_cast<double>(stats_.retransmissions));
  reg.gauge_set("fleet/worker_deaths",
                static_cast<double>(stats_.worker_deaths));
  reg.gauge_set("fleet/respawns", static_cast<double>(stats_.respawns));
  reg.gauge_set("fleet/heartbeats_missed",
                static_cast<double>(stats_.heartbeats_missed));
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    const std::string base = "fleet/w" + std::to_string(w) + "/";
    const TransportStats& net = transport_->worker_stats(w);
    reg.gauge_set(base + "net/messages_sent",
                  static_cast<double>(net.messages_sent));
    reg.gauge_set(base + "net/bytes_sent", static_cast<double>(net.bytes_sent));
    reg.gauge_set(base + "net/messages_received",
                  static_cast<double>(net.messages_received));
    reg.gauge_set(base + "net/bytes_received",
                  static_cast<double>(net.bytes_received));
    reg.gauge_set(base + "net/crc_rejects",
                  static_cast<double>(net.crc_rejects));
    reg.gauge_set(base + "net/frames_dropped",
                  static_cast<double>(net.frames_dropped));
    reg.gauge_set(base + "net/frames_corrupted",
                  static_cast<double>(net.frames_corrupted));
    reg.gauge_set(base + "alive", worker_dead_[w] ? 0.0 : 1.0);
    reg.gauge_set(base + "outstanding",
                  static_cast<double>(outstanding_[w]));
    if (offsets_[w].has_offset()) {
      reg.gauge_set(base + "clock_offset_us", offsets_[w].offset_us());
      reg.gauge_set(base + "clock_rtt_us", offsets_[w].rtt_us());
    }
  }
  sink_->publish_worker_metrics(reg);
}

bool WorkerFleet::write_fleet_trace(const std::string& path) const {
  return sink_->write(path, obs::Tracer::global());
}

void WorkerFleet::status_json(obs::JsonValue& out) const {
  using obs::JsonValue;
  out = JsonValue::make_object();
  auto& o = out.as_object();
  o["workers"] = JsonValue::make_number(static_cast<double>(cfg_.workers));
  o["alive"] = JsonValue::make_number(static_cast<double>(alive_workers()));
  o["telemetry"] = JsonValue::make_bool(telemetry_on_);
  o["quiesced"] = JsonValue::make_bool(stopped_);
  JsonValue stats = JsonValue::make_object();
  auto& so = stats.as_object();
  so["tasks_sent"] =
      JsonValue::make_number(static_cast<double>(stats_.tasks_sent));
  so["results_received"] =
      JsonValue::make_number(static_cast<double>(stats_.results_received));
  so["retransmissions"] =
      JsonValue::make_number(static_cast<double>(stats_.retransmissions));
  so["worker_deaths"] =
      JsonValue::make_number(static_cast<double>(stats_.worker_deaths));
  so["respawns"] = JsonValue::make_number(static_cast<double>(stats_.respawns));
  so["heartbeats_missed"] =
      JsonValue::make_number(static_cast<double>(stats_.heartbeats_missed));
  o["stats"] = std::move(stats);
  JsonValue workers = JsonValue::make_array();
  auto& wa = workers.as_array();
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    JsonValue row = JsonValue::make_object();
    auto& ro = row.as_object();
    ro["rank"] = JsonValue::make_number(static_cast<double>(w));
    ro["alive"] = JsonValue::make_bool(!worker_dead_[w]);
    ro["pid"] =
        JsonValue::make_number(static_cast<double>(worker_os_pid_[w]));
    ro["outstanding"] =
        JsonValue::make_number(static_cast<double>(outstanding_[w]));
    ro["clock_synced"] = JsonValue::make_bool(offsets_[w].has_offset());
    ro["clock_offset_us"] = JsonValue::make_number(
        offsets_[w].has_offset() ? offsets_[w].offset_us() : 0.0);
    ro["clock_rtt_us"] = JsonValue::make_number(
        offsets_[w].has_offset() ? offsets_[w].rtt_us() : 0.0);
    const TransportStats& net = transport_->worker_stats(w);
    ro["messages_sent"] =
        JsonValue::make_number(static_cast<double>(net.messages_sent));
    ro["messages_received"] =
        JsonValue::make_number(static_cast<double>(net.messages_received));
    ro["crc_rejects"] =
        JsonValue::make_number(static_cast<double>(net.crc_rejects));
    wa.push_back(std::move(row));
  }
  o["per_worker"] = std::move(workers);
  JsonValue trace = JsonValue::make_object();
  auto& to = trace.as_object();
  to["chunks"] =
      JsonValue::make_number(static_cast<double>(sink_->chunk_count()));
  to["events_merged"] =
      JsonValue::make_number(static_cast<double>(sink_->events_merged()));
  to["emitted"] =
      JsonValue::make_number(static_cast<double>(sink_->emitted_total()));
  to["dropped"] =
      JsonValue::make_number(static_cast<double>(sink_->dropped_total()));
  to["incarnations"] =
      JsonValue::make_number(static_cast<double>(sink_->incarnation_count()));
  o["trace"] = std::move(trace);
}

}  // namespace tme::par
