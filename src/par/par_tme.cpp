#include "par/par_tme.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "spline/bspline.hpp"
#include "spline/two_scale.hpp"
#include "util/constants.hpp"

namespace tme::par {

namespace {

// Degraded-machine context threaded through the traffic helpers: an optional
// host remapping for dead nodes plus the corruption stream retransmissions
// are drawn from.  Default-constructed = healthy machine.
struct FaultContext {
  const RecoveryPlan* plan = nullptr;
  const FaultInjector* faults = nullptr;
  hw::LinkTelemetry* links = nullptr;
};

// Log one logical message, mapped through the recovery plan (if any) and
// charged for CRC-detected retransmissions drawn from the corruption stream
// (if any).  Messages between blocks that now share a surviving host become
// node-local and are dropped from the log.
void log_transfer(TrafficLog* log, const std::string& phase, std::size_t words,
                  std::size_t from, std::size_t to, const TorusTopology& topo,
                  const FaultContext& ctx) {
  std::size_t hops;
  std::size_t host_from = from;
  std::size_t host_to = to;
  if (ctx.plan != nullptr) {
    host_from = ctx.plan->host(from);
    host_to = ctx.plan->host(to);
    if (host_from == host_to) return;
    hops = ctx.plan->hops(from, to);
    if (ctx.plan->rerouted(from, to)) {
      TME_COUNTER_ADD("par_tme/rerouted_messages", 1);
    }
  } else {
    hops = topo.hops(topo.coord(from), topo.coord(to));
  }
  log->add(phase, 1, words, hops);
  if (ctx.links != nullptr) {
    ctx.links->record_transfer(host_from, host_to, words * 4);
  }
  if (ctx.faults != nullptr && ctx.faults->config().link_error_rate > 0.0) {
    std::size_t retries = 0;
    const auto max_retries =
        static_cast<std::size_t>(ctx.faults->config().max_retries);
    while (retries < max_retries && ctx.faults->attempt_corrupted(hops)) {
      ++retries;
    }
    if (retries > 0) {
      log->add("fault retransmission", retries, retries * words, hops);
      TME_COUNTER_ADD("par_tme/nw_retries", retries);
      if (ctx.links != nullptr) {
        ctx.links->record_transfer(host_from, host_to, retries * words * 4,
                                   retries);
      }
    }
  }
}

// An extended (halo-carrying) local buffer for one node: global coordinates
// [x0, x0+nx) x [y0, ...) x [z0, ...), unwrapped (may be negative).
struct ExtendedBlock {
  long x0 = 0, y0 = 0, z0 = 0;
  std::size_t nx = 0, ny = 0, nz = 0;
  std::vector<double> data;

  void reset(long x, long y, long z, std::size_t ex, std::size_t ey, std::size_t ez) {
    x0 = x;
    y0 = y;
    z0 = z;
    nx = ex;
    ny = ey;
    nz = ez;
    data.assign(ex * ey * ez, 0.0);
  }
  double& at(long gx, long gy, long gz) {
    return data[(static_cast<std::size_t>(gz - z0) * ny +
                 static_cast<std::size_t>(gy - y0)) *
                    nx +
                static_cast<std::size_t>(gx - x0)];
  }
  double at(long gx, long gy, long gz) const {
    return data[(static_cast<std::size_t>(gz - z0) * ny +
                 static_cast<std::size_t>(gy - y0)) *
                    nx +
                static_cast<std::size_t>(gx - x0)];
  }
};

// Fill a node's extended buffer from the distributed grid; every cell that
// lives on another node is a received word.  Messages are grouped by source
// node, hops measured on the torus.
void import_halo(const DistributedGrid& grid, const GridDecomposition& decomp,
                 const NodeCoord& me, ExtendedBlock& buffer,
                 const std::string& phase, TrafficLog* log,
                 const FaultContext& ctx = {}) {
  const GridDims& local = decomp.local();
  const TorusTopology& topo = decomp.topology();
  const std::size_t me_idx = topo.index(me);
  std::vector<std::size_t> words_from(topo.node_count(), 0);

  for (long gz = buffer.z0; gz < buffer.z0 + static_cast<long>(buffer.nz); ++gz) {
    for (long gy = buffer.y0; gy < buffer.y0 + static_cast<long>(buffer.ny); ++gy) {
      for (long gx = buffer.x0; gx < buffer.x0 + static_cast<long>(buffer.nx); ++gx) {
        const NodeCoord src = decomp.owner(gx, gy, gz);
        const std::size_t src_idx = topo.index(src);
        const Grid3d& blk = grid.block(src_idx);
        const std::size_t lx = Grid3d::wrap(gx, decomp.global().nx) % local.nx;
        const std::size_t ly = Grid3d::wrap(gy, decomp.global().ny) % local.ny;
        const std::size_t lz = Grid3d::wrap(gz, decomp.global().nz) % local.nz;
        buffer.at(gx, gy, gz) = blk.at(lx, ly, lz);
        if (src_idx != me_idx) ++words_from[src_idx];
      }
    }
  }
  if (log != nullptr) {
    for (std::size_t src = 0; src < words_from.size(); ++src) {
      if (words_from[src] == 0) continue;
      log_transfer(log, phase, words_from[src], src, me_idx, topo, ctx);
    }
  }
}

// Scatter-accumulate a node's sleeved buffer back into the distributed grid
// (used by CA: contributions written outside the owned block travel to the
// neighbour that owns them).
void export_sleeves(DistributedGrid& grid, const GridDecomposition& decomp,
                    const NodeCoord& me, const ExtendedBlock& buffer,
                    const std::string& phase, TrafficLog* log,
                    const FaultContext& ctx = {}) {
  const GridDims& local = decomp.local();
  const TorusTopology& topo = decomp.topology();
  const std::size_t me_idx = topo.index(me);
  std::vector<std::size_t> words_to(topo.node_count(), 0);

  for (long gz = buffer.z0; gz < buffer.z0 + static_cast<long>(buffer.nz); ++gz) {
    for (long gy = buffer.y0; gy < buffer.y0 + static_cast<long>(buffer.ny); ++gy) {
      for (long gx = buffer.x0; gx < buffer.x0 + static_cast<long>(buffer.nx); ++gx) {
        const double v = buffer.at(gx, gy, gz);
        if (v == 0.0) continue;
        const NodeCoord dst = decomp.owner(gx, gy, gz);
        const std::size_t dst_idx = topo.index(dst);
        Grid3d& blk = grid.block(dst_idx);
        const std::size_t lx = Grid3d::wrap(gx, decomp.global().nx) % local.nx;
        const std::size_t ly = Grid3d::wrap(gy, decomp.global().ny) % local.ny;
        const std::size_t lz = Grid3d::wrap(gz, decomp.global().nz) % local.nz;
        blk.at(lx, ly, lz) += v;
        if (dst_idx != me_idx) ++words_to[dst_idx];
      }
    }
  }
  if (log != nullptr) {
    for (std::size_t dst = 0; dst < words_to.size(); ++dst) {
      if (words_to[dst] == 0) continue;
      log_transfer(log, phase, words_to[dst], me_idx, dst, topo, ctx);
    }
  }
}

}  // namespace

// --- DistributedGrid ---------------------------------------------------------

DistributedGrid::DistributedGrid(const GridDecomposition& decomp)
    : decomp_(&decomp) {
  blocks_.assign(decomp.node_count(), Grid3d(decomp.local()));
}

Grid3d DistributedGrid::assemble() const {
  const GridDecomposition& d = *decomp_;
  Grid3d out(d.global());
  const GridDims& local = d.local();
  for (std::size_t n = 0; n < blocks_.size(); ++n) {
    const NodeCoord c = d.topology().coord(n);
    for (std::size_t lz = 0; lz < local.nz; ++lz) {
      for (std::size_t ly = 0; ly < local.ny; ++ly) {
        for (std::size_t lx = 0; lx < local.nx; ++lx) {
          out.at(d.origin_x(c) + lx, d.origin_y(c) + ly, d.origin_z(c) + lz) =
              blocks_[n].at(lx, ly, lz);
        }
      }
    }
  }
  return out;
}

DistributedGrid DistributedGrid::distribute(const Grid3d& global,
                                            const GridDecomposition& decomp) {
  if (!(global.dims() == decomp.global())) {
    throw std::invalid_argument("DistributedGrid::distribute: dims mismatch");
  }
  DistributedGrid out(decomp);
  const GridDims& local = decomp.local();
  for (std::size_t n = 0; n < out.node_count(); ++n) {
    const NodeCoord c = decomp.topology().coord(n);
    for (std::size_t lz = 0; lz < local.nz; ++lz) {
      for (std::size_t ly = 0; ly < local.ny; ++ly) {
        for (std::size_t lx = 0; lx < local.nx; ++lx) {
          out.block(n).at(lx, ly, lz) = global.at(decomp.origin_x(c) + lx,
                                                  decomp.origin_y(c) + ly,
                                                  decomp.origin_z(c) + lz);
        }
      }
    }
  }
  return out;
}

// --- ParallelTme -------------------------------------------------------------

ParallelTme::ParallelTme(const Box& box, const TmeParams& params,
                         const TorusTopology& nodes)
    : box_(box), tme_(box, params), topo_(nodes.nx(), nodes.ny(), nodes.nz()) {
  for (int level = 1; level <= params.levels + 1; ++level) {
    level_decomp_.emplace_back(tme_.level_dims(level), topo_);
  }
}

void ParallelTme::set_fault_injector(const FaultInjector* faults) {
  faults_ = faults;
  plan_.reset();
  if (faults != nullptr && faults->has_structural_faults()) {
    plan_ = std::make_unique<RecoveryPlan>(topo_, *faults);
  }
}

void ParallelTme::set_link_telemetry(hw::LinkTelemetry* links) {
  links_ = links;
}

DistributedGrid ParallelTme::solve_potential(const DistributedGrid& finest_charges,
                                             TrafficLog* log) const {
  TME_PHASE("par_tme_solve");
  TME_GAUGE_SET("par_tme/nodes", topo_.node_count());
  const FaultContext ctx{plan_.get(), faults_, links_};
  if (log != nullptr && plan_ != nullptr) {
    // One-time block migration: every dead node's per-level blocks are
    // re-fetched by the surviving host (from the neighbour-held redundant
    // copy) before the pipeline starts.
    for (const std::size_t dead : plan_->faults().dead_nodes()) {
      const std::size_t host = plan_->host(dead);
      const std::size_t hops =
          topo_.hops(topo_.coord(dead), topo_.coord(host));
      for (const GridDecomposition& d : level_decomp_) {
        log->add("fault redistribution", 1, d.local().total(), hops);
        if (links_ != nullptr) {
          links_->record_transfer(dead, host, d.local().total() * 4);
        }
      }
    }
  }
  const TmeParams& params = tme_.params();
  const int levels = params.levels;
  const int p = params.order;
  const int gc = params.grid_cutoff;
  const std::vector<double> j_coeff = two_scale_coefficients(p);

  // -- Downward pass: restrictions -------------------------------------------
  std::vector<DistributedGrid> q(static_cast<std::size_t>(levels) + 1);
  q[0] = finest_charges;
  for (int l = 1; l <= levels; ++l) {
    TME_PHASE("restriction");
    const GridDecomposition& fine_d = level_decomp_[static_cast<std::size_t>(l - 1)];
    const GridDecomposition& coarse_d = level_decomp_[static_cast<std::size_t>(l)];
    DistributedGrid coarse(coarse_d);
    const int half_p = p / 2;
    for (std::size_t n = 0; n < topo_.node_count(); ++n) {
      const NodeCoord me = topo_.coord(n);
      // Fine halo: output coarse cell m needs fine cells 2m +- p/2.
      ExtendedBlock halo;
      const long fx0 = 2 * static_cast<long>(coarse_d.origin_x(me)) - half_p;
      const long fy0 = 2 * static_cast<long>(coarse_d.origin_y(me)) - half_p;
      const long fz0 = 2 * static_cast<long>(coarse_d.origin_z(me)) - half_p;
      halo.reset(fx0, fy0, fz0, 2 * coarse_d.local().nx + p,
                 2 * coarse_d.local().ny + p, 2 * coarse_d.local().nz + p);
      import_halo(q[static_cast<std::size_t>(l - 1)], fine_d, me, halo,
                  "restriction halo", log, ctx);
      Grid3d& out = coarse.block(n);
      for (std::size_t mz = 0; mz < coarse_d.local().nz; ++mz) {
        for (std::size_t my = 0; my < coarse_d.local().ny; ++my) {
          for (std::size_t mx = 0; mx < coarse_d.local().nx; ++mx) {
            const long gx = 2 * static_cast<long>(coarse_d.origin_x(me) + mx);
            const long gy = 2 * static_cast<long>(coarse_d.origin_y(me) + my);
            const long gz = 2 * static_cast<long>(coarse_d.origin_z(me) + mz);
            double acc = 0.0;
            for (int kz = -half_p; kz <= half_p; ++kz) {
              const double jz = j_coeff[static_cast<std::size_t>(kz + half_p)];
              for (int ky = -half_p; ky <= half_p; ++ky) {
                const double jyz =
                    jz * j_coeff[static_cast<std::size_t>(ky + half_p)];
                for (int kx = -half_p; kx <= half_p; ++kx) {
                  acc += jyz * j_coeff[static_cast<std::size_t>(kx + half_p)] *
                         halo.at(gx + kx, gy + ky, gz + kz);
                }
              }
            }
            out.at(mx, my, mz) = acc;
          }
        }
      }
    }
    q[static_cast<std::size_t>(l)] = std::move(coarse);
  }

  // -- Top level: gather to the root, FFT convolution, broadcast back --------
  const GridDecomposition& top_d = level_decomp_[static_cast<std::size_t>(levels)];
  DistributedGrid phi;
  {
    TME_PHASE("top_fft");
    Grid3d top_global = q[static_cast<std::size_t>(levels)].assemble();
    if (log != nullptr) {
      // Every non-root node ships its block up the tree and receives the
      // potentials back (paper Sec. IV.C octree; hop count = torus distance to
      // the root's corner as a proxy for the board-level route).
      for (std::size_t n = 1; n < topo_.node_count(); ++n) {
        const std::size_t words = top_d.local().total();
        log_transfer(log, "TMENW gather", words, n, 0, topo_, ctx);
        log_transfer(log, "TMENW scatter", words, 0, n, topo_, ctx);
      }
    }
    Grid3d top_phi_global = tme_.top_level().solve_potential(top_global);
    phi = DistributedGrid::distribute(top_phi_global, top_d);
  }

  // -- Upward pass: prolongation + per-level separable convolution ----------
  for (int l = levels; l >= 1; --l) {
    const GridDecomposition& fine_d = level_decomp_[static_cast<std::size_t>(l - 1)];
    const GridDecomposition& coarse_d = level_decomp_[static_cast<std::size_t>(l)];
    const int half_p = p / 2;

    // Prolongation: fine cell n needs coarse cells m with |n - 2m| <= p/2.
    DistributedGrid fine_phi(fine_d);
    {
    TME_PHASE("prolongation");
    for (std::size_t n = 0; n < topo_.node_count(); ++n) {
      const NodeCoord me = topo_.coord(n);
      ExtendedBlock halo;
      const long cx0 = (static_cast<long>(fine_d.origin_x(me)) - half_p - 1) / 2;
      const long cy0 = (static_cast<long>(fine_d.origin_y(me)) - half_p - 1) / 2;
      const long cz0 = (static_cast<long>(fine_d.origin_z(me)) - half_p - 1) / 2;
      const std::size_t ext_x =
          (fine_d.local().nx + static_cast<std::size_t>(p)) / 2 + 2;
      const std::size_t ext_y =
          (fine_d.local().ny + static_cast<std::size_t>(p)) / 2 + 2;
      const std::size_t ext_z =
          (fine_d.local().nz + static_cast<std::size_t>(p)) / 2 + 2;
      halo.reset(cx0, cy0, cz0, ext_x, ext_y, ext_z);
      import_halo(phi, coarse_d, me, halo, "prolongation halo", log, ctx);

      Grid3d& out = fine_phi.block(n);
      for (std::size_t fz = 0; fz < fine_d.local().nz; ++fz) {
        for (std::size_t fy = 0; fy < fine_d.local().ny; ++fy) {
          for (std::size_t fx = 0; fx < fine_d.local().nx; ++fx) {
            const long gx = static_cast<long>(fine_d.origin_x(me) + fx);
            const long gy = static_cast<long>(fine_d.origin_y(me) + fy);
            const long gz = static_cast<long>(fine_d.origin_z(me) + fz);
            double acc = 0.0;
            for (int kz = -half_p; kz <= half_p; ++kz) {
              if (((gz - kz) & 1L) != 0) continue;
              const long mz = (gz - kz) / 2;
              const double jz = j_coeff[static_cast<std::size_t>(kz + half_p)];
              for (int ky = -half_p; ky <= half_p; ++ky) {
                if (((gy - ky) & 1L) != 0) continue;
                const long my = (gy - ky) / 2;
                const double jyz =
                    jz * j_coeff[static_cast<std::size_t>(ky + half_p)];
                for (int kx = -half_p; kx <= half_p; ++kx) {
                  if (((gx - kx) & 1L) != 0) continue;
                  const long mx = (gx - kx) / 2;
                  acc += jyz * j_coeff[static_cast<std::size_t>(kx + half_p)] *
                         halo.at(mx, my, mz);
                }
              }
            }
            out.at(fx, fy, fz) = acc;
          }
        }
      }
    }
    }  // prolongation phase

    // Separable level convolution: x, then y, then z axis passes; the
    // intermediate state is one grid per Gaussian term.
    TME_PHASE("convolution");
    const std::vector<SeparableTerm>& kernels = tme_.level_kernels(l);
    const std::size_t m_terms = kernels.size();
    const GridDims& local = fine_d.local();
    const std::size_t level_nx = fine_d.global().nx;
    const std::size_t level_ny = fine_d.global().ny;
    const std::size_t level_nz = fine_d.global().nz;

    std::vector<DistributedGrid> work(m_terms, DistributedGrid(fine_d));
    for (int axis = 0; axis < 3; ++axis) {
      // Halo extent along the convolved axis, clamped to the level period.
      const std::size_t n_axis = axis == 0 ? level_nx : (axis == 1 ? level_ny : level_nz);
      const std::size_t l_axis = axis == 0 ? local.nx : (axis == 1 ? local.ny : local.nz);
      const long reach = std::min<long>(gc, static_cast<long>(n_axis));
      const std::size_t inputs = axis == 0 ? 1 : m_terms;

      std::vector<DistributedGrid> next(m_terms, DistributedGrid(fine_d));
      for (std::size_t n = 0; n < topo_.node_count(); ++n) {
        const NodeCoord me = topo_.coord(n);
        const long ox = static_cast<long>(fine_d.origin_x(me));
        const long oy = static_cast<long>(fine_d.origin_y(me));
        const long oz = static_cast<long>(fine_d.origin_z(me));
        for (std::size_t term = 0; term < m_terms; ++term) {
          const DistributedGrid& src =
              axis == 0 ? q[static_cast<std::size_t>(l - 1)] : work[term];
          if (axis == 0 && term >= inputs) break;  // single input on x

          ExtendedBlock halo;
          switch (axis) {
            case 0:
              halo.reset(ox - reach, oy, oz, local.nx + 2 * reach, local.ny,
                         local.nz);
              break;
            case 1:
              halo.reset(ox, oy - reach, oz, local.nx, local.ny + 2 * reach,
                         local.nz);
              break;
            default:
              halo.reset(ox, oy, oz - reach, local.nx, local.ny,
                         local.nz + 2 * reach);
              break;
          }
          import_halo(src, fine_d, me, halo, "level convolution", log, ctx);

          // On the x pass every term convolves the same input; on y/z each
          // term convolves its own intermediate.
          const std::size_t out_terms_begin = axis == 0 ? 0 : term;
          const std::size_t out_terms_end = axis == 0 ? m_terms : term + 1;
          for (std::size_t out_t = out_terms_begin; out_t < out_terms_end; ++out_t) {
            const Kernel1d& k = axis == 0   ? kernels[out_t].kx
                                : axis == 1 ? kernels[out_t].ky
                                             : kernels[out_t].kz;
            Grid3d& out = next[out_t].block(n);
            for (std::size_t lz = 0; lz < local.nz; ++lz) {
              for (std::size_t ly = 0; ly < local.ny; ++ly) {
                for (std::size_t lx = 0; lx < local.nx; ++lx) {
                  const long gx = ox + static_cast<long>(lx);
                  const long gy = oy + static_cast<long>(ly);
                  const long gz = oz + static_cast<long>(lz);
                  double acc = 0.0;
                  for (int m = -k.cutoff; m <= k.cutoff; ++m) {
                    // Fold taps beyond the clamped halo into the period.
                    long sx = gx, sy = gy, sz = gz;
                    long off = -m;
                    if (off > reach) off -= static_cast<long>(n_axis);
                    if (off < -reach) off += static_cast<long>(n_axis);
                    switch (axis) {
                      case 0: sx += off; break;
                      case 1: sy += off; break;
                      default: sz += off; break;
                    }
                    acc += k.tap(m) * halo.at(sx, sy, sz);
                  }
                  out.at(lx, ly, lz) = acc;
                }
              }
            }
          }
          (void)l_axis;
        }
      }
      work = std::move(next);
    }

    // Accumulate the M terms into the prolonged potential with the level
    // prefactor (Eq. 9).
    const double scale = constants::kCoulomb / std::ldexp(1.0, l - 1);
    for (std::size_t n = 0; n < topo_.node_count(); ++n) {
      Grid3d& out = fine_phi.block(n);
      for (std::size_t term = 0; term < m_terms; ++term) {
        const Grid3d& w = work[term].block(n);
        for (std::size_t i = 0; i < out.size(); ++i) out[i] += scale * w[i];
      }
    }
    phi = std::move(fine_phi);
  }
  return phi;
}

CoulombResult ParallelTme::compute(std::span<const Vec3> positions,
                                   std::span<const double> charges,
                                   TrafficLog* log) const {
  TME_PHASE("par_tme");
  TME_COUNTER_ADD("par_tme/compute_calls", 1);
  TME_GAUGE_SET("par_tme/atoms", positions.size());
  const FaultContext ctx{plan_.get(), faults_, links_};
  const TmeParams& params = tme_.params();
  const GridDecomposition& fine_d = level_decomp_.front();
  const GridDims& local = fine_d.local();
  const int p = params.order;
  const Vec3 h{box_.lengths.x / static_cast<double>(fine_d.global().nx),
               box_.lengths.y / static_cast<double>(fine_d.global().ny),
               box_.lengths.z / static_cast<double>(fine_d.global().nz)};

  const std::vector<std::size_t> owner_of =
      assign_atoms_to_nodes(box_, positions, topo_);

  // --- CA: per-node anterpolation into sleeved buffers, sleeve export ------
  DistributedGrid q(fine_d);
  const int sleeve = p / 2 + 1;  // paper Sec. IV.A: 4 sleeves for p = 6
  std::vector<double> wx(static_cast<std::size_t>(p)), wy(wx), wz(wx);
  {
  TME_PHASE("charge_assignment");
  for (std::size_t n = 0; n < topo_.node_count(); ++n) {
    const NodeCoord me = topo_.coord(n);
    ExtendedBlock buffer;
    buffer.reset(static_cast<long>(fine_d.origin_x(me)) - sleeve,
                 static_cast<long>(fine_d.origin_y(me)) - sleeve,
                 static_cast<long>(fine_d.origin_z(me)) - sleeve,
                 local.nx + 2 * sleeve, local.ny + 2 * sleeve,
                 local.nz + 2 * sleeve);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (owner_of[i] != n) continue;
      const Vec3 u = hadamard_div(box_.wrap(positions[i]), h);
      long mx0 = bspline_weights_central(p, u.x, wx, {});
      long my0 = bspline_weights_central(p, u.y, wy, {});
      long mz0 = bspline_weights_central(p, u.z, wz, {});
      // Shift the base so the whole spline support lands inside this
      // node's buffer (at most one period in either direction).
      auto unwrap = [p](long base, long lo, long hi, long period) {
        if (base < lo) base += period;
        if (base + p > hi) base -= period;
        if (base < lo || base + p > hi) {
          throw std::logic_error("parallel CA/BI: atom support exceeds sleeve");
        }
        return base;
      };
      mx0 = unwrap(mx0, buffer.x0, buffer.x0 + static_cast<long>(buffer.nx),
                   static_cast<long>(fine_d.global().nx));
      my0 = unwrap(my0, buffer.y0, buffer.y0 + static_cast<long>(buffer.ny),
                   static_cast<long>(fine_d.global().ny));
      mz0 = unwrap(mz0, buffer.z0, buffer.z0 + static_cast<long>(buffer.nz),
                   static_cast<long>(fine_d.global().nz));
      const double qi = charges[i];
      for (int kz = 0; kz < p; ++kz) {
        const double qz = qi * wz[static_cast<std::size_t>(kz)];
        for (int ky = 0; ky < p; ++ky) {
          const double qyz = qz * wy[static_cast<std::size_t>(ky)];
          for (int kx = 0; kx < p; ++kx) {
            buffer.at(mx0 + kx, my0 + ky, mz0 + kz) +=
                qyz * wx[static_cast<std::size_t>(kx)];
          }
        }
      }
    }
    export_sleeves(q, fine_d, me, buffer, "CA sleeve exchange", log, ctx);
  }
  }  // charge_assignment phase

  // --- Grid pipeline --------------------------------------------------------
  const DistributedGrid phi = solve_potential(q, log);

  // --- BI: halo import of potentials, per-node interpolation ---------------
  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});
  double q_phi = 0.0;
  std::vector<double> dx(static_cast<std::size_t>(p)), dy(dx), dz(dx);
  TME_PHASE("back_interpolation");
  for (std::size_t n = 0; n < topo_.node_count(); ++n) {
    const NodeCoord me = topo_.coord(n);
    ExtendedBlock halo;
    halo.reset(static_cast<long>(fine_d.origin_x(me)) - sleeve,
               static_cast<long>(fine_d.origin_y(me)) - sleeve,
               static_cast<long>(fine_d.origin_z(me)) - sleeve,
               local.nx + 2 * sleeve, local.ny + 2 * sleeve,
               local.nz + 2 * sleeve);
    import_halo(phi, fine_d, me, halo, "BI grid transfer", log, ctx);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (owner_of[i] != n) continue;
      const Vec3 u = hadamard_div(box_.wrap(positions[i]), h);
      long mx0 = bspline_weights_central(p, u.x, wx, dx);
      long my0 = bspline_weights_central(p, u.y, wy, dy);
      long mz0 = bspline_weights_central(p, u.z, wz, dz);
      auto unwrap = [p](long base, long lo, long hi, long period) {
        if (base < lo) base += period;
        if (base + p > hi) base -= period;
        if (base < lo || base + p > hi) {
          throw std::logic_error("parallel CA/BI: atom support exceeds sleeve");
        }
        return base;
      };
      mx0 = unwrap(mx0, halo.x0, halo.x0 + static_cast<long>(halo.nx),
                   static_cast<long>(fine_d.global().nx));
      my0 = unwrap(my0, halo.y0, halo.y0 + static_cast<long>(halo.ny),
                   static_cast<long>(fine_d.global().ny));
      mz0 = unwrap(mz0, halo.z0, halo.z0 + static_cast<long>(halo.nz),
                   static_cast<long>(fine_d.global().nz));
      double phi_i = 0.0;
      Vec3 grad{};
      for (int kz = 0; kz < p; ++kz) {
        for (int ky = 0; ky < p; ++ky) {
          double line_v = 0.0, line_d = 0.0;
          for (int kx = 0; kx < p; ++kx) {
            const double pm = halo.at(mx0 + kx, my0 + ky, mz0 + kz);
            line_v += pm * wx[static_cast<std::size_t>(kx)];
            line_d += pm * dx[static_cast<std::size_t>(kx)];
          }
          const double vy = wy[static_cast<std::size_t>(ky)];
          const double gy = dy[static_cast<std::size_t>(ky)];
          const double vz = wz[static_cast<std::size_t>(kz)];
          const double gz = dz[static_cast<std::size_t>(kz)];
          phi_i += line_v * vy * vz;
          grad.x += line_d * vy * vz;
          grad.y += line_v * gy * vz;
          grad.z += line_v * vy * gz;
        }
      }
      q_phi += charges[i] * phi_i;
      out.forces[i] = {-charges[i] * grad.x / h.x, -charges[i] * grad.y / h.y,
                       -charges[i] * grad.z / h.z};
    }
  }
  out.energy_reciprocal = 0.5 * q_phi;
  if (params.subtract_self) {
    double q2 = 0.0;
    for (const double qi : charges) q2 += qi * qi;
    out.energy_self = -constants::kCoulomb * params.alpha / std::sqrt(M_PI) * q2;
  }
  out.energy = out.energy_reciprocal + out.energy_self;
  return out;
}

Grid3d parallel_msm_convolution(const Grid3d& in, const std::vector<double>& taps3d,
                                int cutoff, const TorusTopology& topo,
                                TrafficLog* log) {
  const std::size_t width = static_cast<std::size_t>(2 * cutoff + 1);
  if (taps3d.size() != width * width * width) {
    throw std::invalid_argument("parallel_msm_convolution: taps size");
  }
  const GridDecomposition decomp(in.dims(), topo);
  const DistributedGrid dist = DistributedGrid::distribute(in, decomp);
  const GridDims& local = decomp.local();

  Grid3d out(in.dims());
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    const NodeCoord me = topo.coord(n);
    ExtendedBlock halo;
    halo.reset(static_cast<long>(decomp.origin_x(me)) - cutoff,
               static_cast<long>(decomp.origin_y(me)) - cutoff,
               static_cast<long>(decomp.origin_z(me)) - cutoff,
               local.nx + 2 * static_cast<std::size_t>(cutoff),
               local.ny + 2 * static_cast<std::size_t>(cutoff),
               local.nz + 2 * static_cast<std::size_t>(cutoff));
    import_halo(dist, decomp, me, halo, "MSM dense halo", log);
    for (std::size_t lz = 0; lz < local.nz; ++lz) {
      for (std::size_t ly = 0; ly < local.ny; ++ly) {
        for (std::size_t lx = 0; lx < local.nx; ++lx) {
          const long gx = static_cast<long>(decomp.origin_x(me) + lx);
          const long gy = static_cast<long>(decomp.origin_y(me) + ly);
          const long gz = static_cast<long>(decomp.origin_z(me) + lz);
          double acc = 0.0;
          for (int mz = -cutoff; mz <= cutoff; ++mz) {
            for (int my = -cutoff; my <= cutoff; ++my) {
              for (int mx = -cutoff; mx <= cutoff; ++mx) {
                const double tap =
                    taps3d[(static_cast<std::size_t>(mz + cutoff) * width +
                            static_cast<std::size_t>(my + cutoff)) *
                               width +
                           static_cast<std::size_t>(mx + cutoff)];
                acc += tap * halo.at(gx - mx, gy - my, gz - mz);
              }
            }
          }
          out.at(static_cast<std::size_t>(gx), static_cast<std::size_t>(gy),
                 static_cast<std::size_t>(gz)) = acc;
        }
      }
    }
  }
  return out;
}

}  // namespace tme::par
