#include "par/par_tme.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "spline/bspline.hpp"
#include "spline/two_scale.hpp"
#include "util/constants.hpp"

namespace tme::par {

namespace {

// Degraded-machine context threaded through the traffic helpers: an optional
// host remapping for dead nodes plus the corruption stream retransmissions
// are drawn from.  Default-constructed = healthy machine.
struct FaultContext {
  const RecoveryPlan* plan = nullptr;
  const FaultInjector* faults = nullptr;
  hw::LinkTelemetry* links = nullptr;
};

// Log one logical message, mapped through the recovery plan (if any) and
// charged for CRC-detected retransmissions drawn from the corruption stream
// (if any).  Messages between blocks that now share a surviving host become
// node-local and are dropped from the log.
void log_transfer(TrafficLog* log, const std::string& phase, std::size_t words,
                  std::size_t from, std::size_t to, const TorusTopology& topo,
                  const FaultContext& ctx) {
  std::size_t hops;
  std::size_t host_from = from;
  std::size_t host_to = to;
  if (ctx.plan != nullptr) {
    host_from = ctx.plan->host(from);
    host_to = ctx.plan->host(to);
    if (host_from == host_to) return;
    hops = ctx.plan->hops(from, to);
    if (ctx.plan->rerouted(from, to)) {
      TME_COUNTER_ADD("par_tme/rerouted_messages", 1);
    }
  } else {
    hops = topo.hops(topo.coord(from), topo.coord(to));
  }
  log->add(phase, 1, words, hops);
  if (ctx.links != nullptr) {
    ctx.links->record_transfer(host_from, host_to, words * 4);
  }
  if (ctx.faults != nullptr && ctx.faults->config().link_error_rate > 0.0) {
    std::size_t retries = 0;
    const auto max_retries =
        static_cast<std::size_t>(ctx.faults->config().max_retries);
    while (retries < max_retries && ctx.faults->attempt_corrupted(hops)) {
      ++retries;
    }
    if (retries > 0) {
      log->add("fault retransmission", retries, retries * words, hops);
      TME_COUNTER_ADD("par_tme/nw_retries", retries);
      if (ctx.links != nullptr) {
        ctx.links->record_transfer(host_from, host_to, retries * words * 4,
                                   retries);
      }
    }
  }
}

// Fill a node's extended buffer from the distributed grid; every cell that
// lives on another node is a received word.  Messages are grouped by source
// node, hops measured on the torus.
void import_halo(const DistributedGrid& grid, const GridDecomposition& decomp,
                 const NodeCoord& me, ExtendedBlock& buffer,
                 const std::string& phase, TrafficLog* log,
                 const FaultContext& ctx = {}) {
  const GridDims& local = decomp.local();
  const TorusTopology& topo = decomp.topology();
  const std::size_t me_idx = topo.index(me);
  std::vector<std::size_t> words_from(topo.node_count(), 0);

  for (long gz = buffer.z0; gz < buffer.z0 + static_cast<long>(buffer.nz); ++gz) {
    for (long gy = buffer.y0; gy < buffer.y0 + static_cast<long>(buffer.ny); ++gy) {
      for (long gx = buffer.x0; gx < buffer.x0 + static_cast<long>(buffer.nx); ++gx) {
        const NodeCoord src = decomp.owner(gx, gy, gz);
        const std::size_t src_idx = topo.index(src);
        const Grid3d& blk = grid.block(src_idx);
        const std::size_t lx = Grid3d::wrap(gx, decomp.global().nx) % local.nx;
        const std::size_t ly = Grid3d::wrap(gy, decomp.global().ny) % local.ny;
        const std::size_t lz = Grid3d::wrap(gz, decomp.global().nz) % local.nz;
        buffer.at(gx, gy, gz) = blk.at(lx, ly, lz);
        if (src_idx != me_idx) ++words_from[src_idx];
      }
    }
  }
  if (log != nullptr) {
    for (std::size_t src = 0; src < words_from.size(); ++src) {
      if (words_from[src] == 0) continue;
      log_transfer(log, phase, words_from[src], src, me_idx, topo, ctx);
    }
  }
}

// Scatter-accumulate a node's sleeved buffer back into the distributed grid
// (used by CA: contributions written outside the owned block travel to the
// neighbour that owns them).
void export_sleeves(DistributedGrid& grid, const GridDecomposition& decomp,
                    const NodeCoord& me, const ExtendedBlock& buffer,
                    const std::string& phase, TrafficLog* log,
                    const FaultContext& ctx = {}) {
  const GridDims& local = decomp.local();
  const TorusTopology& topo = decomp.topology();
  const std::size_t me_idx = topo.index(me);
  std::vector<std::size_t> words_to(topo.node_count(), 0);

  for (long gz = buffer.z0; gz < buffer.z0 + static_cast<long>(buffer.nz); ++gz) {
    for (long gy = buffer.y0; gy < buffer.y0 + static_cast<long>(buffer.ny); ++gy) {
      for (long gx = buffer.x0; gx < buffer.x0 + static_cast<long>(buffer.nx); ++gx) {
        const double v = buffer.at(gx, gy, gz);
        if (v == 0.0) continue;
        const NodeCoord dst = decomp.owner(gx, gy, gz);
        const std::size_t dst_idx = topo.index(dst);
        Grid3d& blk = grid.block(dst_idx);
        const std::size_t lx = Grid3d::wrap(gx, decomp.global().nx) % local.nx;
        const std::size_t ly = Grid3d::wrap(gy, decomp.global().ny) % local.ny;
        const std::size_t lz = Grid3d::wrap(gz, decomp.global().nz) % local.nz;
        blk.at(lx, ly, lz) += v;
        if (dst_idx != me_idx) ++words_to[dst_idx];
      }
    }
  }
  if (log != nullptr) {
    for (std::size_t dst = 0; dst < words_to.size(); ++dst) {
      if (words_to[dst] == 0) continue;
      log_transfer(log, phase, words_to[dst], me_idx, dst, topo, ctx);
    }
  }
}

}  // namespace

// --- DistributedGrid ---------------------------------------------------------

DistributedGrid::DistributedGrid(const GridDecomposition& decomp)
    : decomp_(&decomp) {
  blocks_.assign(decomp.node_count(), Grid3d(decomp.local()));
}

Grid3d DistributedGrid::assemble() const {
  const GridDecomposition& d = *decomp_;
  Grid3d out(d.global());
  const GridDims& local = d.local();
  for (std::size_t n = 0; n < blocks_.size(); ++n) {
    const NodeCoord c = d.topology().coord(n);
    for (std::size_t lz = 0; lz < local.nz; ++lz) {
      for (std::size_t ly = 0; ly < local.ny; ++ly) {
        for (std::size_t lx = 0; lx < local.nx; ++lx) {
          out.at(d.origin_x(c) + lx, d.origin_y(c) + ly, d.origin_z(c) + lz) =
              blocks_[n].at(lx, ly, lz);
        }
      }
    }
  }
  return out;
}

DistributedGrid DistributedGrid::distribute(const Grid3d& global,
                                            const GridDecomposition& decomp) {
  if (!(global.dims() == decomp.global())) {
    throw std::invalid_argument("DistributedGrid::distribute: dims mismatch");
  }
  DistributedGrid out(decomp);
  const GridDims& local = decomp.local();
  for (std::size_t n = 0; n < out.node_count(); ++n) {
    const NodeCoord c = decomp.topology().coord(n);
    for (std::size_t lz = 0; lz < local.nz; ++lz) {
      for (std::size_t ly = 0; ly < local.ny; ++ly) {
        for (std::size_t lx = 0; lx < local.nx; ++lx) {
          out.block(n).at(lx, ly, lz) = global.at(decomp.origin_x(c) + lx,
                                                  decomp.origin_y(c) + ly,
                                                  decomp.origin_z(c) + lz);
        }
      }
    }
  }
  return out;
}

// --- ParallelTme -------------------------------------------------------------

ParallelTme::ParallelTme(const Box& box, const TmeParams& params,
                         const TorusTopology& nodes)
    : box_(box), tme_(box, params), topo_(nodes.nx(), nodes.ny(), nodes.nz()) {
  for (int level = 1; level <= params.levels + 1; ++level) {
    level_decomp_.emplace_back(tme_.level_dims(level), topo_);
  }
  ctx_.box = box_;
  ctx_.p = params.order;
  ctx_.fine_global = tme_.level_dims(1);
  ctx_.h = {box_.lengths.x / static_cast<double>(ctx_.fine_global.nx),
            box_.lengths.y / static_cast<double>(ctx_.fine_global.ny),
            box_.lengths.z / static_cast<double>(ctx_.fine_global.nz)};
  ctx_.j_coeff = two_scale_coefficients(params.order);
  for (int l = 1; l <= params.levels; ++l) {
    ctx_.kernels.push_back(tme_.level_kernels(l));
  }
  serial_exec_ = std::make_unique<SerialExecutor>(ctx_);
}

void ParallelTme::set_fault_injector(const FaultInjector* faults) {
  faults_ = faults;
  plan_.reset();
  if (faults != nullptr && faults->has_structural_faults()) {
    plan_ = std::make_unique<RecoveryPlan>(topo_, *faults);
  }
}

void ParallelTme::set_link_telemetry(hw::LinkTelemetry* links) {
  links_ = links;
}

DistributedGrid ParallelTme::solve_potential(const DistributedGrid& finest_charges,
                                             TrafficLog* log) const {
  TME_PHASE("par_tme_solve");
  TME_GAUGE_SET("par_tme/nodes", topo_.node_count());
  const FaultContext ctx{plan_.get(), faults_, links_};
  NodeExecutor& exec = executor();
  if (log != nullptr && plan_ != nullptr) {
    // One-time block migration: every dead node's per-level blocks are
    // re-fetched by the surviving host (from the neighbour-held redundant
    // copy) before the pipeline starts.
    for (const std::size_t dead : plan_->faults().dead_nodes()) {
      const std::size_t host = plan_->host(dead);
      const std::size_t hops =
          topo_.hops(topo_.coord(dead), topo_.coord(host));
      for (const GridDecomposition& d : level_decomp_) {
        log->add("fault redistribution", 1, d.local().total(), hops);
        if (links_ != nullptr) {
          links_->record_transfer(dead, host, d.local().total() * 4);
        }
      }
    }
  }
  const TmeParams& params = tme_.params();
  const int levels = params.levels;
  const int p = params.order;
  const int gc = params.grid_cutoff;

  // -- Downward pass: restrictions -------------------------------------------
  std::vector<DistributedGrid> q(static_cast<std::size_t>(levels) + 1);
  q[0] = finest_charges;
  for (int l = 1; l <= levels; ++l) {
    TME_PHASE("restriction");
    const GridDecomposition& fine_d = level_decomp_[static_cast<std::size_t>(l - 1)];
    const GridDecomposition& coarse_d = level_decomp_[static_cast<std::size_t>(l)];
    DistributedGrid coarse(coarse_d);
    const int half_p = p / 2;
    std::vector<GridBlockTask> tasks;
    tasks.reserve(topo_.node_count());
    for (std::size_t n = 0; n < topo_.node_count(); ++n) {
      const NodeCoord me = topo_.coord(n);
      // Fine halo: output coarse cell m needs fine cells 2m +- p/2.
      GridBlockTask t;
      t.kind = GridBlockTask::Kind::kRestrict;
      t.node = n;
      const long fx0 = 2 * static_cast<long>(coarse_d.origin_x(me)) - half_p;
      const long fy0 = 2 * static_cast<long>(coarse_d.origin_y(me)) - half_p;
      const long fz0 = 2 * static_cast<long>(coarse_d.origin_z(me)) - half_p;
      t.halo.reset(fx0, fy0, fz0, 2 * coarse_d.local().nx + p,
                   2 * coarse_d.local().ny + p, 2 * coarse_d.local().nz + p);
      import_halo(q[static_cast<std::size_t>(l - 1)], fine_d, me, t.halo,
                  "restriction halo", log, ctx);
      t.ox = static_cast<long>(coarse_d.origin_x(me));
      t.oy = static_cast<long>(coarse_d.origin_y(me));
      t.oz = static_cast<long>(coarse_d.origin_z(me));
      t.out_dims = coarse_d.local();
      tasks.push_back(std::move(t));
    }
    std::vector<Grid3d> blocks = exec.run_grid(std::move(tasks));
    for (std::size_t n = 0; n < topo_.node_count(); ++n) {
      coarse.block(n) = std::move(blocks[n]);
    }
    q[static_cast<std::size_t>(l)] = std::move(coarse);
  }

  // -- Top level: gather to the root, FFT convolution, broadcast back --------
  const GridDecomposition& top_d = level_decomp_[static_cast<std::size_t>(levels)];
  DistributedGrid phi;
  {
    TME_PHASE("top_fft");
    Grid3d top_global = q[static_cast<std::size_t>(levels)].assemble();
    if (log != nullptr) {
      // Every non-root node ships its block up the tree and receives the
      // potentials back (paper Sec. IV.C octree; hop count = torus distance to
      // the root's corner as a proxy for the board-level route).
      for (std::size_t n = 1; n < topo_.node_count(); ++n) {
        const std::size_t words = top_d.local().total();
        log_transfer(log, "TMENW gather", words, n, 0, topo_, ctx);
        log_transfer(log, "TMENW scatter", words, 0, n, topo_, ctx);
      }
    }
    Grid3d top_phi_global = tme_.top_level().solve_potential(top_global);
    phi = DistributedGrid::distribute(top_phi_global, top_d);
  }

  // -- Upward pass: prolongation + per-level separable convolution ----------
  for (int l = levels; l >= 1; --l) {
    const GridDecomposition& fine_d = level_decomp_[static_cast<std::size_t>(l - 1)];
    const GridDecomposition& coarse_d = level_decomp_[static_cast<std::size_t>(l)];
    const int half_p = p / 2;

    // Prolongation: fine cell n needs coarse cells m with |n - 2m| <= p/2.
    DistributedGrid fine_phi(fine_d);
    {
    TME_PHASE("prolongation");
    std::vector<GridBlockTask> tasks;
    tasks.reserve(topo_.node_count());
    for (std::size_t n = 0; n < topo_.node_count(); ++n) {
      const NodeCoord me = topo_.coord(n);
      GridBlockTask t;
      t.kind = GridBlockTask::Kind::kProlong;
      t.node = n;
      const long cx0 = (static_cast<long>(fine_d.origin_x(me)) - half_p - 1) / 2;
      const long cy0 = (static_cast<long>(fine_d.origin_y(me)) - half_p - 1) / 2;
      const long cz0 = (static_cast<long>(fine_d.origin_z(me)) - half_p - 1) / 2;
      const std::size_t ext_x =
          (fine_d.local().nx + static_cast<std::size_t>(p)) / 2 + 2;
      const std::size_t ext_y =
          (fine_d.local().ny + static_cast<std::size_t>(p)) / 2 + 2;
      const std::size_t ext_z =
          (fine_d.local().nz + static_cast<std::size_t>(p)) / 2 + 2;
      t.halo.reset(cx0, cy0, cz0, ext_x, ext_y, ext_z);
      import_halo(phi, coarse_d, me, t.halo, "prolongation halo", log, ctx);
      t.ox = static_cast<long>(fine_d.origin_x(me));
      t.oy = static_cast<long>(fine_d.origin_y(me));
      t.oz = static_cast<long>(fine_d.origin_z(me));
      t.out_dims = fine_d.local();
      tasks.push_back(std::move(t));
    }
    std::vector<Grid3d> blocks = exec.run_grid(std::move(tasks));
    for (std::size_t n = 0; n < topo_.node_count(); ++n) {
      fine_phi.block(n) = std::move(blocks[n]);
    }
    }  // prolongation phase

    // Separable level convolution: x, then y, then z axis passes; the
    // intermediate state is one grid per Gaussian term.
    TME_PHASE("convolution");
    const std::vector<SeparableTerm>& kernels = tme_.level_kernels(l);
    const std::size_t m_terms = kernels.size();
    const GridDims& local = fine_d.local();
    const std::size_t level_nx = fine_d.global().nx;
    const std::size_t level_ny = fine_d.global().ny;
    const std::size_t level_nz = fine_d.global().nz;

    std::vector<DistributedGrid> work(m_terms, DistributedGrid(fine_d));
    for (int axis = 0; axis < 3; ++axis) {
      // Halo extent along the convolved axis, clamped to the level period.
      const std::size_t n_axis = axis == 0 ? level_nx : (axis == 1 ? level_ny : level_nz);
      const long reach = std::min<long>(gc, static_cast<long>(n_axis));
      const std::size_t inputs = axis == 0 ? 1 : m_terms;

      // One task per (node, output term), in node-major order.  On the x
      // pass all M outputs convolve the same single input halo (imported —
      // and logged — once per node); on y/z each term has its own.
      std::vector<GridBlockTask> tasks(topo_.node_count() * m_terms);
      for (std::size_t n = 0; n < topo_.node_count(); ++n) {
        const NodeCoord me = topo_.coord(n);
        const long ox = static_cast<long>(fine_d.origin_x(me));
        const long oy = static_cast<long>(fine_d.origin_y(me));
        const long oz = static_cast<long>(fine_d.origin_z(me));
        for (std::size_t term = 0; term < inputs; ++term) {
          const DistributedGrid& src =
              axis == 0 ? q[static_cast<std::size_t>(l - 1)] : work[term];

          ExtendedBlock halo;
          switch (axis) {
            case 0:
              halo.reset(ox - reach, oy, oz, local.nx + 2 * reach, local.ny,
                         local.nz);
              break;
            case 1:
              halo.reset(ox, oy - reach, oz, local.nx, local.ny + 2 * reach,
                         local.nz);
              break;
            default:
              halo.reset(ox, oy, oz - reach, local.nx, local.ny,
                         local.nz + 2 * reach);
              break;
          }
          import_halo(src, fine_d, me, halo, "level convolution", log, ctx);

          // On the x pass every term convolves the same input; on y/z each
          // term convolves its own intermediate.
          const std::size_t out_terms_begin = axis == 0 ? 0 : term;
          const std::size_t out_terms_end = axis == 0 ? m_terms : term + 1;
          for (std::size_t out_t = out_terms_begin; out_t < out_terms_end; ++out_t) {
            GridBlockTask& t = tasks[n * m_terms + out_t];
            t.kind = GridBlockTask::Kind::kConvolve;
            t.node = n;
            t.halo = halo;
            t.ox = ox;
            t.oy = oy;
            t.oz = oz;
            t.out_dims = local;
            t.axis = axis;
            t.reach = reach;
            t.n_axis = n_axis;
            t.level = l;
            t.term = out_t;
          }
        }
      }
      std::vector<Grid3d> blocks = exec.run_grid(std::move(tasks));
      std::vector<DistributedGrid> next(m_terms, DistributedGrid(fine_d));
      for (std::size_t n = 0; n < topo_.node_count(); ++n) {
        for (std::size_t term = 0; term < m_terms; ++term) {
          next[term].block(n) = std::move(blocks[n * m_terms + term]);
        }
      }
      work = std::move(next);
    }

    // Accumulate the M terms into the prolonged potential with the level
    // prefactor (Eq. 9).
    const double scale = constants::kCoulomb / std::ldexp(1.0, l - 1);
    for (std::size_t n = 0; n < topo_.node_count(); ++n) {
      Grid3d& out = fine_phi.block(n);
      for (std::size_t term = 0; term < m_terms; ++term) {
        const Grid3d& w = work[term].block(n);
        for (std::size_t i = 0; i < out.size(); ++i) out[i] += scale * w[i];
      }
    }
    phi = std::move(fine_phi);
  }
  return phi;
}

CoulombResult ParallelTme::compute(std::span<const Vec3> positions,
                                   std::span<const double> charges,
                                   TrafficLog* log) const {
  TME_PHASE("par_tme");
  TME_COUNTER_ADD("par_tme/compute_calls", 1);
  TME_GAUGE_SET("par_tme/atoms", positions.size());
  const FaultContext ctx{plan_.get(), faults_, links_};
  NodeExecutor& exec = executor();
  const TmeParams& params = tme_.params();
  const GridDecomposition& fine_d = level_decomp_.front();
  const GridDims& local = fine_d.local();
  const int p = params.order;

  const std::vector<std::size_t> owner_of =
      assign_atoms_to_nodes(box_, positions, topo_);
  std::vector<std::vector<std::size_t>> node_atoms(topo_.node_count());
  for (std::size_t i = 0; i < owner_of.size(); ++i) {
    node_atoms[owner_of[i]].push_back(i);
  }

  // --- CA: per-node anterpolation into sleeved buffers, sleeve export ------
  DistributedGrid q(fine_d);
  const int sleeve = p / 2 + 1;  // paper Sec. IV.A: 4 sleeves for p = 6
  {
  TME_PHASE("charge_assignment");
  std::vector<CaBlockTask> tasks;
  tasks.reserve(topo_.node_count());
  for (std::size_t n = 0; n < topo_.node_count(); ++n) {
    const NodeCoord me = topo_.coord(n);
    CaBlockTask t;
    t.node = n;
    t.x0 = static_cast<long>(fine_d.origin_x(me)) - sleeve;
    t.y0 = static_cast<long>(fine_d.origin_y(me)) - sleeve;
    t.z0 = static_cast<long>(fine_d.origin_z(me)) - sleeve;
    t.ex = local.nx + 2 * sleeve;
    t.ey = local.ny + 2 * sleeve;
    t.ez = local.nz + 2 * sleeve;
    t.positions.reserve(node_atoms[n].size());
    t.charges.reserve(node_atoms[n].size());
    for (const std::size_t i : node_atoms[n]) {
      t.positions.push_back(positions[i]);
      t.charges.push_back(charges[i]);
    }
    tasks.push_back(std::move(t));
  }
  std::vector<ExtendedBlock> buffers = exec.run_ca(std::move(tasks));
  for (std::size_t n = 0; n < topo_.node_count(); ++n) {
    export_sleeves(q, fine_d, topo_.coord(n), buffers[n], "CA sleeve exchange",
                   log, ctx);
  }
  }  // charge_assignment phase

  // --- Grid pipeline --------------------------------------------------------
  const DistributedGrid phi = solve_potential(q, log);

  // --- BI: halo import of potentials, per-node interpolation ---------------
  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});
  double q_phi = 0.0;
  {
  TME_PHASE("back_interpolation");
  std::vector<BiBlockTask> tasks;
  tasks.reserve(topo_.node_count());
  for (std::size_t n = 0; n < topo_.node_count(); ++n) {
    const NodeCoord me = topo_.coord(n);
    BiBlockTask t;
    t.node = n;
    t.halo.reset(static_cast<long>(fine_d.origin_x(me)) - sleeve,
                 static_cast<long>(fine_d.origin_y(me)) - sleeve,
                 static_cast<long>(fine_d.origin_z(me)) - sleeve,
                 local.nx + 2 * sleeve, local.ny + 2 * sleeve,
                 local.nz + 2 * sleeve);
    import_halo(phi, fine_d, me, t.halo, "BI grid transfer", log, ctx);
    t.positions.reserve(node_atoms[n].size());
    t.charges.reserve(node_atoms[n].size());
    for (const std::size_t i : node_atoms[n]) {
      t.positions.push_back(positions[i]);
      t.charges.push_back(charges[i]);
    }
    tasks.push_back(std::move(t));
  }
  std::vector<BiBlockResult> results = exec.run_bi(std::move(tasks));
  for (std::size_t n = 0; n < topo_.node_count(); ++n) {
    for (std::size_t j = 0; j < node_atoms[n].size(); ++j) {
      out.forces[node_atoms[n][j]] = results[n].forces[j];
    }
    q_phi += results[n].q_phi;
  }
  }  // back_interpolation phase
  out.energy_reciprocal = 0.5 * q_phi;
  if (params.subtract_self) {
    double q2 = 0.0;
    for (const double qi : charges) q2 += qi * qi;
    out.energy_self = -constants::kCoulomb * params.alpha / std::sqrt(M_PI) * q2;
  }
  out.energy = out.energy_reciprocal + out.energy_self;
  return out;
}

Grid3d parallel_msm_convolution(const Grid3d& in, const std::vector<double>& taps3d,
                                int cutoff, const TorusTopology& topo,
                                TrafficLog* log) {
  const std::size_t width = static_cast<std::size_t>(2 * cutoff + 1);
  if (taps3d.size() != width * width * width) {
    throw std::invalid_argument("parallel_msm_convolution: taps size");
  }
  const GridDecomposition decomp(in.dims(), topo);
  const DistributedGrid dist = DistributedGrid::distribute(in, decomp);
  const GridDims& local = decomp.local();

  Grid3d out(in.dims());
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    const NodeCoord me = topo.coord(n);
    ExtendedBlock halo;
    halo.reset(static_cast<long>(decomp.origin_x(me)) - cutoff,
               static_cast<long>(decomp.origin_y(me)) - cutoff,
               static_cast<long>(decomp.origin_z(me)) - cutoff,
               local.nx + 2 * static_cast<std::size_t>(cutoff),
               local.ny + 2 * static_cast<std::size_t>(cutoff),
               local.nz + 2 * static_cast<std::size_t>(cutoff));
    import_halo(dist, decomp, me, halo, "MSM dense halo", log);
    for (std::size_t lz = 0; lz < local.nz; ++lz) {
      for (std::size_t ly = 0; ly < local.ny; ++ly) {
        for (std::size_t lx = 0; lx < local.nx; ++lx) {
          const long gx = static_cast<long>(decomp.origin_x(me) + lx);
          const long gy = static_cast<long>(decomp.origin_y(me) + ly);
          const long gz = static_cast<long>(decomp.origin_z(me) + lz);
          double acc = 0.0;
          for (int mz = -cutoff; mz <= cutoff; ++mz) {
            for (int my = -cutoff; my <= cutoff; ++my) {
              for (int mx = -cutoff; mx <= cutoff; ++mx) {
                const double tap =
                    taps3d[(static_cast<std::size_t>(mz + cutoff) * width +
                            static_cast<std::size_t>(my + cutoff)) *
                               width +
                           static_cast<std::size_t>(mx + cutoff)];
                acc += tap * halo.at(gx - mx, gy - my, gz - mz);
              }
            }
          }
          out.at(static_cast<std::size_t>(gx), static_cast<std::size_t>(gy),
                 static_cast<std::size_t>(gz)) = acc;
        }
      }
    }
  }
  return out;
}

}  // namespace tme::par
