#include "par/proc_transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

namespace tme::par {

namespace {

// Drain everything currently readable on `fd` into `buf`.  Returns false on
// EOF or a hard error (peer gone), true while the connection lives.
bool drain_fd(int fd, std::vector<std::uint8_t>& buf) {
  for (;;) {
    std::uint8_t chunk[65536];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      buf.insert(buf.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // ECONNRESET & friends: the peer crashed
  }
}

// Decode every complete frame in `buf` into `q`, counting CRC rejections.
void decode_buffered(std::vector<std::uint8_t>& buf, std::deque<Message>& q,
                     std::uint64_t* crc_rejects) {
  std::size_t off = 0;
  for (;;) {
    Message m;
    std::size_t consumed = 0;
    const DecodeStatus st =
        decode_frame(buf.data() + off, buf.size() - off, m, consumed);
    if (st == DecodeStatus::kNeedMore) break;
    off += consumed;
    if (st == DecodeStatus::kBadCrc) {
      ++*crc_rejects;
      continue;
    }
    q.push_back(std::move(m));
  }
  if (off > 0) buf.erase(buf.begin(), buf.begin() + static_cast<long>(off));
}

int clamp_poll_ms(std::chrono::steady_clock::time_point until) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      until - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(std::min<long long>(left.count(), 50));
}

}  // namespace

// --- FdEndpoint --------------------------------------------------------------

FdEndpoint::~FdEndpoint() {
  if (fd_ >= 0) ::close(fd_);
}

RecvStatus FdEndpoint::recv(Message& out, std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    // Serve from the buffer first.
    std::size_t consumed = 0;
    const DecodeStatus st =
        decode_frame(rxbuf_.data(), rxbuf_.size(), out, consumed);
    if (consumed > 0) {
      rxbuf_.erase(rxbuf_.begin(), rxbuf_.begin() + static_cast<long>(consumed));
    }
    if (st == DecodeStatus::kOk) return RecvStatus::kOk;
    if (st == DecodeStatus::kBadCrc) continue;

    struct pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, clamp_poll_ms(until));
    if (pr < 0 && errno != EINTR) return RecvStatus::kClosed;
    if (pr > 0) {
      if (!drain_fd(fd_, rxbuf_)) {
        // Peer gone — decode whatever arrived before the EOF.
        const DecodeStatus last =
            decode_frame(rxbuf_.data(), rxbuf_.size(), out, consumed);
        if (consumed > 0) {
          rxbuf_.erase(rxbuf_.begin(),
                       rxbuf_.begin() + static_cast<long>(consumed));
        }
        return last == DecodeStatus::kOk ? RecvStatus::kOk : RecvStatus::kClosed;
      }
      continue;
    }
    if (std::chrono::steady_clock::now() >= until) return RecvStatus::kTimeout;
  }
}

bool FdEndpoint::send(const Message& m) {
  const std::vector<std::uint8_t> frame = encode_frame(m, tx_seq_++);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd pfd{fd_, POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      continue;
    }
    return false;  // EPIPE/ECONNRESET: the coordinator is gone
  }
  return true;
}

void FdEndpoint::crash() { ::raise(SIGKILL); }

// --- ProcTransport -----------------------------------------------------------

ProcTransport::ProcTransport(std::size_t workers, Options opts)
    : opts_(std::move(opts)), fault_rng_(opts_.fault.seed) {
  if (workers == 0) {
    throw std::invalid_argument("ProcTransport: need at least one worker");
  }
  if (opts_.worker_bin.empty() && !opts_.fork_child) {
    throw std::invalid_argument(
        "ProcTransport: need a worker binary or a fork_child entry");
  }
  peers_.resize(workers);
  worker_stats_.assign(workers, TransportStats{});
  for (std::size_t w = 0; w < workers; ++w) spawn(w);
}

ProcTransport::~ProcTransport() {
  for (std::size_t w = 0; w < peers_.size(); ++w) {
    Peer& p = peers_[w];
    if (p.fd >= 0) {
      ::close(p.fd);
      p.fd = -1;
    }
    if (p.alive && p.pid > 0) {
      ::kill(p.pid, SIGKILL);
      p.alive = false;
      p.reaped = false;
    }
    if (!p.reaped && p.pid > 0) {
      int status = 0;
      ::waitpid(p.pid, &status, 0);
      p.reaped = true;
    }
  }
}

void ProcTransport::spawn(std::size_t worker) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw TransportError("proc transport: socketpair failed");
  }
  // Generous kernel buffers reduce (but cannot eliminate — pump() handles
  // the rest) the chance of coordinator and worker blocking on each other's
  // full send buffers.
  const int buf_bytes = 1 << 20;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &buf_bytes, sizeof(buf_bytes));
  ::setsockopt(sv[0], SOL_SOCKET, SO_RCVBUF, &buf_bytes, sizeof(buf_bytes));

  const pid_t child = ::fork();
  if (child < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw TransportError("proc transport: fork failed");
  }
  if (child == 0) {
    // Child: keep only our end of our socket.
    ::close(sv[0]);
    for (const Peer& other : peers_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    if (!opts_.worker_bin.empty()) {
      char fd_arg[16];
      std::snprintf(fd_arg, sizeof(fd_arg), "%d", sv[1]);
      if (opts_.context_path.empty()) {
        ::execl(opts_.worker_bin.c_str(), opts_.worker_bin.c_str(), "--fd",
                fd_arg, static_cast<char*>(nullptr));
      } else {
        ::execl(opts_.worker_bin.c_str(), opts_.worker_bin.c_str(), "--fd",
                fd_arg, "--ctx", opts_.context_path.c_str(),
                static_cast<char*>(nullptr));
      }
      _exit(127);  // exec failed
    }
    opts_.fork_child(sv[1]);
    // _exit (not exit): a forked worker must not run the parent's atexit
    // handlers or LSan's end-of-process checks.
    _exit(0);
  }
  ::close(sv[1]);
  Peer& p = peers_[worker];
  p.pid = child;
  p.fd = sv[0];
  p.alive = true;
  p.reaped = false;
  p.have_status = false;
  p.exit_status = 0;
  p.rxbuf.clear();
  p.rxq.clear();
  p.tx_seq = 0;
}

void ProcTransport::reap(std::size_t worker, bool block) {
  Peer& p = peers_[worker];
  if (p.reaped || p.pid <= 0) return;
  int status = 0;
  const pid_t r = ::waitpid(p.pid, &status, block ? 0 : WNOHANG);
  if (r == p.pid) {
    p.reaped = true;
    p.have_status = true;
    p.exit_status = status;
  } else if (r < 0 && errno == ECHILD) {
    p.reaped = true;
  }
}

void ProcTransport::mark_dead(std::size_t worker) {
  Peer& p = peers_[worker];
  if (p.fd >= 0) {
    ::close(p.fd);
    p.fd = -1;
  }
  p.alive = false;
  reap(worker, false);
}

void ProcTransport::pump(int timeout_ms, int want_writable_fd, bool* writable) {
  if (writable != nullptr) *writable = false;
  std::vector<struct pollfd> pfds;
  std::vector<std::size_t> owner;
  for (std::size_t w = 0; w < peers_.size(); ++w) {
    if (peers_[w].fd < 0) continue;
    short events = POLLIN;
    if (peers_[w].fd == want_writable_fd) events |= POLLOUT;
    pfds.push_back({peers_[w].fd, events, 0});
    owner.push_back(w);
  }
  if (pfds.empty()) return;
  const int pr = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (pr <= 0) return;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    const std::size_t w = owner[i];
    Peer& p = peers_[w];
    if (pfds[i].revents & POLLOUT) {
      if (writable != nullptr) *writable = true;
    }
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      // Read before honouring HUP: the kernel may hold final bytes (a last
      // result, a Bye) sent just before the peer died.
      const bool open = drain_fd(p.fd, p.rxbuf);
      std::uint64_t rejects = 0;
      decode_buffered(p.rxbuf, p.rxq, &rejects);
      stats_.crc_rejects += rejects;
      per_worker(w).crc_rejects += rejects;
      if (!open) mark_dead(w);
    }
  }
}

bool ProcTransport::alive(std::size_t worker) const {
  return peers_[worker].alive;
}

pid_t ProcTransport::pid(std::size_t worker) const {
  return peers_[worker].pid;
}

void ProcTransport::send(std::size_t worker, const Message& m) {
  Peer& p = peers_[worker];
  if (!p.alive) {
    throw PeerDead(worker, "proc transport: worker " + std::to_string(worker) +
                               " is gone");
  }
  std::vector<std::uint8_t> frame = encode_frame(m, p.tx_seq++);
  if (opts_.fault.delay_ms > 0) {
    // Outbound leg only: asymmetric delay for the clock-offset drills.
    std::this_thread::sleep_for(std::chrono::milliseconds(opts_.fault.delay_ms));
  }
  if (opts_.fault.active()) {
    if (opts_.fault.drop_rate > 0.0 &&
        fault_rng_.uniform() < opts_.fault.drop_rate) {
      ++stats_.frames_dropped;
      ++per_worker(worker).frames_dropped;
      return;
    }
    if (opts_.fault.corrupt_rate > 0.0 &&
        fault_rng_.uniform() < opts_.fault.corrupt_rate) {
      const std::size_t bit = static_cast<std::size_t>(
          fault_rng_.next_u64() % ((frame.size() - kFrameHeaderBytes) * 8));
      frame[kFrameHeaderBytes + bit / 8] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      ++stats_.frames_corrupted;
      ++per_worker(worker).frames_corrupted;
    }
  }
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(p.fd, frame.data() + off, frame.size() - off,
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // The worker's receive buffer is full — almost certainly because it is
      // busy sending us results.  Drain every socket while waiting for
      // writability; this breaks the mutual-blocking cycle.
      pump(20, p.fd, nullptr);
      if (!p.alive) {
        throw PeerDead(worker, "proc transport: worker " +
                                   std::to_string(worker) + " died mid-send");
      }
      continue;
    }
    mark_dead(worker);
    throw PeerDead(worker, "proc transport: send to worker " +
                               std::to_string(worker) + " failed: " +
                               std::strerror(errno));
  }
  stats_.bytes_sent += frame.size();
  ++stats_.messages_sent;
  TransportStats& ws = per_worker(worker);
  ws.bytes_sent += frame.size();
  ++ws.messages_sent;
}

RecvStatus ProcTransport::recv(std::size_t worker, Message& out,
                               std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    Peer& p = peers_[worker];
    if (!p.rxq.empty()) {
      out = std::move(p.rxq.front());
      p.rxq.pop_front();
      const std::uint64_t frame_bytes =
          kFrameHeaderBytes + out.payload.size() + kFrameTrailerBytes;
      ++stats_.messages_received;
      stats_.bytes_received += frame_bytes;
      TransportStats& ws = per_worker(worker);
      ++ws.messages_received;
      ws.bytes_received += frame_bytes;
      return RecvStatus::kOk;
    }
    if (!p.alive) return RecvStatus::kClosed;
    if (std::chrono::steady_clock::now() >= until) return RecvStatus::kTimeout;
    pump(clamp_poll_ms(until));
  }
}

std::optional<Transport::AnyResult> ProcTransport::recv_any(
    const std::vector<char>& want, Message& out,
    std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    for (std::size_t w = 0; w < peers_.size(); ++w) {
      if (w >= want.size() || !want[w]) continue;
      Peer& p = peers_[w];
      if (!p.rxq.empty()) {
        out = std::move(p.rxq.front());
        p.rxq.pop_front();
        const std::uint64_t frame_bytes =
            kFrameHeaderBytes + out.payload.size() + kFrameTrailerBytes;
        ++stats_.messages_received;
        stats_.bytes_received += frame_bytes;
        TransportStats& ws = per_worker(w);
        ++ws.messages_received;
        ws.bytes_received += frame_bytes;
        return AnyResult{w, RecvStatus::kOk};
      }
    }
    for (std::size_t w = 0; w < peers_.size(); ++w) {
      if (w >= want.size() || !want[w]) continue;
      if (!peers_[w].alive) return AnyResult{w, RecvStatus::kClosed};
    }
    if (std::chrono::steady_clock::now() >= until) return std::nullopt;
    pump(clamp_poll_ms(until));
  }
}

void ProcTransport::kill(std::size_t worker) {
  terminate(worker, opts_.term_grace_ms);
}

void ProcTransport::terminate(std::size_t worker, long grace_ms) {
  Peer& p = peers_[worker];
  if (p.alive && p.pid > 0 && grace_ms > 0) {
    // Graceful path: ask first, and keep draining sockets while waiting so
    // the worker's final result and kBye are not lost with the connection.
    ::kill(p.pid, SIGTERM);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(grace_ms);
    while (std::chrono::steady_clock::now() < until) {
      reap(worker, false);
      if (p.reaped) break;
      pump(10);
    }
  }
  if (p.pid > 0 && !p.reaped) ::kill(p.pid, SIGKILL);
  // Drain any final bytes, then tear the connection down.
  if (p.fd >= 0) {
    drain_fd(p.fd, p.rxbuf);
    std::uint64_t rejects = 0;
    decode_buffered(p.rxbuf, p.rxq, &rejects);
    stats_.crc_rejects += rejects;
    per_worker(worker).crc_rejects += rejects;
  }
  mark_dead(worker);
  reap(worker, true);
}

void ProcTransport::set_fault_policy(const TransportFaultPolicy& fault) {
  opts_.fault = fault;
  fault_rng_ = Rng(fault.seed);
}

std::optional<int> ProcTransport::exit_status(std::size_t worker) const {
  const Peer& p = peers_[worker];
  if (!p.have_status) return std::nullopt;
  return p.exit_status;
}

bool ProcTransport::exited_cleanly(std::size_t worker) const {
  const Peer& p = peers_[worker];
  return p.have_status && WIFEXITED(p.exit_status) &&
         WEXITSTATUS(p.exit_status) == 0;
}

void ProcTransport::respawn(std::size_t worker) {
  Peer& p = peers_[worker];
  if (p.alive) kill(worker);
  reap(worker, true);
  p.rxbuf.clear();
  p.rxq.clear();
  spawn(worker);
}

}  // namespace tme::par
