// Byte-level serialisation for transport payloads.
//
// Little-endian, fixed-width writes of plain scalars and double arrays.
// The Reader throws TransportError on any overrun, so a truncated or
// malformed payload is rejected loudly instead of read as garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/vec3.hpp"

namespace tme::par::wire {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void raw(const void* data, std::size_t len) {
    const std::size_t old = bytes_.size();
    bytes_.resize(old + len);
    std::memcpy(bytes_.data() + old, data, len);
  }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void doubles(const std::vector<double>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }
  void vec3s(const std::vector<Vec3>& v) {
    u64(v.size());
    for (const Vec3& e : v) {
      f64(e.x);
      f64(e.y);
      f64(e.z);
    }
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit Reader(const std::vector<std::uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  void raw(void* out, std::size_t len) {
    if (pos_ + len > len_) throw Error("wire: truncated payload");
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }
  std::uint16_t u16() { return value<std::uint16_t>(); }
  std::uint32_t u32() { return value<std::uint32_t>(); }
  std::uint64_t u64() { return value<std::uint64_t>(); }
  std::int64_t i64() { return value<std::int64_t>(); }
  double f64() { return value<double>(); }
  // Element-count sanity bound: a corrupted length must fail here, not in a
  // multi-gigabyte resize.
  std::size_t count(std::uint64_t max_elems) {
    const std::uint64_t n = u64();
    if (n > max_elems) throw Error("wire: element count out of range");
    return static_cast<std::size_t>(n);
  }
  std::vector<double> doubles() {
    const std::size_t n = count(remaining() / sizeof(double) + 1);
    if (n * sizeof(double) > remaining()) throw Error("wire: truncated payload");
    std::vector<double> v(n);
    raw(v.data(), n * sizeof(double));
    return v;
  }
  std::vector<Vec3> vec3s() {
    const std::size_t n = count(remaining() / (3 * sizeof(double)) + 1);
    std::vector<Vec3> v(n);
    for (Vec3& e : v) {
      e.x = f64();
      e.y = f64();
      e.z = f64();
    }
    return v;
  }
  std::size_t remaining() const { return len_ - pos_; }
  bool done() const { return pos_ == len_; }

 private:
  template <typename T>
  T value() {
    T v;
    raw(&v, sizeof(T));
    return v;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace tme::par::wire
