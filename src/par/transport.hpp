// Message transport between the TME coordinator and its workers.
//
// Every message travels in a CRC-32-framed envelope with a per-connection
// sequence number — the same detect-and-retransmit discipline the
// hw/network_model gives the simulated torus links, now applied to real
// inter-process traffic.  Two backends implement the interface:
//
//   InProcTransport   workers are threads, channels are in-memory byte
//                     queues.  The frames still go through the full
//                     encode/CRC/decode path, and a seeded fault policy can
//                     drop or corrupt coordinator->worker frames to exercise
//                     the retransmission machinery deterministically.
//   ProcTransport     workers are real processes (fork, or fork+exec of the
//                     tme_worker binary) over Unix-domain socketpairs.
//                     Deadlines run on poll(); a SIGKILLed worker surfaces
//                     as EOF/POLLHUP within one poll interval.
//
// The coordinator-side Transport owns one connection per worker; the
// worker-side Endpoint is the other end of exactly one connection.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace tme::par {

enum class MsgType : std::uint16_t {
  kInit = 1,   // coordinator -> worker: pipeline context
  kInitAck,    // worker -> coordinator: echo of the context CRC
  kTask,       // coordinator -> worker: one encoded node task
  kResult,     // worker -> coordinator: the task's result
  kPing,       // heartbeat request
  kPong,       // heartbeat reply (echoes the ping payload)
  kShutdown,   // coordinator -> worker: exit cleanly
  kBye,        // worker -> coordinator: acknowledging shutdown
  kTelemetry,  // worker -> coordinator: sealed trace chunk + metrics snapshot
};

struct Message {
  MsgType type = MsgType::kPing;
  std::uint64_t seq = 0;  // stamped by the sending side's connection
  std::vector<std::uint8_t> payload;
};

// Frame layout: u32 magic | u16 type | u16 reserved | u64 seq |
//               u64 payload_len | payload | u32 CRC-32 over all of the above.
inline constexpr std::uint32_t kFrameMagic = 0x544D4D47u;  // "TMMG"
inline constexpr std::size_t kFrameHeaderBytes = 24;
inline constexpr std::size_t kFrameTrailerBytes = 4;
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 31;

class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown by send() when the peer's connection is gone (crashed worker).
class PeerDead : public TransportError {
 public:
  PeerDead(std::size_t worker, const std::string& what)
      : TransportError(what), worker_(worker) {}
  std::size_t worker() const { return worker_; }

 private:
  std::size_t worker_;
};

std::vector<std::uint8_t> encode_frame(const Message& m, std::uint64_t seq);

enum class DecodeStatus { kNeedMore, kOk, kBadCrc };

// Tries to decode one frame from the front of [data, data+len).  On kOk the
// message is in `out`; on kOk and kBadCrc, `consumed` bytes must be dropped
// from the stream (a CRC-rejected frame is discarded whole, keeping the
// stream in sync).  Throws TransportError on a magic/length violation the
// stream cannot recover from.
DecodeStatus decode_frame(const std::uint8_t* data, std::size_t len,
                          Message& out, std::size_t& consumed);

struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t crc_rejects = 0;       // inbound frames discarded on CRC
  std::uint64_t frames_dropped = 0;    // outbound frames eaten by fault policy
  std::uint64_t frames_corrupted = 0;  // outbound frames bit-flipped by policy
};

enum class RecvStatus { kOk, kTimeout, kClosed };

// Worker side of one coordinator<->worker connection.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual RecvStatus recv(Message& out, std::chrono::milliseconds deadline) = 0;
  // Returns false when the peer is gone (no exception: a dying coordinator
  // just means the worker exits).
  virtual bool send(const Message& m) = 0;
  // Abrupt self-inflicted death for drills: SIGKILL in a process worker,
  // hard channel teardown in an in-proc worker.
  virtual void crash() = 0;
};

// Seeded coordinator->worker frame mangling, for deterministic
// retransmission drills on either backend.
struct TransportFaultPolicy {
  std::uint64_t seed = 2021;
  double drop_rate = 0.0;     // frame silently discarded before delivery
  double corrupt_rate = 0.0;  // one payload bit flipped; receiver CRC-rejects
  // Added outbound latency per coordinator->worker frame.  Because only one
  // leg of the round trip is delayed this injects *asymmetric* path delay —
  // exactly the adversary the clock-offset estimator's RTT/2 error bound is
  // tested against.
  long delay_ms = 0;
  bool active() const { return drop_rate > 0.0 || corrupt_rate > 0.0; }
};

// Coordinator side: one connection per worker, deadline-driven receives.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual const char* name() const = 0;
  virtual std::size_t worker_count() const = 0;
  virtual bool alive(std::size_t worker) const = 0;
  // Throws PeerDead if the worker's connection is (or becomes) closed.
  virtual void send(std::size_t worker, const Message& m) = 0;
  virtual RecvStatus recv(std::size_t worker, Message& out,
                          std::chrono::milliseconds deadline) = 0;

  struct AnyResult {
    std::size_t worker = 0;
    RecvStatus status = RecvStatus::kOk;  // kOk (out valid) or kClosed
  };
  // Waits for a message from any worker with want[w] != 0.  Reports a closed
  // wanted connection (queue drained) as kClosed — the caller must clear
  // want[w] after handling it or the same report repeats.  nullopt on
  // deadline expiry.
  virtual std::optional<AnyResult> recv_any(const std::vector<char>& want,
                                            Message& out,
                                            std::chrono::milliseconds deadline) = 0;

  // Hard-kills the worker (SIGKILL / channel teardown).  Queued inbound
  // messages remain readable.
  virtual void kill(std::size_t worker) = 0;
  // Replaces a dead worker with a fresh one on a fresh connection (the new
  // worker is blank: the caller must re-send Init).
  virtual void respawn(std::size_t worker) = 0;

  // Swaps the coordinator->worker frame-mangling policy mid-run and reseeds
  // its RNG, so the chaos harness can open and close packet-fault windows at
  // scheduled steps and a replay mangles the same frames.  Must be called
  // from the coordinator thread (the same thread that calls send).
  virtual void set_fault_policy(const TransportFaultPolicy& fault) {
    (void)fault;
  }

  const TransportStats& stats() const { return stats_; }

  // The same counters split per worker connection, so the fleet can export
  // per-worker traffic/corruption gauges into the metrics registry.  A
  // worker index the backend never initialised reads as all-zero.
  const TransportStats& worker_stats(std::size_t worker) const {
    static const TransportStats kZero{};
    return worker < worker_stats_.size() ? worker_stats_[worker] : kZero;
  }

 protected:
  TransportStats stats_;
  std::vector<TransportStats> worker_stats_;

  // Bumps both the aggregate and the per-worker row (growing it on demand).
  TransportStats& per_worker(std::size_t worker) {
    if (worker >= worker_stats_.size()) worker_stats_.resize(worker + 1);
    return worker_stats_[worker];
  }
};

// In-process backend: one thread per worker, lock-protected frame queues.
class InProcTransport : public Transport {
 public:
  using WorkerMain = std::function<void(Endpoint&)>;

  InProcTransport(std::size_t workers, WorkerMain worker_main,
                  TransportFaultPolicy fault = {});
  ~InProcTransport() override;

  const char* name() const override { return "inproc"; }
  std::size_t worker_count() const override;
  bool alive(std::size_t worker) const override;
  void send(std::size_t worker, const Message& m) override;
  RecvStatus recv(std::size_t worker, Message& out,
                  std::chrono::milliseconds deadline) override;
  std::optional<AnyResult> recv_any(const std::vector<char>& want, Message& out,
                                    std::chrono::milliseconds deadline) override;
  void kill(std::size_t worker) override;
  void respawn(std::size_t worker) override;
  void set_fault_policy(const TransportFaultPolicy& fault) override;

  struct State;  // shared with the worker-side endpoints

 private:
  void spawn(std::size_t worker);
  std::shared_ptr<State> state_;
  WorkerMain worker_main_;
  TransportFaultPolicy fault_;
};

}  // namespace tme::par
