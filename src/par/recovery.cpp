#include "par/recovery.hpp"

#include <deque>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace tme::par {

namespace {

// Fault-aware BFS distances from `src` to every node of the surviving
// machine (kUnreachable for dead / cut-off nodes).
std::vector<std::size_t> bfs_distances(const TorusTopology& topo,
                                       const FaultInjector& faults,
                                       std::size_t src) {
  std::vector<std::size_t> dist(topo.node_count(), hw::kUnreachable);
  dist[src] = 0;
  std::deque<std::size_t> frontier{src};
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    for (const hw::NodeCoord& nb : topo.neighbours(topo.coord(cur))) {
      const std::size_t ni = topo.index(nb);
      if (dist[ni] != hw::kUnreachable) continue;
      if (faults.node_dead(ni) || faults.link_dead(cur, ni)) continue;
      dist[ni] = dist[cur] + 1;
      frontier.push_back(ni);
    }
  }
  return dist;
}

// Does the healthy dimension-ordered route between two alive nodes cross
// dead hardware?
bool route_broken(const TorusTopology& topo, const FaultInjector& faults,
                  std::size_t from, std::size_t to) {
  const std::vector<hw::NodeCoord> path =
      topo.route(topo.coord(from), topo.coord(to));
  for (std::size_t i = 1; i < path.size(); ++i) {
    const std::size_t prev = topo.index(path[i - 1]);
    const std::size_t cur = topo.index(path[i]);
    if (faults.link_dead(prev, cur)) return true;
    if (i + 1 < path.size() && faults.node_dead(cur)) return true;
  }
  return false;
}

}  // namespace

RecoveryPlan::RecoveryPlan(const TorusTopology& topo, const FaultInjector& faults)
    : topo_(&topo), faults_(&faults) {
  const std::size_t n = topo.node_count();

  const hw::PartitionReport part = topo.partition_report(faults);
  if (part.root == hw::kUnreachable) {
    throw std::runtime_error("RecoveryPlan: every node is dead");
  }
  if (!part.unreachable.empty()) {
    throw std::runtime_error("RecoveryPlan: " + std::to_string(part.unreachable.size()) +
                             " alive nodes are cut off from the surviving partition");
  }
  dead_count_ = part.dead.size();

  // Host mapping: alive nodes host themselves; a dead node's blocks go to
  // the nearest alive node (healthy-torus metric; ties to the lowest index).
  host_.resize(n);
  for (std::size_t node = 0; node < n; ++node) {
    if (!faults.node_dead(node)) {
      host_[node] = node;
      continue;
    }
    std::size_t best = hw::kUnreachable;
    std::size_t best_hops = hw::kUnreachable;
    const hw::NodeCoord c = topo.coord(node);
    for (std::size_t candidate = 0; candidate < n; ++candidate) {
      if (faults.node_dead(candidate)) continue;
      const std::size_t h = topo.hops(c, topo.coord(candidate));
      if (h < best_hops) {
        best_hops = h;
        best = candidate;
      }
    }
    host_[node] = best;
  }

  // Broken dimension-ordered routes between distinct host pairs, symmetric
  // in direction (the adaptive router detours both ways if either healthy
  // route crosses dead hardware).
  std::vector<char> host_broken(n * n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    if (faults.node_dead(p)) continue;
    for (std::size_t q = p + 1; q < n; ++q) {
      if (faults.node_dead(q)) continue;
      const bool broken = route_broken(topo, faults, p, q) ||
                          route_broken(topo, faults, q, p);
      host_broken[p * n + q] = host_broken[q * n + p] = broken ? 1 : 0;
      if (broken) ++reroute_count_;
    }
  }

  // All-pairs fault-aware distances between hosts: one BFS per surviving
  // node, shared by every logical pair it hosts.
  hop_table_.assign(n * n, 0);
  reroute_table_.assign(n * n, 0);
  std::vector<std::vector<std::size_t>> dist_from(n);
  for (std::size_t from = 0; from < n; ++from) {
    const std::size_t pf = host_[from];
    if (dist_from[pf].empty()) dist_from[pf] = bfs_distances(topo, faults, pf);
    const std::vector<std::size_t>& dist = dist_from[pf];
    for (std::size_t to = 0; to < n; ++to) {
      const std::size_t pt = host_[to];
      if (pf == pt) continue;
      hop_table_[from * n + to] = dist[pt];
      reroute_table_[from * n + to] = host_broken[pf * n + pt];
    }
  }

  TME_GAUGE_SET("par_tme/dead_nodes", dead_count_);
  TME_GAUGE_SET("par_tme/reroutes", reroute_count_);
}

std::size_t RecoveryPlan::hops(std::size_t from, std::size_t to) const {
  return hop_table_[from * topo_->node_count() + to];
}

bool RecoveryPlan::rerouted(std::size_t from, std::size_t to) const {
  return reroute_table_[from * topo_->node_count() + to] != 0;
}

}  // namespace tme::par
