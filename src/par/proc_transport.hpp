// Multi-process transport backend: real worker processes over Unix-domain
// socketpairs.
//
// Workers are spawned either by fork() (the worker loop runs in the child —
// the default for tests, no binary needed) or by fork()+exec() of the
// standalone `tme_worker` binary with the socket on an inherited fd.  The
// coordinator multiplexes every connection through poll(), so deadlines are
// real wall-clock deadlines and a SIGKILLed worker surfaces as POLLHUP/EOF
// on its socket — crash *detection*, not simulation.
//
// Forked children never touch the thread pool (see par/node_kernels.hpp) and
// terminate with _exit() so they cannot run the parent's atexit handlers or
// leak-check machinery.
#pragma once

#include <sys/types.h>

#include <deque>
#include <optional>

#include "par/transport.hpp"
#include "util/rng.hpp"

namespace tme::par {

// Worker side of one fd-backed connection; also used by the tme_worker
// binary (exec mode), which finds its socket on an inherited fd.
class FdEndpoint : public Endpoint {
 public:
  explicit FdEndpoint(int fd) : fd_(fd) {}
  ~FdEndpoint() override;

  RecvStatus recv(Message& out, std::chrono::milliseconds deadline) override;
  bool send(const Message& m) override;
  // Real abrupt death: SIGKILL to self.  The coordinator sees EOF.
  void crash() override;

 private:
  int fd_;
  std::vector<std::uint8_t> rxbuf_;
  std::uint64_t tx_seq_ = 0;
};

class ProcTransport : public Transport {
 public:
  struct Options {
    // Non-empty: fork+exec this binary with `--fd N`.  Empty: plain fork,
    // running `fork_child(fd)` in the child (which must not return).
    std::string worker_bin;
    std::function<void(int fd)> fork_child;
    TransportFaultPolicy fault;
    // >0: kill() sends SIGTERM first and gives the worker this long to
    // drain and exit on its own before escalating to SIGKILL.  0 keeps the
    // abrupt SIGKILL semantics the crash drills rely on.
    long term_grace_ms = 0;
    // Exec-mode workers get `--ctx <path>` so a SIGTERM drain can flush
    // their sealed context; empty omits the flag.
    std::string context_path;
  };

  ProcTransport(std::size_t workers, Options opts);
  ~ProcTransport() override;

  const char* name() const override { return "proc"; }
  std::size_t worker_count() const override { return peers_.size(); }
  bool alive(std::size_t worker) const override;
  void send(std::size_t worker, const Message& m) override;
  RecvStatus recv(std::size_t worker, Message& out,
                  std::chrono::milliseconds deadline) override;
  std::optional<AnyResult> recv_any(const std::vector<char>& want, Message& out,
                                    std::chrono::milliseconds deadline) override;
  // With term_grace_ms == 0: SIGKILL + reap, the real thing, usable as a
  // drill trigger from tests.  With a grace period: SIGTERM, wait for a
  // voluntary exit up to the deadline (draining sockets meanwhile, so the
  // final result and kBye still land), then SIGKILL whatever remains.
  void kill(std::size_t worker) override;
  // kill() with an explicit grace period, overriding Options::term_grace_ms
  // for this one call.
  void terminate(std::size_t worker, long grace_ms);
  void respawn(std::size_t worker) override;
  void set_fault_policy(const TransportFaultPolicy& fault) override;

  pid_t pid(std::size_t worker) const;

  // Raw waitpid status of the worker's most recently reaped process, when
  // one has been collected.  `exited_cleanly` distinguishes "asked to stop"
  // (voluntary exit 0 after a SIGTERM drain) from "crashed" (signal death
  // or a nonzero exit).
  std::optional<int> exit_status(std::size_t worker) const;
  bool exited_cleanly(std::size_t worker) const;

 private:
  struct Peer {
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    bool reaped = true;
    bool have_status = false;
    int exit_status = 0;
    std::vector<std::uint8_t> rxbuf;
    std::deque<Message> rxq;
    std::uint64_t tx_seq = 0;
  };

  void spawn(std::size_t worker);
  void mark_dead(std::size_t worker);
  void reap(std::size_t worker, bool block);
  // Drains every readable socket into the per-peer queues; optionally waits
  // up to `timeout_ms` for readiness, watching `want_writable_fd` for
  // writability (sets *writable).
  void pump(int timeout_ms, int want_writable_fd = -1, bool* writable = nullptr);

  std::vector<Peer> peers_;
  Options opts_;
  Rng fault_rng_{2021};
};

}  // namespace tme::par
