#include "par/health.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace tme::par {

HealthMonitor::HealthMonitor(const TorusTopology& topo, FaultInjector& faults,
                             HealthConfig config)
    : topo_(&topo),
      faults_(&faults),
      config_(config),
      violations_(topo.node_count(), 0),
      quarantined_(topo.node_count(), 0),
      refused_(topo.node_count(), 0) {
  if (config_.violation_threshold < 1) {
    throw std::invalid_argument("HealthMonitor: threshold must be >= 1");
  }
}

bool HealthMonitor::report_violation(std::size_t node) {
  if (node >= violations_.size()) return false;
  ++violations_[node];
  TME_COUNTER_ADD("par/health/violations", 1);
  if (quarantined_[node] != 0 || refused_[node] != 0) return false;
  if (violations_[node] < static_cast<std::uint64_t>(config_.violation_threshold)) {
    return false;
  }
  // Trial on a copy first: kills are irreversible, so make sure the machine
  // stays connected (and populated) before touching the shared injector.
  FaultInjector trial(*faults_);
  trial.kill_node(node);
  if (trial.dead_nodes().size() >= topo_->node_count()) {
    refused_[node] = 1;
    ++refused_count_;
    log_structured(LogLevel::kWarn, "health_quarantine_refused",
                   {{"node", std::to_string(node)},
                    {"reason", "last survivor"}});
    TME_TRACE_INSTANT_D("quarantine refused",
                        "node " + std::to_string(node) + " is last survivor");
    return false;
  }
  try {
    RecoveryPlan probe(*topo_, trial);
  } catch (const std::runtime_error&) {
    refused_[node] = 1;
    ++refused_count_;
    log_structured(LogLevel::kWarn, "health_quarantine_refused",
                   {{"node", std::to_string(node)},
                    {"reason", "machine would partition"}});
    TME_TRACE_INSTANT_D("quarantine refused",
                        "node " + std::to_string(node) +
                            " would partition the machine");
    TME_COUNTER_ADD("par/health/quarantines_refused", 1);
    return false;
  }
  faults_->kill_node(node);
  plan_ = std::make_unique<RecoveryPlan>(*topo_, *faults_);
  quarantined_[node] = 1;
  ++quarantine_count_;
  log_structured(LogLevel::kWarn, "health_quarantine",
                 {{"node", std::to_string(node)},
                  {"violations", std::to_string(violations_[node])},
                  {"host", std::to_string(plan_->host(node))}});
  TME_TRACE_INSTANT_D("node quarantined",
                      "node " + std::to_string(node) + " after " +
                          std::to_string(violations_[node]) +
                          " ABFT violations, re-homed to node " +
                          std::to_string(plan_->host(node)));
  TME_COUNTER_ADD("par/health/quarantines", 1);
  return true;
}

std::uint64_t HealthMonitor::violations(std::size_t node) const {
  return node < violations_.size() ? violations_[node] : 0;
}

bool HealthMonitor::quarantined(std::size_t node) const {
  return node < quarantined_.size() && quarantined_[node] != 0;
}

std::size_t attribute_conv_line(const GridDecomposition& decomp, int axis,
                                int line_index) {
  const GridDims& g = decomp.global();
  // Perpendicular extents in the order check_conv_axis_lines flattens them:
  // line = b * na + a.
  std::size_t na = 0;
  switch (axis) {
    case 0: na = g.ny; break;
    case 1: na = g.nx; break;
    default: na = g.nx; break;
  }
  const auto line = static_cast<std::size_t>(line_index < 0 ? 0 : line_index);
  const std::size_t a = na == 0 ? 0 : line % na;
  const std::size_t b = na == 0 ? 0 : line / na;
  long gx = 0, gy = 0, gz = 0;
  switch (axis) {
    case 0: gy = static_cast<long>(a); gz = static_cast<long>(b); break;
    case 1: gx = static_cast<long>(a); gz = static_cast<long>(b); break;
    default: gx = static_cast<long>(a); gy = static_cast<long>(b); break;
  }
  return decomp.topology().index(decomp.owner(gx, gy, gz));
}

}  // namespace tme::par
