// Online health monitoring: promote repeated ABFT violations into dynamic
// re-homing of a suspect node's work.
//
// The guarded pipeline (hw/sdc_guard) detects and repairs individual upsets;
// this monitor watches the *pattern*.  A node whose datapath keeps tripping
// invariants is not suffering transient upsets — it is broken hardware — so
// after `violation_threshold` attributed violations the monitor quarantines
// it: the node is killed in the shared FaultInjector and a fresh
// RecoveryPlan re-homes its grid blocks onto surviving torus neighbours,
// mid-run, without restarting the simulation.  Quarantine is refused (and
// the node keeps running, still counted) when killing it would disconnect
// the machine or leave no survivors — a trial plan on a copy of the fault
// set decides before the real injector is touched, since kills cannot be
// undone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "par/decomposition.hpp"
#include "par/recovery.hpp"

namespace tme::par {

struct HealthConfig {
  // Attributed violations before a node is quarantined.
  int violation_threshold = 3;
};

class HealthMonitor {
 public:
  // `topo` and `faults` must outlive the monitor; `faults` is the machine's
  // shared injector, so a quarantine is visible to routing and traffic
  // accounting immediately.
  HealthMonitor(const TorusTopology& topo, FaultInjector& faults,
                HealthConfig config = {});

  // Records one ABFT violation attributed to `node`.  Returns true when this
  // report pushed the node over the threshold and it was quarantined (plan()
  // is rebuilt).  Already-quarantined and out-of-range nodes are counted but
  // never re-quarantined.
  bool report_violation(std::size_t node);

  std::uint64_t violations(std::size_t node) const;
  bool quarantined(std::size_t node) const;
  std::size_t quarantine_count() const { return quarantine_count_; }
  std::size_t refused_count() const { return refused_count_; }

  // The re-homing plan after the latest quarantine; null until the first.
  const RecoveryPlan* plan() const { return plan_.get(); }

 private:
  const TorusTopology* topo_;
  FaultInjector* faults_;
  HealthConfig config_;
  std::vector<std::uint64_t> violations_;
  std::vector<char> quarantined_;
  std::vector<char> refused_;  // quarantine attempted and rejected
  std::size_t quarantine_count_ = 0;
  std::size_t refused_count_ = 0;
  std::unique_ptr<RecoveryPlan> plan_;
};

// Attribution helper for the guarded pipeline's per-line convolution
// violations: maps the flattened perpendicular line index of a conv_line
// violation on `level_dims` to the node owning the line's first cell under
// an even block decomposition of that level grid.
std::size_t attribute_conv_line(const GridDecomposition& decomp, int axis,
                                int line_index);

}  // namespace tme::par
