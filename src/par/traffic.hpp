// Message-traffic accounting for the distributed TME execution.
//
// Every inter-node transfer in the parallel pipeline is logged here, so the
// paper's Sec. III.C communication-cost formulas can be checked against
// *measured* message volumes rather than estimates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tme::par {

struct PhaseTraffic {
  std::string phase;
  std::size_t messages = 0;
  std::size_t words = 0;     // grid values moved (4-byte words on the chip)
  std::size_t max_hops = 0;  // longest torus route used in the phase
  // Sum of words x hops over the phase's transfers: the link-level load the
  // per-link telemetry (hw/link_stats) must conserve — on a healthy machine
  // sum(per-link bytes) == 4 x total_word_hops().
  std::size_t word_hops = 0;
};

class TrafficLog {
 public:
  // Accumulates into the named phase (created on first use, order kept).
  void add(const std::string& phase, std::size_t messages, std::size_t words,
           std::size_t hops);

  const std::vector<PhaseTraffic>& phases() const { return phases_; }
  std::size_t total_words() const;
  std::size_t total_messages() const;
  std::size_t total_word_hops() const;

  // Words of the phase, 0 if absent.
  std::size_t words_in(const std::string& phase) const;

  std::string report() const;

 private:
  std::vector<PhaseTraffic> phases_;
};

}  // namespace tme::par
