#include "par/node_kernels.hpp"

#include <stdexcept>

#include "spline/bspline.hpp"

namespace tme::par {

namespace {

// Shift the spline base so the whole support lands inside [lo, hi) (at most
// one period in either direction).
long unwrap_base(int p, long base, long lo, long hi, long period) {
  if (base < lo) base += period;
  if (base + p > hi) base -= period;
  if (base < lo || base + p > hi) {
    throw std::logic_error("parallel CA/BI: atom support exceeds sleeve");
  }
  return base;
}

}  // namespace

Grid3d restrict_block(const ExtendedBlock& halo, long ox, long oy, long oz,
                      const GridDims& out_dims, int p,
                      std::span<const double> j_coeff) {
  const int half_p = p / 2;
  Grid3d out(out_dims);
  for (std::size_t mz = 0; mz < out_dims.nz; ++mz) {
    for (std::size_t my = 0; my < out_dims.ny; ++my) {
      for (std::size_t mx = 0; mx < out_dims.nx; ++mx) {
        const long gx = 2 * (ox + static_cast<long>(mx));
        const long gy = 2 * (oy + static_cast<long>(my));
        const long gz = 2 * (oz + static_cast<long>(mz));
        double acc = 0.0;
        for (int kz = -half_p; kz <= half_p; ++kz) {
          const double jz = j_coeff[static_cast<std::size_t>(kz + half_p)];
          for (int ky = -half_p; ky <= half_p; ++ky) {
            const double jyz = jz * j_coeff[static_cast<std::size_t>(ky + half_p)];
            for (int kx = -half_p; kx <= half_p; ++kx) {
              acc += jyz * j_coeff[static_cast<std::size_t>(kx + half_p)] *
                     halo.at(gx + kx, gy + ky, gz + kz);
            }
          }
        }
        out.at(mx, my, mz) = acc;
      }
    }
  }
  return out;
}

Grid3d prolong_block(const ExtendedBlock& halo, long ox, long oy, long oz,
                     const GridDims& out_dims, int p,
                     std::span<const double> j_coeff) {
  const int half_p = p / 2;
  Grid3d out(out_dims);
  for (std::size_t fz = 0; fz < out_dims.nz; ++fz) {
    for (std::size_t fy = 0; fy < out_dims.ny; ++fy) {
      for (std::size_t fx = 0; fx < out_dims.nx; ++fx) {
        const long gx = ox + static_cast<long>(fx);
        const long gy = oy + static_cast<long>(fy);
        const long gz = oz + static_cast<long>(fz);
        double acc = 0.0;
        for (int kz = -half_p; kz <= half_p; ++kz) {
          if (((gz - kz) & 1L) != 0) continue;
          const long mz = (gz - kz) / 2;
          const double jz = j_coeff[static_cast<std::size_t>(kz + half_p)];
          for (int ky = -half_p; ky <= half_p; ++ky) {
            if (((gy - ky) & 1L) != 0) continue;
            const long my = (gy - ky) / 2;
            const double jyz = jz * j_coeff[static_cast<std::size_t>(ky + half_p)];
            for (int kx = -half_p; kx <= half_p; ++kx) {
              if (((gx - kx) & 1L) != 0) continue;
              const long mx = (gx - kx) / 2;
              acc += jyz * j_coeff[static_cast<std::size_t>(kx + half_p)] *
                     halo.at(mx, my, mz);
            }
          }
        }
        out.at(fx, fy, fz) = acc;
      }
    }
  }
  return out;
}

Grid3d convolve_block_axis(const ExtendedBlock& halo, long ox, long oy, long oz,
                           const GridDims& out_dims, int axis, long reach,
                           std::size_t n_axis, const Kernel1d& kernel) {
  Grid3d out(out_dims);
  for (std::size_t lz = 0; lz < out_dims.nz; ++lz) {
    for (std::size_t ly = 0; ly < out_dims.ny; ++ly) {
      for (std::size_t lx = 0; lx < out_dims.nx; ++lx) {
        const long gx = ox + static_cast<long>(lx);
        const long gy = oy + static_cast<long>(ly);
        const long gz = oz + static_cast<long>(lz);
        double acc = 0.0;
        for (int m = -kernel.cutoff; m <= kernel.cutoff; ++m) {
          // Fold taps beyond the clamped halo into the period.
          long sx = gx, sy = gy, sz = gz;
          long off = -m;
          if (off > reach) off -= static_cast<long>(n_axis);
          if (off < -reach) off += static_cast<long>(n_axis);
          switch (axis) {
            case 0: sx += off; break;
            case 1: sy += off; break;
            default: sz += off; break;
          }
          acc += kernel.tap(m) * halo.at(sx, sy, sz);
        }
        out.at(lx, ly, lz) = acc;
      }
    }
  }
  return out;
}

ExtendedBlock ca_spread_block(std::span<const Vec3> positions,
                              std::span<const double> charges, const Box& box,
                              const Vec3& h, int p, long x0, long y0, long z0,
                              std::size_t ex, std::size_t ey, std::size_t ez,
                              const GridDims& global) {
  ExtendedBlock buffer;
  buffer.reset(x0, y0, z0, ex, ey, ez);
  std::vector<double> wx(static_cast<std::size_t>(p)), wy(wx), wz(wx);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 u = hadamard_div(box.wrap(positions[i]), h);
    long mx0 = bspline_weights_central(p, u.x, wx, {});
    long my0 = bspline_weights_central(p, u.y, wy, {});
    long mz0 = bspline_weights_central(p, u.z, wz, {});
    mx0 = unwrap_base(p, mx0, buffer.x0, buffer.x0 + static_cast<long>(buffer.nx),
                      static_cast<long>(global.nx));
    my0 = unwrap_base(p, my0, buffer.y0, buffer.y0 + static_cast<long>(buffer.ny),
                      static_cast<long>(global.ny));
    mz0 = unwrap_base(p, mz0, buffer.z0, buffer.z0 + static_cast<long>(buffer.nz),
                      static_cast<long>(global.nz));
    const double qi = charges[i];
    for (int kz = 0; kz < p; ++kz) {
      const double qz = qi * wz[static_cast<std::size_t>(kz)];
      for (int ky = 0; ky < p; ++ky) {
        const double qyz = qz * wy[static_cast<std::size_t>(ky)];
        for (int kx = 0; kx < p; ++kx) {
          buffer.at(mx0 + kx, my0 + ky, mz0 + kz) +=
              qyz * wx[static_cast<std::size_t>(kx)];
        }
      }
    }
  }
  return buffer;
}

BiBlockResult bi_interpolate_block(const ExtendedBlock& halo,
                                   std::span<const Vec3> positions,
                                   std::span<const double> charges,
                                   const Box& box, const Vec3& h, int p,
                                   const GridDims& global) {
  BiBlockResult res;
  res.forces.assign(positions.size(), Vec3{});
  std::vector<double> wx(static_cast<std::size_t>(p)), wy(wx), wz(wx);
  std::vector<double> dx(wx), dy(wx), dz(wx);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 u = hadamard_div(box.wrap(positions[i]), h);
    long mx0 = bspline_weights_central(p, u.x, wx, dx);
    long my0 = bspline_weights_central(p, u.y, wy, dy);
    long mz0 = bspline_weights_central(p, u.z, wz, dz);
    mx0 = unwrap_base(p, mx0, halo.x0, halo.x0 + static_cast<long>(halo.nx),
                      static_cast<long>(global.nx));
    my0 = unwrap_base(p, my0, halo.y0, halo.y0 + static_cast<long>(halo.ny),
                      static_cast<long>(global.ny));
    mz0 = unwrap_base(p, mz0, halo.z0, halo.z0 + static_cast<long>(halo.nz),
                      static_cast<long>(global.nz));
    double phi_i = 0.0;
    Vec3 grad{};
    for (int kz = 0; kz < p; ++kz) {
      for (int ky = 0; ky < p; ++ky) {
        double line_v = 0.0, line_d = 0.0;
        for (int kx = 0; kx < p; ++kx) {
          const double pm = halo.at(mx0 + kx, my0 + ky, mz0 + kz);
          line_v += pm * wx[static_cast<std::size_t>(kx)];
          line_d += pm * dx[static_cast<std::size_t>(kx)];
        }
        const double vy = wy[static_cast<std::size_t>(ky)];
        const double gy = dy[static_cast<std::size_t>(ky)];
        const double vz = wz[static_cast<std::size_t>(kz)];
        const double gz = dz[static_cast<std::size_t>(kz)];
        phi_i += line_v * vy * vz;
        grad.x += line_d * vy * vz;
        grad.y += line_v * gy * vz;
        grad.z += line_v * vy * gz;
      }
    }
    res.q_phi += charges[i] * phi_i;
    res.forces[i] = {-charges[i] * grad.x / h.x, -charges[i] * grad.y / h.y,
                     -charges[i] * grad.z / h.z};
  }
  return res;
}

}  // namespace tme::par
