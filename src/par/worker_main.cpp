// Standalone TME worker (exec mode): the coordinator fork+execs this binary
// with the Unix-socket connection on an inherited fd and drives it through
// the Init/Task/Result protocol.  All state arrives in the Init message; a
// respawned worker is re-initialised from the coordinator's CRC-sealed
// context checkpoint.
#include <cstdio>
#include <exception>

#include "par/proc_transport.hpp"
#include "par/worker.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  tme::Args args(argc, argv);
  const int fd = args.get_int("fd", -1);
  if (fd < 0) {
    std::fprintf(stderr, "usage: tme_worker --fd <socket-fd>\n");
    return 2;
  }
  tme::par::FdEndpoint ep(fd);
  try {
    tme::par::worker_loop(ep);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tme_worker: %s\n", e.what());
    return 1;
  }
  return 0;
}
