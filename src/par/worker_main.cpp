// Standalone TME worker (exec mode): the coordinator fork+execs this binary
// with the Unix-socket connection on an inherited fd and drives it through
// the Init/Task/Result protocol.  All state arrives in the Init message; a
// respawned worker is re-initialised from the coordinator's CRC-sealed
// context checkpoint.
//
// SIGTERM is the graceful-shutdown path: the handler only flips a
// sig_atomic_t flag; worker_loop notices it between messages, finishes the
// task in flight, flushes its sealed context to --ctx (when given), answers
// kBye, and the process exits 0 — so a supervisor (or ProcTransport's
// term-grace kill) can tell "asked to stop" from "crashed".
#include <csignal>
#include <cstdio>
#include <exception>

#include "par/proc_transport.hpp"
#include "par/worker.hpp"
#include "util/args.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void on_sigterm(int) { g_stop_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  tme::Args args(argc, argv);
  const int fd = args.get_int("fd", -1);
  if (fd < 0) {
    std::fprintf(stderr,
                 "usage: tme_worker --fd <socket-fd> [--ctx <context-file>]\n");
    return 2;
  }
  struct sigaction sa {};
  sa.sa_handler = on_sigterm;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);

  tme::par::WorkerLoopOptions opts;
  opts.stop_requested = [] { return g_stop_requested != 0; };
  opts.context_flush_path = args.get("ctx", "");

  tme::par::FdEndpoint ep(fd);
  try {
    tme::par::worker_loop(ep, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tme_worker: %s\n", e.what());
    return 1;
  }
  return 0;
}
