// Batched execution of per-node TME work behind one interface.
//
// ParallelTme builds every node's halo buffer for a phase (importing halos
// is where traffic is logged, so it stays on the coordinator), then hands
// the batch of pure tasks to a NodeExecutor and integrates the returned
// blocks in fixed node order.  SerialExecutor runs each task inline — the
// single-process behaviour the simulated machine always had.  WorkerFleet
// (par/fleet.hpp) ships the same tasks to real worker processes over a
// Transport.  Because every task is a pure function (par/node_kernels.hpp)
// and results are integrated in task order, the forces are bitwise
// independent of which executor — and which process — ran them.
#pragma once

#include <cstddef>
#include <vector>

#include "grid/grid3d.hpp"
#include "grid/separable_conv.hpp"
#include "par/node_kernels.hpp"
#include "util/vec3.hpp"

namespace tme::par {

// Everything a worker needs to execute any task: geometry, spline order,
// the two-scale coefficients, and the per-level separable kernels.  Built
// once by ParallelTme from its Tme; shipped verbatim to workers in the Init
// message so they never construct a Tme (whose FFT planning would drag the
// thread pool into a forked child).
struct PipelineContext {
  Box box;
  Vec3 h{1.0, 1.0, 1.0};  // finest grid spacing
  int p = 6;
  GridDims fine_global;
  std::vector<double> j_coeff;
  // kernels[l - 1] holds level l's separable terms (levels 1 .. L).
  std::vector<std::vector<SeparableTerm>> kernels;
};

// One per-node unit of grid work.  The (level, term, axis) triple keys the
// convolution kernel into PipelineContext::kernels on whichever side runs it.
struct GridBlockTask {
  enum class Kind : std::uint16_t { kRestrict = 0, kProlong = 1, kConvolve = 2 };
  Kind kind = Kind::kRestrict;
  std::size_t node = 0;
  ExtendedBlock halo;
  long ox = 0, oy = 0, oz = 0;
  GridDims out_dims;
  // Convolution-only fields:
  int axis = 0;
  long reach = 0;
  std::size_t n_axis = 0;
  int level = 1;
  std::size_t term = 0;
};

struct CaBlockTask {
  std::size_t node = 0;
  std::vector<Vec3> positions;
  std::vector<double> charges;
  long x0 = 0, y0 = 0, z0 = 0;
  std::size_t ex = 0, ey = 0, ez = 0;
};

struct BiBlockTask {
  std::size_t node = 0;
  ExtendedBlock halo;
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

class NodeExecutor {
 public:
  virtual ~NodeExecutor() = default;
  // Each run_* returns one result per task, in task order.
  virtual std::vector<Grid3d> run_grid(std::vector<GridBlockTask> tasks) = 0;
  virtual std::vector<ExtendedBlock> run_ca(std::vector<CaBlockTask> tasks) = 0;
  virtual std::vector<BiBlockResult> run_bi(std::vector<BiBlockTask> tasks) = 0;
};

// Runs every task inline in the calling process.
class SerialExecutor : public NodeExecutor {
 public:
  explicit SerialExecutor(const PipelineContext& ctx) : ctx_(&ctx) {}

  std::vector<Grid3d> run_grid(std::vector<GridBlockTask> tasks) override;
  std::vector<ExtendedBlock> run_ca(std::vector<CaBlockTask> tasks) override;
  std::vector<BiBlockResult> run_bi(std::vector<BiBlockTask> tasks) override;

 private:
  const PipelineContext* ctx_;
};

// Shared by SerialExecutor and the worker loop: execute one task against a
// context.  Defined here so in-process and worker-process execution are the
// same code path by construction.
Grid3d execute_grid_task(const PipelineContext& ctx, const GridBlockTask& task);
ExtendedBlock execute_ca_task(const PipelineContext& ctx, const CaBlockTask& task);
BiBlockResult execute_bi_task(const PipelineContext& ctx, const BiBlockTask& task);

}  // namespace tme::par
