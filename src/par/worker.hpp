// Worker protocol: what travels inside transport Messages.
//
// The coordinator sends one kInit carrying the full WorkerContext (pipeline
// geometry + kernels + this worker's rank and fault-drill policy); the
// worker replies kInitAck echoing the context's CRC-32 so a half-applied
// init is detected before any task runs.  Tasks and results are keyed by a
// u64 task id: retransmitted tasks are simply re-executed (every kernel is a
// pure function) and duplicate results are deduplicated by id on the
// coordinator, so at-least-once delivery still yields bitwise identical
// forces.
//
// The same context bytes are also persisted as a CRC-sealed context file —
// the restart checkpoint a respawned worker (or the standalone tme_worker
// binary) can be re-initialised from.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "par/executor.hpp"
#include "par/transport.hpp"

namespace tme::par {

// Deterministic misbehaviour drills, applied inside the worker loop.
struct WorkerFaultPolicy {
  long crash_after_tasks = -1;  // >=0: SIGKILL/teardown after N completed tasks
  long hang_after_tasks = -1;   // >=0: stop answering after N completed tasks
  long delay_ms = 0;            // slow worker: sleep before each result
};

struct WorkerContext {
  PipelineContext pipeline;
  std::uint32_t rank = 0;
  std::uint32_t workers = 1;
  WorkerFaultPolicy fault;
  // Arm worker-side tracing + metrics: the worker runs its own tracer ring
  // and registry and ships sealed chunks back as kTelemetry messages.  Only
  // meaningful for process workers — an in-proc worker shares the
  // coordinator's process-global tracer, so arming it would double-count.
  bool telemetry = false;
};

// Context payload codec.  decode throws wire::Error / TransportError on any
// malformed byte stream.
std::vector<std::uint8_t> encode_context(const WorkerContext& ctx);
WorkerContext decode_context(const std::vector<std::uint8_t>& bytes);

// CRC-sealed context file: magic + length + payload + CRC-32.  read throws
// TransportError on truncation or seal mismatch.
void write_context_file(const std::string& path,
                        const std::vector<std::uint8_t>& context_bytes);
std::vector<std::uint8_t> read_context_file(const std::string& path);

// Task payloads open with `u64 task_id | u16 task_class | u64 trace_id |
// u64 parent_span`; results echo the same header shape (trace fields zero).
// The trace fields propagate the coordinator's trace context: `parent_span`
// is the flow id of the dispatch span, so worker task spans nest under (and
// draw arrows from) the coordinator side in the merged timeline.
enum class TaskClass : std::uint16_t { kGrid = 0, kCa = 1, kBi = 2 };

std::vector<std::uint8_t> encode_grid_task(std::uint64_t task_id,
                                           const GridBlockTask& t,
                                           std::uint64_t trace_id = 0,
                                           std::uint64_t parent_span = 0);
std::vector<std::uint8_t> encode_ca_task(std::uint64_t task_id,
                                         const CaBlockTask& t,
                                         std::uint64_t trace_id = 0,
                                         std::uint64_t parent_span = 0);
std::vector<std::uint8_t> encode_bi_task(std::uint64_t task_id,
                                         const BiBlockTask& t,
                                         std::uint64_t trace_id = 0,
                                         std::uint64_t parent_span = 0);

struct ResultHeader {
  std::uint64_t task_id = 0;
  TaskClass task_class = TaskClass::kGrid;
};
ResultHeader peek_result_header(const std::vector<std::uint8_t>& payload);

Grid3d decode_grid_result(const std::vector<std::uint8_t>& payload);
ExtendedBlock decode_ca_result(const std::vector<std::uint8_t>& payload);
BiBlockResult decode_bi_result(const std::vector<std::uint8_t>& payload);

// Graceful-shutdown knobs for worker_loop.  `stop_requested` is polled
// between messages (and consulted before picking up new work): when it
// returns true the worker finishes the task it is executing, flushes its
// sealed context to `context_flush_path` (if set and it has one), and
// returns cleanly — the SIGTERM drain path, as opposed to the SIGKILL
// crash drills.  The functor must be async-signal-safe to *set* (the
// standalone binary backs it with a volatile sig_atomic_t).
struct WorkerLoopOptions {
  std::function<bool()> stop_requested;  // null: never stops voluntarily
  std::string context_flush_path;        // empty: no drain-time flush
};

// Runs one worker: Init -> InitAck, then Task -> Result / Ping -> Pong until
// kShutdown (answers kBye), a drain request via opts.stop_requested, or the
// coordinator's connection closes.  All compute goes through
// execute_*_task — the exact code path SerialExecutor uses in-process.
void worker_loop(Endpoint& ep);
void worker_loop(Endpoint& ep, const WorkerLoopOptions& opts);

}  // namespace tme::par
