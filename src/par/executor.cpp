#include "par/executor.hpp"

#include <stdexcept>

namespace tme::par {

Grid3d execute_grid_task(const PipelineContext& ctx, const GridBlockTask& task) {
  switch (task.kind) {
    case GridBlockTask::Kind::kRestrict:
      return restrict_block(task.halo, task.ox, task.oy, task.oz, task.out_dims,
                            ctx.p, ctx.j_coeff);
    case GridBlockTask::Kind::kProlong:
      return prolong_block(task.halo, task.ox, task.oy, task.oz, task.out_dims,
                           ctx.p, ctx.j_coeff);
    case GridBlockTask::Kind::kConvolve: {
      const std::size_t level_idx = static_cast<std::size_t>(task.level - 1);
      if (level_idx >= ctx.kernels.size() ||
          task.term >= ctx.kernels[level_idx].size()) {
        throw std::invalid_argument("execute_grid_task: kernel key out of range");
      }
      const SeparableTerm& t = ctx.kernels[level_idx][task.term];
      const Kernel1d& k = task.axis == 0 ? t.kx : (task.axis == 1 ? t.ky : t.kz);
      return convolve_block_axis(task.halo, task.ox, task.oy, task.oz,
                                 task.out_dims, task.axis, task.reach,
                                 task.n_axis, k);
    }
  }
  throw std::invalid_argument("execute_grid_task: unknown task kind");
}

ExtendedBlock execute_ca_task(const PipelineContext& ctx, const CaBlockTask& task) {
  return ca_spread_block(task.positions, task.charges, ctx.box, ctx.h, ctx.p,
                         task.x0, task.y0, task.z0, task.ex, task.ey, task.ez,
                         ctx.fine_global);
}

BiBlockResult execute_bi_task(const PipelineContext& ctx, const BiBlockTask& task) {
  return bi_interpolate_block(task.halo, task.positions, task.charges, ctx.box,
                              ctx.h, ctx.p, ctx.fine_global);
}

std::vector<Grid3d> SerialExecutor::run_grid(std::vector<GridBlockTask> tasks) {
  std::vector<Grid3d> out;
  out.reserve(tasks.size());
  for (const GridBlockTask& t : tasks) out.push_back(execute_grid_task(*ctx_, t));
  return out;
}

std::vector<ExtendedBlock> SerialExecutor::run_ca(std::vector<CaBlockTask> tasks) {
  std::vector<ExtendedBlock> out;
  out.reserve(tasks.size());
  for (const CaBlockTask& t : tasks) out.push_back(execute_ca_task(*ctx_, t));
  return out;
}

std::vector<BiBlockResult> SerialExecutor::run_bi(std::vector<BiBlockTask> tasks) {
  std::vector<BiBlockResult> out;
  out.reserve(tasks.size());
  for (const BiBlockTask& t : tasks) out.push_back(execute_bi_task(*ctx_, t));
  return out;
}

}  // namespace tme::par
