// WorkerFleet: a NodeExecutor that ships node tasks to real workers over a
// Transport, with the fault machinery the ISSUE's drill demands:
//
//   detection    a crashed worker surfaces as a closed connection (EOF on a
//                SIGKILLed process's socket); a hung or starved worker is
//                caught by a per-worker deadline on its oldest unanswered
//                task.
//   retry        deadline expiry retransmits the worker's in-flight tasks
//                with exponential backoff (timeout + base * 2^attempt), the
//                same discipline hw/network_model applies per link; CRC
//                rejects on either side are absorbed the same way.  Tasks
//                are pure and results dedup by task id, so at-least-once
//                delivery cannot change the physics.
//   re-homing    a worker declared dead gets its torus nodes killed in a
//                fleet-owned FaultInjector and a RecoveryPlan re-homes each
//                block onto a surviving node — whose worker is alive by
//                construction (an alive node's worker has at least that node
//                alive).  Killing the last worker makes RecoveryPlan throw:
//                the last-survivor refusal.
//   restart      with respawn enabled the dead worker is relaunched and
//                re-initialised from the CRC-sealed context checkpoint, then
//                rejoins the mapping for subsequent work.
//
// The coordinator integrates results in task order regardless of which
// worker (or respawn generation) produced them, so forces after any number
// of recoveries are bitwise identical to the fault-free run.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "hw/link_stats.hpp"
#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "par/executor.hpp"
#include "par/health.hpp"
#include "par/recovery.hpp"
#include "par/transport.hpp"
#include "par/worker.hpp"

namespace tme::par {

struct FleetConfig {
  enum class Backend { kInProc = 0, kProc = 1 };
  Backend backend = Backend::kInProc;
  std::size_t workers = 2;
  long timeout_ms = 2000;      // per-worker deadline on the oldest unanswered task
  int max_retries = 3;         // retransmission rounds before a worker is declared dead
  long backoff_base_ms = 10;   // first retransmission backoff; doubles per round
  bool respawn = true;         // relaunch dead workers from the sealed context
  // >0: kill_worker / quiesce escalation sends SIGTERM and waits this long
  // for a voluntary drain before SIGKILL (proc backend only).
  long term_grace_ms = 0;
  std::string worker_bin;      // proc backend: fork+exec this binary (empty = fork)
  std::string context_path;    // CRC-sealed context checkpoint (empty = in-memory)
  TransportFaultPolicy net_fault;
  // Per-rank misbehaviour drills; shorter than `workers` means default
  // (well-behaved) policies for the remaining ranks.
  std::vector<WorkerFaultPolicy> worker_faults;
  // Arm fleet-wide telemetry: workers run their own tracer + registry and
  // ship sealed chunks back, the coordinator estimates per-worker clock
  // offsets from the init/ping round trips and merges everything into one
  // timeline.  Effective only on the proc backend (an in-proc worker shares
  // the coordinator's process-global tracer and would double-count) and only
  // when tracing is compiled in and runtime-enabled on the coordinator.
  bool telemetry = true;
};

// Overlays the process-level modes of a hw::FaultConfig onto `base`: packet
// drop/corrupt rates (and seed) onto the transport fault policy, and the
// kill/hang/delay drill onto the targeted rank's WorkerFaultPolicy.
FleetConfig with_fault_modes(FleetConfig base, const hw::FaultConfig& faults);

// Applies TME_TRANSPORT ("inproc"/"proc"), TME_WORKERS,
// TME_TRANSPORT_TIMEOUT_MS and TME_TERM_GRACE_MS on top of `base` via the
// strict util/env parser
// (malformed values warn and keep `base`'s setting), then overlays the
// process-level TME_FAULT_* modes via with_fault_modes.
FleetConfig fleet_config_from_env(FleetConfig base = {});

struct FleetStats {
  std::uint64_t tasks_sent = 0;
  std::uint64_t results_received = 0;
  std::uint64_t duplicate_results = 0;  // retransmission echoes, dropped by id
  std::uint64_t retransmissions = 0;    // deadline-expiry resend rounds
  std::uint64_t worker_deaths = 0;      // EOF crashes + hung declarations
  std::uint64_t rehomed_tasks = 0;      // tasks moved to a survivor's worker
  std::uint64_t respawns = 0;
  std::uint64_t reinits = 0;            // successful Init/InitAck handshakes
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_missed = 0;
};

class WorkerFleet : public NodeExecutor {
 public:
  // `topo` is the logical node torus the tasks' node ids index into (the one
  // ParallelTme was built with); worker w hosts nodes {n : n % workers == w}.
  // Both references must outlive the fleet.
  WorkerFleet(const PipelineContext& ctx, const hw::TorusTopology& topo,
              FleetConfig cfg);
  ~WorkerFleet() override;

  std::vector<Grid3d> run_grid(std::vector<GridBlockTask> tasks) override;
  std::vector<ExtendedBlock> run_ca(std::vector<CaBlockTask> tasks) override;
  std::vector<BiBlockResult> run_bi(std::vector<BiBlockTask> tasks) override;

  // Pings every live worker and waits for the pongs; a miss counts against
  // the worker (and is reported to the health monitor, if any).  Returns the
  // number of workers that answered in time.
  std::size_t heartbeat(std::chrono::milliseconds timeout);

  // Graceful stop: re-seals the context checkpoint (when configured), then
  // runs the kShutdown/kBye handshake with every live worker so processes
  // drain and exit 0 instead of being SIGKILLed by the destructor.  Returns
  // true when every live worker acknowledged.  Idempotent; after a quiesce
  // the destructor only tears down the transport.
  bool quiesce();
  bool quiesced() const { return stopped_; }

  // Swaps the packet drop/corrupt policy mid-run (chaos packet windows).
  void set_net_fault(const TransportFaultPolicy& fault);

  // Drill triggers / introspection.
  void kill_worker(std::size_t w);  // SIGKILL (proc) / channel teardown (inproc)
  // SIGTERM-with-deadline, falling back to SIGKILL (proc backend; the
  // in-proc backend has no graceful path and tears the channel down).
  void term_worker(std::size_t w, long grace_ms);
  // True when the worker's last process exited voluntarily with status 0 —
  // "asked to stop" rather than "crashed".  Always false on inproc.
  bool worker_exited_cleanly(std::size_t w) const;
  pid_t worker_pid(std::size_t w) const;  // -1 on the in-proc backend
  bool worker_alive(std::size_t w) const { return !worker_dead_[w]; }
  std::size_t alive_workers() const;
  std::size_t worker_of_node(std::size_t node) const;

  // Heartbeat misses and deaths are attributed to the worker's first torus
  // node on this monitor (PR 4's quarantine machinery).
  void set_health_monitor(HealthMonitor* hm) { health_ = hm; }
  // When set, task/result payload bytes are charged along coordinator->node
  // routes so per-link telemetry reflects the real socket traffic.
  void set_link_telemetry(hw::LinkTelemetry* links) { links_ = links; }

  const FleetStats& stats() const { return stats_; }
  const TransportStats& transport_stats() const { return transport_->stats(); }
  const Transport& transport() const { return *transport_; }
  const FleetConfig& config() const { return cfg_; }
  // Null while every worker is alive.
  const RecoveryPlan* plan() const { return plan_.get(); }

  // --- fleet telemetry ------------------------------------------------------
  // True when workers were armed to ship trace chunks + metric snapshots
  // (cfg.telemetry on the proc backend with tracing compiled in and enabled).
  bool telemetry_enabled() const { return telemetry_on_; }
  // Redirects ingested worker telemetry into an aggregator that outlives
  // this fleet (the chaos runner threads one through restarts); null
  // restores the fleet-owned aggregator.  Existing state is not migrated,
  // so swap sinks before any tasks run.
  void set_telemetry_sink(obs::FleetTelemetry* sink);
  obs::FleetTelemetry& telemetry() { return *sink_; }
  const obs::FleetTelemetry& telemetry() const { return *sink_; }
  // Clock mapping for worker w's current incarnation:
  // coordinator_time = worker_time - offset, error bound rtt / 2.
  bool worker_clock_synced(std::size_t w) const;
  double worker_clock_offset_us(std::size_t w) const;
  double worker_clock_rtt_us(std::size_t w) const;
  // Tasks currently in flight to worker w (nonzero only inside dispatch).
  std::size_t outstanding_tasks(std::size_t w) const;
  // Publishes per-worker transport stats, clock offsets, outstanding counts
  // and the aggregated worker metric snapshots into the global registry as
  // "fleet/..." gauges, so the fleet view lands in BENCH_*.json exports.
  void publish_metrics() const;
  // Writes the merged fleet timeline (coordinator tracks + one process per
  // worker incarnation) as Chrome/Perfetto JSON.  False on I/O failure.
  bool write_fleet_trace(const std::string& path) const;
  // Fills `out` (made an object) with the live-introspection section:
  // per-worker health/pid/offset/outstanding plus fleet counters.
  void status_json(obs::JsonValue& out) const;

 private:
  struct Pending;  // one outstanding task (defined in fleet.cpp)

  void spawn_transport();
  bool shutdown_workers();
  std::vector<std::uint8_t> context_bytes_for(std::size_t rank) const;
  bool init_worker(std::size_t w);
  // Declares w dead: kills its nodes in a fresh injector, rebuilds the
  // recovery plan (throws on last survivor), optionally respawns.
  void handle_worker_death(std::size_t w, const char* cause);
  void rebuild_plan();
  void record_transfer(std::size_t node, std::size_t bytes);

  // The shared dispatch loop; encode/decode close over the task vectors.
  void dispatch(std::vector<Pending>& pending);

  // Decodes and routes a kTelemetry message into the sink (no-op for any
  // other type); every recv loop calls this before its own type filter so
  // piggybacked worker chunks are never discarded as strays.
  void maybe_ingest_telemetry(const Message& m, std::size_t w);
  // Stamps an instant on the fleet events track ("worker dead", "worker
  // respawned"); no-op when telemetry is off.
  void note_fleet_instant(const char* name, std::string detail);
  // Feeds one init/ping round trip into worker w's clock estimator and
  // refreshes the sink's offset record.
  void record_clock_sample(std::size_t w, double t0_us, double t1_us,
                           double remote_us);

  const PipelineContext* ctx_;
  const hw::TorusTopology* topo_;
  FleetConfig cfg_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::uint8_t> base_context_;  // rank-0 encoding, the sealed bytes
  std::vector<char> worker_dead_;
  std::unique_ptr<hw::FaultInjector> faults_;
  std::unique_ptr<RecoveryPlan> plan_;
  HealthMonitor* health_ = nullptr;
  hw::LinkTelemetry* links_ = nullptr;
  FleetStats stats_;
  std::uint64_t next_task_id_ = 1;
  bool stopped_ = false;  // quiesce() ran: the destructor skips the handshake

  bool telemetry_on_ = false;
  obs::FleetTelemetry own_telemetry_;
  obs::FleetTelemetry* sink_ = &own_telemetry_;
  std::vector<obs::ClockOffsetEstimator> offsets_;  // reset per incarnation
  std::vector<std::int64_t> worker_os_pid_;  // from the InitAck extension
  std::vector<std::size_t> outstanding_;     // in-flight tasks per worker
  std::uint64_t trace_id_ = 0;               // stamped into every task header
  obs::TrackId dispatch_track_ = 0;          // coordinator "fleet/dispatch"
  obs::TrackId events_track_ = 0;            // death/respawn instants
};

}  // namespace tme::par
