#include "par/worker.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/telemetry.hpp"
#include "par/wire.hpp"
#include "util/crc32.hpp"
#include "util/io_shim.hpp"

namespace tme::par {

namespace {

constexpr std::uint32_t kContextMagic = 0x58544354u;  // "TCTX"
constexpr std::uint32_t kContextVersion = 2;  // v2 appended the telemetry flag
constexpr std::uint32_t kContextFileMagic = 0x46435458u;  // "XTCF"

// Guards applied to counts decoded from the wire before any allocation.
constexpr std::uint64_t kMaxGridElems = 1ull << 28;  // 256M doubles = 2 GiB
constexpr std::uint64_t kMaxAtoms = 1ull << 26;
constexpr std::uint64_t kMaxTaps = 1ull << 16;
constexpr std::uint64_t kMaxTerms = 1024;
constexpr std::uint64_t kMaxLevels = 64;

void put_dims(wire::Writer& w, const GridDims& d) {
  w.u64(d.nx);
  w.u64(d.ny);
  w.u64(d.nz);
}

GridDims get_dims(wire::Reader& r) {
  GridDims d;
  d.nx = r.count(kMaxGridElems);
  d.ny = r.count(kMaxGridElems);
  d.nz = r.count(kMaxGridElems);
  if (d.nx != 0 && d.ny != 0 && d.total() / (d.nx * d.ny) != d.nz) {
    throw wire::Error("wire: grid dims overflow");
  }
  if (d.total() > kMaxGridElems) throw wire::Error("wire: grid too large");
  return d;
}

void put_block(wire::Writer& w, const ExtendedBlock& b) {
  w.i64(b.x0);
  w.i64(b.y0);
  w.i64(b.z0);
  w.u64(b.nx);
  w.u64(b.ny);
  w.u64(b.nz);
  w.doubles(b.data);
}

ExtendedBlock get_block(wire::Reader& r) {
  ExtendedBlock b;
  b.x0 = static_cast<long>(r.i64());
  b.y0 = static_cast<long>(r.i64());
  b.z0 = static_cast<long>(r.i64());
  b.nx = r.count(kMaxGridElems);
  b.ny = r.count(kMaxGridElems);
  b.nz = r.count(kMaxGridElems);
  b.data = r.doubles();
  if (b.data.size() != b.nx * b.ny * b.nz) {
    throw wire::Error("wire: extended block size mismatch");
  }
  return b;
}

void put_kernel(wire::Writer& w, const Kernel1d& k) {
  w.i64(k.cutoff);
  w.doubles(k.taps);
}

Kernel1d get_kernel(wire::Reader& r) {
  Kernel1d k;
  k.cutoff = static_cast<int>(r.i64());
  k.taps = r.doubles();
  if (k.taps.size() > kMaxTaps) throw wire::Error("wire: kernel too wide");
  return k;
}

}  // namespace

// --- Context codec -----------------------------------------------------------

std::vector<std::uint8_t> encode_context(const WorkerContext& ctx) {
  wire::Writer w;
  w.u32(kContextMagic);
  w.u32(kContextVersion);
  const PipelineContext& p = ctx.pipeline;
  w.f64(p.box.lengths.x);
  w.f64(p.box.lengths.y);
  w.f64(p.box.lengths.z);
  w.f64(p.h.x);
  w.f64(p.h.y);
  w.f64(p.h.z);
  w.i64(p.p);
  put_dims(w, p.fine_global);
  w.doubles(p.j_coeff);
  w.u64(p.kernels.size());
  for (const auto& level : p.kernels) {
    w.u64(level.size());
    for (const SeparableTerm& t : level) {
      put_kernel(w, t.kx);
      put_kernel(w, t.ky);
      put_kernel(w, t.kz);
    }
  }
  w.u32(ctx.rank);
  w.u32(ctx.workers);
  w.i64(ctx.fault.crash_after_tasks);
  w.i64(ctx.fault.hang_after_tasks);
  w.i64(ctx.fault.delay_ms);
  w.u32(ctx.telemetry ? 1u : 0u);
  return w.take();
}

WorkerContext decode_context(const std::vector<std::uint8_t>& bytes) {
  wire::Reader r(bytes);
  if (r.u32() != kContextMagic) {
    throw TransportError("worker context: bad magic");
  }
  if (const std::uint32_t v = r.u32(); v != kContextVersion) {
    throw TransportError("worker context: unsupported version " +
                         std::to_string(v));
  }
  WorkerContext ctx;
  PipelineContext& p = ctx.pipeline;
  p.box.lengths.x = r.f64();
  p.box.lengths.y = r.f64();
  p.box.lengths.z = r.f64();
  p.h.x = r.f64();
  p.h.y = r.f64();
  p.h.z = r.f64();
  p.p = static_cast<int>(r.i64());
  p.fine_global = get_dims(r);
  p.j_coeff = r.doubles();
  const std::size_t n_levels = r.count(kMaxLevels);
  p.kernels.resize(n_levels);
  for (auto& level : p.kernels) {
    level.resize(r.count(kMaxTerms));
    for (SeparableTerm& t : level) {
      t.kx = get_kernel(r);
      t.ky = get_kernel(r);
      t.kz = get_kernel(r);
    }
  }
  ctx.rank = r.u32();
  ctx.workers = r.u32();
  ctx.fault.crash_after_tasks = static_cast<long>(r.i64());
  ctx.fault.hang_after_tasks = static_cast<long>(r.i64());
  ctx.fault.delay_ms = static_cast<long>(r.i64());
  ctx.telemetry = r.u32() != 0;
  if (!r.done()) throw TransportError("worker context: trailing bytes");
  return ctx;
}

// --- Context file ------------------------------------------------------------

void write_context_file(const std::string& path,
                        const std::vector<std::uint8_t>& context_bytes) {
  wire::Writer w;
  w.u32(kContextFileMagic);
  w.u64(context_bytes.size());
  w.raw(context_bytes.data(), context_bytes.size());
  // Seal body + trailing CRC into one buffer, then write it through the IO
  // shim with the same durable discipline as md/checkpoint: write-all with
  // EINTR retry, fsync the temp file, rename, fsync the directory.  The
  // context file is what a respawned worker re-inits from, so a torn or
  // cached-only write here turns a survivable crash into an unrecoverable
  // one.
  wire::Writer sealed;
  sealed.raw(w.bytes().data(), w.bytes().size());
  const std::uint32_t crc = crc32(w.bytes().data(), w.bytes().size());
  sealed.raw(&crc, sizeof(crc));
  const std::vector<std::uint8_t>& body = sealed.bytes();

  auto& shim = io::IoShim::instance();
  const std::string tmp = path + ".tmp";
  const int fd = shim.open_for_write(tmp);
  if (fd < 0) throw TransportError("context file: cannot open " + tmp);
  auto fail = [&](const std::string& what) {
    shim.close_fd(fd);
    std::remove(tmp.c_str());
    throw TransportError("context file: " + what + ": " + tmp);
  };
  const std::uint8_t* data = body.data();
  std::size_t remaining = body.size();
  while (remaining > 0) {
    const ssize_t n = shim.write_some(fd, data, remaining, tmp);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write failed");
    } else if (n == 0) {
      fail("write made no progress");
    } else {
      data += n;
      remaining -= static_cast<std::size_t>(n);
    }
  }
  while (shim.fsync_fd(fd, tmp) != 0) {
    if (errno == EINTR) continue;
    fail("fsync failed");
  }
  if (shim.close_fd(fd) != 0) {
    std::remove(tmp.c_str());
    throw TransportError("context file: close failed: " + tmp);
  }
  if (shim.rename_file(tmp, path) != 0) {
    std::remove(tmp.c_str());
    throw TransportError("context file: rename failed: " + path);
  }
  if (shim.fsync_parent_dir(path) != 0) {
    throw TransportError("context file: parent directory fsync failed: " +
                         path);
  }
}

std::vector<std::uint8_t> read_context_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw TransportError("context file: cannot open " + path);
  const std::streamsize size = in.tellg();
  if (size < static_cast<std::streamsize>(4 + 8 + 4)) {
    throw TransportError("context file: truncated: " + path);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw TransportError("context file: short read: " + path);
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (crc32(bytes.data(), bytes.size() - 4) != stored_crc) {
    throw TransportError("context file: CRC mismatch: " + path);
  }
  wire::Reader r(bytes.data(), bytes.size() - 4);
  if (r.u32() != kContextFileMagic) {
    throw TransportError("context file: bad magic: " + path);
  }
  const std::uint64_t len = r.u64();
  if (len != r.remaining()) {
    throw TransportError("context file: length mismatch: " + path);
  }
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
  r.raw(payload.data(), payload.size());
  return payload;
}

// --- Task codecs -------------------------------------------------------------

namespace {

void put_task_header(wire::Writer& w, std::uint64_t task_id, TaskClass cls,
                     std::uint64_t trace_id = 0,
                     std::uint64_t parent_span = 0) {
  w.u64(task_id);
  w.u16(static_cast<std::uint16_t>(cls));
  w.u64(trace_id);
  w.u64(parent_span);
}

}  // namespace

std::vector<std::uint8_t> encode_grid_task(std::uint64_t task_id,
                                           const GridBlockTask& t,
                                           std::uint64_t trace_id,
                                           std::uint64_t parent_span) {
  wire::Writer w;
  put_task_header(w, task_id, TaskClass::kGrid, trace_id, parent_span);
  w.u16(static_cast<std::uint16_t>(t.kind));
  w.u64(t.node);
  put_block(w, t.halo);
  w.i64(t.ox);
  w.i64(t.oy);
  w.i64(t.oz);
  put_dims(w, t.out_dims);
  w.i64(t.axis);
  w.i64(t.reach);
  w.u64(t.n_axis);
  w.i64(t.level);
  w.u64(t.term);
  return w.take();
}

std::vector<std::uint8_t> encode_ca_task(std::uint64_t task_id,
                                         const CaBlockTask& t,
                                         std::uint64_t trace_id,
                                         std::uint64_t parent_span) {
  wire::Writer w;
  put_task_header(w, task_id, TaskClass::kCa, trace_id, parent_span);
  w.u64(t.node);
  w.vec3s(t.positions);
  w.doubles(t.charges);
  w.i64(t.x0);
  w.i64(t.y0);
  w.i64(t.z0);
  w.u64(t.ex);
  w.u64(t.ey);
  w.u64(t.ez);
  return w.take();
}

std::vector<std::uint8_t> encode_bi_task(std::uint64_t task_id,
                                         const BiBlockTask& t,
                                         std::uint64_t trace_id,
                                         std::uint64_t parent_span) {
  wire::Writer w;
  put_task_header(w, task_id, TaskClass::kBi, trace_id, parent_span);
  w.u64(t.node);
  put_block(w, t.halo);
  w.vec3s(t.positions);
  w.doubles(t.charges);
  return w.take();
}

namespace {

struct TaskHeader {
  std::uint64_t task_id = 0;
  TaskClass task_class = TaskClass::kGrid;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

TaskHeader get_task_header(wire::Reader& r) {
  TaskHeader h;
  h.task_id = r.u64();
  const std::uint16_t cls = r.u16();
  if (cls > static_cast<std::uint16_t>(TaskClass::kBi)) {
    throw TransportError("worker: unknown task class " + std::to_string(cls));
  }
  h.task_class = static_cast<TaskClass>(cls);
  h.trace_id = r.u64();
  h.parent_span = r.u64();
  return h;
}

GridBlockTask get_grid_task(wire::Reader& r) {
  GridBlockTask t;
  const std::uint16_t kind = r.u16();
  if (kind > static_cast<std::uint16_t>(GridBlockTask::Kind::kConvolve)) {
    throw TransportError("worker: unknown grid task kind");
  }
  t.kind = static_cast<GridBlockTask::Kind>(kind);
  t.node = r.u64();
  t.halo = get_block(r);
  t.ox = static_cast<long>(r.i64());
  t.oy = static_cast<long>(r.i64());
  t.oz = static_cast<long>(r.i64());
  t.out_dims = get_dims(r);
  t.axis = static_cast<int>(r.i64());
  t.reach = static_cast<long>(r.i64());
  t.n_axis = static_cast<std::size_t>(r.u64());
  t.level = static_cast<int>(r.i64());
  t.term = static_cast<std::size_t>(r.u64());
  return t;
}

CaBlockTask get_ca_task(wire::Reader& r) {
  CaBlockTask t;
  t.node = r.u64();
  t.positions = r.vec3s();
  t.charges = r.doubles();
  if (t.positions.size() != t.charges.size() ||
      t.positions.size() > kMaxAtoms) {
    throw TransportError("worker: CA task atom arrays mismatch");
  }
  t.x0 = static_cast<long>(r.i64());
  t.y0 = static_cast<long>(r.i64());
  t.z0 = static_cast<long>(r.i64());
  t.ex = r.count(kMaxGridElems);
  t.ey = r.count(kMaxGridElems);
  t.ez = r.count(kMaxGridElems);
  return t;
}

BiBlockTask get_bi_task(wire::Reader& r) {
  BiBlockTask t;
  t.node = r.u64();
  t.halo = get_block(r);
  t.positions = r.vec3s();
  t.charges = r.doubles();
  if (t.positions.size() != t.charges.size() ||
      t.positions.size() > kMaxAtoms) {
    throw TransportError("worker: BI task atom arrays mismatch");
  }
  return t;
}

std::vector<std::uint8_t> encode_grid_result(std::uint64_t task_id,
                                             const Grid3d& g) {
  wire::Writer w;
  put_task_header(w, task_id, TaskClass::kGrid);
  put_dims(w, g.dims());
  w.doubles(g.values());
  return w.take();
}

std::vector<std::uint8_t> encode_ca_result(std::uint64_t task_id,
                                           const ExtendedBlock& b) {
  wire::Writer w;
  put_task_header(w, task_id, TaskClass::kCa);
  put_block(w, b);
  return w.take();
}

std::vector<std::uint8_t> encode_bi_result(std::uint64_t task_id,
                                           const BiBlockResult& res) {
  wire::Writer w;
  put_task_header(w, task_id, TaskClass::kBi);
  w.vec3s(res.forces);
  w.f64(res.q_phi);
  return w.take();
}

}  // namespace

ResultHeader peek_result_header(const std::vector<std::uint8_t>& payload) {
  wire::Reader r(payload);
  const TaskHeader h = get_task_header(r);
  return ResultHeader{h.task_id, h.task_class};
}

Grid3d decode_grid_result(const std::vector<std::uint8_t>& payload) {
  wire::Reader r(payload);
  (void)get_task_header(r);
  const GridDims dims = get_dims(r);
  std::vector<double> values = r.doubles();
  if (values.size() != dims.total()) {
    throw TransportError("worker result: grid size mismatch");
  }
  Grid3d g(dims);
  g.values() = std::move(values);
  return g;
}

ExtendedBlock decode_ca_result(const std::vector<std::uint8_t>& payload) {
  wire::Reader r(payload);
  (void)get_task_header(r);
  return get_block(r);
}

BiBlockResult decode_bi_result(const std::vector<std::uint8_t>& payload) {
  wire::Reader r(payload);
  (void)get_task_header(r);
  BiBlockResult res;
  res.forces = r.vec3s();
  res.q_phi = r.f64();
  return res;
}

// --- Worker loop -------------------------------------------------------------

void worker_loop(Endpoint& ep) { worker_loop(ep, WorkerLoopOptions{}); }

void worker_loop(Endpoint& ep, const WorkerLoopOptions& opts) {
  WorkerContext ctx;
  std::vector<std::uint8_t> ctx_bytes;
  bool inited = false;
  long tasks_done = 0;
  bool hung = false;
  // Worker-side telemetry: armed by the context (process workers only).
  // Chunks flush once enough spans accumulate, and unconditionally on
  // shutdown/drain so a graceful quiesce loses nothing.
  bool telemetry_armed = false;
  std::uint64_t telemetry_seq = 0;
  obs::TrackId task_track = 0;
  constexpr std::size_t kFlushThreshold = 48;
  auto flush_telemetry = [&](bool force) {
    if (!telemetry_armed) return true;
    obs::Tracer& tracer = obs::Tracer::global();
    if (!force && tracer.undrained_count() < kFlushThreshold) return true;
    obs::WorkerTelemetry t;
    t.rank = ctx.rank;
    t.pid = static_cast<std::int64_t>(::getpid());
    t.seq = ++telemetry_seq;
    t.chunk = tracer.drain_chunk();
    if (!force && t.chunk.events.empty()) return true;
    t.metrics_json = obs::to_json(obs::Registry::global().snapshot());
    Message m;
    m.type = MsgType::kTelemetry;
    m.payload = encode_telemetry(t);
    return ep.send(m);
  };
  // Drain path: a requested stop is honoured between messages — the task
  // being executed always finishes and its result is sent, so the
  // coordinator never loses acknowledged work to a graceful shutdown.
  auto drain = [&]() {
    if (inited && !opts.context_flush_path.empty()) {
      try {
        write_context_file(opts.context_flush_path, ctx_bytes);
      } catch (const std::exception&) {
        // Flushing the context is best-effort on the way out; the
        // coordinator still owns an authoritative copy.
      }
    }
    flush_telemetry(true);
    Message bye;
    bye.type = MsgType::kBye;
    ep.send(bye);
  };
  // A stoppable worker polls at 100ms so a SIGTERM drains promptly; the
  // plain loop keeps the old 1s cadence.
  const auto recv_wait =
      std::chrono::milliseconds(opts.stop_requested ? 100 : 1000);
  Message msg;
  for (;;) {
    if (opts.stop_requested && opts.stop_requested()) {
      drain();
      return;
    }
    const RecvStatus st = ep.recv(msg, recv_wait);
    if (st == RecvStatus::kClosed) return;  // coordinator gone: exit quietly
    if (st == RecvStatus::kTimeout) continue;
    switch (msg.type) {
      case MsgType::kInit: {
        ctx = decode_context(msg.payload);
        ctx_bytes = msg.payload;
        inited = true;
        tasks_done = 0;
        hung = false;
        telemetry_armed = ctx.telemetry && obs::kTraceEnabled;
        if (telemetry_armed) {
          // A fork-mode child inherits the coordinator's buffers, tracks and
          // epoch; start this incarnation from a clean slate so its chunks
          // carry only worker-side events on the worker's own clock.
          obs::Tracer& tracer = obs::Tracer::global();
          tracer.reset_for_testing();
          tracer.set_enabled(true);
          obs::Registry::global().reset();
          telemetry_seq = 0;
          task_track =
              tracer.track("tasks", "rank " + std::to_string(ctx.rank));
        }
        Message ack;
        ack.type = MsgType::kInitAck;
        wire::Writer w;
        w.u32(crc32(msg.payload.data(), msg.payload.size()));
        // Trailing extension (readers ignore extra bytes): the worker's os
        // pid and a tracer-clock reading, sampled mid-round-trip — the
        // coordinator's first clock-offset estimate for this incarnation.
        w.i64(static_cast<std::int64_t>(::getpid()));
        w.f64(obs::Tracer::global().now_us());
        ack.payload = w.take();
        if (!ep.send(ack)) return;
        break;
      }
      case MsgType::kPing: {
        if (hung) break;  // a hung worker misses heartbeats too
        Message pong;
        pong.type = MsgType::kPong;
        pong.payload = msg.payload;
        {
          // Trailing extension (readers ignore extra bytes): a tracer-clock
          // reading for the coordinator's offset estimator.
          wire::Writer w;
          w.raw(msg.payload.data(), msg.payload.size());
          w.f64(obs::Tracer::global().now_us());
          pong.payload = w.take();
        }
        if (!ep.send(pong)) return;
        break;
      }
      case MsgType::kTask: {
        if (!inited) {
          throw TransportError("worker: task received before init");
        }
        if (hung) break;  // drill: swallow the task, keep the socket open
        if (ctx.fault.hang_after_tasks >= 0 &&
            tasks_done >= ctx.fault.hang_after_tasks) {
          hung = true;
          break;
        }
        if (ctx.fault.crash_after_tasks >= 0 &&
            tasks_done >= ctx.fault.crash_after_tasks) {
          ep.crash();  // SIGKILL in a process worker; never returns there
          return;
        }
        wire::Reader r(msg.payload);
        const TaskHeader header = get_task_header(r);
        obs::Tracer& tracer = obs::Tracer::global();
        const double span_start = telemetry_armed ? tracer.now_us() : 0.0;
        const char* span_name = "task";
        Message result;
        result.type = MsgType::kResult;
        switch (header.task_class) {
          case TaskClass::kGrid: {
            span_name = "grid task";
            const GridBlockTask t = get_grid_task(r);
            result.payload =
                encode_grid_result(header.task_id,
                                   execute_grid_task(ctx.pipeline, t));
            break;
          }
          case TaskClass::kCa: {
            span_name = "ca task";
            const CaBlockTask t = get_ca_task(r);
            result.payload = encode_ca_result(
                header.task_id, execute_ca_task(ctx.pipeline, t));
            break;
          }
          case TaskClass::kBi: {
            span_name = "bi task";
            const BiBlockTask t = get_bi_task(r);
            result.payload = encode_bi_result(
                header.task_id, execute_bi_task(ctx.pipeline, t));
            break;
          }
        }
        if (telemetry_armed) {
          const double span_end = tracer.now_us();
          // The flow head lands at the span's start inside the task span,
          // tying it back to the coordinator's dispatch flow tail.
          const std::uint64_t flow_id =
              header.parent_span != 0 ? header.parent_span : header.task_id;
          tracer.complete(task_track, span_name, span_start,
                          span_end - span_start,
                          "task " + std::to_string(header.task_id));
          tracer.flow_finish(task_track, "dispatch", span_start, flow_id);
          obs::Registry::global().counter("worker/tasks").add(1);
          obs::Registry::global().timer_add(
              "worker/task_s", (span_end - span_start) * 1e-6);
        }
        if (ctx.fault.delay_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(ctx.fault.delay_ms));
        }
        ++tasks_done;
        if (!ep.send(result)) return;
        if (!flush_telemetry(false)) return;
        break;
      }
      case MsgType::kShutdown: {
        // Final telemetry flush first: the chunk must precede kBye so the
        // coordinator's shutdown loop ingests it before closing the book.
        flush_telemetry(true);
        Message bye;
        bye.type = MsgType::kBye;
        ep.send(bye);
        return;
      }
      default:
        break;  // unexpected types are ignored (stale retransmissions)
    }
  }
}

}  // namespace tme::par
