#include "par/decomposition.hpp"

#include <algorithm>
#include <stdexcept>

namespace tme::par {

GridDecomposition::GridDecomposition(GridDims global, const TorusTopology& topo)
    : global_(global), topo_(&topo) {
  if (global.nx % topo.nx() != 0 || global.ny % topo.ny() != 0 ||
      global.nz % topo.nz() != 0) {
    throw std::invalid_argument(
        "GridDecomposition: grid extents must divide evenly over nodes");
  }
  local_ = {global.nx / topo.nx(), global.ny / topo.ny(), global.nz / topo.nz()};
  if (local_.total() == 0) {
    throw std::invalid_argument("GridDecomposition: empty local blocks");
  }
}

NodeCoord GridDecomposition::owner(long gx, long gy, long gz) const {
  const std::size_t wx = Grid3d::wrap(gx, global_.nx);
  const std::size_t wy = Grid3d::wrap(gy, global_.ny);
  const std::size_t wz = Grid3d::wrap(gz, global_.nz);
  return {wx / local_.nx, wy / local_.ny, wz / local_.nz};
}

std::vector<std::size_t> assign_atoms_to_nodes(const Box& box,
                                               std::span<const Vec3> positions,
                                               const TorusTopology& topo) {
  std::vector<std::size_t> owner(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 w = box.wrap(positions[i]);
    auto bin = [](double x, double len, std::size_t cells) {
      auto b = static_cast<std::size_t>(x / len * static_cast<double>(cells));
      return std::min(b, cells - 1);
    };
    owner[i] = topo.index({bin(w.x, box.lengths.x, topo.nx()),
                           bin(w.y, box.lengths.y, topo.ny()),
                           bin(w.z, box.lengths.z, topo.nz())});
  }
  return owner;
}

}  // namespace tme::par
