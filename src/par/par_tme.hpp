// Distributed-memory execution of the TME over a virtual 3D-torus node
// array — the parallel algorithm the MDGRAPE-4A hardware runs, expressed as
// explicit per-node blocks and logged inter-node messages.
//
// Every stage moves exactly the data the machine moves:
//   CA            per-node anterpolation into a sleeved buffer, sleeve
//                 accumulation to neighbours          (paper Sec. IV.A)
//   restriction   fine-grid halo exchange of p/2 cells, J-stencil
//   level conv    per-axis slab exchange over +-ceil(g_c/local) neighbours,
//                 1D kernels, M separable terms       (paper Sec. IV.B)
//   top level     gather of the coarsest grid to a root node, FFT
//                 convolution, broadcast back         (paper Sec. IV.C)
//   prolongation  coarse-grid halo exchange, two-scale stencil
//   BI            potential halo import, per-node interpolation
//
// The coordinator owns every distributed grid and the traffic log; the
// per-node compute is batched through a NodeExecutor (par/executor.hpp), so
// the same pipeline runs inline (SerialExecutor, the default) or across real
// worker processes (par/fleet.hpp) with bitwise identical results.
//
// The result is bitwise-independent of the decomposition up to floating
// summation order (tests assert agreement with the serial Tme to 1e-10),
// and the TrafficLog gives *measured* per-phase word counts to check the
// paper's Sec. III.C communication model against.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/tme.hpp"
#include "hw/link_stats.hpp"
#include "par/decomposition.hpp"
#include "par/executor.hpp"
#include "par/recovery.hpp"
#include "par/traffic.hpp"

namespace tme::par {

// Per-node block storage for one grid level.
class DistributedGrid {
 public:
  DistributedGrid() = default;
  explicit DistributedGrid(const GridDecomposition& decomp);

  const GridDecomposition& decomposition() const { return *decomp_; }
  Grid3d& block(std::size_t node) { return blocks_[node]; }
  const Grid3d& block(std::size_t node) const { return blocks_[node]; }
  std::size_t node_count() const { return blocks_.size(); }

  // Test/bridge helpers (no traffic logged).
  Grid3d assemble() const;
  static DistributedGrid distribute(const Grid3d& global,
                                    const GridDecomposition& decomp);

 private:
  const GridDecomposition* decomp_ = nullptr;
  std::vector<Grid3d> blocks_;
};

class ParallelTme {
 public:
  // `nodes` must divide every level's grid extents (e.g. 2^k node arrays
  // with power-of-two grids).
  ParallelTme(const Box& box, const TmeParams& params, const TorusTopology& nodes);

  // The built-in SerialExecutor holds a pointer into this object.
  ParallelTme(const ParallelTme&) = delete;
  ParallelTme& operator=(const ParallelTme&) = delete;

  const Tme& serial() const { return tme_; }
  const TorusTopology& topology() const { return topo_; }

  // The shared kernel/geometry context every executor needs — ship this to
  // worker processes (par/worker.hpp Init message) so they can run tasks
  // without ever constructing a Tme.
  const PipelineContext& context() const { return ctx_; }

  // Route the per-node compute through `exec` (which must outlive this
  // object); nullptr restores the built-in inline SerialExecutor.  Any
  // executor that returns results in task order leaves forces bitwise
  // unchanged — that is the whole contract.
  void set_executor(NodeExecutor* exec) { exec_ = exec; }

  // Degraded-machine mode: build a RecoveryPlan for the injector's structural
  // faults (throws if the fault set partitions the machine) and account all
  // subsequent traffic against surviving hosts — including retransmissions
  // drawn from the injector's corruption stream.  Pass nullptr (or an
  // injector with no structural/stochastic faults) to return to the healthy
  // machine.  The injector must outlive this object.  Physics is unaffected:
  // forces stay bitwise-identical to the fault-free run.
  void set_fault_injector(const FaultInjector* faults);
  const RecoveryPlan* recovery_plan() const { return plan_.get(); }

  // Optional per-link accounting: every logged transfer is additionally
  // charged hop-by-hop along its dimension-ordered route into `links`
  // (which must be built over the same topology and outlive this object).
  // On a degraded machine the route runs between the surviving *hosts*.
  // Pass nullptr to stop accounting.
  void set_link_telemetry(hw::LinkTelemetry* links);

  // Long-range energy/forces, identical contract to Tme::compute, with
  // per-phase message accounting.
  CoulombResult compute(std::span<const Vec3> positions,
                        std::span<const double> charges, TrafficLog* log) const;

  // The distributed grid pipeline alone (finest charges in, finest
  // potentials out), for stage-level testing.
  DistributedGrid solve_potential(const DistributedGrid& finest_charges,
                                  TrafficLog* log) const;

 private:
  NodeExecutor& executor() const {
    return exec_ != nullptr ? *exec_ : *serial_exec_;
  }

  Box box_;
  Tme tme_;  // owns parameters, kernels, and the top-level SPME
  TorusTopology topo_;
  std::vector<GridDecomposition> level_decomp_;  // levels 1 .. L+1
  PipelineContext ctx_;
  std::unique_ptr<SerialExecutor> serial_exec_;
  NodeExecutor* exec_ = nullptr;  // non-owning override
  const FaultInjector* faults_ = nullptr;
  std::unique_ptr<RecoveryPlan> plan_;  // non-null only with structural faults
  hw::LinkTelemetry* links_ = nullptr;
};

// One dense (B-spline MSM) level convolution executed with per-node halo
// imports — the communication counterpart of the TME's separable passes.
// The halo volume per node is exactly the paper's MSM cost formula:
// (local + 2 g_c)^3 - local^3 = (8 + 12 gamma + 6 gamma^2) g_c^3 with
// gamma = local / g_c.
Grid3d parallel_msm_convolution(const Grid3d& in, const std::vector<double>& taps3d,
                                int cutoff, const TorusTopology& topo,
                                TrafficLog* log);

}  // namespace tme::par
