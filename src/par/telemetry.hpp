// Wire codec for kTelemetry shipments (worker -> coordinator).
//
// Payload layout (little-endian, inside the usual CRC-framed envelope):
//   u32 magic 'TLM1' | u32 rank | i64 pid | u64 seq |
//   u64 emitted | u64 dropped                      (cumulative counters)
//   u64 n_tracks | n x (str process, str name)     (chunk track table)
//   u64 n_events | n x (u8 type | u32 track | f64 ts | f64 dur | f64 value |
//                       u64 flow | str name | str detail)
//   str metrics_json                               ("" when metrics are off)
// where `str` is u64 length + raw bytes.  Decoding rejects oversized
// counts/strings loudly (wire::Error) instead of resizing into garbage.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/telemetry.hpp"

namespace tme::par {

std::vector<std::uint8_t> encode_telemetry(const obs::WorkerTelemetry& t);
obs::WorkerTelemetry decode_telemetry(const std::vector<std::uint8_t>& bytes);

}  // namespace tme::par
