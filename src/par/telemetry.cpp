#include "par/telemetry.hpp"

#include <string>

#include "par/wire.hpp"

namespace tme::par {

namespace {

constexpr std::uint32_t kTelemetryMagic = 0x314D4C54u;  // "TLM1"
constexpr std::uint64_t kMaxTracks = 1ull << 16;
constexpr std::uint64_t kMaxEvents = 1ull << 22;
constexpr std::uint64_t kMaxStringBytes = 1ull << 20;

void put_string(wire::Writer& w, const std::string& s) {
  w.u64(s.size());
  w.raw(s.data(), s.size());
}

std::string get_string(wire::Reader& r) {
  const std::size_t n = r.count(kMaxStringBytes);
  if (n > r.remaining()) throw wire::Error("telemetry: truncated string");
  std::string s(n, '\0');
  r.raw(s.data(), n);
  return s;
}

}  // namespace

std::vector<std::uint8_t> encode_telemetry(const obs::WorkerTelemetry& t) {
  wire::Writer w;
  w.u32(kTelemetryMagic);
  w.u32(t.rank);
  w.i64(t.pid);
  w.u64(t.seq);
  w.u64(t.chunk.emitted);
  w.u64(t.chunk.dropped);
  w.u64(t.chunk.tracks.size());
  for (const obs::TraceChunkTrack& track : t.chunk.tracks) {
    put_string(w, track.process);
    put_string(w, track.name);
  }
  w.u64(t.chunk.events.size());
  for (const obs::TraceEvent& e : t.chunk.events) {
    const std::uint8_t type = static_cast<std::uint8_t>(e.type);
    w.raw(&type, 1);
    w.u32(e.track);
    w.f64(e.ts_us);
    w.f64(e.dur_us);
    w.f64(e.value);
    w.u64(e.flow);
    put_string(w, e.name);
    put_string(w, e.detail);
  }
  put_string(w, t.metrics_json);
  return w.take();
}

obs::WorkerTelemetry decode_telemetry(const std::vector<std::uint8_t>& bytes) {
  wire::Reader r(bytes);
  if (r.u32() != kTelemetryMagic) {
    throw wire::Error("telemetry: bad payload magic");
  }
  obs::WorkerTelemetry t;
  t.rank = r.u32();
  t.pid = r.i64();
  t.seq = r.u64();
  t.chunk.emitted = r.u64();
  t.chunk.dropped = r.u64();
  const std::size_t n_tracks = r.count(kMaxTracks);
  t.chunk.tracks.reserve(n_tracks);
  for (std::size_t i = 0; i < n_tracks; ++i) {
    obs::TraceChunkTrack track;
    track.process = get_string(r);
    track.name = get_string(r);
    t.chunk.tracks.push_back(std::move(track));
  }
  const std::size_t n_events = r.count(kMaxEvents);
  t.chunk.events.reserve(n_events);
  for (std::size_t i = 0; i < n_events; ++i) {
    obs::TraceEvent e;
    std::uint8_t type = 0;
    r.raw(&type, 1);
    if (type > static_cast<std::uint8_t>(obs::TraceEventType::kFlowFinish)) {
      throw wire::Error("telemetry: unknown event type");
    }
    e.type = static_cast<obs::TraceEventType>(type);
    e.track = r.u32();
    e.ts_us = r.f64();
    e.dur_us = r.f64();
    e.value = r.f64();
    e.flow = r.u64();
    e.name = get_string(r);
    e.detail = get_string(r);
    if (e.track >= n_tracks) {
      throw wire::Error("telemetry: event track out of range");
    }
    t.chunk.events.push_back(std::move(e));
  }
  t.metrics_json = get_string(r);
  if (!r.done()) throw wire::Error("telemetry: trailing bytes");
  return t;
}

}  // namespace tme::par
