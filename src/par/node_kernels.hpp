// Pure per-node compute kernels of the parallel TME pipeline.
//
// Each function here is the body of one node's work in one pipeline phase
// (charge assignment, restriction, prolongation, one axis of the separable
// level convolution, back-interpolation), expressed as a pure function from
// a halo-carrying input buffer to that node's output block.  The coordinator
// (ParallelTme) owns all distributed state and traffic accounting; these
// kernels own none — which is what lets a NodeExecutor run them inline, on a
// worker thread, or in a forked worker process and still produce bitwise
// identical results: the same function over the same bytes.
//
// Workers deliberately avoid the thread pool (a forked child inherits dead
// pool threads), so everything here is plain scalar loops.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "grid/grid3d.hpp"
#include "grid/separable_conv.hpp"
#include "util/vec3.hpp"

namespace tme::par {

// An extended (halo-carrying) local buffer for one node: global coordinates
// [x0, x0+nx) x [y0, ...) x [z0, ...), unwrapped (may be negative).
struct ExtendedBlock {
  long x0 = 0, y0 = 0, z0 = 0;
  std::size_t nx = 0, ny = 0, nz = 0;
  std::vector<double> data;

  void reset(long x, long y, long z, std::size_t ex, std::size_t ey, std::size_t ez) {
    x0 = x;
    y0 = y;
    z0 = z;
    nx = ex;
    ny = ey;
    nz = ez;
    data.assign(ex * ey * ez, 0.0);
  }
  double& at(long gx, long gy, long gz) {
    return data[(static_cast<std::size_t>(gz - z0) * ny +
                 static_cast<std::size_t>(gy - y0)) *
                    nx +
                static_cast<std::size_t>(gx - x0)];
  }
  double at(long gx, long gy, long gz) const {
    return data[(static_cast<std::size_t>(gz - z0) * ny +
                 static_cast<std::size_t>(gy - y0)) *
                    nx +
                static_cast<std::size_t>(gx - x0)];
  }
};

// Restriction: coarse cell m at global (ox+mx, ...) accumulates fine cells
// 2m +- p/2 through the two-scale J stencil.  `halo` is the fine-grid halo
// buffer; `out_dims` the coarse local block.
Grid3d restrict_block(const ExtendedBlock& halo, long ox, long oy, long oz,
                      const GridDims& out_dims, int p,
                      std::span<const double> j_coeff);

// Prolongation: fine cell g draws coarse cells m with g = 2m + k, |k| <= p/2
// (parity-guarded).  `halo` is the coarse-grid halo buffer.
Grid3d prolong_block(const ExtendedBlock& halo, long ox, long oy, long oz,
                     const GridDims& out_dims, int p,
                     std::span<const double> j_coeff);

// One axis pass of the separable level convolution over a slab halo, with
// taps beyond the clamped reach folded into the level period n_axis.
Grid3d convolve_block_axis(const ExtendedBlock& halo, long ox, long oy, long oz,
                           const GridDims& out_dims, int axis, long reach,
                           std::size_t n_axis, const Kernel1d& kernel);

// Charge assignment: spread `positions`/`charges` (one node's atoms) into a
// sleeved buffer with the given origin/extents.  Throws std::logic_error when
// an atom's spline support exceeds the sleeve.
ExtendedBlock ca_spread_block(std::span<const Vec3> positions,
                              std::span<const double> charges, const Box& box,
                              const Vec3& h, int p, long x0, long y0, long z0,
                              std::size_t ex, std::size_t ey, std::size_t ez,
                              const GridDims& global);

// Back-interpolation: per-atom potential and force from the potential halo.
// `forces` is indexed like `positions`; `q_phi` is this node's partial
// sum of q_i * phi_i (the coordinator adds partials in node order).
struct BiBlockResult {
  std::vector<Vec3> forces;
  double q_phi = 0.0;
};
BiBlockResult bi_interpolate_block(const ExtendedBlock& halo,
                                   std::span<const Vec3> positions,
                                   std::span<const double> charges,
                                   const Box& box, const Vec3& h, int p,
                                   const GridDims& global);

}  // namespace tme::par
