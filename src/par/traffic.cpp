#include "par/traffic.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace tme::par {

void TrafficLog::add(const std::string& phase, std::size_t messages,
                     std::size_t words, std::size_t hops) {
  // Mirror every logged transfer into the global metrics registry (totals
  // plus a per-phase word gauge-style counter with spaces normalised).
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("par/traffic/messages").add(messages);
    reg.counter("par/traffic/words").add(words);
    std::string key = phase;
    std::replace(key.begin(), key.end(), ' ', '_');
    reg.counter("par/traffic/" + key + "/words").add(words);
  }
  for (PhaseTraffic& p : phases_) {
    if (p.phase == phase) {
      p.messages += messages;
      p.words += words;
      p.max_hops = std::max(p.max_hops, hops);
      p.word_hops += words * hops;
      return;
    }
  }
  phases_.push_back({phase, messages, words, hops, words * hops});
}

std::size_t TrafficLog::total_words() const {
  std::size_t sum = 0;
  for (const PhaseTraffic& p : phases_) sum += p.words;
  return sum;
}

std::size_t TrafficLog::total_messages() const {
  std::size_t sum = 0;
  for (const PhaseTraffic& p : phases_) sum += p.messages;
  return sum;
}

std::size_t TrafficLog::total_word_hops() const {
  std::size_t sum = 0;
  for (const PhaseTraffic& p : phases_) sum += p.word_hops;
  return sum;
}

std::size_t TrafficLog::words_in(const std::string& phase) const {
  for (const PhaseTraffic& p : phases_) {
    if (p.phase == phase) return p.words;
  }
  return 0;
}

std::string TrafficLog::report() const {
  std::string out =
      "  phase                        messages        words     max hops\n";
  char buf[160];
  for (const PhaseTraffic& p : phases_) {
    std::snprintf(buf, sizeof(buf), "  %-28s %8zu %12zu %12zu\n", p.phase.c_str(),
                  p.messages, p.words, p.max_hops);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-28s %8zu %12zu\n", "TOTAL",
                total_messages(), total_words());
  out += buf;
  return out;
}

}  // namespace tme::par
