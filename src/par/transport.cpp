#include "par/transport.hpp"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace tme::par {

// --- Frame codec -------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Message& m, std::uint64_t seq) {
  std::vector<std::uint8_t> out(kFrameHeaderBytes + m.payload.size() +
                                kFrameTrailerBytes);
  std::uint8_t* p = out.data();
  const std::uint32_t magic = kFrameMagic;
  const std::uint16_t type = static_cast<std::uint16_t>(m.type);
  const std::uint16_t reserved = 0;
  const std::uint64_t len = m.payload.size();
  std::memcpy(p + 0, &magic, 4);
  std::memcpy(p + 4, &type, 2);
  std::memcpy(p + 6, &reserved, 2);
  std::memcpy(p + 8, &seq, 8);
  std::memcpy(p + 16, &len, 8);
  std::memcpy(p + kFrameHeaderBytes, m.payload.data(), m.payload.size());
  const std::uint32_t crc =
      crc32(out.data(), kFrameHeaderBytes + m.payload.size());
  std::memcpy(p + kFrameHeaderBytes + m.payload.size(), &crc, 4);
  return out;
}

DecodeStatus decode_frame(const std::uint8_t* data, std::size_t len,
                          Message& out, std::size_t& consumed) {
  consumed = 0;
  if (len < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  std::uint32_t magic;
  std::memcpy(&magic, data, 4);
  if (magic != kFrameMagic) {
    throw TransportError("transport: bad frame magic (stream desynchronised)");
  }
  std::uint64_t payload_len;
  std::memcpy(&payload_len, data + 16, 8);
  if (payload_len > kMaxPayloadBytes) {
    throw TransportError("transport: frame length exceeds limit");
  }
  const std::size_t total = kFrameHeaderBytes +
                            static_cast<std::size_t>(payload_len) +
                            kFrameTrailerBytes;
  if (len < total) return DecodeStatus::kNeedMore;
  consumed = total;
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, data + total - kFrameTrailerBytes, 4);
  if (crc32(data, total - kFrameTrailerBytes) != stored_crc) {
    return DecodeStatus::kBadCrc;
  }
  std::uint16_t type;
  std::memcpy(&type, data + 4, 2);
  out.type = static_cast<MsgType>(type);
  std::memcpy(&out.seq, data + 8, 8);
  out.payload.assign(data + kFrameHeaderBytes,
                     data + kFrameHeaderBytes + payload_len);
  return DecodeStatus::kOk;
}

// --- InProcTransport ---------------------------------------------------------

namespace {

// One coordinator->worker byte-queue channel.
struct Chan {
  std::mutex m;
  std::condition_variable cv;
  std::deque<std::vector<std::uint8_t>> q;
  bool closed = false;

  void push(std::vector<std::uint8_t> frame) {
    {
      std::lock_guard<std::mutex> lock(m);
      if (closed) return;
      q.push_back(std::move(frame));
    }
    cv.notify_all();
  }
  void close() {
    {
      std::lock_guard<std::mutex> lock(m);
      closed = true;
    }
    cv.notify_all();
  }
};

}  // namespace

// All worker->coordinator queues share one lock and condition variable so the
// coordinator's recv_any can wait on every connection at once.
struct InProcTransport::State {
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::deque<std::vector<std::uint8_t>>> inbox;  // frames per worker
  std::vector<char> closed;
  std::vector<std::shared_ptr<Chan>> to_worker;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> tx_seq;  // coordinator->worker seq counters
  Rng fault_rng{2021};
};

namespace {

class InProcEndpoint : public Endpoint {
 public:
  InProcEndpoint(std::shared_ptr<InProcTransport::State> state,
                 std::shared_ptr<Chan> rx, std::size_t worker)
      : state_(std::move(state)), rx_(std::move(rx)), worker_(worker) {}

  RecvStatus recv(Message& out, std::chrono::milliseconds deadline) override {
    const auto until = std::chrono::steady_clock::now() + deadline;
    for (;;) {
      std::vector<std::uint8_t> frame;
      {
        std::unique_lock<std::mutex> lock(rx_->m);
        if (!rx_->cv.wait_until(lock, until, [&] {
              return !rx_->q.empty() || rx_->closed;
            })) {
          return RecvStatus::kTimeout;
        }
        if (rx_->q.empty()) return RecvStatus::kClosed;
        frame = std::move(rx_->q.front());
        rx_->q.pop_front();
      }
      std::size_t consumed = 0;
      const DecodeStatus st =
          decode_frame(frame.data(), frame.size(), out, consumed);
      if (st == DecodeStatus::kOk) return RecvStatus::kOk;
      // A corrupted frame is dropped whole; the sender's deadline machinery
      // retransmits.  Keep waiting for the remaining budget.
    }
  }

  bool send(const Message& m) override {
    std::vector<std::uint8_t> frame = encode_frame(m, tx_seq_++);
    {
      std::lock_guard<std::mutex> lock(state_->m);
      if (state_->closed[worker_]) return false;
      state_->inbox[worker_].push_back(std::move(frame));
    }
    state_->cv.notify_all();
    return true;
  }

  void crash() override {
    rx_->close();
    {
      std::lock_guard<std::mutex> lock(state_->m);
      state_->closed[worker_] = 1;
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<InProcTransport::State> state_;
  std::shared_ptr<Chan> rx_;
  std::size_t worker_;
  std::uint64_t tx_seq_ = 0;
};

}  // namespace

InProcTransport::InProcTransport(std::size_t workers, WorkerMain worker_main,
                                 TransportFaultPolicy fault)
    : state_(std::make_shared<State>()),
      worker_main_(std::move(worker_main)),
      fault_(fault) {
  if (workers == 0) {
    throw std::invalid_argument("InProcTransport: need at least one worker");
  }
  state_->inbox.resize(workers);
  state_->closed.assign(workers, 0);
  state_->to_worker.resize(workers);
  state_->threads.resize(workers);
  state_->tx_seq.assign(workers, 0);
  state_->fault_rng = Rng(fault.seed);
  worker_stats_.assign(workers, TransportStats{});
  for (std::size_t w = 0; w < workers; ++w) spawn(w);
}

void InProcTransport::spawn(std::size_t worker) {
  auto chan = std::make_shared<Chan>();
  state_->to_worker[worker] = chan;
  auto state = state_;
  auto main = worker_main_;
  state_->threads[worker] = std::thread([state, chan, worker, main] {
    InProcEndpoint ep(state, chan, worker);
    main(ep);
    // Worker returned (clean shutdown or crash drill): the connection closes,
    // exactly like a process exiting closes its socket.
    ep.crash();
  });
}

InProcTransport::~InProcTransport() {
  for (std::size_t w = 0; w < state_->to_worker.size(); ++w) {
    if (state_->to_worker[w]) state_->to_worker[w]->close();
  }
  {
    std::lock_guard<std::mutex> lock(state_->m);
    for (auto& c : state_->closed) c = 1;
  }
  state_->cv.notify_all();
  for (auto& t : state_->threads) {
    if (t.joinable()) t.join();
  }
}

std::size_t InProcTransport::worker_count() const {
  return state_->to_worker.size();
}

bool InProcTransport::alive(std::size_t worker) const {
  std::lock_guard<std::mutex> lock(state_->m);
  return state_->closed[worker] == 0;
}

void InProcTransport::send(std::size_t worker, const Message& m) {
  {
    std::lock_guard<std::mutex> lock(state_->m);
    if (state_->closed[worker]) {
      throw PeerDead(worker, "inproc transport: worker " +
                                 std::to_string(worker) + " is gone");
    }
  }
  std::vector<std::uint8_t> frame =
      encode_frame(m, state_->tx_seq[worker]++);
  if (fault_.delay_ms > 0) {
    // Outbound leg only: asymmetric delay for the clock-offset drills.
    std::this_thread::sleep_for(std::chrono::milliseconds(fault_.delay_ms));
  }
  if (fault_.active()) {
    if (fault_.drop_rate > 0.0 &&
        state_->fault_rng.uniform() < fault_.drop_rate) {
      ++stats_.frames_dropped;
      ++per_worker(worker).frames_dropped;
      return;  // eaten by the network; the deadline layer retransmits
    }
    if (fault_.corrupt_rate > 0.0 &&
        state_->fault_rng.uniform() < fault_.corrupt_rate) {
      // Flip one payload bit (or the CRC itself for empty payloads): the
      // receiver's CRC check rejects the frame without desynchronising.
      const std::size_t bit =
          static_cast<std::size_t>(state_->fault_rng.next_u64() %
                                   ((frame.size() - kFrameHeaderBytes) * 8));
      frame[kFrameHeaderBytes + bit / 8] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      ++stats_.frames_corrupted;
      ++per_worker(worker).frames_corrupted;
    }
  }
  stats_.bytes_sent += frame.size();
  ++stats_.messages_sent;
  TransportStats& ws = per_worker(worker);
  ws.bytes_sent += frame.size();
  ++ws.messages_sent;
  state_->to_worker[worker]->push(std::move(frame));
}

RecvStatus InProcTransport::recv(std::size_t worker, Message& out,
                                 std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    std::vector<std::uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(state_->m);
      if (!state_->cv.wait_until(lock, until, [&] {
            return !state_->inbox[worker].empty() || state_->closed[worker];
          })) {
        return RecvStatus::kTimeout;
      }
      if (state_->inbox[worker].empty()) return RecvStatus::kClosed;
      frame = std::move(state_->inbox[worker].front());
      state_->inbox[worker].pop_front();
    }
    std::size_t consumed = 0;
    const DecodeStatus st = decode_frame(frame.data(), frame.size(), out, consumed);
    if (st == DecodeStatus::kOk) {
      ++stats_.messages_received;
      stats_.bytes_received += frame.size();
      TransportStats& ws = per_worker(worker);
      ++ws.messages_received;
      ws.bytes_received += frame.size();
      return RecvStatus::kOk;
    }
    ++stats_.crc_rejects;
    ++per_worker(worker).crc_rejects;
  }
}

std::optional<Transport::AnyResult> InProcTransport::recv_any(
    const std::vector<char>& want, Message& out,
    std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    std::size_t ready = want.size();
    std::size_t dead = want.size();
    std::vector<std::uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(state_->m);
      const auto scan = [&] {
        ready = dead = want.size();
        for (std::size_t w = 0; w < want.size(); ++w) {
          if (!want[w]) continue;
          if (!state_->inbox[w].empty()) {
            ready = w;
            return true;
          }
          if (state_->closed[w] && dead == want.size()) dead = w;
        }
        return dead != want.size();
      };
      if (!state_->cv.wait_until(lock, until, scan)) return std::nullopt;
      if (ready == want.size()) {
        return AnyResult{dead, RecvStatus::kClosed};
      }
      frame = std::move(state_->inbox[ready].front());
      state_->inbox[ready].pop_front();
    }
    std::size_t consumed = 0;
    const DecodeStatus st = decode_frame(frame.data(), frame.size(), out, consumed);
    if (st == DecodeStatus::kOk) {
      ++stats_.messages_received;
      stats_.bytes_received += frame.size();
      TransportStats& ws = per_worker(ready);
      ++ws.messages_received;
      ws.bytes_received += frame.size();
      return AnyResult{ready, RecvStatus::kOk};
    }
    ++stats_.crc_rejects;
    ++per_worker(ready).crc_rejects;
  }
}

void InProcTransport::set_fault_policy(const TransportFaultPolicy& fault) {
  // Coordinator-thread only, like send(): fault_ and the shared rng are
  // never touched by worker threads.  Reseeding makes a replayed schedule
  // mangle bit-identical frames.
  fault_ = fault;
  state_->fault_rng = Rng(fault.seed);
}

void InProcTransport::kill(std::size_t worker) {
  state_->to_worker[worker]->close();
  {
    std::lock_guard<std::mutex> lock(state_->m);
    state_->closed[worker] = 1;
  }
  state_->cv.notify_all();
}

void InProcTransport::respawn(std::size_t worker) {
  kill(worker);
  if (state_->threads[worker].joinable()) state_->threads[worker].join();
  {
    std::lock_guard<std::mutex> lock(state_->m);
    state_->closed[worker] = 0;
    state_->inbox[worker].clear();
    state_->tx_seq[worker] = 0;
  }
  spawn(worker);
}

}  // namespace tme::par
