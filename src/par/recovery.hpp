// Graceful degradation of the distributed TME on a faulted machine.
//
// When a node dies, the paper's machine cannot simply drop its grid blocks:
// the decomposition re-homes them on surviving torus neighbours and every
// message that would have touched the dead node is routed to (and accounted
// against) the hosting node instead, over fault-aware detour routes.  The
// RecoveryPlan is the static part of that story: a logical-node -> physical
// -host mapping plus an all-pairs fault-aware hop table, computed once per
// fault set and shared by every phase of the pipeline.
//
// The physics is untouched — blocks keep their logical identity, so a
// degraded run produces bitwise-identical forces; only the measured traffic
// (hops, messages, retransmissions) reflects the damage.
#pragma once

#include <cstddef>
#include <vector>

#include "hw/fault.hpp"
#include "hw/torus.hpp"

namespace tme::par {

using hw::FaultInjector;
using hw::TorusTopology;

class RecoveryPlan {
 public:
  // Builds the host mapping: every dead node's blocks move to the nearest
  // alive node (Manhattan metric, lowest index breaks ties — with isolated
  // single-node failures that is always a torus neighbour).  Throws
  // std::runtime_error if the fault set isolates part of the machine
  // (unreachable partitions cannot recover each other's blocks) or kills
  // every node.
  RecoveryPlan(const TorusTopology& topo, const FaultInjector& faults);

  const FaultInjector& faults() const { return *faults_; }

  // Physical node hosting the given logical node's blocks (identity for
  // alive nodes).
  std::size_t host(std::size_t node) const { return host_[node]; }
  std::size_t dead_count() const { return dead_count_; }

  // Fault-aware hop count between the *hosts* of two logical nodes (0 when
  // both land on the same survivor).
  std::size_t hops(std::size_t from, std::size_t to) const;

  // True when the healthy machine's dimension-ordered route between the two
  // hosts crosses a dead node or dead link, forcing the adaptive router onto
  // a detour (which may or may not be longer).
  bool rerouted(std::size_t from, std::size_t to) const;

  // Host pairs (unordered) whose dimension-ordered route is broken — the
  // re-route count the acceptance soak asserts on.
  std::size_t reroute_count() const { return reroute_count_; }

 private:
  const TorusTopology* topo_ = nullptr;
  const FaultInjector* faults_ = nullptr;
  std::vector<std::size_t> host_;
  std::vector<std::size_t> hop_table_;  // node_count^2, host-to-host distances
  std::vector<char> reroute_table_;     // node_count^2, DOR route broken?
  std::size_t dead_count_ = 0;
  std::size_t reroute_count_ = 0;
};

}  // namespace tme::par
