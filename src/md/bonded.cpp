#include "md/bonded.hpp"

#include <algorithm>
#include <cmath>

namespace tme {

BondedResult compute_bonded(ParticleSystem& system, const Topology& topology) {
  BondedResult out;

  for (const Bond& b : topology.bonds()) {
    const Vec3 d = system.box.min_image_disp(system.positions[b.i],
                                             system.positions[b.j]);
    const double r = norm(d);
    const double dr = r - b.length;
    out.energy_bonds += 0.5 * b.force_constant * dr * dr;
    // F_i = -k dr * d/r.
    const Vec3 f = (-b.force_constant * dr / r) * d;
    system.forces[b.i] += f;
    system.forces[b.j] -= f;
  }

  for (const Angle& a : topology.angles()) {
    const Vec3 rij = system.box.min_image_disp(system.positions[a.i],
                                               system.positions[a.j]);
    const Vec3 rkj = system.box.min_image_disp(system.positions[a.k],
                                               system.positions[a.j]);
    const double nij = norm(rij), nkj = norm(rkj);
    double cos_t = dot(rij, rkj) / (nij * nkj);
    cos_t = std::clamp(cos_t, -1.0, 1.0);
    const double theta = std::acos(cos_t);
    const double dtheta = theta - a.theta0;
    out.energy_angles += 0.5 * a.force_constant * dtheta * dtheta;

    // dE/dtheta, chain rule through cos(theta); guard the sin singularity.
    const double sin_t = std::max(std::sqrt(1.0 - cos_t * cos_t), 1e-12);
    const double de_dtheta = a.force_constant * dtheta;
    const double factor = -de_dtheta / sin_t;  // dE/dcos
    const Vec3 dcos_di = (rkj / (nij * nkj)) - (cos_t / (nij * nij)) * rij;
    const Vec3 dcos_dk = (rij / (nij * nkj)) - (cos_t / (nkj * nkj)) * rkj;
    const Vec3 fi = factor * dcos_di;
    const Vec3 fk = factor * dcos_dk;
    system.forces[a.i] -= fi;
    system.forces[a.k] -= fk;
    system.forces[a.j] += fi + fk;
  }
  for (const Dihedral& d : topology.dihedrals()) {
    // Standard torsion geometry: b1 = rj - ri, b2 = rk - rj, b3 = rl - rk.
    const Vec3 b1 = system.box.min_image_disp(system.positions[d.j],
                                              system.positions[d.i]);
    const Vec3 b2 = system.box.min_image_disp(system.positions[d.k],
                                              system.positions[d.j]);
    const Vec3 b3 = system.box.min_image_disp(system.positions[d.l],
                                              system.positions[d.k]);
    const Vec3 n1 = cross(b1, b2);
    const Vec3 n2 = cross(b2, b3);
    const double b2_len = norm(b2);
    const double phi = std::atan2(dot(cross(n1, n2), b2) / b2_len, dot(n1, n2));

    const double arg = d.multiplicity * phi - d.phi0;
    out.energy_dihedrals += d.force_constant * (1.0 + std::cos(arg));
    const double dv_dphi = -d.force_constant * d.multiplicity * std::sin(arg);

    // Forces (the standard |b2|-weighted normal formulation); guarded
    // against collinear geometries where the torsion is undefined.
    const double n1_2 = norm2(n1);
    const double n2_2 = norm2(n2);
    if (n1_2 < 1e-14 || n2_2 < 1e-14) continue;
    const Vec3 f_i = (dv_dphi * b2_len / n1_2) * n1;
    const Vec3 f_l = (-dv_dphi * b2_len / n2_2) * n2;
    const Vec3 s = (dot(b1, b2) / (b2_len * b2_len)) * f_i -
                   (dot(b3, b2) / (b2_len * b2_len)) * f_l;
    system.forces[d.i] += f_i;
    system.forces[d.j] += -s - f_i;
    system.forces[d.k] += s - f_l;
    system.forces[d.l] += f_l;
  }
  return out;
}

}  // namespace tme
