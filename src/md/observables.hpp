// Trajectory observables: radial distribution functions and mean-square
// displacement — the standard structure/dynamics checks for a water box.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace tme {

struct RdfResult {
  std::vector<double> r;     // bin centres, nm
  std::vector<double> g;     // g(r)
  std::size_t samples = 0;   // frames accumulated
};

// Accumulates pair histograms between two (possibly identical) index sets.
class RdfAccumulator {
 public:
  RdfAccumulator(double r_max, std::size_t bins);

  // One frame: positions plus the two index groups (pass the same group
  // twice for a like-like RDF; self pairs are skipped).
  void accumulate(const Box& box, std::span<const Vec3> positions,
                  std::span<const std::size_t> group_a,
                  std::span<const std::size_t> group_b);

  // Normalised g(r) (ideal-gas reference at the box density of group_b).
  RdfResult result() const;

 private:
  double r_max_;
  std::size_t bins_;
  std::vector<double> histogram_;
  double pair_norm_ = 0.0;  // sum over frames of n_a * rho_b
  std::size_t frames_ = 0;
};

// Mean-square displacement of tracked particles relative to stored initial
// positions, with periodic unwrapping (positions must be sampled often
// enough that no particle moves more than half a box between samples).
class MsdTracker {
 public:
  MsdTracker(const Box& box, std::span<const Vec3> initial,
             std::span<const std::size_t> group);

  // Feed the next sample; returns the current MSD in nm^2.
  double update(std::span<const Vec3> positions);

 private:
  Box box_;
  std::vector<std::size_t> group_;
  std::vector<Vec3> reference_;   // initial positions
  std::vector<Vec3> unwrapped_;   // running unwrapped positions
  std::vector<Vec3> last_;        // previous wrapped sample
};

}  // namespace tme
