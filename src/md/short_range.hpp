// Short-range nonbonded interactions — the workload of MDGRAPE-4A's 64
// dedicated nonbond pipelines (paper Sec. II): the erfc-screened real-space
// Coulomb term of the Ewald splitting plus Lennard-Jones, evaluated with a
// cell list under the minimum-image convention, skipping excluded pairs.
#pragma once

#include <span>
#include <vector>

#include "md/system.hpp"
#include "md/topology.hpp"

namespace tme {

struct ShortRangeParams {
  double cutoff = 1.2;     // nm, shared by LJ and real-space Coulomb
  double alpha = 3.0;      // Ewald splitting parameter, nm^-1
  bool shift_lj = false;   // subtract LJ at the cutoff (energy continuity)
};

struct ShortRangeResult {
  double energy_coulomb = 0.0;  // kJ/mol (erfc part)
  double energy_lj = 0.0;       // kJ/mol
  std::size_t pair_count = 0;   // pairs inside the cutoff (after exclusions)
};

// Accumulates forces into system.forces (does not clear them).
ShortRangeResult compute_short_range(ParticleSystem& system, const Topology& topology,
                                     const ShortRangeParams& params);

// Correction for excluded pairs: the mesh (long-range) solvers include the
// erf part for *all* pairs, so for every excluded pair subtract
// q_i q_j erf(alpha r)/r (energy and force).  Accumulates into forces.
double apply_exclusion_corrections(ParticleSystem& system, const Topology& topology,
                                   double alpha);

}  // namespace tme
