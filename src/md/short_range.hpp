// Short-range nonbonded interactions — the workload of MDGRAPE-4A's 64
// dedicated nonbond pipelines (paper Sec. II): the erfc-screened real-space
// Coulomb term of the Ewald splitting plus Lennard-Jones, evaluated with a
// cell list under the minimum-image convention, skipping excluded pairs.
//
// Two evaluators share these parameter/result types:
//  - compute_short_range (below): the serial reference loop, kept as the
//    equivalence baseline for tests;
//  - ShortRangeEngine (md/short_range_engine.hpp): the production path —
//    parallel cell traversal, precombined LJ table, optional tabulated
//    Coulomb kernel mirroring the hardware's table-lookup evaluators.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "md/system.hpp"
#include "md/topology.hpp"

namespace tme {

class ThreadPool;

// How the real-space (erfc) Coulomb kernel is evaluated per pair.
enum class CoulombKernel {
  kAnalytic,   // std::erfc / std::sqrt per pair (exact)
  kTabulated,  // segmented-polynomial table in r² (hardware-faithful; see
               // ewald/force_table.hpp for the measured accuracy bound)
};

struct ShortRangeParams {
  double cutoff = 1.2;     // nm, shared by LJ and real-space Coulomb
  double alpha = 3.0;      // Ewald splitting parameter, nm^-1
  bool shift_lj = false;   // subtract LJ at the cutoff (energy continuity)

  // Kernel selection (used by ShortRangeEngine; the serial reference loop is
  // always analytic).  The table covers [table_r_min, cutoff] and falls back
  // to the analytic kernel below table_r_min.
  CoulombKernel kernel = CoulombKernel::kAnalytic;
  double table_r_min = 0.1;           // nm
  std::size_t table_segments = 4096;

  // Multiplies the Newton's-third-law (net-force) ABFT tolerance — the same
  // loosening knob as GuardedTmeConfig::tolerance_scale, for reduced formats.
  double abft_tolerance_scale = 1.0;

  // Which instantiation of the batched pair kernel the engine runs: follow
  // the TME_SIMD environment knob (default), or pin scalar/native for A/B
  // sweeps within one process (bench_shortrange, parity tests).  Scalar and
  // native are bitwise identical per build (see util/simd.hpp).
  enum class SimdChoice { kEnv, kScalar, kNative };
  SimdChoice simd = SimdChoice::kEnv;
};

struct ShortRangeResult {
  double energy_coulomb = 0.0;  // kJ/mol (erfc part)
  double energy_lj = 0.0;       // kJ/mol
  std::size_t pair_count = 0;   // pairs inside the cutoff (after exclusions)

  // Newton's-third-law ABFT check (filled by ShortRangeEngine).  Every pair
  // accumulates +f on one particle and -f on the other, so the engine's own
  // contribution sums to zero up to reduction rounding; an SDC flip in a
  // force accumulator breaks the cancellation.
  Vec3 net_force{};                  // engine's summed force contribution
  double net_force_tolerance = 0.0;  // rounding envelope for that sum
  bool third_law_ok = true;          // |net_force| within tolerance, per axis
};

// Serial reference evaluator.  Accumulates forces into system.forces (does
// not clear them).  Production code should prefer ShortRangeEngine.
ShortRangeResult compute_short_range(ParticleSystem& system, const Topology& topology,
                                     const ShortRangeParams& params);

// Correction for excluded pairs: the mesh (long-range) solvers include the
// erf part for *all* pairs, so for every excluded pair subtract
// q_i q_j erf(alpha r)/r (energy and force).  Accumulates into forces.
//
// The per-pair kernel evaluations run on `pool` (nullptr = the process-wide
// pool); the scatter into forces and the energy sum stay serial in exclusion
// list order, so the result is bitwise identical for every pool size.
double apply_exclusion_corrections(ParticleSystem& system, const Topology& topology,
                                   double alpha, ThreadPool* pool = nullptr);

}  // namespace tme
