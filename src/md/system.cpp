#include "md/system.hpp"

#include <stdexcept>

#include "util/constants.hpp"

namespace tme {

void ParticleSystem::resize(std::size_t n) {
  positions.resize(n);
  velocities.resize(n);
  forces.resize(n);
  masses.resize(n, 0.0);
  charges.resize(n, 0.0);
}

double ParticleSystem::kinetic_energy() const {
  double ke = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    ke += 0.5 * masses[i] * norm2(velocities[i]);
  }
  return ke;
}

double ParticleSystem::temperature(std::size_t dof) const {
  if (dof == 0) throw std::invalid_argument("temperature: dof must be positive");
  return 2.0 * kinetic_energy() /
         (static_cast<double>(dof) * constants::kBoltzmann);
}

Vec3 ParticleSystem::momentum() const {
  Vec3 p{};
  for (std::size_t i = 0; i < size(); ++i) p += masses[i] * velocities[i];
  return p;
}

void ParticleSystem::remove_com_motion() {
  double total_mass = 0.0;
  for (const double m : masses) total_mass += m;
  if (total_mass <= 0.0) return;
  const Vec3 v_com = momentum() / total_mass;
  for (auto& v : velocities) v -= v_com;
}

void ParticleSystem::wrap_positions() {
  for (auto& r : positions) r = box.wrap(r);
}

}  // namespace tme
