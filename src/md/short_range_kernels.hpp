// Batched pair-interaction kernels for the short-range engine — the
// vectorized heart of the software nonbond pipelines.
//
// The engine's cell sweep filters candidate pairs (cutoff + exclusions) into
// a PairBatch of SoA lanes, evaluate_pair_batch() computes every pair's
// energies and force magnitude with the portable SIMD layer (util/simd.hpp),
// and the engine scatters the results back in enumeration order.  The
// expensive per-pair math — the segmented-polynomial erfc table in r² and
// the precombined Lorentz–Berthelot LJ term — runs W pairs at a time; the
// scalar twin (W = 1) executes the identical op sequence, so the two modes
// are bitwise interchangeable (TME_SIMD=scalar|native).
//
// This translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt) so the parity contract survives compiler fusion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ewald/force_table.hpp"
#include "util/simd.hpp"

namespace tme {

// SoA batch of filtered pairs (inside the cutoff, not excluded), kept in
// cell-sweep enumeration order so the scalar accumulation that follows is
// bitwise independent of the evaluation width.
struct PairBatch {
  // Inputs, one entry per pair.
  std::vector<double> dx, dy, dz;      // minimum-image displacement a - b
  std::vector<double> r2;              // |d|²
  std::vector<double> qq;              // kCoulomb * q_a * q_b
  std::vector<double> c6, c12, e_shift;  // mixed LJ parameters
  std::vector<std::uint32_t> ia, ib;   // cell-sorted particle indices

  // Outputs of evaluate_pair_batch, parallel to the inputs.
  std::vector<double> e_coul, e_lj, f_over_r;

  // Real (unpadded) pair count — the bound for the accumulation loop.
  std::size_t size() const { return count_; }

  void clear();
  void reserve(std::size_t n);

  void push(double dx_, double dy_, double dz_, double r2_, double qq_,
            double c6_, double c12_, double e_shift_, std::uint32_t ia_,
            std::uint32_t ib_) {
    dx.push_back(dx_);
    dy.push_back(dy_);
    dz.push_back(dz_);
    r2.push_back(r2_);
    qq.push_back(qq_);
    c6.push_back(c6_);
    c12.push_back(c12_);
    e_shift.push_back(e_shift_);
    ia.push_back(ia_);
    ib.push_back(ib_);
    ++count_;
  }

  // Pads the input arrays with benign entries (r2 = 1, everything else 0) up
  // to a multiple of `width`, so the vector loop never reads a partial lane;
  // size() keeps reporting the real pair count.  Also sizes the output
  // arrays.  Call once after the last push and before evaluation.
  void finalize(int width);

 private:
  std::size_t count_ = 0;
  std::size_t padded_ = 0;
};

// Coulomb kernel configuration for a batch evaluation: `table` selects the
// segmented-polynomial r² path (non-null) or the analytic erfc path.
struct PairKernelConfig {
  double alpha = 0.0;
  const ForceTable* table = nullptr;
};

// Fills batch.e_coul / e_lj / f_over_r for every pair.  `mode` picks the
// native-width or the W = 1 instantiation of the same kernel template; both
// produce bitwise-identical outputs.  The analytic Coulomb path (erfc/sqrt)
// stays scalar per lane in both modes — only the LJ term vectorizes there;
// the tabulated path vectorizes end to end.
void evaluate_pair_batch(PairBatch& batch, const PairKernelConfig& config,
                         simd::Mode mode);

}  // namespace tme
