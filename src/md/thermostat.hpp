// Velocity-rescaling thermostats for equilibration.
//
// The paper's production runs are NVE; these are utilities for preparing
// states (examples/benches equilibrate with Berendsen-style weak coupling,
// then switch the thermostat off for the measured NVE stretch).
#pragma once

#include <cstddef>

#include "md/system.hpp"

namespace tme {

struct BerendsenParams {
  double target_temperature = 300.0;  // K
  double time_constant = 0.1;         // ps (tau)
  std::size_t dof = 0;                // degrees of freedom (required)
};

// One coupling step: rescales velocities by sqrt(1 + dt/tau (T0/T - 1)).
// Returns the applied scale factor.
double apply_berendsen(ParticleSystem& system, const BerendsenParams& params,
                       double dt);

// Hard rescale to the target temperature (used by crude equilibration).
double rescale_to_temperature(ParticleSystem& system, double target, std::size_t dof);

}  // namespace tme
