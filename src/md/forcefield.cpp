#include "md/forcefield.hpp"

#include <stdexcept>

namespace tme {

ForceField::ForceField(ShortRangeParams short_range,
                       std::unique_ptr<LongRangeSolver> solver)
    : short_range_(short_range), engine_(short_range), solver_(std::move(solver)) {
  if (!solver_) throw std::invalid_argument("ForceField: null long-range solver");
  if (solver_->alpha() != short_range_.alpha) {
    throw std::invalid_argument(
        "ForceField: short-range and long-range alpha must match");
  }
}

EnergyReport ForceField::evaluate(ParticleSystem& system,
                                  const Topology& topology) const {
  EnergyReport report;
  system.forces.assign(system.size(), Vec3{});

  const ShortRangeResult sr = engine_.compute(system, topology);
  report.coulomb_short = sr.energy_coulomb;
  report.lj = sr.energy_lj;

  const BondedResult bonded = compute_bonded(system, topology);
  report.bonds = bonded.energy_bonds;
  report.angles = bonded.energy_angles;
  report.dihedrals = bonded.energy_dihedrals;

  const CoulombResult lr = solver_->compute(system.positions, system.charges);
  report.coulomb_long = lr.energy;
  for (std::size_t i = 0; i < system.size(); ++i) system.forces[i] += lr.forces[i];

  report.coulomb_exclusion =
      apply_exclusion_corrections(system, topology, short_range_.alpha);

  return report;
}

}  // namespace tme
