#include "md/forcefield.hpp"

#include <stdexcept>

#include "ewald/reference_ewald.hpp"

namespace tme {

namespace {

class SpmeSolver final : public LongRangeSolver {
 public:
  SpmeSolver(const Box& box, const SpmeParams& params) : spme_(box, params) {}
  CoulombResult compute(const Box& box, std::span<const Vec3> positions,
                        std::span<const double> charges) const override {
    (void)box;  // geometry fixed at construction
    return spme_.compute(positions, charges);
  }
  std::string name() const override { return "SPME"; }
  double alpha() const override { return spme_.params().alpha; }

 private:
  Spme spme_;
};

class TmeSolver final : public LongRangeSolver {
 public:
  TmeSolver(const Box& box, const TmeParams& params) : tme_(box, params) {}
  CoulombResult compute(const Box& box, std::span<const Vec3> positions,
                        std::span<const double> charges) const override {
    (void)box;
    return tme_.compute(positions, charges);
  }
  std::string name() const override { return "TME"; }
  double alpha() const override { return tme_.params().alpha; }

 private:
  Tme tme_;
};

class EwaldSolver final : public LongRangeSolver {
 public:
  EwaldSolver(double alpha, int n_cut) : alpha_(alpha), n_cut_(n_cut) {}
  CoulombResult compute(const Box& box, std::span<const Vec3> positions,
                        std::span<const double> charges) const override {
    // Long-range part only: a reference Ewald with a vanishing real-space
    // cutoff leaves reciprocal + self, exactly what the mesh methods compute.
    EwaldParams params;
    params.alpha = alpha_;
    params.n_cut = n_cut_;
    params.r_cut = 1e-9;
    return ewald_reference(box, positions, charges, params);
  }
  std::string name() const override { return "Ewald"; }
  double alpha() const override { return alpha_; }

 private:
  double alpha_;
  int n_cut_;
};

}  // namespace

std::unique_ptr<LongRangeSolver> make_spme_solver(const Box& box,
                                                  const SpmeParams& params) {
  return std::make_unique<SpmeSolver>(box, params);
}

std::unique_ptr<LongRangeSolver> make_tme_solver(const Box& box,
                                                 const TmeParams& params) {
  return std::make_unique<TmeSolver>(box, params);
}

std::unique_ptr<LongRangeSolver> make_ewald_solver(double alpha, int n_cut) {
  return std::make_unique<EwaldSolver>(alpha, n_cut);
}

ForceField::ForceField(ShortRangeParams short_range,
                       std::unique_ptr<LongRangeSolver> solver)
    : short_range_(short_range), engine_(short_range), solver_(std::move(solver)) {
  if (!solver_) throw std::invalid_argument("ForceField: null long-range solver");
  if (solver_->alpha() != short_range_.alpha) {
    throw std::invalid_argument(
        "ForceField: short-range and long-range alpha must match");
  }
}

EnergyReport ForceField::evaluate(ParticleSystem& system,
                                  const Topology& topology) const {
  EnergyReport report;
  system.forces.assign(system.size(), Vec3{});

  const ShortRangeResult sr = engine_.compute(system, topology);
  report.coulomb_short = sr.energy_coulomb;
  report.lj = sr.energy_lj;

  const BondedResult bonded = compute_bonded(system, topology);
  report.bonds = bonded.energy_bonds;
  report.angles = bonded.energy_angles;
  report.dihedrals = bonded.energy_dihedrals;

  const CoulombResult lr =
      solver_->compute(system.box, system.positions, system.charges);
  report.coulomb_long = lr.energy;
  for (std::size_t i = 0; i < system.size(); ++i) system.forces[i] += lr.forces[i];

  report.coulomb_exclusion =
      apply_exclusion_corrections(system, topology, short_range_.alpha);

  return report;
}

}  // namespace tme
