// Buffered Verlet pair list.
//
// The cell-list search of short_range.cpp rebuilds every step; this class
// implements the standard buffered ("skin") scheme the paper references via
// GROMACS' verlet-buffer-tolerance: pairs are gathered once within
// cutoff + buffer and reused until any atom has moved half the buffer,
// which bounds the worst-case missed-pair displacement.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace tme {

class PairList {
 public:
  // `buffer` is the skin width in nm (typical 0.1-0.2 for 1-2 fs steps).
  PairList(double cutoff, double buffer);

  // Rebuilds if stale (first call, or max displacement > buffer/2);
  // returns true if a rebuild happened.
  bool update(const Box& box, std::span<const Vec3> positions,
              const Topology& topology);

  // Pairs within cutoff + buffer (excluded pairs already removed).  Callers
  // must still test the actual distance against the bare cutoff.
  const std::vector<std::pair<std::size_t, std::size_t>>& pairs() const {
    return pairs_;
  }

  double cutoff() const { return cutoff_; }
  double buffer() const { return buffer_; }
  std::size_t rebuild_count() const { return rebuilds_; }

 private:
  double cutoff_;
  double buffer_;
  std::vector<std::pair<std::size_t, std::size_t>> pairs_;
  std::vector<Vec3> reference_positions_;
  std::size_t rebuilds_ = 0;
};

// Short-range evaluation through a pair list (same physics as
// compute_short_range, different pair source).
struct ShortRangeParams;  // md/short_range.hpp
struct ShortRangeResult;
ShortRangeResult compute_short_range_with_list(struct ParticleSystem& system,
                                               const Topology& topology,
                                               const ShortRangeParams& params,
                                               PairList& list);

}  // namespace tme
