#include "md/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace tme {

void Topology::add_rigid_water(const RigidWater& w) {
  rigid_waters_.push_back(w);
  add_exclusion(w.o, w.h1);
  add_exclusion(w.o, w.h2);
  add_exclusion(w.h1, w.h2);
}

void Topology::add_exclusion(std::size_t i, std::size_t j) {
  if (i == j) throw std::invalid_argument("add_exclusion: i == j");
  exclusions_.emplace_back(std::min(i, j), std::max(i, j));
}

void Topology::build_exclusions_from_bonded() {
  for (const Bond& b : bonds_) add_exclusion(b.i, b.j);
  for (const Angle& a : angles_) {
    add_exclusion(a.i, a.j);
    add_exclusion(a.j, a.k);
    add_exclusion(a.i, a.k);
  }
}

void Topology::finalize(std::size_t n_atoms) {
  std::sort(exclusions_.begin(), exclusions_.end());
  exclusions_.erase(std::unique(exclusions_.begin(), exclusions_.end()),
                    exclusions_.end());
  for (const auto& [i, j] : exclusions_) {
    if (i >= n_atoms || j >= n_atoms) {
      throw std::out_of_range("Topology::finalize: exclusion index out of range");
    }
  }
  // Build symmetric CSR adjacency.
  excl_offsets_.assign(n_atoms + 1, 0);
  for (const auto& [i, j] : exclusions_) {
    ++excl_offsets_[i + 1];
    ++excl_offsets_[j + 1];
  }
  for (std::size_t a = 0; a < n_atoms; ++a) excl_offsets_[a + 1] += excl_offsets_[a];
  excl_neighbours_.resize(exclusions_.size() * 2);
  std::vector<std::size_t> cursor(excl_offsets_.begin(), excl_offsets_.end() - 1);
  for (const auto& [i, j] : exclusions_) {
    excl_neighbours_[cursor[i]++] = j;
    excl_neighbours_[cursor[j]++] = i;
  }
  for (std::size_t a = 0; a < n_atoms; ++a) {
    std::sort(excl_neighbours_.begin() + static_cast<long>(excl_offsets_[a]),
              excl_neighbours_.begin() + static_cast<long>(excl_offsets_[a + 1]));
  }
}

bool Topology::excluded(std::size_t i, std::size_t j) const {
  if (excl_offsets_.empty()) return false;
  if (i + 1 >= excl_offsets_.size()) return false;
  const auto begin = excl_neighbours_.begin() + static_cast<long>(excl_offsets_[i]);
  const auto end = excl_neighbours_.begin() + static_cast<long>(excl_offsets_[i + 1]);
  return std::binary_search(begin, end, j);
}

}  // namespace tme
