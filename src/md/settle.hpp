// Holonomic constraints for rigid 3-site water.
//
// The paper's NVE runs (Fig. 4) restrain the water geometry with SETTLE
// (Miyamoto & Kollman 1992), the analytical solution of the three-distance
// constraint problem.  An iterative SHAKE/RATTLE solver is provided as the
// independent reference implementation the SETTLE unit tests validate
// against, and as the fallback for non-water constraint patterns.
#pragma once

#include <span>
#include <vector>

#include "md/system.hpp"
#include "md/topology.hpp"

namespace tme {

enum class ConstraintMethod { kSettle, kShake };

struct ConstraintParams {
  double d_oh = 0.09572;        // nm (TIP3P)
  double theta_hoh_deg = 104.52;
  double shake_tolerance = 1e-10;
  int shake_max_iterations = 500;

  double d_hh() const;
};

class WaterConstraints {
 public:
  WaterConstraints(const Topology& topology, std::span<const double> masses,
                   const ConstraintParams& params);

  // Constrains `positions` so each water triangle is rigid again.  `previous`
  // must satisfy the constraints (it supplies the reference orientation /
  // SHAKE directions).  If `velocities` is non-null they receive the
  // position correction divided by dt (the velocity-Verlet constraint
  // force contribution).
  void apply_positions(const Box& box, std::span<const Vec3> previous,
                       std::vector<Vec3>& positions, std::vector<Vec3>* velocities,
                       double dt, ConstraintMethod method) const;

  // Removes relative velocity components along the constrained bonds
  // (RATTLE projection; used after the second velocity half-kick).
  void project_velocities(const Box& box, std::span<const Vec3> positions,
                          std::vector<Vec3>& velocities) const;

  // Largest |r_ij - d_ij| over all constraints (diagnostics/tests).
  double max_violation(const Box& box, std::span<const Vec3> positions) const;

 private:
  struct Triplet {
    std::size_t o, h1, h2;
  };
  void settle_one(const Box& box, const Triplet& t, std::span<const Vec3> previous,
                  std::vector<Vec3>& positions) const;
  void shake_one(const Box& box, const Triplet& t, std::span<const Vec3> previous,
                 std::vector<Vec3>& positions) const;

  std::vector<Triplet> waters_;
  ConstraintParams params_;
  double m_o_ = 0.0, m_h_ = 0.0;
  double ra_ = 0.0, rb_ = 0.0, rc_ = 0.0;  // canonical SETTLE triangle
};

}  // namespace tme
