// Particle system state for molecular dynamics.
//
// Units: nm, ps, u (g/mol), e, kJ/mol — the GROMACS unit system.  With these
// units forces come out in kJ mol^-1 nm^-1 and accelerations in nm/ps^2
// without conversion factors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/vec3.hpp"

namespace tme {

struct ParticleSystem {
  Box box;
  std::vector<Vec3> positions;   // nm
  std::vector<Vec3> velocities;  // nm/ps
  std::vector<Vec3> forces;      // kJ mol^-1 nm^-1
  std::vector<double> masses;    // u
  std::vector<double> charges;   // e

  std::size_t size() const { return positions.size(); }

  void resize(std::size_t n);

  // Kinetic energy in kJ/mol: sum m v^2 / 2.
  double kinetic_energy() const;

  // Instantaneous temperature from the kinetic energy with `dof` degrees of
  // freedom (pass 3N - n_constraints - 3 for a constrained system with COM
  // motion removed).
  double temperature(std::size_t dof) const;

  // Total linear momentum (u nm/ps).
  Vec3 momentum() const;

  // Remove centre-of-mass velocity.
  void remove_com_motion();

  // Wrap all positions into the primary box image.
  void wrap_positions();
};

}  // namespace tme
