#include "md/integrator.hpp"

namespace tme {

VelocityVerlet::VelocityVerlet(const Topology& topology,
                               const ParticleSystem& system, IntegratorParams params)
    : params_(params),
      constraints_(topology, system.masses, ConstraintParams{}) {}

StepReport VelocityVerlet::prime(ParticleSystem& system, const Topology& topology,
                                 const ForceField& ff) const {
  StepReport report;
  constraints_.project_velocities(system.box, system.positions, system.velocities);
  report.energies = ff.evaluate(system, topology);
  report.kinetic = system.kinetic_energy();
  return report;
}

StepReport VelocityVerlet::step(ParticleSystem& system, const Topology& topology,
                                const ForceField& ff) const {
  const double dt = params_.dt;
  const std::size_t n = system.size();

  // Phase 1: half kick + drift (paper's first INTEGRATE phase).
  std::vector<Vec3> previous = system.positions;
  for (std::size_t i = 0; i < n; ++i) {
    system.velocities[i] += (0.5 * dt / system.masses[i]) * system.forces[i];
    system.positions[i] += dt * system.velocities[i];
  }
  // Constrain positions; fold the correction into the velocities.
  constraints_.apply_positions(system.box, previous, system.positions,
                               &system.velocities, dt, params_.constraint_method);

  // Phase 2: force evaluation at the new positions.
  StepReport report;
  report.energies = ff.evaluate(system, topology);

  // Phase 3: second half kick + velocity constraint (RATTLE projection).
  for (std::size_t i = 0; i < n; ++i) {
    system.velocities[i] += (0.5 * dt / system.masses[i]) * system.forces[i];
  }
  constraints_.project_velocities(system.box, system.positions, system.velocities);

  report.kinetic = system.kinetic_energy();
  return report;
}

}  // namespace tme
