// Bonded interactions: harmonic bonds and angles.
//
// On MDGRAPE-4A these run on the GP cores (paper Sec. V.A).  The rigid
// TIP3P runs of the evaluation constrain the water geometry instead, but the
// flexible-water option and tests exercise these terms.
#pragma once

#include "md/system.hpp"
#include "md/topology.hpp"

namespace tme {

struct BondedResult {
  double energy_bonds = 0.0;      // kJ/mol
  double energy_angles = 0.0;     // kJ/mol
  double energy_dihedrals = 0.0;  // kJ/mol

  double total() const { return energy_bonds + energy_angles + energy_dihedrals; }
};

// Accumulates forces into system.forces (does not clear them).
BondedResult compute_bonded(ParticleSystem& system, const Topology& topology);

}  // namespace tme
