// Force field assembly: short range + bonded + long range + corrections.
//
// The long-range Coulomb solver is pluggable — any LongRangeSolver backend
// (classical Ewald, SPME, TME, fixed-point TME; see core/solvers.hpp for the
// name-driven registry) — the configuration axis of the paper's Fig. 4
// experiment.
#pragma once

#include <memory>
#include <string>

#include "core/solvers.hpp"
#include "md/bonded.hpp"
#include "md/short_range.hpp"
#include "md/short_range_engine.hpp"
#include "md/system.hpp"
#include "md/topology.hpp"

namespace tme {

struct EnergyReport {
  double coulomb_short = 0.0;
  double coulomb_long = 0.0;       // reciprocal + self
  double coulomb_exclusion = 0.0;  // excluded-pair erf correction
  double lj = 0.0;
  double bonds = 0.0;
  double angles = 0.0;
  double dihedrals = 0.0;

  double potential() const {
    return coulomb_short + coulomb_long + coulomb_exclusion + lj + bonds +
           angles + dihedrals;
  }
};

class ForceField {
 public:
  // The solver's alpha must match short_range.alpha and its box must match
  // the system the field is evaluated on (mesh geometry is fixed at solver
  // construction).
  ForceField(ShortRangeParams short_range, std::unique_ptr<LongRangeSolver> solver);

  // Clears system.forces and evaluates all terms.
  EnergyReport evaluate(ParticleSystem& system, const Topology& topology) const;

  const LongRangeSolver& long_range() const { return *solver_; }
  const ShortRangeParams& short_range_params() const { return short_range_; }
  const ShortRangeEngine& short_range_engine() const { return engine_; }

 private:
  ShortRangeParams short_range_;
  ShortRangeEngine engine_;  // parallel evaluator for the short-range sum
  std::unique_ptr<LongRangeSolver> solver_;
};

}  // namespace tme
