#include "md/observables.hpp"

#include <cmath>
#include <stdexcept>

namespace tme {

RdfAccumulator::RdfAccumulator(double r_max, std::size_t bins)
    : r_max_(r_max), bins_(bins), histogram_(bins, 0.0) {
  if (r_max <= 0.0 || bins == 0) {
    throw std::invalid_argument("RdfAccumulator: bad parameters");
  }
}

void RdfAccumulator::accumulate(const Box& box, std::span<const Vec3> positions,
                                std::span<const std::size_t> group_a,
                                std::span<const std::size_t> group_b) {
  const double r_max2 = r_max_ * r_max_;
  for (const std::size_t i : group_a) {
    for (const std::size_t j : group_b) {
      if (i == j) continue;
      const double r2 = norm2(box.min_image_disp(positions[i], positions[j]));
      if (r2 >= r_max2) continue;
      const std::size_t bin = static_cast<std::size_t>(
          std::sqrt(r2) / r_max_ * static_cast<double>(bins_));
      histogram_[std::min(bin, bins_ - 1)] += 1.0;
    }
  }
  const double rho_b =
      static_cast<double>(group_b.size()) / box.volume();
  pair_norm_ += static_cast<double>(group_a.size()) * rho_b;
  ++frames_;
}

RdfResult RdfAccumulator::result() const {
  RdfResult out;
  out.samples = frames_;
  out.r.resize(bins_);
  out.g.resize(bins_);
  const double dr = r_max_ / static_cast<double>(bins_);
  for (std::size_t b = 0; b < bins_; ++b) {
    const double r_lo = static_cast<double>(b) * dr;
    const double r_hi = r_lo + dr;
    const double shell = 4.0 / 3.0 * M_PI * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    out.r[b] = r_lo + 0.5 * dr;
    out.g[b] = pair_norm_ > 0.0 ? histogram_[b] / (pair_norm_ * shell) : 0.0;
  }
  return out;
}

MsdTracker::MsdTracker(const Box& box, std::span<const Vec3> initial,
                       std::span<const std::size_t> group)
    : box_(box), group_(group.begin(), group.end()) {
  reference_.reserve(group_.size());
  for (const std::size_t i : group_) reference_.push_back(initial[i]);
  unwrapped_ = reference_;
  last_ = reference_;
}

double MsdTracker::update(std::span<const Vec3> positions) {
  double sum = 0.0;
  for (std::size_t k = 0; k < group_.size(); ++k) {
    const Vec3 current = positions[group_[k]];
    // Unwrap: the minimum-image step since the last sample.
    unwrapped_[k] += box_.min_image_disp(current, last_[k]);
    last_[k] = current;
    sum += norm2(unwrapped_[k] - reference_[k]);
  }
  return sum / static_cast<double>(group_.size());
}

}  // namespace tme
