#include "md/short_range_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "core/abft.hpp"
#include "md/cell_list.hpp"
#include "md/short_range_kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/constants.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace tme {

namespace {

// Precombined Lorentz–Berthelot pair parameters: E = (c12/r⁶ - c6)/r⁶ -
// e_shift and f·r = (12 c12/r⁶ - 6 c6)/r⁶ / r².
struct MixedLj {
  double c6 = 0.0;       // 4 ε σ⁶
  double c12 = 0.0;      // 4 ε σ¹²
  double e_shift = 0.0;  // energy at the cutoff (0 when shift_lj is off)
};

// Per-batch private accumulators, merged in batch order after the sweep.
struct Partial {
  std::vector<Vec3> forces;  // indexed by sorted (cell-order) particle index
  double energy_coulomb = 0.0;
  double energy_lj = 0.0;
  std::size_t pairs = 0;
};

// Pairs buffered between kernel evaluations.  The flush boundary is bitwise
// transparent: every pair's outputs depend only on its own lanes, and the
// scalar accumulation that follows runs in enumeration order regardless of
// where the batch was cut.  4096 pairs keeps the SoA working set (~14
// doubles/pair) inside L2.
constexpr std::size_t kFlushPairs = 4096;

}  // namespace

ShortRangeEngine::ShortRangeEngine(const ShortRangeParams& params)
    : params_(params) {
  if (params.kernel == CoulombKernel::kTabulated) {
    table_ = std::make_unique<ForceTable>(params.alpha, params.table_r_min,
                                          params.cutoff, params.table_segments);
  }
  switch (params.simd) {
    case ShortRangeParams::SimdChoice::kScalar:
      mode_ = simd::Mode::kScalar;
      break;
    case ShortRangeParams::SimdChoice::kNative:
      mode_ = simd::Mode::kNative;
      break;
    case ShortRangeParams::SimdChoice::kEnv:
      mode_ = simd::mode_from_env();
      break;
  }
}

ShortRangeResult ShortRangeEngine::compute(ParticleSystem& system,
                                           const Topology& topology,
                                           ThreadPool* pool_ptr) const {
  TME_PHASE("short_range");
  TME_COUNTER_ADD("short_range/calls", 1);
  ShortRangeResult out;
  const std::size_t n = system.size();
  if (n == 0) return out;
  ThreadPool& pool = pool_ptr != nullptr ? *pool_ptr : global_pool();

  const double cutoff2 = params_.cutoff * params_.cutoff;
  const CellList cells(system.box, system.positions, params_.cutoff);
  const std::size_t ncells = cells.cell_count();

  // --- LJ type compression + flat mixing table -----------------------------
  const auto& lj = topology.lj();
  std::vector<std::uint32_t> type_of(n);
  std::vector<LjParams> types;
  {
    std::map<std::pair<double, double>, std::uint32_t> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] = ids.try_emplace(
          {lj[i].sigma, lj[i].epsilon}, static_cast<std::uint32_t>(types.size()));
      if (inserted) types.push_back(lj[i]);
      type_of[i] = it->second;
    }
  }
  const std::size_t ntypes = types.size();
  TME_GAUGE_SET("short_range/lj_types", ntypes);
  double inv_rc6 = 0.0;
  if (params_.shift_lj) inv_rc6 = 1.0 / (cutoff2 * cutoff2 * cutoff2);
  std::vector<MixedLj> mix(ntypes * ntypes);
  for (std::size_t a = 0; a < ntypes; ++a) {
    for (std::size_t b = 0; b < ntypes; ++b) {
      const double eps = std::sqrt(types[a].epsilon * types[b].epsilon);
      if (eps <= 0.0) continue;
      const double sigma = 0.5 * (types[a].sigma + types[b].sigma);
      const double sig2 = sigma * sigma;
      const double sig6 = sig2 * sig2 * sig2;
      MixedLj& m = mix[a * ntypes + b];
      m.c6 = 4.0 * eps * sig6;
      m.c12 = m.c6 * sig6;
      m.e_shift = (m.c12 * inv_rc6 - m.c6) * inv_rc6;
    }
  }

  // --- cell-sorted SoA packing ---------------------------------------------
  std::vector<double> sx(n), sy(n), sz(n), sq(n);
  std::vector<std::uint32_t> stype(n);
  std::vector<std::size_t> orig(n);          // sorted index -> original index
  std::vector<std::size_t> cstart(ncells + 1, 0);
  {
    std::size_t k = 0;
    for (std::size_t c = 0; c < ncells; ++c) {
      cstart[c] = k;
      for (const std::size_t i : cells.cell_atoms(c)) {
        orig[k] = i;
        sx[k] = system.positions[i].x;
        sy[k] = system.positions[i].y;
        sz[k] = system.positions[i].z;
        sq[k] = system.charges[i];
        stype[k] = type_of[i];
        ++k;
      }
    }
    cstart[ncells] = k;
  }

  // Stencils are precomputed once per call instead of allocating a vector
  // per cell inside the sweep.
  std::vector<std::vector<std::size_t>> stencil(ncells);
  parallel_for(pool, 0, ncells,
               [&](std::size_t c) { stencil[c] = cells.half_stencil(c); });

  // --- parallel sweep over contiguous cell batches -------------------------
  const std::size_t nb =
      std::min<std::size_t>(ThreadPool::in_parallel_region() ? 1 : pool.concurrency(),
                            ncells);
  const std::size_t chunk = (ncells + nb - 1) / nb;
  std::vector<Partial> partials(nb);

  const Box box = system.box;
  const PairKernelConfig kernel_cfg{params_.alpha, table_.get()};
  const simd::Mode mode = mode_;
  const int width = simd::lanes(mode);
  parallel_for(pool, 0, nb, [&](std::size_t b) {
    TME_TRACE_SPAN("short_range/batch");
    Partial& part = partials[b];
    part.forces.assign(n, Vec3{});

    // The sweep filters pairs into an SoA batch; the vectorized kernel
    // (md/short_range_kernels.hpp) evaluates them, and the flush scatters
    // the results serially in the same enumeration order the old per-pair
    // loop used, so energies and forces stay bitwise reproducible per pool
    // size and identical between TME_SIMD=scalar and native.
    PairBatch batch;
    batch.reserve(kFlushPairs + 64);
    auto flush = [&] {
      if (batch.size() == 0) return;
      batch.finalize(width);
      evaluate_pair_batch(batch, kernel_cfg, mode);
      const std::size_t np = batch.size();
      for (std::size_t i = 0; i < np; ++i) {
        part.energy_coulomb += batch.e_coul[i];
        part.energy_lj += batch.e_lj[i];
        const double f_over_r = batch.f_over_r[i];
        const Vec3 fij{f_over_r * batch.dx[i], f_over_r * batch.dy[i],
                       f_over_r * batch.dz[i]};
        part.forces[batch.ia[i]] += fij;
        part.forces[batch.ib[i]] -= fij;
      }
      part.pairs += np;
      batch.clear();
    };
    auto pair = [&](std::size_t ka, std::size_t kb) {
      const double dx = min_image(sx[ka] - sx[kb], box.lengths.x);
      const double dy = min_image(sy[ka] - sy[kb], box.lengths.y);
      const double dz = min_image(sz[ka] - sz[kb], box.lengths.z);
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cutoff2 || r2 == 0.0) return;
      if (topology.excluded(orig[ka], orig[kb])) return;
      const MixedLj& m = mix[stype[ka] * ntypes + stype[kb]];
      batch.push(dx, dy, dz, r2, constants::kCoulomb * sq[ka] * sq[kb], m.c6,
                 m.c12, m.e_shift, static_cast<std::uint32_t>(ka),
                 static_cast<std::uint32_t>(kb));
      if (batch.size() >= kFlushPairs) flush();
    };

    const std::size_t c_begin = b * chunk;
    const std::size_t c_end = std::min(c_begin + chunk, ncells);
    for (std::size_t c = c_begin; c < c_end; ++c) {
      // Pairs within the cell.
      for (std::size_t ka = cstart[c]; ka < cstart[c + 1]; ++ka) {
        for (std::size_t kb = ka + 1; kb < cstart[c + 1]; ++kb) pair(ka, kb);
      }
      // Pairs with the 13 forward neighbour cells; cross-batch neighbours
      // accumulate into this batch's private buffer, so no writes conflict.
      for (const std::size_t nc : stencil[c]) {
        for (std::size_t ka = cstart[c]; ka < cstart[c + 1]; ++ka) {
          for (std::size_t kb = cstart[nc]; kb < cstart[nc + 1]; ++kb) pair(ka, kb);
        }
      }
    }
    flush();
  });

  // --- deterministic reduction (fixed batch order) -------------------------
  {
    TME_PHASE("reduce");
    parallel_for(pool, 0, n, [&](std::size_t k) {
      Vec3 acc{};
      for (std::size_t b = 0; b < nb; ++b) acc += partials[b].forces[k];
      system.forces[orig[k]] += acc;
    });
  }
  for (std::size_t b = 0; b < nb; ++b) {
    out.energy_coulomb += partials[b].energy_coulomb;
    out.energy_lj += partials[b].energy_lj;
    out.pair_count += partials[b].pairs;
  }

  // Newton's-third-law ABFT check: the pair kernel writes +fij/-fij, so the
  // engine's net contribution cancels exactly in real arithmetic.  The sum
  // below reassociates 2·pairs accumulations plus the nb·n merge, so the
  // residual must stay inside that chain's rounding envelope.
  {
    double fmax = 0.0;
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t k = 0; k < n; ++k) {
        const Vec3& f = partials[b].forces[k];
        out.net_force += f;
        fmax = std::max({fmax, std::abs(f.x), std::abs(f.y), std::abs(f.z)});
      }
    }
    out.net_force_tolerance =
        abft::rounding_tolerance(2 * out.pair_count + nb * n, fmax, 0x1p-52);
    abft::CheckSet checks(params_.abft_tolerance_scale);
    const bool ok_x = checks.check("sr_net_force", 0.0, out.net_force.x,
                                   out.net_force_tolerance, 0,
                                   "short-range net force x");
    const bool ok_y = checks.check("sr_net_force", 0.0, out.net_force.y,
                                   out.net_force_tolerance, 1,
                                   "short-range net force y");
    const bool ok_z = checks.check("sr_net_force", 0.0, out.net_force.z,
                                   out.net_force_tolerance, 2,
                                   "short-range net force z");
    out.third_law_ok = ok_x && ok_y && ok_z;
  }

  TME_COUNTER_ADD("short_range/pairs", out.pair_count);
  TME_GAUGE_SET("short_range/batches", nb);
  return out;
}

}  // namespace tme
