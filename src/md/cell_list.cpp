#include "md/cell_list.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tme {

CellList::CellList(const Box& box, std::span<const Vec3> positions, double cutoff) {
  if (cutoff <= 0.0) throw std::invalid_argument("CellList: cutoff must be positive");
  auto cells_along = [cutoff](double length) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(length / cutoff));
  };
  cells_x_ = cells_along(box.lengths.x);
  cells_y_ = cells_along(box.lengths.y);
  cells_z_ = cells_along(box.lengths.z);

  const std::size_t n = positions.size();
  std::vector<std::size_t> cell_of(n);
  cell_start_.assign(cell_count() + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 w = box.wrap(positions[i]);
    auto bin = [](double x, double box_len, std::size_t cells) {
      auto b = static_cast<std::size_t>(x / box_len * static_cast<double>(cells));
      return std::min(b, cells - 1);  // guard x == box_len round-off
    };
    const std::size_t c = cell_index(bin(w.x, box.lengths.x, cells_x_),
                                     bin(w.y, box.lengths.y, cells_y_),
                                     bin(w.z, box.lengths.z, cells_z_));
    cell_of[i] = c;
    ++cell_start_[c + 1];
  }
  for (std::size_t c = 0; c < cell_count(); ++c) cell_start_[c + 1] += cell_start_[c];
  order_.resize(n);
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) order_[cursor[cell_of[i]]++] = i;
}

std::vector<std::size_t> CellList::half_stencil(std::size_t c) const {
  // All distinct 26-neighbourhood cells with index strictly greater than c.
  // The symmetric construction guarantees each unordered cell pair is
  // produced exactly once even on degenerate (1- or 2-cell) axes.
  const std::size_t cx = c % cells_x_;
  const std::size_t cy = (c / cells_x_) % cells_y_;
  const std::size_t cz = c / (cells_x_ * cells_y_);
  std::vector<std::size_t> out;
  out.reserve(26);
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const std::size_t nx =
            (cx + static_cast<std::size_t>(dx + static_cast<int>(cells_x_))) % cells_x_;
        const std::size_t ny =
            (cy + static_cast<std::size_t>(dy + static_cast<int>(cells_y_))) % cells_y_;
        const std::size_t nz =
            (cz + static_cast<std::size_t>(dz + static_cast<int>(cells_z_))) % cells_z_;
        const std::size_t n = cell_index(nx, ny, nz);
        if (n > c) out.push_back(n);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace tme
